// Benchmarks regenerating the paper's evaluation, one family per table
// or figure. Run: go test -bench=. -benchmem
//
//	BenchmarkFig3_*      marshal throughput per compiler and workload
//	BenchmarkFig4to6_*   end-to-end stub cost (combine with netsim links)
//	BenchmarkFig7_*      MIG vs Flick over Mach messages
//	BenchmarkTable2_*    stub generation (code-size experiment inputs)
//	BenchmarkAblation_*  §3 optimizations individually disabled
//
// The flick-bench command renders the same measurements as the paper's
// tables; these benchmarks expose them to standard Go tooling.
package flick_test

import (
	"testing"

	"flick"
	abl "flick/internal/ablstubs"
	"flick/internal/experiment"
	ts "flick/internal/teststubs"
	"flick/rt"
)

// --- Figure 3: marshal throughput -------------------------------------------

func benchMarshalInts(b *testing.B, size int, f func(*rt.Encoder, []int32)) {
	v := experiment.IntArray(size)
	var e rt.Encoder
	b.SetBytes(int64(size))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Reset()
		f(&e, v)
	}
}

func benchMarshalRects(b *testing.B, size int, f func(*rt.Encoder, []ts.BenchRect)) {
	v := experiment.RectArray(size)
	var e rt.Encoder
	b.SetBytes(int64(size))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Reset()
		f(&e, v)
	}
}

func benchMarshalDirs(b *testing.B, size int, f func(*rt.Encoder, []ts.BenchDirEntry)) {
	v := experiment.DirArray(size)
	var e rt.Encoder
	b.SetBytes(int64(size))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Reset()
		f(&e, v)
	}
}

func fig3Compilers(b *testing.B, run func(b *testing.B, c *experiment.Compiler)) {
	compilers := experiment.Compilers()
	for i := range compilers {
		c := &compilers[i]
		b.Run(c.Name, func(b *testing.B) { run(b, c) })
	}
}

func BenchmarkFig3_Ints_1K(b *testing.B) {
	fig3Compilers(b, func(b *testing.B, c *experiment.Compiler) {
		benchMarshalInts(b, 1<<10, c.MarshalInts)
	})
}

func BenchmarkFig3_Ints_64K(b *testing.B) {
	fig3Compilers(b, func(b *testing.B, c *experiment.Compiler) {
		benchMarshalInts(b, 64<<10, c.MarshalInts)
	})
}

func BenchmarkFig3_Ints_1M(b *testing.B) {
	fig3Compilers(b, func(b *testing.B, c *experiment.Compiler) {
		benchMarshalInts(b, 1<<20, c.MarshalInts)
	})
}

func BenchmarkFig3_Rects_64K(b *testing.B) {
	fig3Compilers(b, func(b *testing.B, c *experiment.Compiler) {
		benchMarshalRects(b, 64<<10, c.MarshalRects)
	})
}

func BenchmarkFig3_Dirs_64K(b *testing.B) {
	fig3Compilers(b, func(b *testing.B, c *experiment.Compiler) {
		benchMarshalDirs(b, 64<<10, c.MarshalDirs)
	})
}

func BenchmarkFig3_Unmarshal_Dirs_64K(b *testing.B) {
	compilers := experiment.Compilers()
	for i := range compilers {
		c := &compilers[i]
		b.Run(c.Name, func(b *testing.B) {
			v := experiment.DirArray(64 << 10)
			var e rt.Encoder
			c.MarshalDirs(&e, v)
			payload := e.Bytes()
			d := rt.NewDecoder(payload)
			b.SetBytes(64 << 10)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d.Reset(payload)
				if _, err := c.UnmarshalDirs(d); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Figures 4-6: end-to-end stub path (marshal + unmarshal round trip) ------

func BenchmarkFig4to6_RoundTripStubCost(b *testing.B) {
	compilers := experiment.Compilers()
	for i := range compilers {
		c := &compilers[i]
		switch c.Name {
		case "rpcgen", "PowerRPC", "Flick/ONC":
		default:
			continue
		}
		b.Run(c.Name, func(b *testing.B) {
			v := experiment.IntArray(64 << 10)
			var e rt.Encoder
			b.SetBytes(64 << 10)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Reset()
				c.MarshalInts(&e, v)
				d := rt.NewDecoder(e.Bytes())
				if _, err := c.UnmarshalInts(d); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Figure 7: MIG vs Flick over Mach messages --------------------------------

func BenchmarkFig7_MIG_Ints_64K(b *testing.B) {
	v := experiment.IntArray(64 << 10)
	mig := &experiment.MIGStub{}
	b.SetBytes(64 << 10)
	for i := 0; i < b.N; i++ {
		msg := mig.MarshalInts(v)
		if _, err := mig.UnmarshalInts(msg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7_FlickMach_Ints_64K(b *testing.B) {
	v := experiment.IntArray(64 << 10)
	var e rt.Encoder
	b.SetBytes(64 << 10)
	for i := 0; i < b.N; i++ {
		e.Reset()
		h := rt.ReqHeader{XID: 1}
		rt.Mach{}.WriteRequest(&e, &h)
		ts.MarshalBenchSendIntsMachRequest(&e, v)
		d := rt.NewDecoder(e.Bytes())
		if _, err := (rt.Mach{}).ReadRequest(d); err != nil {
			b.Fatal(err)
		}
		if _, err := ts.UnmarshalBenchSendIntsMachRequest(d); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Table 2: compilation itself (code-size experiment inputs) ---------------

func BenchmarkTable2_CompileDirectoryInterface(b *testing.B) {
	for _, style := range []string{"flick", "rpcgen", "powerrpc"} {
		b.Run(style, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := flick.Compile("bench.idl", ts.BenchIDL, flick.Options{
					IDL: "corba", Lang: "go", Format: "xdr", Style: style,
					Package: "bench", SkipDecls: true,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Section 3 ablations -------------------------------------------------------

func ablDirs(size int) []abl.BenchDirEntry {
	src := experiment.DirArray(size)
	v := make([]abl.BenchDirEntry, len(src))
	for i := range src {
		v[i].Name = src[i].Name
		v[i].Info.Fields = src[i].Info.Fields
		v[i].Info.Tag = src[i].Info.Tag
	}
	return v
}

func ablRects(size int) []abl.BenchRect {
	src := experiment.RectArray(size)
	v := make([]abl.BenchRect, len(src))
	for i := range src {
		v[i] = abl.BenchRect{
			Min: abl.BenchPoint{X: src[i].Min.X, Y: src[i].Min.Y},
			Max: abl.BenchPoint{X: src[i].Max.X, Y: src[i].Max.Y},
		}
	}
	return v
}

func BenchmarkAblation_Dirs_64K(b *testing.B) {
	v := ablDirs(64 << 10)
	for _, cfg := range []struct {
		name string
		f    func(*rt.Encoder, []abl.BenchDirEntry)
	}{
		{"full", abl.MarshalBenchSendDirsFullRequest},
		{"no-group", abl.MarshalBenchSendDirsNoGroupRequest},
		{"no-chunk", abl.MarshalBenchSendDirsNoChunkRequest},
		{"no-memcpy", abl.MarshalBenchSendDirsNoMemcpyRequest},
		{"no-inline", abl.MarshalBenchSendDirsNoInlineRequest},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			var e rt.Encoder
			b.SetBytes(64 << 10)
			for i := 0; i < b.N; i++ {
				e.Reset()
				cfg.f(&e, v)
			}
		})
	}
}

func BenchmarkAblation_Rects_64K(b *testing.B) {
	v := ablRects(64 << 10)
	for _, cfg := range []struct {
		name string
		f    func(*rt.Encoder, []abl.BenchRect)
	}{
		{"full", abl.MarshalBenchSendRectsFullRequest},
		{"no-group", abl.MarshalBenchSendRectsNoGroupRequest},
		{"no-chunk", abl.MarshalBenchSendRectsNoChunkRequest},
		{"no-memcpy", abl.MarshalBenchSendRectsNoMemcpyRequest},
		{"no-inline", abl.MarshalBenchSendRectsNoInlineRequest},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			var e rt.Encoder
			b.SetBytes(64 << 10)
			for i := 0; i < b.N; i++ {
				e.Reset()
				cfg.f(&e, v)
			}
		})
	}
}
