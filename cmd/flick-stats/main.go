// Command flick-stats demonstrates the runtime observability layer: it
// runs a loopback RPC workload (the Bench interface from the test IDL,
// served over an in-process pipe) with rt.Metrics attached to both the
// client and the server, then dumps the metric registries.
//
//	flick-stats                 # text exposition (flick_* lines)
//	flick-stats -json           # JSON snapshots
//	flick-stats -trace 1        # also log one line per request to stderr
//	flick-stats -trace 2        # ... with hex wire dumps
//	flick-stats -rounds 1000 -payload 65536
package main

import (
	"flag"
	"fmt"
	"os"

	ts "flick/internal/teststubs"
	"flick/rt"
)

type impl struct{ dirs []ts.BenchDirEntry }

func (i *impl) SendInts(v []int32) error            { return nil }
func (i *impl) SendRects(v []ts.BenchRect) error    { return nil }
func (i *impl) SendDirs(v []ts.BenchDirEntry) error { i.dirs = v; return nil }
func (i *impl) Ping(nonce int32) error              { return nil }
func (i *impl) Sum(v []int32) (int32, error) {
	if len(v) == 0 {
		return 0, &ts.BenchBadSize{Wanted: 1}
	}
	var s int32
	for _, x := range v {
		s += x
	}
	return s, nil
}
func (i *impl) ListDir(path string) ([]ts.BenchDirEntry, int32, error) {
	return i.dirs, int32(len(i.dirs)), nil
}

func main() {
	rounds := flag.Int("rounds", 100, "workload rounds (each round is 5 calls)")
	payload := flag.Int("payload", 4096, "encoded payload bytes per array argument")
	asJSON := flag.Bool("json", false, "dump JSON snapshots instead of text exposition")
	traceLevel := flag.Int("trace", -1, "attach a LogHook at this verbosity (0=errors, 1=all, 2=+wire dumps)")
	flag.Parse()

	serverMetrics := rt.NewMetrics()
	clientMetrics := rt.NewMetrics()

	clientEnd, serverEnd := rt.Pipe()
	srv := rt.NewServer(rt.ONC{})
	srv.Metrics = serverMetrics
	if *traceLevel >= 0 {
		srv.Hooks = &rt.LogHook{W: os.Stderr, Verbosity: *traceLevel}
	}
	ts.RegisterBenchXDR(srv, &impl{})
	done := make(chan struct{})
	go func() { defer close(done); srv.ServeConn(serverEnd) }()

	c := ts.NewBenchXDRClient(clientEnd)
	c.C.Metrics = clientMetrics

	ints := make([]int32, *payload/4)
	for i := range ints {
		ints[i] = int32(i)
	}
	dirs := makeDirs(*payload)
	for i := 0; i < *rounds; i++ {
		must(c.SendInts(ints))
		must(c.SendDirs(dirs))
		if _, err := c.Sum(ints); err != nil {
			fatal(err)
		}
		if _, _, err := c.ListDir("/tmp"); err != nil {
			fatal(err)
		}
		must(c.Ping(int32(i)))
	}
	clientEnd.Close()
	<-done

	if *asJSON {
		dumpJSON("client", clientMetrics)
		dumpJSON("server", serverMetrics)
		return
	}
	fmt.Println("# client")
	clientMetrics.Snapshot().WriteTo(os.Stdout)
	fmt.Println("# server")
	serverMetrics.Snapshot().WriteTo(os.Stdout)
}

func makeDirs(bytes int) []ts.BenchDirEntry {
	const nameLen = 116 // one entry encodes to exactly 256 bytes
	v := make([]ts.BenchDirEntry, bytes/256)
	name := make([]byte, nameLen)
	for i := range v {
		for j := range name {
			name[j] = byte('a' + (i+j)%26)
		}
		v[i].Name = string(name)
	}
	return v
}

func dumpJSON(label string, m *rt.Metrics) {
	data, err := m.Snapshot().JSON()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("{\"side\":%q,\"metrics\":%s}\n", label, data)
}

func must(err error) {
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "flick-stats:", err)
	os.Exit(1)
}
