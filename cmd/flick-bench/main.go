// Command flick-bench regenerates the tables and figures of the paper's
// evaluation (Section 4). Each experiment prints the same rows/series the
// paper reports, measured with this repository's generated stubs on the
// current host (absolute numbers differ from 1997 hardware; the shape —
// who wins and by roughly what factor — is the reproduction target).
//
//	flick-bench -exp fig3      # marshal throughput, all three workloads
//	flick-bench -exp fig4      # end-to-end, 10Mbps Ethernet model
//	flick-bench -exp fig5      # end-to-end, 100Mbps Ethernet model
//	flick-bench -exp fig6      # end-to-end, 640Mbps Myrinet model
//	flick-bench -exp fig7      # MIG vs Flick over Mach IPC
//	flick-bench -exp table2    # generated stub code sizes
//	flick-bench -exp table3    # tested compiler matrix
//	flick-bench -exp ablation  # §3 optimization ablations
//	flick-bench -exp rpcstats  # runtime metrics of a loopback RPC workload
//	flick-bench -exp checks    # space checks executed per message, by stub style
//	flick-bench -exp pipeline  # throughput vs in-flight depth, multiplexed client
//	flick-bench -exp chaos     # chaos soak: faults vs retries/redials; wrong answers must be 0
//	flick-bench -exp fleet     # scale-out fabric: 1k-100k simulated clients, pool+batch+admission
//	flick-bench -exp trace     # tracing overhead at 0%/1%/100% sampling + tree completeness
//	flick-bench -exp stream    # server-push stream goodput: chunk size x credit window sweep
//	flick-bench -exp zerocopy  # zero-copy bulk transfer: writev vs flatten across payload sizes
//	flick-bench -exp hedge     # hedged requests: bimodal latency, p99 with hedging off/on
//	flick-bench -exp drain     # rolling restart: lameduck drain under load, loss accounting
//	flick-bench -exp all
//
// -json emits each report as a machine-readable JSON document instead
// of the aligned table (committed as BENCH_<exp>.json). -short runs the
// reduced fleet sweep sized for CI. -debug-addr serves the runtime
// debug surface (rt.Debug) over HTTP while experiments run: hit / for
// the text dump, /metrics or /delta for counters, /trace for a Chrome
// trace_event export of recent sampled spans.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"flick/internal/experiment"
	"flick/rt"
)

func main() {
	exp := flag.String("exp", "all", "experiment: fig3, fig4, fig5, fig6, fig7, table2, table3, ablation, rpcstats, checks, pipeline, chaos, fleet, trace, stream, zerocopy, hedge, drain, all")
	asJSON := flag.Bool("json", false, "emit reports as JSON documents instead of aligned tables")
	short := flag.Bool("short", false, "run reduced sweeps (CI-sized); currently affects fleet")
	debugAddr := flag.String("debug-addr", "", "serve the runtime debug surface over HTTP on this address (e.g. localhost:6060) while experiments run")
	flag.Parse()

	if *debugAddr != "" {
		dbg := rt.NewDebug(rt.DebugConfig{})
		experiment.Debug = dbg
		go func() {
			fmt.Fprintf(os.Stderr, "flick-bench: debug surface on http://%s/\n", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, dbg); err != nil {
				fmt.Fprintf(os.Stderr, "flick-bench: debug surface: %v\n", err)
			}
		}()
	}

	emit := func(r *experiment.Report) {
		if *asJSON {
			fmt.Println(r.JSON())
		} else {
			fmt.Println(r)
		}
	}
	run := func(name string) bool {
		return *exp == "all" || *exp == name
	}
	ran := false
	if run("table3") {
		emit(experiment.Table3())
		ran = true
	}
	if run("table2") {
		emit(experiment.Table2())
		ran = true
	}
	if run("fig3") {
		for _, w := range []experiment.Workload{experiment.Ints, experiment.Rects, experiment.Dirs} {
			emit(experiment.Fig3(w))
		}
		ran = true
	}
	if run("fig4") {
		emit(experiment.Fig4())
		ran = true
	}
	if run("fig5") {
		emit(experiment.Fig5())
		ran = true
	}
	if run("fig6") {
		emit(experiment.Fig6())
		ran = true
	}
	if run("fig7") {
		emit(experiment.Fig7())
		ran = true
	}
	if run("ablation") {
		emit(experiment.Ablation())
		ran = true
	}
	if run("checks") {
		emit(experiment.CheckCounts())
		ran = true
	}
	if run("rpcstats") {
		emit(experiment.RPCStats())
		ran = true
	}
	if run("pipeline") {
		emit(experiment.Pipeline())
		ran = true
	}
	if run("chaos") {
		emit(experiment.Chaos())
		emit(experiment.StreamChaos())
		ran = true
	}
	if run("fleet") {
		if *short {
			emit(experiment.FleetShort())
		} else {
			emit(experiment.Fleet())
		}
		ran = true
	}
	if run("trace") {
		emit(experiment.Trace())
		ran = true
	}
	if run("stream") {
		emit(experiment.Stream())
		ran = true
	}
	if run("zerocopy") {
		emit(experiment.ZeroCopy())
		ran = true
	}
	if run("hedge") {
		emit(experiment.Hedge())
		ran = true
	}
	if run("drain") {
		if *short {
			emit(experiment.DrainShort())
		} else {
			emit(experiment.Drain())
		}
		ran = true
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "flick-bench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}
