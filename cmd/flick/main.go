// Command flick is the Flick-Go IDL compiler driver: it parses a CORBA
// IDL, ONC RPC, or MIG source file, runs a presentation generator, and
// emits stubs through the selected back end.
//
// Examples:
//
//	flick -idl corba -lang go -format xdr -o stubs.go mail.idl
//	flick -idl oncrpc -lang go -format xdr -style rpcgen -o naive.go mail.x
//	flick -idl corba -lang c -format cdr -o mail.c mail.idl
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"flick"
	"flick/internal/backend/gostub"
	"flick/internal/verify"
)

func main() {
	var opt flick.Options
	var out string
	idl := flag.String("idl", "auto", "IDL language: corba, oncrpc, mig, or auto (by extension)")
	lang := flag.String("lang", "go", "target language: go or c")
	format := flag.String("format", "xdr", "wire format: xdr, cdr, cdr-le, mach3, fluke")
	style := flag.String("style", "flick", "code style: flick, rpcgen, powerrpc")
	pkg := flag.String("package", "stubs", "generated Go package name")
	suffix := flag.String("suffix", "", "suffix appended to generated function names")
	skipDecls := flag.Bool("skip-decls", false, "omit presented type declarations")
	rpc := flag.Bool("rpc", true, "emit client stubs and server dispatch (Go only)")
	surfaces := flag.String("surfaces", "", "comma-separated presentation surfaces: sync, async, stream, ctx (default sync)")
	surfacesOnly := flag.Bool("surfaces-only", false, "emit only the surface shells (marshal core generated elsewhere in the package)")
	side := flag.String("side", "client", "presentation side: client or server (C only)")
	flag.StringVar(&out, "o", "", "output file (default stdout)")
	noOpt := flag.String("disable", "", "comma-separated optimizations to disable: group,chunk,memcpy,inline")
	zeroCopy := flag.Bool("zerocopy", false, "emit zero-copy call shapes for prover-approved byte regions (Go, flick style)")
	stats := flag.Bool("stats", false, "print per-stub optimizer counters to stderr")
	noVerify := flag.Bool("noverify", false, "skip stage-boundary IR verification")
	verifyFlag := flag.String("verify", "on", "IR verification mode: on, off, or strict (adds O(n²) chunk overlap checks)")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: flick [flags] file.idl")
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}

	opt.IDL = *idl
	opt.Lang = *lang
	opt.Format = *format
	opt.Style = *style
	opt.Package = *pkg
	opt.FuncSuffix = *suffix
	opt.SkipDecls = *skipDecls
	opt.EmitRPC = *rpc
	opt.Surfaces = *surfaces
	opt.SurfacesOnly = *surfacesOnly
	opt.Side = *side
	opt.ZeroCopy = *zeroCopy
	for _, d := range strings.Split(*noOpt, ",") {
		switch strings.TrimSpace(d) {
		case "":
		case "group":
			opt.DisableGroup = true
		case "chunk":
			opt.DisableChunk = true
		case "memcpy":
			opt.DisableMemcpy = true
		case "inline":
			opt.DisableInline = true
		default:
			fatal(fmt.Errorf("unknown optimization %q", d))
		}
	}

	opt.Verify, err = verify.ParseMode(*verifyFlag)
	if err != nil {
		fatal(err)
	}
	if *noVerify {
		opt.Verify = verify.Off
	}

	if *stats {
		opt.Stats = &gostub.Stats{}
	}

	code, err := flick.Compile(flag.Arg(0), string(src), opt)
	if err != nil {
		fatal(err)
	}
	if *stats {
		fmt.Fprint(os.Stderr, opt.Stats.Report())
		if opt.Verify != verify.Off {
			fmt.Fprintln(os.Stderr, opt.Stats.Verify.Report())
		}
	}
	if out == "" {
		fmt.Print(code)
		return
	}
	if err := os.WriteFile(out, []byte(code), 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "flick:", err)
	os.Exit(1)
}
