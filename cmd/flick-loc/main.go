// Command flick-loc regenerates Table 1 of the paper: code reuse within
// the Flick compiler. It counts substantive source lines (non-blank,
// non-comment) in each shared base library and in each specialized
// component derived from it, and prints the fraction of code unique to
// the component — the paper's argument that Flick's compiler-kit
// structure concentrates work in reusable libraries.
//
// Run from the repository root: go run ./cmd/flick-loc
package main

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

type component struct {
	phase string
	name  string
	paths []string
	// base marks the phase's shared library row.
	base bool
}

var components = []component{
	// Front-end phase.
	{"Front End", "Base Library (lexer/parser kit + AOI)", []string{"internal/frontend/idllex", "internal/aoi"}, true},
	{"Front End", "CORBA IDL", []string{"internal/frontend/corbaidl"}, false},
	{"Front End", "ONC RPC IDL", []string{"internal/frontend/oncrpc"}, false},
	{"Front End", "MIG", []string{"internal/frontend/mig"}, false},
	// Presentation phase.
	{"Pres. Gen.", "Base Library (MINT + PRES + PRES-C + AOI→MINT)", []string{"internal/mint", "internal/pres", "internal/presc", "internal/pgen/mintgen.go", "internal/pgen/names.go"}, true},
	{"Pres. Gen.", "Go presentation", []string{"internal/pgen/gopres.go"}, false},
	{"Pres. Gen.", "C presentations (CORBA + rpcgen + Fluke)", []string{"internal/pgen/cpres.go"}, false},
	// Back-end phase.
	{"Back End", "Base Library (mir optimizer + wire formats + runtime)", []string{"internal/mir", "internal/wire", "rt"}, true},
	{"Back End", "Go emitter (all formats)", []string{"internal/backend/gostub"}, false},
	{"Back End", "C emitter (CAST)", []string{"internal/cast", "internal/backend/cstub"}, false},
	{"Back End", "interpretive marshaler (ILU/ORBeline models)", []string{"internal/interp"}, false},
}

func main() {
	fmt.Println("Table 1: code reuse within the Flick-Go IDL compiler")
	fmt.Println("(substantive Go source lines; percentages = component lines unique vs its phase base library)")
	fmt.Println()
	fmt.Printf("%-12s %-55s %8s %8s\n", "Phase", "Component", "Lines", "Unique%")
	fmt.Println(strings.Repeat("-", 88))
	baseLines := map[string]int{}
	for _, c := range components {
		n := 0
		for _, p := range c.paths {
			m, err := countDir(p)
			if err != nil {
				fmt.Fprintf(os.Stderr, "flick-loc: %s: %v\n", p, err)
				continue
			}
			n += m
		}
		if c.base {
			baseLines[c.phase] = n
			fmt.Printf("%-12s %-55s %8d %8s\n", c.phase, c.name, n, "")
			continue
		}
		pct := ""
		if b := baseLines[c.phase]; b > 0 {
			pct = fmt.Sprintf("%.1f%%", float64(n)/float64(n+b)*100)
		}
		fmt.Printf("%-12s %-55s %8d %8s\n", c.phase, c.name, n, pct)
	}
}

// countDir counts substantive lines in the package directory's non-test,
// non-generated Go files; a path ending in .go counts one file.
func countDir(dir string) (int, error) {
	if strings.HasSuffix(dir, ".go") {
		return countFile(dir)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	total := 0
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		n, err := countFile(filepath.Join(dir, name))
		if err != nil {
			return 0, err
		}
		total += n
	}
	return total, nil
}

func countFile(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	n := 0
	inBlock := false
	if strings.Contains(path, "DO NOT EDIT") {
		return 0, nil
	}
	first := true
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if first {
			first = false
			if strings.Contains(line, "DO NOT EDIT") {
				return 0, nil
			}
		}
		if inBlock {
			if idx := strings.Index(line, "*/"); idx >= 0 {
				line = strings.TrimSpace(line[idx+2:])
				inBlock = false
			} else {
				continue
			}
		}
		if line == "" || strings.HasPrefix(line, "//") {
			continue
		}
		if strings.HasPrefix(line, "/*") {
			if !strings.Contains(line, "*/") {
				inBlock = true
			}
			continue
		}
		n++
	}
	return n, sc.Err()
}
