// Command flick-lint checks Flick-Go's runtime buffer-ownership
// contract on generated stubs and on package rt itself, using the
// analyzers in internal/lint (releasecheck, sendsafe, poolescape,
// arenalife).
//
// Standalone, over package patterns:
//
//	go run ./cmd/flick-lint ./...
//
// As a go vet tool (the unitchecker protocol — go vet drives the
// build graph and hands the tool one package at a time):
//
//	go build -o /tmp/flick-lint ./cmd/flick-lint
//	go vet -vettool=/tmp/flick-lint ./...
//
// Exit status 2 when any finding is reported, matching go vet.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"flick/internal/lint"
)

func main() {
	// The vet driver probes the tool's version (`flick-lint -V=full`)
	// for its action cache.
	version := flag.String("V", "", "print version and exit (vet protocol)")
	flags := flag.Bool("flags", false, "print analyzer flags as JSON and exit (vet protocol)")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: flick-lint [packages] | flick-lint <vet-config>.cfg")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *version != "" {
		fmt.Println("flick-lint version 1")
		return
	}
	if *flags {
		// The driver asks which flags the tool accepts; it has none.
		fmt.Println("[]")
		return
	}
	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runVet(args[0]))
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	os.Exit(runStandalone(args))
}

func runStandalone(patterns []string) int {
	pkgs, err := lint.Load(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	found := 0
	for _, p := range pkgs {
		diags, err := lint.Analyze(p, lint.All())
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, d)
			found++
		}
	}
	if found > 0 {
		return 2
	}
	return 0
}

// vetConfig mirrors the JSON the go command writes for -vettool tools
// (the unitchecker protocol); only the fields the analyzers need are
// decoded.
type vetConfig struct {
	ID          string
	Compiler    string
	Dir         string
	ImportPath  string
	GoFiles     []string
	ImportMap   map[string]string
	PackageFile map[string]string
	VetxOnly    bool
	VetxOutput  string

	SucceedOnTypecheckFailure bool
}

func runVet(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "flick-lint:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintln(os.Stderr, "flick-lint: parsing vet config:", err)
		return 1
	}
	// The tool exchanges no facts; write the (empty) facts file the
	// driver expects before anything can fail.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "flick-lint:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	// Resolve source-level import paths through ImportMap (vendoring,
	// std importmaps) onto export-data files.
	exports := map[string]string{}
	for path, file := range cfg.PackageFile {
		exports[path] = file
	}
	for src, canonical := range cfg.ImportMap {
		if f, ok := cfg.PackageFile[canonical]; ok {
			exports[src] = f
		}
	}
	pkg, err := lint.TypecheckFiles(cfg.ImportPath, cfg.GoFiles, exports)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	diags, err := lint.Analyze(pkg, lint.All())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
