# Flick-Go build targets. `make ci` is the full gate: vet, build,
# race-enabled tests, and the rt allocation guard.

GO ?= go

.PHONY: all build vet test test-race bench bench-rt generate stats ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# Root-level benchmarks (the paper's tables/figures as testing.B).
bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# Runtime benchmarks, including the observability overhead pair
# (BenchmarkClientCall vs BenchmarkClientCallMetrics/Traced).
bench-rt:
	$(GO) test -bench=. -benchmem -run=^$$ ./rt

generate:
	$(GO) generate ./...

# The observability reports.
stats:
	$(GO) run ./cmd/flick-bench -exp checks
	$(GO) run ./cmd/flick-bench -exp rpcstats
	$(GO) run ./cmd/flick-bench -exp pipeline
	$(GO) run ./cmd/flick-stats -rounds 50

ci: vet build test-race
