# Flick-Go build targets. `make ci` is the full gate: vet, build, the
# flick-lint ownership analyzers, race-enabled tests (which include the
# rt allocation guard), and the generated-stub drift check.

GO ?= go

.PHONY: all build vet lint test test-race bench bench-rt chaos chaos-short fleet fleet-short trace trace-short stream stream-short zerocopy zerocopy-short drain drain-short bench-json generate generate-check stats ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# The pooled-buffer ownership analyzers (releasecheck, sendsafe,
# poolescape, arenalife) over every package. Also runnable through the go vet
# driver: go vet -vettool=$$(go env GOPATH)/bin/flick-lint ./...
lint:
	$(GO) run ./cmd/flick-lint ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# Root-level benchmarks (the paper's tables/figures as testing.B).
bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# Runtime benchmarks, including the observability overhead pair
# (BenchmarkClientCall vs BenchmarkClientCallMetrics/Traced).
bench-rt:
	$(GO) test -bench=. -benchmem -run=^$$ ./rt

# The full chaos gate: the 10k-call race-enabled soak plus the fault
# rate sweep report. CI runs the shortened soak (see chaos-short); run
# this one locally before touching the fault-tolerance layer.
chaos:
	$(GO) test -race -count=1 -run 'TestChaos|TestFault|TestChecksum|TestFailCloseRace' ./rt ./internal/experiment
	$(GO) run ./cmd/flick-bench -exp chaos

# The CI-sized soak: same invariants, fewer calls (-short drops the
# soak to 1500 calls and skips the reproducibility sweep).
chaos-short:
	$(GO) test -race -short -count=1 -run 'TestChaos|TestFault|TestChecksum|TestFailCloseRace' ./rt ./internal/experiment

# The scale-out fabric gate: the full 1k-100k client sweep (slow; the
# committed BENCH_fleet.json curve) plus the race-enabled acceptance
# test. CI runs fleet-short.
fleet:
	$(GO) test -race -count=1 -run 'TestFleet|TestPool|TestBatch|TestAdmission' ./rt ./internal/experiment
	$(GO) run ./cmd/flick-bench -exp fleet

# The CI-sized fabric gate: reduced sweep under -race, plus the pooled
# chaos soak and the reduced fleet report.
fleet-short:
	$(GO) test -race -short -count=1 -run 'TestFleet|TestPool|TestBatch|TestAdmission|TestChaosPooled' ./rt ./internal/experiment
	$(GO) run ./cmd/flick-bench -exp fleet -short

# The tracing gate: the traced chaos soak (5% faults, 100% sampling —
# every call must yield one well-formed span tree, zero orphans, valid
# Chrome export) plus the sampling-overhead report and the alloc guard
# pinning the tracing-disabled call path. CI runs trace-short.
trace:
	$(GO) test -race -count=1 -run 'TestTraceSoak|TestTracePropagates|TestTracingDisabledAllocs' ./rt ./internal/experiment
	$(GO) run ./cmd/flick-bench -exp trace

# The CI-sized tracing gate: reduced soak under -race plus the
# propagation and alloc-guard tests.
trace-short:
	$(GO) test -race -short -count=1 -run 'TestTraceSoak|TestTracePropagates|TestTracingDisabledAllocs|TestDupCachedResend|TestPoolFailoverKeepsTrace' ./rt ./internal/experiment

# The streaming gate: surface round-trips over all three generated
# presentation surfaces, the credit-window invariants, the mid-transfer
# chaos soak (kill/corrupt a stream at 5% faults; complete delivery or
# a classified error, zero leaks), and the chunk x window sweep. CI
# runs stream-short.
stream:
	$(GO) test -race -count=1 -run 'TestStream|TestBlob|TestAsync|TestPromise' ./rt ./internal/streamstubs ./internal/teststubs ./internal/experiment
	$(GO) run ./cmd/flick-bench -exp stream

# The CI-sized streaming gate: same invariants and soak under -race,
# without the sweep report.
stream-short:
	$(GO) test -race -short -count=1 -run 'TestStream|TestBlob|TestAsync|TestPromise' ./rt ./internal/streamstubs ./internal/teststubs ./internal/experiment

# The zero-copy gate: the alloc-guarded vectored round trips, the arena
# soak, the arenalife/zerocopy strict corpus gates, and the prover's
# negative tests, all under -race, then the payload sweep report. CI
# runs zerocopy-short.
zerocopy:
	$(GO) test -race -count=1 -run 'TestZeroCopy|TestArenaLife|TestVerifyCorpusZeroCopy|TestLintCorpus' ./internal/zcstubs ./internal/lint ./internal/verify .
	$(GO) run ./cmd/flick-bench -exp zerocopy

# The CI-sized zero-copy gate: same invariants, shortened soak, no
# sweep report.
zerocopy-short:
	$(GO) test -race -short -count=1 -run 'TestZeroCopy|TestArenaLife|TestVerifyCorpusZeroCopy|TestLintCorpus' ./internal/zcstubs ./internal/lint ./internal/verify .

# The lifecycle gate: deadline propagation, cancel frames, breaker
# half-open discipline, hedging safety, and the rolling-restart drain
# soak (loss-free on a clean link, classified-only under 5% faults),
# all under -race, then the drain and hedge reports. CI runs
# drain-short.
drain:
	$(GO) test -race -count=1 -run 'TestDeadline|TestExpired|TestClientMapsReplyExpired|TestCtx|TestDrain|TestGoAway|TestBreakerHalfOpen|TestDupCacheAcrossRedial|TestNonIdempotentNeverHedges|TestChaosDrain|TestHedgeTail' ./rt ./internal/experiment
	$(GO) run ./cmd/flick-bench -exp drain
	$(GO) run ./cmd/flick-bench -exp hedge

# The CI-sized lifecycle gate: same invariants and soaks under -race
# with reduced call counts, plus the CI-sized drain report.
drain-short:
	$(GO) test -race -short -count=1 -run 'TestDeadline|TestExpired|TestClientMapsReplyExpired|TestCtx|TestDrain|TestGoAway|TestBreakerHalfOpen|TestDupCacheAcrossRedial|TestNonIdempotentNeverHedges|TestChaosDrain|TestHedgeTail' ./rt ./internal/experiment
	$(GO) run ./cmd/flick-bench -exp drain -short

# Regenerate the committed machine-readable benchmark curves.
bench-json:
	$(GO) run ./cmd/flick-bench -exp pipeline -json > BENCH_pipeline.json
	$(GO) run ./cmd/flick-bench -exp fleet -json > BENCH_fleet.json
	$(GO) run ./cmd/flick-bench -exp stream -json > BENCH_stream.json
	$(GO) run ./cmd/flick-bench -exp zerocopy -json > BENCH_zerocopy.json
	$(GO) run ./cmd/flick-bench -exp hedge -json > BENCH_hedge.json

generate:
	$(GO) generate ./...

# Fail if regenerating the checked-in stubs or goldens changes anything:
# stale generated code must not land.
generate-check: generate
	git diff --exit-code

# The observability reports.
stats:
	$(GO) run ./cmd/flick-bench -exp checks
	$(GO) run ./cmd/flick-bench -exp rpcstats
	$(GO) run ./cmd/flick-bench -exp pipeline
	$(GO) run ./cmd/flick-stats -rounds 50

ci: vet build lint test-race generate-check
