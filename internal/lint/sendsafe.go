package lint

import (
	"go/ast"
	"go/types"
)

// SendSafe enforces the Conn.Send contract ("the buffer may be reused
// by the caller after Send returns"): an implementation of
// Send(msg []byte) error must not retain msg — not store it (or a slice
// of it) into a struct field or package-level variable, and not send it
// on a channel. Retention hands the caller's reusable buffer to code
// that will read it after the caller has overwritten it.
var SendSafe = &Analyzer{
	Name: "sendsafe",
	Doc:  "Conn.Send implementations must not retain the message buffer",
	Run:  runSendSafe,
}

func runSendSafe(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || fn.Recv == nil || fn.Name.Name != "Send" {
				continue
			}
			msg := sendMsgParam(pass, fn)
			if msg == nil {
				continue
			}
			checkRetention(pass, fn.Body, msg)
		}
	}
	return nil
}

// sendMsgParam returns the object of the []byte message parameter of a
// Send(msg []byte) error method, or nil when fn has another shape.
func sendMsgParam(pass *Pass, fn *ast.FuncDecl) types.Object {
	ft := fn.Type
	if ft.Params == nil || len(ft.Params.List) != 1 || len(ft.Params.List[0].Names) != 1 {
		return nil
	}
	name := ft.Params.List[0].Names[0]
	obj := pass.Info.Defs[name]
	if obj == nil {
		return nil
	}
	sl, ok := obj.Type().(*types.Slice)
	if !ok {
		return nil
	}
	b, ok := sl.Elem().(*types.Basic)
	if !ok || b.Kind() != types.Byte {
		return nil
	}
	return obj
}

// checkRetention flags stores of msg (or a reslice of it) to
// non-local destinations.
func checkRetention(pass *Pass, body *ast.BlockStmt, msg types.Object) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if !aliasesBuffer(pass, rhs, msg) {
					continue
				}
				if i < len(n.Lhs) && isEscapingDest(pass, n.Lhs[i]) {
					pass.Reportf(n.Pos(), "Send retains the caller's buffer (the buffer may be reused after Send returns)")
				}
			}
		case *ast.SendStmt:
			if aliasesBuffer(pass, n.Value, msg) {
				pass.Reportf(n.Pos(), "Send publishes the caller's buffer on a channel (the buffer may be reused after Send returns)")
			}
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				v := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if aliasesBuffer(pass, v, msg) {
					pass.Reportf(v.Pos(), "Send stores the caller's buffer in a composite value (the buffer may be reused after Send returns)")
				}
			}
		}
		return true
	})
}

// aliasesBuffer reports whether expr evaluates to memory aliasing the
// message buffer: the parameter itself or a reslice of it. A copy
// (append to a fresh slice, copy into a new buffer) does not alias.
func aliasesBuffer(pass *Pass, expr ast.Expr, msg types.Object) bool {
	switch e := expr.(type) {
	case *ast.Ident:
		return pass.Info.Uses[e] == msg
	case *ast.SliceExpr:
		return aliasesBuffer(pass, e.X, msg)
	case *ast.ParenExpr:
		return aliasesBuffer(pass, e.X, msg)
	}
	return false
}

// isEscapingDest reports whether the assignment destination outlives the
// call: a struct field, a dereferenced pointer, an element of a
// non-local container, or a package-level variable.
func isEscapingDest(pass *Pass, lhs ast.Expr) bool {
	switch l := lhs.(type) {
	case *ast.SelectorExpr:
		return true
	case *ast.StarExpr:
		return true
	case *ast.IndexExpr:
		return isEscapingDest(pass, l.X) || isPkgLevel(pass, l.X)
	case *ast.Ident:
		return isPkgLevel(pass, l)
	}
	return false
}

// isPkgLevel reports whether expr names a package-level variable.
func isPkgLevel(pass *Pass, expr ast.Expr) bool {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.Info.Uses[id]
	if obj == nil {
		obj = pass.Info.Defs[id]
	}
	v, ok := obj.(*types.Var)
	return ok && v.Parent() == pass.Pkg.Scope()
}
