package fixture

// Send-method fixtures for the sendsafe analyzer: a transport's Send
// must not retain the caller's buffer after returning (the caller
// reuses it — rt's pooled Encoder is Reset for the next request as
// soon as Send returns).

var lastGlobal []byte

type badConn struct {
	last []byte
}

func (c *badConn) Send(msg []byte) error {
	c.last = msg // want `Send retains the caller's buffer`
	return nil
}

type resliceConn struct {
	head []byte
}

func (c *resliceConn) Send(msg []byte) error {
	c.head = msg[:4] // want `Send retains the caller's buffer`
	return nil
}

type chanConn struct {
	out chan []byte
}

func (c *chanConn) Send(msg []byte) error {
	c.out <- msg // want `Send publishes the caller's buffer on a channel`
	return nil
}

type frame struct {
	data []byte
}

type compositeConn struct {
	frames []frame
}

func (c *compositeConn) Send(msg []byte) error {
	f := frame{data: msg} // want `Send stores the caller's buffer in a composite value`
	c.frames = append(c.frames, f)
	return nil
}

type globalConn struct{}

func (globalConn) Send(msg []byte) error {
	lastGlobal = msg // want `Send retains the caller's buffer`
	return nil
}

// ok: copying before retaining is the sanctioned pattern (rt's
// in-process pipe transport does exactly this).
type copyConn struct {
	out chan []byte
}

func (c *copyConn) Send(msg []byte) error {
	out := make([]byte, len(msg))
	copy(out, msg)
	c.out <- out
	return nil
}

// ok: a local alias that never outlives the call.
type writeConn struct{}

func (writeConn) Send(msg []byte) error {
	tmp := msg
	_ = tmp
	return nil
}

// ok: methods not named Send (or with a different shape) are outside
// the contract.
type notSend struct {
	buf []byte
}

func (n *notSend) Stash(msg []byte) error {
	n.buf = msg
	return nil
}
