package fixture

import "flick/rt"

// ok: the canonical generated-stub shape — call, check error,
// unmarshal, release, return.
func wellBehaved(c *rt.Client) (v uint32, err error) {
	d, err := c.Call(1, "op", false, func(e *rt.Encoder) {})
	if err != nil {
		return
	}
	v = d.U32BE()
	d.Release()
	return
}

func missingRelease(c *rt.Client) (uint32, error) {
	d, err := c.Call(1, "op", false, func(e *rt.Encoder) {}) // want `pooled decoder d obtained here is never released`
	if err != nil {
		return 0, err
	}
	return d.U32BE(), nil
}

func doubleRelease(c *rt.Client) error {
	d, err := c.Call(1, "op", false, func(e *rt.Encoder) {})
	if err != nil {
		return err
	}
	d.Release()
	d.Release() // want `d released twice`
	return nil
}

func useAfterRelease(c *rt.Client) (uint32, error) {
	d, err := c.Call(1, "op", false, func(e *rt.Encoder) {})
	if err != nil {
		return 0, err
	}
	d.Release()
	return d.U32BE(), nil // want `use of d after release`
}

func deferThenRelease(c *rt.Client) error {
	d, err := c.Call(1, "op", false, func(e *rt.Encoder) {})
	if err != nil {
		return err
	}
	defer d.Release()
	_ = d.U32BE()
	d.Release() // want `d released here and again by the deferred release`
	return nil
}

// ok: ownership transferred to the caller by returning the decoder.
func transfersOwnership(c *rt.Client) (*rt.Decoder, error) {
	d, err := c.Call(1, "op", false, func(e *rt.Encoder) {})
	if err != nil {
		return nil, err
	}
	return d, nil
}

// --- promise/stream surfaces: long-lived callback escapes -------------------

// ok: the promise reply is decoded and released in the waiting frame;
// the callback captures the copied value, not the decoder.
func promiseValueCopiedOut(p *rt.Promise, schedule func(func() uint32)) error {
	d, err := p.Wait()
	if err != nil {
		return err
	}
	v := d.U32BE()
	d.Release()
	schedule(func() uint32 { return v })
	return nil
}

// A promise reply decoder handed to a scheduled callback outlives the
// borrow: by the time the callback runs, Release has reissued the
// decoder to another call.
func promiseDecoderEscapes(p *rt.Promise, schedule func(func() uint32)) error {
	d, err := p.Wait()
	if err != nil {
		return err
	}
	schedule(func() uint32 { return d.U32BE() }) // want `pooled decoder d captured by a function literal`
	d.Release()
	return nil
}

// ok: the canonical stream consumer — each chunk decoded and released
// before the next Recv.
func streamConsumer(st *rt.ClientStream) (sum uint32, err error) {
	for {
		d, rerr := st.Recv()
		if rerr != nil {
			return sum, rerr
		}
		sum += d.U32BE()
		d.Release()
	}
}

// A chunk decoder captured by a goroutine races the consumer's Release.
func streamChunkEscapesToGoroutine(st *rt.ClientStream, out chan uint32) error {
	d, err := st.Recv()
	if err != nil {
		return err
	}
	go func() {
		out <- d.U32BE() // want `pooled decoder d captured by a function literal`
	}()
	d.Release()
	return nil
}

// A method value binds the decoder exactly like a closure capture, but
// with no function literal for the capture check to see — the
// historical false negative.
func methodValueEscapes(p *rt.Promise, schedule func(func() uint32)) error {
	d, err := p.Wait()
	if err != nil {
		return err
	}
	schedule(d.U32BE) // want `method value d.U32BE binds the pooled decoder beyond the borrow`
	d.Release()
	return nil
}

// ok: a selector in call position is an ordinary method call, not a
// binding.
func methodCallIsNotABinding(p *rt.Promise) (uint32, error) {
	d, err := p.Wait()
	if err != nil {
		return 0, err
	}
	v := d.U32BE()
	d.Release()
	return v, nil
}

// ok: the borrow, decode, and release all live inside the same closure;
// the closure owns the decoder for its whole lifetime.
func closureOwnsItsBorrow(c *rt.Client) func() (uint32, error) {
	return func() (uint32, error) {
		d, err := c.Call(1, "op", false, func(e *rt.Encoder) {})
		if err != nil {
			return 0, err
		}
		v := d.U32BE()
		d.Release()
		return v, nil
	}
}
