package fixture

import "flick/rt"

// ok: the canonical generated-stub shape — call, check error,
// unmarshal, release, return.
func wellBehaved(c *rt.Client) (v uint32, err error) {
	d, err := c.Call(1, "op", false, func(e *rt.Encoder) {})
	if err != nil {
		return
	}
	v = d.U32BE()
	d.Release()
	return
}

func missingRelease(c *rt.Client) (uint32, error) {
	d, err := c.Call(1, "op", false, func(e *rt.Encoder) {}) // want `pooled decoder d obtained here is never released`
	if err != nil {
		return 0, err
	}
	return d.U32BE(), nil
}

func doubleRelease(c *rt.Client) error {
	d, err := c.Call(1, "op", false, func(e *rt.Encoder) {})
	if err != nil {
		return err
	}
	d.Release()
	d.Release() // want `d released twice`
	return nil
}

func useAfterRelease(c *rt.Client) (uint32, error) {
	d, err := c.Call(1, "op", false, func(e *rt.Encoder) {})
	if err != nil {
		return 0, err
	}
	d.Release()
	return d.U32BE(), nil // want `use of d after release`
}

func deferThenRelease(c *rt.Client) error {
	d, err := c.Call(1, "op", false, func(e *rt.Encoder) {})
	if err != nil {
		return err
	}
	defer d.Release()
	_ = d.U32BE()
	d.Release() // want `d released here and again by the deferred release`
	return nil
}

// ok: ownership transferred to the caller by returning the decoder.
func transfersOwnership(c *rt.Client) (*rt.Decoder, error) {
	d, err := c.Call(1, "op", false, func(e *rt.Encoder) {})
	if err != nil {
		return nil, err
	}
	return d, nil
}
