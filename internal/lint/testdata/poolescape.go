package fixture

import "flick/rt"

type session struct {
	dec *rt.Decoder
	enc *rt.Encoder
}

var globalDec *rt.Decoder

func escapeToField(s *session, c *rt.Client) error {
	d, err := c.Call(1, "op", false, func(e *rt.Encoder) {})
	if err != nil {
		return err
	}
	s.dec = d // want `pooled \*rt\.Decoder stored into a field or global`
	d.Release()
	return nil
}

func escapeToGlobal(c *rt.Client) error {
	d, err := c.Call(1, "op", false, func(e *rt.Encoder) {})
	if err != nil {
		return err
	}
	globalDec = d // want `pooled \*rt\.Decoder stored into a field or global`
	d.Release()
	return nil
}

func escapeToComposite(c *rt.Client) (*session, error) {
	d, err := c.Call(1, "op", false, func(e *rt.Encoder) {})
	if err != nil {
		return nil, err
	}
	s := &session{dec: d} // want `pooled \*rt\.Decoder stored into a composite value`
	d.Release()
	return s, nil
}

// ok: clearing the slot is how handoff protocols retire a decoder.
func clearSlot(s *session) {
	s.dec = nil
}

// ok: local variables don't outlive the call.
func localOnly(c *rt.Client) error {
	d, err := c.Call(1, "op", false, func(e *rt.Encoder) {})
	if err != nil {
		return err
	}
	alias := d
	_ = alias
	d.Release()
	return nil
}

// ok: a sanctioned handoff suppresses the finding.
func sanctionedHandoff(s *session, d *rt.Decoder) {
	s.dec = d //lint:allow poolescape
}
