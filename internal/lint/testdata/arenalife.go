package fixture

import "flick/rt"

type blob []byte

type header struct {
	body []byte
}

var stashedView []byte

// ok: the view is copied out before the borrow ends; only the copy
// survives the Release.
func copiesOut(d *rt.Decoder) []byte {
	v := d.AliasNext(16)
	out := append([]byte(nil), v...)
	d.Release()
	return out
}

// ok: the generated-Unmarshal shape — the view is handed to the caller
// WITHOUT releasing the decoder. Ownership of the borrow transfers with
// the return value.
func transfersView(d *rt.Decoder) (ret []byte) {
	ret = d.AliasNext(16)
	return
}

// ok: filling a caller-owned out value without ending the borrow is the
// same ownership transfer, spelled as a store.
func fillsCallerOut(d *rt.Decoder, out *header) {
	out.body = d.AliasNext(16)
}

func storesGlobal(d *rt.Decoder) {
	stashedView = d.AliasNext(8) // want `arena view stored into package-level stashedView`
	d.Release()
}

func sendsOnChannel(d *rt.Decoder, ch chan []byte) {
	v := d.AliasNext(8)
	ch <- v // want `arena view v sent on a channel`
	d.Release()
}

// The conversion the stub generator wraps named byte presentations in
// does not launder the alias.
func sendsConvertedView(d *rt.Decoder, ch chan blob) {
	v := blob(d.AliasNext(8))
	ch <- v // want `arena view v sent on a channel`
	d.Release()
}

func storesFieldThenReleases(d *rt.Decoder, h *header) {
	v := d.AliasNext(8)
	h.body = v // want `arena view v stored into a field or global`
	d.Release()
}

func directStoreThenReleases(d *rt.Decoder, h *header) {
	h.body = d.AliasNext(8) // want `arena view stored into a field or global`
	d.Release()
}

func returnsAfterBorrowEnds(d *rt.Decoder) []byte {
	v := d.AliasNext(8)
	defer d.Release()
	return v // want `arena view v returned after its borrow ends`
}

func capturedByClosure(d *rt.Decoder, schedule func(func() byte)) {
	v := d.AliasNext(8)
	schedule(func() byte { return v[0] }) // want `arena view v captured by a function literal`
	d.Release()
}

func compositeEscape(d *rt.Decoder, out chan header) {
	v := d.AliasNext(8)
	h := header{body: v} // want `arena view v stored into a composite value`
	d.Release()
	out <- h
}

func usedAfterRelease(d *rt.Decoder) byte {
	v := d.AliasNext(8)
	d.Release()
	return v[0] // want `use of arena view v after the decoder's release`
}

// ok: the closure owns its whole borrow — acquire, use, and release all
// inside the literal.
func closureOwnsItsView(d *rt.Decoder) func() []byte {
	return func() []byte {
		v := d.AliasNext(8)
		out := append([]byte(nil), v...)
		d.Release()
		return out
	}
}
