// Package lint implements flick-lint, a small static-analysis framework
// (in the spirit of go/analysis, built only on the standard library's
// go/ast and go/types) plus the analyzers that enforce Flick-Go's
// runtime buffer-ownership contract on generated stubs and on package
// rt itself:
//
//   - releasecheck — every pooled *rt.Decoder obtained from a
//     Call-shaped method (rt.Client.Call, rt.Promise.Wait,
//     rt.ClientStream.Recv, and compatible wrappers) is Released
//     exactly once, never used after release, and never captured by a
//     function literal outliving the borrow (the rt/pool.go contract:
//     the decoder returns to the pool on Release, so a later use —
//     including one deferred into a promise or stream callback — reads
//     another call's reply).
//   - sendsafe — implementations of Conn.Send must not retain the
//     message buffer (store it in a field, a global, or a channel): the
//     caller reuses the buffer as soon as Send returns.
//   - poolescape — pooled objects (*rt.Decoder, *rt.Encoder) must not
//     be stored into struct fields or package-level variables; a pooled
//     object's lifetime is the call that borrowed it.
//   - arenalife — slices obtained from Decoder.AliasNext alias a pooled
//     receive arena and must not escape their borrow (globals, channel
//     sends, stores or returns past the decoder's Release); the one
//     sanctioned escape is ownership transfer, the generated Unmarshal
//     shape that hands the view on without releasing.
//
// A finding on a line carrying a `//lint:allow <analyzer>` comment is
// suppressed — used by rt's sanctioned reply-handoff store.
//
// The framework deliberately mirrors go/analysis (Analyzer, Pass,
// Reportf) so the analyzers can be ported to x/tools verbatim if that
// dependency ever becomes available.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one named check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// `//lint:allow <name>` suppressions.
	Name string
	// Doc is a one-paragraph description.
	Doc string
	// Run inspects one package through the Pass.
	Run func(*Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
	// allow maps "file:line" to the set of analyzer names suppressed on
	// that line.
	allow map[string]map[string]bool
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Msg      string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Msg, d.Analyzer)
}

// Reportf records a finding at pos unless the line carries a matching
// `//lint:allow` comment.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	key := fmt.Sprintf("%s:%d", position.Filename, position.Line)
	if names, ok := p.allow[key]; ok && (names[p.Analyzer.Name] || names["*"]) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Msg:      fmt.Sprintf(format, args...),
	})
}

var allowRE = regexp.MustCompile(`//lint:allow\s+([\w*,]+)`)

// buildAllow scans the files' comments for suppression directives.
func buildAllow(fset *token.FileSet, files []*ast.File) map[string]map[string]bool {
	allow := map[string]map[string]bool{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				if allow[key] == nil {
					allow[key] = map[string]bool{}
				}
				for _, name := range strings.Split(m[1], ",") {
					allow[key][strings.TrimSpace(name)] = true
				}
			}
		}
	}
	return allow
}

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Analyze runs the analyzers over the package and returns their
// findings sorted by position.
func Analyze(p *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	allow := buildAllow(p.Fset, p.Files)
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     p.Fset,
			Files:    p.Files,
			Pkg:      p.Pkg,
			Info:     p.Info,
			diags:    &diags,
			allow:    allow,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("lint: %s: %w", a.Name, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return diags, nil
}

// All returns the default analyzer set.
func All() []*Analyzer {
	return []*Analyzer{ReleaseCheck, SendSafe, PoolEscape, ArenaLife}
}

// --- shared type helpers ----------------------------------------------------

// rtPath is the import path of the runtime whose ownership contract the
// analyzers enforce.
const rtPath = "flick/rt"

// isRTNamed reports whether t is the named type flick/rt.<name>.
func isRTNamed(t types.Type, name string) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == rtPath
}

// isPtrToRT reports whether t is *flick/rt.<name>.
func isPtrToRT(t types.Type, name string) bool {
	p, ok := t.(*types.Pointer)
	return ok && isRTNamed(p.Elem(), name)
}

// isPooledType reports whether t is a pooled runtime object pointer.
func isPooledType(t types.Type) bool {
	return isPtrToRT(t, "Decoder") || isPtrToRT(t, "Encoder")
}
