package lint

import (
	"go/ast"
	"go/types"
)

// ArenaLife enforces the arena-borrow contract on decode-side alias
// views. A slice obtained from Decoder.AliasNext aliases a pooled
// receive arena: its sanctioned lifetime is the decoder's borrow, and
// the one sanctioned way out is ownership transfer — a function that
// hands the view onward (returns it, writes it into the caller's out
// value) WITHOUT releasing the decoder, which is exactly the generated
// Unmarshal shape. Everything else defeats the contract:
//
//   - stored into a package-level variable — outlives every borrow;
//   - sent on a channel — handed to a goroutine with no lifetime
//     relationship to the borrow at all;
//   - stored into a field, deref, or composite value by a function
//     that also releases the decoder — the release declares the borrow
//     over, so the stored view outlives its own declared lifetime;
//   - returned by a function that releases the decoder — same
//     contradiction (either copy the bytes out before Release, or drop
//     the Release and transfer ownership);
//   - captured by a function literal that may run after Release;
//   - used after the decoder's Release in straight-line order.
//
// The runtime backstops all of these by pinning an aliased arena at
// Release (an escaped view can never observe recycled bytes — it can
// only forfeit a buffer reuse, counted in ZeroCopyStats.ArenaPinned),
// so arenalife findings are discipline bugs, not memory-safety holes:
// each one is a pin the code did not need to pay for.
//
// Like releasecheck, the analysis is flow-approximate: straight-line
// statement order inside blocks, branches independent — the shapes the
// stub generator emits.
var ArenaLife = &Analyzer{
	Name: "arenalife",
	Doc:  "arena-borrowed decode views must not escape their borrow",
	Run:  runArenaLife,
}

func runArenaLife(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFuncArenaViews(pass, fn)
		}
	}
	return nil
}

// arenaView is one alias-view binding within a function.
type arenaView struct {
	obj types.Object // the variable bound to the view
	dec types.Object // the decoder it borrows from
	pos ast.Node     // the acquiring statement
}

func checkFuncArenaViews(pass *Pass, fn *ast.FuncDecl) {
	// Which decoders does this function release? A release means the
	// borrow ends inside this frame, which arms the escape rules that
	// ownership transfer would otherwise sanction.
	released := map[types.Object]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Release" {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok {
			if obj := pass.Info.Uses[id]; obj != nil && isPtrToRT(obj.Type(), "Decoder") {
				released[obj] = true
			}
		}
		return true
	})

	var views []arenaView
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			dec, ok := aliasNextSource(pass, rhs)
			if !ok {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				if id.Name == "_" {
					continue
				}
				if isPkgLevel(pass, id) {
					pass.Reportf(as.Pos(), "arena view stored into package-level %s (it aliases a pooled receive buffer whose borrow ends at Release)", id.Name)
					continue
				}
				obj := pass.Info.Defs[id]
				if obj == nil {
					obj = pass.Info.Uses[id]
				}
				if obj != nil {
					views = append(views, arenaView{obj: obj, dec: dec, pos: as})
				}
				continue
			}
			// The view is stored without ever being named.
			if escapingViewDest(pass, as.Lhs[i], released[dec]) {
				pass.Reportf(as.Pos(), "arena view stored into a field or global (it aliases a pooled receive buffer whose borrow ends at Release)")
			}
		}
		return true
	})

	for _, v := range views {
		checkViewEscapes(pass, fn, v, released[v.dec])
	}
}

// aliasNextSource reports whether expr is a Decoder.AliasNext call —
// possibly wrapped in a single-argument conversion, the shape named
// []byte presentations decode through — and returns the decoder.
func aliasNextSource(pass *Pass, expr ast.Expr) (types.Object, bool) {
	call, ok := expr.(*ast.CallExpr)
	if !ok {
		return nil, false
	}
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		return aliasNextSource(pass, call.Args[0])
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "AliasNext" {
		return nil, false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return nil, false
	}
	obj := pass.Info.Uses[id]
	if obj == nil || !isPtrToRT(obj.Type(), "Decoder") {
		return nil, false
	}
	return obj, true
}

// escapingViewDest reports whether storing a view into lhs escapes the
// borrow. Package-level destinations always do; fields, derefs, and
// indexed stores only when the borrow ends in this function (borrowEnds)
// — otherwise the store is the ownership-transfer shape (generated
// Unmarshal writing into the caller's out value).
func escapingViewDest(pass *Pass, lhs ast.Expr, borrowEnds bool) bool {
	switch l := lhs.(type) {
	case *ast.Ident:
		return isPkgLevel(pass, l)
	case *ast.SelectorExpr:
		return borrowEnds || isPkgLevel(pass, rootExpr(l.X))
	case *ast.StarExpr:
		return borrowEnds || isPkgLevel(pass, rootExpr(l.X))
	case *ast.IndexExpr:
		return borrowEnds || isPkgLevel(pass, rootExpr(l.X))
	}
	return false
}

// rootExpr strips selectors, derefs, and indexes down to the base
// expression.
func rootExpr(e ast.Expr) ast.Expr {
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return e
		}
	}
}

func checkViewEscapes(pass *Pass, fn *ast.FuncDecl, v arenaView, borrowEnds bool) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			if usesView(pass, n.Value, v.obj) {
				pass.Reportf(n.Pos(), "arena view %s sent on a channel (the receiving goroutine has no lifetime relationship to the borrow)", v.obj.Name())
			}
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				if id, ok := rhs.(*ast.Ident); ok && pass.Info.Uses[id] == v.obj {
					if escapingViewDest(pass, n.Lhs[i], borrowEnds) {
						pass.Reportf(rhs.Pos(), "arena view %s stored into a field or global (it aliases a pooled receive buffer whose borrow ends at Release)", v.obj.Name())
					}
				}
			}
		case *ast.CompositeLit:
			if !borrowEnds {
				return true
			}
			for _, el := range n.Elts {
				val := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					val = kv.Value
				}
				if id, ok := val.(*ast.Ident); ok && pass.Info.Uses[id] == v.obj {
					pass.Reportf(val.Pos(), "arena view %s stored into a composite value that outlives its borrow (the decoder is released in this function)", v.obj.Name())
				}
			}
		case *ast.ReturnStmt:
			if !borrowEnds {
				return true
			}
			for _, r := range n.Results {
				if id, ok := r.(*ast.Ident); ok && pass.Info.Uses[id] == v.obj {
					pass.Reportf(id.Pos(), "arena view %s returned after its borrow ends (this function releases the decoder — copy the bytes out, or drop the Release to transfer ownership)", v.obj.Name())
				}
			}
		case *ast.FuncLit:
			if containsNode(n, v.pos) {
				// The acquisition lives inside this literal; it owns
				// the borrow.
				return true
			}
			if !borrowEnds {
				return true
			}
			ast.Inspect(n.Body, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && pass.Info.Uses[id] == v.obj {
					pass.Reportf(id.Pos(), "arena view %s captured by a function literal (the callback may run after the decoder's Release)", v.obj.Name())
				}
				return true
			})
			return false
		}
		return true
	})

	// Straight-line use-after-release: inside every block, statements
	// after an unconditional release of the view's decoder must not
	// touch the view again.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		block, ok := n.(*ast.BlockStmt)
		if !ok {
			return true
		}
		releasedAt := -1
		for i, s := range block.List {
			if releasedAt >= 0 {
				reportViewUses(pass, s, v.obj)
				continue
			}
			if es, ok := s.(*ast.ExprStmt); ok {
				if call, ok := es.X.(*ast.CallExpr); ok && isReleaseOf(pass, call, v.dec) {
					releasedAt = i
				}
			}
		}
		return true
	})
}

// usesView reports whether expr references the view variable.
func usesView(pass *Pass, expr ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.Info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// reportViewUses flags every reference to the view inside stmt.
func reportViewUses(pass *Pass, stmt ast.Stmt, obj types.Object) {
	ast.Inspect(stmt, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.Info.Uses[id] == obj {
			pass.Reportf(id.Pos(), "use of arena view %s after the decoder's release (the arena may already carry another message's bytes)", obj.Name())
		}
		return true
	})
}
