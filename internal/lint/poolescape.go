package lint

import (
	"go/ast"
	"go/types"
)

// PoolEscape flags pooled runtime objects (*rt.Decoder, *rt.Encoder)
// escaping their borrowing call: stores into struct fields, package
// -level variables, or composite values that outlive the call. A pooled
// object returns to its sync.Pool on release, so a retained pointer
// silently starts reading (or writing) another call's buffer.
//
// rt's own reply-handoff store (the reader delivering a decoder to the
// pending call slot) is the one sanctioned escape; it is annotated with
// `//lint:allow poolescape`.
var PoolEscape = &Analyzer{
	Name: "poolescape",
	Doc:  "pooled rt objects must not be stored into fields or globals",
	Run:  runPoolEscape,
}

func runPoolEscape(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					if len(n.Lhs) != len(n.Rhs) {
						break
					}
					if !isPooledExpr(pass, rhs) {
						continue
					}
					if isEscapingDest(pass, n.Lhs[i]) {
						pass.Reportf(n.Pos(), "pooled %s stored into a field or global (its lifetime is the call that borrowed it)", typeName(pass, rhs))
					}
				}
			case *ast.CompositeLit:
				for _, el := range n.Elts {
					v := el
					if kv, ok := el.(*ast.KeyValueExpr); ok {
						v = kv.Value
					}
					if isPooledExpr(pass, v) {
						pass.Reportf(v.Pos(), "pooled %s stored into a composite value (its lifetime is the call that borrowed it)", typeName(pass, v))
					}
				}
			case *ast.ValueSpec:
				// Package-level `var g = <pooled>`.
				if pass.Info.Defs[n.Names[0]] != nil &&
					isPkgLevelSpec(pass, n) {
					for _, v := range n.Values {
						if isPooledExpr(pass, v) {
							pass.Reportf(v.Pos(), "pooled %s stored into a package-level variable", typeName(pass, v))
						}
					}
				}
			}
			return true
		})
	}
	return nil
}

// isPooledExpr reports whether expr's type is a pooled runtime object
// pointer. Nil literals don't count: assigning nil to a field is how
// the slot is cleared.
func isPooledExpr(pass *Pass, expr ast.Expr) bool {
	tv, ok := pass.Info.Types[expr]
	if !ok || tv.IsNil() {
		return false
	}
	return isPooledType(tv.Type)
}

func typeName(pass *Pass, expr ast.Expr) string {
	tv, ok := pass.Info.Types[expr]
	if !ok {
		return "object"
	}
	// Qualify foreign packages by name, not import path: the contract
	// names read as written at the use site ("*rt.Decoder").
	return types.TypeString(tv.Type, func(p *types.Package) string {
		if p == pass.Pkg {
			return ""
		}
		return p.Name()
	})
}

func isPkgLevelSpec(pass *Pass, spec *ast.ValueSpec) bool {
	for _, name := range spec.Names {
		if obj := pass.Info.Defs[name]; obj != nil {
			if v, ok := obj.(*types.Var); ok && v.Parent() == pass.Pkg.Scope() {
				return true
			}
		}
	}
	return false
}
