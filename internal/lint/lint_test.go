package lint_test

import (
	"bufio"
	"os"
	"path/filepath"
	"regexp"
	"testing"

	"flick/internal/lint"
)

// The analyzer tests follow the x/tools analysistest convention without
// the dependency: each fixture under testdata/ marks every expected
// finding with a trailing
//
//	// want `regexp`
//
// comment on the offending line. The harness type-checks the fixture
// against the real flick/rt export data, runs one analyzer, and demands
// a one-to-one match between expectations and diagnostics — an
// unexpected finding fails the test exactly like a missed one.

var wantRE = regexp.MustCompile("// want `([^`]+)`")

type want struct {
	line    int
	pattern *regexp.Regexp
	matched bool
}

func parseWants(t *testing.T, path string) []*want {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("open fixture: %v", err)
	}
	defer f.Close()
	var wants []*want
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		m := wantRE.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		re, err := regexp.Compile(m[1])
		if err != nil {
			t.Fatalf("%s:%d: bad want pattern %q: %v", path, line, m[1], err)
		}
		wants = append(wants, &want{line: line, pattern: re})
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("read fixture: %v", err)
	}
	return wants
}

func runFixture(t *testing.T, file string, a *lint.Analyzer) {
	t.Helper()
	exports, err := lint.ExportsFor("flick/rt")
	if err != nil {
		t.Fatalf("resolving flick/rt export data: %v", err)
	}
	path := filepath.Join("testdata", file)
	pkg, err := lint.TypecheckFiles("fixture", []string{path}, exports)
	if err != nil {
		t.Fatalf("typechecking fixture: %v", err)
	}
	diags, err := lint.Analyze(pkg, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	wants := parseWants(t, path)
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.matched && w.line == d.Pos.Line && w.pattern.MatchString(d.Msg) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", path, w.line, w.pattern)
		}
	}
}

func TestReleaseCheck(t *testing.T) { runFixture(t, "releasecheck.go", lint.ReleaseCheck) }
func TestSendSafe(t *testing.T)     { runFixture(t, "sendsafe.go", lint.SendSafe) }
func TestPoolEscape(t *testing.T)   { runFixture(t, "poolescape.go", lint.PoolEscape) }
func TestArenaLife(t *testing.T)    { runFixture(t, "arenalife.go", lint.ArenaLife) }

// TestFixturesCleanUnderOtherAnalyzers pins down that each fixture
// violates only its own analyzer's contract: running the full set over a
// fixture must produce no findings beyond the annotated ones.
func TestFixturesCleanUnderOtherAnalyzers(t *testing.T) {
	exports, err := lint.ExportsFor("flick/rt")
	if err != nil {
		t.Fatalf("resolving flick/rt export data: %v", err)
	}
	byFixture := map[string]string{
		"releasecheck.go": "releasecheck",
		"sendsafe.go":     "sendsafe",
		"poolescape.go":   "poolescape",
		"arenalife.go":    "arenalife",
	}
	for file, own := range byFixture {
		path := filepath.Join("testdata", file)
		pkg, err := lint.TypecheckFiles("fixture", []string{path}, exports)
		if err != nil {
			t.Fatalf("typechecking %s: %v", file, err)
		}
		diags, err := lint.Analyze(pkg, lint.All())
		if err != nil {
			t.Fatalf("analyze %s: %v", file, err)
		}
		for _, d := range diags {
			if d.Analyzer != own {
				t.Errorf("%s: cross-analyzer finding: %s", file, d)
			}
		}
	}
}

// TestRuntimeIsClean keeps the runtime itself honest against its own
// ownership contract: flick/rt must lint clean (the two sanctioned
// reply handoffs carry //lint:allow annotations).
func TestRuntimeIsClean(t *testing.T) {
	pkgs, err := lint.Load([]string{"flick/rt"})
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	for _, p := range pkgs {
		diags, err := lint.Analyze(p, lint.All())
		if err != nil {
			t.Fatalf("analyze: %v", err)
		}
		for _, d := range diags {
			t.Errorf("finding in flick/rt: %s", d)
		}
	}
}
