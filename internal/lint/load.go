package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// The loader resolves package patterns with `go list -deps -export`,
// which compiles (or reuses from the build cache) gc export data for
// every dependency, then type-checks each matched package from source
// against that export data. This is the same shape as go/packages'
// LoadTypes mode, built directly on the go tool so the linter has no
// dependency outside the standard library.

type listedPkg struct {
	ImportPath      string
	Dir             string
	Export          string
	GoFiles         []string
	CompiledGoFiles []string
	DepOnly         bool
	Standard        bool
	Incomplete      bool
	Error           *struct{ Err string }
}

// Load lists the patterns and type-checks every matched (non-dependency)
// package.
func Load(patterns []string) ([]*Package, error) {
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Dir,Export,GoFiles,CompiledGoFiles,DepOnly,Standard,Incomplete,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list: %v\n%s", err, errb.String())
	}

	exports := map[string]string{}
	var targets []*listedPkg
	dec := json.NewDecoder(&out)
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			q := p
			targets = append(targets, &q)
		}
	}

	var pkgs []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 && len(t.CompiledGoFiles) == 0 {
			continue
		}
		pkg, err := typecheck(t, exports)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// typecheck parses and type-checks one package from source, resolving
// imports through the export-data map.
func typecheck(meta *listedPkg, exports map[string]string) (*Package, error) {
	files := meta.CompiledGoFiles
	if len(files) == 0 {
		files = meta.GoFiles
	}
	var paths []string
	for _, f := range files {
		if !filepath.IsAbs(f) {
			f = filepath.Join(meta.Dir, f)
		}
		paths = append(paths, f)
	}
	return TypecheckFiles(meta.ImportPath, paths, exports)
}

// TypecheckFiles parses and type-checks one package built from the given
// source files, resolving imports via the importPath→export-data map.
// It is the core the loader, the vettool mode, and the analyzer tests
// all share.
func TypecheckFiles(importPath string, filenames []string, exports map[string]string) (*Package, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		files = append(files, f)
	}

	lookup := func(path string) (io.ReadCloser, error) {
		exp, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(exp)
	}
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", lookup),
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Implicits:  map[ast.Node]types.Object{},
	}
	pkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: typecheck %s: %v", importPath, err)
	}
	return &Package{Fset: fset, Files: files, Pkg: pkg, Info: info}, nil
}

// ExportsFor runs `go list -deps -export` for the given packages and
// returns the importPath→export-file map (used by the test harness and
// the vettool mode to resolve fixture imports).
func ExportsFor(pkgs ...string) (map[string]string, error) {
	args := append([]string{
		"list", "-deps", "-export", "-json=ImportPath,Export",
	}, pkgs...)
	cmd := exec.Command("go", args...)
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list: %v\n%s", err, errb.String())
	}
	exports := map[string]string{}
	dec := json.NewDecoder(&out)
	for {
		var p struct{ ImportPath, Export string }
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, err
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}
