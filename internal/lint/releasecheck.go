package lint

import (
	"go/ast"
	"go/types"
)

// ReleaseCheck enforces the pooled-decoder ownership contract of
// rt/pool.go on call sites: a *rt.Decoder obtained from a Call-shaped
// method (two results: *rt.Decoder, error) is borrowed from the
// decoder pool and must be
//
//   - released (d.Release()) somewhere in the acquiring function,
//     unless ownership is transferred by returning the decoder;
//   - released at most once on any straight-line path;
//   - never used after an unconditional release (the object may already
//     be carrying another call's reply); and
//   - never captured by a function literal that does not itself contain
//     the borrow. This is the promise/stream ownership contract: the
//     async and streaming surfaces hand closures to the runtime and to
//     user schedulers whose execution outlives the borrowing frame, so
//     a captured decoder is a latent use-after-release even when the
//     straight-line order looks safe. Decode values out of the chunk or
//     reply first and let the closure capture the copies.
//
// The check is flow-approximate rather than path-exact: it reasons
// about straight-line statement order inside each block and treats
// branches as independent, which matches the shapes the stub generator
// emits and keeps the analyzer dependency-free.
var ReleaseCheck = &Analyzer{
	Name: "releasecheck",
	Doc:  "pooled rt.Decoder must be released exactly once and never used after release",
	Run:  runReleaseCheck,
}

func runReleaseCheck(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFuncReleases(pass, fn)
		}
	}
	return nil
}

// acquisition is one borrow of a pooled decoder within a function.
type acquisition struct {
	obj types.Object // the variable bound to the decoder
	pos ast.Node     // the acquiring statement
}

func checkFuncReleases(pass *Pass, fn *ast.FuncDecl) {
	var acquired []acquisition
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || !isDecoderCall(pass, call) {
			return true
		}
		if len(as.Lhs) != 2 {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		obj := pass.Info.Defs[id]
		if obj == nil {
			obj = pass.Info.Uses[id]
		}
		if obj != nil {
			acquired = append(acquired, acquisition{obj: obj, pos: as})
		}
		return true
	})

	for _, acq := range acquired {
		checkAcquisition(pass, fn, acq)
	}
}

// isDecoderCall reports whether call returns (*rt.Decoder, error) — the
// pool-borrowing shape of rt.Client.Call and compatible wrappers.
func isDecoderCall(pass *Pass, call *ast.CallExpr) bool {
	tv, ok := pass.Info.Types[call]
	if !ok {
		return false
	}
	tup, ok := tv.Type.(*types.Tuple)
	if !ok || tup.Len() != 2 {
		return false
	}
	if !isPtrToRT(tup.At(0).Type(), "Decoder") {
		return false
	}
	named, ok := tup.At(1).Type().(*types.Named)
	return ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}

func checkAcquisition(pass *Pass, fn *ast.FuncDecl, acq acquisition) {
	releases := 0
	returned := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isReleaseOf(pass, n, acq.obj) {
				releases++
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if id, ok := r.(*ast.Ident); ok && pass.Info.Uses[id] == acq.obj {
					returned = true
				}
			}
		}
		return true
	})
	if releases == 0 && !returned {
		pass.Reportf(acq.pos.Pos(), "pooled decoder %s obtained here is never released (rt/pool.go contract: Release after unmarshal)", acq.obj.Name())
		return
	}
	// Straight-line double-release / use-after-release: inside every
	// block, statements after an unconditional (top-level) release must
	// not touch the decoder again.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		block, ok := n.(*ast.BlockStmt)
		if !ok {
			return true
		}
		checkBlockAfterRelease(pass, block.List, acq.obj)
		return true
	})
	checkCallbackEscapes(pass, fn, acq)
	checkMethodValueEscapes(pass, fn, acq)
}

// checkMethodValueEscapes flags method values formed on a pooled
// decoder: `schedule(d.Bytes)` binds d into a func value exactly like a
// closure capture, but with no *ast.FuncLit for checkCallbackEscapes to
// see — the historical false negative. A selector on the decoder whose
// selection kind is MethodVal and which is not itself the function
// being called is such a binding; whoever holds the func can invoke it
// after the borrow ends.
func checkMethodValueEscapes(pass *Pass, fn *ast.FuncDecl, acq acquisition) {
	// Selectors in call position (d.U32BE() etc.) are ordinary method
	// calls, not bindings.
	called := map[ast.Expr]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			called[call.Fun] = true
		}
		return true
	})
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || called[sel] {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok || pass.Info.Uses[id] != acq.obj {
			return true
		}
		if s := pass.Info.Selections[sel]; s != nil && s.Kind() == types.MethodVal {
			pass.Reportf(sel.Pos(), "method value %s.%s binds the pooled decoder beyond the borrow (it can be invoked after release — copy decoded values out instead)", acq.obj.Name(), sel.Sel.Name)
		}
		return true
	})
}

// checkCallbackEscapes flags references to a pooled decoder inside
// function literals that do not contain the borrow itself. The promise
// and stream surfaces hand closures to the runtime (marshal callbacks,
// resolution hooks) and user code hands chunk handlers to schedulers
// and goroutines; any of these may run after the acquiring frame has
// released the decoder back to the pool, at which point the capture
// reads another call's reply. The borrow-containing closure is exempt —
// a closure that performs its own call/decode/release cycle owns the
// decoder for its whole lifetime.
func checkCallbackEscapes(pass *Pass, fn *ast.FuncDecl, acq acquisition) {
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		fl, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		if containsNode(fl, acq.pos) {
			// The borrow lives inside this literal; its direct uses are
			// fine, but a deeper literal capturing the decoder is not.
			return true
		}
		ast.Inspect(fl.Body, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok && pass.Info.Uses[id] == acq.obj {
				pass.Reportf(id.Pos(), "pooled decoder %s captured by a function literal (promise/stream contract: the callback may run after release — copy decoded values out instead)", acq.obj.Name())
			}
			return true
		})
		// Uses in nested literals were just reported; don't descend and
		// report them again.
		return false
	}
	ast.Inspect(fn.Body, walk)
}

// containsNode reports whether outer's source range encloses inner.
func containsNode(outer, inner ast.Node) bool {
	return outer.Pos() <= inner.Pos() && inner.End() <= outer.End()
}

// isReleaseOf reports whether call is obj.Release().
func isReleaseOf(pass *Pass, call *ast.CallExpr, obj types.Object) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Release" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && pass.Info.Uses[id] == obj
}

// checkBlockAfterRelease scans one statement list: once a top-level
// obj.Release() statement executes, every later statement in the same
// list runs strictly after it, so any reference to obj there is a
// double release or a use-after-release.
func checkBlockAfterRelease(pass *Pass, stmts []ast.Stmt, obj types.Object) {
	releasedAt := -1
	for i, s := range stmts {
		if releasedAt >= 0 {
			reportUsesAfterRelease(pass, s, obj)
			continue
		}
		if es, ok := s.(*ast.ExprStmt); ok {
			if call, ok := es.X.(*ast.CallExpr); ok && isReleaseOf(pass, call, obj) {
				releasedAt = i
			}
		}
		if ds, ok := s.(*ast.DeferStmt); ok && isReleaseOf(pass, ds.Call, obj) {
			// defer obj.Release() runs last; a later explicit release in
			// this function is a double release.
			for _, later := range stmts[i+1:] {
				ast.Inspect(later, func(n ast.Node) bool {
					if call, ok := n.(*ast.CallExpr); ok && isReleaseOf(pass, call, obj) {
						pass.Reportf(call.Pos(), "%s released here and again by the deferred release", obj.Name())
					}
					return true
				})
			}
		}
	}
}

// reportUsesAfterRelease flags every reference to obj inside stmt.
func reportUsesAfterRelease(pass *Pass, stmt ast.Stmt, obj types.Object) {
	ast.Inspect(stmt, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isReleaseOf(pass, call, obj) {
			pass.Reportf(call.Pos(), "%s released twice (pooled decoders are released exactly once)", obj.Name())
			return false
		}
		if id, ok := n.(*ast.Ident); ok && pass.Info.Uses[id] == obj {
			pass.Reportf(id.Pos(), "use of %s after release (the decoder may already carry another call's reply)", obj.Name())
		}
		return true
	})
}
