package presc

import (
	"strings"
	"testing"

	"flick/internal/mint"
	"flick/internal/pres"
)

func stub(name string) *Stub {
	return &Stub{
		Kind:    ClientCall,
		Name:    name,
		Op:      "op",
		Request: &mint.Struct{},
		Reply:   &mint.Union{Discrim: mint.U32()},
	}
}

func TestValidateOK(t *testing.T) {
	s := stub("A_f")
	s.Params = []ParamPres{{
		Name: "x", Role: RoleRequest,
		Request: &pres.Node{Kind: pres.DirectKind, Mint: mint.I32(), CType: "int32"},
	}}
	f := &File{Side: Client, Lang: "go", Stubs: []*Stub{s}}
	if err := Validate(f); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateErrors(t *testing.T) {
	mk := func(mut func(*File)) error {
		s := stub("A_f")
		f := &File{Side: Client, Lang: "go", Stubs: []*Stub{s}}
		mut(f)
		return Validate(f)
	}
	tests := []struct {
		name string
		mut  func(*File)
		sub  string
	}{
		{"empty name", func(f *File) { f.Stubs[0].Name = "" }, "empty name"},
		{"dup name", func(f *File) { f.Stubs = append(f.Stubs, stub("A_f")) }, "duplicate"},
		{"nil request", func(f *File) { f.Stubs[0].Request = nil }, "nil request"},
		{"oneway mismatch", func(f *File) { f.Stubs[0].Oneway = true }, "oneway"},
		{
			"role without pres",
			func(f *File) { f.Stubs[0].Params = []ParamPres{{Name: "x", Role: RoleRequest}} },
			"without request pres",
		},
		{
			"reply role without pres",
			func(f *File) { f.Stubs[0].Params = []ParamPres{{Name: "x", Role: RoleReply}} },
			"without reply pres",
		},
		{"bad side", func(f *File) { f.Side = Side(9) }, "bad side"},
	}
	for _, tt := range tests {
		err := mk(tt.mut)
		if err == nil {
			t.Errorf("%s: no error", tt.name)
			continue
		}
		if !strings.Contains(err.Error(), tt.sub) {
			t.Errorf("%s: err = %v, want %q", tt.name, err, tt.sub)
		}
	}
}

func TestParamSelectors(t *testing.T) {
	n := &pres.Node{Kind: pres.DirectKind, Mint: mint.I32(), CType: "int32"}
	s := stub("A_f")
	s.Params = []ParamPres{
		{Name: "in1", Role: RoleRequest, Request: n},
		{Name: "out1", Role: RoleReply, Reply: n},
		{Name: "io", Role: RoleBoth, Request: n, Reply: n},
	}
	reqs := s.RequestParams()
	if len(reqs) != 2 || reqs[0].Name != "in1" || reqs[1].Name != "io" {
		t.Errorf("RequestParams = %+v", reqs)
	}
	reps := s.ReplyParams()
	if len(reps) != 2 || reps[0].Name != "out1" || reps[1].Name != "io" {
		t.Errorf("ReplyParams = %+v", reps)
	}
}

func TestStrings(t *testing.T) {
	if Client.String() != "client" || Server.String() != "server" {
		t.Error("Side names")
	}
	for k, want := range map[StubKind]string{
		ClientCall: "client_call", ServerDispatch: "server_dispatch",
		ServerWork: "server_work", SendOnly: "send_only",
	} {
		if k.String() != want {
			t.Errorf("StubKind %d = %q", int(k), k.String())
		}
	}
}
