// Package presc defines PRES-C (and its Go sibling): the complete
// description of an interface presentation handed from a presentation
// generator to a back end. A presc.File bundles, for one side (client or
// server), the target-language declarations, and for every stub the MINT
// message types plus the PRES trees connecting message data to the stub's
// parameters.
//
// A PRES-C file describes everything a client or server must know to use
// the stubs — everything except the message format, data encoding, and
// transport, which remain the back end's domain.
package presc

import (
	"fmt"

	"flick/internal/mint"
	"flick/internal/pres"
)

// Side selects the client or server presentation of an interface.
type Side int

const (
	Client Side = iota
	Server
)

func (s Side) String() string {
	if s == Client {
		return "client"
	}
	return "server"
}

// StubKind classifies generated functions.
type StubKind int

const (
	// ClientCall marshals a request, sends it, and unmarshals the reply.
	ClientCall StubKind = iota
	// ServerDispatch demultiplexes incoming requests and invokes work
	// functions.
	ServerDispatch
	// ServerWork is the prototype of the user-implemented work function.
	ServerWork
	// SendOnly marshals and sends with no reply (oneway operations and
	// MIG simpleroutines).
	SendOnly
)

func (k StubKind) String() string {
	switch k {
	case ClientCall:
		return "client_call"
	case ServerDispatch:
		return "server_dispatch"
	case ServerWork:
		return "server_work"
	case SendOnly:
		return "send_only"
	}
	return fmt.Sprintf("StubKind(%d)", int(k))
}

// ParamRole says how one presented parameter participates in messages.
type ParamRole int

const (
	// RoleRequest parameters travel in the request (in, inout).
	RoleRequest ParamRole = iota
	// RoleReply parameters travel in the reply (out, inout, result).
	RoleReply
	// RoleBoth marks inout parameters.
	RoleBoth
	// RoleObject is the target object reference (not marshaled by value).
	RoleObject
	// RoleEnv is an environment/status out-parameter (CORBA_Environment).
	RoleEnv
)

// ParamPres connects one presented parameter to the message.
type ParamPres struct {
	// Name is the parameter name in the stub signature.
	Name string
	// CType is the parameter's presented type (cast.Type or Go spelling).
	CType any
	// Role places the parameter in request, reply, or both.
	Role ParamRole
	// Request and Reply are the PRES trees connecting this parameter to
	// the request and reply MINT slots (nil when not applicable).
	Request *pres.Node
	Reply   *pres.Node
}

// Stub is one generated function.
type Stub struct {
	Kind StubKind
	// Name is the generated function name (e.g. "Mail_send" or
	// "mailproc_1").
	Name string
	// Interface and Op identify the AOI origin.
	Interface string
	Op        string
	// OpCode is the wire discriminator for the operation. For CORBA the
	// request also carries OpName (GIOP demultiplexes by name).
	OpCode uint32
	OpName string
	// Prog and Vers carry the ONC program identity (zero for CORBA).
	Prog   uint32
	Vers   uint32
	Oneway bool
	// Idempotent carries the AOI operation's idempotency mark through
	// to the back ends: generated client stubs pass it to the runtime,
	// which only retries idempotent operations after ambiguous
	// failures.
	Idempotent bool
	// Stream carries the AOI operation's server-push streaming mark
	// (//flick:stream): the Result presentation is the chunk type and
	// the back end emits a credit-windowed stream instead of a single
	// reply. Stream stubs are never oneway, carry no reply params, and
	// raise no exceptions.
	Stream bool
	// CDecl is the stub's target-language declaration (a *cast.FuncDecl
	// for C presentations; a signature string for Go).
	CDecl any
	// Params presents every parameter, in signature order.
	Params []ParamPres
	// Result presents the return value (nil for void).
	Result *ParamPres
	// Request and Reply are the MINT types of this operation's messages
	// (payload only; message-format headers are the back end's
	// business). Reply is nil for oneway operations.
	Request mint.Type
	Reply   mint.Type
	// ExceptionNames lists the user exceptions the reply may carry
	// instead of results, in declaration order; the reply union's
	// non-zero discriminators map to these.
	ExceptionNames []string
	// ExceptionPres holds the PRES tree for each exception body,
	// parallel to ExceptionNames.
	ExceptionPres []*pres.Node
}

// RequestParams returns the params marshaled into the request, in order.
func (s *Stub) RequestParams() []*ParamPres {
	var out []*ParamPres
	for i := range s.Params {
		p := &s.Params[i]
		if p.Role == RoleRequest || p.Role == RoleBoth {
			out = append(out, p)
		}
	}
	return out
}

// ReplyParams returns the params unmarshaled from the reply, in order,
// excluding the result.
func (s *Stub) ReplyParams() []*ParamPres {
	var out []*ParamPres
	for i := range s.Params {
		p := &s.Params[i]
		if p.Role == RoleReply || p.Role == RoleBoth {
			out = append(out, p)
		}
	}
	return out
}

// File is a complete one-sided presentation of one or more interfaces.
type File struct {
	// Name is the presentation name, typically derived from the IDL
	// source file.
	Name string
	Side Side
	// Lang is the target language: "c" or "go".
	Lang string
	// Presentation names the mapping style: "corba", "rpcgen", "fluke",
	// "mig", or "go".
	Presentation string
	// Decls holds the support declarations (type definitions, constants)
	// as target-language declarations ([]cast.Decl for C; source text
	// for Go).
	Decls any
	// Stubs lists every generated function.
	Stubs []*Stub
}

// Validate checks the file's internal consistency.
func Validate(f *File) error {
	if f.Side != Client && f.Side != Server {
		return fmt.Errorf("presc: bad side %d", int(f.Side))
	}
	names := map[string]bool{}
	for _, s := range f.Stubs {
		if s.Name == "" {
			return fmt.Errorf("presc: stub with empty name (op %s)", s.Op)
		}
		if names[s.Name] && s.Kind != ServerWork {
			return fmt.Errorf("presc: duplicate stub name %q", s.Name)
		}
		names[s.Name] = true
		if s.Request == nil {
			return fmt.Errorf("presc: stub %s has nil request type", s.Name)
		}
		if s.Oneway != (s.Reply == nil) {
			return fmt.Errorf("presc: stub %s oneway=%v but reply=%v", s.Name, s.Oneway, s.Reply)
		}
		if s.Stream {
			if s.Oneway {
				return fmt.Errorf("presc: stream stub %s is oneway", s.Name)
			}
			if s.Result == nil || s.Result.Reply == nil {
				return fmt.Errorf("presc: stream stub %s has no result presentation (the chunk type)", s.Name)
			}
			if len(s.ReplyParams()) > 0 {
				return fmt.Errorf("presc: stream stub %s has reply parameters", s.Name)
			}
			if len(s.ExceptionNames) > 0 {
				return fmt.Errorf("presc: stream stub %s declares exceptions", s.Name)
			}
		}
		for i := range s.Params {
			p := &s.Params[i]
			switch p.Role {
			case RoleRequest, RoleBoth:
				if p.Request == nil {
					return fmt.Errorf("presc: stub %s param %s: request role without request pres", s.Name, p.Name)
				}
				if err := pres.Validate(p.Request); err != nil {
					return fmt.Errorf("stub %s param %s: %w", s.Name, p.Name, err)
				}
			}
			switch p.Role {
			case RoleReply, RoleBoth:
				if p.Reply == nil {
					return fmt.Errorf("presc: stub %s param %s: reply role without reply pres", s.Name, p.Name)
				}
				if err := pres.Validate(p.Reply); err != nil {
					return fmt.Errorf("stub %s param %s: %w", s.Name, p.Name, err)
				}
			}
		}
		if s.Result != nil && s.Result.Reply != nil {
			if err := pres.Validate(s.Result.Reply); err != nil {
				return fmt.Errorf("stub %s result: %w", s.Name, err)
			}
		}
	}
	return nil
}
