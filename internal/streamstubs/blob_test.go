package streamstubs

import (
	"bytes"
	"errors"
	"io"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"flick/rt"
)

// blobImpl is an in-memory blob store. Fetch pushes the stored bytes as
// fixed-size sequence-numbered chunks through the generated sending
// half, pacing against the consumer's credit window.
type blobImpl struct {
	mu    sync.Mutex
	blobs map[string][]byte

	chunkSize int
	sent      atomic.Uint64 // chunks successfully transmitted by Fetch
}

func newBlobImpl(chunkSize int) *blobImpl {
	return &blobImpl{blobs: map[string][]byte{}, chunkSize: chunkSize}
}

func (b *blobImpl) get(name string) []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.blobs[name]
}

func (b *blobImpl) Size(name string) (uint32, error) {
	return uint32(len(b.get(name))), nil
}

func (b *blobImpl) Put(name string, data []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.blobs[name] = append([]byte(nil), data...)
	return nil
}

func (b *blobImpl) Fetch(name string, st *BlobFetchServerStream) error {
	data := b.get(name)
	if data == nil {
		return errors.New("no such blob")
	}
	for seq := uint32(0); len(data) > 0; seq++ {
		n := b.chunkSize
		if n > len(data) {
			n = len(data)
		}
		if err := st.Send(&BlobChunk{Seq: seq, Data: data[:n]}); err != nil {
			return err
		}
		b.sent.Add(1)
		data = data[n:]
	}
	return nil
}

func (b *blobImpl) Touch(nonce int32) error { return nil }

var _ BlobServer = (*blobImpl)(nil)

func startBlobServer(t *testing.T, impl *blobImpl) *BlobClient {
	t.Helper()
	clientEnd, serverEnd := rt.Pipe()
	s := rt.NewServer(rt.ONC{})
	s.Workers = 4
	RegisterBlob(s, impl)
	done := make(chan struct{})
	go func() { defer close(done); s.ServeConn(serverEnd) }()
	t.Cleanup(func() { clientEnd.Close(); <-done })
	return NewBlobClient(clientEnd)
}

// pattern builds a deterministic non-repeating byte payload.
func pattern(n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(i*7 + i>>8)
	}
	return out
}

// TestBlobSurfacesRoundTrip drives all three generated surfaces on one
// session: sync Put/Size, async promises resolved out of order, and the
// streamed Fetch reassembled byte for byte.
func TestBlobSurfacesRoundTrip(t *testing.T) {
	impl := newBlobImpl(64)
	c := startBlobServer(t, impl)

	data := pattern(1000) // 15 full chunks + a 40-byte tail
	if err := c.Put("a", data); err != nil {
		t.Fatal(err)
	}

	// Sync surface.
	if n, err := c.Size("a"); err != nil || n != 1000 {
		t.Fatalf("Size = %d, %v", n, err)
	}

	// Async surface: pipeline several promises, resolve back to front.
	ps := []*BlobSizePromise{c.SizeAsync("a"), c.SizeAsync("missing"), c.SizeAsync("a")}
	wants := []uint32{1000, 0, 1000}
	for i := len(ps) - 1; i >= 0; i-- {
		if n, err := ps[i].Wait(); err != nil || n != wants[i] {
			t.Fatalf("promise %d: Size = %d, %v (want %d)", i, n, err, wants[i])
		}
	}

	// Stream surface: reassemble and verify the terminal is a clean EOF.
	st, err := c.FetchStream("a", 4)
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	var wantSeq uint32
	for {
		ch, rerr := st.Recv()
		if rerr != nil {
			if !errors.Is(rerr, io.EOF) {
				t.Fatalf("terminal = %v, want io.EOF", rerr)
			}
			break
		}
		if ch.Seq != wantSeq {
			t.Fatalf("chunk seq = %d, want %d", ch.Seq, wantSeq)
		}
		wantSeq++
		got.Write(ch.Data)
	}
	if !bytes.Equal(got.Bytes(), data) {
		t.Fatalf("reassembled %d bytes, mismatch with %d sent", got.Len(), len(data))
	}
}

// TestBlobStreamZeroWindow pins backpressure through the generated API:
// with window 0 the server's Fetch loop must not transmit until the
// consumer grants credit.
func TestBlobStreamZeroWindow(t *testing.T) {
	impl := newBlobImpl(8)
	c := startBlobServer(t, impl)
	if err := c.Put("b", pattern(24)); err != nil { // 3 chunks
		t.Fatal(err)
	}

	st, err := c.FetchStream("b", 0)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if n := impl.sent.Load(); n != 0 {
		t.Fatalf("server sent %d chunks with zero credit", n)
	}
	for i := uint32(0); i < 3; i++ {
		if err := st.Grant(1); err != nil {
			t.Fatalf("Grant: %v", err)
		}
		ch, rerr := st.Recv()
		if rerr != nil {
			t.Fatalf("Recv %d: %v", i, rerr)
		}
		if ch.Seq != i {
			t.Fatalf("seq = %d, want %d", ch.Seq, i)
		}
	}
	if _, rerr := st.Recv(); !errors.Is(rerr, io.EOF) {
		t.Fatalf("terminal = %v, want io.EOF", rerr)
	}
}

// TestBlobStreamCancelAndError covers the two non-EOF terminals through
// the generated API: a consumer cancel mid-transfer and a server-side
// work error surfacing as a classified system error.
func TestBlobStreamCancelAndError(t *testing.T) {
	impl := newBlobImpl(4)
	c := startBlobServer(t, impl)
	if err := c.Put("c", pattern(4000)); err != nil { // 1000 chunks
		t.Fatal(err)
	}

	st, err := c.FetchStream("c", 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, rerr := st.Recv(); rerr != nil {
		t.Fatal(rerr)
	}
	st.Cancel()
	if _, rerr := st.Recv(); !errors.Is(rerr, rt.ErrStreamCanceled) {
		t.Fatalf("Recv after Cancel = %v, want ErrStreamCanceled", rerr)
	}

	// Work error: fetching a missing blob fails before the first chunk.
	st, err = c.FetchStream("missing", 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, rerr := st.Recv(); !errors.Is(rerr, rt.ErrSystem) {
		t.Fatalf("missing-blob terminal = %v, want ErrSystem", rerr)
	}
}
