// Package streamstubs holds flick-generated stubs for the streaming
// demonstration interface (blob.idl), generated with all three
// presentation surfaces — sync, async, and stream — over one shared
// marshal core. The committed output is the working proof of the
// surface seam: one MIR walk's marshal functions, three call shapes.
// Regenerate with go generate.
package streamstubs

//go:generate go run flick/cmd/flick -idl corba -lang go -format xdr -style flick -package streamstubs -surfaces sync,async,stream -o stubs.go blob.idl
