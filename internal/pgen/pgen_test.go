package pgen

import (
	"strings"
	"testing"

	"flick/internal/aoi"
	"flick/internal/frontend/corbaidl"
	"flick/internal/frontend/oncrpc"
	"flick/internal/mint"
	"flick/internal/pres"
	"flick/internal/presc"
)

const testIDL = `
	interface Test {
		struct point { long x; long y; };
		struct rect  { point min; point max; };
		struct dir_entry {
			string<255> name;
			long info[30];
		};
		exception NotFound { long code; };
		typedef sequence<long> int_seq;

		void send_ints(in int_seq v);
		rect bounds(in long which, out long count) raises (NotFound);
		oneway void ping(in long nonce);
	};
`

func goPresFile(t *testing.T, side presc.Side) *presc.File {
	t.Helper()
	f, err := corbaidl.Parse("test.idl", testIDL)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	pf, err := GenerateGo(f, side)
	if err != nil {
		t.Fatalf("GenerateGo: %v", err)
	}
	return pf
}

func TestGoNames(t *testing.T) {
	tests := []struct{ in, want string }{
		{"dir_entry", "DirEntry"},
		{"Test::dir_entry", "TestDirEntry"},
		{"x", "X"},
		{"send_ints", "SendInts"},
		{"_get_balance", "GetBalance"},
		{"", "X"},
	}
	for _, tt := range tests {
		if got := GoName(tt.in); got != tt.want {
			t.Errorf("GoName(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
	if got := CName("Post::Office"); got != "Post_Office" {
		t.Errorf("CName = %q", got)
	}
}

func TestMintConversion(t *testing.T) {
	b := NewMintBuilder()
	tests := []struct {
		in   aoi.Type
		want mint.Type
	}{
		{&aoi.Primitive{Kind: aoi.Long}, mint.I32()},
		{&aoi.Primitive{Kind: aoi.ULongLong}, mint.U64()},
		{&aoi.Primitive{Kind: aoi.Boolean}, mint.Bool()},
		{&aoi.Primitive{Kind: aoi.Octet}, mint.U8()},
		{&aoi.Primitive{Kind: aoi.Double}, mint.F64()},
		{&aoi.String{Bound: 10}, mint.NewString(10)},
		{&aoi.Sequence{Elem: &aoi.Primitive{Kind: aoi.Long}}, mint.NewSeq(mint.I32(), 0)},
		{&aoi.Array{Elem: &aoi.Primitive{Kind: aoi.Octet}, Length: 16}, mint.NewFixed(mint.U8(), 16)},
		{&aoi.Enum{Name: "e", Members: []string{"A"}, Values: []int64{0}}, mint.U32()},
	}
	for _, tt := range tests {
		got := b.Convert(tt.in)
		if !mint.Equal(got, tt.want) {
			t.Errorf("Convert(%s) = %s, want %s", tt.in, got, tt.want)
		}
	}
}

func TestMintOptionalShape(t *testing.T) {
	b := NewMintBuilder()
	got := b.Convert(&aoi.Optional{Elem: &aoi.Primitive{Kind: aoi.Long}})
	u, ok := got.(*mint.Union)
	if !ok {
		t.Fatalf("optional = %T", got)
	}
	if len(u.Cases) != 2 {
		t.Fatalf("cases = %d", len(u.Cases))
	}
	if _, isBool := u.Discrim.(*mint.Scalar); !isBool {
		t.Errorf("discrim = %s", u.Discrim)
	}
}

func TestMintRecursion(t *testing.T) {
	// struct node { long v; node *next; }
	node := &aoi.Struct{Name: "node"}
	node.Fields = []aoi.Field{
		{Name: "v", Type: &aoi.Primitive{Kind: aoi.Long}},
		{Name: "next", Type: &aoi.Optional{Elem: node}},
	}
	b := NewMintBuilder()
	m := b.Convert(node).(*mint.Struct)
	next := m.Slots[1].Type.(*mint.Union)
	inner := mint.Deref(next.Cases[1].Type)
	if inner != mint.Type(m) {
		t.Errorf("recursion not tied back: %v vs %v", inner, m)
	}
	// Same conversion twice shares the memo.
	if b.Convert(node) != mint.Type(m) {
		t.Error("memoization failed")
	}
}

func TestBuildRequestReply(t *testing.T) {
	f, err := corbaidl.Parse("test.idl", testIDL)
	if err != nil {
		t.Fatal(err)
	}
	it := f.LookupInterface("Test")
	b := NewMintBuilder()
	op := it.LookupOp("bounds")
	req := b.BuildRequest(it.Name, op)
	if len(req.Slots) != 1 || req.Slots[0].Name != "which" {
		t.Fatalf("request slots = %+v", req.Slots)
	}
	rep := b.BuildReply(it.Name, op, it.Excepts)
	if len(rep.Cases) != 2 {
		t.Fatalf("reply cases = %d (ok + NotFound)", len(rep.Cases))
	}
	okCase := rep.Cases[0].Type.(*mint.Struct)
	if len(okCase.Slots) != 2 || okCase.Slots[0].Name != "return" || okCase.Slots[1].Name != "count" {
		t.Fatalf("ok slots = %+v", okCase.Slots)
	}
	exCase := rep.Cases[1].Type.(*mint.Struct)
	if len(exCase.Slots) != 1 || exCase.Slots[0].Name != "code" {
		t.Fatalf("exception slots = %+v", exCase.Slots)
	}
}

func TestGoDecls(t *testing.T) {
	pf := goPresFile(t, presc.Client)
	src := pf.Decls.(string)
	for _, frag := range []string{
		"type TestPoint struct {",
		"X int32",
		"type TestRect struct {",
		"Min TestPoint",
		"type TestDirEntry struct {",
		"Name string",
		"Info [30]int32",
		"type TestNotFound struct {",
		"func (e *TestNotFound) Error() string",
	} {
		if !strings.Contains(src, frag) {
			t.Errorf("decls missing %q:\n%s", frag, src)
		}
	}
}

func TestGoStubs(t *testing.T) {
	pf := goPresFile(t, presc.Client)
	if len(pf.Stubs) != 3 {
		t.Fatalf("stubs = %d", len(pf.Stubs))
	}
	send := pf.Stubs[0]
	if send.Name != "Test_SendInts" || send.Kind != presc.ClientCall {
		t.Errorf("stub = %+v", send)
	}
	if send.OpCode != 0 {
		t.Errorf("code = %d", send.OpCode)
	}
	bounds := pf.Stubs[1]
	if bounds.Result == nil || bounds.Result.CType != "TestRect" {
		t.Errorf("bounds result = %+v", bounds.Result)
	}
	if got := bounds.CDecl.(string); !strings.Contains(got, "Bounds(which int32) (ret TestRect, count int32, err error)") {
		t.Errorf("signature = %q", got)
	}
	if len(bounds.ExceptionNames) != 1 || bounds.ExceptionNames[0] != "NotFound" {
		t.Errorf("exceptions = %v", bounds.ExceptionNames)
	}
	ping := pf.Stubs[2]
	if !ping.Oneway || ping.Kind != presc.SendOnly || ping.Reply != nil {
		t.Errorf("ping = %+v", ping)
	}
	// Request params present the right PRES kinds.
	reqs := send.RequestParams()
	if len(reqs) != 1 {
		t.Fatalf("request params = %d", len(reqs))
	}
	if reqs[0].Request.Kind != pres.CountedKind {
		t.Errorf("v kind = %v", reqs[0].Request.Kind)
	}
}

func TestGoServerSide(t *testing.T) {
	pf := goPresFile(t, presc.Server)
	for _, s := range pf.Stubs {
		if s.Oneway {
			continue
		}
		if s.Kind != presc.ServerWork {
			t.Errorf("stub %s kind = %v", s.Name, s.Kind)
		}
	}
}

func TestEffectiveOps(t *testing.T) {
	f, err := corbaidl.Parse("attr.idl", `
		interface Account {
			readonly attribute long balance;
			attribute string owner;
			void close();
		};
	`)
	if err != nil {
		t.Fatal(err)
	}
	ops := EffectiveOps(f.LookupInterface("Account"))
	var names []string
	for _, op := range ops {
		names = append(names, op.Name)
	}
	want := []string{"close", "_get_balance", "_get_owner", "_set_owner"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Errorf("ops = %v, want %v", names, want)
	}
	// Codes must be distinct and continue after declared ops.
	seen := map[uint32]bool{}
	for _, op := range ops {
		if seen[op.Code] {
			t.Errorf("duplicate code %d", op.Code)
		}
		seen[op.Code] = true
	}
	if ops[3].Params[0].Dir != aoi.In {
		t.Error("_set_ param should be in")
	}
}

func TestGoPresentationOfONC(t *testing.T) {
	// The Go presentation accepts AOI from the ONC front end too —
	// Flick's presentation generators are IDL-independent.
	f, err := oncrpc.Parse("list.x", `
		struct intlist {
			int value;
			intlist *next;
		};
		program LIST {
			version V1 {
				intlist *reverse(intlist *) = 1;
			} = 1;
		} = 0x20000077;
	`)
	if err != nil {
		t.Fatal(err)
	}
	pf, err := GenerateGo(f, presc.Client)
	if err != nil {
		t.Fatalf("GenerateGo: %v", err)
	}
	src := pf.Decls.(string)
	if !strings.Contains(src, "Next *Intlist") {
		t.Errorf("recursive decl missing:\n%s", src)
	}
	stub := pf.Stubs[0]
	p := stub.Params[0]
	if p.Request.Kind != pres.OptPtrKind {
		t.Errorf("param kind = %v", p.Request.Kind)
	}
	// The PRES graph must be cyclic (list node refers to itself).
	inner := p.Request.Elem().Resolve()
	if inner.Kind != pres.StructKind {
		t.Fatalf("inner = %v", inner.Kind)
	}
	back := inner.Children[1].Resolve()
	if back.Kind != pres.OptPtrKind {
		t.Errorf("back = %v", back.Kind)
	}
}

func TestGoKeywordParams(t *testing.T) {
	if goParamName("type") != "type_" || goParamName("msg") != "msg" {
		t.Error("keyword munging wrong")
	}
}
