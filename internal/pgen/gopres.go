package pgen

import (
	"fmt"
	"strings"

	"flick/internal/aoi"
	"flick/internal/mint"
	"flick/internal/pres"
	"flick/internal/presc"
)

// GoPresentation maps AOI onto Go: the presentation used by Flick-Go's
// runnable stubs. It plays the role the paper reserves for future C++ and
// Java presentations — CAST is simply replaced by Go type spellings.
type GoPresentation struct {
	mb *MintBuilder
	// nodes memoizes PRES trees per AOI type for recursion and sharing.
	nodes map[aoi.Type]*pres.Node
	// decls accumulates generated Go type declarations by name.
	decls map[string]string
	order []string
}

// NewGoPresentation returns a fresh generator.
func NewGoPresentation() *GoPresentation {
	return &GoPresentation{
		mb:    NewMintBuilder(),
		nodes: map[aoi.Type]*pres.Node{},
		decls: map[string]string{},
	}
}

// GenerateGo builds the Go presentation of every interface in f for the
// given side.
func GenerateGo(f *aoi.File, side presc.Side) (*presc.File, error) {
	g := NewGoPresentation()
	out := &presc.File{
		Name:         f.Source,
		Side:         side,
		Lang:         "go",
		Presentation: "go",
	}
	// Emit declarations for every named AOI type so users can construct
	// values even for types not reached by any operation.
	for _, td := range f.Types {
		if _, err := g.TypeFor(td.Type); err != nil {
			return nil, err
		}
	}
	for _, it := range f.Interfaces {
		stubs, err := g.interfaceStubs(it, side)
		if err != nil {
			return nil, err
		}
		out.Stubs = append(out.Stubs, stubs...)
	}
	out.Decls = g.DeclSource()
	if err := presc.Validate(out); err != nil {
		return nil, err
	}
	return out, nil
}

// DeclSource returns the generated Go type declarations in deterministic
// order.
func (g *GoPresentation) DeclSource() string {
	var b strings.Builder
	for _, n := range g.order {
		b.WriteString(g.decls[n])
		b.WriteString("\n")
	}
	return b.String()
}

func (g *GoPresentation) addDecl(name, src string) {
	if _, dup := g.decls[name]; dup {
		return
	}
	g.decls[name] = src
	g.order = append(g.order, name)
}

// TypeFor returns the Go type spelling for an AOI type, generating named
// declarations as a side effect.
func (g *GoPresentation) TypeFor(t aoi.Type) (string, error) {
	switch t := t.(type) {
	case *aoi.Primitive:
		return goPrim(t.Kind)
	case *aoi.String:
		return "string", nil
	case *aoi.Sequence:
		elem, err := g.TypeFor(t.Elem)
		if err != nil {
			return "", err
		}
		return "[]" + elem, nil
	case *aoi.Array:
		elem, err := g.TypeFor(t.Elem)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("[%d]%s", t.Length, elem), nil
	case *aoi.Struct:
		name := GoName(t.Name)
		if t.Name == "" {
			return "", fmt.Errorf("pgen: anonymous structs are not presentable in Go")
		}
		if _, done := g.decls[name]; done {
			return name, nil
		}
		// Reserve the name first for recursive bodies.
		g.addDecl(name, "")
		var b strings.Builder
		fmt.Fprintf(&b, "// %s presents IDL struct %s.\ntype %s struct {\n", name, t.Name, name)
		for _, f := range t.Fields {
			ft, err := g.TypeFor(f.Type)
			if err != nil {
				return "", err
			}
			fmt.Fprintf(&b, "\t%s %s\n", GoField(f.Name), ft)
		}
		b.WriteString("}\n")
		g.decls[name] = b.String()
		return name, nil
	case *aoi.Union:
		name := GoName(t.Name)
		if t.Name == "" {
			return "", fmt.Errorf("pgen: anonymous unions are not presentable in Go")
		}
		if _, done := g.decls[name]; done {
			return name, nil
		}
		g.addDecl(name, "")
		dt, err := g.TypeFor(t.Discrim)
		if err != nil {
			return "", err
		}
		var b strings.Builder
		fmt.Fprintf(&b, "// %s presents IDL union %s; D selects the active arm.\ntype %s struct {\n", name, t.Name, name)
		fmt.Fprintf(&b, "\tD %s\n", dt)
		for _, c := range t.Cases {
			if aoi.IsVoid(c.Field.Type) {
				continue
			}
			ft, err := g.TypeFor(c.Field.Type)
			if err != nil {
				return "", err
			}
			fmt.Fprintf(&b, "\t%s %s\n", GoField(c.Field.Name), ft)
		}
		b.WriteString("}\n")
		g.decls[name] = b.String()
		return name, nil
	case *aoi.Enum:
		name := GoName(t.Name)
		if t.Name == "" {
			// Anonymous enums present as their underlying integer.
			return "uint32", nil
		}
		if _, done := g.decls[name]; done {
			return name, nil
		}
		var b strings.Builder
		fmt.Fprintf(&b, "// %s presents IDL enum %s.\ntype %s uint32\n\nconst (\n", name, t.Name, name)
		for i, m := range t.Members {
			fmt.Fprintf(&b, "\t%s%s %s = %d\n", name, GoField(m), name, t.Values[i])
		}
		b.WriteString(")\n")
		g.addDecl(name, b.String())
		return name, nil
	case *aoi.NamedRef:
		return g.TypeFor(t.Def)
	case *aoi.Optional:
		elem, err := g.TypeFor(t.Elem)
		if err != nil {
			return "", err
		}
		return "*" + elem, nil
	case *aoi.InterfaceRef:
		// Object references present as opaque object keys.
		return "ObjectKey", nil
	default:
		return "", fmt.Errorf("pgen: unknown AOI type %T", t)
	}
}

func goPrim(k aoi.PrimKind) (string, error) {
	switch k {
	case aoi.Void:
		return "", nil
	case aoi.Boolean:
		return "bool", nil
	case aoi.Octet:
		return "byte", nil
	case aoi.Char:
		return "byte", nil
	case aoi.Short:
		return "int16", nil
	case aoi.UShort:
		return "uint16", nil
	case aoi.Long:
		return "int32", nil
	case aoi.ULong:
		return "uint32", nil
	case aoi.LongLong:
		return "int64", nil
	case aoi.ULongLong:
		return "uint64", nil
	case aoi.Float:
		return "float32", nil
	case aoi.Double:
		return "float64", nil
	}
	return "", fmt.Errorf("pgen: unknown primitive %v", k)
}

// Node builds the PRES tree presenting AOI type t (whose MINT shape is
// m) as its Go type.
func (g *GoPresentation) Node(t aoi.Type) (*pres.Node, error) {
	if n, ok := g.nodes[t]; ok {
		return &pres.Node{Kind: pres.RefKind, Name: "ref", Target: n}, nil
	}
	m := g.mb.Convert(t)
	ct, err := g.TypeFor(t)
	if err != nil {
		return nil, err
	}
	switch t := t.(type) {
	case *aoi.Primitive:
		if t.Kind == aoi.Void {
			return &pres.Node{Kind: pres.VoidKind, Mint: m}, nil
		}
		return &pres.Node{Kind: pres.DirectKind, Mint: m, CType: ct}, nil
	case *aoi.Enum:
		return &pres.Node{Kind: pres.EnumKind, Mint: m, CType: ct}, nil
	case *aoi.String:
		// Go strings carry their length: counted presentation.
		return &pres.Node{
			Kind: pres.CountedKind, Mint: m, CType: ct,
			Children: []*pres.Node{{Kind: pres.DirectKind, Mint: mint.Char(), CType: "byte"}},
		}, nil
	case *aoi.Sequence:
		node := &pres.Node{Kind: pres.CountedKind, Mint: m, CType: ct}
		g.nodes[t] = node
		elem, err := g.Node(t.Elem)
		if err != nil {
			return nil, err
		}
		node.Children = []*pres.Node{elem}
		return node, nil
	case *aoi.Array:
		node := &pres.Node{Kind: pres.FixedArrayKind, Mint: m, CType: ct}
		g.nodes[t] = node
		elem, err := g.Node(t.Elem)
		if err != nil {
			return nil, err
		}
		node.Children = []*pres.Node{elem}
		return node, nil
	case *aoi.Struct:
		node := &pres.Node{Kind: pres.StructKind, Mint: m, CType: ct, Name: GoName(t.Name)}
		g.nodes[t] = node
		for _, f := range t.Fields {
			child, err := g.Node(f.Type)
			if err != nil {
				return nil, err
			}
			node.Children = append(node.Children, child)
			node.FieldNames = append(node.FieldNames, GoField(f.Name))
		}
		return node, nil
	case *aoi.Union:
		node := &pres.Node{Kind: pres.UnionKind, Mint: m, CType: ct, Name: GoName(t.Name)}
		dt, err := g.TypeFor(t.Discrim)
		if err != nil {
			return nil, err
		}
		node.DiscrimCType = dt
		g.nodes[t] = node
		// Children parallel the MINT cases: one per label, then default.
		for _, c := range t.Cases {
			if c.IsDefault {
				continue
			}
			child, err := g.armNode(c.Field)
			if err != nil {
				return nil, err
			}
			for range c.Labels {
				node.Children = append(node.Children, child)
				node.FieldNames = append(node.FieldNames, armFieldName(c.Field))
			}
		}
		for _, c := range t.Cases {
			if !c.IsDefault {
				continue
			}
			child, err := g.armNode(c.Field)
			if err != nil {
				return nil, err
			}
			node.Children = append(node.Children, child)
			node.FieldNames = append(node.FieldNames, armFieldName(c.Field))
		}
		return node, nil
	case *aoi.NamedRef:
		return g.Node(t.Def)
	case *aoi.Optional:
		node := &pres.Node{Kind: pres.OptPtrKind, Mint: m, CType: ct}
		g.nodes[t] = node
		elem, err := g.Node(t.Elem)
		if err != nil {
			return nil, err
		}
		node.Children = []*pres.Node{elem}
		return node, nil
	case *aoi.InterfaceRef:
		return &pres.Node{
			Kind: pres.CountedKind, Mint: m, CType: "ObjectKey",
			Children: []*pres.Node{{Kind: pres.DirectKind, Mint: mint.U8(), CType: "byte"}},
		}, nil
	default:
		return nil, fmt.Errorf("pgen: unknown AOI type %T", t)
	}
}

func armFieldName(f aoi.Field) string {
	if aoi.IsVoid(f.Type) {
		return ""
	}
	return GoField(f.Name)
}

func (g *GoPresentation) armNode(f aoi.Field) (*pres.Node, error) {
	if aoi.IsVoid(f.Type) {
		return &pres.Node{Kind: pres.VoidKind, Mint: mint.VoidT()}, nil
	}
	return g.Node(f.Type)
}

func (g *GoPresentation) interfaceStubs(it *aoi.Interface, side presc.Side) ([]*presc.Stub, error) {
	var stubs []*presc.Stub
	for _, op := range EffectiveOps(it) {
		stub, err := g.opStub(it, op, side)
		if err != nil {
			return nil, err
		}
		stubs = append(stubs, stub)
	}
	return stubs, nil
}

func (g *GoPresentation) opStub(it *aoi.Interface, op *aoi.Operation, side presc.Side) (*presc.Stub, error) {
	kind := presc.ClientCall
	if side == presc.Server {
		kind = presc.ServerWork
	}
	if op.Oneway && side == presc.Client {
		kind = presc.SendOnly
	}
	stub := &presc.Stub{
		Kind:       kind,
		Name:       GoName(it.Name) + "_" + GoName(op.Name),
		Interface:  it.Name,
		Op:         op.Name,
		OpCode:     op.Code,
		OpName:     op.Name,
		Prog:       it.Program,
		Vers:       it.Version,
		Oneway:     op.Oneway,
		Idempotent: op.Idempotent,
		Stream:     op.Stream,
		Request:    g.mb.BuildRequest(it.Name, op),
	}
	if !op.Oneway {
		stub.Reply = g.mb.BuildReply(it.Name, op, it.Excepts)
		stub.ExceptionNames = op.Raises
	}
	for _, p := range op.Params {
		pp := presc.ParamPres{Name: goParamName(p.Name)}
		ct, err := g.TypeFor(p.Type)
		if err != nil {
			return nil, err
		}
		pp.CType = ct
		node, err := g.Node(p.Type)
		if err != nil {
			return nil, err
		}
		switch p.Dir {
		case aoi.In:
			pp.Role = presc.RoleRequest
			pp.Request = node
		case aoi.Out:
			pp.Role = presc.RoleReply
			pp.Reply = node
		case aoi.InOut:
			pp.Role = presc.RoleBoth
			pp.Request = node
			pp.Reply = node
		}
		stub.Params = append(stub.Params, pp)
	}
	if op.Result != nil && !aoi.IsVoid(op.Result) {
		ct, err := g.TypeFor(op.Result)
		if err != nil {
			return nil, err
		}
		node, err := g.Node(op.Result)
		if err != nil {
			return nil, err
		}
		stub.Result = &presc.ParamPres{
			Name:  "ret",
			CType: ct,
			Role:  presc.RoleReply,
			Reply: node,
		}
	}
	// Exception presentations, in raises order, for reply demarshaling.
	for _, exName := range op.Raises {
		ex := findExcept(it.Excepts, exName)
		if ex == nil {
			return nil, fmt.Errorf("pgen: %s.%s raises unknown exception %s", it.Name, op.Name, exName)
		}
		tn, err := g.exceptionDecl(it, ex)
		if err != nil {
			return nil, err
		}
		// Name the body struct so its GoName collides with the already
		// emitted exception type: no duplicate declaration is generated
		// and the PRES node presents the exception type itself.
		exStruct := &aoi.Struct{Name: it.Name + "::" + ex.Name, Fields: ex.Fields}
		node, err := g.Node(exStruct)
		if err != nil {
			return nil, err
		}
		node = node.Resolve()
		node.CType = tn
		node.Name = tn
		stub.ExceptionPres = append(stub.ExceptionPres, node)
	}
	stub.CDecl = g.signature(it, op)
	return stub, nil
}

// exceptionDecl generates the Go struct + error method for an exception.
func (g *GoPresentation) exceptionDecl(it *aoi.Interface, ex *aoi.Exception) (string, error) {
	name := GoName(it.Name) + GoName(ex.Name)
	if _, done := g.decls[name]; done {
		return name, nil
	}
	g.addDecl(name, "")
	var b strings.Builder
	fmt.Fprintf(&b, "// %s presents IDL exception %s::%s.\ntype %s struct {\n", name, it.Name, ex.Name, name)
	for _, f := range ex.Fields {
		ft, err := g.TypeFor(f.Type)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "\t%s %s\n", GoField(f.Name), ft)
	}
	b.WriteString("}\n\n")
	fmt.Fprintf(&b, "// Error implements the error interface.\nfunc (e *%s) Error() string { return %q }\n", name, it.Name+"::"+ex.Name)
	g.decls[name] = b.String()
	return name, nil
}

// ExceptionTypeName returns the generated Go name of an exception.
func ExceptionTypeName(iface, exName string) string {
	return GoName(iface) + GoName(exName)
}

func goParamName(idl string) string {
	// Unexported parameter spelling; avoid Go keywords.
	switch idl {
	case "type", "func", "range", "map", "chan", "var", "const", "interface",
		"select", "case", "default", "defer", "go", "return", "package", "import",
		"switch", "break", "continue", "else", "fallthrough", "for", "goto", "if", "struct":
		return idl + "_"
	}
	return idl
}

func (g *GoPresentation) signature(it *aoi.Interface, op *aoi.Operation) string {
	var in, out []string
	for _, p := range op.Params {
		ct, _ := g.TypeFor(p.Type)
		switch p.Dir {
		case aoi.In:
			in = append(in, goParamName(p.Name)+" "+ct)
		case aoi.Out:
			out = append(out, goParamName(p.Name)+" "+ct)
		case aoi.InOut:
			// The returned (updated) value needs a distinct name from
			// the input parameter in the Go signature.
			in = append(in, goParamName(p.Name)+" "+ct)
			out = append(out, goParamName(p.Name)+"Out "+ct)
		}
	}
	if op.Result != nil && !aoi.IsVoid(op.Result) {
		ct, _ := g.TypeFor(op.Result)
		out = append([]string{"ret " + ct}, out...)
	}
	out = append(out, "err error")
	return fmt.Sprintf("%s(%s) (%s)", GoName(op.Name), strings.Join(in, ", "), strings.Join(out, ", "))
}
