package pgen

import (
	"fmt"

	"flick/internal/aoi"
	"flick/internal/cast"
	"flick/internal/pres"
	"flick/internal/presc"
)

// CPresentation maps AOI onto C. Two mapping rule sets are provided,
// mirroring Flick's presentation generators:
//
//   - "corba": the OMG CORBA C language mapping (CORBA_long scalars,
//     sequence structs with _length/_buffer, char* strings, a
//     CORBA_Environment out-parameter, <Interface>_<op> stub names);
//   - "rpcgen": Sun's rpcgen mapping (<op>_<vers> stub names, argument
//     and result passed by pointer, CLIENT handle);
//   - "fluke": derived from the CORBA mapping with Fluke naming, the
//     way Flick's Fluke presentation derives from its CORBA library.
type CPresentation struct {
	style string
	mb    *MintBuilder
	nodes map[aoi.Type]*pres.Node
	decls []cast.Decl
	done  map[string]bool
}

// GenerateC builds the C presentation of every interface in f.
func GenerateC(f *aoi.File, side presc.Side, style string) (*presc.File, error) {
	switch style {
	case "corba", "rpcgen", "fluke":
	default:
		return nil, fmt.Errorf("pgen: unknown C presentation style %q", style)
	}
	g := &CPresentation{
		style: style,
		mb:    NewMintBuilder(),
		nodes: map[aoi.Type]*pres.Node{},
		done:  map[string]bool{},
	}
	// The paper's presentation limits (footnote 3): the rpcgen style has
	// no exceptions; the CORBA style has no self-referential types
	// (checked during node construction).
	if style == "rpcgen" {
		for _, it := range f.Interfaces {
			if len(it.Excepts) > 0 {
				return nil, fmt.Errorf("pgen: the rpcgen presentation cannot express exceptions (interface %s)", it.Name)
			}
		}
	}
	out := &presc.File{
		Name:         f.Source,
		Side:         side,
		Lang:         "c",
		Presentation: style,
	}
	for _, td := range f.Types {
		if _, err := g.typeFor(td.Type); err != nil {
			return nil, err
		}
	}
	for _, it := range f.Interfaces {
		stubs, err := g.interfaceStubs(it, side)
		if err != nil {
			return nil, err
		}
		out.Stubs = append(out.Stubs, stubs...)
	}
	out.Decls = g.decls
	return out, nil
}

func (g *CPresentation) prefix() string {
	if g.style == "rpcgen" {
		return ""
	}
	if g.style == "fluke" {
		return "fluke_"
	}
	return "CORBA_"
}

func (g *CPresentation) addDecl(name string, d cast.Decl) {
	if g.done[name] {
		return
	}
	g.done[name] = true
	g.decls = append(g.decls, d)
}

// typeFor maps an AOI type onto a C type, emitting named declarations as
// a side effect.
func (g *CPresentation) typeFor(t aoi.Type) (cast.Type, error) {
	switch t := t.(type) {
	case *aoi.Primitive:
		return g.prim(t.Kind), nil
	case *aoi.String:
		return cast.PtrTo(cast.Char), nil
	case *aoi.Sequence:
		return g.seqType(t)
	case *aoi.Array:
		elem, err := g.typeFor(t.Elem)
		if err != nil {
			return nil, err
		}
		return &cast.Arr{Elem: elem, Len: int64(t.Length)}, nil
	case *aoi.Struct:
		return g.structType(t)
	case *aoi.Union:
		return g.unionType(t)
	case *aoi.Enum:
		return g.enumType(t)
	case *aoi.NamedRef:
		return g.typeFor(t.Def)
	case *aoi.Optional:
		elem, err := g.typeFor(t.Elem)
		if err != nil {
			return nil, err
		}
		return cast.PtrTo(elem), nil
	case *aoi.InterfaceRef:
		return &cast.Named{Name: CName(t.Name)}, nil
	default:
		return nil, fmt.Errorf("pgen: unknown AOI type %T", t)
	}
}

func (g *CPresentation) prim(k aoi.PrimKind) cast.Type {
	if g.style == "rpcgen" {
		switch k {
		case aoi.Void:
			return cast.Void
		case aoi.Boolean:
			return &cast.Named{Name: "bool_t"}
		case aoi.Octet:
			return &cast.Prim{Name: "u_char"}
		case aoi.Char:
			return cast.Char
		case aoi.Short:
			return &cast.Prim{Name: "short"}
		case aoi.UShort:
			return &cast.Prim{Name: "u_short"}
		case aoi.Long:
			return &cast.Prim{Name: "int"}
		case aoi.ULong:
			return &cast.Prim{Name: "u_int"}
		case aoi.LongLong:
			return &cast.Prim{Name: "quad_t"}
		case aoi.ULongLong:
			return &cast.Prim{Name: "u_quad_t"}
		case aoi.Float:
			return cast.Float
		case aoi.Double:
			return cast.Double
		}
		return cast.Void
	}
	p := g.prefix()
	switch k {
	case aoi.Void:
		return cast.Void
	case aoi.Boolean:
		return &cast.Named{Name: p + "boolean"}
	case aoi.Octet:
		return &cast.Named{Name: p + "octet"}
	case aoi.Char:
		return &cast.Named{Name: p + "char"}
	case aoi.Short:
		return &cast.Named{Name: p + "short"}
	case aoi.UShort:
		return &cast.Named{Name: p + "unsigned_short"}
	case aoi.Long:
		return &cast.Named{Name: p + "long"}
	case aoi.ULong:
		return &cast.Named{Name: p + "unsigned_long"}
	case aoi.LongLong:
		return &cast.Named{Name: p + "long_long"}
	case aoi.ULongLong:
		return &cast.Named{Name: p + "unsigned_long_long"}
	case aoi.Float:
		return &cast.Named{Name: p + "float"}
	case aoi.Double:
		return &cast.Named{Name: p + "double"}
	}
	return cast.Void
}

// seqType emits the CORBA sequence struct (or rpcgen counted struct) for
// a sequence type and returns its typedef name.
func (g *CPresentation) seqType(t *aoi.Sequence) (cast.Type, error) {
	elem, err := g.typeFor(t.Elem)
	if err != nil {
		return nil, err
	}
	name := g.seqName(t)
	lenT := g.prim(aoi.ULong)
	if g.style == "rpcgen" {
		lenT = &cast.Prim{Name: "u_int"}
	}
	fields := []cast.Field{}
	if g.style != "rpcgen" {
		fields = append(fields, cast.Field{Name: "_maximum", Type: lenT})
	}
	fields = append(fields,
		cast.Field{Name: g.lenField(), Type: lenT},
		cast.Field{Name: g.bufField(), Type: cast.PtrTo(elem)},
	)
	g.addDecl(name, &cast.TypedefDecl{
		Name: name,
		Type: &cast.StructType{Fields: fields},
	})
	return &cast.Named{Name: name}, nil
}

func (g *CPresentation) lenField() string {
	if g.style == "rpcgen" {
		return "len"
	}
	return "_length"
}

func (g *CPresentation) bufField() string {
	if g.style == "rpcgen" {
		return "val"
	}
	return "_buffer"
}

func (g *CPresentation) seqName(t *aoi.Sequence) string {
	elem := "elem"
	switch e := aoi.Resolve(t.Elem).(type) {
	case *aoi.Primitive:
		elem = sanitizeCName(e.Kind.String())
	case *aoi.Struct:
		elem = CName(e.Name)
	case *aoi.Union:
		elem = CName(e.Name)
	case *aoi.Enum:
		elem = CName(e.Name)
	case *aoi.String:
		elem = "string"
	}
	return "seq_" + elem
}

func sanitizeCName(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		if r == ' ' {
			out = append(out, '_')
		} else {
			out = append(out, r)
		}
	}
	return string(out)
}

func (g *CPresentation) structType(t *aoi.Struct) (cast.Type, error) {
	name := CName(t.Name)
	if t.Name == "" {
		return nil, fmt.Errorf("pgen: anonymous structs are not presentable in C")
	}
	if g.done[name] {
		return &cast.Named{Name: name}, nil
	}
	g.done[name] = true
	var fields []cast.Field
	for _, f := range t.Fields {
		ft, err := g.typeFor(f.Type)
		if err != nil {
			return nil, err
		}
		fields = append(fields, cast.Field{Name: f.Name, Type: ft})
	}
	g.decls = append(g.decls, &cast.TypedefDecl{
		Name: name,
		Type: &cast.StructType{Tag: name, Fields: fields},
	})
	return &cast.Named{Name: name}, nil
}

func (g *CPresentation) unionType(t *aoi.Union) (cast.Type, error) {
	name := CName(t.Name)
	if g.done[name] {
		return &cast.Named{Name: name}, nil
	}
	g.done[name] = true
	dt, err := g.typeFor(t.Discrim)
	if err != nil {
		return nil, err
	}
	var arms []cast.Field
	for _, c := range t.Cases {
		if aoi.IsVoid(c.Field.Type) {
			continue
		}
		ft, err := g.typeFor(c.Field.Type)
		if err != nil {
			return nil, err
		}
		arms = append(arms, cast.Field{Name: c.Field.Name, Type: ft})
	}
	g.decls = append(g.decls, &cast.TypedefDecl{
		Name: name,
		Type: &cast.StructType{Tag: name, Fields: []cast.Field{
			{Name: "_d", Type: dt},
			{Name: "_u", Type: &cast.UnionType{Fields: arms}},
		}},
	})
	return &cast.Named{Name: name}, nil
}

func (g *CPresentation) enumType(t *aoi.Enum) (cast.Type, error) {
	name := CName(t.Name)
	if t.Name == "" {
		return g.prim(aoi.ULong), nil
	}
	if g.done[name] {
		return &cast.Named{Name: name}, nil
	}
	g.done[name] = true
	var members []cast.EnumMember
	for i, m := range t.Members {
		members = append(members, cast.EnumMember{
			Name: m, Value: t.Values[i],
			Explicit: t.Values[i] != int64(i),
		})
	}
	g.decls = append(g.decls, &cast.TypedefDecl{
		Name: name,
		Type: &cast.EnumType{Tag: name, Members: members},
	})
	return &cast.Named{Name: name}, nil
}

// node builds the PRES tree presenting t as its C type.
func (g *CPresentation) node(t aoi.Type) (*pres.Node, error) {
	if n, ok := g.nodes[t]; ok {
		return &pres.Node{Kind: pres.RefKind, Name: "ref", Target: n}, nil
	}
	m := g.mb.Convert(t)
	ct, err := g.typeFor(t)
	if err != nil {
		return nil, err
	}
	switch t := t.(type) {
	case *aoi.Primitive:
		if t.Kind == aoi.Void {
			return &pres.Node{Kind: pres.VoidKind, Mint: m}, nil
		}
		return &pres.Node{Kind: pres.DirectKind, Mint: m, CType: ct}, nil
	case *aoi.Enum:
		return &pres.Node{Kind: pres.EnumKind, Mint: m, CType: ct}, nil
	case *aoi.String:
		// C strings are NUL-terminated char*: the OPT_STR-style
		// terminated presentation of the paper's Figure 2.
		return &pres.Node{
			Kind: pres.TerminatedKind, Mint: m, CType: ct,
			Children: []*pres.Node{{Kind: pres.DirectKind, Mint: g.mb.Convert(&aoi.Primitive{Kind: aoi.Char}), CType: cast.Char}},
		}, nil
	case *aoi.Sequence:
		node := &pres.Node{
			Kind: pres.CountedKind, Mint: m, CType: ct,
			LengthField: g.lenField(), BufferField: g.bufField(),
		}
		g.nodes[t] = node
		elem, err := g.node(t.Elem)
		if err != nil {
			return nil, err
		}
		node.Children = []*pres.Node{elem}
		return node, nil
	case *aoi.Array:
		node := &pres.Node{Kind: pres.FixedArrayKind, Mint: m, CType: ct}
		g.nodes[t] = node
		elem, err := g.node(t.Elem)
		if err != nil {
			return nil, err
		}
		node.Children = []*pres.Node{elem}
		return node, nil
	case *aoi.Struct:
		node := &pres.Node{Kind: pres.StructKind, Mint: m, CType: ct, Name: CName(t.Name)}
		g.nodes[t] = node
		for _, f := range t.Fields {
			child, err := g.node(f.Type)
			if err != nil {
				return nil, err
			}
			node.Children = append(node.Children, child)
			node.FieldNames = append(node.FieldNames, f.Name)
		}
		return node, nil
	case *aoi.Union:
		node := &pres.Node{Kind: pres.UnionKind, Mint: m, CType: ct, Name: CName(t.Name)}
		dt, err := g.typeFor(t.Discrim)
		if err != nil {
			return nil, err
		}
		node.DiscrimCType = dt
		g.nodes[t] = node
		for _, c := range t.Cases {
			if c.IsDefault {
				continue
			}
			child, err := g.armNode(c.Field)
			if err != nil {
				return nil, err
			}
			for range c.Labels {
				node.Children = append(node.Children, child)
				node.FieldNames = append(node.FieldNames, cArmName(c.Field))
			}
		}
		for _, c := range t.Cases {
			if !c.IsDefault {
				continue
			}
			child, err := g.armNode(c.Field)
			if err != nil {
				return nil, err
			}
			node.Children = append(node.Children, child)
			node.FieldNames = append(node.FieldNames, cArmName(c.Field))
		}
		return node, nil
	case *aoi.NamedRef:
		return g.node(t.Def)
	case *aoi.Optional:
		node := &pres.Node{Kind: pres.OptPtrKind, Mint: m, CType: ct}
		g.nodes[t] = node
		elem, err := g.node(t.Elem)
		if err != nil {
			return nil, err
		}
		node.Children = []*pres.Node{elem}
		return node, nil
	case *aoi.InterfaceRef:
		return &pres.Node{
			Kind: pres.CountedKind, Mint: m, CType: ct,
			LengthField: g.lenField(), BufferField: g.bufField(),
			Children: []*pres.Node{{Kind: pres.DirectKind, Mint: g.mb.Convert(&aoi.Primitive{Kind: aoi.Octet}), CType: &cast.Prim{Name: "unsigned char"}}},
		}, nil
	default:
		return nil, fmt.Errorf("pgen: unknown AOI type %T", t)
	}
}

func cArmName(f aoi.Field) string {
	if aoi.IsVoid(f.Type) {
		return ""
	}
	return "_u." + f.Name
}

func (g *CPresentation) armNode(f aoi.Field) (*pres.Node, error) {
	if aoi.IsVoid(f.Type) {
		return &pres.Node{Kind: pres.VoidKind, Mint: g.mb.Convert(&aoi.Primitive{Kind: aoi.Void})}, nil
	}
	return g.node(f.Type)
}

func (g *CPresentation) interfaceStubs(it *aoi.Interface, side presc.Side) ([]*presc.Stub, error) {
	// Object handle type.
	if g.style != "rpcgen" {
		g.addDecl(CName(it.Name), &cast.TypedefDecl{
			Name: CName(it.Name),
			Type: cast.PtrTo(cast.Void),
		})
	}
	var stubs []*presc.Stub
	for _, op := range EffectiveOps(it) {
		stub, err := g.opStub(it, op, side)
		if err != nil {
			return nil, err
		}
		stubs = append(stubs, stub)
	}
	return stubs, nil
}

func (g *CPresentation) stubName(it *aoi.Interface, op *aoi.Operation) string {
	if g.style == "rpcgen" {
		return fmt.Sprintf("%s_%d", op.Name, it.Version)
	}
	return CName(it.Name) + "_" + op.Name
}

func (g *CPresentation) opStub(it *aoi.Interface, op *aoi.Operation, side presc.Side) (*presc.Stub, error) {
	kind := presc.ClientCall
	if side == presc.Server {
		kind = presc.ServerWork
	}
	if op.Oneway && side == presc.Client {
		kind = presc.SendOnly
	}
	stub := &presc.Stub{
		Kind:       kind,
		Name:       g.stubName(it, op),
		Interface:  it.Name,
		Op:         op.Name,
		OpCode:     op.Code,
		OpName:     op.Name,
		Prog:       it.Program,
		Vers:       it.Version,
		Oneway:     op.Oneway,
		Idempotent: op.Idempotent,
		Stream:     op.Stream,
		Request:    g.mb.BuildRequest(it.Name, op),
	}
	if !op.Oneway {
		stub.Reply = g.mb.BuildReply(it.Name, op, it.Excepts)
		stub.ExceptionNames = op.Raises
	}
	decl := &cast.FuncDecl{Name: stub.Name}
	if g.style != "rpcgen" {
		decl.Params = append(decl.Params, cast.Param{Name: "_obj", Type: &cast.Named{Name: CName(it.Name)}})
	}
	for _, p := range op.Params {
		pp := presc.ParamPres{Name: p.Name}
		node, err := g.node(p.Type)
		if err != nil {
			return nil, err
		}
		ct, err := g.typeFor(p.Type)
		if err != nil {
			return nil, err
		}
		paramT := g.paramCType(p, ct)
		pp.CType = paramT
		switch p.Dir {
		case aoi.In:
			pp.Role = presc.RoleRequest
			pp.Request = node
		case aoi.Out:
			pp.Role = presc.RoleReply
			pp.Reply = node
		case aoi.InOut:
			pp.Role = presc.RoleBoth
			pp.Request = node
			pp.Reply = node
		}
		decl.Params = append(decl.Params, cast.Param{Name: p.Name, Type: paramT})
		stub.Params = append(stub.Params, pp)
	}
	// Result.
	ret := cast.Type(cast.Void)
	if op.Result != nil && !aoi.IsVoid(op.Result) {
		node, err := g.node(op.Result)
		if err != nil {
			return nil, err
		}
		rt, err := g.typeFor(op.Result)
		if err != nil {
			return nil, err
		}
		stub.Result = &presc.ParamPres{Name: "_ret", CType: rt, Role: presc.RoleReply, Reply: node}
		ret = rt
	}
	if g.style == "rpcgen" {
		// rpcgen: result returned by pointer; CLIENT handle last.
		if stub.Result != nil {
			ret = cast.PtrTo(ret)
		}
		decl.Params = append(decl.Params, cast.Param{Name: "clnt", Type: cast.PtrTo(&cast.Named{Name: "CLIENT"})})
	} else {
		// CORBA: environment out-parameter last.
		decl.Params = append(decl.Params, cast.Param{
			Name: "_ev", Type: cast.PtrTo(&cast.Named{Name: g.prefix() + "Environment"}),
		})
	}
	decl.Ret = ret
	stub.CDecl = decl
	// Exception bodies.
	for _, exName := range op.Raises {
		ex := findExcept(it.Excepts, exName)
		if ex == nil {
			return nil, fmt.Errorf("pgen: %s.%s raises unknown exception %s", it.Name, op.Name, exName)
		}
		exStruct := &aoi.Struct{Name: it.Name + "_" + ex.Name, Fields: ex.Fields}
		node, err := g.node(exStruct)
		if err != nil {
			return nil, err
		}
		stub.ExceptionPres = append(stub.ExceptionPres, node.Resolve())
	}
	return stub, nil
}

// paramCType applies the C parameter-passing rules: in scalars by value,
// aggregates by pointer, strings as char*, out parameters by pointer.
func (g *CPresentation) paramCType(p aoi.Param, ct cast.Type) cast.Type {
	aggregate := false
	switch aoi.Resolve(p.Type).(type) {
	case *aoi.Struct, *aoi.Union, *aoi.Sequence:
		aggregate = true
	case *aoi.Array:
		// C arrays decay to pointers; keep the array type spelling.
		return ct
	}
	switch p.Dir {
	case aoi.In:
		if aggregate {
			return cast.PtrTo(ct)
		}
		return ct
	default:
		return cast.PtrTo(ct)
	}
}
