package pgen

import (
	"strings"
	"unicode"
)

// GoName converts a (possibly "::"-qualified, possibly snake_case) IDL
// name into an exported Go identifier: "Test::dir_entry" → "TestDirEntry".
func GoName(idl string) string {
	var b strings.Builder
	upper := true
	for _, r := range idl {
		switch {
		case r == ':' || r == '_':
			upper = true
		case upper:
			b.WriteRune(unicode.ToUpper(r))
			upper = false
		default:
			b.WriteRune(r)
		}
	}
	if b.Len() == 0 {
		return "X"
	}
	return b.String()
}

// GoField converts an IDL member name into an exported Go field name.
func GoField(idl string) string { return GoName(idl) }

// CName converts a qualified IDL name into a C identifier following the
// CORBA C mapping: "Post::Office" → "Post_Office".
func CName(idl string) string {
	return strings.ReplaceAll(idl, "::", "_")
}
