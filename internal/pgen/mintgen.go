// Package pgen implements Flick's presentation generators: the
// compilation stage that maps an AOI "network contract" onto a
// target-language "programmer's contract" (PRES-C).
//
// This file holds the shared base library: the AOI→MINT conversion used
// by every presentation generator, and the expansion of attributes into
// implicit get/set operations.
package pgen

import (
	"fmt"

	"flick/internal/aoi"
	"flick/internal/mint"
)

// MintBuilder converts AOI types to MINT message types, preserving
// sharing and handling recursion (through optional data) with TypeRefs.
type MintBuilder struct {
	memo map[aoi.Type]mint.Type
	// open tracks in-progress aggregates so recursive references get a
	// TypeRef placeholder.
	open map[aoi.Type]*mint.TypeRef
}

// NewMintBuilder returns an empty builder.
func NewMintBuilder() *MintBuilder {
	return &MintBuilder{
		memo: map[aoi.Type]mint.Type{},
		open: map[aoi.Type]*mint.TypeRef{},
	}
}

// Convert maps an AOI type onto its MINT message shape.
//
// The interesting cases: enums travel as unsigned 32-bit values (as XDR
// and CDR both do), strings are counted arrays of char, ONC optional data
// is a boolean-discriminated union (exactly its XDR encoding shape), and
// object references travel as counted opaque keys.
func (b *MintBuilder) Convert(t aoi.Type) mint.Type {
	if m, ok := b.memo[t]; ok {
		return m
	}
	if ref, ok := b.open[t]; ok {
		return ref
	}
	switch t := t.(type) {
	case *aoi.Primitive:
		m := primMint(t.Kind)
		b.memo[t] = m
		return m
	case *aoi.String:
		m := mint.NewString(t.Bound)
		b.memo[t] = m
		return m
	case *aoi.Sequence:
		ref := &mint.TypeRef{Name: "seq"}
		b.open[t] = ref
		m := mint.NewSeq(b.Convert(t.Elem), t.Bound)
		delete(b.open, t)
		ref.Target = m
		b.memo[t] = m
		return m
	case *aoi.Array:
		ref := &mint.TypeRef{Name: "arr"}
		b.open[t] = ref
		m := mint.NewFixed(b.Convert(t.Elem), t.Length)
		delete(b.open, t)
		ref.Target = m
		b.memo[t] = m
		return m
	case *aoi.Struct:
		ref := &mint.TypeRef{Name: t.Name}
		b.open[t] = ref
		st := &mint.Struct{Name: t.Name}
		for _, f := range t.Fields {
			st.Slots = append(st.Slots, mint.Slot{Name: f.Name, Type: b.Convert(f.Type)})
		}
		delete(b.open, t)
		ref.Target = st
		b.memo[t] = st
		return st
	case *aoi.Union:
		ref := &mint.TypeRef{Name: t.Name}
		b.open[t] = ref
		u := &mint.Union{Name: t.Name, Discrim: b.Convert(t.Discrim)}
		for _, c := range t.Cases {
			if c.IsDefault {
				u.Default = b.Convert(c.Field.Type)
				continue
			}
			body := b.Convert(c.Field.Type)
			for _, l := range c.Labels {
				u.Cases = append(u.Cases, mint.UnionCase{Value: l, Type: body})
			}
		}
		delete(b.open, t)
		ref.Target = u
		b.memo[t] = u
		return u
	case *aoi.Enum:
		m := mint.U32()
		b.memo[t] = m
		return m
	case *aoi.NamedRef:
		m := b.Convert(t.Def)
		b.memo[t] = m
		return m
	case *aoi.Optional:
		// XDR optional-data shape: bool, then the value when present.
		ref := &mint.TypeRef{Name: "opt"}
		b.open[t] = ref
		u := &mint.Union{
			Discrim: mint.Bool(),
			Cases: []mint.UnionCase{
				{Value: 0, Type: mint.VoidT()},
				{Value: 1, Type: b.Convert(t.Elem)},
			},
		}
		delete(b.open, t)
		ref.Target = u
		b.memo[t] = u
		return u
	case *aoi.InterfaceRef:
		// Object references travel as counted opaque object keys.
		m := mint.NewOpaque(0)
		b.memo[t] = m
		return m
	default:
		panic(fmt.Sprintf("pgen: unknown AOI type %T", t))
	}
}

func primMint(k aoi.PrimKind) mint.Type {
	switch k {
	case aoi.Void:
		return mint.VoidT()
	case aoi.Boolean:
		return mint.Bool()
	case aoi.Octet:
		return mint.U8()
	case aoi.Char:
		return mint.Char()
	case aoi.Short:
		return mint.I16()
	case aoi.UShort:
		return mint.U16()
	case aoi.Long:
		return mint.I32()
	case aoi.ULong:
		return mint.U32()
	case aoi.LongLong:
		return mint.I64()
	case aoi.ULongLong:
		return mint.U64()
	case aoi.Float:
		return mint.F32()
	case aoi.Double:
		return mint.F64()
	default:
		panic(fmt.Sprintf("pgen: unknown primitive %v", k))
	}
}

// BuildRequest returns the MINT payload of op's request message: a struct
// of the in and inout parameters in declaration order.
func (b *MintBuilder) BuildRequest(ifaceName string, op *aoi.Operation) *mint.Struct {
	st := &mint.Struct{Name: ifaceName + "." + op.Name + ".req"}
	for _, p := range op.Params {
		if p.Dir == aoi.In || p.Dir == aoi.InOut {
			st.Slots = append(st.Slots, mint.Slot{Name: p.Name, Type: b.Convert(p.Type)})
		}
	}
	return st
}

// BuildReply returns the MINT payload of op's reply message: a union
// discriminated by completion status. Case 0 carries the result and the
// out/inout parameters; case i+1 carries exception i's members.
func (b *MintBuilder) BuildReply(ifaceName string, op *aoi.Operation, excepts []*aoi.Exception) *mint.Union {
	ok := &mint.Struct{Name: ifaceName + "." + op.Name + ".results"}
	if op.Result != nil && !aoi.IsVoid(op.Result) {
		ok.Slots = append(ok.Slots, mint.Slot{Name: "return", Type: b.Convert(op.Result)})
	}
	for _, p := range op.Params {
		if p.Dir == aoi.Out || p.Dir == aoi.InOut {
			ok.Slots = append(ok.Slots, mint.Slot{Name: p.Name, Type: b.Convert(p.Type)})
		}
	}
	u := &mint.Union{
		Name:    ifaceName + "." + op.Name + ".reply",
		Discrim: mint.U32(),
		Cases:   []mint.UnionCase{{Value: 0, Type: ok}},
	}
	for i, exName := range op.Raises {
		ex := findExcept(excepts, exName)
		if ex == nil {
			continue
		}
		body := &mint.Struct{Name: "exception." + ex.Name}
		for _, f := range ex.Fields {
			body.Slots = append(body.Slots, mint.Slot{Name: f.Name, Type: b.Convert(f.Type)})
		}
		u.Cases = append(u.Cases, mint.UnionCase{Value: int64(i) + 1, Type: body})
	}
	return u
}

func findExcept(excepts []*aoi.Exception, name string) *aoi.Exception {
	for _, e := range excepts {
		if e.Name == name {
			return e
		}
	}
	return nil
}

// EffectiveOps returns an interface's operations with attributes expanded
// into implicit _get_/_set_ operations, mirroring the CORBA mapping.
// Codes for the synthesized operations continue after the declared ones.
func EffectiveOps(it *aoi.Interface) []*aoi.Operation {
	ops := make([]*aoi.Operation, 0, len(it.Ops)+2*len(it.Attrs))
	ops = append(ops, it.Ops...)
	next := uint32(0)
	for _, op := range it.Ops {
		if op.Code >= next {
			next = op.Code + 1
		}
	}
	for _, at := range it.Attrs {
		ops = append(ops, &aoi.Operation{
			Name: "_get_" + at.Name,
			Code: next,
			// Reading an attribute is idempotent by construction; the
			// runtime may re-send a lost _get_ freely.
			Idempotent: true,
			Result:     at.Type,
		})
		next++
		if !at.ReadOnly {
			ops = append(ops, &aoi.Operation{
				Name:   "_set_" + at.Name,
				Code:   next,
				Result: &aoi.Primitive{Kind: aoi.Void},
				Params: []aoi.Param{{Name: "value", Dir: aoi.In, Type: at.Type}},
			})
			next++
		}
	}
	return ops
}
