// Package wire defines on-the-wire encoding rules: the sizes, alignment
// constraints, byte order, and array/string conventions of each message
// data encoding Flick supports. A back end pairs a wire.Format with a
// message-format header scheme (GIOP, ONC RPC record marking, Mach typed
// messages, Fluke register windows) and a transport.
//
// Formats answer the questions the marshal-analysis needs: how many bytes
// does this atom occupy, what alignment does it need, how are counted
// arrays and strings framed.
package wire

import "fmt"

// AtomKind classifies primitive wire atoms.
type AtomKind int

const (
	UInt AtomKind = iota
	SInt
	Float
	BoolAtom
	CharAtom
)

func (k AtomKind) String() string {
	switch k {
	case UInt:
		return "uint"
	case SInt:
		return "int"
	case Float:
		return "float"
	case BoolAtom:
		return "bool"
	case CharAtom:
		return "char"
	}
	return fmt.Sprintf("AtomKind(%d)", int(k))
}

// Atom is one primitive datum as presented (pre-encoding): its logical
// kind and bit width.
type Atom struct {
	Kind AtomKind
	// Bits is the presented width: 8, 16, 32, or 64.
	Bits uint
}

// Common atoms.
var (
	U8   = Atom{UInt, 8}
	U16  = Atom{UInt, 16}
	U32  = Atom{UInt, 32}
	U64  = Atom{UInt, 64}
	I8   = Atom{SInt, 8}
	I16  = Atom{SInt, 16}
	I32  = Atom{SInt, 32}
	I64  = Atom{SInt, 64}
	F32  = Atom{Float, 32}
	F64  = Atom{Float, 64}
	Bool = Atom{BoolAtom, 8}
	Char = Atom{CharAtom, 8}
)

// ByteOrder selects wire endianness.
type ByteOrder int

const (
	BigEndian ByteOrder = iota
	LittleEndian
)

func (o ByteOrder) String() string {
	if o == BigEndian {
		return "big-endian"
	}
	return "little-endian"
}

// Format is the contract a data encoding implements.
type Format interface {
	// Name identifies the encoding ("xdr", "cdr-be", "cdr-le", "mach3",
	// "fluke").
	Name() string
	// Order is the encoding's byte order.
	Order() ByteOrder
	// WireSize returns the encoded byte width of an atom (XDR widens
	// everything to at least 4; CDR keeps natural widths).
	WireSize(a Atom) int
	// Align returns the alignment required before encoding an atom,
	// relative to the start of the message body.
	Align(a Atom) int
	// LenSize returns the encoded byte width of an array/string length
	// prefix, and LenAlign its alignment.
	LenSize() int
	// ArrayPad returns the multiple to which the *byte payload* of a
	// counted char/octet array is padded (XDR pads to 4; others 1).
	ArrayPad() int
	// ArrayElemSize returns the encoded byte width of an atom when it
	// appears as an array element. XDR packs 8-bit characters and
	// octets inside arrays (opaque/string) even though standalone small
	// integers widen to four bytes.
	ArrayElemSize(a Atom) int
	// StringNul reports whether strings carry a trailing NUL that is
	// included in the transmitted length (CDR does; XDR does not).
	StringNul() bool
	// MaxAlign is the largest alignment the format ever requires; chunk
	// layouts are computed modulo this.
	MaxAlign() int
}

// SizeOf computes the wire size of a length prefix for f.
func LenAtom(f Format) Atom { return U32 }
