package wire

// XDR implements RFC 1832 External Data Representation: big-endian,
// every atom occupies a multiple of four bytes, counted opaque/string
// data padded to four bytes, no trailing NUL on strings.
type XDR struct{}

func (XDR) Name() string     { return "xdr" }
func (XDR) Order() ByteOrder { return BigEndian }

func (XDR) WireSize(a Atom) int {
	if a.Bits <= 32 {
		return 4
	}
	return 8
}

func (x XDR) Align(a Atom) int {
	// XDR items are 4-byte aligned; hyper and double occupy 8 bytes but
	// RFC 1832 requires only 4-byte alignment for the stream (all items
	// are multiples of 4).
	return 4
}

func (x XDR) ArrayElemSize(a Atom) int {
	if a.Bits == 8 && a.Kind != BoolAtom {
		return 1 // packed opaque/string payload
	}
	return x.WireSize(a)
}

func (XDR) LenSize() int    { return 4 }
func (XDR) ArrayPad() int   { return 4 }
func (XDR) StringNul() bool { return false }
func (XDR) MaxAlign() int   { return 4 }

// CDR implements CORBA Common Data Representation as used by IIOP:
// natural sizes and alignment (relative to the message body), strings
// counted with a trailing NUL included in the count. The sender chooses
// byte order and flags it in the GIOP header.
type CDR struct {
	// Little selects little-endian encoding.
	Little bool
}

func (c CDR) Name() string {
	if c.Little {
		return "cdr-le"
	}
	return "cdr-be"
}

func (c CDR) Order() ByteOrder {
	if c.Little {
		return LittleEndian
	}
	return BigEndian
}

func (CDR) WireSize(a Atom) int        { return int(a.Bits) / 8 }
func (CDR) Align(a Atom) int           { return int(a.Bits) / 8 }
func (c CDR) ArrayElemSize(a Atom) int { return c.WireSize(a) }

func (CDR) LenSize() int    { return 4 }
func (CDR) ArrayPad() int   { return 1 }
func (CDR) StringNul() bool { return true }
func (CDR) MaxAlign() int   { return 8 }

// Mach3 models the Mach 3 typed message encoding: native (little-endian
// on our hosts, matching the paper's Pentium measurements) byte order,
// natural sizes, 4-byte alignment for items, no string NUL. Type
// descriptors are part of the *message format*, produced by the Mach
// back end, not of the data encoding.
type Mach3 struct{}

func (Mach3) Name() string     { return "mach3" }
func (Mach3) Order() ByteOrder { return LittleEndian }
func (Mach3) WireSize(a Atom) int {
	return int(a.Bits) / 8
}
func (Mach3) Align(a Atom) int {
	n := int(a.Bits) / 8
	if n > 4 {
		return 4
	}
	return n
}
func (m Mach3) ArrayElemSize(a Atom) int { return m.WireSize(a) }

func (Mach3) LenSize() int    { return 4 }
func (Mach3) ArrayPad() int   { return 4 }
func (Mach3) StringNul() bool { return false }
func (Mach3) MaxAlign() int   { return 4 }

// Fluke models the Fluke kernel IPC encoding: native byte order, natural
// sizes, packed with no alignment at all — the format is specialized for
// same-host communication where the first words travel in registers.
type Fluke struct{}

func (Fluke) Name() string               { return "fluke" }
func (Fluke) Order() ByteOrder           { return LittleEndian }
func (Fluke) WireSize(a Atom) int        { return int(a.Bits) / 8 }
func (Fluke) Align(a Atom) int           { return 1 }
func (f Fluke) ArrayElemSize(a Atom) int { return f.WireSize(a) }

func (Fluke) LenSize() int    { return 4 }
func (Fluke) ArrayPad() int   { return 1 }
func (Fluke) StringNul() bool { return false }
func (Fluke) MaxAlign() int   { return 1 }

// Registry lists the built-in formats by name.
func ByName(name string) (Format, bool) {
	switch name {
	case "xdr":
		return XDR{}, true
	case "cdr", "cdr-be":
		return CDR{}, true
	case "cdr-le":
		return CDR{Little: true}, true
	case "mach3":
		return Mach3{}, true
	case "fluke":
		return Fluke{}, true
	}
	return nil, false
}
