package wire

import "testing"

func TestXDRRules(t *testing.T) {
	x := XDR{}
	if x.Order() != BigEndian {
		t.Error("XDR must be big-endian (RFC 1832)")
	}
	// Every standalone item occupies a multiple of four bytes.
	for _, a := range []Atom{U8, I8, U16, I16, Bool, Char} {
		if got := x.WireSize(a); got != 4 {
			t.Errorf("XDR WireSize(%v) = %d, want 4", a, got)
		}
	}
	if x.WireSize(U64) != 8 || x.WireSize(F64) != 8 {
		t.Error("XDR hyper/double must be 8 bytes")
	}
	// But opaque/string array elements pack.
	if x.ArrayElemSize(Char) != 1 || x.ArrayElemSize(U8) != 1 {
		t.Error("XDR must pack 8-bit array elements")
	}
	if x.ArrayElemSize(Bool) != 4 {
		t.Error("XDR bool arrays are arrays of ints")
	}
	if x.ArrayElemSize(U32) != 4 {
		t.Error("XDR int arrays are 4 bytes per element")
	}
	if x.ArrayPad() != 4 {
		t.Error("XDR pads opaque payloads to 4")
	}
	if x.StringNul() {
		t.Error("XDR strings carry no NUL")
	}
	if x.MaxAlign() != 4 || x.LenSize() != 4 {
		t.Error("XDR alignment/length rules")
	}
}

func TestCDRRules(t *testing.T) {
	be, le := CDR{}, CDR{Little: true}
	if be.Order() != BigEndian || le.Order() != LittleEndian {
		t.Error("CDR endianness selection")
	}
	if be.Name() != "cdr-be" || le.Name() != "cdr-le" {
		t.Error("CDR names")
	}
	// Natural sizes and alignment.
	for _, tt := range []struct {
		a     Atom
		size  int
		align int
	}{
		{U8, 1, 1}, {U16, 2, 2}, {U32, 4, 4}, {U64, 8, 8},
		{F32, 4, 4}, {F64, 8, 8}, {Bool, 1, 1}, {Char, 1, 1},
	} {
		if be.WireSize(tt.a) != tt.size || be.Align(tt.a) != tt.align {
			t.Errorf("CDR %v: size=%d align=%d", tt.a, be.WireSize(tt.a), be.Align(tt.a))
		}
	}
	if !be.StringNul() {
		t.Error("CDR strings are NUL-counted")
	}
	if be.ArrayPad() != 1 {
		t.Error("CDR has no array padding")
	}
	if be.MaxAlign() != 8 {
		t.Error("CDR max alignment is 8")
	}
}

func TestMachAndFlukeRules(t *testing.T) {
	m := Mach3{}
	if m.Order() != LittleEndian || m.WireSize(U64) != 8 || m.Align(U64) != 4 {
		t.Error("Mach3 rules (natural sizes, 4-byte max alignment)")
	}
	f := Fluke{}
	if f.Align(U64) != 1 || f.MaxAlign() != 1 {
		t.Error("Fluke is fully packed")
	}
	if f.WireSize(U16) != 2 {
		t.Error("Fluke natural sizes")
	}
}

func TestByName(t *testing.T) {
	for name, want := range map[string]string{
		"xdr": "xdr", "cdr": "cdr-be", "cdr-be": "cdr-be",
		"cdr-le": "cdr-le", "mach3": "mach3", "fluke": "fluke",
	} {
		f, ok := ByName(name)
		if !ok || f.Name() != want {
			t.Errorf("ByName(%q) = %v,%v", name, f, ok)
		}
	}
	if _, ok := ByName("ebcdic"); ok {
		t.Error("unknown format resolved")
	}
}

func TestAtomStrings(t *testing.T) {
	if UInt.String() != "uint" || SInt.String() != "int" || Float.String() != "float" ||
		BoolAtom.String() != "bool" || CharAtom.String() != "char" {
		t.Error("AtomKind names")
	}
	if BigEndian.String() != "big-endian" || LittleEndian.String() != "little-endian" {
		t.Error("ByteOrder names")
	}
}
