package corbaidl

import (
	"strings"
	"testing"
)

// Invalid IDL must fail at parse time with a positioned aoi.Validate
// error, not deep in pgen.
func TestParseRejectsInvalidIDLWithPosition(t *testing.T) {
	src := `interface Bad {
	void ok();
	oneway long broken();
};
`
	_, err := Parse("bad.idl", src)
	if err == nil {
		t.Fatal("Parse(oneway with result) = nil error")
	}
	msg := err.Error()
	if !strings.Contains(msg, "oneway operation has a result") {
		t.Errorf("error %q does not name the violation", msg)
	}
	if !strings.Contains(msg, "bad.idl:3:") {
		t.Errorf("error %q is not positioned at the broken operation (want bad.idl:3:...)", msg)
	}
}

func TestParseRejectsOnewayOutParam(t *testing.T) {
	src := `interface Bad {
	oneway void poke(out long v);
};
`
	_, err := Parse("bad.idl", src)
	if err == nil {
		t.Fatal("Parse(oneway with out param) = nil error")
	}
	msg := err.Error()
	if !strings.Contains(msg, "oneway operation has out parameter") {
		t.Errorf("error %q does not name the violation", msg)
	}
	if !strings.Contains(msg, "bad.idl:2:") {
		t.Errorf("error %q is not positioned (want bad.idl:2:...)", msg)
	}
}
