package corbaidl

import (
	"strings"
	"testing"

	"flick/internal/aoi"
)

func mustParse(t *testing.T, src string) *aoi.File {
	t.Helper()
	f, err := Parse("test.idl", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return f
}

func TestParseMail(t *testing.T) {
	// The paper's introductory example.
	f := mustParse(t, `
		interface Mail {
			void send(in string msg);
		};
	`)
	it := f.LookupInterface("Mail")
	if it == nil {
		t.Fatal("no Mail interface")
	}
	if it.ID != "IDL:Mail:1.0" {
		t.Errorf("ID = %q", it.ID)
	}
	op := it.LookupOp("send")
	if op == nil {
		t.Fatal("no send op")
	}
	if !aoi.IsVoid(op.Result) {
		t.Errorf("result = %v, want void", op.Result)
	}
	if len(op.Params) != 1 || op.Params[0].Dir != aoi.In {
		t.Fatalf("params = %+v", op.Params)
	}
	if _, ok := op.Params[0].Type.(*aoi.String); !ok {
		t.Errorf("param type = %T, want string", op.Params[0].Type)
	}
}

func TestParseDirectoryInterface(t *testing.T) {
	// The paper's evaluation interface: arrays of ints, rects, and
	// variable-size directory entries.
	f := mustParse(t, `
		interface Test {
			struct point { long x; long y; };
			struct rect  { point min; point max; };
			struct stat_info {
				long fields[30];
				char tag[16];
			};
			struct dir_entry {
				string<255> name;
				stat_info   info;
			};
			typedef sequence<long>      int_seq;
			typedef sequence<rect>      rect_seq;
			typedef sequence<dir_entry> dir_seq;

			void send_ints(in int_seq v);
			void send_rects(in rect_seq v);
			void send_dirs(in dir_seq v);
		};
	`)
	it := f.LookupInterface("Test")
	if it == nil {
		t.Fatal("no Test interface")
	}
	if len(it.Ops) != 3 {
		t.Fatalf("ops = %d, want 3", len(it.Ops))
	}
	for i, op := range it.Ops {
		if op.Code != uint32(i) {
			t.Errorf("op %s code = %d, want %d", op.Name, op.Code, i)
		}
	}
	rect := f.LookupType("Test::rect")
	if rect == nil {
		t.Fatal("no rect type")
	}
	st := rect.Type.(*aoi.Struct)
	if len(st.Fields) != 2 || st.Fields[0].Name != "min" {
		t.Fatalf("rect fields = %+v", st.Fields)
	}
	inner, ok := aoi.Resolve(st.Fields[0].Type).(*aoi.Struct)
	if !ok || len(inner.Fields) != 2 {
		t.Fatalf("rect.min = %v", st.Fields[0].Type)
	}
	de := f.LookupType("Test::dir_entry").Type.(*aoi.Struct)
	name := aoi.Resolve(de.Fields[0].Type).(*aoi.String)
	if name.Bound != 255 {
		t.Errorf("dir_entry.name bound = %d", name.Bound)
	}
	si := aoi.Resolve(de.Fields[1].Type).(*aoi.Struct)
	arr := aoi.Resolve(si.Fields[0].Type).(*aoi.Array)
	if arr.Length != 30 {
		t.Errorf("stat_info.fields length = %d", arr.Length)
	}
}

func TestModulesAndScoping(t *testing.T) {
	f := mustParse(t, `
		module Post {
			typedef unsigned long stamp_t;
			module Inner {
				struct letter { stamp_t stamp; };
			};
			interface Office {
				Inner::letter fetch(in stamp_t s);
			};
		};
	`)
	if td := f.LookupType("Post::Inner::letter"); td == nil {
		t.Fatal("no Post::Inner::letter")
	}
	it := f.LookupInterface("Office")
	if it == nil || it.Module != "Post" {
		t.Fatalf("interface = %+v", it)
	}
	if it.QualifiedName() != "Post::Office" {
		t.Errorf("qualified = %q", it.QualifiedName())
	}
	op := it.LookupOp("fetch")
	st, ok := aoi.Resolve(op.Result).(*aoi.Struct)
	if !ok || st.Name != "Post::Inner::letter" {
		t.Errorf("result = %v", op.Result)
	}
}

func TestInheritance(t *testing.T) {
	f := mustParse(t, `
		interface Base {
			exception Fail { long code; };
			void ping() raises (Fail);
		};
		interface Derived : Base {
			void extra();
		};
	`)
	d := f.LookupInterface("Derived")
	if d == nil || len(d.Ops) != 2 {
		t.Fatalf("derived ops = %+v", d)
	}
	if d.Ops[0].Name != "ping" || d.Ops[0].Code != 0 {
		t.Errorf("inherited op = %+v", d.Ops[0])
	}
	if d.Ops[1].Name != "extra" || d.Ops[1].Code != 1 {
		t.Errorf("own op = %+v", d.Ops[1])
	}
	if len(d.Excepts) != 1 || d.Excepts[0].Name != "Fail" {
		t.Errorf("inherited exceptions = %+v", d.Excepts)
	}
}

func TestAttributesExpandLater(t *testing.T) {
	f := mustParse(t, `
		interface Account {
			readonly attribute long balance;
			attribute string owner;
		};
	`)
	it := f.LookupInterface("Account")
	if len(it.Attrs) != 2 {
		t.Fatalf("attrs = %+v", it.Attrs)
	}
	if !it.Attrs[0].ReadOnly || it.Attrs[1].ReadOnly {
		t.Error("readonly flags wrong")
	}
}

func TestUnionsAndEnums(t *testing.T) {
	f := mustParse(t, `
		enum color { RED, GREEN, BLUE };
		union shade switch (color) {
			case RED:   long r;
			case GREEN:
			case BLUE:  float gb;
			default:    string name;
		};
		union tagged switch (long) {
			case 1: long a;
			case 2: string b;
		};
	`)
	e := f.LookupType("color").Type.(*aoi.Enum)
	if len(e.Members) != 3 || e.Values[2] != 2 {
		t.Fatalf("enum = %+v", e)
	}
	u := f.LookupType("shade").Type.(*aoi.Union)
	if len(u.Cases) != 3 {
		t.Fatalf("cases = %+v", u.Cases)
	}
	if got := u.Cases[1].Labels; len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("multi-label arm = %v", got)
	}
	if !u.Cases[2].IsDefault {
		t.Error("missing default arm")
	}
	tagged := f.LookupType("tagged").Type.(*aoi.Union)
	if tagged.HasDefault() {
		t.Error("tagged should have no default")
	}
}

func TestConstExpressions(t *testing.T) {
	f := mustParse(t, `
		const long A = 10;
		const long B = A * 2 + 5;
		const long C = (B | 0x10) << 2;
		const long D = -3;
		const long E = ~0 & 0xFF;
		const string GREETING = "hello";
		typedef long buf[B];
	`)
	want := map[string]int64{"A": 10, "B": 25, "C": (25 | 0x10) << 2, "D": -3, "E": 0xFF}
	for _, cd := range f.Consts {
		if w, ok := want[cd.Name]; ok && cd.Int != w {
			t.Errorf("%s = %d, want %d", cd.Name, cd.Int, w)
		}
	}
	if f.Consts[5].Str != "hello" {
		t.Errorf("GREETING = %q", f.Consts[5].Str)
	}
	arr := f.LookupType("buf").Type.(*aoi.Array)
	if arr.Length != 25 {
		t.Errorf("buf length = %d", arr.Length)
	}
}

func TestOneway(t *testing.T) {
	f := mustParse(t, `
		interface Log {
			oneway void note(in string msg);
		};
	`)
	op := f.LookupInterface("Log").LookupOp("note")
	if !op.Oneway {
		t.Error("oneway not set")
	}
}

func TestObjectReferences(t *testing.T) {
	f := mustParse(t, `
		interface Callback;
		interface Registry {
			void register(in Callback cb);
			Registry self();
		};
	`)
	it := f.LookupInterface("Registry")
	p := it.LookupOp("register").Params[0]
	if _, ok := p.Type.(*aoi.InterfaceRef); !ok {
		t.Errorf("callback param = %T", p.Type)
	}
	if _, ok := it.LookupOp("self").Result.(*aoi.InterfaceRef); !ok {
		t.Errorf("self result = %T", it.LookupOp("self").Result)
	}
}

func TestComments(t *testing.T) {
	mustParse(t, `
		// line comment
		/* block
		   comment */
		#pragma prefix "x"
		interface I { void f(); };
	`)
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		src     string
		wantSub string
	}{
		{`interface I { void f(in long); };`, "expected identifier"},
		{`interface I { void f(long x); };`, "parameter direction"},
		{`typedef sequence<undefined_t> s;`, "undefined type"},
		{`interface I { void f() raises (NoSuch); };`, "undeclared exception"},
		{`struct s { any a; };`, "not supported"},
		{`const long X = 1/0;`, "division by zero"},
		{`const long X = Y;`, "undefined constant"},
		{`interface I { void f(); }`, "expected"},
		{`union u switch (string) { case 1: long a; };`, "invalid discriminator"},
		{`struct s { long x; long x; };`, "duplicate field"},
		{`struct s { long x; };  struct s { long y; };`, "redefinition"},
		{`module M { interface I {`, "unexpected end of file"},
		{`/* unterminated`, "unterminated comment"},
		{`const string S = "unterminated`, "unterminated string"},
		{`&`, "unexpected"},
		{`interface I : NoParent { void f(); };`, "unknown base interface"},
	}
	for _, tt := range tests {
		_, err := Parse("err.idl", tt.src)
		if err == nil {
			t.Errorf("Parse(%q) succeeded, want error containing %q", tt.src, tt.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), tt.wantSub) {
			t.Errorf("Parse(%q) = %v, want error containing %q", tt.src, err, tt.wantSub)
		}
	}
}

func TestErrorsHavePositions(t *testing.T) {
	_, err := Parse("pos.idl", "interface I {\n  void f(bad long x);\n};")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "pos.idl:2:") {
		t.Errorf("error %q lacks position", err)
	}
}

func TestBoundedSequenceAndString(t *testing.T) {
	f := mustParse(t, `
		typedef sequence<octet, 512> blob;
		typedef string<64> name_t;
	`)
	seq := f.LookupType("blob").Type.(*aoi.Sequence)
	if seq.Bound != 512 {
		t.Errorf("blob bound = %d", seq.Bound)
	}
	if _, ok := seq.Elem.(*aoi.Primitive); !ok {
		t.Errorf("blob elem = %T", seq.Elem)
	}
	st := f.LookupType("name_t").Type.(*aoi.String)
	if st.Bound != 64 {
		t.Errorf("name_t bound = %d", st.Bound)
	}
}

func TestPrimitiveTypes(t *testing.T) {
	f := mustParse(t, `
		struct all {
			boolean b; octet o; char c;
			short s; unsigned short us;
			long l; unsigned long ul;
			long long ll; unsigned long long ull;
			float f; double d;
		};
	`)
	st := f.LookupType("all").Type.(*aoi.Struct)
	kinds := []aoi.PrimKind{
		aoi.Boolean, aoi.Octet, aoi.Char, aoi.Short, aoi.UShort,
		aoi.Long, aoi.ULong, aoi.LongLong, aoi.ULongLong, aoi.Float, aoi.Double,
	}
	if len(st.Fields) != len(kinds) {
		t.Fatalf("fields = %d", len(st.Fields))
	}
	for i, k := range kinds {
		p, ok := st.Fields[i].Type.(*aoi.Primitive)
		if !ok || p.Kind != k {
			t.Errorf("field %d = %v, want %v", i, st.Fields[i].Type, k)
		}
	}
}
