// Package corbaidl is Flick's CORBA IDL front end: it parses a CORBA 2.0
// IDL subset and produces AOI. The subset covers the constructs the paper
// exercises: modules, interfaces (with inheritance), operations (with
// oneway, in/out/inout, raises), attributes, exceptions, typedefs,
// structs, discriminated unions, enums, sequences, bounded strings,
// arrays, and constants.
package corbaidl

import (
	"strings"

	"flick/internal/aoi"
	"flick/internal/frontend/idllex"
)

// Parse converts CORBA IDL source into AOI.
func Parse(filename, src string) (*aoi.File, error) {
	lex := idllex.New(filename, src, "::", "<<", ">>")
	base, err := idllex.NewParser(lex)
	if err != nil {
		return nil, err
	}
	p := &parser{
		Parser: base,
		file:   &aoi.File{Source: filename, IDL: "corba"},
		types:  map[string]aoi.Type{},
		consts: map[string]*aoi.ConstDef{},
	}
	if err := p.parseSpec(); err != nil {
		return nil, err
	}
	if err := idllex.ApplyFlickPragmas(lex, p.file); err != nil {
		return nil, err
	}
	if err := aoi.Validate(p.file); err != nil {
		return nil, err
	}
	return p.file, nil
}

type parser struct {
	*idllex.Parser
	file *aoi.File
	// module tracks the current module scope.
	module []string
	// types maps visible type names (unqualified within the current
	// scope chain) to definitions.
	types  map[string]aoi.Type
	consts map[string]*aoi.ConstDef
}

var corbaKeywords = map[string]bool{
	"module": true, "interface": true, "typedef": true, "struct": true,
	"union": true, "enum": true, "const": true, "exception": true,
	"attribute": true, "readonly": true, "oneway": true, "in": true,
	"out": true, "inout": true, "raises": true, "void": true,
	"boolean": true, "char": true, "octet": true, "short": true,
	"long": true, "unsigned": true, "float": true, "double": true,
	"string": true, "sequence": true, "switch": true, "case": true,
	"default": true, "TRUE": true, "FALSE": true, "any": true,
}

func (p *parser) scopedName(name string) string {
	if len(p.module) == 0 {
		return name
	}
	return strings.Join(p.module, "::") + "::" + name
}

func (p *parser) defineType(name string, t aoi.Type) error {
	return p.defineQualified(p.scopedName(name), t)
}

// declPos captures the current token's position as an AOI declaration
// site, so aoi.Validate diagnostics point back into the IDL source.
func (p *parser) declPos() aoi.Pos {
	file, line, col := p.Pos()
	return aoi.Pos{File: file, Line: line, Col: col}
}

// defineQualified registers a type whose name is already fully scoped
// (struct/union/enum bodies scope their own names).
func (p *parser) defineQualified(qual string, t aoi.Type) error {
	if _, dup := p.types[qual]; dup {
		return p.Errf("redefinition of %q", qual)
	}
	p.types[qual] = t
	p.file.Types = append(p.file.Types, &aoi.TypeDef{Name: qual, Type: t, Pos: p.declPos()})
	return nil
}

// lookupType searches the scope chain: innermost module first, then
// enclosing modules, then global.
func (p *parser) lookupType(name string) (aoi.Type, bool) {
	for i := len(p.module); i >= 0; i-- {
		var qual string
		if i == 0 {
			qual = name
		} else {
			qual = strings.Join(p.module[:i], "::") + "::" + name
		}
		if t, ok := p.types[qual]; ok {
			return t, true
		}
	}
	return nil, false
}

func (p *parser) lookupConst(name string) (*aoi.ConstDef, bool) {
	for i := len(p.module); i >= 0; i-- {
		var qual string
		if i == 0 {
			qual = name
		} else {
			qual = strings.Join(p.module[:i], "::") + "::" + name
		}
		if c, ok := p.consts[qual]; ok {
			return c, true
		}
	}
	return nil, false
}

func (p *parser) parseSpec() error {
	for !p.AtEOF() {
		if err := p.parseDefinition(); err != nil {
			return err
		}
	}
	return nil
}

func (p *parser) parseDefinition() error {
	switch {
	case p.At("module"):
		return p.parseModule()
	case p.At("interface"):
		return p.parseInterface()
	case p.At("typedef"):
		return p.parseTypedef()
	case p.At("struct"):
		t, err := p.parseStruct()
		if err != nil {
			return err
		}
		if err := p.defineQualified(t.Name, t); err != nil {
			return err
		}
		return p.Expect(";")
	case p.At("union"):
		t, err := p.parseUnion()
		if err != nil {
			return err
		}
		if err := p.defineQualified(t.Name, t); err != nil {
			return err
		}
		return p.Expect(";")
	case p.At("enum"):
		t, err := p.parseEnum()
		if err != nil {
			return err
		}
		if err := p.defineQualified(t.Name, t); err != nil {
			return err
		}
		return p.Expect(";")
	case p.At("const"):
		return p.parseConst()
	default:
		return p.Unexpected("specification")
	}
}

func (p *parser) parseModule() error {
	if err := p.Expect("module"); err != nil {
		return err
	}
	name, err := p.ExpectIdent()
	if err != nil {
		return err
	}
	if err := p.Expect("{"); err != nil {
		return err
	}
	p.module = append(p.module, name)
	for !p.At("}") {
		if p.AtEOF() {
			return p.Errf("unexpected end of file in module %s", name)
		}
		if err := p.parseDefinition(); err != nil {
			return err
		}
	}
	p.module = p.module[:len(p.module)-1]
	if err := p.Expect("}"); err != nil {
		return err
	}
	return p.Expect(";")
}

func (p *parser) parseInterface() error {
	if err := p.Expect("interface"); err != nil {
		return err
	}
	pos := p.declPos()
	name, err := p.ExpectIdent()
	if err != nil {
		return err
	}
	// Forward declaration: "interface Name;"
	if ok, err := p.Accept(";"); err != nil || ok {
		if err == nil {
			p.types[p.scopedName(name)] = &aoi.InterfaceRef{Name: p.scopedName(name)}
		}
		return err
	}
	it := &aoi.Interface{
		Name:   name,
		Module: strings.Join(p.module, "::"),
		ID:     "IDL:" + strings.Join(append(append([]string{}, p.module...), name), "/") + ":1.0",
		Pos:    pos,
	}
	if ok, err := p.Accept(":"); err != nil {
		return err
	} else if ok {
		for {
			parent, err := p.parseScopedIdent()
			if err != nil {
				return err
			}
			it.Parents = append(it.Parents, parent)
			if ok, err := p.Accept(","); err != nil {
				return err
			} else if !ok {
				break
			}
		}
	}
	if err := p.Expect("{"); err != nil {
		return err
	}
	// Interface type is usable as an object reference inside its body,
	// and the interface name opens a scope for nested declarations.
	p.types[p.scopedName(name)] = &aoi.InterfaceRef{Name: p.scopedName(name)}
	p.module = append(p.module, name)
	code := uint32(0)
	// Inherited operations come first in discriminator order.
	for _, parentName := range it.Parents {
		parent := p.file.LookupInterface(parentName)
		if parent == nil {
			return p.Errf("unknown base interface %q", parentName)
		}
		for _, op := range parent.Ops {
			cp := *op
			cp.Code = code
			code++
			it.Ops = append(it.Ops, &cp)
		}
		it.Excepts = append(it.Excepts, parent.Excepts...)
	}
	for !p.At("}") {
		if p.AtEOF() {
			return p.Errf("unexpected end of file in interface %s", name)
		}
		if err := p.parseExport(it, &code); err != nil {
			return err
		}
	}
	p.module = p.module[:len(p.module)-1]
	if err := p.Expect("}"); err != nil {
		return err
	}
	if err := p.Expect(";"); err != nil {
		return err
	}
	p.file.Interfaces = append(p.file.Interfaces, it)
	return nil
}

func (p *parser) parseExport(it *aoi.Interface, code *uint32) error {
	switch {
	case p.At("typedef"):
		return p.parseTypedef()
	case p.At("struct"):
		t, err := p.parseStruct()
		if err != nil {
			return err
		}
		if err := p.defineQualified(t.Name, t); err != nil {
			return err
		}
		return p.Expect(";")
	case p.At("union"):
		t, err := p.parseUnion()
		if err != nil {
			return err
		}
		if err := p.defineQualified(t.Name, t); err != nil {
			return err
		}
		return p.Expect(";")
	case p.At("enum"):
		t, err := p.parseEnum()
		if err != nil {
			return err
		}
		if err := p.defineQualified(t.Name, t); err != nil {
			return err
		}
		return p.Expect(";")
	case p.At("const"):
		return p.parseConst()
	case p.At("exception"):
		return p.parseException(it)
	case p.At("attribute"), p.At("readonly"):
		return p.parseAttribute(it)
	default:
		return p.parseOperation(it, code)
	}
}

func (p *parser) parseException(it *aoi.Interface) error {
	if err := p.Expect("exception"); err != nil {
		return err
	}
	name, err := p.ExpectIdent()
	if err != nil {
		return err
	}
	if err := p.Expect("{"); err != nil {
		return err
	}
	ex := &aoi.Exception{
		Name: name,
		ID:   "IDL:" + it.Name + "/" + name + ":1.0",
	}
	for !p.At("}") {
		fields, err := p.parseMembers()
		if err != nil {
			return err
		}
		ex.Fields = append(ex.Fields, fields...)
	}
	if err := p.Expect("}"); err != nil {
		return err
	}
	if err := p.Expect(";"); err != nil {
		return err
	}
	it.Excepts = append(it.Excepts, ex)
	return nil
}

func (p *parser) parseAttribute(it *aoi.Interface) error {
	readonly, err := p.Accept("readonly")
	if err != nil {
		return err
	}
	if err := p.Expect("attribute"); err != nil {
		return err
	}
	t, err := p.parseType()
	if err != nil {
		return err
	}
	for {
		name, err := p.ExpectIdent()
		if err != nil {
			return err
		}
		it.Attrs = append(it.Attrs, &aoi.Attribute{Name: name, Type: t, ReadOnly: readonly})
		if ok, err := p.Accept(","); err != nil {
			return err
		} else if !ok {
			break
		}
	}
	return p.Expect(";")
}

func (p *parser) parseOperation(it *aoi.Interface, code *uint32) error {
	op := &aoi.Operation{Code: *code, Pos: p.declPos()}
	*code++
	var err error
	if op.Oneway, err = p.Accept("oneway"); err != nil {
		return err
	}
	if op.Result, err = p.parseType(); err != nil {
		return err
	}
	if op.Name, err = p.ExpectIdent(); err != nil {
		return err
	}
	if err := p.Expect("("); err != nil {
		return err
	}
	for !p.At(")") {
		var dir aoi.Direction
		switch {
		case p.At("in"):
			dir = aoi.In
		case p.At("out"):
			dir = aoi.Out
		case p.At("inout"):
			dir = aoi.InOut
		default:
			return p.Errf("expected parameter direction (in/out/inout), found %s", p.Tok())
		}
		if err := p.Advance(); err != nil {
			return err
		}
		t, err := p.parseType()
		if err != nil {
			return err
		}
		name, err := p.ExpectIdent()
		if err != nil {
			return err
		}
		op.Params = append(op.Params, aoi.Param{Name: name, Dir: dir, Type: t})
		if ok, err := p.Accept(","); err != nil {
			return err
		} else if !ok {
			break
		}
	}
	if err := p.Expect(")"); err != nil {
		return err
	}
	if ok, err := p.Accept("raises"); err != nil {
		return err
	} else if ok {
		if err := p.Expect("("); err != nil {
			return err
		}
		for {
			ex, err := p.parseScopedIdent()
			if err != nil {
				return err
			}
			op.Raises = append(op.Raises, ex)
			if ok, err := p.Accept(","); err != nil {
				return err
			} else if !ok {
				break
			}
		}
		if err := p.Expect(")"); err != nil {
			return err
		}
	}
	if err := p.Expect(";"); err != nil {
		return err
	}
	it.Ops = append(it.Ops, op)
	return nil
}

func (p *parser) parseScopedIdent() (string, error) {
	var parts []string
	if ok, err := p.Accept("::"); err != nil {
		return "", err
	} else if ok {
		// Fully-qualified from global scope.
	}
	for {
		name, err := p.ExpectIdent()
		if err != nil {
			return "", err
		}
		parts = append(parts, name)
		if ok, err := p.Accept("::"); err != nil {
			return "", err
		} else if !ok {
			break
		}
	}
	return strings.Join(parts, "::"), nil
}

func (p *parser) parseTypedef() error {
	if err := p.Expect("typedef"); err != nil {
		return err
	}
	base, err := p.parseType()
	if err != nil {
		return err
	}
	for {
		name, err := p.ExpectIdent()
		if err != nil {
			return err
		}
		t := base
		// Array declarator suffixes.
		for p.At("[") {
			if err := p.Advance(); err != nil {
				return err
			}
			n, err := p.parseConstUint()
			if err != nil {
				return err
			}
			if err := p.Expect("]"); err != nil {
				return err
			}
			t = &aoi.Array{Elem: t, Length: n}
		}
		if err := p.defineType(name, t); err != nil {
			return err
		}
		if ok, err := p.Accept(","); err != nil {
			return err
		} else if !ok {
			break
		}
	}
	return p.Expect(";")
}

func (p *parser) parseConst() error {
	if err := p.Expect("const"); err != nil {
		return err
	}
	t, err := p.parseType()
	if err != nil {
		return err
	}
	name, err := p.ExpectIdent()
	if err != nil {
		return err
	}
	if err := p.Expect("="); err != nil {
		return err
	}
	cd := &aoi.ConstDef{Name: p.scopedName(name), Type: t}
	if p.Tok().Kind == idllex.Str {
		cd.Str = p.Tok().Text
		if err := p.Advance(); err != nil {
			return err
		}
	} else {
		v, err := p.parseConstExpr()
		if err != nil {
			return err
		}
		cd.Int = v
	}
	p.consts[cd.Name] = cd
	p.file.Consts = append(p.file.Consts, cd)
	return p.Expect(";")
}

// parseConstExpr evaluates an integer constant expression with the usual
// C precedence for | ^ & << >> + - * / % and unary -.
func (p *parser) parseConstExpr() (int64, error) { return p.orExpr() }

func (p *parser) orExpr() (int64, error) {
	v, err := p.xorExpr()
	if err != nil {
		return 0, err
	}
	for p.At("|") {
		if err := p.Advance(); err != nil {
			return 0, err
		}
		r, err := p.xorExpr()
		if err != nil {
			return 0, err
		}
		v |= r
	}
	return v, nil
}

func (p *parser) xorExpr() (int64, error) {
	v, err := p.andExpr()
	if err != nil {
		return 0, err
	}
	for p.At("^") {
		if err := p.Advance(); err != nil {
			return 0, err
		}
		r, err := p.andExpr()
		if err != nil {
			return 0, err
		}
		v ^= r
	}
	return v, nil
}

func (p *parser) andExpr() (int64, error) {
	v, err := p.shiftExpr()
	if err != nil {
		return 0, err
	}
	for p.At("&") {
		if err := p.Advance(); err != nil {
			return 0, err
		}
		r, err := p.shiftExpr()
		if err != nil {
			return 0, err
		}
		v &= r
	}
	return v, nil
}

func (p *parser) shiftExpr() (int64, error) {
	v, err := p.addExpr()
	if err != nil {
		return 0, err
	}
	for p.At("<<") || p.At(">>") {
		op := p.Tok().Text
		if err := p.Advance(); err != nil {
			return 0, err
		}
		r, err := p.addExpr()
		if err != nil {
			return 0, err
		}
		if r < 0 || r > 63 {
			return 0, p.Errf("shift count %d out of range", r)
		}
		if op == "<<" {
			v <<= uint(r)
		} else {
			v >>= uint(r)
		}
	}
	return v, nil
}

func (p *parser) addExpr() (int64, error) {
	v, err := p.mulExpr()
	if err != nil {
		return 0, err
	}
	for p.At("+") || p.At("-") {
		op := p.Tok().Text
		if err := p.Advance(); err != nil {
			return 0, err
		}
		r, err := p.mulExpr()
		if err != nil {
			return 0, err
		}
		if op == "+" {
			v += r
		} else {
			v -= r
		}
	}
	return v, nil
}

func (p *parser) mulExpr() (int64, error) {
	v, err := p.unaryExpr()
	if err != nil {
		return 0, err
	}
	for p.At("*") || p.At("/") || p.At("%") {
		op := p.Tok().Text
		if err := p.Advance(); err != nil {
			return 0, err
		}
		r, err := p.unaryExpr()
		if err != nil {
			return 0, err
		}
		switch op {
		case "*":
			v *= r
		case "/":
			if r == 0 {
				return 0, p.Errf("division by zero in constant expression")
			}
			v /= r
		case "%":
			if r == 0 {
				return 0, p.Errf("division by zero in constant expression")
			}
			v %= r
		}
	}
	return v, nil
}

func (p *parser) unaryExpr() (int64, error) {
	if p.At("-") {
		if err := p.Advance(); err != nil {
			return 0, err
		}
		v, err := p.unaryExpr()
		return -v, err
	}
	if p.At("~") {
		if err := p.Advance(); err != nil {
			return 0, err
		}
		v, err := p.unaryExpr()
		return ^v, err
	}
	if p.At("(") {
		if err := p.Advance(); err != nil {
			return 0, err
		}
		v, err := p.parseConstExpr()
		if err != nil {
			return 0, err
		}
		return v, p.Expect(")")
	}
	tok := p.Tok()
	switch tok.Kind {
	case idllex.Int, idllex.CharLit:
		return tok.Val, p.Advance()
	case idllex.Ident:
		switch tok.Text {
		case "TRUE":
			return 1, p.Advance()
		case "FALSE":
			return 0, p.Advance()
		}
		name, err := p.parseScopedIdent()
		if err != nil {
			return 0, err
		}
		if cd, ok := p.lookupConst(name); ok {
			return cd.Int, nil
		}
		// Enum member?
		if v, ok := p.lookupEnumMember(name); ok {
			return v, nil
		}
		return 0, p.Errf("undefined constant %q", name)
	}
	return 0, p.Unexpected("constant expression")
}

func (p *parser) lookupEnumMember(name string) (int64, bool) {
	for _, td := range p.file.Types {
		if e, ok := td.Type.(*aoi.Enum); ok {
			for i, m := range e.Members {
				if m == name {
					return e.Values[i], true
				}
			}
		}
	}
	return 0, false
}

func (p *parser) parseConstUint() (uint32, error) {
	v, err := p.parseConstExpr()
	if err != nil {
		return 0, err
	}
	if v < 0 || v > 0xFFFFFFFF {
		return 0, p.Errf("value %d out of range for a length", v)
	}
	return uint32(v), nil
}

func (p *parser) parseStruct() (*aoi.Struct, error) {
	if err := p.Expect("struct"); err != nil {
		return nil, err
	}
	name, err := p.ExpectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.Expect("{"); err != nil {
		return nil, err
	}
	st := &aoi.Struct{Name: p.scopedName(name)}
	// Allow self-reference through sequence inside the body (CORBA
	// forbids it, matching the paper's note; we register nothing).
	for !p.At("}") {
		if p.AtEOF() {
			return nil, p.Errf("unexpected end of file in struct %s", name)
		}
		fields, err := p.parseMembers()
		if err != nil {
			return nil, err
		}
		st.Fields = append(st.Fields, fields...)
	}
	if err := p.Expect("}"); err != nil {
		return nil, err
	}
	return st, nil
}

// parseMembers parses "type name [, name]* ;" possibly with array
// declarators, returning one Field per declarator.
func (p *parser) parseMembers() ([]aoi.Field, error) {
	t, err := p.parseType()
	if err != nil {
		return nil, err
	}
	var fields []aoi.Field
	for {
		name, err := p.ExpectIdent()
		if err != nil {
			return nil, err
		}
		ft := t
		for p.At("[") {
			if err := p.Advance(); err != nil {
				return nil, err
			}
			n, err := p.parseConstUint()
			if err != nil {
				return nil, err
			}
			if err := p.Expect("]"); err != nil {
				return nil, err
			}
			ft = &aoi.Array{Elem: ft, Length: n}
		}
		fields = append(fields, aoi.Field{Name: name, Type: ft})
		if ok, err := p.Accept(","); err != nil {
			return nil, err
		} else if !ok {
			break
		}
	}
	return fields, p.Expect(";")
}

func (p *parser) parseUnion() (*aoi.Union, error) {
	if err := p.Expect("union"); err != nil {
		return nil, err
	}
	name, err := p.ExpectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.Expect("switch"); err != nil {
		return nil, err
	}
	if err := p.Expect("("); err != nil {
		return nil, err
	}
	discrim, err := p.parseType()
	if err != nil {
		return nil, err
	}
	if err := p.Expect(")"); err != nil {
		return nil, err
	}
	if err := p.Expect("{"); err != nil {
		return nil, err
	}
	u := &aoi.Union{Name: p.scopedName(name), Discrim: discrim}
	for !p.At("}") {
		if p.AtEOF() {
			return nil, p.Errf("unexpected end of file in union %s", name)
		}
		var c aoi.UnionCase
		for p.At("case") || p.At("default") {
			if p.At("default") {
				if err := p.Advance(); err != nil {
					return nil, err
				}
				c.IsDefault = true
				if err := p.Expect(":"); err != nil {
					return nil, err
				}
				continue
			}
			if err := p.Advance(); err != nil {
				return nil, err
			}
			v, err := p.parseCaseLabel(discrim)
			if err != nil {
				return nil, err
			}
			c.Labels = append(c.Labels, v)
			if err := p.Expect(":"); err != nil {
				return nil, err
			}
		}
		if len(c.Labels) == 0 && !c.IsDefault {
			return nil, p.Errf("expected case or default in union %s", name)
		}
		t, err := p.parseType()
		if err != nil {
			return nil, err
		}
		fname, err := p.ExpectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.Expect(";"); err != nil {
			return nil, err
		}
		c.Field = aoi.Field{Name: fname, Type: t}
		u.Cases = append(u.Cases, c)
	}
	if err := p.Expect("}"); err != nil {
		return nil, err
	}
	return u, nil
}

func (p *parser) parseCaseLabel(discrim aoi.Type) (int64, error) {
	// Enum discriminators take member names as labels.
	if e, ok := aoi.Resolve(discrim).(*aoi.Enum); ok && p.Tok().Kind == idllex.Ident &&
		!p.At("TRUE") && !p.At("FALSE") {
		name := p.Tok().Text
		for i, m := range e.Members {
			short := m
			if idx := strings.LastIndex(m, "::"); idx >= 0 {
				short = m[idx+2:]
			}
			if short == name || m == name {
				return e.Values[i], p.Advance()
			}
		}
	}
	return p.parseConstExpr()
}

func (p *parser) parseEnum() (*aoi.Enum, error) {
	if err := p.Expect("enum"); err != nil {
		return nil, err
	}
	name, err := p.ExpectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.Expect("{"); err != nil {
		return nil, err
	}
	e := &aoi.Enum{Name: p.scopedName(name)}
	v := int64(0)
	for {
		m, err := p.ExpectIdent()
		if err != nil {
			return nil, err
		}
		e.Members = append(e.Members, m)
		e.Values = append(e.Values, v)
		v++
		if ok, err := p.Accept(","); err != nil {
			return nil, err
		} else if !ok {
			break
		}
	}
	if err := p.Expect("}"); err != nil {
		return nil, err
	}
	return e, nil
}

func (p *parser) parseType() (aoi.Type, error) {
	tok := p.Tok()
	if tok.Kind != idllex.Ident {
		return nil, p.Unexpected("type")
	}
	switch tok.Text {
	case "void":
		return &aoi.Primitive{Kind: aoi.Void}, p.Advance()
	case "boolean":
		return &aoi.Primitive{Kind: aoi.Boolean}, p.Advance()
	case "octet":
		return &aoi.Primitive{Kind: aoi.Octet}, p.Advance()
	case "char":
		return &aoi.Primitive{Kind: aoi.Char}, p.Advance()
	case "float":
		return &aoi.Primitive{Kind: aoi.Float}, p.Advance()
	case "double":
		return &aoi.Primitive{Kind: aoi.Double}, p.Advance()
	case "short":
		return &aoi.Primitive{Kind: aoi.Short}, p.Advance()
	case "long":
		if err := p.Advance(); err != nil {
			return nil, err
		}
		if p.At("long") {
			return &aoi.Primitive{Kind: aoi.LongLong}, p.Advance()
		}
		return &aoi.Primitive{Kind: aoi.Long}, nil
	case "unsigned":
		if err := p.Advance(); err != nil {
			return nil, err
		}
		switch {
		case p.At("short"):
			return &aoi.Primitive{Kind: aoi.UShort}, p.Advance()
		case p.At("long"):
			if err := p.Advance(); err != nil {
				return nil, err
			}
			if p.At("long") {
				return &aoi.Primitive{Kind: aoi.ULongLong}, p.Advance()
			}
			return &aoi.Primitive{Kind: aoi.ULong}, nil
		default:
			return nil, p.Errf("expected short or long after unsigned")
		}
	case "string":
		if err := p.Advance(); err != nil {
			return nil, err
		}
		if p.At("<") {
			if err := p.Advance(); err != nil {
				return nil, err
			}
			n, err := p.parseConstUint()
			if err != nil {
				return nil, err
			}
			if err := p.Expect(">"); err != nil {
				return nil, err
			}
			return &aoi.String{Bound: n}, nil
		}
		return &aoi.String{}, nil
	case "sequence":
		if err := p.Advance(); err != nil {
			return nil, err
		}
		if err := p.Expect("<"); err != nil {
			return nil, err
		}
		elem, err := p.parseType()
		if err != nil {
			return nil, err
		}
		bound := uint32(0)
		if ok, err := p.Accept(","); err != nil {
			return nil, err
		} else if ok {
			if bound, err = p.parseConstUint(); err != nil {
				return nil, err
			}
		}
		if err := p.Expect(">"); err != nil {
			return nil, err
		}
		return &aoi.Sequence{Elem: elem, Bound: bound}, nil
	case "struct":
		t, err := p.parseStruct()
		if err != nil {
			return nil, err
		}
		if err := p.defineQualified(t.Name, t); err != nil {
			return nil, err
		}
		return t, nil
	case "union":
		t, err := p.parseUnion()
		if err != nil {
			return nil, err
		}
		if err := p.defineQualified(t.Name, t); err != nil {
			return nil, err
		}
		return t, nil
	case "enum":
		t, err := p.parseEnum()
		if err != nil {
			return nil, err
		}
		if err := p.defineQualified(t.Name, t); err != nil {
			return nil, err
		}
		return t, nil
	case "any":
		return nil, p.Errf("the any type is not supported")
	default:
		if corbaKeywords[tok.Text] {
			return nil, p.Unexpected("type")
		}
		name, err := p.parseScopedIdent()
		if err != nil {
			return nil, err
		}
		def, ok := p.lookupType(name)
		if !ok {
			return nil, p.Lex.Errf(tok, "undefined type %q", name)
		}
		if ir, isIface := def.(*aoi.InterfaceRef); isIface {
			return ir, nil
		}
		return &aoi.NamedRef{Name: name, Def: def}, nil
	}
}
