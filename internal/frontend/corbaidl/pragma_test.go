package corbaidl

import (
	"strings"
	"testing"
)

// Tests for the //flick: annotation mechanism: the idempotency marker
// must bind to the right operation in both comment positions, and
// misspelled or misplaced annotations must fail the parse — a silently
// dropped robustness annotation would quietly weaken the retry policy.

func TestIdempotentPragmaPreceding(t *testing.T) {
	f := mustParse(t, `
		interface Acct {
			//flick:idempotent
			long balance();
			long withdraw(in long amount);
		};
	`)
	it := f.LookupInterface("Acct")
	if op := it.LookupOp("balance"); op == nil || !op.Idempotent {
		t.Error("preceding //flick:idempotent did not mark balance")
	}
	if op := it.LookupOp("withdraw"); op == nil || op.Idempotent {
		t.Error("unannotated withdraw marked idempotent")
	}
}

func TestIdempotentPragmaTrailing(t *testing.T) {
	f := mustParse(t, `
		interface Acct {
			long balance(); //flick:idempotent
			long withdraw(in long amount);
		};
	`)
	it := f.LookupInterface("Acct")
	if op := it.LookupOp("balance"); op == nil || !op.Idempotent {
		t.Error("trailing //flick:idempotent did not mark balance")
	}
	if op := it.LookupOp("withdraw"); op == nil || op.Idempotent {
		t.Error("unannotated withdraw marked idempotent")
	}
}

func TestUnknownFlickDirectiveIsError(t *testing.T) {
	_, err := Parse("test.idl", `
		interface Acct {
			//flick:idempotnet
			long balance();
		};
	`)
	if err == nil {
		t.Fatal("misspelled //flick: directive parsed silently")
	}
	if !strings.Contains(err.Error(), "unknown //flick: directive") {
		t.Errorf("error = %v, want unknown-directive diagnostic", err)
	}
	if !strings.Contains(err.Error(), "idempotnet") {
		t.Errorf("error = %v, want the offending directive named", err)
	}
}

func TestDanglingFlickPragmaIsError(t *testing.T) {
	_, err := Parse("test.idl", `
		//flick:idempotent

		interface Acct {
			long balance();
		};
	`)
	if err == nil {
		t.Fatal("dangling //flick:idempotent parsed silently")
	}
	if !strings.Contains(err.Error(), "does not precede or trail an operation") {
		t.Errorf("error = %v, want dangling-pragma diagnostic", err)
	}
}

// Ordinary comments mentioning flick must not be mistaken for pragmas.
func TestPlainCommentsAreNotPragmas(t *testing.T) {
	f := mustParse(t, `
		interface Acct {
			// flick: this is prose, not a pragma (note the space)
			long balance();
		};
	`)
	if op := f.LookupInterface("Acct").LookupOp("balance"); op.Idempotent {
		t.Error("prose comment was treated as an annotation")
	}
}
