// Package mig is Flick's MIG front end. MIG interface definitions carry
// C- and Mach-specific idioms, so — exactly as in the paper — this front
// end is conjoined with its presentation generator: it produces PRES-C
// directly rather than AOI.
//
// The supported subset mirrors MIG's restrictions: a subsystem with a
// base message id, routines and simpleroutines, and parameters limited to
// scalars and arrays of scalars (MIG cannot express structured or
// recursive types; the paper's Figure 7 notes it cannot even send arrays
// of non-atomic types).
//
// Grammar:
//
//	subsystem <name> <base-id>;
//	type <name> = <type>;
//	routine <name>(<param>; <param>; ...);
//	simpleroutine <name>(<param>; ...);
//	param: [in|out|inout] <name> : <type>
//	type:  int8_t|uint8_t|...|int|char|boolean_t|float|double
//	     | array[] of <type> | array[N] of <type> | <typedef-name>
package mig

import (
	"fmt"

	"flick/internal/aoi"
	"flick/internal/frontend/idllex"
	"flick/internal/pgen"
	"flick/internal/presc"
)

// Parse compiles a MIG subsystem definition directly to a PRES-C file
// (the conjoined front end + presentation generator of the paper).
func Parse(filename, src string, side presc.Side) (*presc.File, error) {
	lex := idllex.New(filename, src)
	base, err := idllex.NewParser(lex)
	if err != nil {
		return nil, err
	}
	p := &parser{Parser: base, types: map[string]aoi.Type{}}
	iface, err := p.parseSubsystem()
	if err != nil {
		return nil, err
	}
	af := &aoi.File{Source: filename, IDL: "mig", Interfaces: []*aoi.Interface{iface}}
	if err := idllex.ApplyFlickPragmas(lex, af); err != nil {
		return nil, err
	}
	if err := aoi.Validate(af); err != nil {
		return nil, err
	}
	pf, err := pgen.GenerateGo(af, side)
	if err != nil {
		return nil, err
	}
	pf.Presentation = "mig"
	return pf, nil
}

type parser struct {
	*idllex.Parser
	types map[string]aoi.Type
}

// declPos captures the current token's position as an AOI declaration
// site, so aoi.Validate diagnostics point back into the IDL source.
func (p *parser) declPos() aoi.Pos {
	file, line, col := p.Pos()
	return aoi.Pos{File: file, Line: line, Col: col}
}

func (p *parser) parseSubsystem() (*aoi.Interface, error) {
	pos := p.declPos()
	if err := p.Expect("subsystem"); err != nil {
		return nil, err
	}
	name, err := p.ExpectIdent()
	if err != nil {
		return nil, err
	}
	baseID, err := p.ExpectInt()
	if err != nil {
		return nil, err
	}
	if err := p.Expect(";"); err != nil {
		return nil, err
	}
	it := &aoi.Interface{
		Name:    name,
		ID:      fmt.Sprintf("mig:%s:%d", name, baseID),
		Program: uint32(baseID),
		Version: 1,
		Pos:     pos,
	}
	idx := uint32(0)
	for !p.AtEOF() {
		switch {
		case p.At("type"):
			if err := p.parseTypedef(); err != nil {
				return nil, err
			}
		case p.At("routine"), p.At("simpleroutine"):
			op, err := p.parseRoutine(idx)
			if err != nil {
				return nil, err
			}
			it.Ops = append(it.Ops, op)
			idx++
		case p.At("skip"):
			// MIG's "skip;" reserves a message id.
			if err := p.Advance(); err != nil {
				return nil, err
			}
			if err := p.Expect(";"); err != nil {
				return nil, err
			}
			idx++
		default:
			return nil, p.Unexpected("subsystem body")
		}
	}
	if len(it.Ops) == 0 {
		return nil, p.Errf("subsystem %s declares no routines", name)
	}
	return it, nil
}

func (p *parser) parseTypedef() error {
	if err := p.Expect("type"); err != nil {
		return err
	}
	name, err := p.ExpectIdent()
	if err != nil {
		return err
	}
	if err := p.Expect("="); err != nil {
		return err
	}
	t, err := p.parseType()
	if err != nil {
		return err
	}
	if _, dup := p.types[name]; dup {
		return p.Errf("redefinition of type %q", name)
	}
	p.types[name] = t
	return p.Expect(";")
}

func (p *parser) parseRoutine(idx uint32) (*aoi.Operation, error) {
	pos := p.declPos()
	simple := p.At("simpleroutine")
	if err := p.Advance(); err != nil {
		return nil, err
	}
	name, err := p.ExpectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.Expect("("); err != nil {
		return nil, err
	}
	op := &aoi.Operation{
		Name:   name,
		Code:   idx,
		Oneway: simple,
		Result: &aoi.Primitive{Kind: aoi.Void},
		Pos:    pos,
	}
	first := true
	for !p.At(")") {
		dir := aoi.In
		switch {
		case p.At("in"):
			if err := p.Advance(); err != nil {
				return nil, err
			}
		case p.At("out"):
			dir = aoi.Out
			if err := p.Advance(); err != nil {
				return nil, err
			}
		case p.At("inout"):
			dir = aoi.InOut
			if err := p.Advance(); err != nil {
				return nil, err
			}
		}
		pname, err := p.ExpectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.Expect(":"); err != nil {
			return nil, err
		}
		t, err := p.parseType()
		if err != nil {
			return nil, err
		}
		// The conventional first parameter is the request port; it
		// addresses the message rather than traveling in it.
		isPort := false
		if first {
			if prim, okPort := t.(*portType); okPort {
				_ = prim
				isPort = true
			}
		}
		first = false
		if !isPort {
			if simple && dir != aoi.In {
				return nil, p.Errf("simpleroutine %s has %s parameter %q", name, dir, pname)
			}
			op.Params = append(op.Params, aoi.Param{Name: pname, Dir: dir, Type: t})
		}
		if ok, err := p.Accept(";"); err != nil {
			return nil, err
		} else if !ok {
			break
		}
	}
	if err := p.Expect(")"); err != nil {
		return nil, err
	}
	if err := p.Expect(";"); err != nil {
		return nil, err
	}
	return op, nil
}

// portType marks mach_port_t (never marshaled by value here).
type portType struct{ aoi.Primitive }

func (p *parser) parseType() (aoi.Type, error) {
	tok := p.Tok()
	if tok.Kind != idllex.Ident {
		return nil, p.Unexpected("type")
	}
	switch tok.Text {
	case "array":
		if err := p.Advance(); err != nil {
			return nil, err
		}
		if err := p.Expect("["); err != nil {
			return nil, err
		}
		length := int64(-1)
		if !p.At("]") {
			var err error
			if length, err = p.ExpectInt(); err != nil {
				return nil, err
			}
			if length <= 0 || length > 0xFFFFFFFF {
				return nil, p.Errf("array length %d out of range", length)
			}
		}
		if err := p.Expect("]"); err != nil {
			return nil, err
		}
		if err := p.Expect("of"); err != nil {
			return nil, err
		}
		elem, err := p.parseType()
		if err != nil {
			return nil, err
		}
		// MIG's restriction: arrays of scalars only.
		if _, okPrim := elem.(*aoi.Primitive); !okPrim {
			return nil, p.Errf("MIG arrays may contain only scalar types (got %s)", elem)
		}
		if length < 0 {
			return &aoi.Sequence{Elem: elem}, nil
		}
		return &aoi.Array{Elem: elem, Length: uint32(length)}, nil
	case "mach_port_t", "mach_port_move_send_t":
		return &portType{aoi.Primitive{Kind: aoi.ULong}}, p.Advance()
	case "int", "int32_t", "integer_t", "natural_t":
		return &aoi.Primitive{Kind: aoi.Long}, p.Advance()
	case "uint32_t", "unsigned32":
		return &aoi.Primitive{Kind: aoi.ULong}, p.Advance()
	case "int64_t":
		return &aoi.Primitive{Kind: aoi.LongLong}, p.Advance()
	case "uint64_t":
		return &aoi.Primitive{Kind: aoi.ULongLong}, p.Advance()
	case "int16_t":
		return &aoi.Primitive{Kind: aoi.Short}, p.Advance()
	case "uint16_t":
		return &aoi.Primitive{Kind: aoi.UShort}, p.Advance()
	case "int8_t":
		return &aoi.Primitive{Kind: aoi.Char}, p.Advance()
	case "uint8_t", "byte":
		return &aoi.Primitive{Kind: aoi.Octet}, p.Advance()
	case "char":
		return &aoi.Primitive{Kind: aoi.Char}, p.Advance()
	case "boolean_t":
		return &aoi.Primitive{Kind: aoi.Boolean}, p.Advance()
	case "float":
		return &aoi.Primitive{Kind: aoi.Float}, p.Advance()
	case "double":
		return &aoi.Primitive{Kind: aoi.Double}, p.Advance()
	default:
		if t, ok := p.types[tok.Text]; ok {
			return t, p.Advance()
		}
		return nil, p.Errf("unknown MIG type %q", tok.Text)
	}
}
