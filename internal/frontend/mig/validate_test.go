package mig

import (
	"strings"
	"testing"

	"flick/internal/presc"
)

// Invalid MIG input must fail at parse time with a positioned
// aoi.Validate error, not deep in the conjoined presentation generator.
func TestParseRejectsDuplicateRoutineWithPosition(t *testing.T) {
	src := `subsystem dup 100;
routine ping(in v : int);
routine ping(in w : int);
`
	_, err := Parse("dup.defs", src, presc.Client)
	if err == nil {
		t.Fatal("Parse(duplicate routine) = nil error")
	}
	msg := err.Error()
	if !strings.Contains(msg, `duplicate operation "ping"`) {
		t.Errorf("error %q does not name the duplicate routine", msg)
	}
	if !strings.Contains(msg, "dup.defs:3:") {
		t.Errorf("error %q is not positioned at the second routine (want dup.defs:3:...)", msg)
	}
}
