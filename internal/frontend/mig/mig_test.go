package mig

import (
	"strings"
	"testing"

	"flick/internal/presc"
)

const benchDefs = `
	subsystem bench 2400;

	type int_array = array[] of int32_t;

	routine send_ints(
		port : mach_port_t;
		v    : int_array);

	routine stats(
		port  : mach_port_t;
		which : int32_t;
		out count : int32_t);

	simpleroutine ping(
		port  : mach_port_t;
		nonce : int32_t);
`

func TestParseSubsystem(t *testing.T) {
	pf, err := Parse("bench.defs", benchDefs, presc.Client)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if pf.Presentation != "mig" {
		t.Errorf("presentation = %q", pf.Presentation)
	}
	if len(pf.Stubs) != 3 {
		t.Fatalf("stubs = %d", len(pf.Stubs))
	}
	send := pf.Stubs[0]
	if send.Op != "send_ints" || send.OpCode != 0 || send.Prog != 2400 {
		t.Errorf("send stub = %+v", send)
	}
	// The port parameter does not travel in the message.
	if len(send.Params) != 1 || send.Params[0].Name != "v" {
		t.Errorf("send params = %+v", send.Params)
	}
	stats := pf.Stubs[1]
	outs := stats.ReplyParams()
	if len(outs) != 1 || outs[0].Name != "count" {
		t.Errorf("stats outs = %+v", outs)
	}
	ping := pf.Stubs[2]
	if !ping.Oneway {
		t.Error("simpleroutine should be oneway")
	}
}

func TestSkipReservesID(t *testing.T) {
	pf, err := Parse("s.defs", `
		subsystem s 100;
		routine a(port : mach_port_t; x : int);
		skip;
		routine b(port : mach_port_t; x : int);
	`, presc.Client)
	if err != nil {
		t.Fatal(err)
	}
	if pf.Stubs[1].OpCode != 2 {
		t.Errorf("b code = %d, want 2 (skip reserves 1)", pf.Stubs[1].OpCode)
	}
}

func TestMIGRestrictions(t *testing.T) {
	tests := []struct {
		src     string
		wantSub string
	}{
		{
			// The paper: "MIG cannot express arrays of non-atomic types".
			`subsystem s 1;
			 type pair = array[2] of int;
			 routine f(port : mach_port_t; v : array[] of pair);`,
			"only scalar types",
		},
		{
			`subsystem s 1;
			 simpleroutine f(port : mach_port_t; out x : int);`,
			"simpleroutine",
		},
		{
			`subsystem s 1;`,
			"no routines",
		},
		{
			`subsystem s 1;
			 routine f(port : mach_port_t; x : wibble);`,
			"unknown MIG type",
		},
		{
			`routine f(port : mach_port_t);`,
			"expected \"subsystem\"",
		},
		{
			`subsystem s 1;
			 type t = int; type t = int;
			 routine f(port : mach_port_t; x : int);`,
			"redefinition",
		},
	}
	for _, tt := range tests {
		_, err := Parse("err.defs", tt.src, presc.Client)
		if err == nil {
			t.Errorf("Parse(%q) succeeded, want %q", tt.src, tt.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), tt.wantSub) {
			t.Errorf("Parse(%q) = %v, want %q", tt.src, err, tt.wantSub)
		}
	}
}

func TestAllScalarTypes(t *testing.T) {
	pf, err := Parse("t.defs", `
		subsystem s 1;
		routine f(
			port : mach_port_t;
			a : int8_t; b : uint8_t; c : int16_t; d : uint16_t;
			e : int32_t; g : uint32_t; h : int64_t; i : uint64_t;
			j : char; k : boolean_t; l : float; m : double;
			n : array[4] of int; o : byte);
	`, presc.Client)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(pf.Stubs[0].Params); got != 14 {
		t.Errorf("params = %d", got)
	}
}
