package oncrpc

import (
	"strings"
	"testing"

	"flick/internal/aoi"
)

func mustParse(t *testing.T, src string) *aoi.File {
	t.Helper()
	f, err := Parse("test.x", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return f
}

func TestParseMailProgram(t *testing.T) {
	// The paper's introductory ONC RPC example.
	f := mustParse(t, `
		program Mail {
			version MailVers {
				void send(string) = 1;
			} = 1;
		} = 0x20000001;
	`)
	it := f.LookupInterface("Mail")
	if it == nil {
		t.Fatal("no Mail interface")
	}
	if it.Program != 0x20000001 || it.Version != 1 {
		t.Errorf("prog/vers = %d,%d", it.Program, it.Version)
	}
	if it.ID != "536870913,1" {
		t.Errorf("ID = %q", it.ID)
	}
	op := it.LookupOp("send")
	if op == nil {
		t.Fatal("no send op")
	}
	if op.Code != 1 {
		t.Errorf("code = %d", op.Code)
	}
	if len(op.Params) != 1 {
		t.Fatalf("params = %+v", op.Params)
	}
	if op.Params[0].Name != "arg1" {
		t.Errorf("param name = %q", op.Params[0].Name)
	}
	if _, ok := op.Params[0].Type.(*aoi.String); !ok {
		t.Errorf("param type = %T", op.Params[0].Type)
	}
}

func TestXDRTypes(t *testing.T) {
	f := mustParse(t, `
		const MAXNAME = 255;
		typedef int int_arr<>;
		typedef opaque fhandle[32];
		typedef opaque data<1024>;
		typedef string name_t<MAXNAME>;
		enum ftype { NFREG = 1, NFDIR = 2, NFLNK };
		struct stat_info {
			int fields[30];
			opaque tag[16];
		};
		struct dir_entry {
			name_t     name;
			stat_info  info;
		};
		union result switch (int status) {
			case 0:  dir_entry entry;
			case 1:  void;
			default: string message<>;
		};
	`)
	if arr, ok := f.LookupType("int_arr").Type.(*aoi.Sequence); !ok || arr.Bound != 0 {
		t.Errorf("int_arr = %v", f.LookupType("int_arr").Type)
	}
	fh := f.LookupType("fhandle").Type.(*aoi.Array)
	if fh.Length != 32 {
		t.Errorf("fhandle = %v", fh)
	}
	if p, ok := fh.Elem.(*aoi.Primitive); !ok || p.Kind != aoi.Octet {
		t.Errorf("fhandle elem = %v", fh.Elem)
	}
	data := f.LookupType("data").Type.(*aoi.Sequence)
	if data.Bound != 1024 {
		t.Errorf("data bound = %d", data.Bound)
	}
	nm := f.LookupType("name_t").Type.(*aoi.String)
	if nm.Bound != 255 {
		t.Errorf("name_t bound = %d (const ref)", nm.Bound)
	}
	e := f.LookupType("ftype").Type.(*aoi.Enum)
	if len(e.Members) != 3 || e.Values[0] != 1 || e.Values[2] != 3 {
		t.Errorf("enum = %+v", e)
	}
	u := f.LookupType("result").Type.(*aoi.Union)
	if len(u.Cases) != 3 {
		t.Fatalf("union cases = %d", len(u.Cases))
	}
	if !u.Cases[2].IsDefault {
		t.Error("no default arm")
	}
	if !aoi.IsVoid(u.Cases[1].Field.Type) {
		t.Error("case 1 should be void")
	}
}

func TestRecursiveList(t *testing.T) {
	// The classic XDR linked list.
	f := mustParse(t, `
		struct intlist {
			int        value;
			intlist    *next;
		};
	`)
	st := f.LookupType("intlist").Type.(*aoi.Struct)
	if len(st.Fields) != 2 {
		t.Fatalf("fields = %+v", st.Fields)
	}
	opt, ok := st.Fields[1].Type.(*aoi.Optional)
	if !ok {
		t.Fatalf("next = %T", st.Fields[1].Type)
	}
	if aoi.Resolve(opt.Elem) != st {
		t.Error("next does not point back to intlist")
	}
}

func TestMultipleVersions(t *testing.T) {
	f := mustParse(t, `
		program CALC {
			version CALC_V1 {
				int add(int, int) = 1;
			} = 1;
			version CALC_V2 {
				int add(int, int) = 1;
				int mul(int, int) = 2;
			} = 2;
		} = 0x20000099;
	`)
	if len(f.Interfaces) != 2 {
		t.Fatalf("interfaces = %d", len(f.Interfaces))
	}
	v1 := f.LookupInterface("CALC_1")
	v2 := f.LookupInterface("CALC_2")
	if v1 == nil || v2 == nil {
		t.Fatal("missing versioned interfaces")
	}
	if len(v1.Ops) != 1 || len(v2.Ops) != 2 {
		t.Errorf("ops = %d,%d", len(v1.Ops), len(v2.Ops))
	}
	add := v2.LookupOp("add")
	if len(add.Params) != 2 || add.Params[1].Name != "arg2" {
		t.Errorf("add params = %+v", add.Params)
	}
}

func TestOptionalResult(t *testing.T) {
	f := mustParse(t, `
		struct entry { int v; };
		program P {
			version V {
				entry *lookup(int) = 1;
			} = 1;
		} = 99;
	`)
	op := f.Interfaces[0].LookupOp("lookup")
	if _, ok := op.Result.(*aoi.Optional); !ok {
		t.Errorf("result = %T, want optional", op.Result)
	}
}

func TestPrimitives(t *testing.T) {
	f := mustParse(t, `
		struct all {
			int a; unsigned int b; unsigned c;
			hyper d; unsigned hyper e;
			float f; double g; bool h;
			char i; unsigned char j; short k; unsigned short l;
		};
	`)
	st := f.LookupType("all").Type.(*aoi.Struct)
	kinds := []aoi.PrimKind{
		aoi.Long, aoi.ULong, aoi.ULong, aoi.LongLong, aoi.ULongLong,
		aoi.Float, aoi.Double, aoi.Boolean, aoi.Char, aoi.Octet,
		aoi.Short, aoi.UShort,
	}
	for i, k := range kinds {
		p, ok := st.Fields[i].Type.(*aoi.Primitive)
		if !ok || p.Kind != k {
			t.Errorf("field %d = %v, want %v", i, st.Fields[i].Type, k)
		}
	}
}

func TestBoolConstants(t *testing.T) {
	f := mustParse(t, `
		union maybe switch (bool set) {
			case TRUE:  int value;
			case FALSE: void;
		};
	`)
	u := f.LookupType("maybe").Type.(*aoi.Union)
	if u.Cases[0].Labels[0] != 1 || u.Cases[1].Labels[0] != 0 {
		t.Errorf("labels = %+v", u.Cases)
	}
}

func TestRpcgenPassThrough(t *testing.T) {
	mustParse(t, `
		%#include "extra.h"
		#define FOO 1
		const X = 5;
	`)
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		src     string
		wantSub string
	}{
		{`typedef wibble x;`, "undefined type"},
		{`struct s { void; };`, "void member"},
		{`typedef opaque x;`, "opaque requires"},
		{`const X = Y;`, "undefined constant"},
		{`program P { } = 1;`, "no versions"},
		{`struct s { int a; struct nope b; };`, "undefined struct"},
		{`typedef quadruple q;`, "not supported"},
		{`program P { version V { opaque f(int) = 1; } = 1; } = 2;`, "not a valid result"},
		{`struct s { int a[0]; };`, "out of range"},
		{`union u switch (int d) { };`, "case or default"},
		{`const X = 1; const X = 2;`, "redefinition"},
		{`struct s { int v; };  struct s { int w; };`, "redefinition"},
	}
	for _, tt := range tests {
		_, err := Parse("err.x", tt.src)
		if err == nil {
			t.Errorf("Parse(%q) succeeded, want error %q", tt.src, tt.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), tt.wantSub) {
			t.Errorf("Parse(%q) = %v, want error containing %q", tt.src, err, tt.wantSub)
		}
	}
}

func TestInlineEnumDeclaration(t *testing.T) {
	f := mustParse(t, `
		struct s {
			enum { A = 1, B = 2 } kind;
			int v;
		};
	`)
	st := f.LookupType("s").Type.(*aoi.Struct)
	e, ok := st.Fields[0].Type.(*aoi.Enum)
	if !ok || len(e.Members) != 2 {
		t.Errorf("inline enum = %v", st.Fields[0].Type)
	}
}
