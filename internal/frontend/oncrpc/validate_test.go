package oncrpc

import (
	"strings"
	"testing"
)

// Invalid rpcgen input must fail at parse time with a positioned
// aoi.Validate error, not deep in pgen.
func TestParseRejectsDuplicateProcedureNumbers(t *testing.T) {
	src := `program DUP {
	version DUP_V1 {
		int first(int) = 1;
		int second(int) = 1;
	} = 1;
} = 0x20000100;
`
	_, err := Parse("dup.x", src)
	if err == nil {
		t.Fatal("Parse(duplicate procedure numbers) = nil error")
	}
	msg := err.Error()
	if !strings.Contains(msg, "share code 1") {
		t.Errorf("error %q does not name the shared procedure number", msg)
	}
	if !strings.Contains(msg, "dup.x:") {
		t.Errorf("error %q is not positioned in dup.x", msg)
	}
}
