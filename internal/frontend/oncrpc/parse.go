// Package oncrpc is Flick's ONC RPC front end: it parses the rpcgen
// interface language (the XDR data-description language of RFC 1832 plus
// program/version/procedure declarations) and produces AOI.
package oncrpc

import (
	"fmt"

	"flick/internal/aoi"
	"flick/internal/frontend/idllex"
)

// Parse converts an rpcgen ".x" source into AOI.
func Parse(filename, src string) (*aoi.File, error) {
	lex := idllex.New(filename, src, "<<", ">>")
	base, err := idllex.NewParser(lex)
	if err != nil {
		return nil, err
	}
	p := &parser{
		Parser: base,
		file:   &aoi.File{Source: filename, IDL: "oncrpc"},
		types:  map[string]aoi.Type{},
		consts: map[string]int64{},
	}
	if err := p.parseSpec(); err != nil {
		return nil, err
	}
	if err := idllex.ApplyFlickPragmas(lex, p.file); err != nil {
		return nil, err
	}
	if err := aoi.Validate(p.file); err != nil {
		return nil, err
	}
	return p.file, nil
}

type parser struct {
	*idllex.Parser
	file   *aoi.File
	types  map[string]aoi.Type
	consts map[string]int64
}

var xdrKeywords = map[string]bool{
	"typedef": true, "enum": true, "struct": true, "union": true,
	"const": true, "program": true, "version": true, "switch": true,
	"case": true, "default": true, "unsigned": true, "int": true,
	"hyper": true, "float": true, "double": true, "quadruple": true,
	"bool": true, "opaque": true, "string": true, "void": true,
	"TRUE": true, "FALSE": true,
}

func (p *parser) defineType(name string, t aoi.Type) error {
	if _, dup := p.types[name]; dup {
		return p.Errf("redefinition of %q", name)
	}
	p.types[name] = t
	p.file.Types = append(p.file.Types, &aoi.TypeDef{Name: name, Type: t, Pos: p.declPos()})
	return nil
}

// declPos captures the current token's position as an AOI declaration
// site, so aoi.Validate diagnostics point back into the IDL source.
func (p *parser) declPos() aoi.Pos {
	file, line, col := p.Pos()
	return aoi.Pos{File: file, Line: line, Col: col}
}

func (p *parser) parseSpec() error {
	for !p.AtEOF() {
		switch {
		case p.At("typedef"):
			if err := p.parseTypedef(); err != nil {
				return err
			}
		case p.At("enum"):
			t, err := p.parseEnumTypeDef()
			if err != nil {
				return err
			}
			if err := p.defineType(t.Name, t); err != nil {
				return err
			}
			if err := p.Expect(";"); err != nil {
				return err
			}
		case p.At("struct"):
			if err := p.parseStructDef(); err != nil {
				return err
			}
		case p.At("union"):
			t, err := p.parseUnionTypeDef()
			if err != nil {
				return err
			}
			if err := p.defineType(t.Name, t); err != nil {
				return err
			}
			if err := p.Expect(";"); err != nil {
				return err
			}
		case p.At("const"):
			if err := p.parseConst(); err != nil {
				return err
			}
		case p.At("program"):
			if err := p.parseProgram(); err != nil {
				return err
			}
		default:
			return p.Unexpected("specification")
		}
	}
	return nil
}

func (p *parser) parseConst() error {
	if err := p.Expect("const"); err != nil {
		return err
	}
	name, err := p.ExpectIdent()
	if err != nil {
		return err
	}
	if err := p.Expect("="); err != nil {
		return err
	}
	v, err := p.parseValue()
	if err != nil {
		return err
	}
	if _, dup := p.consts[name]; dup {
		return p.Errf("redefinition of constant %q", name)
	}
	p.consts[name] = v
	p.file.Consts = append(p.file.Consts, &aoi.ConstDef{
		Name: name, Type: &aoi.Primitive{Kind: aoi.Long}, Int: v,
	})
	return p.Expect(";")
}

// parseValue parses an integer constant: a literal, a named constant, or
// an enum member. (XDR constants are simple values, not expressions.)
func (p *parser) parseValue() (int64, error) {
	neg := false
	if p.At("-") {
		neg = true
		if err := p.Advance(); err != nil {
			return 0, err
		}
	}
	tok := p.Tok()
	var v int64
	switch tok.Kind {
	case idllex.Int:
		v = tok.Val
		if err := p.Advance(); err != nil {
			return 0, err
		}
	case idllex.Ident:
		switch tok.Text {
		case "TRUE":
			v = 1
		case "FALSE":
			v = 0
		default:
			c, ok := p.consts[tok.Text]
			if !ok {
				if ev, found := p.lookupEnumMember(tok.Text); found {
					c, ok = ev, true
				}
			}
			if !ok {
				return 0, p.Errf("undefined constant %q", tok.Text)
			}
			v = c
		}
		if err := p.Advance(); err != nil {
			return 0, err
		}
	default:
		return 0, p.Unexpected("constant value")
	}
	if neg {
		v = -v
	}
	return v, nil
}

func (p *parser) lookupEnumMember(name string) (int64, bool) {
	for _, td := range p.file.Types {
		if e, ok := td.Type.(*aoi.Enum); ok {
			for i, m := range e.Members {
				if m == name {
					return e.Values[i], true
				}
			}
		}
	}
	return 0, false
}

func (p *parser) parseEnumTypeDef() (*aoi.Enum, error) {
	if err := p.Expect("enum"); err != nil {
		return nil, err
	}
	name, err := p.ExpectIdent()
	if err != nil {
		return nil, err
	}
	body, err := p.parseEnumBody(name)
	if err != nil {
		return nil, err
	}
	return body, nil
}

func (p *parser) parseEnumBody(name string) (*aoi.Enum, error) {
	if err := p.Expect("{"); err != nil {
		return nil, err
	}
	e := &aoi.Enum{Name: name}
	next := int64(0)
	for {
		m, err := p.ExpectIdent()
		if err != nil {
			return nil, err
		}
		v := next
		if ok, err := p.Accept("="); err != nil {
			return nil, err
		} else if ok {
			if v, err = p.parseValue(); err != nil {
				return nil, err
			}
		}
		e.Members = append(e.Members, m)
		e.Values = append(e.Values, v)
		// Enum members are usable as constants.
		p.consts[m] = v
		next = v + 1
		if ok, err := p.Accept(","); err != nil {
			return nil, err
		} else if !ok {
			break
		}
	}
	return e, p.Expect("}")
}

func (p *parser) parseStructDef() error {
	if err := p.Expect("struct"); err != nil {
		return err
	}
	name, err := p.ExpectIdent()
	if err != nil {
		return err
	}
	// Pre-register so the body can reference itself through optional
	// data (XDR linked lists).
	st := &aoi.Struct{Name: name}
	if err := p.defineType(name, st); err != nil {
		return err
	}
	fields, err := p.parseStructBody(name)
	if err != nil {
		return err
	}
	st.Fields = fields
	return p.Expect(";")
}

func (p *parser) parseStructBody(name string) ([]aoi.Field, error) {
	if err := p.Expect("{"); err != nil {
		return nil, err
	}
	var fields []aoi.Field
	for !p.At("}") {
		if p.AtEOF() {
			return nil, p.Errf("unexpected end of file in struct %s", name)
		}
		f, err := p.parseDeclaration()
		if err != nil {
			return nil, err
		}
		if aoi.IsVoid(f.Type) {
			return nil, p.Errf("void member in struct %s", name)
		}
		fields = append(fields, f)
		if err := p.Expect(";"); err != nil {
			return nil, err
		}
	}
	return fields, p.Expect("}")
}

func (p *parser) parseUnionTypeDef() (*aoi.Union, error) {
	if err := p.Expect("union"); err != nil {
		return nil, err
	}
	name, err := p.ExpectIdent()
	if err != nil {
		return nil, err
	}
	return p.parseUnionBody(name)
}

func (p *parser) parseUnionBody(name string) (*aoi.Union, error) {
	if err := p.Expect("switch"); err != nil {
		return nil, err
	}
	if err := p.Expect("("); err != nil {
		return nil, err
	}
	discrim, err := p.parseDeclaration()
	if err != nil {
		return nil, err
	}
	if err := p.Expect(")"); err != nil {
		return nil, err
	}
	if err := p.Expect("{"); err != nil {
		return nil, err
	}
	u := &aoi.Union{Name: name, Discrim: discrim.Type}
	for !p.At("}") {
		if p.AtEOF() {
			return nil, p.Errf("unexpected end of file in union %s", name)
		}
		var c aoi.UnionCase
		for {
			if p.At("case") {
				if err := p.Advance(); err != nil {
					return nil, err
				}
				v, err := p.parseValue()
				if err != nil {
					return nil, err
				}
				c.Labels = append(c.Labels, v)
				if err := p.Expect(":"); err != nil {
					return nil, err
				}
				continue
			}
			if p.At("default") {
				if err := p.Advance(); err != nil {
					return nil, err
				}
				c.IsDefault = true
				if err := p.Expect(":"); err != nil {
					return nil, err
				}
			}
			break
		}
		if len(c.Labels) == 0 && !c.IsDefault {
			return nil, p.Errf("expected case or default in union %s", name)
		}
		f, err := p.parseDeclaration()
		if err != nil {
			return nil, err
		}
		c.Field = f
		u.Cases = append(u.Cases, c)
		if err := p.Expect(";"); err != nil {
			return nil, err
		}
	}
	if len(u.Cases) == 0 {
		return nil, p.Errf("expected case or default in union %s", name)
	}
	return u, p.Expect("}")
}

func (p *parser) parseTypedef() error {
	if err := p.Expect("typedef"); err != nil {
		return err
	}
	f, err := p.parseDeclaration()
	if err != nil {
		return err
	}
	if f.Name == "" {
		return p.Errf("typedef requires a name")
	}
	if err := p.defineType(f.Name, f.Type); err != nil {
		return err
	}
	return p.Expect(";")
}

// parseDeclaration parses an XDR declaration: a type applied to an
// (optional, in procedure-argument position) identifier, with pointer,
// fixed-array, and variable-array declarators.
//
//	type-specifier identifier
//	type-specifier identifier [ value ]
//	type-specifier identifier < value? >
//	opaque identifier [ value ] | opaque identifier < value? >
//	string identifier < value? >
//	type-specifier * identifier
//	void
func (p *parser) parseDeclaration() (aoi.Field, error) {
	switch {
	case p.At("void"):
		return aoi.Field{Type: &aoi.Primitive{Kind: aoi.Void}}, p.Advance()
	case p.At("opaque"):
		if err := p.Advance(); err != nil {
			return aoi.Field{}, err
		}
		name, err := p.maybeIdent()
		if err != nil {
			return aoi.Field{}, err
		}
		switch {
		case p.At("["):
			n, err := p.parseArraySize()
			if err != nil {
				return aoi.Field{}, err
			}
			return aoi.Field{Name: name, Type: &aoi.Array{Elem: &aoi.Primitive{Kind: aoi.Octet}, Length: n}}, nil
		case p.At("<"):
			n, err := p.parseBound()
			if err != nil {
				return aoi.Field{}, err
			}
			return aoi.Field{Name: name, Type: &aoi.Sequence{Elem: &aoi.Primitive{Kind: aoi.Octet}, Bound: n}}, nil
		default:
			return aoi.Field{}, p.Errf("opaque requires [n] or <n>")
		}
	case p.At("string"):
		if err := p.Advance(); err != nil {
			return aoi.Field{}, err
		}
		name, err := p.maybeIdent()
		if err != nil {
			return aoi.Field{}, err
		}
		bound := uint32(0)
		if p.At("<") {
			if bound, err = p.parseBound(); err != nil {
				return aoi.Field{}, err
			}
		}
		return aoi.Field{Name: name, Type: &aoi.String{Bound: bound}}, nil
	}
	t, err := p.parseTypeSpecifier()
	if err != nil {
		return aoi.Field{}, err
	}
	if ok, err := p.Accept("*"); err != nil {
		return aoi.Field{}, err
	} else if ok {
		name, err := p.maybeIdent()
		if err != nil {
			return aoi.Field{}, err
		}
		return aoi.Field{Name: name, Type: &aoi.Optional{Elem: t}}, nil
	}
	name, err := p.maybeIdent()
	if err != nil {
		return aoi.Field{}, err
	}
	switch {
	case p.At("["):
		n, err := p.parseArraySize()
		if err != nil {
			return aoi.Field{}, err
		}
		return aoi.Field{Name: name, Type: &aoi.Array{Elem: t, Length: n}}, nil
	case p.At("<"):
		n, err := p.parseBound()
		if err != nil {
			return aoi.Field{}, err
		}
		return aoi.Field{Name: name, Type: &aoi.Sequence{Elem: t, Bound: n}}, nil
	}
	return aoi.Field{Name: name, Type: t}, nil
}

// maybeIdent consumes an identifier if one is present (procedure argument
// types appear without names).
func (p *parser) maybeIdent() (string, error) {
	if p.Tok().Kind == idllex.Ident && !xdrKeywords[p.Tok().Text] {
		return p.ExpectIdent()
	}
	return "", nil
}

func (p *parser) parseArraySize() (uint32, error) {
	if err := p.Expect("["); err != nil {
		return 0, err
	}
	v, err := p.parseValue()
	if err != nil {
		return 0, err
	}
	if v <= 0 || v > 0xFFFFFFFF {
		return 0, p.Errf("array size %d out of range", v)
	}
	return uint32(v), p.Expect("]")
}

func (p *parser) parseBound() (uint32, error) {
	if err := p.Expect("<"); err != nil {
		return 0, err
	}
	if ok, err := p.Accept(">"); err != nil {
		return 0, err
	} else if ok {
		return 0, nil // unbounded
	}
	v, err := p.parseValue()
	if err != nil {
		return 0, err
	}
	if v <= 0 || v > 0xFFFFFFFF {
		return 0, p.Errf("bound %d out of range", v)
	}
	return uint32(v), p.Expect(">")
}

func (p *parser) parseTypeSpecifier() (aoi.Type, error) {
	tok := p.Tok()
	if tok.Kind != idllex.Ident {
		return nil, p.Unexpected("type specifier")
	}
	switch tok.Text {
	case "int":
		return &aoi.Primitive{Kind: aoi.Long}, p.Advance()
	case "hyper":
		return &aoi.Primitive{Kind: aoi.LongLong}, p.Advance()
	case "float":
		return &aoi.Primitive{Kind: aoi.Float}, p.Advance()
	case "double":
		return &aoi.Primitive{Kind: aoi.Double}, p.Advance()
	case "bool":
		return &aoi.Primitive{Kind: aoi.Boolean}, p.Advance()
	case "char":
		// Common rpcgen extension.
		return &aoi.Primitive{Kind: aoi.Char}, p.Advance()
	case "short":
		return &aoi.Primitive{Kind: aoi.Short}, p.Advance()
	case "quadruple":
		return nil, p.Errf("quadruple is not supported")
	case "unsigned":
		if err := p.Advance(); err != nil {
			return nil, err
		}
		switch {
		case p.At("int"):
			return &aoi.Primitive{Kind: aoi.ULong}, p.Advance()
		case p.At("hyper"):
			return &aoi.Primitive{Kind: aoi.ULongLong}, p.Advance()
		case p.At("char"):
			return &aoi.Primitive{Kind: aoi.Octet}, p.Advance()
		case p.At("short"):
			return &aoi.Primitive{Kind: aoi.UShort}, p.Advance()
		default:
			// Bare "unsigned" means unsigned int.
			return &aoi.Primitive{Kind: aoi.ULong}, nil
		}
	case "enum":
		if err := p.Advance(); err != nil {
			return nil, err
		}
		// Inline enum body (anonymous in a declaration).
		return p.parseEnumBody("")
	case "struct":
		if err := p.Advance(); err != nil {
			return nil, err
		}
		// "struct name" reference.
		name, err := p.ExpectIdent()
		if err != nil {
			return nil, err
		}
		def, ok := p.types[name]
		if !ok {
			return nil, p.Errf("undefined struct %q", name)
		}
		return &aoi.NamedRef{Name: name, Def: def}, nil
	case "void", "opaque", "string":
		return nil, p.Errf("%s is not valid here", tok.Text)
	default:
		if xdrKeywords[tok.Text] {
			return nil, p.Unexpected("type specifier")
		}
		def, ok := p.types[tok.Text]
		if !ok {
			return nil, p.Errf("undefined type %q", tok.Text)
		}
		return &aoi.NamedRef{Name: tok.Text, Def: def}, p.Advance()
	}
}

func (p *parser) parseProgram() error {
	if err := p.Expect("program"); err != nil {
		return err
	}
	progName, err := p.ExpectIdent()
	if err != nil {
		return err
	}
	if err := p.Expect("{"); err != nil {
		return err
	}
	type versionDecl struct {
		name string
		ops  []*aoi.Operation
		num  int64
		pos  aoi.Pos
	}
	var versions []versionDecl
	for p.At("version") {
		vPos := p.declPos()
		if err := p.Advance(); err != nil {
			return err
		}
		vName, err := p.ExpectIdent()
		if err != nil {
			return err
		}
		if err := p.Expect("{"); err != nil {
			return err
		}
		var ops []*aoi.Operation
		for !p.At("}") {
			if p.AtEOF() {
				return p.Errf("unexpected end of file in version %s", vName)
			}
			op, err := p.parseProcedure()
			if err != nil {
				return err
			}
			ops = append(ops, op)
		}
		if err := p.Expect("}"); err != nil {
			return err
		}
		if err := p.Expect("="); err != nil {
			return err
		}
		vNum, err := p.parseValue()
		if err != nil {
			return err
		}
		if err := p.Expect(";"); err != nil {
			return err
		}
		versions = append(versions, versionDecl{name: vName, ops: ops, num: vNum, pos: vPos})
	}
	if err := p.Expect("}"); err != nil {
		return err
	}
	if err := p.Expect("="); err != nil {
		return err
	}
	progNum, err := p.parseValue()
	if err != nil {
		return err
	}
	if err := p.Expect(";"); err != nil {
		return err
	}
	if len(versions) == 0 {
		return p.Errf("program %s has no versions", progName)
	}
	for _, v := range versions {
		name := progName
		if len(versions) > 1 {
			name = fmt.Sprintf("%s_%d", progName, v.num)
		}
		p.file.Interfaces = append(p.file.Interfaces, &aoi.Interface{
			Name:    name,
			ID:      fmt.Sprintf("%d,%d", uint32(progNum), uint32(v.num)),
			Program: uint32(progNum),
			Version: uint32(v.num),
			Ops:     v.ops,
			Pos:     v.pos,
		})
	}
	return nil
}

func (p *parser) parseProcedure() (*aoi.Operation, error) {
	pos := p.declPos()
	result, err := p.parseResultType()
	if err != nil {
		return nil, err
	}
	name, err := p.ExpectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.Expect("("); err != nil {
		return nil, err
	}
	op := &aoi.Operation{Name: name, Result: result, Pos: pos}
	argIdx := 1
	for !p.At(")") {
		f, err := p.parseDeclaration()
		if err != nil {
			return nil, err
		}
		if !aoi.IsVoid(f.Type) {
			pname := f.Name
			if pname == "" {
				pname = fmt.Sprintf("arg%d", argIdx)
			}
			op.Params = append(op.Params, aoi.Param{Name: pname, Dir: aoi.In, Type: f.Type})
			argIdx++
		}
		if ok, err := p.Accept(","); err != nil {
			return nil, err
		} else if !ok {
			break
		}
	}
	if err := p.Expect(")"); err != nil {
		return nil, err
	}
	if err := p.Expect("="); err != nil {
		return nil, err
	}
	num, err := p.parseValue()
	if err != nil {
		return nil, err
	}
	if num < 0 || num > 0xFFFFFFFF {
		return nil, p.Errf("procedure number %d out of range", num)
	}
	op.Code = uint32(num)
	return op, p.Expect(";")
}

// parseResultType parses a procedure result: void, string, or a type
// specifier with an optional "*". It must not consume the procedure name
// that follows, so it cannot reuse parseDeclaration.
func (p *parser) parseResultType() (aoi.Type, error) {
	switch {
	case p.At("void"):
		return &aoi.Primitive{Kind: aoi.Void}, p.Advance()
	case p.At("string"):
		if err := p.Advance(); err != nil {
			return nil, err
		}
		return &aoi.String{}, nil
	case p.At("opaque"):
		return nil, p.Errf("opaque is not a valid result type (use a typedef)")
	}
	t, err := p.parseTypeSpecifier()
	if err != nil {
		return nil, err
	}
	if ok, err := p.Accept("*"); err != nil {
		return nil, err
	} else if ok {
		return &aoi.Optional{Elem: t}, nil
	}
	return t, nil
}
