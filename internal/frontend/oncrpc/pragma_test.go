package oncrpc

import (
	"strings"
	"testing"
)

// The //flick: annotation mechanism lives in the shared lexer, so it
// works identically in rpcgen's .x grammar: these tests pin the ONC
// front-end down to the same binding and error behaviour as CORBA IDL.

func TestIdempotentPragmaInXDR(t *testing.T) {
	f := mustParse(t, `
		program Acct {
			version AcctV {
				//flick:idempotent
				int balance(void) = 1;
				int withdraw(int) = 2;
				int audit(void) = 3; //flick:idempotent
			} = 1;
		} = 0x20000099;
	`)
	it := f.LookupInterface("Acct")
	if op := it.LookupOp("balance"); op == nil || !op.Idempotent {
		t.Error("preceding //flick:idempotent did not mark balance")
	}
	if op := it.LookupOp("audit"); op == nil || !op.Idempotent {
		t.Error("trailing //flick:idempotent did not mark audit")
	}
	if op := it.LookupOp("withdraw"); op == nil || op.Idempotent {
		t.Error("unannotated withdraw marked idempotent")
	}
}

func TestUnknownDirectiveInXDRIsError(t *testing.T) {
	_, err := Parse("test.x", `
		program Acct {
			version AcctV {
				//flick:retryable
				int balance(void) = 1;
			} = 1;
		} = 0x20000099;
	`)
	if err == nil || !strings.Contains(err.Error(), "unknown //flick: directive") {
		t.Errorf("unknown directive error = %v", err)
	}
}
