package idllex

// Parser layers one-token lookahead and expectation helpers over a Lexer;
// it is embedded by each front end's recursive-descent parser.
type Parser struct {
	Lex *Lexer
	tok Token
}

// NewParser primes the lookahead.
func NewParser(l *Lexer) (*Parser, error) {
	p := &Parser{Lex: l}
	return p, p.Advance()
}

// Tok returns the current token.
func (p *Parser) Tok() Token { return p.tok }

// Advance consumes the current token.
func (p *Parser) Advance() error {
	tok, err := p.Lex.Next()
	if err != nil {
		return err
	}
	p.tok = tok
	return nil
}

// At reports whether the current token is the given punctuation or
// keyword spelling.
func (p *Parser) At(text string) bool {
	return (p.tok.Kind == Punct || p.tok.Kind == Ident) && p.tok.Text == text
}

// AtEOF reports end of input.
func (p *Parser) AtEOF() bool { return p.tok.Kind == EOF }

// Accept consumes the current token if it matches text.
func (p *Parser) Accept(text string) (bool, error) {
	if p.At(text) {
		return true, p.Advance()
	}
	return false, nil
}

// Expect consumes a required punctuation or keyword.
func (p *Parser) Expect(text string) error {
	if !p.At(text) {
		return p.Lex.Errf(p.tok, "expected %q, found %s", text, p.tok)
	}
	return p.Advance()
}

// ExpectIdent consumes a required identifier and returns its spelling.
func (p *Parser) ExpectIdent() (string, error) {
	if p.tok.Kind != Ident {
		return "", p.Lex.Errf(p.tok, "expected identifier, found %s", p.tok)
	}
	name := p.tok.Text
	return name, p.Advance()
}

// ExpectInt consumes a required integer literal.
func (p *Parser) ExpectInt() (int64, error) {
	if p.tok.Kind != Int {
		return 0, p.Lex.Errf(p.tok, "expected integer, found %s", p.tok)
	}
	v := p.tok.Val
	return v, p.Advance()
}

// Pos returns the current token's position as (file, line, col), for
// parsers recording declaration sites.
func (p *Parser) Pos() (file string, line, col int) {
	return p.Lex.File(), p.tok.Line, p.tok.Col
}

// Errf builds a positioned error at the current token.
func (p *Parser) Errf(format string, args ...any) error {
	return p.Lex.Errf(p.tok, format, args...)
}

// Unexpected builds a generic error for the current token.
func (p *Parser) Unexpected(ctx string) error {
	return p.Lex.Errf(p.tok, "unexpected %s in %s", p.tok, ctx)
}
