// Package idllex is the shared lexical analyzer for Flick's C-family IDL
// front ends (CORBA IDL and the ONC RPC language). It is the front-end
// analogue of Flick's shared front-end base library: each front end
// supplies only its keyword set and grammar.
package idllex

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Kind classifies tokens.
type Kind int

const (
	EOF Kind = iota
	Ident
	Int
	Str
	CharLit
	Punct
)

func (k Kind) String() string {
	switch k {
	case EOF:
		return "end of file"
	case Ident:
		return "identifier"
	case Int:
		return "integer"
	case Str:
		return "string"
	case CharLit:
		return "character"
	case Punct:
		return "punctuation"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Token is one lexical token.
type Token struct {
	Kind Kind
	// Text is the token spelling; for Punct the operator itself, for Str
	// the decoded string value.
	Text string
	// Val is the numeric value of Int and CharLit tokens.
	Val int64
	// Line and Col locate the token (1-based).
	Line, Col int
}

func (t Token) String() string {
	switch t.Kind {
	case EOF:
		return "end of file"
	case Str:
		return fmt.Sprintf("string %q", t.Text)
	default:
		return fmt.Sprintf("%q", t.Text)
	}
}

// Error is a positioned lexical or syntax error.
type Error struct {
	File string
	Line int
	Col  int
	Msg  string
}

func (e *Error) Error() string {
	return fmt.Sprintf("%s:%d:%d: %s", e.File, e.Line, e.Col, e.Msg)
}

// Lexer tokenizes IDL source.
type Lexer struct {
	file string
	src  string
	pos  int
	line int
	col  int
	// puncts lists multi-character punctuation, longest first.
	puncts []string
	// pragmas collects //flick: annotation comments in source order as
	// they are skipped (see Pragmas and ApplyFlickPragmas).
	pragmas []Pragma
}

// New returns a Lexer over src. extraPuncts lists language-specific
// multi-character operators (e.g. "::", "<<"); single characters are
// always accepted.
func New(file, src string, extraPuncts ...string) *Lexer {
	l := &Lexer{file: file, src: src, line: 1, col: 1}
	l.puncts = append(l.puncts, extraPuncts...)
	// Longest-match-first.
	for i := 0; i < len(l.puncts); i++ {
		for j := i + 1; j < len(l.puncts); j++ {
			if len(l.puncts[j]) > len(l.puncts[i]) {
				l.puncts[i], l.puncts[j] = l.puncts[j], l.puncts[i]
			}
		}
	}
	return l
}

// File returns the source file name the lexer was created with (used by
// parsers to build positioned declarations).
func (l *Lexer) File() string { return l.file }

func (l *Lexer) errf(format string, args ...any) *Error {
	return &Error{File: l.file, Line: l.line, Col: l.col, Msg: fmt.Sprintf(format, args...)}
}

// Errf builds a positioned error at the given token, for parsers.
func (l *Lexer) Errf(tok Token, format string, args ...any) *Error {
	return &Error{File: l.file, Line: tok.Line, Col: tok.Col, Msg: fmt.Sprintf(format, args...)}
}

func (l *Lexer) peekByte() (byte, bool) {
	if l.pos >= len(l.src) {
		return 0, false
	}
	return l.src[l.pos], true
}

func (l *Lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) skipSpaceAndComments() error {
	for {
		c, ok := l.peekByte()
		if !ok {
			return nil
		}
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			startLine, startCol := l.line, l.col
			start := l.pos
			for {
				c, ok := l.peekByte()
				if !ok || c == '\n' {
					break
				}
				l.advance()
			}
			// Line comments are skipped, except //flick: annotations,
			// which are recorded with their position so the front end
			// can attach them to the adjacent declaration (and reject
			// dangling or misspelled ones).
			if text, ok := strings.CutPrefix(l.src[start:l.pos], "//flick:"); ok {
				l.pragmas = append(l.pragmas, Pragma{
					Line: startLine, Col: startCol,
					Text: strings.TrimSpace(text),
				})
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			startLine, startCol := l.line, l.col
			l.advance()
			l.advance()
			closed := false
			for l.pos < len(l.src) {
				if l.src[l.pos] == '*' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return &Error{File: l.file, Line: startLine, Col: startCol, Msg: "unterminated comment"}
			}
		case c == '#':
			// Preprocessor-style lines (#include, #define, %#...) are
			// skipped; Flick's front ends run after cpp. We tolerate
			// them for self-contained test inputs.
			for {
				c, ok := l.peekByte()
				if !ok || c == '\n' {
					break
				}
				l.advance()
			}
		case c == '%':
			// rpcgen pass-through lines.
			for {
				c, ok := l.peekByte()
				if !ok || c == '\n' {
					break
				}
				l.advance()
			}
		default:
			return nil
		}
	}
}

// Next returns the next token.
func (l *Lexer) Next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	tok := Token{Line: l.line, Col: l.col}
	c, ok := l.peekByte()
	if !ok {
		tok.Kind = EOF
		return tok, nil
	}
	switch {
	case isIdentStart(c):
		start := l.pos
		for {
			c, ok := l.peekByte()
			if !ok || !isIdentPart(c) {
				break
			}
			l.advance()
		}
		tok.Kind = Ident
		tok.Text = l.src[start:l.pos]
		return tok, nil
	case c >= '0' && c <= '9':
		return l.number(tok)
	case c == '"':
		return l.stringLit(tok)
	case c == '\'':
		return l.charLit(tok)
	default:
		for _, p := range l.puncts {
			if strings.HasPrefix(l.src[l.pos:], p) {
				for range p {
					l.advance()
				}
				tok.Kind = Punct
				tok.Text = p
				return tok, nil
			}
		}
		if strings.ContainsRune("{}[]()<>;:,=*+-/%|&^~!.?", rune(c)) {
			l.advance()
			tok.Kind = Punct
			tok.Text = string(c)
			return tok, nil
		}
		return Token{}, l.errf("unexpected character %q", string(c))
	}
}

func (l *Lexer) number(tok Token) (Token, error) {
	start := l.pos
	base := 10
	if l.src[l.pos] == '0' && l.pos+1 < len(l.src) && (l.src[l.pos+1] == 'x' || l.src[l.pos+1] == 'X') {
		base = 16
		l.advance()
		l.advance()
	} else if l.src[l.pos] == '0' {
		base = 8
	}
	for {
		c, ok := l.peekByte()
		if !ok {
			break
		}
		if isDigitIn(c, base) || (base == 8 && c >= '0' && c <= '9') {
			// Accept 8/9 in the scan so "08" reports a clean error below.
			l.advance()
			continue
		}
		break
	}
	text := l.src[start:l.pos]
	parseText := text
	if base == 16 {
		parseText = text[2:]
	} else if base == 8 && len(text) > 1 {
		parseText = text[1:]
	}
	if parseText == "" {
		return Token{}, l.errf("malformed number %q", text)
	}
	v, err := strconv.ParseInt(parseText, base, 64)
	if err != nil {
		// Retry as unsigned for full-range u64 literals.
		u, uerr := strconv.ParseUint(parseText, base, 64)
		if uerr != nil {
			return Token{}, &Error{File: l.file, Line: tok.Line, Col: tok.Col,
				Msg: fmt.Sprintf("malformed number %q", text)}
		}
		v = int64(u)
	}
	tok.Kind = Int
	tok.Text = text
	tok.Val = v
	return tok, nil
}

func (l *Lexer) stringLit(tok Token) (Token, error) {
	l.advance() // opening quote
	var b strings.Builder
	for {
		c, ok := l.peekByte()
		if !ok || c == '\n' {
			return Token{}, &Error{File: l.file, Line: tok.Line, Col: tok.Col, Msg: "unterminated string"}
		}
		l.advance()
		if c == '"' {
			break
		}
		if c == '\\' {
			e, err := l.escape(tok)
			if err != nil {
				return Token{}, err
			}
			b.WriteByte(e)
			continue
		}
		b.WriteByte(c)
	}
	tok.Kind = Str
	tok.Text = b.String()
	return tok, nil
}

func (l *Lexer) charLit(tok Token) (Token, error) {
	l.advance() // opening quote
	c, ok := l.peekByte()
	if !ok {
		return Token{}, &Error{File: l.file, Line: tok.Line, Col: tok.Col, Msg: "unterminated character literal"}
	}
	l.advance()
	var v byte
	if c == '\\' {
		e, err := l.escape(tok)
		if err != nil {
			return Token{}, err
		}
		v = e
	} else {
		v = c
	}
	c2, ok := l.peekByte()
	if !ok || c2 != '\'' {
		return Token{}, &Error{File: l.file, Line: tok.Line, Col: tok.Col, Msg: "unterminated character literal"}
	}
	l.advance()
	tok.Kind = CharLit
	tok.Val = int64(v)
	tok.Text = string(rune(v))
	return tok, nil
}

func (l *Lexer) escape(tok Token) (byte, error) {
	c, ok := l.peekByte()
	if !ok {
		return 0, &Error{File: l.file, Line: tok.Line, Col: tok.Col, Msg: "unterminated escape"}
	}
	l.advance()
	switch c {
	case 'n':
		return '\n', nil
	case 't':
		return '\t', nil
	case 'r':
		return '\r', nil
	case '0':
		return 0, nil
	case '\\', '\'', '"':
		return c, nil
	}
	return 0, &Error{File: l.file, Line: tok.Line, Col: tok.Col, Msg: fmt.Sprintf("unknown escape \\%c", c)}
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || (c >= '0' && c <= '9')
}

func isDigitIn(c byte, base int) bool {
	switch base {
	case 8:
		return c >= '0' && c <= '7'
	case 10:
		return c >= '0' && c <= '9'
	case 16:
		return c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
	}
	return false
}
