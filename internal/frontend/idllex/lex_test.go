package idllex

import (
	"strings"
	"testing"
)

func lexAll(t *testing.T, src string, puncts ...string) []Token {
	t.Helper()
	l := New("t", src, puncts...)
	var out []Token
	for {
		tok, err := l.Next()
		if err != nil {
			t.Fatalf("lex %q: %v", src, err)
		}
		if tok.Kind == EOF {
			return out
		}
		out = append(out, tok)
	}
}

func TestTokens(t *testing.T) {
	toks := lexAll(t, `interface Mail { void send(in string msg); };`, "::")
	var texts []string
	for _, tok := range toks {
		texts = append(texts, tok.Text)
	}
	want := "interface Mail { void send ( in string msg ) ; } ;"
	if got := strings.Join(texts, " "); got != want {
		t.Errorf("tokens = %q", got)
	}
}

func TestNumbers(t *testing.T) {
	tests := []struct {
		src  string
		want int64
	}{
		{"42", 42},
		{"0", 0},
		{"0x20000001", 0x20000001},
		{"0XFF", 255},
		{"017", 15},
		{"0xFFFFFFFFFFFFFFFF", -1}, // full-range u64 wraps through int64
	}
	for _, tt := range tests {
		toks := lexAll(t, tt.src)
		if len(toks) != 1 || toks[0].Kind != Int || toks[0].Val != tt.want {
			t.Errorf("lex(%q) = %+v, want %d", tt.src, toks, tt.want)
		}
	}
}

func TestStringsAndChars(t *testing.T) {
	toks := lexAll(t, `"hello\nworld" 'a' '\\' '\0'`)
	if toks[0].Kind != Str || toks[0].Text != "hello\nworld" {
		t.Errorf("string = %+v", toks[0])
	}
	if toks[1].Kind != CharLit || toks[1].Val != 'a' {
		t.Errorf("char = %+v", toks[1])
	}
	if toks[2].Val != '\\' || toks[3].Val != 0 {
		t.Errorf("escapes = %+v %+v", toks[2], toks[3])
	}
}

func TestComments(t *testing.T) {
	toks := lexAll(t, `
		// line comment
		a /* block
		comment */ b
		#pragma ignored
		%passthrough ignored
		c
	`)
	if len(toks) != 3 || toks[0].Text != "a" || toks[1].Text != "b" || toks[2].Text != "c" {
		t.Errorf("tokens = %+v", toks)
	}
}

func TestMultiCharPunct(t *testing.T) {
	toks := lexAll(t, "a::b << c", "::", "<<")
	if toks[1].Text != "::" || toks[3].Text != "<<" {
		t.Errorf("puncts = %+v", toks)
	}
	// Without the extra puncts, "::" splits.
	toks = lexAll(t, "a::b")
	if toks[1].Text != ":" || toks[2].Text != ":" {
		t.Errorf("split punct = %+v", toks)
	}
}

func TestPositions(t *testing.T) {
	toks := lexAll(t, "a\n  b")
	if toks[0].Line != 1 || toks[0].Col != 1 {
		t.Errorf("a at %d:%d", toks[0].Line, toks[0].Col)
	}
	if toks[1].Line != 2 || toks[1].Col != 3 {
		t.Errorf("b at %d:%d", toks[1].Line, toks[1].Col)
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"\"open", "'x", "/* open", "$", `"\q"`} {
		l := New("e", src)
		var err error
		for err == nil {
			var tok Token
			tok, err = l.Next()
			if err == nil && tok.Kind == EOF {
				t.Errorf("lex(%q) reached EOF without error", src)
				break
			}
		}
	}
}

func TestParserHelpers(t *testing.T) {
	l := New("p", "foo 42 ;")
	p, err := NewParser(l)
	if err != nil {
		t.Fatal(err)
	}
	name, err := p.ExpectIdent()
	if err != nil || name != "foo" {
		t.Fatalf("ExpectIdent = %q, %v", name, err)
	}
	v, err := p.ExpectInt()
	if err != nil || v != 42 {
		t.Fatalf("ExpectInt = %d, %v", v, err)
	}
	if err := p.Expect(";"); err != nil {
		t.Fatal(err)
	}
	if !p.AtEOF() {
		t.Error("not at EOF")
	}
	// Expectation failures carry positions.
	l2 := New("p2", "xyz")
	p2, _ := NewParser(l2)
	if err := p2.Expect("{"); err == nil || !strings.Contains(err.Error(), "p2:1:1") {
		t.Errorf("error = %v", err)
	}
}
