package idllex

import (
	"fmt"

	"flick/internal/aoi"
)

// Pragma is one //flick: annotation comment captured during lexing.
// Annotations ride in comments so every front-end grammar (CORBA IDL,
// ONC RPC, MIG) gains them without a syntax change, mirroring how
// rpcgen and MIG extensions traditionally travel in comments.
type Pragma struct {
	// Line and Col locate the comment (1-based).
	Line, Col int
	// Text is the directive with the //flick: prefix stripped and
	// whitespace trimmed, e.g. "idempotent".
	Text string
}

// Pragmas returns the //flick: annotations seen so far, in source
// order. Complete only after the parser has consumed every token.
func (l *Lexer) Pragmas() []Pragma { return l.pragmas }

// ApplyFlickPragmas attaches the lexer's captured //flick: annotations
// to the operations of a parsed AOI file. An annotation binds to the
// operation declared on the same line (trailing comment) or on the
// line immediately below (preceding comment):
//
//	//flick:idempotent
//	long lookup(in key k, out entry e);     // preceding form
//	long fetch(in key k);  //flick:idempotent  (trailing form)
//
// Unknown directives and annotations that bind to no operation are
// positioned errors, not silent no-ops: a misspelled or misplaced
// robustness annotation must fail the build, never quietly weaken the
// retry policy.
func ApplyFlickPragmas(l *Lexer, f *aoi.File) error {
	for _, pg := range l.pragmas {
		if pg.Text != "idempotent" && pg.Text != "stream" {
			return &Error{File: l.file, Line: pg.Line, Col: pg.Col,
				Msg: fmt.Sprintf("unknown //flick: directive %q (supported: idempotent, stream)", pg.Text)}
		}
		op := opAtLine(f, pg.Line)
		if op == nil {
			return &Error{File: l.file, Line: pg.Line, Col: pg.Col,
				Msg: fmt.Sprintf("//flick:%s does not precede or trail an operation declaration", pg.Text)}
		}
		switch pg.Text {
		case "idempotent":
			op.Idempotent = true
		case "stream":
			op.Stream = true
		}
	}
	return nil
}

// opAtLine finds the operation a pragma on the given line annotates:
// one declared on the same line, or the first one declared on the next
// line.
func opAtLine(f *aoi.File, line int) *aoi.Operation {
	for _, it := range f.Interfaces {
		for _, op := range it.Ops {
			if op.Pos.Line == line || op.Pos.Line == line+1 {
				return op
			}
		}
	}
	return nil
}
