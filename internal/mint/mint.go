// Package mint defines Flick's Message INterface Types: abstract
// descriptions of the messages (requests and replies) exchanged between
// client and server. A MINT type is a directed graph — potentially cyclic
// — whose nodes are atomic types, aggregates, or typed literal constants.
//
// MINT types do not represent target-language types, nor on-the-wire
// encodings. They represent high-level message formats: the "glue" layer
// between transport encoding types (chosen by a back end) and target
// language types (chosen by a presentation generator).
package mint

import (
	"fmt"
	"strings"
)

// Type is the interface satisfied by every MINT node.
type Type interface {
	mintType()
	String() string
}

// Integer represents integral values in the inclusive range
// [Min, Min+Range]. The classic MINT examples:
//
//	signed 32-bit:   Min = -1<<31, Range = 1<<32 - 1
//	unsigned 32-bit: Min = 0,      Range = 1<<32 - 1
//	array length:    Min = 0,      Range = bound
type Integer struct {
	Min   int64
	Range uint64
}

// Signed32, Unsigned32, and friends build the common integer shapes.
func Signed(bits uint) *Integer {
	return &Integer{Min: -1 << (bits - 1), Range: 1<<bits - 1}
}

// Unsigned returns the unsigned integer type of the given bit width.
func Unsigned(bits uint) *Integer {
	if bits >= 64 {
		return &Integer{Min: 0, Range: ^uint64(0)}
	}
	return &Integer{Min: 0, Range: 1<<bits - 1}
}

// Bounded returns the integer type holding [0, bound].
func Bounded(bound uint64) *Integer { return &Integer{Min: 0, Range: bound} }

// Contains reports whether v lies within the integer's range.
func (t *Integer) Contains(v int64) bool {
	if v < t.Min {
		return false
	}
	return uint64(v-t.Min) <= t.Range
}

// Bits returns the minimum power-of-two bit width (8, 16, 32, or 64) that
// can represent every value of the type, and whether that representation
// must be signed.
func (t *Integer) Bits() (bits uint, signed bool) {
	if t.Min >= 0 {
		max := uint64(t.Min) + t.Range
		if max < t.Range { // overflow: top of range exceeds u64
			return 64, false
		}
		switch {
		case max <= 0xFF:
			return 8, false
		case max <= 0xFFFF:
			return 16, false
		case max <= 0xFFFFFFFF:
			return 32, false
		default:
			return 64, false
		}
	}
	// Signed: find the smallest width whose [-2^(w-1), 2^(w-1)-1]
	// contains [Min, Min+Range].
	neg := -uint64(t.Min) // magnitude of Min, correct even for MinInt64
	for _, w := range []uint{8, 16, 32, 64} {
		lo := uint64(1) << (w - 1) // magnitude of the most negative value
		hi := uint64(1)<<(w-1) - 1 // the most positive value
		if neg <= lo && t.Range <= hi+neg {
			return w, true
		}
	}
	return 64, true
}

// ScalarKind enumerates the non-integer atomic MINT types.
type ScalarKind int

const (
	Void ScalarKind = iota
	Boolean
	Char8
	Float32
	Float64
)

func (k ScalarKind) String() string {
	switch k {
	case Void:
		return "void"
	case Boolean:
		return "boolean"
	case Char8:
		return "char8"
	case Float32:
		return "float32"
	case Float64:
		return "float64"
	}
	return fmt.Sprintf("ScalarKind(%d)", int(k))
}

// Scalar is a non-integer atomic type.
type Scalar struct{ Kind ScalarKind }

// Array is a counted array: a length drawn from Length's range followed by
// that many elements. A fixed-length array has Length.Range == 0; a
// bounded array has a finite positive Range; an unbounded array uses
// the full u32 range. Strings are arrays of Char8.
type Array struct {
	Elem   Type
	Length *Integer
}

// Fixed reports whether the array length is a single value.
func (t *Array) Fixed() bool { return t.Length.Range == 0 }

// FixedLen returns the length of a fixed array.
func (t *Array) FixedLen() uint64 {
	if !t.Fixed() {
		panic("mint: FixedLen of non-fixed array")
	}
	return uint64(t.Length.Min)
}

// Slot is one member of a Struct.
type Slot struct {
	Name string
	Type Type
}

// Struct is an ordered aggregate of slots.
type Struct struct {
	Name  string
	Slots []Slot
}

// UnionCase is one arm of a discriminated union: when the discriminator
// equals Value, the body has type Type.
type UnionCase struct {
	Value int64
	Type  Type
}

// Union is a discriminated union: a discriminator followed by the body
// selected by its value. Default may be nil (no default arm; other
// discriminator values are a protocol error) or a Type (possibly Void).
type Union struct {
	Name    string
	Discrim Type
	Cases   []UnionCase
	Default Type
}

// CaseFor returns the body type selected by discriminator value v, or
// (Default, false) when no explicit case matches.
func (t *Union) CaseFor(v int64) (Type, bool) {
	for _, c := range t.Cases {
		if c.Value == v {
			return c.Type, true
		}
	}
	return t.Default, false
}

// Const is a typed literal constant: a value that must appear in the
// message at this position (e.g. a protocol magic number or an operation
// discriminator in a request). Of is the underlying type; Value its
// required value.
type Const struct {
	Of    Type
	Value int64
}

// TypeRef is an indirection enabling recursive message types (linked
// lists and trees marshaled through XDR optional data). Target is set
// after construction.
type TypeRef struct {
	Name   string
	Target Type
}

// Deref follows TypeRef chains.
func Deref(t Type) Type {
	for {
		r, ok := t.(*TypeRef)
		if !ok {
			return t
		}
		if r.Target == nil {
			panic(fmt.Sprintf("mint: unresolved TypeRef %q", r.Name))
		}
		t = r.Target
	}
}

func (*Integer) mintType() {}
func (*Scalar) mintType()  {}
func (*Array) mintType()   {}
func (*Struct) mintType()  {}
func (*Union) mintType()   {}
func (*Const) mintType()   {}
func (*TypeRef) mintType() {}

func (t *Integer) String() string {
	bits, signed := t.Bits()
	prefix := "u"
	if signed {
		prefix = "i"
	}
	if t.Range == 0 {
		return fmt.Sprintf("const[%d]", t.Min)
	}
	if t.Min == 0 && t.Range != 1<<bits-1 && t.Range != ^uint64(0) {
		return fmt.Sprintf("int[0..%d]", t.Range)
	}
	return fmt.Sprintf("%s%d", prefix, bits)
}

func (t *Scalar) String() string { return t.Kind.String() }

func (t *Array) String() string {
	switch {
	case t.Fixed():
		return fmt.Sprintf("%s[%d]", t.Elem, t.FixedLen())
	case t.Length.Range == uint64(0xFFFFFFFF):
		return fmt.Sprintf("%s[*]", t.Elem)
	default:
		return fmt.Sprintf("%s[..%d]", t.Elem, t.Length.Range)
	}
}

func (t *Struct) String() string {
	if t.Name != "" {
		return "struct " + t.Name
	}
	parts := make([]string, len(t.Slots))
	for i, s := range t.Slots {
		parts[i] = s.Type.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

func (t *Union) String() string {
	if t.Name != "" {
		return "union " + t.Name
	}
	return fmt.Sprintf("union(%d cases)", len(t.Cases))
}

func (t *Const) String() string   { return fmt.Sprintf("const %s = %d", t.Of, t.Value) }
func (t *TypeRef) String() string { return "ref " + t.Name }

// Equal reports structural equality of two MINT graphs. Recursive graphs
// are compared up to bisimulation over TypeRef pairs.
func Equal(a, b Type) bool {
	return equal(a, b, map[[2]*TypeRef]bool{})
}

func equal(a, b Type, assumed map[[2]*TypeRef]bool) bool {
	ra, aIsRef := a.(*TypeRef)
	rb, bIsRef := b.(*TypeRef)
	if aIsRef && bIsRef {
		key := [2]*TypeRef{ra, rb}
		if assumed[key] {
			return true
		}
		assumed[key] = true
		return equal(ra.Target, rb.Target, assumed)
	}
	if aIsRef {
		return equal(ra.Target, b, assumed)
	}
	if bIsRef {
		return equal(a, rb.Target, assumed)
	}
	switch a := a.(type) {
	case *Integer:
		b, ok := b.(*Integer)
		return ok && a.Min == b.Min && a.Range == b.Range
	case *Scalar:
		b, ok := b.(*Scalar)
		return ok && a.Kind == b.Kind
	case *Array:
		b, ok := b.(*Array)
		return ok && equal(a.Length, b.Length, assumed) && equal(a.Elem, b.Elem, assumed)
	case *Struct:
		b, ok := b.(*Struct)
		if !ok || len(a.Slots) != len(b.Slots) {
			return false
		}
		for i := range a.Slots {
			if !equal(a.Slots[i].Type, b.Slots[i].Type, assumed) {
				return false
			}
		}
		return true
	case *Union:
		b, ok := b.(*Union)
		if !ok || len(a.Cases) != len(b.Cases) {
			return false
		}
		if !equal(a.Discrim, b.Discrim, assumed) {
			return false
		}
		for i := range a.Cases {
			if a.Cases[i].Value != b.Cases[i].Value ||
				!equal(a.Cases[i].Type, b.Cases[i].Type, assumed) {
				return false
			}
		}
		if (a.Default == nil) != (b.Default == nil) {
			return false
		}
		if a.Default != nil && !equal(a.Default, b.Default, assumed) {
			return false
		}
		return true
	case *Const:
		b, ok := b.(*Const)
		return ok && a.Value == b.Value && equal(a.Of, b.Of, assumed)
	}
	return false
}
