package mint

// Convenience constructors for the integer and array shapes that appear
// throughout presentation generation.

// I8..U64 build the standard two's-complement integer types.
func I8() *Integer  { return Signed(8) }
func I16() *Integer { return Signed(16) }
func I32() *Integer { return Signed(32) }
func I64() *Integer { return Signed(64) }
func U8() *Integer  { return Unsigned(8) }
func U16() *Integer { return Unsigned(16) }
func U32() *Integer { return Unsigned(32) }
func U64() *Integer { return Unsigned(64) }

// VoidT, Bool, Char, F32, F64 build the scalar types.
func VoidT() *Scalar { return &Scalar{Kind: Void} }
func Bool() *Scalar  { return &Scalar{Kind: Boolean} }
func Char() *Scalar  { return &Scalar{Kind: Char8} }
func F32() *Scalar   { return &Scalar{Kind: Float32} }
func F64() *Scalar   { return &Scalar{Kind: Float64} }

// NewString builds the MINT shape of a string: a counted array of 8-bit
// characters. bound==0 means unbounded (full u32 length range).
func NewString(bound uint32) *Array {
	return &Array{Elem: Char(), Length: lengthType(bound)}
}

// NewOpaque builds a counted array of octets.
func NewOpaque(bound uint32) *Array {
	return &Array{Elem: U8(), Length: lengthType(bound)}
}

// NewSeq builds a counted array of elem.
func NewSeq(elem Type, bound uint32) *Array {
	return &Array{Elem: elem, Length: lengthType(bound)}
}

// NewFixed builds a fixed-length array of elem.
func NewFixed(elem Type, n uint32) *Array {
	return &Array{Elem: elem, Length: &Integer{Min: int64(n), Range: 0}}
}

func lengthType(bound uint32) *Integer {
	if bound == 0 {
		return Bounded(0xFFFFFFFF)
	}
	return Bounded(uint64(bound))
}
