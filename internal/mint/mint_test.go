package mint

import (
	"testing"
	"testing/quick"
)

func TestIntegerBits(t *testing.T) {
	tests := []struct {
		in     *Integer
		bits   uint
		signed bool
	}{
		{Signed(8), 8, true},
		{Signed(16), 16, true},
		{Signed(32), 32, true},
		{Signed(64), 64, true},
		{Unsigned(8), 8, false},
		{Unsigned(16), 16, false},
		{Unsigned(32), 32, false},
		{Unsigned(64), 64, false},
		{Bounded(0), 8, false},
		{Bounded(255), 8, false},
		{Bounded(256), 16, false},
		{Bounded(65535), 16, false},
		{Bounded(65536), 32, false},
		{Bounded(1 << 32), 64, false},
		{&Integer{Min: -1, Range: 2}, 8, true}, // [-1,1]
		{&Integer{Min: -200, Range: 400}, 16, true},
		{&Integer{Min: 5, Range: 10}, 8, false}, // [5,15]
	}
	for _, tt := range tests {
		bits, signed := tt.in.Bits()
		if bits != tt.bits || signed != tt.signed {
			t.Errorf("%+v.Bits() = (%d,%v), want (%d,%v)", tt.in, bits, signed, tt.bits, tt.signed)
		}
	}
}

func TestIntegerContains(t *testing.T) {
	i := Signed(32)
	for _, v := range []int64{0, -1 << 31, 1<<31 - 1, 42} {
		if !i.Contains(v) {
			t.Errorf("i32.Contains(%d) = false", v)
		}
	}
	for _, v := range []int64{1 << 31, -1<<31 - 1} {
		if i.Contains(v) {
			t.Errorf("i32.Contains(%d) = true", v)
		}
	}
	b := Bounded(10)
	if b.Contains(-1) || b.Contains(11) || !b.Contains(10) || !b.Contains(0) {
		t.Error("Bounded(10) range check wrong")
	}
}

func TestContainsQuick(t *testing.T) {
	// Property: v in [Min, Min+Range] iff Contains(v), for moderate ranges.
	f := func(min int32, rng uint16, v int32) bool {
		i := &Integer{Min: int64(min), Range: uint64(rng)}
		want := int64(v) >= int64(min) && int64(v) <= int64(min)+int64(rng)
		return i.Contains(int64(v)) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestArrayShapes(t *testing.T) {
	fixed := NewFixed(U8(), 16)
	if !fixed.Fixed() || fixed.FixedLen() != 16 {
		t.Errorf("NewFixed: Fixed=%v len=%d", fixed.Fixed(), fixed.FixedLen())
	}
	varr := NewSeq(I32(), 100)
	if varr.Fixed() {
		t.Error("bounded sequence reported fixed")
	}
	if varr.Length.Range != 100 {
		t.Errorf("bound = %d, want 100", varr.Length.Range)
	}
	unb := NewString(0)
	if unb.Length.Range != 0xFFFFFFFF {
		t.Errorf("unbounded string range = %d", unb.Length.Range)
	}
	defer func() {
		if recover() == nil {
			t.Error("FixedLen on variable array should panic")
		}
	}()
	varr.FixedLen()
}

func TestUnionCaseFor(t *testing.T) {
	u := &Union{
		Discrim: U32(),
		Cases: []UnionCase{
			{Value: 0, Type: VoidT()},
			{Value: 1, Type: I32()},
		},
		Default: NewString(0),
	}
	if got, ok := u.CaseFor(1); !ok || !Equal(got, I32()) {
		t.Errorf("CaseFor(1) = %v,%v", got, ok)
	}
	if got, ok := u.CaseFor(7); ok || got != u.Default {
		t.Errorf("CaseFor(7) = %v,%v, want default", got, ok)
	}
}

func TestEqual(t *testing.T) {
	mkDir := func() Type {
		return &Struct{Slots: []Slot{
			{Name: "name", Type: NewString(255)},
			{Name: "info", Type: NewFixed(I32(), 30)},
		}}
	}
	if !Equal(mkDir(), mkDir()) {
		t.Error("identical structs not Equal")
	}
	if Equal(mkDir(), I32()) {
		t.Error("struct Equal to int")
	}
	if Equal(I32(), U32()) {
		t.Error("i32 Equal to u32")
	}
	if Equal(NewString(10), NewString(11)) {
		t.Error("different bounds Equal")
	}
	a := &Const{Of: U32(), Value: 5}
	b := &Const{Of: U32(), Value: 5}
	if !Equal(a, b) {
		t.Error("equal consts not Equal")
	}
	b.Value = 6
	if Equal(a, b) {
		t.Error("different consts Equal")
	}
}

func TestEqualRecursive(t *testing.T) {
	mkList := func() Type {
		ref := &TypeRef{Name: "node"}
		node := &Struct{Name: "node", Slots: []Slot{
			{Name: "v", Type: I32()},
			{Name: "next", Type: &Union{ // optional encoding: bool then maybe node
				Discrim: Bool(),
				Cases:   []UnionCase{{Value: 0, Type: VoidT()}, {Value: 1, Type: ref}},
			}},
		}}
		ref.Target = node
		return node
	}
	if !Equal(mkList(), mkList()) {
		t.Error("isomorphic recursive graphs not Equal")
	}
	// Different payload type deep in the cycle.
	other := mkList().(*Struct)
	other.Slots[0].Type = I64()
	if Equal(mkList(), other) {
		t.Error("different recursive graphs Equal")
	}
}

func TestDeref(t *testing.T) {
	base := I32()
	r1 := &TypeRef{Name: "a", Target: base}
	r2 := &TypeRef{Name: "b", Target: r1}
	if Deref(r2) != base {
		t.Error("Deref chain failed")
	}
	if Deref(base) != base {
		t.Error("Deref non-ref failed")
	}
	defer func() {
		if recover() == nil {
			t.Error("Deref of unresolved ref should panic")
		}
	}()
	Deref(&TypeRef{Name: "dangling"})
}

func TestStrings(t *testing.T) {
	tests := []struct {
		t    Type
		want string
	}{
		{I32(), "i32"},
		{U16(), "u16"},
		{U64(), "u64"},
		{Bounded(100), "int[0..100]"},
		{&Integer{Min: 7, Range: 0}, "const[7]"},
		{VoidT(), "void"},
		{Bool(), "boolean"},
		{Char(), "char8"},
		{F32(), "float32"},
		{F64(), "float64"},
		{NewFixed(I32(), 4), "i32[4]"},
		{NewSeq(I32(), 0), "i32[*]"},
		{NewSeq(I32(), 9), "i32[..9]"},
		{&Struct{Name: "rect"}, "struct rect"},
		{&Struct{Slots: []Slot{{Type: I32()}, {Type: F64()}}}, "{i32, float64}"},
		{&Union{Name: "u"}, "union u"},
		{&Union{Cases: make([]UnionCase, 3)}, "union(3 cases)"},
		{&Const{Of: U32(), Value: 2}, "const u32 = 2"},
		{&TypeRef{Name: "n"}, "ref n"},
	}
	for _, tt := range tests {
		if got := tt.t.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}
