package typestubs

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"flick/internal/frontend/oncrpc"
	"flick/internal/interp"
	"flick/internal/pgen"
	"flick/internal/pres"
	"flick/internal/presc"
	"flick/internal/wire"
	"flick/rt"
)

func randShape(r *rand.Rand) Shape {
	switch r.Intn(4) {
	case 0:
		return Shape{D: 1, L: Leaf{
			F: float32(r.NormFloat64()), D: r.NormFloat64(),
			Flag: r.Intn(2) == 0, C: Color(1 << r.Intn(3)),
			S: int16(r.Int31()), Us: uint16(r.Uint32()),
			H: r.Int63() - 1<<62, Uh: r.Uint64(),
		}}
	case 1:
		n := r.Intn(32)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte('A' + r.Intn(26))
		}
		return Shape{D: 2, Label: string(b)}
	case 2:
		return Shape{D: 3}
	default:
		return Shape{D: 7 + int32(r.Intn(100)), Other: r.Int31()}
	}
}

func randShapes(r *rand.Rand, n int) []Shape {
	v := make([]Shape, n)
	for i := range v {
		v[i] = randShape(r)
	}
	return v
}

func randList(r *rand.Rand, n int) *Node {
	var head *Node
	for i := 0; i < n; i++ {
		head = &Node{S: randShape(r), Next: head}
	}
	return head
}

func TestShapesRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		in := randShapes(r, r.Intn(9))
		var e rt.Encoder
		MarshalZOOReorderXDRRequest(&e, in)
		out, err := UnmarshalZOOReorderXDRRequest(rt.NewDecoder(e.Bytes()))
		if err != nil {
			t.Fatalf("iter %d: %v", i, err)
		}
		if len(in) == 0 && len(out) == 0 {
			continue
		}
		if !reflect.DeepEqual(in, out) {
			t.Fatalf("iter %d mismatch:\nin  %+v\nout %+v", i, in, out)
		}
	}
}

func TestRecursiveListRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for _, n := range []int{0, 1, 2, 17, 200} {
		in := randList(r, n)
		var e rt.Encoder
		MarshalZOOReverseXDRRequest(&e, in)
		out, err := UnmarshalZOOReverseXDRRequest(rt.NewDecoder(e.Bytes()))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !reflect.DeepEqual(in, out) {
			t.Fatalf("n=%d: list mismatch", n)
		}
	}
}

func TestNaiveAndOptimizedShareTheWire(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	in := randList(r, 12)
	var a, b rt.Encoder
	MarshalZOOReverseXDRRequest(&a, in)
	MarshalZOOReverseXDRNaiveRequest(&b, in)
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("optimized and naive recursive encodings differ")
	}
	out, err := UnmarshalZOOReverseXDRNaiveRequest(rt.NewDecoder(a.Bytes()))
	if err != nil || !reflect.DeepEqual(in, out) {
		t.Errorf("naive decode of optimized bytes: %v", err)
	}

	shapes := randShapes(r, 8)
	a.Reset()
	b.Reset()
	MarshalZOOReorderXDRRequest(&a, shapes)
	MarshalZOOReorderXDRNaiveRequest(&b, shapes)
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("optimized and naive union encodings differ")
	}
}

func TestUnionWireFormatXDR(t *testing.T) {
	// A void arm carries only its discriminator.
	var e rt.Encoder
	MarshalZOOReorderXDRRequest(&e, []Shape{{D: 3}})
	want := []byte{0, 0, 0, 1, 0, 0, 0, 3}
	if !bytes.Equal(e.Bytes(), want) {
		t.Errorf("void arm = %x, want %x", e.Bytes(), want)
	}
	// The default arm carries its field.
	e.Reset()
	MarshalZOOReorderXDRRequest(&e, []Shape{{D: 9, Other: -1}})
	want = []byte{0, 0, 0, 1, 0, 0, 0, 9, 0xFF, 0xFF, 0xFF, 0xFF}
	if !bytes.Equal(e.Bytes(), want) {
		t.Errorf("default arm = %x, want %x", e.Bytes(), want)
	}
}

func TestEnumRoundTrip(t *testing.T) {
	var e rt.Encoder
	MarshalZOOMixXDRRequest(&e, ColorRED, ColorBLUE)
	a, b, err := UnmarshalZOOMixXDRRequest(rt.NewDecoder(e.Bytes()))
	if err != nil || a != ColorRED || b != ColorBLUE {
		t.Errorf("mix = %v,%v,%v", a, b, err)
	}
	if ColorRED != 1 || ColorGREEN != 2 || ColorBLUE != 4 {
		t.Error("explicit enum values not preserved")
	}
}

func TestBoundedSequenceEnforced(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("shapes<8> with 9 elements should panic on marshal")
		}
	}()
	var e rt.Encoder
	MarshalZOOReorderXDRRequest(&e, make([]Shape, 9))
}

func TestBadUnionDiscriminatorRejectedWhenNoDefault(t *testing.T) {
	// shape has a default arm, so any kind decodes; instead check the
	// optional flag: a presence value other than 0/1 is still accepted
	// as true by XDR convention, but a truncated arm errors.
	var e rt.Encoder
	MarshalZOOReverseXDRRequest(&e, &Node{S: Shape{D: 3}})
	full := e.Bytes()
	for cut := 1; cut < len(full); cut += 2 {
		if _, err := UnmarshalZOOReverseXDRRequest(rt.NewDecoder(full[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func zooPres(t *testing.T, op string) *pres.Node {
	t.Helper()
	f, err := oncrpc.Parse("zoo.x", ZooIDL)
	if err != nil {
		t.Fatal(err)
	}
	pf, err := pgen.GenerateGo(f, presc.Client)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range pf.Stubs {
		if s.Op == op {
			return s.Params[0].Request
		}
	}
	t.Fatalf("no op %s", op)
	return nil
}

func TestInterpreterMatchesZooStubs(t *testing.T) {
	node := zooPres(t, "reorder")
	listNode := zooPres(t, "reverse")
	m := interp.New(wire.XDR{}, interp.ILU)
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		shapes := randShapes(r, int(n%9))
		var compiled, interpreted rt.Encoder
		MarshalZOOReorderXDRRequest(&compiled, shapes)
		if err := m.Marshal(&interpreted, node, shapes); err != nil {
			t.Logf("interp: %v", err)
			return false
		}
		if !bytes.Equal(compiled.Bytes(), interpreted.Bytes()) {
			t.Logf("bytes differ:\n%x\n%x", compiled.Bytes(), interpreted.Bytes())
			return false
		}
		var out []Shape
		if err := m.Unmarshal(rt.NewDecoder(compiled.Bytes()), node, &out); err != nil {
			return false
		}
		if len(shapes) == 0 && len(out) == 0 {
			return true
		}
		return reflect.DeepEqual(shapes, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}

	// Recursive lists through the interpreter too.
	r := rand.New(rand.NewSource(5))
	list := randList(r, 20)
	var compiled, interpreted rt.Encoder
	MarshalZOOReverseXDRRequest(&compiled, list)
	if err := m.Marshal(&interpreted, listNode, list); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(compiled.Bytes(), interpreted.Bytes()) {
		t.Error("recursive encodings differ between interpreter and stubs")
	}
	var out *Node
	if err := m.Unmarshal(rt.NewDecoder(compiled.Bytes()), listNode, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(list, out) {
		t.Error("interpreter list decode mismatch")
	}
}

func TestCDRZooRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	for i := 0; i < 30; i++ {
		in := randShapes(r, r.Intn(9))
		var e rt.Encoder
		MarshalZOOReorderCDRRequest(&e, in)
		out, err := UnmarshalZOOReorderCDRRequest(rt.NewDecoder(e.Bytes()))
		if err != nil {
			t.Fatalf("iter %d: %v", i, err)
		}
		if len(in) == 0 && len(out) == 0 {
			continue
		}
		if !reflect.DeepEqual(in, out) {
			t.Fatalf("iter %d: CDR mismatch", i)
		}
	}
	// Recursion over CDR too.
	list := randList(r, 9)
	var e rt.Encoder
	MarshalZOOReverseCDRRequest(&e, list)
	out, err := UnmarshalZOOReverseCDRRequest(rt.NewDecoder(e.Bytes()))
	if err != nil || !reflect.DeepEqual(list, out) {
		t.Errorf("CDR list: %v", err)
	}
}

func TestZooRPCEndToEnd(t *testing.T) {
	impl := zooImpl{}
	clientEnd, serverEnd := rt.Pipe()
	s := rt.NewServer(rt.ONC{})
	RegisterZOOXDR(s, impl)
	go s.ServeConn(serverEnd)
	defer clientEnd.Close()
	c := NewZOOXDRClient(clientEnd)

	mixed, err := c.Mix(ColorRED, ColorGREEN)
	if err != nil || mixed != ColorBLUE {
		t.Errorf("Mix = %v, %v", mixed, err)
	}
	list := randList(rand.New(rand.NewSource(8)), 5)
	rev, err := c.Reverse(list)
	if err != nil {
		t.Fatal(err)
	}
	// Count both lists.
	count := func(n *Node) int {
		c := 0
		for ; n != nil; n = n.Next {
			c++
		}
		return c
	}
	if count(rev) != 5 {
		t.Errorf("reversed list has %d nodes", count(rev))
	}
}

type zooImpl struct{}

func (zooImpl) Reorder(v []Shape) ([]Shape, error) {
	out := append([]Shape(nil), v...)
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out, nil
}

func (zooImpl) Reverse(head *Node) (*Node, error) {
	var out *Node
	for n := head; n != nil; n = n.Next {
		out = &Node{S: n.S, Next: out}
	}
	return out, nil
}

func (zooImpl) Mix(a, b Color) (Color, error) { return a ^ b ^ 7, nil }
