// Package typestubs holds flick-generated stubs for the type-zoo
// interface (internal/typestubs/zoo.x): unions, enums, optionals,
// recursion, floats — the constructs the evaluation interface does not
// cover. Regenerate with go generate.
package typestubs

import _ "embed"

// ZooIDL is the source, exported for the interpreter cross-checks.
//
//go:embed zoo.x
var ZooIDL string

//go:generate go run flick/cmd/flick -idl oncrpc -lang go -format xdr -style flick -package typestubs -suffix XDR -o zoo_xdr.go zoo.x
//go:generate go run flick/cmd/flick -idl oncrpc -lang go -format xdr -style rpcgen -rpc=false -package typestubs -suffix XDRNaive -skip-decls -o zoo_xdr_naive.go zoo.x
//go:generate go run flick/cmd/flick -idl oncrpc -lang go -format cdr-le -style flick -rpc=false -package typestubs -suffix CDR -skip-decls -o zoo_cdr.go zoo.x
