// Package netsim models the networks of the paper's end-to-end
// experiments (Figures 4-7). We do not have 1997's 10/100Mbps Ethernet,
// 640Mbps Myrinet, or CMU Mach 3; instead the simulator combines
//
//   - measured marshal/unmarshal CPU time (from the real generated
//     stubs, measured on this host), with
//   - a link model: effective bandwidth (the paper reports the
//     OS-limited ttcp numbers, far below nominal) and per-message
//     protocol-stack overhead.
//
// End-to-end throughput then exhibits exactly the behaviour the paper
// reports: on a slow link the wire dominates and every compiler's stubs
// saturate it; on fast links marshaling dominates and the optimizing
// compiler's advantage carries through.
package netsim

import (
	"fmt"
	"time"
)

// Link models one transport medium.
type Link struct {
	// Name labels the link in reports.
	Name string
	// NominalMbps is the advertised link speed.
	NominalMbps float64
	// EffectiveMbps is the bandwidth actually deliverable through the
	// OS protocol stack (the paper's measured ttcp numbers).
	EffectiveMbps float64
	// PerMessage is the fixed protocol-stack cost per message
	// exchanged (system calls, interrupts, protocol headers).
	PerMessage time.Duration
	// PerFrame is the serialized per-frame cost paid on the sender's
	// line for every frame put on the wire (the system-call/driver
	// component that cannot overlap with other senders). Unlike
	// PerMessage — propagation, which overlaps across in-flight
	// messages — PerFrame is paid under the line lock, which is exactly
	// the cost adaptive batching amortizes: a frame carrying 32 calls
	// pays it once. Zero (all the paper-era links) leaves the original
	// model untouched.
	PerFrame time.Duration
	// PerByteHostOverhead models additional per-byte host processing
	// (checksums, kernel copies) beyond the wire itself; zero when the
	// effective bandwidth already captures it.
	PerByteHostOverhead time.Duration
}

// The paper's measured environments. Effective bandwidths follow the
// paper: ttcp delivered ~6.8Mbps on 10Mbps Ethernet (the paper's stubs
// plateau at 6-7.5Mbps), 70Mbps on 100Mbps Ethernet, and just 84.5Mbps
// on 640Mbps Myrinet — "due to the performance limitations imposed by the
// operating system's low-level protocol layers."
var (
	Ethernet10 = Link{
		Name:          "10Mbps Ethernet",
		NominalMbps:   10,
		EffectiveMbps: 6.8,
		PerMessage:    400 * time.Microsecond,
	}
	Ethernet100 = Link{
		Name:          "100Mbps Ethernet",
		NominalMbps:   100,
		EffectiveMbps: 70,
		PerMessage:    300 * time.Microsecond,
	}
	Myrinet = Link{
		Name:          "640Mbps Myrinet",
		NominalMbps:   640,
		EffectiveMbps: 84.5,
		PerMessage:    250 * time.Microsecond,
	}
	// MachIPC models same-host Mach 3 message transfer on the paper's
	// 100MHz Pentium: no wire, a kernel copy bounded by memory
	// bandwidth (~36MBps measured by lmbench there), and a relatively
	// cheap per-message trap cost.
	MachIPC = Link{
		Name:          "Mach3 IPC",
		NominalMbps:   36 * 8,
		EffectiveMbps: 36 * 8,
		PerMessage:    120 * time.Microsecond,
	}
)

// Scaled returns the link sped up by factor: both bandwidth and
// per-message cost improve. The experiment harness uses it to hold the
// paper's CPU-to-network speed ratio on a modern host — today's CPU is
// ~100x a 1997 SPARCstation, so the 1997 links are scaled by the same
// factor; this is exactly the paper's extrapolation that lighter-weight
// transports magnify the marshaling bottleneck.
func (l Link) Scaled(factor float64) Link {
	if factor <= 0 {
		return l
	}
	out := l
	out.Name = l.Name
	out.EffectiveMbps = l.EffectiveMbps * factor
	out.NominalMbps = l.NominalMbps * factor
	out.PerMessage = time.Duration(float64(l.PerMessage) / factor)
	out.PerFrame = time.Duration(float64(l.PerFrame) / factor)
	return out
}

// WireTime returns the time the link needs to carry one message of n
// bytes (transmission at effective bandwidth plus fixed per-message
// cost).
func (l Link) WireTime(n int) time.Duration {
	if l.EffectiveMbps <= 0 {
		return l.PerMessage
	}
	bits := float64(n * 8)
	tx := time.Duration(bits / (l.EffectiveMbps * 1e6) * float64(time.Second))
	host := time.Duration(n) * l.PerByteHostOverhead
	return l.PerMessage + tx + host
}

// RoundTrip combines one request and one (small) reply exchange.
type RoundTrip struct {
	Link Link
	// RequestBytes is the full request message size; ReplyBytes the
	// reply's (headers included).
	RequestBytes int
	ReplyBytes   int
	// ClientMarshal/ServerUnmarshal are the measured stub costs for
	// the request payload; ReplyCost covers both reply-side stubs.
	ClientMarshal   time.Duration
	ServerUnmarshal time.Duration
	ReplyCost       time.Duration
	// Stream enables within-message pipelining: stream transports
	// (XDR record marking over TCP) transmit earlier fragments while
	// the stub marshals later ones, so a large message's latency is
	// governed by its slowest stage, not the sum. Datagram and
	// single-copy IPC transports stay serial.
	Stream bool
	// FragmentBytes is the streaming fragment size (default 4KB).
	FragmentBytes int
}

// Time returns the modeled round-trip latency.
func (r RoundTrip) Time() time.Duration {
	tx := r.Link.TxTime(r.RequestBytes)
	fixed := 2*r.Link.PerMessage + r.ReplyCost + r.Link.WireTime(r.ReplyBytes)
	m, u := r.ClientMarshal, r.ServerUnmarshal
	if !r.Stream {
		return fixed + m + tx + u
	}
	frag := r.FragmentBytes
	if frag <= 0 {
		frag = 4 << 10
	}
	n := r.RequestBytes / frag
	if n < 1 {
		n = 1
	}
	// Pipeline fill (one fragment through every stage) plus the
	// bottleneck stage for the remaining fragments.
	fill := (m + tx + u) / time.Duration(n)
	bottleneck := m
	if tx > bottleneck {
		bottleneck = tx
	}
	if u > bottleneck {
		bottleneck = u
	}
	steady := bottleneck * time.Duration(n-1) / time.Duration(n)
	return fixed + fill + steady
}

// TxTime is the pure transmission time of n bytes (no per-message cost).
func (l Link) TxTime(n int) time.Duration {
	if l.EffectiveMbps <= 0 {
		return 0
	}
	bits := float64(n * 8)
	return time.Duration(bits/(l.EffectiveMbps*1e6)*float64(time.Second)) +
		time.Duration(n)*l.PerByteHostOverhead
}

// ThroughputMbps returns the end-to-end data throughput of repeatedly
// invoking an operation that carries payloadBytes of application data
// per round trip.
func (r RoundTrip) ThroughputMbps(payloadBytes int) float64 {
	t := r.Time()
	if t <= 0 {
		return 0
	}
	return float64(payloadBytes*8) / (float64(t) / float64(time.Second)) / 1e6
}

// String describes the link.
func (l Link) String() string {
	return fmt.Sprintf("%s (effective %.1f Mbps, %v/msg)", l.Name, l.EffectiveMbps, l.PerMessage)
}
