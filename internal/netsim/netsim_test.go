package netsim

import (
	"strings"
	"testing"
	"time"
)

func TestWireTime(t *testing.T) {
	l := Link{EffectiveMbps: 8, PerMessage: time.Millisecond} // 1 byte/µs
	if got := l.WireTime(0); got != time.Millisecond {
		t.Errorf("WireTime(0) = %v", got)
	}
	// 1000 bytes at 8Mbps = 1ms transmission + 1ms fixed.
	if got := l.WireTime(1000); got != 2*time.Millisecond {
		t.Errorf("WireTime(1000) = %v", got)
	}
}

func TestScaled(t *testing.T) {
	l := Ethernet10.Scaled(10)
	if l.EffectiveMbps != 68 {
		t.Errorf("scaled bandwidth = %v", l.EffectiveMbps)
	}
	if l.PerMessage != 40*time.Microsecond {
		t.Errorf("scaled per-message = %v", l.PerMessage)
	}
	if got := Ethernet10.Scaled(0); got.EffectiveMbps != Ethernet10.EffectiveMbps {
		t.Error("non-positive factor should be identity")
	}
}

func TestRoundTripSerialVsPipelined(t *testing.T) {
	link := Link{EffectiveMbps: 80, PerMessage: 0} // 10 bytes/µs
	rt := RoundTrip{
		Link:            link,
		RequestBytes:    100_000,
		ClientMarshal:   10 * time.Millisecond,
		ServerUnmarshal: 10 * time.Millisecond,
	}
	serial := rt.Time()
	rt.Stream = true
	pipelined := rt.Time()
	if pipelined >= serial {
		t.Errorf("pipelined (%v) should beat serial (%v) for large messages", pipelined, serial)
	}
	// The pipelined time approaches the bottleneck stage (10ms) rather
	// than the 30ms sum.
	if pipelined > 15*time.Millisecond {
		t.Errorf("pipelined = %v, want near the 10ms bottleneck", pipelined)
	}
}

func TestThroughputMonotoneInMarshalSpeed(t *testing.T) {
	link := Myrinet.Scaled(100)
	fast := RoundTrip{Link: link, RequestBytes: 1 << 20, ReplyBytes: 28,
		ClientMarshal: time.Millisecond, ServerUnmarshal: time.Millisecond, Stream: true}
	slow := fast
	slow.ClientMarshal = 10 * time.Millisecond
	slow.ServerUnmarshal = 10 * time.Millisecond
	if fast.ThroughputMbps(1<<20) <= slow.ThroughputMbps(1<<20) {
		t.Error("faster marshaling must not lower throughput")
	}
}

func TestSlowLinkEqualizesCompilers(t *testing.T) {
	// The Figure 4 effect: when the wire is the bottleneck, marshal
	// speed differences vanish.
	link := Ethernet10
	mk := func(m time.Duration) float64 {
		r := RoundTrip{Link: link, RequestBytes: 1 << 20, ReplyBytes: 28,
			ClientMarshal: m, ServerUnmarshal: m, Stream: true}
		return r.ThroughputMbps(1 << 20)
	}
	fast := mk(10 * time.Millisecond)  // flick-ish
	slow := mk(100 * time.Millisecond) // naive-ish; still below the 1.2s wire time
	if ratio := fast / slow; ratio > 1.05 {
		t.Errorf("slow link should equalize; ratio = %.2f", ratio)
	}
}

func TestLinkString(t *testing.T) {
	if !strings.Contains(Ethernet100.String(), "100Mbps Ethernet") {
		t.Error("String() should carry the name")
	}
}
