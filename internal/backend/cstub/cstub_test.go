package cstub_test

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"flick"
)

var update = flag.Bool("update", false, "rewrite golden files")

const mailIDL = `
interface Mail {
	exception Rejected { string reason; };
	struct header { long id; string<64> subject; };
	typedef sequence<header> headers;

	void send(in string msg);
	headers list(in long max, out long total) raises (Rejected);
	oneway void flush();
};
`

const benchX = `
struct point { int x; int y; };
struct rect { point min; point max; };
struct entry {
	string name<255>;
	int fields[30];
	int values<8>;
	entry *next;
};
program BENCH {
	version V1 {
		void send_rects(rect) = 1;
		entry *head(int) = 2;
	} = 1;
} = 0x20000123;
`

func golden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file %s (run with -update): %v", path, err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s (run with -update after reviewing)\n--- got ---\n%s", path, clip(got))
	}
}

func clip(s string) string {
	if len(s) > 4000 {
		return s[:4000] + "\n...[clipped]"
	}
	return s
}

func TestCORBAPresentationGolden(t *testing.T) {
	got, err := flick.Compile("mail.idl", mailIDL, flick.Options{
		IDL: "corba", Lang: "c", Format: "cdr", Style: "flick",
	})
	if err != nil {
		t.Fatal(err)
	}
	golden(t, "mail_corba_cdr.c", got)

	// Structural checks independent of the golden file.
	for _, frag := range []string{
		"typedef int32_t CORBA_long;",
		"typedef void *Mail;",
		"CORBA_unsigned_long _length;",
		"Mail_send(Mail _obj, char *msg, CORBA_Environment *_ev)",
		"uint32_t _len",  // cached strlen
		"flick_enc_next", // chunked region
		"flick_dispatch_Mail",
		"FLICK_WORD4",
	} {
		if !strings.Contains(got, frag) {
			t.Errorf("output missing %q", frag)
		}
	}
}

func TestRpcgenPresentationGolden(t *testing.T) {
	got, err := flick.Compile("bench.x", benchX, flick.Options{
		IDL: "oncrpc", Lang: "c", Format: "xdr", Style: "flick",
	})
	if err != nil {
		t.Fatal(err)
	}
	golden(t, "bench_rpcgen_xdr.c", got)
	for _, frag := range []string{
		"typedef uint32_t u_int;",
		"send_rects_1(rect *arg1, CLIENT *clnt)",
		"u_int len;",    // rpcgen counted struct
		"flick_m_entry", // recursion forces an out-of-line routine
		"flick_u_entry",
		"switch (_h->proc) {",
	} {
		if !strings.Contains(got, frag) {
			t.Errorf("output missing %q", frag)
		}
	}
}

func TestRpcgenRejectsExceptions(t *testing.T) {
	// The paper, footnote 3: the rpcgen presentation cannot accept AOI
	// files that use CORBA-style exceptions.
	_, err := flick.Compile("mail.idl", mailIDL, flick.Options{
		IDL: "corba", Lang: "c", Format: "xdr", Style: "flick", Presentation: "rpcgen",
	})
	if err == nil {
		t.Fatal("rpcgen presentation should reject exceptions")
	}
	if !strings.Contains(err.Error(), "cannot express exceptions") {
		t.Errorf("error = %v", err)
	}
}

func TestFlukePresentation(t *testing.T) {
	got, err := flick.Compile("mail.idl", `interface M { void f(in long x); };`, flick.Options{
		IDL: "corba", Lang: "c", Format: "fluke",
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"typedef int32_t fluke_long;", "fluke_Environment"} {
		if !strings.Contains(got, frag) {
			t.Errorf("fluke output missing %q", frag)
		}
	}
}
