/*
 * flick_runtime.h — the C stub runtime for Flick-Go generated stubs.
 *
 * Generated .c files depend only on this header. It provides:
 *   - growable marshal buffers reused across invocations (flick_enc),
 *   - bounds-checked decoders with grouped ensure checks (flick_dec),
 *   - chunk-window access (flick_enc_next / FLICK_PUT_* macros): the
 *     chunk-pointer optimization of the paper,
 *   - bulk array transfer helpers (the memcpy optimization),
 *   - the client-side invocation hooks (flick_start_request,
 *     flick_invoke) that a transport library implements.
 */
#ifndef FLICK_RUNTIME_H
#define FLICK_RUNTIME_H

#include <stdint.h>
#include <stdlib.h>
#include <string.h>

/* ---- marshal buffers ---------------------------------------------------- */

typedef struct flick_enc {
	unsigned char *buf;
	size_t         len;
	size_t         cap;
} flick_enc;

typedef struct flick_dec {
	const unsigned char *buf;
	size_t               len;
	size_t               pos;
	int                  err;
} flick_dec;

static inline void flick_grow(flick_enc *e, size_t n)
{
	if (e->cap - e->len < n) {
		size_t cap = e->cap ? e->cap : 64;
		while (cap < e->len + n)
			cap *= 2;
		e->buf = (unsigned char *) realloc(e->buf, cap);
		e->cap = cap;
	}
}

static inline void flick_grow_dyn(flick_enc *e, size_t base, size_t per, size_t count)
{
	flick_grow(e, base + per * count);
}

static inline unsigned char *flick_enc_next(flick_enc *e, size_t n)
{
	unsigned char *p = e->buf + e->len;
	e->len += n;
	return p;
}

static inline void flick_enc_align(flick_enc *e, size_t n)
{
	size_t pad = (n - e->len % n) % n;
	if (pad) {
		flick_grow(e, pad);
		memset(e->buf + e->len, 0, pad);
		e->len += pad;
	}
}

/* ---- chunk windows (constant chunk pointer + constant offsets) ---------- */

#define FLICK_PUT_U8(b, off, v)     ((b)[off] = (uint8_t) (v))
#define FLICK_PUT_U16BE(b, off, v)  ((b)[off] = (uint8_t) ((v) >> 8), (b)[(off) + 1] = (uint8_t) (v))
#define FLICK_PUT_U16LE(b, off, v)  ((b)[off] = (uint8_t) (v), (b)[(off) + 1] = (uint8_t) ((v) >> 8))
#define FLICK_PUT_U32BE(b, off, v)  (FLICK_PUT_U16BE(b, off, (uint32_t) (v) >> 16), FLICK_PUT_U16BE(b, (off) + 2, (v)))
#define FLICK_PUT_U32LE(b, off, v)  (FLICK_PUT_U16LE(b, off, (v)), FLICK_PUT_U16LE(b, (off) + 2, (uint32_t) (v) >> 16))
#define FLICK_PUT_U64BE(b, off, v)  (FLICK_PUT_U32BE(b, off, (uint64_t) (v) >> 32), FLICK_PUT_U32BE(b, (off) + 4, (uint32_t) (v)))
#define FLICK_PUT_U64LE(b, off, v)  (FLICK_PUT_U32LE(b, off, (uint32_t) (v)), FLICK_PUT_U32LE(b, (off) + 4, (uint64_t) (v) >> 32))

#define FLICK_GET_U8(b, off)        ((b)[off])
#define FLICK_GET_U16BE(b, off)     ((uint16_t) ((b)[off] << 8 | (b)[(off) + 1]))
#define FLICK_GET_U16LE(b, off)     ((uint16_t) ((b)[(off) + 1] << 8 | (b)[off]))
#define FLICK_GET_U32BE(b, off)     ((uint32_t) FLICK_GET_U16BE(b, off) << 16 | FLICK_GET_U16BE(b, (off) + 2))
#define FLICK_GET_U32LE(b, off)     ((uint32_t) FLICK_GET_U16LE(b, (off) + 2) << 16 | FLICK_GET_U16LE(b, off))
#define FLICK_GET_U64BE(b, off)     ((uint64_t) FLICK_GET_U32BE(b, off) << 32 | FLICK_GET_U32BE(b, (off) + 4))
#define FLICK_GET_U64LE(b, off)     ((uint64_t) FLICK_GET_U32LE(b, (off) + 4) << 32 | FLICK_GET_U32LE(b, off))

#define FLICK_PUT_F32BE(b, off, v)  do { union { float f; uint32_t u; } _c; _c.f = (v); FLICK_PUT_U32BE(b, off, _c.u); } while (0)
#define FLICK_PUT_F32LE(b, off, v)  do { union { float f; uint32_t u; } _c; _c.f = (v); FLICK_PUT_U32LE(b, off, _c.u); } while (0)
#define FLICK_PUT_F64BE(b, off, v)  do { union { double f; uint64_t u; } _c; _c.f = (v); FLICK_PUT_U64BE(b, off, _c.u); } while (0)
#define FLICK_PUT_F64LE(b, off, v)  do { union { double f; uint64_t u; } _c; _c.f = (v); FLICK_PUT_U64LE(b, off, _c.u); } while (0)

/* ---- streaming puts (capacity ensured by a preceding flick_grow) -------- */

static inline void flick_put_u8(flick_enc *e, uint8_t v)      { e->buf[e->len++] = v; }
static inline void flick_put_u16be(flick_enc *e, uint16_t v)  { FLICK_PUT_U16BE(e->buf, e->len, v); e->len += 2; }
static inline void flick_put_u16le(flick_enc *e, uint16_t v)  { FLICK_PUT_U16LE(e->buf, e->len, v); e->len += 2; }
static inline void flick_put_u32be(flick_enc *e, uint32_t v)  { FLICK_PUT_U32BE(e->buf, e->len, v); e->len += 4; }
static inline void flick_put_u32le(flick_enc *e, uint32_t v)  { FLICK_PUT_U32LE(e->buf, e->len, v); e->len += 4; }
static inline void flick_put_u64be(flick_enc *e, uint64_t v)  { FLICK_PUT_U64BE(e->buf, e->len, v); e->len += 8; }
static inline void flick_put_u64le(flick_enc *e, uint64_t v)  { FLICK_PUT_U64LE(e->buf, e->len, v); e->len += 8; }
static inline void flick_put_f32be(flick_enc *e, float v)     { FLICK_PUT_F32BE(e->buf, e->len, v); e->len += 4; }
static inline void flick_put_f32le(flick_enc *e, float v)     { FLICK_PUT_F32LE(e->buf, e->len, v); e->len += 4; }
static inline void flick_put_f64be(flick_enc *e, double v)    { FLICK_PUT_F64BE(e->buf, e->len, v); e->len += 8; }
static inline void flick_put_f64le(flick_enc *e, double v)    { FLICK_PUT_F64LE(e->buf, e->len, v); e->len += 8; }

static inline void flick_put_bytes(flick_enc *e, const void *p, size_t n)
{
	memcpy(e->buf + e->len, p, n);
	e->len += n;
}

/* Bulk array transfers (the memcpy optimization; byte order applied
 * element-wise when the host differs). */
#define FLICK_DEF_PUT_ARR(name, ctype, put)                                   \
	static inline void flick_put_##name(flick_enc *e, const ctype *p, size_t n) \
	{                                                                         \
		size_t i;                                                             \
		for (i = 0; i < n; i++)                                               \
			put(e, p[i]);                                                     \
	}

FLICK_DEF_PUT_ARR(arr16be, uint16_t, flick_put_u16be)
FLICK_DEF_PUT_ARR(arr16le, uint16_t, flick_put_u16le)
FLICK_DEF_PUT_ARR(arr32be, uint32_t, flick_put_u32be)
FLICK_DEF_PUT_ARR(arr32le, uint32_t, flick_put_u32le)
FLICK_DEF_PUT_ARR(arr64be, uint64_t, flick_put_u64be)
FLICK_DEF_PUT_ARR(arr64le, uint64_t, flick_put_u64le)
FLICK_DEF_PUT_ARR(arrf32be, float, flick_put_f32be)
FLICK_DEF_PUT_ARR(arrf32le, float, flick_put_f32le)
FLICK_DEF_PUT_ARR(arrf64be, double, flick_put_f64be)
FLICK_DEF_PUT_ARR(arrf64le, double, flick_put_f64le)

/* ---- decoding ------------------------------------------------------------ */

static inline int flick_dec_ensure(flick_dec *d, size_t n)
{
	if (d->len - d->pos < n) {
		d->err = 1;
		return 0;
	}
	return 1;
}

static inline int flick_dec_ensure_dyn(flick_dec *d, size_t base, size_t per, size_t count)
{
	return flick_dec_ensure(d, base + per * count);
}

static inline const unsigned char *flick_dec_next(flick_dec *d, size_t n)
{
	const unsigned char *p = d->buf + d->pos;
	d->pos += n;
	return p;
}

static inline int flick_dec_align(flick_dec *d, size_t n)
{
	size_t pad = (n - d->pos % n) % n;
	if (d->len - d->pos < pad) {
		d->err = 1;
		return 0;
	}
	d->pos += pad;
	return 1;
}

static inline uint8_t  flick_get_u8(flick_dec *d)    { return d->buf[d->pos++]; }
static inline uint16_t flick_get_u16be(flick_dec *d) { uint16_t v = FLICK_GET_U16BE(d->buf, d->pos); d->pos += 2; return v; }
static inline uint16_t flick_get_u16le(flick_dec *d) { uint16_t v = FLICK_GET_U16LE(d->buf, d->pos); d->pos += 2; return v; }
static inline uint32_t flick_get_u32be(flick_dec *d) { uint32_t v = FLICK_GET_U32BE(d->buf, d->pos); d->pos += 4; return v; }
static inline uint32_t flick_get_u32le(flick_dec *d) { uint32_t v = FLICK_GET_U32LE(d->buf, d->pos); d->pos += 4; return v; }
static inline uint64_t flick_get_u64be(flick_dec *d) { uint64_t v = FLICK_GET_U64BE(d->buf, d->pos); d->pos += 8; return v; }
static inline uint64_t flick_get_u64le(flick_dec *d) { uint64_t v = FLICK_GET_U64LE(d->buf, d->pos); d->pos += 8; return v; }

static inline float flick_get_f32be(flick_dec *d)  { union { float f; uint32_t u; } c; c.u = flick_get_u32be(d); return c.f; }
static inline float flick_get_f32le(flick_dec *d)  { union { float f; uint32_t u; } c; c.u = flick_get_u32le(d); return c.f; }
static inline double flick_get_f64be(flick_dec *d) { union { double f; uint64_t u; } c; c.u = flick_get_u64be(d); return c.f; }
static inline double flick_get_f64le(flick_dec *d) { union { double f; uint64_t u; } c; c.u = flick_get_u64le(d); return c.f; }

static inline void flick_get_bytes(flick_dec *d, void *p, size_t n)
{
	memcpy(p, d->buf + d->pos, n);
	d->pos += n;
}

#define FLICK_DEF_GET_ARR(name, ctype, get)                                   \
	static inline void flick_get_##name(flick_dec *d, ctype *p, size_t n)    \
	{                                                                         \
		size_t i;                                                             \
		for (i = 0; i < n; i++)                                               \
			p[i] = get(d);                                                    \
	}

FLICK_DEF_GET_ARR(arr16be, uint16_t, flick_get_u16be)
FLICK_DEF_GET_ARR(arr16le, uint16_t, flick_get_u16le)
FLICK_DEF_GET_ARR(arr32be, uint32_t, flick_get_u32be)
FLICK_DEF_GET_ARR(arr32le, uint32_t, flick_get_u32le)
FLICK_DEF_GET_ARR(arr64be, uint64_t, flick_get_u64be)
FLICK_DEF_GET_ARR(arr64le, uint64_t, flick_get_u64le)
FLICK_DEF_GET_ARR(arrf32be, float, flick_get_f32be)
FLICK_DEF_GET_ARR(arrf32le, float, flick_get_f32le)
FLICK_DEF_GET_ARR(arrf64be, double, flick_get_f64be)
FLICK_DEF_GET_ARR(arrf64le, double, flick_get_f64le)

/* ---- counted lengths, bounds, allocation --------------------------------- */

static inline int flick_check_len(flick_dec *d, uint32_t raw, uint32_t bound,
                                  int nul, uint32_t *out)
{
	uint32_t n = raw;
	if (nul) {
		if (n == 0) {
			d->err = 1;
			return 0;
		}
		n--;
	}
	if (bound && n > bound) {
		d->err = 1;
		return 0;
	}
	if (n > d->len - d->pos) {
		d->err = 1;
		return 0;
	}
	*out = n;
	return 1;
}

static inline int flick_dec_len_be(flick_dec *d, uint32_t bound, int nul, uint32_t *out)
{
	return flick_check_len(d, flick_get_u32be(d), bound, nul, out);
}

static inline int flick_dec_len_le(flick_dec *d, uint32_t bound, int nul, uint32_t *out)
{
	return flick_check_len(d, flick_get_u32le(d), bound, nul, out);
}

#define FLICK_CHECK_BOUND(n, bound) \
	do { if ((size_t) (n) > (size_t) (bound)) flick_bad_bound(); } while (0)

void flick_bad_bound(void);
void flick_bad_union(void);
void *flick_alloc(size_t n);

/* Server-side word-at-a-time operation-name demultiplexing. */
#define FLICK_WORD4(s, off) flick_word4(s, off)
uint32_t flick_word4(const char *s, size_t off);

/* ---- transport hooks (implemented by the transport library) -------------- */

typedef struct flick_conn flick_conn;
typedef struct flick_req {
	uint32_t    proc;
	const char *op;
	size_t      op_len;
} flick_req;

flick_enc *flick_start_request(void *conn, uint32_t proc, const char *op, int oneway);
flick_dec *flick_invoke(void *conn, flick_enc *e);
void       flick_send_oneway(void *conn, flick_enc *e);

#endif /* FLICK_RUNTIME_H */
