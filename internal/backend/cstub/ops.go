package cstub

import (
	"fmt"
	"strings"

	"flick/internal/cast"
	"flick/internal/mir"
	"flick/internal/pres"
	"flick/internal/wire"
)

// refExpr renders a mir value path as a C expression; isPtr reports
// whether the expression denotes a pointer that member access must go
// through with ->.
func (e *emitter) refExpr(r mir.Ref) (cast.Expr, bool) {
	switch r := r.(type) {
	case *mir.Param:
		if e.ptrRoots[r.Name] {
			// Pointer-passed roots read as values through a deref;
			// member access through the pointer keeps the arrow form.
			return &cast.Ident{Name: r.Name}, true
		}
		return &cast.Ident{Name: r.Name}, false
	case *mir.Field:
		base, ptr := e.refExpr(r.Base)
		name := r.Name
		if r.Index == -1 {
			// Union discriminators present as _d in C.
			name = "_d"
		}
		// CORBA union arms spell as _u.<arm>.
		parts := strings.Split(name, ".")
		expr := cast.Expr(&cast.Member{Base: base, Name: parts[0], Arrow: ptr})
		for _, p := range parts[1:] {
			expr = &cast.Member{Base: expr, Name: p}
		}
		return expr, false
	case *mir.Elem:
		if x, ok := e.elemExpr[r.Var]; ok {
			return x, false
		}
		return &cast.Ident{Name: r.Var}, false
	case *mir.Deref:
		base, _ := e.refExpr(r.Base)
		return &cast.Unary{Op: "*", Operand: base}, false
	case *mir.Len:
		base, _ := e.refExpr(r.Base)
		return &cast.Call{Fn: &cast.Ident{Name: "strlen"}, Args: []cast.Expr{base}}, false
	default:
		panic(fmt.Sprintf("cstub: unknown ref %T", r))
	}
}

// countExpr renders the element count of an array-like value.
func (e *emitter) countExpr(val mir.Ref, n *pres.Node, dir mir.Dir) cast.Expr {
	if v, ok := e.lenVars[val.String()]; ok {
		return &cast.Ident{Name: v}
	}
	if n != nil {
		switch n.Resolve().Kind {
		case pres.CountedKind:
			base, ptr := e.refExpr(val)
			return &cast.Member{Base: base, Name: n.Resolve().LengthField, Arrow: ptr}
		case pres.TerminatedKind:
			return &cast.Call{Fn: &cast.Ident{Name: "strlen"}, Args: []cast.Expr{e.valueExpr(val)}}
		}
	}
	return &cast.Call{Fn: &cast.Ident{Name: "strlen"}, Args: []cast.Expr{e.valueExpr(val)}}
}

// bufExpr renders the element storage of an array-like value.
func (e *emitter) bufExpr(val mir.Ref, n *pres.Node) cast.Expr {
	if n != nil && n.Resolve().Kind == pres.CountedKind {
		base, ptr := e.refExpr(val)
		return &cast.Member{Base: base, Name: n.Resolve().BufferField, Arrow: ptr}
	}
	return e.valueExpr(val)
}

// valueExpr renders a ref as a value, dereferencing pointer roots.
func (e *emitter) valueExpr(r mir.Ref) cast.Expr {
	x, ptr := e.refExpr(r)
	if ptr {
		return &cast.Unary{Op: "*", Operand: x}
	}
	return x
}

func call(name string, args ...cast.Expr) cast.Stmt {
	return &cast.ExprStmt{E: &cast.Call{Fn: &cast.Ident{Name: name}, Args: args}}
}

func callE(name string, args ...cast.Expr) cast.Expr {
	return &cast.Call{Fn: &cast.Ident{Name: name}, Args: args}
}

var encIdent = &cast.Ident{Name: "_e"}
var decIdent = &cast.Ident{Name: "_d"}

// failIf emits `if (!cond-is-ok) return -1;` for decode paths.
func failIf(cond cast.Expr) cast.Stmt {
	return &cast.If{
		Cond: &cast.Unary{Op: "!", Operand: cond},
		Then: &cast.Block{Stmts: []cast.Stmt{&cast.Return{E: &cast.IntLit{Value: -1}}}},
	}
}

func intLit(v int) cast.Expr { return &cast.IntLit{Value: int64(v)} }

// putName returns the streaming put runtime function for an atom.
func (e *emitter) putName(a wire.Atom, w int) string {
	if a.Kind == wire.Float {
		return fmt.Sprintf("flick_put_f%d%s", a.Bits, e.ord())
	}
	if w == 1 {
		return "flick_put_u8"
	}
	return fmt.Sprintf("flick_put_u%d%s", w*8, e.ord())
}

func (e *emitter) getName(a wire.Atom, w int) string {
	if a.Kind == wire.Float {
		return fmt.Sprintf("flick_get_f%d%s", a.Bits, e.ord())
	}
	if w == 1 {
		return "flick_get_u8"
	}
	return fmt.Sprintf("flick_get_u%d%s", w*8, e.ord())
}

// convPut wraps a presented value for the wire.
func (e *emitter) convPut(a wire.Atom, w int, x cast.Expr) cast.Expr {
	switch a.Kind {
	case wire.BoolAtom:
		return &cast.Ternary{Cond: x, Then: intLit(1), Else: intLit(0)}
	case wire.Float:
		return x
	}
	t := cast.Type(&cast.Prim{Name: fmt.Sprintf("uint%d_t", w*8)})
	return &cast.CastExpr{To: t, Operand: x}
}

func (e *emitter) ops(out *[]cast.Stmt, ops []mir.Op, dir mir.Dir) error {
	for _, op := range ops {
		if err := e.op(out, op, dir); err != nil {
			return err
		}
	}
	return nil
}

func (e *emitter) op(out *[]cast.Stmt, op mir.Op, dir mir.Dir) error {
	switch op := op.(type) {
	case *mir.Ensure:
		if dir == mir.Marshal {
			*out = append(*out, call("flick_grow", encIdent, intLit(op.Bytes)))
		} else {
			*out = append(*out, failIf(callE("flick_dec_ensure", decIdent, intLit(op.Bytes))))
		}
	case *mir.EnsureDyn:
		count := e.countExpr(op.Count, op.Pres, dir)
		if dir == mir.Marshal {
			*out = append(*out, call("flick_grow_dyn", encIdent, intLit(op.Base), intLit(op.PerElem), count))
		} else {
			*out = append(*out, failIf(callE("flick_dec_ensure_dyn", decIdent, intLit(op.Base), intLit(op.PerElem), count)))
		}
	case *mir.Align:
		if dir == mir.Marshal {
			*out = append(*out, call("flick_enc_align", encIdent, intLit(op.N)))
		} else {
			*out = append(*out, failIf(callE("flick_dec_align", decIdent, intLit(op.N))))
		}
	case *mir.Item:
		x := e.valueExpr(op.Val)
		if dir == mir.Marshal {
			*out = append(*out, call(e.putName(op.Atom, op.Wire), encIdent, e.convPut(op.Atom, op.Wire, x)))
		} else {
			raw := callE(e.getName(op.Atom, op.Wire), decIdent)
			var rhs cast.Expr = raw
			if op.Atom.Kind == wire.BoolAtom {
				rhs = &cast.Binary{Op: "!=", L: raw, R: intLit(0)}
			} else if op.Pres != nil {
				if t, ok := op.Pres.Resolve().CType.(cast.Type); ok && op.Atom.Kind != wire.Float {
					rhs = &cast.CastExpr{To: t, Operand: raw}
				}
			}
			*out = append(*out, &cast.ExprStmt{E: &cast.Assign{Op: "=", L: x, R: rhs}})
		}
	case *mir.ConstItem:
		if dir == mir.Marshal {
			*out = append(*out, call(e.putName(op.Atom, op.Wire), encIdent, &cast.UIntLit{Value: op.Value}))
		} else {
			raw := callE(e.getName(op.Atom, op.Wire), decIdent)
			*out = append(*out, &cast.If{
				Cond: &cast.Binary{Op: "!=", L: raw, R: &cast.UIntLit{Value: op.Value}},
				Then: &cast.Block{Stmts: []cast.Stmt{&cast.Return{E: &cast.IntLit{Value: -1}}}},
			})
		}
	case *mir.LenItem:
		return e.lenItem(out, op, dir)
	case *mir.Bulk:
		return e.bulk(out, op, dir)
	case *mir.Loop:
		return e.loop(out, op, dir)
	case *mir.Opt:
		return e.opt(out, op, dir)
	case *mir.Switch:
		return e.swtch(out, op, dir)
	case *mir.Chunk:
		return e.chunk(out, op, dir)
	case *mir.CallSub:
		name := e.subFuncName(e.curProg, op.Sub, dir)
		arg := e.subArg(op.Arg)
		if dir == mir.Marshal {
			*out = append(*out, call(name, encIdent, arg))
		} else {
			*out = append(*out, &cast.If{
				Cond: &cast.Binary{Op: "!=", L: callE(name, decIdent, arg), R: intLit(0)},
				Then: &cast.Block{Stmts: []cast.Stmt{&cast.Return{E: &cast.IntLit{Value: -1}}}},
			})
		}
	default:
		return fmt.Errorf("cstub: unknown op %T", op)
	}
	return nil
}

func (e *emitter) subArg(r mir.Ref) cast.Expr {
	if d, ok := r.(*mir.Deref); ok {
		base, _ := e.refExpr(d.Base)
		return base
	}
	if p, ok := r.(*mir.Param); ok && e.ptrRoots[p.Name] {
		return &cast.Ident{Name: p.Name}
	}
	x, _ := e.refExpr(r)
	return &cast.Unary{Op: "&", Operand: x}
}

func (e *emitter) lenItem(out *[]cast.Stmt, op *mir.LenItem, dir mir.Dir) error {
	n := op.Pres.Resolve()
	bounded := op.Bound > 0 && op.Bound < uint64(0xFFFFFFFF)
	if dir == mir.Marshal {
		var count cast.Expr
		if n.Kind == pres.TerminatedKind {
			// Cache strlen once: exactly the optimization the paper's
			// alternate Mail_send presentation motivates.
			tmp := e.newTmp("len")
			x := e.valueExpr(op.Val)
			*out = append(*out, &cast.DeclStmt{
				Name: tmp, Type: &cast.Prim{Name: "uint32_t"},
				Init: &cast.CastExpr{To: &cast.Prim{Name: "uint32_t"},
					Operand: callE("strlen", x)},
			})
			e.lenVars[op.Val.String()] = tmp
			count = &cast.Ident{Name: tmp}
		} else {
			count = e.countExpr(op.Val, n, dir)
		}
		if bounded {
			*out = append(*out, call("FLICK_CHECK_BOUND", count, intLit(int(op.Bound))))
		}
		if op.Nul {
			count = &cast.Binary{Op: "+", L: count, R: intLit(1)}
		}
		*out = append(*out, call(fmt.Sprintf("flick_put_u32%s", e.ord()), encIdent, count))
		return nil
	}
	// Unmarshal: read, validate, allocate.
	tmp := e.newTmp("n")
	bound := 0
	if bounded {
		bound = int(op.Bound)
	}
	nul := 0
	if op.Nul {
		nul = 1
	}
	*out = append(*out,
		&cast.DeclStmt{Name: tmp, Type: &cast.Prim{Name: "uint32_t"}},
		failIf(callE(fmt.Sprintf("flick_dec_len_%s", e.ord()), decIdent, intLit(bound), intLit(nul),
			&cast.Unary{Op: "&", Operand: &cast.Ident{Name: tmp}})),
	)
	e.lenVars[op.Val.String()] = tmp
	switch n.Kind {
	case pres.CountedKind:
		base, ptr := e.refExpr(op.Val)
		elemT := cTypeOf(n.Elem())
		*out = append(*out,
			&cast.ExprStmt{E: &cast.Assign{Op: "=",
				L: &cast.Member{Base: base, Name: n.LengthField, Arrow: ptr},
				R: &cast.Ident{Name: tmp}}},
			&cast.ExprStmt{E: &cast.Assign{Op: "=",
				L: &cast.Member{Base: base, Name: n.BufferField, Arrow: ptr},
				R: callE("flick_alloc", &cast.Binary{Op: "*",
					L: &cast.Ident{Name: tmp}, R: &cast.SizeofType{Of: elemT}})}},
		)
	case pres.TerminatedKind:
		x := e.valueExpr(op.Val)
		*out = append(*out,
			&cast.ExprStmt{E: &cast.Assign{Op: "=", L: x,
				R: callE("flick_alloc", &cast.Binary{Op: "+",
					L: &cast.Ident{Name: tmp}, R: intLit(1)})}},
			&cast.ExprStmt{E: &cast.Assign{Op: "=",
				L: &cast.Index{Base: x, Index: &cast.Ident{Name: tmp}},
				R: intLit(0)}},
		)
	}
	return nil
}

func (e *emitter) bulk(out *[]cast.Stmt, op *mir.Bulk, dir mir.Dir) error {
	over := op.OverPres
	buf := e.bufExpr(op.Val, over)
	var count cast.Expr
	if op.Count >= 0 {
		count = intLit(op.Count)
	} else {
		count = e.countExpr(op.Val, over, dir)
	}
	var fn string
	var helperElem cast.Type
	byteWide := op.ElemWire == 1 && op.Atom.Kind != wire.BoolAtom
	switch {
	case byteWide:
		fn = "bytes"
	case op.Atom.Kind == wire.BoolAtom:
		fn = fmt.Sprintf("arrbool%d%s", op.ElemWire*8, e.ord())
		helperElem = &cast.Prim{Name: "uint8_t"}
	case op.Atom.Kind == wire.Float:
		fn = fmt.Sprintf("arrf%d%s", op.Atom.Bits, e.ord())
	default:
		fn = fmt.Sprintf("arr%d%s", op.ElemWire*8, e.ord())
		helperElem = &cast.Prim{Name: fmt.Sprintf("uint%d_t", op.ElemWire*8)}
	}
	if helperElem != nil {
		// The helpers take unsigned element pointers; presented arrays
		// may be signed or enum-typed.
		buf = &cast.CastExpr{To: cast.PtrTo(helperElem), Operand: buf}
	}
	if dir == mir.Marshal {
		*out = append(*out, call("flick_put_"+fn, encIdent, buf, count))
	} else {
		*out = append(*out, call("flick_get_"+fn, decIdent, buf, count))
	}
	return nil
}

func (e *emitter) loop(out *[]cast.Stmt, op *mir.Loop, dir mir.Dir) error {
	over := op.OverPres
	iv := "_i" + strings.TrimPrefix(op.Var, "e")
	var count cast.Expr
	if op.Count >= 0 {
		count = intLit(op.Count)
	} else {
		count = e.countExpr(op.Over, over, dir)
	}
	buf := e.bufExpr(op.Over, over)
	e.elemExpr[op.Var] = &cast.Index{Base: buf, Index: &cast.Ident{Name: iv}}
	var body []cast.Stmt
	if err := e.ops(&body, op.Body, dir); err != nil {
		return err
	}
	delete(e.elemExpr, op.Var)
	*out = append(*out, &cast.For{
		Init: &cast.DeclStmt{Name: iv, Type: &cast.Prim{Name: "uint32_t"}, Init: intLit(0)},
		Cond: &cast.Binary{Op: "<", L: &cast.Ident{Name: iv}, R: count},
		Post: &cast.Postfix{Operand: &cast.Ident{Name: iv}, Op: "++"},
		Body: &cast.Block{Stmts: body},
	})
	return nil
}

func (e *emitter) opt(out *[]cast.Stmt, op *mir.Opt, dir mir.Dir) error {
	x := e.valueExpr(op.Val)
	flagW := op.Wire
	if dir == mir.Marshal {
		var thenStmts []cast.Stmt
		thenStmts = append(thenStmts, call(e.putName(wire.Bool, flagW), encIdent, intLit(1)))
		if err := e.ops(&thenStmts, op.Body, dir); err != nil {
			return err
		}
		*out = append(*out, &cast.If{
			Cond: &cast.Binary{Op: "!=", L: x, R: &cast.Ident{Name: "NULL"}},
			Then: &cast.Block{Stmts: thenStmts},
			Else: &cast.Block{Stmts: []cast.Stmt{
				call(e.putName(wire.Bool, flagW), encIdent, intLit(0)),
			}},
		})
		return nil
	}
	elemT := cTypeOf(op.Pres.Resolve().Elem())
	var thenStmts []cast.Stmt
	thenStmts = append(thenStmts, &cast.ExprStmt{E: &cast.Assign{Op: "=", L: x,
		R: callE("flick_alloc", &cast.SizeofType{Of: elemT})}})
	if err := e.ops(&thenStmts, op.Body, dir); err != nil {
		return err
	}
	*out = append(*out, &cast.If{
		Cond: callE(e.getName(wire.Bool, flagW), decIdent),
		Then: &cast.Block{Stmts: thenStmts},
		Else: &cast.Block{Stmts: []cast.Stmt{
			&cast.ExprStmt{E: &cast.Assign{Op: "=", L: x, R: &cast.Ident{Name: "NULL"}}},
		}},
	})
	return nil
}

func (e *emitter) swtch(out *[]cast.Stmt, op *mir.Switch, dir mir.Dir) error {
	on := e.valueExpr(op.On)
	if dir == mir.Marshal {
		*out = append(*out, call(e.putName(op.Atom, op.Wire), encIdent, e.convPut(op.Atom, op.Wire, on)))
	} else {
		raw := callE(e.getName(op.Atom, op.Wire), decIdent)
		var rhs cast.Expr = raw
		if op.Pres != nil {
			if t, ok := op.Pres.DiscrimCType.(cast.Type); ok {
				rhs = &cast.CastExpr{To: t, Operand: raw}
			}
		}
		*out = append(*out, &cast.ExprStmt{E: &cast.Assign{Op: "=", L: on, R: rhs}})
	}
	sw := &cast.Switch{On: on}
	for _, c := range op.Cases {
		var vals []cast.Expr
		for _, v := range c.Values {
			vals = append(vals, &cast.IntLit{Value: v})
		}
		var body []cast.Stmt
		if err := e.ops(&body, c.Body, dir); err != nil {
			return err
		}
		body = append(body, &cast.Break{})
		sw.Cases = append(sw.Cases, cast.SwitchCase{Values: vals, Body: body})
	}
	var def []cast.Stmt
	if op.HasDefault {
		if err := e.ops(&def, op.Default, dir); err != nil {
			return err
		}
		def = append(def, &cast.Break{})
	} else if dir == mir.Unmarshal {
		def = []cast.Stmt{&cast.Return{E: &cast.IntLit{Value: -1}}}
	} else {
		def = []cast.Stmt{call("flick_bad_union")}
	}
	sw.Cases = append(sw.Cases, cast.SwitchCase{Default: true, Body: def})
	*out = append(*out, sw)
	return nil
}

func (e *emitter) chunk(out *[]cast.Stmt, op *mir.Chunk, dir mir.Dir) error {
	b := e.newTmp("b")
	if dir == mir.Marshal {
		*out = append(*out, &cast.DeclStmt{
			Name: b, Type: cast.PtrTo(&cast.Prim{Name: "unsigned char"}),
			Init: callE("flick_enc_next", encIdent, intLit(op.Size)),
		})
	} else {
		*out = append(*out, &cast.DeclStmt{
			Name: b, Type: cast.PtrTo(&cast.Prim{Name: "unsigned char"}),
			Init: callE("flick_dec_next", decIdent, intLit(op.Size)),
		})
	}
	bID := &cast.Ident{Name: b}
	for _, it := range op.Items {
		if err := e.chunkItem(out, bID, it, dir); err != nil {
			return err
		}
	}
	return nil
}

func (e *emitter) chunkMacro(prefix string, w int, a wire.Atom) string {
	if a.Kind == wire.Float {
		return fmt.Sprintf("FLICK_%s_F%d%s", prefix, a.Bits, e.ORD())
	}
	if w == 1 {
		return fmt.Sprintf("FLICK_%s_U8", prefix)
	}
	return fmt.Sprintf("FLICK_%s_U%d%s", prefix, w*8, e.ORD())
}

func (e *emitter) chunkItem(out *[]cast.Stmt, b cast.Expr, it mir.ChunkItem, dir mir.Dir) error {
	off := intLit(it.Off)
	if dir == mir.Marshal {
		switch {
		case it.Const != nil:
			*out = append(*out, call(e.chunkMacro("PUT", it.Wire, it.Atom), b, off, &cast.UIntLit{Value: *it.Const}))
		case it.IsLen:
			n := it.Pres.Resolve()
			var count cast.Expr
			if n.Kind == pres.TerminatedKind {
				tmp := e.newTmp("len")
				x := e.valueExpr(it.Val)
				*out = append(*out, &cast.DeclStmt{
					Name: tmp, Type: &cast.Prim{Name: "uint32_t"},
					Init: &cast.CastExpr{To: &cast.Prim{Name: "uint32_t"}, Operand: callE("strlen", x)},
				})
				e.lenVars[it.Val.String()] = tmp
				count = &cast.Ident{Name: tmp}
			} else {
				count = e.countExpr(it.Val, n, dir)
			}
			if it.Bound > 0 && it.Bound < uint64(0xFFFFFFFF) {
				*out = append(*out, call("FLICK_CHECK_BOUND", count, intLit(int(it.Bound))))
			}
			if it.Nul {
				count = &cast.Binary{Op: "+", L: count, R: intLit(1)}
			}
			*out = append(*out, call(e.chunkMacro("PUT", it.Wire, wire.U32), b, off, count))
		default:
			x := e.valueExpr(it.Val)
			*out = append(*out, call(e.chunkMacro("PUT", it.Wire, it.Atom), b, off, e.convPut(it.Atom, it.Wire, x)))
		}
		return nil
	}
	raw := callE(e.chunkMacro("GET", it.Wire, it.Atom), b, off)
	switch {
	case it.Const != nil:
		*out = append(*out, &cast.If{
			Cond: &cast.Binary{Op: "!=", L: raw, R: &cast.UIntLit{Value: *it.Const}},
			Then: &cast.Block{Stmts: []cast.Stmt{&cast.Return{E: &cast.IntLit{Value: -1}}}},
		})
	case it.IsLen:
		n := it.Pres.Resolve()
		tmp := e.newTmp("n")
		bound := 0
		if it.Bound > 0 && it.Bound < uint64(0xFFFFFFFF) {
			bound = int(it.Bound)
		}
		nul := 0
		if it.Nul {
			nul = 1
		}
		*out = append(*out,
			&cast.DeclStmt{Name: tmp, Type: &cast.Prim{Name: "uint32_t"}, Init: raw},
			failIf(callE("flick_check_len", decIdent, &cast.Ident{Name: tmp}, intLit(bound), intLit(nul),
				&cast.Unary{Op: "&", Operand: &cast.Ident{Name: tmp}})),
		)
		e.lenVars[it.Val.String()] = tmp
		switch n.Kind {
		case pres.CountedKind:
			base, ptr := e.refExpr(it.Val)
			elemT := cTypeOf(n.Elem())
			*out = append(*out,
				&cast.ExprStmt{E: &cast.Assign{Op: "=",
					L: &cast.Member{Base: base, Name: n.LengthField, Arrow: ptr},
					R: &cast.Ident{Name: tmp}}},
				&cast.ExprStmt{E: &cast.Assign{Op: "=",
					L: &cast.Member{Base: base, Name: n.BufferField, Arrow: ptr},
					R: callE("flick_alloc", &cast.Binary{Op: "*",
						L: &cast.Ident{Name: tmp}, R: &cast.SizeofType{Of: elemT}})}},
			)
		case pres.TerminatedKind:
			x := e.valueExpr(it.Val)
			*out = append(*out,
				&cast.ExprStmt{E: &cast.Assign{Op: "=", L: x,
					R: callE("flick_alloc", &cast.Binary{Op: "+", L: &cast.Ident{Name: tmp}, R: intLit(1)})}},
				&cast.ExprStmt{E: &cast.Assign{Op: "=",
					L: &cast.Index{Base: x, Index: &cast.Ident{Name: tmp}}, R: intLit(0)}},
			)
		}
	default:
		x := e.valueExpr(it.Val)
		var rhs cast.Expr = raw
		if it.Atom.Kind == wire.BoolAtom {
			rhs = &cast.Binary{Op: "!=", L: raw, R: intLit(0)}
		} else if it.Pres != nil {
			if t, ok := it.Pres.Resolve().CType.(cast.Type); ok && it.Atom.Kind != wire.Float {
				rhs = &cast.CastExpr{To: t, Operand: raw}
			}
		}
		*out = append(*out, &cast.ExprStmt{E: &cast.Assign{Op: "=", L: x, R: rhs}})
	}
	return nil
}
