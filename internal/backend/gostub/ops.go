package gostub

import (
	"fmt"
	"strings"

	"flick/internal/mir"
	"flick/internal/wire"
)

// refExpr renders a mir value path as a Go expression.
func (e *emitter) refExpr(r mir.Ref) string {
	switch r := r.(type) {
	case *mir.Param:
		if m, ok := e.refMap[r.Name]; ok {
			return m
		}
		return r.Name
	case *mir.Field:
		return e.refExpr(r.Base) + "." + r.Name
	case *mir.Elem:
		if m, ok := e.refMap[r.Var]; ok {
			return m
		}
		return r.Var
	case *mir.Len:
		return "len(" + e.refExpr(r.Base) + ")"
	case *mir.Deref:
		return "(*" + e.refExpr(r.Base) + ")"
	default:
		panic(fmt.Sprintf("gostub: unknown ref %T", r))
	}
}

// countExpr renders the element count of a counted value: the decoded
// length variable on the unmarshal side when one exists, len(x)
// otherwise.
func (e *emitter) countExpr(r mir.Ref, dir mir.Dir) string {
	if dir == mir.Unmarshal {
		if v, ok := e.lenVars[r.String()]; ok {
			return v
		}
	}
	return "len(" + e.refExpr(r) + ")"
}

// convPut converts a presented value expression to the unsigned wire
// representation.
func (e *emitter) convPut(a wire.Atom, w int, src string) string {
	switch a.Kind {
	case wire.BoolAtom:
		if w == 1 {
			return "rt.B2U8(" + src + ")"
		}
		return "rt.B2U32(" + src + ")"
	case wire.Float:
		e.usesMath = true
		if a.Bits == 32 {
			return "math.Float32bits(" + src + ")"
		}
		return "math.Float64bits(" + src + ")"
	}
	switch w {
	case 1:
		return "byte(" + src + ")"
	case 2:
		return "uint16(" + src + ")"
	case 4:
		return "uint32(" + src + ")"
	default:
		return "uint64(" + src + ")"
	}
}

// putStmt emits one scalar write in the current style.
func (e *emitter) putStmt(a wire.Atom, w int, src string) string {
	v := e.convPut(a, w, src)
	suffix := e.ord()
	if w == 1 {
		suffix = ""
	}
	switch {
	case e.vtbl:
		return fmt.Sprintf("rt.Vtbl.P%d%s(e, %s)", w*8, suffix, v)
	case e.checked:
		return fmt.Sprintf("rt.NPutU%d%s(e, %s)", w*8, suffix, v)
	default:
		return fmt.Sprintf("e.PutU%d%s(%s)", w*8, suffix, v)
	}
}

// getRaw renders one scalar wire read in the current style.
func (e *emitter) getRaw(w int) string {
	suffix := e.ord()
	if w == 1 {
		suffix = ""
	}
	switch {
	case e.vtbl:
		return fmt.Sprintf("rt.Vtbl.G%d%s(d)", w*8, suffix)
	case e.checked:
		return fmt.Sprintf("rt.NGetU%d%s(d)", w*8, suffix)
	default:
		return fmt.Sprintf("d.U%d%s()", w*8, suffix)
	}
}

// convGet converts a raw wire read to the presented type.
func (e *emitter) convGet(a wire.Atom, ctype, raw string) string {
	switch a.Kind {
	case wire.BoolAtom:
		return raw + " != 0"
	case wire.Float:
		e.usesMath = true
		if a.Bits == 32 {
			return "math.Float32frombits(" + raw + ")"
		}
		return "math.Float64frombits(" + raw + ")"
	}
	if ctype == "" {
		ctype = goTypeForAtom(a)
	}
	return ctype + "(" + raw + ")"
}

func goTypeForAtom(a wire.Atom) string {
	prefix := "uint"
	if a.Kind == wire.SInt {
		prefix = "int"
	}
	if a.Kind == wire.CharAtom && a.Bits == 8 {
		return "byte"
	}
	return fmt.Sprintf("%s%d", prefix, a.Bits)
}

// putName names the checked put for the given width (used for protocol
// fields emitted outside mir programs).
func (e *emitter) putName(w int, checked bool) string {
	suffix := e.ord()
	if w == 1 {
		suffix = ""
	}
	if checked {
		return fmt.Sprintf("e.PutU%d%sC", w*8, suffix)
	}
	return fmt.Sprintf("e.PutU%d%s", w*8, suffix)
}

// ops emits an op list. In -zerocopy mode the decode-side alias bulks
// of the list are noted first, so the length items that precede them
// (as siblings in the same list) suppress their allocation: the
// storage arrives as an arena view from AliasNext instead.
func (e *emitter) ops(ops []mir.Op, dir mir.Dir) error {
	if e.zc && dir == mir.Unmarshal {
		for _, op := range ops {
			if b, ok := op.(*mir.Bulk); ok && e.zcAliasDecode(b) {
				e.zcVals[b.Val.String()] = true
			}
		}
	}
	for _, op := range ops {
		if err := e.op(op, dir); err != nil {
			return err
		}
	}
	return nil
}

// zcBulk reports whether op's region takes the zero-copy path: the
// emitter is in -zerocopy mode and the region carries a prover-signed
// alias-safe proof (which the zerocopy verifier re-derived before
// emission ran — the emitter never trusts an unverified proof).
func (e *emitter) zcBulk(op *mir.Bulk) bool {
	return e.zc && op.Alias != nil && op.Alias.Class == mir.AliasSafe
}

// zcAliasDecode reports whether op decodes as an arena-borrowed view
// (the exact predicate bulk() uses to choose AliasNext, so the
// make-suppression above can never disagree with the emission).
func (e *emitter) zcAliasDecode(op *mir.Bulk) bool {
	return e.zcBulk(op) && op.ElemWire == 1 && op.Atom.Kind != wire.BoolAtom &&
		op.Count < 0 && ctypeOfBulk(op) != "string"
}

func (e *emitter) op(op mir.Op, dir mir.Dir) error {
	switch op := op.(type) {
	case *mir.Ensure:
		if e.checked {
			return nil // baselines test space per datum inside the runtime calls
		}
		if dir == mir.Marshal {
			e.pf("e.Grow(%d)", op.Bytes)
		} else {
			e.pf("if !d.Ensure(%d) {", op.Bytes)
			e.emitRetErr()
			e.pf("}")
		}
	case *mir.EnsureDyn:
		if e.checked {
			return nil
		}
		count := e.countExpr(op.Count, dir)
		if dir == mir.Marshal {
			e.pf("e.GrowDyn(%d, %d, %s)", op.Base, op.PerElem, count)
		} else {
			e.pf("if !d.EnsureDyn(%d, %d, %s) {", op.Base, op.PerElem, count)
			e.emitRetErr()
			e.pf("}")
		}
	case *mir.Align:
		if dir == mir.Marshal {
			e.pf("e.Align(%d)", op.N)
		} else {
			e.pf("d.Align(%d)", op.N)
		}
	case *mir.Item:
		x := e.refExpr(op.Val)
		if dir == mir.Marshal {
			e.pf("%s", e.putStmt(op.Atom, op.Wire, x))
		} else {
			ct := ""
			if op.Pres != nil {
				ct = ctypeOf(op.Pres)
			}
			e.pf("%s = %s", x, e.convGet(op.Atom, ct, e.getRaw(op.Wire)))
		}
	case *mir.ConstItem:
		if dir == mir.Marshal {
			e.pf("%s", e.putConst(op.Atom, op.Wire, op.Value))
		} else {
			e.pf("if !d.CheckConst(uint64(%s), %d) {", e.getRaw(op.Wire), op.Value)
			e.emitRetErr()
			e.pf("}")
		}
	case *mir.LenItem:
		return e.lenItem(op, dir)
	case *mir.Bulk:
		return e.bulk(op, dir)
	case *mir.Loop:
		return e.loop(op, dir)
	case *mir.Opt:
		return e.opt(op, dir)
	case *mir.Switch:
		return e.swtch(op, dir)
	case *mir.Chunk:
		return e.chunk(op, dir)
	case *mir.CallSub:
		name := e.subFuncName(e.curProg, op.Sub, dir)
		arg := e.subArg(op.Arg)
		if dir == mir.Marshal {
			e.pf("%s(e, %s)", name, arg)
		} else {
			e.pf("if !%s(d, %s) {", name, arg)
			e.emitRetErr()
			e.pf("}")
		}
	default:
		return fmt.Errorf("gostub: unknown op %T", op)
	}
	return nil
}

// putConst writes a literal protocol value.
func (e *emitter) putConst(a wire.Atom, w int, v uint64) string {
	suffix := e.ord()
	if w == 1 {
		suffix = ""
	}
	switch {
	case e.vtbl:
		return fmt.Sprintf("rt.Vtbl.P%d%s(e, %d)", w*8, suffix, v)
	case e.checked:
		return fmt.Sprintf("rt.NPutU%d%s(e, %d)", w*8, suffix, v)
	default:
		return fmt.Sprintf("e.PutU%d%s(%d)", w*8, suffix, v)
	}
}

// subArg renders the address-of expression handed to an out-of-line
// routine.
func (e *emitter) subArg(r mir.Ref) string {
	if d, ok := r.(*mir.Deref); ok {
		return e.refExpr(d.Base)
	}
	return "&" + e.refExpr(r)
}

func (e *emitter) lenItem(op *mir.LenItem, dir mir.Dir) error {
	x := e.refExpr(op.Val)
	ct := ""
	if op.Pres != nil {
		ct = ctypeOf(op.Pres)
	}
	bounded := op.Bound > 0 && op.Bound < uint64(0xFFFFFFFF)
	if dir == mir.Marshal {
		if bounded {
			e.pf("rt.CheckBound(len(%s), %d)", x, op.Bound)
		}
		src := fmt.Sprintf("uint32(len(%s))", x)
		if op.Nul {
			src = fmt.Sprintf("uint32(len(%s)+1)", x)
		}
		suffix := e.ord()
		switch {
		case e.vtbl:
			e.pf("rt.Vtbl.P32%s(e, %s)", suffix, src)
		case e.checked:
			e.pf("rt.NPutU32%s(e, %s)", suffix, src)
		default:
			e.pf("e.PutU32%s(%s)", suffix, src)
		}
		return nil
	}
	// Unmarshal: read + validate + allocate.
	n := e.newTmp("n")
	ok := e.newTmp("ok")
	bound := uint64(0)
	if bounded {
		bound = op.Bound
	}
	if e.checked {
		e.pf("if !d.Ensure(4) {")
		e.emitRetErr()
		e.pf("}")
	}
	e.pf("%s, %s := d.Len(rt.%s, %d, %v)", n, ok, e.ord(), bound, op.Nul)
	e.pf("if !%s {", ok)
	e.emitRetErr()
	e.pf("}")
	e.lenVars[op.Val.String()] = n
	if strings.HasPrefix(ct, "[]") || ct == "ObjectKey" {
		// Skip the allocation when the bulk that follows aliases the
		// receive arena: AliasNext supplies the storage.
		if !(e.zc && e.zcVals[op.Val.String()]) {
			e.pf("%s = make(%s, %s)", x, ct, n)
		}
	}
	return nil
}

func (e *emitter) bulk(op *mir.Bulk, dir mir.Dir) error {
	over := ctypeOfBulk(op)
	x := e.refExpr(op.Val)
	countExpr := ""
	fixed := op.Count >= 0
	if fixed {
		countExpr = fmt.Sprintf("%d", op.Count)
	} else {
		countExpr = e.countExpr(op.Val, dir)
	}
	byteWide := op.ElemWire == 1 && op.Atom.Kind != wire.BoolAtom

	if dir == mir.Marshal {
		switch {
		case over == "string":
			e.pf("e.PutString(%s)", x)
		case byteWide && e.zcBulk(op):
			// Prover-signed alias-safe region: sent by reference
			// (vectored) when it clears the runtime threshold.
			e.pf("e.PutBytesZC(%s)", sliceExprOrSelf(over, x))
		case byteWide:
			e.pf("e.PutBytes(%s)", sliceExprOrSelf(over, x))
		case op.Atom.Kind == wire.BoolAtom:
			e.pf("rt.PutSliceBool(e.Next(%d*%s), %s, %d, rt.%s)",
				op.ElemWire, countExpr, sliceExprOrSelf(over, x), op.ElemWire, e.ord())
		default:
			e.pf("rt.%s(e.Next(%d*%s), %s)",
				e.bulkHelper("Put", op), op.ElemWire, countExpr, sliceExprOrSelf(over, x))
		}
		return nil
	}
	// Unmarshal.
	switch {
	case over == "string":
		n, okLen := e.lenVars[op.Val.String()]
		if !okLen {
			return fmt.Errorf("gostub: bulk string read without preceding length for %s", x)
		}
		e.pf("%s = string(d.Next(%s))", x, n)
	case byteWide && e.zcAliasDecode(op):
		// Prover-signed alias-safe region: borrow a view of the receive
		// arena instead of allocating and copying. The preceding length
		// item skipped its make for exactly this value.
		view := fmt.Sprintf("d.AliasNext(%s)", e.countExpr(op.Val, dir))
		if over != "" && over != "[]byte" {
			view = over + "(" + view + ")"
		}
		e.pf("%s = %s", x, view)
	case byteWide:
		if fixed {
			e.pf("copy(%s[:], d.Next(%d))", x, op.Count)
		} else {
			e.pf("copy(%s, d.Next(len(%s)))", x, x)
		}
	case op.Atom.Kind == wire.BoolAtom:
		e.pf("rt.GetSliceBool(%s, d.Next(%d*%s), %d, rt.%s)",
			sliceExprOrSelf(over, x), op.ElemWire, lenOfTarget(fixed, countExpr, x), op.ElemWire, e.ord())
	default:
		e.pf("rt.%s(%s, d.Next(%d*%s))",
			e.bulkHelper("Get", op), sliceExprOrSelf(over, x), op.ElemWire, lenOfTarget(fixed, countExpr, x))
	}
	return nil
}

func lenOfTarget(fixed bool, countExpr, x string) string {
	if fixed {
		return countExpr
	}
	return "len(" + x + ")"
}

// sliceExprOrSelf appends [:] for fixed-array targets.
func sliceExprOrSelf(overCType, x string) string {
	if strings.HasPrefix(overCType, "[") && !strings.HasPrefix(overCType, "[]") {
		return x + "[:]"
	}
	return x
}

func ctypeOfBulk(op *mir.Bulk) string {
	if op.OverPres != nil {
		if s, ok := op.OverPres.Resolve().CType.(string); ok {
			return s
		}
	}
	return ""
}

func (e *emitter) bulkHelper(dirName string, op *mir.Bulk) string {
	if op.Atom.Kind == wire.Float {
		return fmt.Sprintf("%sSliceF%d%s", dirName, op.Atom.Bits, e.ord())
	}
	return fmt.Sprintf("%sSlice%d%s", dirName, op.ElemWire*8, e.ord())
}

func (e *emitter) loop(op *mir.Loop, dir mir.Dir) error {
	over := e.refExpr(op.Over)
	overCT := ""
	if op.OverPres != nil {
		overCT = ctypeOf(op.OverPres)
	}
	iv := "i" + strings.TrimPrefix(op.Var, "e")

	// Unmarshal into a Go string: decode through a byte scratch.
	if dir == mir.Unmarshal && overCT == "string" {
		n, okLen := e.lenVars[op.Over.String()]
		if !okLen {
			return fmt.Errorf("gostub: string loop read without preceding length for %s", over)
		}
		scratch := e.newTmp("b")
		e.pf("%s := make([]byte, %s)", scratch, n)
		e.pf("for %s := range %s {", iv, scratch)
		e.indent++
		saved := e.bindElem(op.Var, scratch+"["+iv+"]")
		if err := e.ops(op.Body, dir); err != nil {
			return err
		}
		e.restoreElem(op.Var, saved)
		e.indent--
		e.pf("}")
		e.pf("%s = string(%s)", over, scratch)
		return nil
	}

	e.pf("for %s := 0; %s < len(%s); %s++ {", iv, iv, over, iv)
	e.indent++
	saved := e.bindElem(op.Var, over+"["+iv+"]")
	if err := e.ops(op.Body, dir); err != nil {
		return err
	}
	e.restoreElem(op.Var, saved)
	e.indent--
	e.pf("}")
	return nil
}

func (e *emitter) bindElem(v, expr string) (old string) {
	old = e.refMap[v]
	e.refMap[v] = expr
	return old
}

func (e *emitter) restoreElem(v, old string) {
	if old == "" {
		delete(e.refMap, v)
	} else {
		e.refMap[v] = old
	}
}

func (e *emitter) opt(op *mir.Opt, dir mir.Dir) error {
	x := e.refExpr(op.Val)
	if dir == mir.Marshal {
		e.pf("if %s != nil {", x)
		e.indent++
		e.pf("%s", e.putConst(wire.Bool, op.Wire, 1))
		if err := e.ops(op.Body, dir); err != nil {
			return err
		}
		e.indent--
		e.pf("} else {")
		e.indent++
		e.pf("%s", e.putConst(wire.Bool, op.Wire, 0))
		e.indent--
		e.pf("}")
		return nil
	}
	elemType := strings.TrimPrefix(ctypeOf(op.Pres), "*")
	e.pf("if %s != 0 {", e.getRaw(op.Wire))
	e.indent++
	e.pf("%s = new(%s)", x, elemType)
	if err := e.ops(op.Body, dir); err != nil {
		return err
	}
	e.indent--
	e.pf("} else {")
	e.indent++
	e.pf("%s = nil", x)
	e.indent--
	e.pf("}")
	return nil
}

func (e *emitter) swtch(op *mir.Switch, dir mir.Dir) error {
	on := e.refExpr(op.On)
	isBool := op.Atom.Kind == wire.BoolAtom
	if dir == mir.Marshal {
		e.pf("%s", e.putStmt(op.Atom, op.Wire, on))
	} else {
		ct := ""
		if op.Pres != nil {
			if s, ok := op.Pres.DiscrimCType.(string); ok {
				ct = s
			}
		}
		e.pf("%s = %s", on, e.convGet(op.Atom, ct, e.getRaw(op.Wire)))
	}
	e.pf("switch %s {", on)
	for _, c := range op.Cases {
		labels := make([]string, len(c.Values))
		for i, v := range c.Values {
			if isBool {
				if v == 0 {
					labels[i] = "false"
				} else {
					labels[i] = "true"
				}
			} else {
				labels[i] = fmt.Sprintf("%d", v)
			}
		}
		e.pf("case %s:", strings.Join(labels, ", "))
		e.indent++
		if err := e.ops(c.Body, dir); err != nil {
			return err
		}
		e.indent--
	}
	e.pf("default:")
	e.indent++
	switch {
	case op.HasDefault:
		if err := e.ops(op.Default, dir); err != nil {
			return err
		}
	case dir == mir.Marshal:
		e.pf("panic(\"flick: unknown union discriminator\")")
	default:
		e.pf("d.Fail(rt.ErrBadUnion)")
		e.emitRetErrFlat()
	}
	e.indent--
	e.pf("}")
	return nil
}

// emitRetErrFlat writes the abort sequence at the current indent (for
// contexts already inside a block).
func (e *emitter) emitRetErrFlat() {
	for _, line := range strings.Split(e.retErr, "\n") {
		e.pf("%s", line)
	}
}

func (e *emitter) chunk(op *mir.Chunk, dir mir.Dir) error {
	e.usesBinary = true
	b := e.newTmp("b")
	if dir == mir.Marshal {
		e.pf("%s := e.Next(%d)", b, op.Size)
		for _, it := range op.Items {
			if err := e.chunkPut(b, it); err != nil {
				return err
			}
		}
		return nil
	}
	e.pf("%s := d.Next(%d)", b, op.Size)
	for _, it := range op.Items {
		if err := e.chunkGet(b, it); err != nil {
			return err
		}
	}
	return nil
}

func (e *emitter) chunkPut(b string, it mir.ChunkItem) error {
	window := fmt.Sprintf("%s[%d:]", b, it.Off)
	switch {
	case it.Const != nil:
		e.pf("%s", e.binPut(window, b, it, fmt.Sprintf("%d", *it.Const)))
	case it.IsLen:
		x := e.refExpr(it.Val)
		if it.Bound > 0 && it.Bound < uint64(0xFFFFFFFF) {
			e.pf("rt.CheckBound(len(%s), %d)", x, it.Bound)
		}
		src := fmt.Sprintf("uint32(len(%s))", x)
		if it.Nul {
			src = fmt.Sprintf("uint32(len(%s)+1)", x)
		}
		e.pf("%s", e.binPut(window, b, it, src))
	default:
		v := e.convPut(it.Atom, it.Wire, e.refExpr(it.Val))
		e.pf("%s", e.binPut(window, b, it, v))
	}
	return nil
}

func (e *emitter) binPut(window, b string, it mir.ChunkItem, v string) string {
	switch it.Wire {
	case 1:
		return fmt.Sprintf("%s[%d] = %s", b, it.Off, v)
	case 2:
		return fmt.Sprintf("%s.PutUint16(%s, %s)", e.binOrd(), window, v)
	case 4:
		return fmt.Sprintf("%s.PutUint32(%s, %s)", e.binOrd(), window, v)
	default:
		return fmt.Sprintf("%s.PutUint64(%s, %s)", e.binOrd(), window, v)
	}
}

func (e *emitter) binGet(b string, it mir.ChunkItem) string {
	window := fmt.Sprintf("%s[%d:]", b, it.Off)
	switch it.Wire {
	case 1:
		return fmt.Sprintf("%s[%d]", b, it.Off)
	case 2:
		return fmt.Sprintf("%s.Uint16(%s)", e.binOrd(), window)
	case 4:
		return fmt.Sprintf("%s.Uint32(%s)", e.binOrd(), window)
	default:
		return fmt.Sprintf("%s.Uint64(%s)", e.binOrd(), window)
	}
}

func (e *emitter) chunkGet(b string, it mir.ChunkItem) error {
	raw := e.binGet(b, it)
	switch {
	case it.Const != nil:
		e.pf("if !d.CheckConst(uint64(%s), %d) {", raw, *it.Const)
		e.emitRetErr()
		e.pf("}")
	case it.IsLen:
		x := e.refExpr(it.Val)
		ct := ""
		if it.Pres != nil {
			ct = ctypeOf(it.Pres)
		}
		n := e.newTmp("n")
		ok := e.newTmp("ok")
		bound := uint64(0)
		if it.Bound > 0 && it.Bound < uint64(0xFFFFFFFF) {
			bound = it.Bound
		}
		e.pf("%s, %s := d.CheckLen(%s, %d, %v)", n, ok, raw, bound, it.Nul)
		e.pf("if !%s {", ok)
		e.emitRetErr()
		e.pf("}")
		e.lenVars[it.Val.String()] = n
		if strings.HasPrefix(ct, "[]") || ct == "ObjectKey" {
			// Same suppression as lenItem: an alias bulk supplies the
			// storage for this value.
			if !(e.zc && e.zcVals[it.Val.String()]) {
				e.pf("%s = make(%s, %s)", x, ct, n)
			}
		}
	default:
		ct := ""
		if it.Pres != nil {
			ct = ctypeOf(it.Pres)
		}
		e.pf("%s = %s", e.refExpr(it.Val), e.convGet(it.Atom, ct, raw))
	}
	return nil
}
