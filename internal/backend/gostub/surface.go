package gostub

import (
	"fmt"
	"strings"

	"flick/internal/pgen"
	"flick/internal/presc"
)

// A Surface is one presentation of the generated client API over the
// shared marshal/unmarshal core: the MIR walk renders the wire code
// exactly once per operation, and each surface contributes only its
// call-shape shell (the paper's AOI→PRES-C flexibility claim, applied
// to call styles instead of language mappings).
//
// Surfaces are additive: every surface in Config.Surfaces emits its
// methods onto the same generated client type, so one client value
// exposes Sum, SumAsync, and FetchStream side by side. A surface never
// emits marshal code — it calls the Marshal*/Unmarshal* functions the
// core emitted — which is what keeps N surfaces O(N) shells over O(1)
// optimized wire code.
type Surface interface {
	// Name is the surface's selector spelling ("sync", "async",
	// "stream") as accepted by ParseSurfaces.
	Name() string
	// clientFuncs renders this surface's client-side methods (and any
	// per-operation support types) for the interface's stubs.
	clientFuncs(e *emitter, clientType string, stubs []*presc.Stub) error
}

// DefaultSurfaces is the classic presentation: blocking sync stubs
// only. A nil Config.Surfaces means exactly this, which is what keeps
// the refactored emitter byte-identical for every pre-surface caller.
func DefaultSurfaces() []Surface { return []Surface{SyncSurface{}} }

// ParseSurfaces resolves a comma-separated surface list ("sync,async")
// into Surface values, preserving order and rejecting duplicates.
func ParseSurfaces(list string) ([]Surface, error) {
	var out []Surface
	seen := map[string]bool{}
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if seen[name] {
			return nil, fmt.Errorf("gostub: duplicate surface %q", name)
		}
		seen[name] = true
		switch name {
		case "sync":
			out = append(out, SyncSurface{})
		case "async":
			out = append(out, AsyncSurface{})
		case "stream":
			out = append(out, StreamSurface{})
		case "ctx":
			out = append(out, CtxSurface{})
		default:
			return nil, fmt.Errorf("gostub: unknown surface %q (supported: sync, async, stream, ctx)", name)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("gostub: empty surface list")
	}
	return out, nil
}

// surfaces returns the configured surface set, defaulting to sync.
func (e *emitter) surfaces() []Surface {
	if len(e.cfg.Surfaces) == 0 {
		return DefaultSurfaces()
	}
	return e.cfg.Surfaces
}

// inParamDecls renders the request-parameter declarations of a stub's
// method signature (the "in" half of the sync signature: value-typed,
// presentation spellings).
func inParamDecls(s *presc.Stub) []string {
	var out []string
	for _, p := range s.RequestParams() {
		ct, _ := p.CType.(string)
		if ct == "" {
			n := p.Request
			if n == nil {
				n = p.Reply
			}
			ct = ctypeOf(n)
		}
		out = append(out, p.Name+" "+ct)
	}
	return out
}

// replyResultDecls renders the reply-side result declarations of a
// stub (ret first, then out/inout params with the sync signature's
// "Out" suffix for inout, then err).
func replyResultDecls(s *presc.Stub) []string {
	var out []string
	if s.Result != nil {
		ct, _ := s.Result.CType.(string)
		if ct == "" {
			ct = ctypeOf(s.Result.Reply)
		}
		out = append(out, "ret "+ct)
	}
	for _, p := range s.ReplyParams() {
		name := p.Name
		if p.Role == presc.RoleBoth {
			name += "Out"
		}
		ct, _ := p.CType.(string)
		if ct == "" {
			ct = ctypeOf(p.Reply)
		}
		out = append(out, name+" "+ct)
	}
	out = append(out, "err error")
	return out
}

// replyResultNames lists the assignment targets matching
// replyResultDecls, for the `ret, x, err = Unmarshal...Reply(d)` line.
func replyResultNames(s *presc.Stub) []string {
	var out []string
	if s.Result != nil {
		out = append(out, "ret")
	}
	for _, p := range s.ReplyParams() {
		name := p.Name
		if p.Role == presc.RoleBoth {
			name += "Out"
		}
		out = append(out, name)
	}
	out = append(out, "err")
	return out
}

// SyncSurface is the classic blocking presentation: one method per
// operation, call-and-wait, reply decoded in the caller's frame. It is
// the pre-refactor emitter output, byte for byte.
type SyncSurface struct{}

func (SyncSurface) Name() string { return "sync" }

func (SyncSurface) clientFuncs(e *emitter, clientType string, stubs []*presc.Stub) error {
	for _, s := range stubs {
		if s.Stream {
			// Stream operations have no single-reply shape; they are
			// presented by StreamSurface.
			continue
		}
		if err := e.clientMethod(clientType, s); err != nil {
			return err
		}
	}
	return nil
}

// AsyncSurface is the promise presentation: <Op>Async marshals and
// transmits immediately and returns a typed promise; the reply is
// claimed by Wait, so a caller can hold many calls in flight on one
// session (the XID multiplexer resolves them in any order).
type AsyncSurface struct{}

func (AsyncSurface) Name() string { return "async" }

func (AsyncSurface) clientFuncs(e *emitter, clientType string, stubs []*presc.Stub) error {
	for _, s := range stubs {
		if s.Stream || s.Oneway {
			// Oneway calls have nothing to resolve; streams have their
			// own surface.
			continue
		}
		e.asyncMethod(clientType, s)
	}
	return nil
}

func (e *emitter) asyncMethod(clientType string, s *presc.Stub) {
	prefix := stubPrefix(s) + e.cfg.FuncSuffix
	promiseType := prefix + "Promise"
	goOp := pgen.GoName(s.Op)
	reqArgs := append([]string{"e"}, callArgs(s.RequestParams())...)

	e.pf("// %sAsync begins the %s operation without waiting for the", goOp, s.Op)
	e.pf("// reply: the request is marshaled and transmitted before this")
	e.pf("// method returns, and the promise resolves when Wait collects")
	e.pf("// the reply from the session's multiplexer.")
	e.pf("func (c *%s) %sAsync(%s) *%s {", clientType, goOp, strings.Join(inParamDecls(s), ", "), promiseType)
	e.indent++
	e.pf("return &%s{p: c.C.CallAsync(%d, %q, %v, func(e *rt.Encoder) {", promiseType, s.OpCode, s.OpName, s.Idempotent)
	e.indent++
	e.pf("Marshal%sRequest(%s)", prefix, strings.Join(reqArgs, ", "))
	e.indent--
	e.pf("})}")
	e.indent--
	e.pf("}")
	e.pf("")

	e.pf("// %s is one in-flight %s invocation.", promiseType, s.Op)
	e.pf("type %s struct {", promiseType)
	e.indent++
	e.pf("p *rt.Promise")
	e.indent--
	e.pf("}")
	e.pf("")
	e.pf("// Wait blocks until the reply arrives and decodes it. The retry")
	e.pf("// and error classification are the sync path's, applied at")
	e.pf("// resolution time; Wait settles the promise and may be called")
	e.pf("// once.")
	e.pf("func (pr *%s) Wait() (%s) {", promiseType, strings.Join(replyResultDecls(s), ", "))
	e.indent++
	e.pf("var d *rt.Decoder")
	e.pf("d, err = pr.p.Wait()")
	e.pf("if err != nil {")
	e.indent++
	e.pf("return")
	e.indent--
	e.pf("}")
	e.pf("%s = Unmarshal%sReply(d)", strings.Join(replyResultNames(s), ", "), prefix)
	// Same pooled-ownership contract as the sync stub: the decoder goes
	// back to the pool once results are unmarshaled.
	e.pf("d.Release()")
	e.pf("return")
	e.indent--
	e.pf("}")
	e.pf("")
}

// CtxSurface is the context presentation: <Op>Ctx takes a caller
// context.Context ahead of the request parameters. The context's
// deadline travels on the wire as the runtime's deadline annotation
// (the server inherits the remaining budget and sheds expired work
// before dispatch), its trace context is continued, and its
// cancellation aborts the reply wait — sending the cancel frame that
// releases the server-side work. Stream operations are skipped (the
// stream surface owns their shape; rt.Client.CallStreamCtx presents
// them at the runtime layer).
type CtxSurface struct{}

func (CtxSurface) Name() string { return "ctx" }

func (CtxSurface) clientFuncs(e *emitter, clientType string, stubs []*presc.Stub) error {
	for _, s := range stubs {
		if s.Stream {
			continue
		}
		e.ctxMethod(clientType, s)
	}
	return nil
}

func (e *emitter) ctxMethod(clientType string, s *presc.Stub) {
	e.usesContext = true
	prefix := stubPrefix(s) + e.cfg.FuncSuffix
	goOp := pgen.GoName(s.Op)
	reqArgs := append([]string{"e"}, callArgs(s.RequestParams())...)
	params := append([]string{"ctx context.Context"}, inParamDecls(s)...)

	e.pf("// %sCtx invokes the %s operation under a caller context:", goOp, s.Op)
	e.pf("// the context's deadline travels on the wire and bounds the")
	e.pf("// server-side work, its trace is continued, and cancellation")
	e.pf("// aborts the reply wait while a cancel frame releases the")
	e.pf("// server-side work.")
	e.pf("func (c *%s) %sCtx(%s) (%s) {", clientType, goOp, strings.Join(params, ", "), strings.Join(replyResultDecls(s), ", "))
	e.indent++
	if s.Oneway {
		e.pf("_, err = c.C.CallIdemCtx(ctx, %d, %q, true, %v, func(e *rt.Encoder) {", s.OpCode, s.OpName, s.Idempotent)
	} else {
		e.pf("var d *rt.Decoder")
		e.pf("d, err = c.C.CallIdemCtx(ctx, %d, %q, false, %v, func(e *rt.Encoder) {", s.OpCode, s.OpName, s.Idempotent)
	}
	e.indent++
	e.pf("Marshal%sRequest(%s)", prefix, strings.Join(reqArgs, ", "))
	e.indent--
	e.pf("})")
	e.pf("if err != nil {")
	e.indent++
	e.pf("return")
	e.indent--
	e.pf("}")
	if s.Oneway {
		e.pf("return")
	} else {
		e.pf("%s = Unmarshal%sReply(d)", strings.Join(replyResultNames(s), ", "), prefix)
		e.pf("d.Release()")
		e.pf("return")
	}
	e.indent--
	e.pf("}")
	e.pf("")
}

// StreamSurface is the server-push presentation for //flick:stream
// operations: <Op>Stream sends the request once and returns a typed
// receiving half whose chunks the server pushes under a credit window.
type StreamSurface struct{}

func (StreamSurface) Name() string { return "stream" }

func (StreamSurface) clientFuncs(e *emitter, clientType string, stubs []*presc.Stub) error {
	for _, s := range stubs {
		if !s.Stream {
			continue
		}
		e.streamMethod(clientType, s)
	}
	return nil
}

// chunkDecl renders the chunk parameter declaration and marshal
// argument for a stream stub's Send method (aggregates by pointer,
// mirroring the marshal function's parameter shape).
func chunkDecl(s *presc.Stub) (decl, arg, ctype string) {
	ct, _ := s.Result.CType.(string)
	if ct == "" {
		ct = ctypeOf(s.Result.Reply)
	}
	if isAggregate(s.Result.Reply) {
		return "v *" + ct, "v", ct
	}
	return "v " + ct, "v", ct
}

func (e *emitter) streamMethod(clientType string, s *presc.Stub) {
	prefix := stubPrefix(s) + e.cfg.FuncSuffix
	streamType := prefix + "Stream"
	goOp := pgen.GoName(s.Op)
	reqArgs := append([]string{"e"}, callArgs(s.RequestParams())...)
	params := append(inParamDecls(s), "window int")
	_, _, chunkType := chunkDecl(s)

	e.pf("// %sStream begins the %s server-push stream with a credit", goOp, s.Op)
	e.pf("// window of the given number of chunks. A window of 0 blocks the")
	e.pf("// server's first Send until Grant extends credit (pure")
	e.pf("// backpressure).")
	e.pf("func (c *%s) %sStream(%s) (*%s, error) {", clientType, goOp, strings.Join(params, ", "), streamType)
	e.indent++
	e.pf("st, err := c.C.CallStream(%d, %q, window, func(e *rt.Encoder) {", s.OpCode, s.OpName)
	e.indent++
	e.pf("Marshal%sRequest(%s)", prefix, strings.Join(reqArgs, ", "))
	e.indent--
	e.pf("})")
	e.pf("if err != nil {")
	e.indent++
	e.pf("return nil, err")
	e.indent--
	e.pf("}")
	e.pf("return &%s{st: st}, nil", streamType)
	e.indent--
	e.pf("}")
	e.pf("")

	e.pf("// %s is the receiving half of a %s stream. It is not", streamType, s.Op)
	e.pf("// safe for concurrent Recv.")
	e.pf("type %s struct {", streamType)
	e.indent++
	e.pf("st *rt.ClientStream")
	e.indent--
	e.pf("}")
	e.pf("")
	e.pf("// Recv returns the next chunk; io.EOF reports a clean end of")
	e.pf("// stream, any other error a classified teardown.")
	e.pf("func (s *%s) Recv() (ret %s, err error) {", streamType, chunkType)
	e.indent++
	e.pf("var d *rt.Decoder")
	e.pf("d, err = s.st.Recv()")
	e.pf("if err != nil {")
	e.indent++
	e.pf("return")
	e.indent--
	e.pf("}")
	e.pf("ret, err = Unmarshal%sChunk(d)", prefix)
	e.pf("d.Release()")
	e.pf("return")
	e.indent--
	e.pf("}")
	e.pf("")
	e.pf("// Grant extends the server's credit window by n chunks.")
	e.pf("func (s *%s) Grant(n int) error { return s.st.Grant(n) }", streamType)
	e.pf("")
	e.pf("// Cancel tears the stream down and releases any undelivered")
	e.pf("// chunks; Recv afterwards reports the cancellation.")
	e.pf("func (s *%s) Cancel() { s.st.Cancel() }", streamType)
	e.pf("")
}

// serverStreamType emits the sending half handed to a stream
// operation's work function: a typed wrapper over rt.StreamSender that
// marshals each chunk with the shared MIR-generated code.
func (e *emitter) serverStreamType(s *presc.Stub) {
	prefix := stubPrefix(s) + e.cfg.FuncSuffix
	typeName := prefix + "ServerStream"
	decl, arg, _ := chunkDecl(s)
	e.pf("// %s is the sending half of a %s stream, handed to", typeName, s.Op)
	e.pf("// the work function by the dispatcher.")
	e.pf("type %s struct {", typeName)
	e.indent++
	e.pf("st *rt.StreamSender")
	e.indent--
	e.pf("}")
	e.pf("")
	e.pf("// Send pushes one chunk, blocking while the client's credit")
	e.pf("// window is exhausted (backpressure) and failing once the stream")
	e.pf("// is canceled or torn down.")
	e.pf("func (s *%s) Send(%s) error {", typeName, decl)
	e.indent++
	e.pf("return s.st.Send(func(e *rt.Encoder) {")
	e.indent++
	e.pf("Marshal%sChunk(e, %s)", prefix, arg)
	e.indent--
	e.pf("})")
	e.indent--
	e.pf("}")
	e.pf("")
}

// serverIfaceLine renders one operation's line in the server
// implementation interface. Non-stream operations use the presentation
// signature (CDecl); stream operations replace the reply with the
// typed sending half.
func serverIfaceLine(s *presc.Stub, suffix string) string {
	if !s.Stream {
		return s.CDecl.(string)
	}
	prefix := stubPrefix(s) + suffix
	params := append(inParamDecls(s), "st *"+prefix+"ServerStream")
	return fmt.Sprintf("%s(%s) error", pgen.GoName(s.Op), strings.Join(params, ", "))
}
