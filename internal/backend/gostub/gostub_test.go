package gostub_test

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"flick"
)

var update = flag.Bool("update", false, "rewrite golden files")

const idl = `
interface Acct {
	struct point { long x; long y; };
	exception Overdrawn { long balance; };
	typedef sequence<point> points;

	void move(in points v);
	long withdraw(in long amount, out long balance) raises (Overdrawn);
	//flick:idempotent
	long balance();
	oneway void nudge(in point p);
};
`

func compile(t *testing.T, opts flick.Options) string {
	t.Helper()
	opts.Package = "acct"
	out, err := flick.Compile("acct.idl", idl, opts)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func golden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		os.MkdirAll("testdata", 0o755)
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update)", path)
	}
	if got != string(want) {
		t.Errorf("output differs from golden %s (review and run -update)", path)
	}
}

func TestGoldenFlickXDR(t *testing.T) {
	got := compile(t, flick.Options{Format: "xdr", Style: "flick", EmitRPC: true})
	golden(t, "acct_flick_xdr.go.golden", got)
	for _, frag := range []string{
		// The optimized shape: one grow + chunk window for a fixed struct.
		"e.Grow(8)",
		"b1 := e.Next(8)",
		"binary.BigEndian.PutUint32(b1[0:]",
		// Exceptions cross as typed errors.
		"func (e *AcctOverdrawn) Error() string",
		"MarshalAcctWithdrawErrOverdrawn",
		// Client + dispatch.
		"type AcctClient struct",
		"func RegisterAcct(s *rt.Server, impl AcctServer)",
		"switch h.Proc {",
	} {
		if !strings.Contains(got, frag) {
			t.Errorf("flick/xdr output missing %q", frag)
		}
	}
}

func TestGoldenRpcgenXDR(t *testing.T) {
	got := compile(t, flick.Options{Format: "xdr", Style: "rpcgen", EmitRPC: false, SkipDecls: true, FuncSuffix: "N"})
	golden(t, "acct_rpcgen_xdr.go.golden", got)
	for _, frag := range []string{
		// Per-datum noinline calls, out-of-line per-type routines.
		"rt.NPutU32BE(e,",
		"func xmNAcctPoint(e *rt.Encoder, v *AcctPoint)",
	} {
		if !strings.Contains(got, frag) {
			t.Errorf("rpcgen/xdr output missing %q", frag)
		}
	}
	if strings.Contains(got, "e.Grow(") {
		t.Error("rpcgen style must not group buffer checks")
	}
	if strings.Contains(got, "e.Next(") {
		t.Error("rpcgen style must not chunk")
	}
}

func TestGoldenFlickGIOP(t *testing.T) {
	got := compile(t, flick.Options{Format: "cdr-le", Style: "flick", EmitRPC: true, FuncSuffix: "C"})
	golden(t, "acct_flick_cdrle.go.golden", got)
	for _, frag := range []string{
		// GIOP servers demultiplex the operation name word by word.
		"switch len(op) {",
		"switch rt.Word4(op, 0) {",
		"case 0x6d6f7665: // \"move\"",
		"binary.LittleEndian",
	} {
		if !strings.Contains(got, frag) {
			t.Errorf("flick/cdr-le output missing %q", frag)
		}
	}
}

func TestStylesShareDeclarations(t *testing.T) {
	withDecls := compile(t, flick.Options{Format: "xdr"})
	skipped := compile(t, flick.Options{Format: "xdr", SkipDecls: true, FuncSuffix: "S"})
	if !strings.Contains(withDecls, "type AcctPoint struct") {
		t.Error("declarations missing")
	}
	if strings.Contains(skipped, "type AcctPoint struct") {
		t.Error("SkipDecls ignored")
	}
}
