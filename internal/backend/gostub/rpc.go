package gostub

import (
	"fmt"
	"sort"
	"strings"

	"flick/internal/pgen"
	"flick/internal/pres"
	"flick/internal/presc"
)

// protoExpr returns the rt.Protocol constructor for the configured wire
// format.
func (e *emitter) protoExpr() string {
	switch e.cfg.Format.Name() {
	case "xdr":
		return "rt.ONC{}"
	case "cdr-be":
		return "rt.GIOP{}"
	case "cdr-le":
		return "rt.GIOP{Little: true}"
	case "mach3":
		return "rt.Mach{}"
	case "fluke":
		return "rt.Fluke{}"
	default:
		return "rt.ONC{}"
	}
}

func (e *emitter) demuxByName() bool {
	n := e.cfg.Format.Name()
	return n == "cdr-be" || n == "cdr-le"
}

// rpcFuncs renders the client type with the configured presentation
// surfaces' methods, the server implementation interface, and the
// Register function installing the dispatch loop. Marshal code is
// never rendered here — every surface calls the functions the shared
// MIR walk emitted.
func (e *emitter) rpcFuncs(iface string, stubs []*presc.Stub) (string, error) {
	e.b.Reset()
	base := pgen.GoName(iface) + e.cfg.FuncSuffix
	clientType := base + "Client"
	serverIface := base + "Server"

	// --- Client ---
	if !e.cfg.SurfacesOnly {
		e.pf("// %s invokes %s operations over a connection.", clientType, iface)
		e.pf("type %s struct {", clientType)
		e.indent++
		e.pf("C *rt.Client")
		e.indent--
		e.pf("}")
		e.pf("")
		e.pf("// New%s wraps conn with the %s message protocol.", clientType, e.cfg.Format.Name())
		e.pf("func New%s(conn rt.Conn) *%s {", clientType, clientType)
		e.indent++
		e.pf("c := rt.NewClient(conn, %s)", e.protoExpr())
		if len(stubs) > 0 {
			e.pf("c.Prog = %d", stubs[0].Prog)
			e.pf("c.Vers = %d", stubs[0].Vers)
		}
		e.pf("return &%s{C: c}", clientType)
		e.indent--
		e.pf("}")
		e.pf("")
	}

	for _, sf := range e.surfaces() {
		if err := sf.clientFuncs(e, clientType, stubs); err != nil {
			return "", err
		}
	}

	if e.cfg.SurfacesOnly {
		return e.b.String(), nil
	}

	// --- Server interface ---
	e.pf("// %s is the interface a %s implementation provides.", serverIface, iface)
	e.pf("type %s interface {", serverIface)
	e.indent++
	for _, s := range stubs {
		e.pf("%s", serverIfaceLine(s, e.cfg.FuncSuffix))
	}
	e.indent--
	e.pf("}")
	e.pf("")

	// Sending halves for stream operations (referenced by both the
	// interface above and the dispatch arms below).
	for _, s := range stubs {
		if s.Stream {
			e.serverStreamType(s)
		}
	}

	// --- Dispatch ---
	if err := e.dispatchFunc(base, serverIface, stubs); err != nil {
		return "", err
	}
	return e.b.String(), nil
}

// callArgs renders the argument expressions passed from method parameters
// to the request-marshal function (aggregates by address).
func callArgs(params []*presc.ParamPres) []string {
	var out []string
	for _, p := range params {
		n := p.Request
		if n == nil {
			n = p.Reply
		}
		name := p.Name
		switch n.Resolve().Kind {
		case pres.StructKind, pres.UnionKind, pres.FixedArrayKind:
			out = append(out, "&"+name)
		default:
			out = append(out, name)
		}
	}
	return out
}

func (e *emitter) clientMethod(clientType string, s *presc.Stub) error {
	prefix := stubPrefix(s) + e.cfg.FuncSuffix
	sig := s.CDecl.(string)
	e.pf("// %s invokes the %s operation.", pgen.GoName(s.Op), s.Op)
	e.pf("func (c *%s) %s {", clientType, sig)
	e.indent++
	reqArgs := append([]string{"e"}, callArgs(s.RequestParams())...)
	// The idempotency flag rides from the IDL's //flick:idempotent
	// annotation into the runtime's retry policy: only idempotent
	// operations may be re-sent after an ambiguous failure.
	if s.Oneway {
		e.pf("_, err = c.C.CallIdem(%d, %q, true, %v, func(e *rt.Encoder) {", s.OpCode, s.OpName, s.Idempotent)
	} else {
		e.pf("var d *rt.Decoder")
		e.pf("d, err = c.C.CallIdem(%d, %q, false, %v, func(e *rt.Encoder) {", s.OpCode, s.OpName, s.Idempotent)
	}
	e.indent++
	e.pf("Marshal%sRequest(%s)", prefix, strings.Join(reqArgs, ", "))
	e.indent--
	e.pf("})")
	e.pf("if err != nil {")
	e.indent++
	e.pf("return")
	e.indent--
	e.pf("}")
	if s.Oneway {
		e.pf("return")
	} else {
		var results []string
		if s.Result != nil {
			results = append(results, "ret")
		}
		for _, p := range s.ReplyParams() {
			name := p.Name
			if p.Role == presc.RoleBoth {
				name += "Out"
			}
			results = append(results, name)
		}
		results = append(results, "err")
		e.pf("%s = Unmarshal%sReply(d)", strings.Join(results, ", "), prefix)
		// Pooled buffer-ownership contract: the reply decoder belongs
		// to this call and goes back to the runtime pool once the
		// results are unmarshaled (they never alias the wire buffer).
		e.pf("d.Release()")
		e.pf("return")
	}
	e.indent--
	e.pf("}")
	e.pf("")
	return nil
}

func (e *emitter) dispatchFunc(base, serverIface string, stubs []*presc.Stub) error {
	e.pf("// Register%s installs the %s dispatcher on s. The dispatch", base, base)
	e.pf("// decodes the operation discriminator a machine word at a time")
	e.pf("// (Flick's message demultiplexing).")
	e.pf("func Register%s(s *rt.Server, impl %s) {", base, serverIface)
	e.indent++
	prog, vers := uint32(0), uint32(0)
	if len(stubs) > 0 {
		prog, vers = stubs[0].Prog, stubs[0].Vers
	}
	e.pf("s.Register(%d, %d, func(h *rt.ReqHeader, d *rt.Decoder, e *rt.Encoder) error {", prog, vers)
	e.indent++
	if e.demuxByName() {
		if err := e.nameDemux(stubs); err != nil {
			return err
		}
	} else {
		e.pf("switch h.Proc {")
		for _, s := range stubs {
			e.pf("case %d:", s.OpCode)
			e.indent++
			if err := e.dispatchArm(s); err != nil {
				return err
			}
			e.indent--
		}
		e.pf("default:")
		e.indent++
		e.pf("return rt.ErrNoSuchOp")
		e.indent--
		e.pf("}")
	}
	e.indent--
	e.pf("})")
	e.indent--
	e.pf("}")
	e.pf("")
	return nil
}

// nameDemux emits nested word-size switches over the operation name: the
// paper's discriminator hashing, applied to GIOP's string discriminators.
func (e *emitter) nameDemux(stubs []*presc.Stub) error {
	byLen := map[int][]*presc.Stub{}
	for _, s := range stubs {
		byLen[len(s.OpName)] = append(byLen[len(s.OpName)], s)
	}
	var lens []int
	for l := range byLen {
		lens = append(lens, l)
	}
	sort.Ints(lens)
	e.pf("op := h.OpName")
	e.pf("switch len(op) {")
	for _, l := range lens {
		e.pf("case %d:", l)
		e.indent++
		if err := e.nameDemuxWords(byLen[l], 0, l); err != nil {
			return err
		}
		e.indent--
	}
	e.pf("}")
	e.pf("return rt.ErrNoSuchOp")
	return nil
}

func (e *emitter) nameDemuxWords(stubs []*presc.Stub, off, total int) error {
	if off >= total {
		// Full name matched (names are unique per interface).
		if len(stubs) != 1 {
			return fmt.Errorf("gostub: ambiguous operation names %q", stubs[0].OpName)
		}
		return e.dispatchArm(stubs[0])
	}
	byWord := map[uint32][]*presc.Stub{}
	var order []uint32
	for _, s := range stubs {
		w := word4(s.OpName, off)
		if _, seen := byWord[w]; !seen {
			order = append(order, w)
		}
		byWord[w] = append(byWord[w], s)
	}
	e.pf("switch rt.Word4(op, %d) {", off)
	for _, w := range order {
		group := byWord[w]
		e.pf("case 0x%08x: // %q", w, safeChunk(group[0].OpName, off))
		e.indent++
		if err := e.nameDemuxWords(group, off+4, total); err != nil {
			return err
		}
		e.indent--
	}
	e.pf("}")
	if off > 0 {
		return nil
	}
	return nil
}

func word4(s string, off int) uint32 {
	var w uint32
	for i := 0; i < 4 && off+i < len(s); i++ {
		w |= uint32(s[off+i]) << (24 - 8*i)
	}
	return w
}

func safeChunk(s string, off int) string {
	end := off + 4
	if end > len(s) {
		end = len(s)
	}
	if off >= len(s) {
		return ""
	}
	return s[off:end]
}

// dispatchArm decodes arguments, invokes the implementation, and encodes
// the reply for one operation.
func (e *emitter) dispatchArm(s *presc.Stub) error {
	prefix := stubPrefix(s) + e.cfg.FuncSuffix
	if !e.demuxByName() {
		// Numeric-demux protocols (ONC, Mach, Fluke) leave h.OpName
		// empty after header decode; label the request so server
		// metrics and traces report real operation names.
		e.pf("h.OpName = %q", s.OpName)
	}
	if s.Oneway {
		// Some protocols (ONC) cannot flag oneway calls on the wire;
		// the dispatcher knows from the IDL that no reply is due.
		e.pf("h.OneWay = true")
	}
	reqs := s.RequestParams()
	var argNames []string
	for _, p := range reqs {
		argNames = append(argNames, "a_"+p.Name)
	}
	if len(reqs) > 0 {
		e.pf("%s, argErr := Unmarshal%sRequest(d)", strings.Join(argNames, ", "), prefix)
	} else {
		e.pf("argErr := Unmarshal%sRequest(d)", prefix)
	}
	e.pf("if argErr != nil {")
	e.indent++
	e.pf("return argErr")
	e.indent--
	e.pf("}")

	if s.Stream {
		// Stream operations push chunks over the oneway path: the
		// single auto-reply is suppressed only after arguments decode,
		// so a malformed request still gets a system-error reply.
		var callIn []string
		for _, p := range reqs {
			callIn = append(callIn, "a_"+p.Name)
		}
		prefixT := stubPrefix(s) + e.cfg.FuncSuffix
		e.pf("h.OneWay = true")
		e.pf("sn := rt.NewStreamSender(h)")
		e.pf("workErr := impl.%s(%s)", pgen.GoName(s.Op),
			strings.Join(append(callIn, "&"+prefixT+"ServerStream{st: sn}"), ", "))
		e.pf("sn.Finish(workErr)")
		e.pf("return nil")
		return nil
	}

	// Invoke the work function.
	var results []string
	if s.Result != nil {
		results = append(results, "r_ret")
	}
	for _, p := range s.ReplyParams() {
		results = append(results, "r_"+p.Name)
	}
	results = append(results, "workErr")
	// inout params appear in both argNames (inputs) and results.
	var callIn []string
	for _, p := range reqs {
		callIn = append(callIn, "a_"+p.Name)
	}
	e.pf("%s := impl.%s(%s)", strings.Join(results, ", "), pgen.GoName(s.Op), strings.Join(callIn, ", "))
	e.pf("if workErr != nil {")
	e.indent++
	for i, exName := range s.ExceptionNames {
		exType := ctypeOf(s.ExceptionPres[i])
		e.pf("if ex, ok := workErr.(*%s); ok {", exType)
		e.indent++
		e.pf("Marshal%sErr%s(e, ex)", prefix, strings.ReplaceAll(exName, "_", ""))
		e.pf("return nil")
		e.indent--
		e.pf("}")
	}
	e.pf("return workErr")
	e.indent--
	e.pf("}")
	if s.Oneway {
		e.pf("return nil")
		return nil
	}
	// Marshal the success reply (aggregates by address).
	var repArgs []string
	if s.Result != nil {
		if isAggregate(s.Result.Reply) {
			repArgs = append(repArgs, "&r_ret")
		} else {
			repArgs = append(repArgs, "r_ret")
		}
	}
	for _, p := range s.ReplyParams() {
		if isAggregate(p.Reply) {
			repArgs = append(repArgs, "&r_"+p.Name)
		} else {
			repArgs = append(repArgs, "r_"+p.Name)
		}
	}
	e.pf("Marshal%sReply(%s)", prefix, strings.Join(append([]string{"e"}, repArgs...), ", "))
	e.pf("return nil")
	return nil
}

func isAggregate(n *pres.Node) bool {
	if n == nil {
		return false
	}
	switch n.Resolve().Kind {
	case pres.StructKind, pres.UnionKind, pres.FixedArrayKind:
		return true
	}
	return false
}
