// Package gostub is Flick-Go's executable back end: it renders mir
// marshal programs as Go source. It plays the role CAST plays for C —
// the paper's design explicitly anticipates swapping the target-language
// layer this way.
//
// Three code styles model the compilers of the paper's evaluation:
//
//   - StyleFlick: the optimized output (grouped buffer checks, chunk
//     windows, bulk copies, inlined marshal code).
//   - StyleRpcgen: per-datum checked runtime calls, one marshal function
//     per named type — the structure of rpcgen's xdr_* routines.
//   - StylePowerRPC: rpcgen structure plus an extra indirection through a
//     function table on every datum.
package gostub

import (
	"fmt"
	"go/format"
	"strings"

	"flick/internal/mir"
	"flick/internal/pres"
	"flick/internal/presc"
	"flick/internal/verify"
	"flick/internal/wire"
)

// Style selects the emitted code shape.
type Style int

const (
	StyleFlick Style = iota
	StyleRpcgen
	StylePowerRPC
)

func (s Style) String() string {
	switch s {
	case StyleFlick:
		return "flick"
	case StyleRpcgen:
		return "rpcgen"
	case StylePowerRPC:
		return "powerrpc"
	}
	return fmt.Sprintf("Style(%d)", int(s))
}

// Config parameterizes generation.
type Config struct {
	// Package names the generated Go package.
	Package string
	// Format is the wire encoding.
	Format wire.Format
	// Style selects optimized or baseline code shapes.
	Style Style
	// Opts overrides the mir optimization set; nil uses the style's
	// default (all on for Flick, all off for the baselines).
	Opts *mir.Options
	// FuncSuffix distinguishes multiple configurations generated into
	// one package (e.g. "XDR", "Naive").
	FuncSuffix string
	// SkipDecls omits the presented type declarations (set when another
	// configuration in the same package already emitted them).
	SkipDecls bool
	// EmitRPC adds client stubs and a server dispatcher on top of the
	// marshal/unmarshal functions.
	EmitRPC bool
	// Surfaces selects the presentation surfaces emitted over the
	// shared marshal core when EmitRPC is set, in order. Nil means
	// sync only — the classic blocking presentation, byte-identical to
	// the pre-surface emitter.
	Surfaces []Surface
	// SurfacesOnly emits only the surface shells (methods and their
	// support types) for an interface whose marshal functions, client
	// type, server interface, and dispatcher another configuration in
	// the same package already emitted. Used to add e.g. the async
	// surface to an existing generated package without duplicating the
	// wire code.
	SurfacesOnly bool
	// Stats, when non-nil, collects the optimizer counters of every
	// stub compiled in this run (the `flick -stats` report).
	Stats *Stats
	// Verify selects how much stage-boundary verification runs on each
	// post-optimize MIR program. The zero value is verify.On.
	Verify verify.Mode
	// ZeroCopy routes prover-approved byte regions through the
	// runtime's alias paths: marshal-side PutBytesZC (vectored send)
	// and decode-side AliasNext (arena-borrowed views). Only regions
	// whose MIR alias proof survives the zerocopy verifier are emitted
	// this way; requires the memcpy optimization (there is no bulk op
	// to alias without it).
	ZeroCopy bool
}

// Stats aggregates compiler-side optimization counters for one
// generation run: per-stub mir counters plus their total. It is what
// `flick -stats` prints — the paper's §3 optimizations (grouped space
// checks, chunks, bulk copies, inlining) as observable numbers.
type Stats struct {
	Total mir.Stats
	Stubs []StubStats
	// Verify accumulates the stage-boundary verifier coverage counters
	// (MINT nodes, PRES-C stubs, MIR programs and chunk layouts checked).
	Verify verify.Counters
}

// StubStats is one stub's optimizer counters (all of its marshal and
// unmarshal programs: request, reply, exceptions).
type StubStats struct {
	Stub string
	S    mir.Stats
}

// Report renders an aligned per-stub table with a total row.
func (s *Stats) Report() string {
	var b strings.Builder
	rows := make([][2]string, 0, len(s.Stubs)+1)
	line := func(name string, st mir.Stats) {
		rows = append(rows, [2]string{name, fmt.Sprintf(
			"%5d  %6d → %-5d %9d  %6d %6d %5d %5d  %4d",
			st.Programs, st.SpaceChecksBefore, st.SpaceChecksAfter,
			st.SpaceChecksEliminated(), st.Chunks, st.ChunkItems,
			st.BulkArrays, st.InlinedAggregates, st.OutOfLineSubs)})
	}
	for _, st := range s.Stubs {
		line(st.Stub, st.S)
	}
	line("TOTAL", s.Total)
	width := len("stub")
	for _, r := range rows {
		if len(r[0]) > width {
			width = len(r[0])
		}
	}
	fmt.Fprintf(&b, "%-*s  %5s  %14s %9s  %6s %6s %5s %5s  %4s\n",
		width, "stub", "progs", "checks in→out", "hoisted", "chunks", "items", "bulk", "inl", "subs")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-*s  %s\n", width, r[0], r[1])
	}
	return b.String()
}

func (c Config) options() mir.Options {
	if c.Opts != nil {
		return *c.Opts
	}
	if c.Style == StyleFlick {
		return mir.AllOptimizations()
	}
	return mir.NoOptimizations()
}

// Generate renders the presentation as one Go source file.
func Generate(f *presc.File, cfg Config) (string, error) {
	if cfg.ZeroCopy && !cfg.options().Memcpy {
		return "", fmt.Errorf("gostub: -zerocopy requires the memcpy optimization (no bulk regions to alias without it)")
	}
	e := &emitter{
		cfg:     cfg,
		opts:    cfg.options(),
		big:     cfg.Format.Order() == wire.BigEndian,
		checked: cfg.Style != StyleFlick,
		vtbl:    cfg.Style == StylePowerRPC,
		zc:      cfg.ZeroCopy,
		subSeen: map[string]bool{},
	}
	e.b = &strings.Builder{}
	return e.file(f)
}

type emitter struct {
	cfg     Config
	opts    mir.Options
	big     bool
	checked bool
	vtbl    bool

	// zc emits the zero-copy call shapes (PutBytesZC / AliasNext) for
	// regions carrying a verifier-approved alias-safe proof.
	zc bool

	b       *strings.Builder
	indent  int
	tmp     int
	subSeen map[string]bool
	subBuf  strings.Builder
	// lenVars maps a counted value's path to the local holding its
	// just-decoded element count (unmarshal only).
	lenVars map[string]string
	// zcVals marks counted values whose decode-side bulk aliases the
	// receive arena, so their length items skip the make (unmarshal
	// only, -zerocopy only).
	zcVals map[string]bool
	// refMap rebinds ref roots (subprogram "v", loop elements).
	refMap map[string]string
	// retErr is the statement sequence aborting the current function on
	// decoder error.
	retErr string
	// curProg is the program whose ops are being emitted (for sub-call
	// name resolution).
	curProg *mir.Program

	usesBinary  bool
	usesMath    bool
	usesContext bool
}

func (e *emitter) pf(format string, args ...any) {
	e.b.WriteString(strings.Repeat("\t", e.indent))
	fmt.Fprintf(e.b, format, args...)
	e.b.WriteByte('\n')
}

func (e *emitter) ord() string {
	if e.big {
		return "BE"
	}
	return "LE"
}

func (e *emitter) binOrd() string {
	if e.big {
		return "binary.BigEndian"
	}
	return "binary.LittleEndian"
}

func (e *emitter) newTmp(prefix string) string {
	e.tmp++
	return fmt.Sprintf("%s%d", prefix, e.tmp)
}

// file drives whole-file generation.
func (e *emitter) file(f *presc.File) (string, error) {
	var body strings.Builder
	// Generate stub bodies first so import usage is known. In
	// surfaces-only mode the marshal core already exists elsewhere in
	// the package; only the surface shells are rendered.
	if !e.cfg.SurfacesOnly {
		for _, stub := range f.Stubs {
			src, err := e.stubFuncs(stub)
			if err != nil {
				return "", fmt.Errorf("gostub: stub %s: %w", stub.Name, err)
			}
			body.WriteString(src)
		}
	}
	if e.cfg.EmitRPC {
		// Client stubs and server dispatch, one set per interface.
		var order []string
		byIface := map[string][]*presc.Stub{}
		for _, stub := range f.Stubs {
			if _, seen := byIface[stub.Interface]; !seen {
				order = append(order, stub.Interface)
			}
			byIface[stub.Interface] = append(byIface[stub.Interface], stub)
		}
		for _, iface := range order {
			src, err := e.rpcFuncs(iface, byIface[iface])
			if err != nil {
				return "", fmt.Errorf("gostub: interface %s: %w", iface, err)
			}
			body.WriteString(src)
		}
	}

	var out strings.Builder
	out.WriteString("// Code generated by flick (" + e.cfg.Style.String() + "/" +
		e.cfg.Format.Name() + "). DO NOT EDIT.\n\n")
	out.WriteString("package " + e.cfg.Package + "\n\n")
	out.WriteString("import (\n")
	if e.usesContext {
		out.WriteString("\t\"context\"\n")
	}
	if e.usesBinary {
		out.WriteString("\t\"encoding/binary\"\n")
	}
	if e.usesMath {
		out.WriteString("\t\"math\"\n")
	}
	out.WriteString("\n\t\"flick/rt\"\n)\n\n")
	if !e.cfg.SkipDecls && !e.cfg.SurfacesOnly {
		out.WriteString("// ObjectKey is an opaque object reference.\ntype ObjectKey = []byte\n\n")
		if decls, ok := f.Decls.(string); ok {
			out.WriteString(decls)
		}
	}
	out.WriteString(body.String())
	out.WriteString(e.subBuf.String())
	formatted, err := format.Source([]byte(out.String()))
	if err != nil {
		// A formatting failure means the emitter produced invalid Go;
		// surface the raw text for diagnosis.
		return out.String(), fmt.Errorf("gostub: generated code does not parse: %w", err)
	}
	return string(formatted), nil
}

// stubPrefix builds the generated function name prefix for a stub.
func stubPrefix(s *presc.Stub) string {
	return strings.ReplaceAll(s.Name, "_", "")
}

func (e *emitter) stubFuncs(s *presc.Stub) (string, error) {
	prefix := stubPrefix(s) + e.cfg.FuncSuffix
	var out strings.Builder

	if e.cfg.Stats != nil {
		// Collect this stub's optimizer counters in a private sink, then
		// fold them into the run-wide report when the stub is done.
		per := &mir.Stats{}
		saved := e.opts.Stats
		e.opts.Stats = per
		defer func() {
			e.opts.Stats = saved
			e.cfg.Stats.Stubs = append(e.cfg.Stats.Stubs, StubStats{Stub: s.Name, S: *per})
			e.cfg.Stats.Total.Add(*per)
		}()
	}

	reqRoots := rootsOf(s.RequestParams(), nil)
	repRoots := rootsOf(s.ReplyParams(), s.Result)

	// Request marshal.
	src, err := e.marshalFunc("Marshal"+prefix+"Request", reqRoots)
	if err != nil {
		return "", err
	}
	out.WriteString(src)

	// Request unmarshal (server side).
	src, err = e.unmarshalFunc("Unmarshal"+prefix+"Request", reqRoots)
	if err != nil {
		return "", err
	}
	out.WriteString(src)

	if s.Stream {
		// Stream operations have no single reply: the result type is
		// the chunk, marshaled without a status word (chunks ride the
		// stream envelope, and stream errors travel as error frames,
		// not exception replies).
		chunkRoots := []root{{"ret", s.Result.Reply}}
		src, err = e.marshalFunc("Marshal"+prefix+"Chunk", chunkRoots)
		if err != nil {
			return "", err
		}
		out.WriteString(src)
		src, err = e.unmarshalFunc("Unmarshal"+prefix+"Chunk", chunkRoots)
		if err != nil {
			return "", err
		}
		out.WriteString(src)
		return out.String(), nil
	}

	if !s.Oneway {
		// Reply marshal: status 0 + results.
		src, err = e.replyMarshalFunc("Marshal"+prefix+"Reply", repRoots)
		if err != nil {
			return "", err
		}
		out.WriteString(src)
		// Exception marshals.
		for i, exName := range s.ExceptionNames {
			src, err = e.exceptionMarshalFunc(
				"Marshal"+prefix+"Err"+strings.ReplaceAll(exName, "_", ""),
				uint32(i+1), s.ExceptionPres[i])
			if err != nil {
				return "", err
			}
			out.WriteString(src)
		}
		// Reply unmarshal: status switch over results and exceptions.
		src, err = e.replyUnmarshalFunc("Unmarshal"+prefix+"Reply", repRoots, s)
		if err != nil {
			return "", err
		}
		out.WriteString(src)
	}
	return out.String(), nil
}

type root struct {
	name string
	pres *pres.Node
}

func rootsOf(params []*presc.ParamPres, result *presc.ParamPres) []root {
	var roots []root
	if result != nil && result.Reply != nil {
		roots = append(roots, root{"ret", result.Reply})
	}
	for _, p := range params {
		n := p.Request
		if n == nil {
			n = p.Reply
		}
		roots = append(roots, root{p.Name, n})
	}
	return roots
}

// paramDecl renders a marshal-function parameter for a root: aggregates
// pass by pointer.
func paramDecl(r root) (decl, refExpr string) {
	ct := ctypeOf(r.pres)
	switch r.pres.Resolve().Kind {
	case pres.StructKind, pres.UnionKind, pres.FixedArrayKind:
		return r.name + " *" + ct, r.name
	default:
		return r.name + " " + ct, r.name
	}
}

func ctypeOf(n *pres.Node) string {
	if s, ok := n.Resolve().CType.(string); ok {
		return s
	}
	return "any"
}

// pointerRootMap maps pointer-passed roots to their deref spelling so
// nested ops (including out-of-line calls) address them correctly.
func pointerRootMap(roots []root) map[string]string {
	m := map[string]string{}
	for _, r := range roots {
		switch r.pres.Resolve().Kind {
		case pres.StructKind, pres.UnionKind, pres.FixedArrayKind:
			m[r.name] = "(*" + r.name + ")"
		}
	}
	return m
}

func (e *emitter) lowerRoots(name string, dir mir.Dir, roots []root) (*mir.Program, error) {
	mroots := make([]mir.Root, len(roots))
	for i, r := range roots {
		mroots[i] = mir.Root{Name: r.name, Pres: r.pres}
	}
	prog, err := mir.Lower(dir, mroots, e.cfg.Format, e.opts)
	if err != nil {
		return nil, err
	}
	// Stage boundary: the optimized program must satisfy the emitter's
	// invariants (space-check dominance, chunk layout, bulk identity)
	// before any code is generated from it.
	var vc *verify.Counters
	if e.cfg.Stats != nil {
		vc = &e.cfg.Stats.Verify
	}
	if fs := verify.MIR(prog, e.cfg.Format, name, e.cfg.Verify, vc); len(fs) > 0 {
		return nil, fs.AsError()
	}
	// The zero-copy proofs get the same treatment: the emitter only
	// trusts an alias-safe proof the verifier re-derived.
	if fs := verify.ZeroCopy(prog, e.cfg.Format, name, e.cfg.Verify, vc); len(fs) > 0 {
		return nil, fs.AsError()
	}
	return prog, nil
}

func (e *emitter) marshalFunc(name string, roots []root) (string, error) {
	prog, err := e.lowerRoots(name, mir.Marshal, roots)
	if err != nil {
		return "", err
	}
	e.b.Reset()
	params := []string{"e *rt.Encoder"}
	for _, r := range roots {
		decl, _ := paramDecl(r)
		params = append(params, decl)
	}
	e.pf("// %s encodes the message payload (%s class, %s).", name, prog.Class, e.cfg.Format.Name())
	e.pf("func %s(%s) {", name, strings.Join(params, ", "))
	e.indent++
	e.beginBody(mir.Marshal, pointerRootMap(roots))
	e.curProg = prog
	if err := e.ops(prog.Ops, mir.Marshal); err != nil {
		return "", err
	}
	e.indent--
	e.pf("}")
	e.pf("")
	if err := e.emitSubs(prog, mir.Marshal); err != nil {
		return "", err
	}
	return e.b.String(), nil
}

func (e *emitter) unmarshalFunc(name string, roots []root) (string, error) {
	prog, err := e.lowerRoots(name, mir.Unmarshal, roots)
	if err != nil {
		return "", err
	}
	e.b.Reset()
	var results []string
	for _, r := range roots {
		results = append(results, r.name+" "+ctypeOf(r.pres))
	}
	results = append(results, "err error")
	e.pf("// %s decodes the message payload (%s class, %s).", name, prog.Class, e.cfg.Format.Name())
	e.pf("func %s(d *rt.Decoder) (%s) {", name, strings.Join(results, ", "))
	e.indent++
	e.beginBody(mir.Unmarshal, nil)
	e.retErr = "err = d.Err()\nreturn"
	e.curProg = prog
	if err := e.ops(prog.Ops, mir.Unmarshal); err != nil {
		return "", err
	}
	e.pf("err = d.Err()")
	e.pf("return")
	e.indent--
	e.pf("}")
	e.pf("")
	if err := e.emitSubs(prog, mir.Unmarshal); err != nil {
		return "", err
	}
	return e.b.String(), nil
}

// replyMarshalFunc writes the success reply: status 0 followed by the
// result and out parameters.
func (e *emitter) replyMarshalFunc(name string, roots []root) (string, error) {
	prog, err := e.lowerRoots(name, mir.Marshal, roots)
	if err != nil {
		return "", err
	}
	e.b.Reset()
	params := []string{"e *rt.Encoder"}
	for _, r := range roots {
		decl, _ := paramDecl(r)
		params = append(params, decl)
	}
	e.pf("// %s encodes a successful reply (status 0).", name)
	e.pf("func %s(%s) {", name, strings.Join(params, ", "))
	e.indent++
	e.beginBody(mir.Marshal, pointerRootMap(roots))
	e.curProg = prog
	e.emitStatus(0)
	if err := e.ops(prog.Ops, mir.Marshal); err != nil {
		return "", err
	}
	e.indent--
	e.pf("}")
	e.pf("")
	if err := e.emitSubs(prog, mir.Marshal); err != nil {
		return "", err
	}
	return e.b.String(), nil
}

func (e *emitter) exceptionMarshalFunc(name string, status uint32, body *pres.Node) (string, error) {
	prog, err := e.lowerRoots(name, mir.Marshal, []root{{"ex", body}})
	if err != nil {
		return "", err
	}
	e.b.Reset()
	e.pf("// %s encodes an exception reply (status %d).", name, status)
	e.pf("func %s(e *rt.Encoder, ex *%s) {", name, ctypeOf(body))
	e.indent++
	e.beginBody(mir.Marshal, map[string]string{"ex": "(*ex)"})
	e.curProg = prog
	e.emitStatus(status)
	if err := e.ops(prog.Ops, mir.Marshal); err != nil {
		return "", err
	}
	e.indent--
	e.pf("}")
	e.pf("")
	if err := e.emitSubs(prog, mir.Marshal); err != nil {
		return "", err
	}
	return e.b.String(), nil
}

func (e *emitter) emitStatus(v uint32) {
	if e.checked {
		e.pf("%s(%d)", e.putName(4, true), v)
		return
	}
	e.pf("e.Grow(4)")
	e.pf("e.PutU32%s(%d)", e.ord(), v)
}

func (e *emitter) replyUnmarshalFunc(name string, roots []root, s *presc.Stub) (string, error) {
	prog, err := e.lowerRoots(name, mir.Unmarshal, roots)
	if err != nil {
		return "", err
	}
	e.b.Reset()
	var results []string
	for _, r := range roots {
		results = append(results, r.name+" "+ctypeOf(r.pres))
	}
	results = append(results, "err error")
	e.pf("// %s decodes a reply: results on status 0, a declared", name)
	e.pf("// exception (returned as err) otherwise.")
	e.pf("func %s(d *rt.Decoder) (%s) {", name, strings.Join(results, ", "))
	e.indent++
	e.beginBody(mir.Unmarshal, nil)
	e.retErr = "err = d.Err()\nreturn"
	e.curProg = prog
	if e.checked {
		e.pf("st := d.U32%sC()", e.ord())
	} else {
		e.pf("if !d.Ensure(4) {")
		e.emitRetErr()
		e.pf("}")
		e.pf("st := d.U32%s()", e.ord())
	}
	e.pf("switch st {")
	e.pf("case 0:")
	e.indent++
	if err := e.ops(prog.Ops, mir.Unmarshal); err != nil {
		return "", err
	}
	e.pf("err = d.Err()")
	e.pf("return")
	e.indent--
	var exProgs []*mir.Program
	for i, exName := range s.ExceptionNames {
		exProg, lerr := e.lowerRoots(exName, mir.Unmarshal, []root{{"ex", s.ExceptionPres[i]}})
		if lerr != nil {
			return "", lerr
		}
		exProgs = append(exProgs, exProg)
		e.pf("case %d:", i+1)
		e.indent++
		e.curProg = exProg
		e.pf("ex := new(%s)", ctypeOf(s.ExceptionPres[i]))
		saved := e.refMap
		e.refMap = map[string]string{"ex": "(*ex)"}
		for k, v := range saved {
			e.refMap[k] = v
		}
		if err := e.ops(exProg.Ops, mir.Unmarshal); err != nil {
			return "", err
		}
		e.refMap = saved
		e.pf("if d.Err() != nil {")
		e.emitRetErr()
		e.pf("}")
		e.pf("err = ex")
		e.pf("return")
		e.indent--
		_ = exName
	}
	e.pf("default:")
	e.indent++
	e.pf("err = d.Fail(rt.ErrBadUnion)")
	e.pf("return")
	e.indent--
	e.pf("}")
	e.indent--
	e.pf("}")
	e.pf("")
	if err := e.emitSubs(prog, mir.Unmarshal); err != nil {
		return "", err
	}
	for _, exProg := range exProgs {
		if err := e.emitSubs(exProg, mir.Unmarshal); err != nil {
			return "", err
		}
	}
	return e.b.String(), nil
}

func (e *emitter) beginBody(dir mir.Dir, refMap map[string]string) {
	e.lenVars = map[string]string{}
	if e.zc {
		e.zcVals = map[string]bool{}
	}
	if refMap == nil {
		refMap = map[string]string{}
	}
	e.refMap = refMap
}

func (e *emitter) emitRetErr() {
	e.indent++
	for _, line := range strings.Split(e.retErr, "\n") {
		e.pf("%s", line)
	}
	e.indent--
}

// emitSubs renders the out-of-line routines of a program into subBuf.
func (e *emitter) emitSubs(prog *mir.Program, dir mir.Dir) error {
	for idx, sub := range prog.Subs {
		name := e.subFuncName(prog, idx, dir)
		if e.subSeen[name] {
			continue
		}
		e.subSeen[name] = true

		saved := e.b
		savedLen, savedRef, savedRet := e.lenVars, e.refMap, e.retErr
		e.b = &strings.Builder{}
		e.beginBody(dir, map[string]string{"v": "(*v)"})
		savedProg := e.curProg
		e.curProg = prog

		ct := ctypeOf(sub.Pres)
		if dir == mir.Marshal {
			e.pf("func %s(e *rt.Encoder, v *%s) {", name, ct)
			e.indent++
			if err := e.ops(sub.Ops, dir); err != nil {
				return err
			}
			e.indent--
			e.pf("}")
			e.pf("")
		} else {
			e.retErr = "return false"
			e.pf("func %s(d *rt.Decoder, v *%s) bool {", name, ct)
			e.indent++
			if err := e.ops(sub.Ops, dir); err != nil {
				return err
			}
			e.pf("return d.Err() == nil")
			e.indent--
			e.pf("}")
			e.pf("")
		}
		e.subBuf.WriteString(e.b.String())
		e.b = saved
		e.curProg = savedProg
		e.lenVars, e.refMap, e.retErr = savedLen, savedRef, savedRet
	}
	return nil
}

func (e *emitter) subFuncName(prog *mir.Program, idx int, dir mir.Dir) string {
	base := prog.Subs[idx].Name
	if dir == mir.Marshal {
		return "xm" + e.cfg.FuncSuffix + base
	}
	return "xu" + e.cfg.FuncSuffix + base
}
