package mir

import (
	"fmt"
	"strings"
	"testing"

	"flick/internal/frontend/corbaidl"
	"flick/internal/pgen"
	"flick/internal/presc"
	"flick/internal/wire"
)

func presOf(t *testing.T, idlType string) Root {
	t.Helper()
	src := fmt.Sprintf(`
		struct point { long x; long y; };
		struct rect { point min; point max; };
		struct stat_info { long fields[30]; char tag[16]; };
		struct dir_entry { string<255> name; stat_info info; };
		interface I { void f(in %s v); };
	`, idlType)
	f, err := corbaidl.Parse("t.idl", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	pf, err := pgen.GenerateGo(f, presc.Client)
	if err != nil {
		t.Fatalf("pgen: %v", err)
	}
	p := pf.Stubs[0].Params[0]
	return Root{Name: "v", Pres: p.Request}
}

func dump(ops []Op) string {
	var b strings.Builder
	dumpOps(&b, ops, 0)
	return b.String()
}

func dumpOps(b *strings.Builder, ops []Op, depth int) {
	ind := strings.Repeat("  ", depth)
	for _, op := range ops {
		switch op := op.(type) {
		case *Ensure:
			fmt.Fprintf(b, "%sensure %d\n", ind, op.Bytes)
		case *EnsureDyn:
			fmt.Fprintf(b, "%sensuredyn %d+%d*n\n", ind, op.Base, op.PerElem)
		case *Align:
			fmt.Fprintf(b, "%salign %d\n", ind, op.N)
		case *Item:
			fmt.Fprintf(b, "%sitem %s w%d %s\n", ind, op.Atom.Kind, op.Wire, op.Val)
		case *ConstItem:
			fmt.Fprintf(b, "%sconst w%d %d\n", ind, op.Wire, op.Value)
		case *LenItem:
			fmt.Fprintf(b, "%slen w%d %s bound=%d\n", ind, op.Wire, op.Val, op.Bound)
		case *Bulk:
			fmt.Fprintf(b, "%sbulk w%d count=%d %s\n", ind, op.ElemWire, op.Count, op.Val)
		case *Loop:
			fmt.Fprintf(b, "%sloop %s count=%d\n", ind, op.Over, op.Count)
			dumpOps(b, op.Body, depth+1)
		case *Opt:
			fmt.Fprintf(b, "%sopt %s\n", ind, op.Val)
			dumpOps(b, op.Body, depth+1)
		case *Switch:
			fmt.Fprintf(b, "%sswitch %s\n", ind, op.On)
			for _, c := range op.Cases {
				fmt.Fprintf(b, "%s case %v\n", ind, c.Values)
				dumpOps(b, c.Body, depth+1)
			}
		case *Chunk:
			fmt.Fprintf(b, "%schunk %d bytes, %d items\n", ind, op.Size, len(op.Items))
		case *CallSub:
			fmt.Fprintf(b, "%scall %d %s\n", ind, op.Sub, op.Arg)
		}
	}
}

func TestFixedStructBecomesOneChunk(t *testing.T) {
	r := presOf(t, "rect")
	prog, err := Lower(Marshal, []Root{r}, wire.XDR{}, AllOptimizations())
	if err != nil {
		t.Fatal(err)
	}
	// A rect is 4 ints = 16 fixed bytes: one Ensure and one Chunk.
	if len(prog.Ops) != 2 {
		t.Fatalf("ops:\n%s", dump(prog.Ops))
	}
	ens, ok := prog.Ops[0].(*Ensure)
	if !ok || ens.Bytes != 16 {
		t.Errorf("first op = %#v, want Ensure{16}", prog.Ops[0])
	}
	ch, ok := prog.Ops[1].(*Chunk)
	if !ok || ch.Size != 16 || len(ch.Items) != 4 {
		t.Fatalf("second op:\n%s", dump(prog.Ops))
	}
	for i, it := range ch.Items {
		if it.Off != i*4 {
			t.Errorf("item %d offset = %d", i, it.Off)
		}
	}
	if prog.Class != FixedSize || prog.FixedBytes != 16 {
		t.Errorf("class=%v fixed=%d", prog.Class, prog.FixedBytes)
	}
}

func TestIntSeqBecomesBulk(t *testing.T) {
	r := presOf(t, "sequence<long>")
	prog, err := Lower(Marshal, []Root{r}, wire.XDR{}, AllOptimizations())
	if err != nil {
		t.Fatal(err)
	}
	s := dump(prog.Ops)
	if !strings.Contains(s, "bulk w4 count=-1") {
		t.Errorf("no bulk transfer:\n%s", s)
	}
	if strings.Contains(s, "loop") {
		t.Errorf("loop survived memcpy pass:\n%s", s)
	}
	if prog.Class != UnboundedSize {
		t.Errorf("class = %v", prog.Class)
	}
}

func TestNoMemcpyKeepsLoop(t *testing.T) {
	r := presOf(t, "sequence<long>")
	opts := AllOptimizations()
	opts.Memcpy = false
	prog, err := Lower(Marshal, []Root{r}, wire.XDR{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	s := dump(prog.Ops)
	if !strings.Contains(s, "loop") || strings.Contains(s, "bulk") {
		t.Errorf("memcpy=off should keep the loop:\n%s", s)
	}
}

func TestNaiveModePerDatumEnsures(t *testing.T) {
	r := presOf(t, "rect")
	prog, err := Lower(Marshal, []Root{r}, wire.XDR{}, NoOptimizations())
	if err != nil {
		t.Fatal(err)
	}
	s := dump(prog.Ops)
	// rpcgen style: the named struct goes out of line.
	if !strings.Contains(s, "call") {
		t.Errorf("no out-of-line call in naive mode:\n%s", s)
	}
	if len(prog.Subs) == 0 {
		t.Fatal("no subprograms in naive mode")
	}
	// rpcgen structure: xdr_rect calls xdr_point per field; xdr_point
	// checks space per datum.
	var rectSub, pointSub *Sub
	for _, su := range prog.Subs {
		if strings.Contains(su.Name, "Rect") {
			rectSub = su
		}
		if strings.Contains(su.Name, "Point") {
			pointSub = su
		}
	}
	if rectSub == nil || pointSub == nil {
		t.Fatalf("missing subs: %v", subNames(prog))
	}
	if got := strings.Count(dump(rectSub.Ops), "call"); got != 2 {
		t.Errorf("rect sub should call point per field:\n%s", dump(rectSub.Ops))
	}
	pointDump := dump(pointSub.Ops)
	if got := strings.Count(pointDump, "ensure"); got != 2 {
		t.Errorf("point sub should check per datum:\n%s", pointDump)
	}
	if strings.Contains(pointDump, "chunk") {
		t.Errorf("chunk in naive mode:\n%s", pointDump)
	}
}

func subNames(p *Program) []string {
	var out []string
	for _, s := range p.Subs {
		out = append(out, s.Name)
	}
	return out
}

func TestDirEntryGrouping(t *testing.T) {
	r := presOf(t, "sequence<dir_entry>")
	prog, err := Lower(Marshal, []Root{r}, wire.XDR{}, AllOptimizations())
	if err != nil {
		t.Fatal(err)
	}
	s := dump(prog.Ops)
	// The bounded name (255) plus the fixed 136-byte stat area should
	// collapse into one per-entry ensure on the marshal side.
	if got := strings.Count(s, "ensure"); got > 3 {
		t.Errorf("too many ensures (%d):\n%s", got, s)
	}
	// The 30-int fields area must be a bulk transfer.
	if !strings.Contains(s, "bulk w4 count=30") {
		t.Errorf("fields not bulk-copied:\n%s", s)
	}
	// The 16-char tag is packed (1-byte elements).
	if !strings.Contains(s, "bulk w1 count=16") {
		t.Errorf("tag not packed:\n%s", s)
	}
}

func TestUnmarshalEnsuresAreExact(t *testing.T) {
	// On the unmarshal side, bounded segments must NOT be provisioned
	// by their bound: a valid message may be smaller.
	r := presOf(t, "dir_entry")
	prog, err := Lower(Unmarshal, []Root{r}, wire.XDR{}, AllOptimizations())
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, op := range prog.Ops {
		if e, ok := op.(*Ensure); ok {
			total += e.Bytes
		}
	}
	// Exact minimum: 4 (length) + 136 (stat) = 140; the 255-byte bound
	// must not appear in any static check.
	if total > 160 {
		t.Errorf("unmarshal ensures total %d (over-reserved):\n%s", total, dump(prog.Ops))
	}
}

func TestRecursiveTypeOutlines(t *testing.T) {
	src := `
		struct node;
		struct node { long v; };
	`
	_ = src
	// Recursive structures come from the ONC front end; build directly.
	f, err := corbaidl.Parse("t.idl", `interface I { void f(in string s); };`)
	if err != nil {
		t.Fatal(err)
	}
	_ = f
	// The gostub tests cover recursion end to end; here check strings:
	r := presOf(t, "string<64>")
	prog, err := Lower(Marshal, []Root{r}, wire.XDR{}, AllOptimizations())
	if err != nil {
		t.Fatal(err)
	}
	s := dump(prog.Ops)
	if !strings.Contains(s, "len w4 v bound=64") {
		t.Errorf("missing bounded length:\n%s", s)
	}
	if !strings.Contains(s, "bulk w1") {
		t.Errorf("string payload not bulk:\n%s", s)
	}
}

func TestCDRAlignmentOps(t *testing.T) {
	// CDR: a string followed by a long needs a runtime Align(4) because
	// the string length is dynamic.
	src := `
		struct mixed { string name; long v; };
		interface I { void f(in mixed m); };
	`
	f, err := corbaidl.Parse("t.idl", src)
	if err != nil {
		t.Fatal(err)
	}
	pf, err := pgen.GenerateGo(f, presc.Client)
	if err != nil {
		t.Fatal(err)
	}
	r := Root{Name: "m", Pres: pf.Stubs[0].Params[0].Request}
	prog, err := Lower(Marshal, []Root{r}, wire.CDR{Little: true}, AllOptimizations())
	if err != nil {
		t.Fatal(err)
	}
	s := dump(prog.Ops)
	if !strings.Contains(s, "align 4") {
		t.Errorf("missing align after dynamic string:\n%s", s)
	}
	// XDR never needs explicit alignment here (strings pad to 4).
	progX, err := Lower(Marshal, []Root{r}, wire.XDR{}, AllOptimizations())
	if err != nil {
		t.Fatal(err)
	}
	sx := dump(progX.Ops)
	// The XDR string pad appears as align 4 after the payload; the
	// following int needs no additional alignment. Count: exactly one.
	if got := strings.Count(sx, "align 4"); got != 1 {
		t.Errorf("XDR aligns = %d, want 1 (payload pad only):\n%s", got, sx)
	}
}

func TestSizeClasses(t *testing.T) {
	tests := []struct {
		idl  string
		want SizeClass
	}{
		{"long", FixedSize},
		{"rect", FixedSize},
		{"stat_info", FixedSize},
		{"string<10>", BoundedSize},
		{"dir_entry", BoundedSize},
		{"string", UnboundedSize},
		{"sequence<long>", UnboundedSize},
		{"sequence<long, 5>", BoundedSize},
	}
	for _, tt := range tests {
		r := presOf(t, tt.idl)
		prog, err := Lower(Marshal, []Root{r}, wire.XDR{}, AllOptimizations())
		if err != nil {
			t.Fatalf("%s: %v", tt.idl, err)
		}
		if prog.Class != tt.want {
			t.Errorf("%s: class = %v, want %v", tt.idl, prog.Class, tt.want)
		}
	}
}

func TestFixedSizeBytes(t *testing.T) {
	r := presOf(t, "stat_info")
	prog, err := Lower(Marshal, []Root{r}, wire.XDR{}, AllOptimizations())
	if err != nil {
		t.Fatal(err)
	}
	// 30*4 + 16 packed = 136: exactly the paper's stat structure size.
	if prog.FixedBytes != 136 {
		t.Errorf("stat_info fixed bytes = %d, want 136", prog.FixedBytes)
	}
}

func TestMarshalUnmarshalSymmetry(t *testing.T) {
	// Every root must lower in both directions without error for every
	// format.
	idls := []string{"long", "rect", "dir_entry", "sequence<dir_entry>",
		"sequence<rect>", "string<255>", "double", "sequence<octet>"}
	formats := []wire.Format{wire.XDR{}, wire.CDR{}, wire.CDR{Little: true}, wire.Mach3{}, wire.Fluke{}}
	for _, idl := range idls {
		r := presOf(t, idl)
		for _, f := range formats {
			for _, dir := range []Dir{Marshal, Unmarshal} {
				if _, err := Lower(dir, []Root{r}, f, AllOptimizations()); err != nil {
					t.Errorf("%s/%s/%s: %v", idl, f.Name(), dir, err)
				}
				if _, err := Lower(dir, []Root{r}, f, NoOptimizations()); err != nil {
					t.Errorf("%s/%s/%s naive: %v", idl, f.Name(), dir, err)
				}
			}
		}
	}
}
