package mir

import (
	"fmt"

	"flick/internal/wire"
)

// The alias/lifetime pass: the analysis that licenses the zero-copy
// fast path. The chunk analysis already proves which regions are
// fixed-layout; this pass proves, per transfer region, whether it is
// safe to *alias* the presented storage on the wire instead of copying
// it through the marshal buffer — and records the proof on the op so
// the emitter can only ever take the fast path for a region the prover
// signed off on (and so the zerocopy verifier can independently
// re-derive and cross-check the claim at the stage boundary).
//
// A region is alias-safe only when all three obligations hold:
//
//   - Byte identity: the wire encoding of the region is bit-for-bit
//     the presented memory (1-byte elements, no bool repacking, no
//     endian or width conversion). Aliasing then produces exactly the
//     bytes a copy would have.
//   - No mutation between marshal and send: once the alias is formed,
//     nothing writes the presented storage before the transport
//     finishes the send. Marshal programs never write presented
//     memory, and the runtime completes vectored sends before Send
//     returns, so the window is the marshal program itself.
//   - Alignment compatibility: the region must not require the wire
//     cursor to be aligned beyond what an appended segment provides.
//     Byte-wide regions require alignment 1, which always holds.
//
// Everything else — chunk windows (assembled in the encoder: length
// prefixes, endian conversion), strings (aliasing immutable string
// bytes needs unsafe), bool arrays (repacked), multi-byte elements
// (conversion) — is classified copy-required with the refusal reason
// recorded.

// AliasClass classifies one transfer region for the zero-copy path.
// The zero value is CopyRequired: an absent or default proof never
// licenses aliasing.
type AliasClass int

const (
	// CopyRequired regions go through the marshal buffer.
	CopyRequired AliasClass = iota
	// AliasSafe regions may be sent as segments referencing the
	// presented storage in place.
	AliasSafe
)

func (c AliasClass) String() string {
	switch c {
	case CopyRequired:
		return "copy-required"
	case AliasSafe:
		return "alias-safe"
	}
	return fmt.Sprintf("AliasClass(%d)", int(c))
}

// AliasProof is the recorded outcome of the alias pass for one region:
// the classification plus the placement and obligation facts it rests
// on. The zerocopy verifier re-derives each field from the op and the
// format and rejects any proof that disagrees — a corrupted proof
// (wrong offset, impossible alignment, admitted mutation) is a compile
// error, not a silent wrong fast path.
type AliasProof struct {
	Class AliasClass
	// Off is the static payload offset at which the region begins, or
	// -1 when dynamic data precedes it and only the lowerer's
	// alignment guarantee remains.
	Off int
	// Align is the alignment the region requires of its wire position
	// (1 for byte-wide regions: any position works).
	Align int
	// ByteIdentical records the byte-identity obligation: wire bytes
	// == presented bytes, so an alias is indistinguishable from a
	// copy.
	ByteIdentical bool
	// NoMutation records the lifetime obligation: no write to the
	// presented storage between forming the alias and the completion
	// of the send.
	NoMutation bool
	// Reason is the human-readable proof summary (alias-safe) or
	// refusal reason (copy-required), surfaced in diagnostics.
	Reason string
}

// aliasPass classifies every Bulk and Chunk region of the program and
// attaches the proofs. It is an annotation pass: it never rewrites
// ops, so it runs for every style (the baselines simply have no bulk
// regions to classify). It replays the same placement cursor the
// lowerer used so each proof records where its region starts.
func aliasPass(prog *Program, f wire.Format, st *Stats) {
	a := &aliaser{dir: prog.Dir, f: f, st: st}
	a.walk(prog.Ops, &cursor{known: true, off: 0, guar: f.MaxAlign()})
	for _, s := range prog.Subs {
		// Subprograms run at an unknown buffer position.
		a.walk(s.Ops, &cursor{known: false, guar: 1})
	}
}

type aliaser struct {
	dir Dir
	f   wire.Format
	st  *Stats
}

// Placement replay over the lowerer's cursor: while the offset is
// statically known we track it exactly; any data-dependent region
// degrades to unknown (reset), matching what the lowerer itself can
// prove.

func (c *cursor) advance(n int) {
	if c.known {
		c.off += n
	}
}

func (c *cursor) align(n int) {
	if n > 1 && c.known {
		c.off += (n - c.off%n) % n
	}
}

func (a *aliaser) walk(ops []Op, cur *cursor) {
	for _, op := range ops {
		switch op := op.(type) {
		case *Align:
			cur.align(op.N)
		case *Ensure, *EnsureDyn:
			// Space checks do not move the cursor.
		case *Item:
			cur.advance(op.Wire)
		case *ConstItem:
			cur.advance(op.Wire)
		case *LenItem:
			cur.advance(op.Wire)
		case *Chunk:
			op.Alias = a.proveChunk(cur)
			a.count(op.Alias)
			cur.advance(op.Size)
		case *Bulk:
			op.Alias = a.proveBulk(op, cur)
			a.count(op.Alias)
			a.advanceBulk(op, cur)
		case *Loop:
			// Element placement inside the body is iteration-relative.
			sub := cursor{known: false, guar: 1}
			a.walk(op.Body, &sub)
			cur.reset()
		case *Opt:
			cur.advance(op.Wire)
			sub := cursor{known: false, guar: 1}
			a.walk(op.Body, &sub)
			cur.reset()
		case *Switch:
			cur.advance(op.Wire)
			for i := range op.Cases {
				sub := cursor{known: false, guar: 1}
				a.walk(op.Cases[i].Body, &sub)
			}
			sub := cursor{known: false, guar: 1}
			a.walk(op.Default, &sub)
			cur.reset()
		case *CallSub:
			cur.reset()
		}
	}
}

func (a *aliaser) advanceBulk(op *Bulk, cur *cursor) {
	if op.Count >= 0 {
		n := op.Count * op.ElemWire
		if op.Nul {
			n += op.ElemWire
		}
		cur.advance(n)
		return
	}
	cur.reset()
}

func (a *aliaser) count(p *AliasProof) {
	if a.st == nil {
		return
	}
	if p.Class == AliasSafe {
		a.st.AliasSafe++
	} else {
		a.st.AliasCopy++
	}
}

func off(cur *cursor) int {
	if cur.known {
		return cur.off
	}
	return -1
}

// proveChunk classifies a fixed-layout chunk. Chunks are always
// copy-required: their atoms are assembled in the marshal buffer
// (length prefixes computed at marshal time, endian conversion through
// binary.* puts), so there is no presented storage whose bytes equal
// the window.
func (a *aliaser) proveChunk(cur *cursor) *AliasProof {
	return &AliasProof{
		Class:  CopyRequired,
		Off:    off(cur),
		Align:  1,
		Reason: "chunk atoms are assembled in the marshal buffer (length prefixes, endian conversion)",
	}
}

// proveBulk classifies a bulk (memcpy-converted) transfer.
func (a *aliaser) proveBulk(op *Bulk, cur *cursor) *AliasProof {
	p := &AliasProof{Off: off(cur), Align: 1}
	refuse := func(reason string) *AliasProof {
		p.Class = CopyRequired
		p.Reason = reason
		return p
	}
	if BulkIsString(op) {
		// Go string bytes are immutable — the safest storage there is
		// — but forming a []byte view of them requires unsafe, which
		// this runtime does not use. On decode the string conversion
		// copies by construction.
		return refuse("string presentation: aliasing string bytes requires unsafe")
	}
	if op.Atom.Kind == wire.BoolAtom {
		return refuse("bool elements are repacked between memory and wire")
	}
	if op.ElemWire != 1 {
		return refuse(fmt.Sprintf("%d-byte wire elements may need endian/width conversion", op.ElemWire))
	}
	if op.Nul {
		return refuse("NUL-terminated region: the terminator is not presented storage")
	}
	if a.dir == Unmarshal && op.Count >= 0 {
		// Fixed arrays decode into caller-owned array storage; there
		// is no slice header to retarget at the arena.
		return refuse("fixed-array storage is caller-owned on decode")
	}
	// Byte identity holds: 1-byte non-bool elements, flat layout.
	p.ByteIdentical = true
	// No mutation: a marshal program only reads presented storage and
	// the runtime completes the send before returning; on decode the
	// obligation is the arena borrow (pin-on-alias Release), enforced
	// by the arenalife analyzer for direct users.
	p.NoMutation = true
	p.Class = AliasSafe
	if a.dir == Marshal {
		p.Reason = "byte-identical region sent in place before any mutation window opens"
	} else {
		p.Reason = "byte-identical region decoded as an arena-borrowed view"
	}
	return p
}

// BulkIsString reports whether the bulk transfers a string
// presentation (shared between the prover and the verifier's
// re-derivation so both look at the same evidence).
func BulkIsString(op *Bulk) bool {
	if op.OverPres == nil {
		return false
	}
	s, ok := op.OverPres.Resolve().CType.(string)
	return ok && s == "string"
}
