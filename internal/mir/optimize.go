package mir

import "flick/internal/wire"

// The optimizer passes. Order matters: bulk conversion first (it rewrites
// loops), then ensure grouping (it absorbs the rewritten checks), then
// chunking (it merges the statically placed survivors).

func optimize(prog *Program, f wire.Format, opts Options) {
	// st is always non-nil inside the passes; a throwaway sink stands
	// in when the caller did not ask for counters.
	st := opts.Stats
	if st == nil {
		st = new(Stats)
	}
	st.Programs++
	run := func(ops []Op) []Op {
		if opts.Memcpy {
			ops = memcpyPass(ops, st)
		}
		if opts.GroupEnsures {
			ops = groupPass(ops, opts.BoundedThreshold, prog.Dir, st)
		}
		if opts.Chunk {
			ops = chunkPass(ops, st)
		}
		return ops
	}
	prog.Ops = run(prog.Ops)
	for _, s := range prog.Subs {
		s.Ops = run(s.Ops)
	}
	// The alias pass annotates the (final) op layout with zero-copy
	// proofs; it rewrites nothing, so it runs for every option set.
	aliasPass(prog, f, st)
}

// --- memcpy / bulk conversion -------------------------------------------

// memcpyPass converts element loops over atomic types into Bulk transfers
// with a single dynamic space check. It recurses into nested bodies.
func memcpyPass(ops []Op, st *Stats) []Op {
	out := make([]Op, 0, len(ops))
	for _, op := range ops {
		switch op := op.(type) {
		case *Loop:
			op.Body = memcpyPass(op.Body, st)
			if item, ok := atomicLoopBody(op); ok {
				st.BulkArrays++
				if op.Count >= 0 {
					out = append(out,
						&Ensure{Bytes: op.Count * item.Wire},
						&Bulk{Val: op.Over, Atom: item.Atom, ElemWire: item.Wire, Count: op.Count, Pres: item.Pres, OverPres: op.OverPres})
				} else {
					out = append(out,
						&EnsureDyn{PerElem: item.Wire, Count: op.Over, Pres: op.OverPres},
						&Bulk{Val: op.Over, Atom: item.Atom, ElemWire: item.Wire, Count: -1, Pres: item.Pres, OverPres: op.OverPres})
				}
				continue
			}
			out = append(out, op)
		case *Opt:
			op.Body = memcpyPass(op.Body, st)
			out = append(out, op)
		case *Switch:
			for i := range op.Cases {
				op.Cases[i].Body = memcpyPass(op.Cases[i].Body, st)
			}
			op.Default = memcpyPass(op.Default, st)
			out = append(out, op)
		default:
			out = append(out, op)
		}
	}
	return out
}

// atomicLoopBody matches a loop body of exactly [Ensure, Item(elem)]: a
// per-element scalar transfer eligible for bulk copying.
func atomicLoopBody(l *Loop) (*Item, bool) {
	if len(l.Body) != 2 {
		return nil, false
	}
	if _, isEnsure := l.Body[0].(*Ensure); !isEnsure {
		return nil, false
	}
	item, isItem := l.Body[1].(*Item)
	if !isItem {
		return nil, false
	}
	elem, isElem := item.Val.(*Elem)
	if !isElem || elem.Var != l.Var {
		return nil, false
	}
	return item, true
}

// --- ensure grouping ------------------------------------------------------

// groupPass implements the paper's marshal buffer management: one space
// check per maximal statically bounded segment. Fixed-count loops and
// all-static switches are absorbed when they fit under the threshold.
//
// The two directions differ fundamentally: marshal Grow may over-reserve
// freely (the paper ensures the *maximum* size of bounded segments), but
// unmarshal Ensure is a truncation check and must be exact — a valid
// message may end immediately after its last datum. So on the unmarshal
// side only exactly-sized runs group: Align ops (whose runtime padding is
// data-dependent) and variable-size constructs flush the run instead of
// being absorbed.
func groupPass(ops []Op, threshold int, dir Dir, st *Stats) []Op {
	exact := dir == Unmarshal
	var out []Op
	var run []Op
	runBytes := 0
	flush := func() {
		if runBytes > 0 {
			st.SpaceChecksAfter++
			out = append(out, &Ensure{Bytes: runBytes})
		}
		out = append(out, run...)
		run, runBytes = nil, 0
	}
	for i := 0; i < len(ops); i++ {
		switch op := ops[i].(type) {
		case *Ensure:
			st.SpaceChecksBefore++
			runBytes += op.Bytes
		case *Align:
			if exact {
				// The pad consumed is data-dependent; the Align op
				// performs its own bounds check, so it opens a new
				// exactly-counted run.
				flush()
				out = append(out, op)
			} else {
				runBytes += op.N - 1
				run = append(run, op)
			}
		case *Item, *ConstItem, *LenItem:
			run = append(run, ops[i])
		case *Bulk:
			run = append(run, op)
		case *EnsureDyn:
			st.SpaceChecksBefore++
			// Marshal only: a bounded Bulk under the threshold can be
			// provisioned by its bound up front.
			if !exact && i+1 < len(ops) {
				if b, isBulk := ops[i+1].(*Bulk); isBulk && b.Count < 0 {
					if bound := boundOfBulk(run, b); bound > 0 && bound*op.PerElem <= threshold {
						runBytes += bound*op.PerElem + op.Base
						continue
					}
				}
			}
			flush()
			st.SpaceChecksAfter++
			out = append(out, op)
		case *Loop:
			op.Body = groupPass(op.Body, threshold, dir, st)
			if cost, static := staticCost(op.Body); static {
				total := 0
				fits := false
				if op.Count >= 0 {
					total = op.Count * cost
					fits = total <= threshold || op.Count == 0
				} else if !exact {
					if bound := boundOfLoop(run, op); bound > 0 && bound*cost <= threshold {
						total = bound * cost
						fits = true
					}
				}
				if fits {
					runBytes += total
					op.Body = stripLeadingEnsure(op.Body, st)
					run = append(run, op)
					continue
				}
			}
			flush()
			out = append(out, op)
		case *Switch:
			for j := range op.Cases {
				op.Cases[j].Body = groupPass(op.Cases[j].Body, threshold, dir, st)
			}
			op.Default = groupPass(op.Default, threshold, dir, st)
			if maxArm, static := staticSwitch(op); static && maxArm <= threshold && !exact {
				runBytes += maxArm
				for j := range op.Cases {
					op.Cases[j].Body = stripLeadingEnsure(op.Cases[j].Body, st)
				}
				op.Default = stripLeadingEnsure(op.Default, st)
				run = append(run, op)
				continue
			}
			flush()
			out = append(out, op)
		case *Opt:
			op.Body = groupPass(op.Body, threshold, dir, st)
			flush()
			out = append(out, op)
		case *CallSub:
			flush()
			out = append(out, op)
		default:
			flush()
			out = append(out, ops[i])
		}
	}
	flush()
	return out
}

// boundOfBulk finds the length bound for a dynamic bulk transfer from the
// LenItem earlier in the current run that names the same value.
func boundOfBulk(run []Op, b *Bulk) int {
	return boundOfVal(run, b.Val)
}

func boundOfLoop(run []Op, l *Loop) int {
	return boundOfVal(run, l.Over)
}

func boundOfVal(run []Op, val Ref) int {
	want := val.String()
	for i := len(run) - 1; i >= 0; i-- {
		if li, ok := run[i].(*LenItem); ok && li.Val.String() == want {
			if li.Bound > 0 && li.Bound < uint64(0xFFFFFFFF) {
				return int(li.Bound)
			}
			return 0
		}
	}
	return 0
}

// staticCost sums the provisioning of a grouped op list: a body is static
// when its only space requirements are Ensure ops (everything else was
// provisioned by them).
func staticCost(ops []Op) (int, bool) {
	total := 0
	for _, op := range ops {
		switch op := op.(type) {
		case *Ensure:
			total += op.Bytes
		case *Item, *ConstItem, *LenItem, *Align, *Bulk, *Chunk:
			// provisioned by a preceding Ensure in the same list
		default:
			return 0, false
		}
	}
	return total, true
}

func staticSwitch(sw *Switch) (int, bool) {
	maxArm := 0
	for _, c := range sw.Cases {
		cost, static := staticCost(c.Body)
		if !static {
			return 0, false
		}
		if cost > maxArm {
			maxArm = cost
		}
	}
	if sw.HasDefault {
		cost, static := staticCost(sw.Default)
		if !static {
			return 0, false
		}
		if cost > maxArm {
			maxArm = cost
		}
	}
	return maxArm, true
}

// stripLeadingEnsure drops the Ensure ops of a body absorbed into an
// enclosing grouped check; the recursive groupPass already counted
// them as emitted, so absorption un-counts them.
func stripLeadingEnsure(ops []Op, st *Stats) []Op {
	var out []Op
	for _, op := range ops {
		if _, isEnsure := op.(*Ensure); isEnsure {
			st.SpaceChecksAfter--
			continue
		}
		out = append(out, op)
	}
	return out
}

// --- chunking --------------------------------------------------------------

// chunkPass merges maximal runs of statically placed atoms into Chunk
// regions addressed by constant offsets (the paper's chunk-pointer
// optimization, a form of common subexpression elimination on the buffer
// cursor). An Align op starts a new chunk; everything dynamic ends one.
func chunkPass(ops []Op, st *Stats) []Op {
	var out []Op
	var items []ChunkItem
	off := 0
	flush := func() {
		if len(items) >= 2 {
			st.Chunks++
			st.ChunkItems += len(items)
			st.ChunkBytes += off
			out = append(out, &Chunk{Size: off, Items: items})
		} else {
			// A one-item chunk is just the item.
			for _, it := range items {
				out = append(out, chunkItemToOp(it))
			}
		}
		items, off = nil, 0
	}
	for _, op := range ops {
		switch op := op.(type) {
		case *Item:
			items = append(items, ChunkItem{Off: off, Atom: op.Atom, Wire: op.Wire, Val: op.Val, Pres: op.Pres})
			off += op.Wire
		case *ConstItem:
			v := op.Value
			items = append(items, ChunkItem{Off: off, Atom: op.Atom, Wire: op.Wire, Const: &v})
			off += op.Wire
		case *LenItem:
			items = append(items, ChunkItem{
				Off: off, Atom: wire.U32, Wire: op.Wire, Val: op.Val,
				IsLen: true, Bound: op.Bound, Nul: op.Nul, Pres: op.Pres,
			})
			off += op.Wire
		case *Align:
			flush()
			out = append(out, op)
		case *Loop:
			op.Body = chunkPass(op.Body, st)
			flush()
			out = append(out, op)
		case *Opt:
			op.Body = chunkPass(op.Body, st)
			flush()
			out = append(out, op)
		case *Switch:
			for j := range op.Cases {
				op.Cases[j].Body = chunkPass(op.Cases[j].Body, st)
			}
			op.Default = chunkPass(op.Default, st)
			flush()
			out = append(out, op)
		default:
			flush()
			out = append(out, op)
		}
	}
	flush()
	return out
}

func chunkItemToOp(it ChunkItem) Op {
	switch {
	case it.Const != nil:
		return &ConstItem{Atom: it.Atom, Wire: it.Wire, Value: *it.Const}
	case it.IsLen:
		return &LenItem{Wire: it.Wire, Val: it.Val, Bound: it.Bound, Nul: it.Nul, Pres: it.Pres}
	default:
		return &Item{Atom: it.Atom, Wire: it.Wire, Val: it.Val, Pres: it.Pres}
	}
}
