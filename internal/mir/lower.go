package mir

import (
	"fmt"

	"flick/internal/mint"
	"flick/internal/pres"
	"flick/internal/wire"
)

// Lower compiles the PRES trees of a message payload into a marshal or
// unmarshal program for the given wire format, then runs the optimizer
// passes enabled in opts.
//
// The generated program assumes the payload begins at an offset aligned
// to the format's MaxAlign (back ends arrange message headers so this
// holds).
func Lower(dir Dir, roots []Root, f wire.Format, opts Options) (*Program, error) {
	lo := &lowerer{
		dir:      dir,
		f:        f,
		opts:     opts,
		subIndex: map[*pres.Node]int{},
		active:   map[*pres.Node]int{},
	}
	cur := &cursor{known: true, off: 0, guar: f.MaxAlign()}
	var ops []Op
	for i, r := range roots {
		o, err := lo.lowerNode(r.Pres, &Param{Name: r.Name, Index: i}, cur)
		if err != nil {
			return nil, err
		}
		ops = append(ops, o...)
	}
	prog := &Program{Dir: dir, Ops: ops, Subs: lo.subs}
	classify(prog, roots, f)
	if cur.known {
		// The lowering cursor gives the exact encoded size of fully
		// static payloads (classify's estimate includes pad slack).
		prog.FixedBytes = cur.off
	}
	optimize(prog, f, opts)
	return prog, nil
}

type cursor struct {
	// known: the absolute payload offset is statically known to be off.
	known bool
	off   int
	// guar: when !known, the offset is guaranteed ≡ 0 (mod guar).
	guar int
}

func (c *cursor) reset() { c.known = false; c.guar = 1 }

type lowerer struct {
	dir  Dir
	f    wire.Format
	opts Options
	// subs accumulates out-of-line routines; subIndex maps the defining
	// PRES node to its slot; active marks nodes currently being lowered
	// inline (to cut recursion).
	subs     []*Sub
	subIndex map[*pres.Node]int
	active   map[*pres.Node]int
	loopSeq  int
}

// align emits the padding op (if any) needed before an item with the
// given alignment and updates the cursor.
func (lo *lowerer) align(cur *cursor, a int, out *[]Op) {
	if a <= 1 {
		return
	}
	if cur.known {
		pad := (a - cur.off%a) % a
		if pad > 0 {
			*out = append(*out, &Align{N: a})
			cur.off += pad
		}
		return
	}
	if cur.guar >= a {
		return
	}
	*out = append(*out, &Align{N: a})
	cur.guar = a
}

// advance updates the cursor after size bytes were produced.
func (lo *lowerer) advance(cur *cursor, size int) {
	if cur.known {
		cur.off += size
		return
	}
	cur.guar = gcd(cur.guar, size)
}

func gcd(a, b int) int {
	if a < 1 {
		a = 1
	}
	if b < 1 {
		b = 1
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// atomOf extracts the wire atom behind an atomic MINT node. ok=false for
// non-atomic nodes.
func atomOf(m mint.Type) (a wire.Atom, constVal *uint64, ok bool) {
	switch m := mint.Deref(m).(type) {
	case *mint.Integer:
		bits, signed := m.Bits()
		k := wire.UInt
		if signed {
			k = wire.SInt
		}
		if m.Range == 0 {
			v := uint64(m.Min)
			return wire.Atom{Kind: k, Bits: 32}, &v, true
		}
		return wire.Atom{Kind: k, Bits: bits}, nil, true
	case *mint.Scalar:
		switch m.Kind {
		case mint.Boolean:
			return wire.Bool, nil, true
		case mint.Char8:
			return wire.Char, nil, true
		case mint.Float32:
			return wire.F32, nil, true
		case mint.Float64:
			return wire.F64, nil, true
		}
	case *mint.Const:
		a, _, ok := atomOf(m.Of)
		if !ok {
			return wire.Atom{}, nil, false
		}
		v := uint64(m.Value)
		return a, &v, true
	}
	return wire.Atom{}, nil, false
}

func (lo *lowerer) lowerNode(n *pres.Node, val Ref, cur *cursor) ([]Op, error) {
	n = n.Resolve() // RefKind handled by outlining below

	// Recursive or non-inlined aggregates go out of line.
	if lo.shouldOutline(n) {
		idx, err := lo.outline(n)
		if err != nil {
			return nil, err
		}
		// Unknown buffer position follows an out-of-line call.
		cur.reset()
		return []Op{&CallSub{Sub: idx, Arg: val}}, nil
	}
	if lo.opts.Stats != nil {
		switch n.Kind {
		case pres.StructKind, pres.UnionKind:
			// An aggregate expanded in place: the inlining optimization.
			lo.opts.Stats.InlinedAggregates++
		}
	}
	return lo.lowerNodeBody(n, val, cur)
}

// lowerNodeBody compiles n in place, without the out-of-line check (the
// entry point for both inline expansion and subprogram bodies).
func (lo *lowerer) lowerNodeBody(n *pres.Node, val Ref, cur *cursor) ([]Op, error) {
	var out []Op
	switch n.Kind {
	case pres.VoidKind:
		return nil, nil

	case pres.DirectKind, pres.EnumKind:
		a, cv, ok := atomOf(n.Mint)
		if !ok {
			return nil, fmt.Errorf("mir: %s node over non-atomic mint %s", n.Kind, n.Mint)
		}
		w := lo.f.WireSize(a)
		lo.align(cur, lo.f.Align(a), &out)
		out = append(out, &Ensure{Bytes: w})
		if cv != nil {
			out = append(out, &ConstItem{Atom: a, Wire: w, Value: *cv})
		} else {
			out = append(out, &Item{Atom: a, Wire: w, Val: val, Pres: n})
		}
		lo.advance(cur, w)
		return out, nil

	case pres.CountedKind, pres.TerminatedKind:
		return lo.lowerCounted(n, val, cur)

	case pres.FixedArrayKind:
		arr := mint.Deref(n.Mint).(*mint.Array)
		count := int(arr.FixedLen())
		return lo.lowerArrayPayload(n, val, cur, count, nil)

	case pres.StructKind:
		lo.active[n]++
		defer func() { lo.active[n]-- }()
		for i, child := range n.Children {
			fieldRef := &Field{Base: val, Name: n.FieldNames[i], Index: i}
			o, err := lo.lowerNode(child, fieldRef, cur)
			if err != nil {
				return nil, err
			}
			out = append(out, o...)
		}
		return out, nil

	case pres.UnionKind:
		return lo.lowerUnion(n, val, cur)

	case pres.OptPtrKind:
		lo.active[n]++
		defer func() { lo.active[n]-- }()
		w := lo.f.WireSize(wire.Bool)
		lo.align(cur, lo.f.Align(wire.Bool), &out)
		out = append(out, &Ensure{Bytes: w})
		lo.advance(cur, w)
		// The body starts at unknown alignment only in formats where
		// the flag leaves it misaligned; track through a copy.
		inner := *cur
		body, err := lo.lowerNode(n.Elem(), &Deref{Base: val}, &inner)
		if err != nil {
			return nil, err
		}
		out = append(out, &Opt{Val: val, Wire: w, Body: body, Pres: n})
		// After an optional region the cursor is data-dependent.
		lo.mergeCursor(cur, &inner)
		return out, nil

	default:
		return nil, fmt.Errorf("mir: unhandled pres kind %s", n.Kind)
	}
}

// mergeCursor merges a branch cursor into the main cursor: the main path
// may or may not have taken the branch, so only common guarantees remain.
func (lo *lowerer) mergeCursor(cur, branch *cursor) {
	if cur.known && branch.known && cur.off == branch.off {
		return
	}
	g := 1
	if cur.known && branch.known {
		d := branch.off - cur.off
		if d < 0 {
			d = -d
		}
		g = gcd(gcd(cur.off, branch.off), d)
		if g == 0 {
			g = lo.f.MaxAlign()
		}
	}
	cur.known = false
	if g < 1 {
		g = 1
	}
	cur.guar = g
}

func (lo *lowerer) lowerCounted(n *pres.Node, val Ref, cur *cursor) ([]Op, error) {
	lo.active[n]++
	defer func() { lo.active[n]-- }()
	arr, ok := mint.Deref(n.Mint).(*mint.Array)
	if !ok {
		return nil, fmt.Errorf("mir: counted node over %s", n.Mint)
	}
	var out []Op
	w := lo.f.LenSize()
	lenAtom := wire.U32
	lo.align(cur, lo.f.Align(lenAtom), &out)
	out = append(out, &Ensure{Bytes: w})
	nul := lo.f.StringNul() && isCharArray(arr)
	out = append(out, &LenItem{Wire: w, Val: val, Bound: arr.Length.Range, Nul: nul, Pres: n})
	lo.advance(cur, w)
	payload, err := lo.lowerArrayPayload(n, val, cur, -1, arr)
	if err != nil {
		return nil, err
	}
	out = append(out, payload...)
	if nul {
		out = append(out, &Ensure{Bytes: 1}, &ConstItem{Atom: wire.Char, Wire: 1, Value: 0})
		lo.advance(cur, 1)
	}
	return out, nil
}

func isCharArray(arr *mint.Array) bool {
	s, ok := mint.Deref(arr.Elem).(*mint.Scalar)
	return ok && s.Kind == mint.Char8
}

func isByteArray(arr *mint.Array) bool {
	if isCharArray(arr) {
		return true
	}
	i, ok := mint.Deref(arr.Elem).(*mint.Integer)
	if !ok {
		return false
	}
	bits, _ := i.Bits()
	return bits == 8
}

// lowerArrayPayload emits the element transfer for a fixed (count ≥ 0) or
// counted (count < 0, arr != nil) array.
func (lo *lowerer) lowerArrayPayload(n *pres.Node, val Ref, cur *cursor, count int, arr *mint.Array) ([]Op, error) {
	elem := n.Elem()
	var out []Op
	ea, eConst, isAtom := atomOf(elem.Resolve().Mint)
	ew := 0
	packed := false
	if isAtom {
		ew = lo.f.ArrayElemSize(ea)
		packed = ew != lo.f.WireSize(ea)
	}
	pad := 0
	if isAtom && ew == 1 {
		pad = lo.f.ArrayPad()
		if pad <= 1 {
			pad = 0
		}
	}

	// Element loop. Each iteration starts at an alignment we compute
	// conservatively; the optimizer may convert the loop to a Bulk.
	lo.loopSeq++
	loopVar := fmt.Sprintf("e%d", lo.loopSeq)
	var body []Op
	bodyCur := &cursor{known: false, guar: 1}
	if isAtom && eConst == nil {
		// Atomic elements: build the per-element transfer directly so
		// packed array encodings (XDR opaque) use the packed width.
		body = []Op{
			&Ensure{Bytes: ew},
			&Item{Atom: ea, Wire: ew, Val: &Elem{Var: loopVar}, Pres: elem.Resolve()},
		}
		bodyCur.guar = ew
	} else {
		// For fixed-size elements whose layout is naturally aligned
		// (a trial lowering from an aligned origin emits no padding),
		// the loop provably preserves alignment g = gcd(entry, stride)
		// when g covers every internal requirement. This kills the
		// conservative per-item Align ops inside struct loops.
		if stride, maxA, natural := lo.elemStride(elem); natural {
			entry := cur.guar
			if cur.known {
				entry = lo.f.MaxAlign()
				for entry > 1 && cur.off%entry != 0 {
					entry /= 2
				}
			}
			if g := gcd(entry, stride); g >= maxA {
				bodyCur.guar = g
			}
		}
		var err error
		body, err = lo.lowerNode(elem, &Elem{Var: loopVar}, bodyCur)
		if err != nil {
			return nil, err
		}
	}
	// Pre-loop alignment: align to the element's first requirement.
	if isAtom && !packed {
		lo.align(cur, lo.f.Align(ea), &out)
	}
	out = append(out, &Loop{Over: val, Var: loopVar, Count: count, Body: body, ElemPres: elem.Resolve(), OverPres: n})
	if pad > 0 {
		out = append(out, &Align{N: pad})
	}
	// After a dynamic payload the offset is data-dependent.
	if count >= 0 && cur.known && isAtom {
		lo.advance(cur, count*ew)
		if pad > 0 {
			lo.align(cur, pad, &out)
		}
	} else {
		cur.known = false
		g := bodyCur.guar
		if pad > 0 {
			g = maxInt(g, pad)
		}
		cur.guar = maxInt(1, g)
	}
	return out, nil
}

// elemStride trial-lowers an element type from an aligned origin. It
// reports the element's constant encoded size, the largest alignment it
// requires, and whether its layout is "natural" (no padding was needed
// from the aligned origin and the size is statically known).
func (lo *lowerer) elemStride(elem *pres.Node) (stride, maxAlign int, ok bool) {
	topts := lo.opts
	topts.Stats = nil // trial lowering must not pollute the counters
	trial := &lowerer{
		dir:      lo.dir,
		f:        lo.f,
		opts:     topts,
		subIndex: map[*pres.Node]int{},
		active:   map[*pres.Node]int{},
	}
	cur := &cursor{known: true, off: 0, guar: lo.f.MaxAlign()}
	ops, err := trial.lowerNode(elem, &Param{Name: "t"}, cur)
	if err != nil || !cur.known || len(trial.subs) > 0 {
		return 0, 0, false
	}
	if hasAlign(ops) || hasDynamic(ops) {
		return 0, 0, false
	}
	return cur.off, maxAlignOf(ops, lo.f), true
}

func hasAlign(ops []Op) bool {
	for _, op := range ops {
		switch op := op.(type) {
		case *Align:
			return true
		case *Loop:
			if hasAlign(op.Body) {
				return true
			}
		case *Opt:
			if hasAlign(op.Body) {
				return true
			}
		case *Switch:
			for _, c := range op.Cases {
				if hasAlign(c.Body) {
					return true
				}
			}
			if hasAlign(op.Default) {
				return true
			}
		}
	}
	return false
}

// hasDynamic reports data-dependent size (loops with dynamic counts,
// optionals, unions): their strides vary, so no alignment is provable.
func hasDynamic(ops []Op) bool {
	for _, op := range ops {
		switch op := op.(type) {
		case *Opt, *Switch, *LenItem, *EnsureDyn, *CallSub:
			return true
		case *Loop:
			if op.Count < 0 || hasDynamic(op.Body) {
				return true
			}
		}
	}
	return false
}

func maxAlignOf(ops []Op, f wire.Format) int {
	m := 1
	for _, op := range ops {
		switch op := op.(type) {
		case *Item:
			m = maxInt(m, f.Align(op.Atom))
		case *ConstItem:
			m = maxInt(m, f.Align(op.Atom))
		case *Loop:
			m = maxInt(m, maxAlignOf(op.Body, f))
		}
	}
	return m
}

func arrOf(n *pres.Node) *mint.Array {
	if a, ok := mint.Deref(n.Mint).(*mint.Array); ok {
		return a
	}
	return nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func (lo *lowerer) lowerUnion(n *pres.Node, val Ref, cur *cursor) ([]Op, error) {
	lo.active[n]++
	defer func() { lo.active[n]-- }()
	u, ok := mint.Deref(n.Mint).(*mint.Union)
	if !ok {
		return nil, fmt.Errorf("mir: union node over %s", n.Mint)
	}
	da, _, ok := atomOf(u.Discrim)
	if !ok {
		return nil, fmt.Errorf("mir: union discriminator %s is not atomic", u.Discrim)
	}
	var out []Op
	w := lo.f.WireSize(da)
	lo.align(cur, lo.f.Align(da), &out)
	out = append(out, &Ensure{Bytes: w})
	lo.advance(cur, w)

	sw := &Switch{
		On:   &Field{Base: val, Name: "D", Index: -1},
		Atom: da,
		Wire: w,
		Pres: n,
	}
	// Group mint cases that share a child (multi-label arms were
	// duplicated during presentation generation).
	type armKey struct {
		child *pres.Node
		name  string
	}
	var arms []*SwitchCase
	armFor := map[armKey]*SwitchCase{}
	firstBranch := true
	var mergedCur cursor
	for i, c := range u.Cases {
		child := n.Children[i]
		name := ""
		if i < len(n.FieldNames) {
			name = n.FieldNames[i]
		}
		key := armKey{child, name}
		if arm, ok := armFor[key]; ok {
			arm.Values = append(arm.Values, c.Value)
			continue
		}
		branchCur := *cur
		var armVal Ref = val
		if name != "" {
			armVal = &Field{Base: val, Name: name, Index: i}
		}
		body, err := lo.lowerNode(child, armVal, &branchCur)
		if err != nil {
			return nil, err
		}
		arm := &SwitchCase{Values: []int64{c.Value}, Body: body}
		armFor[key] = arm
		arms = append(arms, arm)
		if firstBranch {
			mergedCur = branchCur
			firstBranch = false
		} else {
			lo.mergeCursor(&mergedCur, &branchCur)
		}
	}
	for _, a := range arms {
		sw.Cases = append(sw.Cases, *a)
	}
	if u.Default != nil {
		defIdx := len(u.Cases)
		var defChild *pres.Node
		var defName string
		if defIdx < len(n.Children) {
			defChild = n.Children[defIdx]
			if defIdx < len(n.FieldNames) {
				defName = n.FieldNames[defIdx]
			}
		}
		branchCur := *cur
		if defChild != nil {
			var armVal Ref = val
			if defName != "" {
				armVal = &Field{Base: val, Name: defName, Index: defIdx}
			}
			body, err := lo.lowerNode(defChild, armVal, &branchCur)
			if err != nil {
				return nil, err
			}
			sw.Default = body
		}
		sw.HasDefault = true
		if firstBranch {
			mergedCur = branchCur
			firstBranch = false
		} else {
			lo.mergeCursor(&mergedCur, &branchCur)
		}
	}
	if !firstBranch {
		*cur = mergedCur
	}
	out = append(out, sw)
	return out, nil
}

// shouldOutline reports whether node n must be compiled out of line:
// always for active (recursive) nodes, and for every named aggregate when
// inlining is disabled.
func (lo *lowerer) shouldOutline(n *pres.Node) bool {
	if lo.active[n] > 0 {
		return true
	}
	if _, already := lo.subIndex[n]; already {
		return true
	}
	if lo.opts.Inline {
		return false
	}
	switch n.Kind {
	case pres.StructKind, pres.UnionKind:
		return true
	case pres.CountedKind, pres.FixedArrayKind:
		// Named sequence/array typedefs get their own routines in
		// rpcgen; element type named-ness decides.
		e := n.Elem().Resolve()
		return e.Kind == pres.StructKind || e.Kind == pres.UnionKind
	}
	return false
}

// outline compiles n as an out-of-line subprogram and returns its index.
func (lo *lowerer) outline(n *pres.Node) (int, error) {
	if idx, ok := lo.subIndex[n]; ok {
		return idx, nil
	}
	idx := len(lo.subs)
	sub := &Sub{Name: subName(n, idx), Pres: n}
	lo.subs = append(lo.subs, sub)
	lo.subIndex[n] = idx
	if lo.opts.Stats != nil {
		lo.opts.Stats.OutOfLineSubs++
	}

	// Inside a subprogram nothing is known about buffer position. The
	// body compiles without the outline check (recursive inner
	// references hit subIndex and become CallSub ops).
	cur := &cursor{known: false, guar: 1}
	body, err := lo.lowerNodeBody(n, &Param{Name: "v", Index: 0}, cur)
	if err != nil {
		return 0, err
	}
	sub.Ops = body
	return idx, nil
}

func subName(n *pres.Node, idx int) string {
	if n.Name != "" {
		return n.Name
	}
	if s, ok := n.CType.(string); ok && s != "" {
		return sanitizeName(s)
	}
	return fmt.Sprintf("sub%d", idx)
}

func sanitizeName(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			out = append(out, r)
		case r == '[':
			out = append(out, '_')
		case r == '*':
			out = append(out, 'P')
		}
	}
	if len(out) == 0 {
		return "t"
	}
	return string(out)
}
