// Package mir defines Flick's marshal intermediate representation: the
// language- and transport-independent programs that encode (marshal) or
// decode (unmarshal) message payloads. Back ends lower PRES trees plus a
// wire format into mir programs; emitters then render the programs as C
// (through CAST) or Go source, and the interpretive baselines deliberately
// bypass this layer.
//
// The §3 optimizations of the paper live here:
//
//   - grouped buffer management (one Ensure per maximal fixed-size or
//     bounded message segment instead of one per atom),
//   - chunking (constant chunk pointer + constant offsets inside
//     fixed-layout regions),
//   - memcpy/bulk copying of byte-compatible arrays,
//   - inlining (aggregate marshal code expanded in place; out-of-line
//     subprograms only for recursion, or everywhere when disabled).
//
// Each is independently switchable through Options so the ablation
// benchmarks can quantify it.
package mir

import (
	"fmt"

	"flick/internal/pres"
	"flick/internal/wire"
)

// Dir says whether a program encodes or decodes.
type Dir int

const (
	Marshal Dir = iota
	Unmarshal
)

func (d Dir) String() string {
	if d == Marshal {
		return "marshal"
	}
	return "unmarshal"
}

// Options toggle the optimizations (all on in production; selectively off
// for ablation benchmarks and for modeling naive compilers).
type Options struct {
	// GroupEnsures emits one buffer-space check per maximal statically
	// bounded segment. Off: one check per atomic datum (rpcgen style).
	GroupEnsures bool
	// Chunk merges runs of statically placed atoms into fixed-layout
	// chunks addressed by constant offsets from a chunk pointer.
	Chunk bool
	// Memcpy bulk-copies arrays whose element encoding is
	// byte-compatible with the presented layout.
	Memcpy bool
	// Inline expands aggregate marshal code in place; off, every named
	// aggregate becomes an out-of-line subprogram call.
	Inline bool
	// BoundedThreshold is the byte limit under which a
	// variable-but-bounded segment is treated like a fixed segment for
	// Ensure grouping (the paper's 8KB threshold).
	BoundedThreshold int
	// Stats, when non-nil, accumulates optimizer counters across every
	// program lowered with these options (the paper's §3 claims as
	// observable numbers). Collection does not change the generated
	// code.
	Stats *Stats
}

// Stats counts what the optimizer did: how many buffer-space checks
// grouping removed, how many fixed-layout chunks formed, how many
// element loops became bulk copies, and how inlining split aggregates
// between in-place expansion and out-of-line subprograms. One Stats
// may accumulate across many programs (Programs counts them).
type Stats struct {
	// Programs is the number of marshal/unmarshal programs optimized.
	Programs int `json:"programs"`
	// SpaceChecksBefore / SpaceChecksAfter count the Ensure (and
	// dynamic Ensure) ops entering and leaving the grouping pass: the
	// difference is the checks the paper's grouped buffer management
	// eliminated. Zero when grouping is disabled.
	SpaceChecksBefore int `json:"space_checks_before"`
	SpaceChecksAfter  int `json:"space_checks_after"`
	// Chunks / ChunkItems / ChunkBytes describe the fixed-layout
	// regions the chunking pass formed: regions, atoms placed at
	// constant offsets within them, and their total byte size.
	Chunks     int `json:"chunks"`
	ChunkItems int `json:"chunk_items"`
	ChunkBytes int `json:"chunk_bytes"`
	// BulkArrays counts element loops converted to single bulk
	// (memcpy-style) transfers.
	BulkArrays int `json:"bulk_arrays"`
	// AliasSafe / AliasCopy count the transfer regions the alias pass
	// proved safe to send or decode in place versus the regions it
	// required to go through the marshal buffer (the zero-copy
	// licensing decision, surfaced under -stats).
	AliasSafe int `json:"alias_safe"`
	AliasCopy int `json:"alias_copy"`
	// InlinedAggregates counts named aggregates expanded in place;
	// OutOfLineSubs counts subprograms emitted instead (recursive
	// types, or everything when inlining is off).
	InlinedAggregates int `json:"inlined_aggregates"`
	OutOfLineSubs     int `json:"out_of_line_subs"`
}

// SpaceChecksEliminated returns the checks removed by grouping.
func (s *Stats) SpaceChecksEliminated() int {
	return s.SpaceChecksBefore - s.SpaceChecksAfter
}

// Add accumulates o into s.
func (s *Stats) Add(o Stats) {
	s.Programs += o.Programs
	s.SpaceChecksBefore += o.SpaceChecksBefore
	s.SpaceChecksAfter += o.SpaceChecksAfter
	s.Chunks += o.Chunks
	s.ChunkItems += o.ChunkItems
	s.ChunkBytes += o.ChunkBytes
	s.BulkArrays += o.BulkArrays
	s.AliasSafe += o.AliasSafe
	s.AliasCopy += o.AliasCopy
	s.InlinedAggregates += o.InlinedAggregates
	s.OutOfLineSubs += o.OutOfLineSubs
}

// AllOptimizations returns the production option set.
func AllOptimizations() Options {
	return Options{
		GroupEnsures:     true,
		Chunk:            true,
		Memcpy:           true,
		Inline:           true,
		BoundedThreshold: 8 << 10,
	}
}

// NoOptimizations returns the fully naive option set.
func NoOptimizations() Options {
	return Options{BoundedThreshold: 8 << 10}
}

// SizeClass is the paper's storage classification of a message region.
type SizeClass int

const (
	FixedSize SizeClass = iota
	BoundedSize
	UnboundedSize
)

func (c SizeClass) String() string {
	switch c {
	case FixedSize:
		return "fixed"
	case BoundedSize:
		return "bounded"
	case UnboundedSize:
		return "unbounded"
	}
	return fmt.Sprintf("SizeClass(%d)", int(c))
}

// Ref is a path to presented data relative to the stub's parameters.
type Ref interface {
	refNode()
	String() string
}

// Param is a root value: one stub parameter (or the subprogram argument).
type Param struct {
	Name  string
	Index int
}

// Field selects a struct member.
type Field struct {
	Base Ref
	// Name is the presented field name (a Go field or C member name).
	Name string
	// Index is the slot position.
	Index int
}

// Elem is the current element of the enclosing Loop with variable Var.
type Elem struct{ Var string }

// Len is the element count of a counted value (len(x) in Go, the
// _length member or strlen in C).
type Len struct{ Base Ref }

// Deref is the target of an optional pointer.
type Deref struct{ Base Ref }

func (*Param) refNode() {}
func (*Field) refNode() {}
func (*Elem) refNode()  {}
func (*Len) refNode()   {}
func (*Deref) refNode() {}

func (r *Param) String() string { return r.Name }
func (r *Field) String() string { return r.Base.String() + "." + r.Name }
func (r *Elem) String() string  { return r.Var }
func (r *Len) String() string   { return "len(" + r.Base.String() + ")" }
func (r *Deref) String() string { return "*" + r.Base.String() }

// Op is one marshal-program operation.
type Op interface{ isOp() }

// Align pads the cursor to an N-byte boundary (writing zeros when
// marshaling, skipping when unmarshaling).
type Align struct{ N int }

// Ensure requires Bytes of buffer space (marshal: grow; unmarshal: check
// remaining).
type Ensure struct{ Bytes int }

// EnsureDyn requires Base + PerElem*len(Count) bytes.
type EnsureDyn struct {
	Base    int
	PerElem int
	Count   Ref
	// Pres presents the counted value (emitters derive the count
	// expression from it).
	Pres *pres.Node
}

// Item transfers one atom between Val and the wire.
type Item struct {
	Atom wire.Atom
	// Wire is the encoded byte width (≥ the presented width for XDR).
	Wire int
	Val  Ref
	// Pres is the presenting node (emitters use its target type).
	Pres *pres.Node
}

// ConstItem writes (marshal) or checks (unmarshal) a literal value.
type ConstItem struct {
	Atom  wire.Atom
	Wire  int
	Value uint64
}

// LenItem transfers the element count of the counted value Val.
// Marshaling writes len(Val) (plus one when Nul); unmarshaling reads the
// count, validates it against Bound, and allocates Val.
type LenItem struct {
	Wire  int
	Val   Ref
	Bound uint64
	// Nul marks CDR strings: the count includes a terminating NUL.
	Nul  bool
	Pres *pres.Node
}

// Bulk copies the whole element payload of an array at once (the memcpy
// optimization). Count is the static element count, or -1 to use
// len(Val). Pad pads the payload to a multiple (XDR opaque padding); Nul
// appends/consumes a NUL byte (CDR strings).
type Bulk struct {
	Val      Ref
	Atom     wire.Atom
	ElemWire int
	Count    int
	Pad      int
	Nul      bool
	// Pres presents the element; OverPres presents the whole array.
	Pres     *pres.Node
	OverPres *pres.Node
	// Alias is the alias pass's zero-copy classification for this
	// region (nil until the pass runs). Only an AliasSafe proof
	// licenses the emitter's zero-copy path, and the zerocopy verifier
	// cross-checks every proof at the stage boundary.
	Alias *AliasProof
}

// Loop runs Body once per element of Over, binding the element to Var.
// Count is the static trip count or -1 when dynamic.
type Loop struct {
	Over  Ref
	Var   string
	Count int
	Body  []Op
	// ElemPres presents the element type; OverPres the whole array.
	ElemPres *pres.Node
	OverPres *pres.Node
}

// Opt is optional data: a presence boolean followed, when present, by
// Body (which addresses Deref(Val)).
type Opt struct {
	Val  Ref
	Wire int // encoded width of the presence flag
	Body []Op
	Pres *pres.Node
}

// Switch is a discriminated union: the discriminator travels as an atom,
// then the arm selected by its value.
type Switch struct {
	On    Ref
	Atom  wire.Atom
	Wire  int
	Cases []SwitchCase
	// HasDefault selects Default for unmatched values; otherwise an
	// unmatched discriminator is a protocol error on unmarshal (and a
	// caller bug on marshal).
	HasDefault bool
	Default    []Op
	Pres       *pres.Node
}

// SwitchCase is one union arm.
type SwitchCase struct {
	Values []int64
	Body   []Op
}

// Chunk is a fixed-layout region: Size bytes transferred through a chunk
// pointer with constant offsets (the chunking optimization). The region
// begins aligned; Items' offsets are relative to it.
type Chunk struct {
	Size  int
	Items []ChunkItem
	// Alias records the alias pass's classification (always
	// copy-required for chunks: their atoms are assembled in the
	// marshal buffer); the zerocopy verifier rejects anything else.
	Alias *AliasProof
}

// ChunkItem is one statically placed atom within a Chunk.
type ChunkItem struct {
	Off  int
	Atom wire.Atom
	Wire int
	// Exactly one of Val / Const is meaningful; IsLen marks length
	// prefixes (with Bound/Nul as in LenItem).
	Val   Ref
	Const *uint64
	IsLen bool
	Bound uint64
	Nul   bool
	Pres  *pres.Node
}

// CallSub invokes an out-of-line subprogram (recursive types; every named
// aggregate when inlining is off) with Arg as its root value.
type CallSub struct {
	Sub int
	Arg Ref
}

func (*Align) isOp()     {}
func (*Ensure) isOp()    {}
func (*EnsureDyn) isOp() {}
func (*Item) isOp()      {}
func (*ConstItem) isOp() {}
func (*LenItem) isOp()   {}
func (*Bulk) isOp()      {}
func (*Loop) isOp()      {}
func (*Opt) isOp()       {}
func (*Switch) isOp()    {}
func (*Chunk) isOp()     {}
func (*CallSub) isOp()   {}

// Sub is an out-of-line marshal routine for one presented type.
type Sub struct {
	// Name is a stable identifier derived from the presented type.
	Name string
	Pres *pres.Node
	Ops  []Op
}

// Program is a complete marshal or unmarshal routine for one message
// payload.
type Program struct {
	Dir  Dir
	Ops  []Op
	Subs []*Sub
	// Class, FixedBytes, and BoundBytes summarize the payload's storage
	// requirements (the paper's fixed / bounded / unbounded analysis).
	Class      SizeClass
	FixedBytes int
	BoundBytes int
}

// Root pairs a root value name with the PRES tree presenting it.
type Root struct {
	Name string
	Pres *pres.Node
}
