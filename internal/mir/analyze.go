package mir

import (
	"flick/internal/mint"
	"flick/internal/pres"
	"flick/internal/wire"
)

// classify computes the paper's storage-size classification for the whole
// payload: fixed, variable-but-bounded, or variable-and-unbounded, plus
// the byte totals. Back ends use it to size marshal buffers up front.
func classify(prog *Program, roots []Root, f wire.Format) {
	cls := FixedSize
	var fixed, bound int64
	for _, r := range roots {
		c, fx, bd := sizeOfNode(r.Pres, f, map[*pres.Node]bool{})
		if c > cls {
			cls = c
		}
		fixed += fx
		bound = addClamp(bound, bd)
	}
	prog.Class = cls
	prog.FixedBytes = int(clampInt(fixed))
	prog.BoundBytes = int(clampInt(bound))
}

const sizeCap = int64(1) << 40

func addClamp(a, b int64) int64 {
	s := a + b
	if s > sizeCap || s < 0 {
		return sizeCap
	}
	return s
}

func mulClamp(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	if a > sizeCap/b {
		return sizeCap
	}
	return a * b
}

func clampInt(v int64) int64 {
	if v > sizeCap {
		return sizeCap
	}
	return v
}

// sizeOfNode returns the storage class of the encoding of n, its size
// when fixed (fx), and an upper bound (bd) on its size (valid unless the
// class is unbounded). Sizes include worst-case alignment padding.
func sizeOfNode(n *pres.Node, f wire.Format, seen map[*pres.Node]bool) (SizeClass, int64, int64) {
	n = n.Resolve()
	if seen[n] {
		// Recursion: unbounded.
		return UnboundedSize, 0, sizeCap
	}
	seen[n] = true
	defer delete(seen, n)

	switch n.Kind {
	case pres.VoidKind:
		return FixedSize, 0, 0

	case pres.DirectKind, pres.EnumKind:
		a, _, ok := atomOf(n.Mint)
		if !ok {
			return UnboundedSize, 0, sizeCap
		}
		sz := int64(f.WireSize(a) + f.Align(a) - 1)
		return FixedSize, sz, sz

	case pres.CountedKind, pres.TerminatedKind:
		arr := mint.Deref(n.Mint).(*mint.Array)
		lenBytes := int64(f.LenSize() + 3)
		ec, _, ebd := sizeOfNode(n.Elem(), f, seen)
		if ec == UnboundedSize || arr.Length.Range >= uint64(0xFFFFFFFF) {
			return UnboundedSize, 0, sizeCap
		}
		payload := mulClamp(int64(arr.Length.Range), ebd)
		total := addClamp(addClamp(lenBytes, payload), int64(f.ArrayPad()))
		return BoundedSize, 0, total

	case pres.FixedArrayKind:
		arr := mint.Deref(n.Mint).(*mint.Array)
		ec, efx, ebd := sizeOfNode(n.Elem(), f, seen)
		count := int64(arr.FixedLen())
		switch ec {
		case FixedSize:
			sz := mulClamp(count, efx)
			return FixedSize, sz, sz
		case BoundedSize:
			return BoundedSize, 0, mulClamp(count, ebd)
		default:
			return UnboundedSize, 0, sizeCap
		}

	case pres.StructKind:
		cls := FixedSize
		var fx, bd int64
		for _, c := range n.Children {
			cc, cfx, cbd := sizeOfNode(c, f, seen)
			if cc > cls {
				cls = cc
			}
			fx = addClamp(fx, cfx)
			bd = addClamp(bd, cbd)
		}
		if cls == UnboundedSize {
			return UnboundedSize, 0, sizeCap
		}
		if cls == FixedSize {
			return FixedSize, fx, fx
		}
		return BoundedSize, 0, bd

	case pres.UnionKind:
		u := mint.Deref(n.Mint).(*mint.Union)
		da, _, _ := atomOf(u.Discrim)
		head := int64(f.WireSize(da) + f.Align(da) - 1)
		var maxBd int64
		cls := FixedSize
		for _, c := range n.Children {
			cc, _, cbd := sizeOfNode(c, f, seen)
			if cc == UnboundedSize {
				return UnboundedSize, 0, sizeCap
			}
			if cc > cls {
				cls = cc
			}
			if cbd > maxBd {
				maxBd = cbd
			}
		}
		// Arms may differ in size, so a union is at best bounded
		// (unless it has exactly one possible shape).
		total := addClamp(head, maxBd)
		if cls == FixedSize && len(n.Children) == 1 {
			return FixedSize, total, total
		}
		return BoundedSize, 0, total

	case pres.OptPtrKind:
		flag := int64(f.WireSize(wire.Bool) + f.Align(wire.Bool) - 1)
		ec, _, ebd := sizeOfNode(n.Elem(), f, seen)
		if ec == UnboundedSize {
			return UnboundedSize, 0, sizeCap
		}
		return BoundedSize, 0, addClamp(flag, ebd)

	default:
		return UnboundedSize, 0, sizeCap
	}
}
