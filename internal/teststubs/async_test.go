package teststubs

import (
	"errors"
	"testing"
)

// TestAsyncSurfaceXDR drives the surfaces-only promise add-on
// (stubs_xdr_async.go) against the same server as the sync stubs:
// pipelined promises resolve out of order, and a typed exception
// crosses the wire identically to the sync path.
func TestAsyncSurfaceXDR(t *testing.T) {
	impl := &benchImpl{}
	c := NewBenchXDRClient(startPipeServerXDR(t, impl))

	const depth = 16
	ps := make([]*BenchSumXDRPromise, depth)
	for i := range ps {
		ps[i] = c.SumAsync([]int32{int32(i), int32(i)})
	}
	for i := depth - 1; i >= 0; i-- {
		ret, err := ps[i].Wait()
		if err != nil || ret != int32(2*i) {
			t.Fatalf("promise %d: Sum = %d, %v", i, ret, err)
		}
	}

	// The exception decodes through the shared reply unmarshaler.
	_, err := c.SumAsync(nil).Wait()
	var ex *BenchBadSize
	if !errors.As(err, &ex) || ex.Wanted != 1 {
		t.Fatalf("SumAsync(nil) err = %v, want BenchBadSize", err)
	}
}
