// Package teststubs holds flick-generated stubs for the paper's
// evaluation interface (internal/teststubs/test.idl), committed for use
// by integration tests and benchmarks. Regenerate with go generate.
package teststubs

import _ "embed"

// BenchIDL is the evaluation interface source, exported so the
// experiment harness can rebuild PRES trees for the interpretive
// marshalers.
//
//go:embed test.idl
var BenchIDL string

//go:generate go run flick/cmd/flick -idl corba -lang go -format xdr -style flick -package teststubs -suffix XDR -o stubs_xdr.go test.idl
//go:generate go run flick/cmd/flick -idl corba -lang go -format xdr -style flick -package teststubs -suffix XDR -surfaces async -surfaces-only -o stubs_xdr_async.go test.idl
//go:generate go run flick/cmd/flick -idl corba -lang go -format xdr -style flick -package teststubs -suffix XDR -surfaces ctx -surfaces-only -o stubs_xdr_ctx.go test.idl
//go:generate go run flick/cmd/flick -idl corba -lang go -format xdr -style rpcgen -package teststubs -suffix XDRNaive -skip-decls -o stubs_xdr_naive.go test.idl
//go:generate go run flick/cmd/flick -idl corba -lang go -format xdr -style powerrpc -package teststubs -suffix XDRPow -skip-decls -o stubs_xdr_pow.go test.idl
//go:generate go run flick/cmd/flick -idl corba -lang go -format cdr-le -style flick -package teststubs -suffix CDR -skip-decls -o stubs_cdr.go test.idl
//go:generate go run flick/cmd/flick -idl corba -lang go -format mach3 -style flick -package teststubs -suffix Mach -skip-decls -o stubs_mach.go test.idl
//go:generate go run flick/cmd/flick -idl corba -lang go -format fluke -style flick -package teststubs -suffix Fluke -skip-decls -o stubs_fluke.go test.idl
