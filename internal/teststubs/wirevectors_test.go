package teststubs

import (
	"bytes"
	"testing"

	"flick/rt"
)

// TestXDRReferenceVectors pins the generated XDR encoding against
// RFC 1832's rules using hand-computed byte sequences.
func TestXDRReferenceVectors(t *testing.T) {
	var e rt.Encoder

	// A variable-length array of three signed integers (RFC 1832 §3.12
	// + §3.4): count then big-endian two's-complement values.
	MarshalBenchSendIntsXDRRequest(&e, []int32{1, -2, 3})
	want := []byte{
		0, 0, 0, 3,
		0, 0, 0, 1,
		0xFF, 0xFF, 0xFF, 0xFE,
		0, 0, 0, 3,
	}
	if !bytes.Equal(e.Bytes(), want) {
		t.Errorf("ints = %x\nwant   %x", e.Bytes(), want)
	}

	// A string (§3.11): length, bytes, zero-padded to a multiple of 4,
	// no NUL. "abcde" → 5 + data + 3 pad. The dir entry then carries
	// the 136-byte stat area: 30 big-endian ints + 16 packed tag bytes.
	e.Reset()
	entry := BenchDirEntry{Name: "abcde"}
	entry.Info.Fields[0] = 0x01020304
	entry.Info.Tag[0] = 0xAA
	entry.Info.Tag[15] = 0xBB
	MarshalBenchSendDirsXDRRequest(&e, []BenchDirEntry{entry})
	b := e.Bytes()
	header := []byte{
		0, 0, 0, 1, // one entry
		0, 0, 0, 5, 'a', 'b', 'c', 'd', 'e', 0, 0, 0, // name + pad
		1, 2, 3, 4, // fields[0]
	}
	if !bytes.Equal(b[:len(header)], header) {
		t.Errorf("dir prefix = %x\nwant       %x", b[:len(header)], header)
	}
	// Total: 4 + (4+5+3) + 120 + 16 = 152.
	if len(b) != 152 {
		t.Errorf("total = %d, want 152", len(b))
	}
	if b[136] != 0xAA || b[151] != 0xBB {
		t.Errorf("tag placement wrong: b[136]=%x b[151]=%x", b[136], b[151])
	}
}

// TestCDRLayout pins the little-endian CDR layout: natural alignment
// relative to the payload origin.
func TestCDRLayout(t *testing.T) {
	var e rt.Encoder
	MarshalBenchSendRectsCDRRequest(&e, []BenchRect{{
		Min: BenchPoint{X: 1, Y: 2}, Max: BenchPoint{X: 3, Y: 4},
	}})
	want := []byte{
		1, 0, 0, 0, // count (LE)
		1, 0, 0, 0, 2, 0, 0, 0, 3, 0, 0, 0, 4, 0, 0, 0,
	}
	if !bytes.Equal(e.Bytes(), want) {
		t.Errorf("cdr rects = %x\nwant       %x", e.Bytes(), want)
	}
}

// TestMachAndFlukePayloadShapes pins the remaining formats' array
// encodings (natural little-endian; Fluke fully packed).
func TestMachAndFlukePayloadShapes(t *testing.T) {
	var e rt.Encoder
	MarshalBenchSendIntsMachRequest(&e, []int32{0x11223344})
	want := []byte{1, 0, 0, 0, 0x44, 0x33, 0x22, 0x11}
	if !bytes.Equal(e.Bytes(), want) {
		t.Errorf("mach ints = %x", e.Bytes())
	}
	e.Reset()
	// Fluke packs the dir entry with no padding at all: 4 (count) +
	// 4+5 (name) + 120 + 16 = 149 for a 5-char name.
	MarshalBenchSendDirsFlukeRequest(&e, []BenchDirEntry{{Name: "abcde"}})
	if e.Len() != 149 {
		t.Errorf("fluke dir bytes = %d, want 149 (packed)", e.Len())
	}
}
