package teststubs

import (
	"errors"
	"math/rand"
	"reflect"
	"sync/atomic"
	"testing"

	"flick/rt"
)

// benchImpl implements the Bench interface for tests.
type benchImpl struct {
	ints  atomic.Int64
	pings atomic.Int64
	dirs  []BenchDirEntry
}

func (b *benchImpl) SendInts(v []int32) (err error) {
	var sum int64
	for _, x := range v {
		sum += int64(x)
	}
	b.ints.Add(sum)
	return nil
}

func (b *benchImpl) SendRects(v []BenchRect) (err error) { return nil }

func (b *benchImpl) SendDirs(v []BenchDirEntry) (err error) {
	b.dirs = append([]BenchDirEntry(nil), v...)
	return nil
}

func (b *benchImpl) Sum(v []int32) (ret int32, err error) {
	if len(v) == 0 {
		return 0, &BenchBadSize{Wanted: 1}
	}
	for _, x := range v {
		ret += x
	}
	return ret, nil
}

func (b *benchImpl) ListDir(path string) (ret []BenchDirEntry, total int32, err error) {
	return b.dirs, int32(len(b.dirs)) * 2, nil
}

func (b *benchImpl) Ping(nonce int32) (err error) {
	b.pings.Add(int64(nonce))
	return nil
}

// XDR (ONC protocol) generated wrappers satisfy the server interface.
var _ BenchXDRServer = (*benchImpl)(nil)
var _ BenchCDRServer = (*benchImpl)(nil)

func startPipeServerXDR(t *testing.T, impl *benchImpl) rt.Conn {
	t.Helper()
	clientEnd, serverEnd := rt.Pipe()
	s := rt.NewServer(rt.ONC{})
	RegisterBenchXDR(s, impl)
	go s.ServeConn(serverEnd)
	t.Cleanup(func() { clientEnd.Close() })
	return clientEnd
}

func TestRPCOverPipeXDR(t *testing.T) {
	impl := &benchImpl{}
	c := NewBenchXDRClient(startPipeServerXDR(t, impl))

	if err := c.SendInts([]int32{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if got := impl.ints.Load(); got != 6 {
		t.Errorf("server saw sum %d", got)
	}

	ret, err := c.Sum([]int32{10, 20})
	if err != nil || ret != 30 {
		t.Errorf("Sum = %d, %v", ret, err)
	}

	// Exception crosses the wire typed.
	_, err = c.Sum(nil)
	var ex *BenchBadSize
	if !errors.As(err, &ex) || ex.Wanted != 1 {
		t.Errorf("Sum(nil) err = %v", err)
	}

	// Out param + result.
	dirs := randDirs(rand.New(rand.NewSource(9)), 5)
	if err := c.SendDirs(dirs); err != nil {
		t.Fatal(err)
	}
	back, total, err := c.ListDir("/tmp")
	if err != nil || total != 10 || !reflect.DeepEqual(back, dirs) {
		t.Errorf("ListDir: total=%d err=%v match=%v", total, err, reflect.DeepEqual(back, dirs))
	}

	// Oneway: no reply, but the server still processes it (pipe
	// ordering guarantees it lands before the next two-way call).
	if err := c.Ping(41); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Sum([]int32{1}); err != nil {
		t.Fatal(err)
	}
	if got := impl.pings.Load(); got != 41 {
		t.Errorf("pings = %d", got)
	}
}

func TestRPCOverTCP(t *testing.T) {
	impl := &benchImpl{}
	l, err := rt.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	s := rt.NewServer(rt.ONC{})
	RegisterBenchXDR(s, impl)
	go s.Serve(l)

	conn, err := rt.DialTCP(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	c := NewBenchXDRClient(conn)
	defer c.C.Close()

	ret, err := c.Sum([]int32{5, 6, 7})
	if err != nil || ret != 18 {
		t.Fatalf("Sum over TCP = %d, %v", ret, err)
	}
	// A large payload crosses record-marking intact.
	big := make([]int32, 300_000)
	for i := range big {
		big[i] = int32(i)
	}
	if err := c.SendInts(big); err != nil {
		t.Fatal(err)
	}
}

func TestRPCOverUDP(t *testing.T) {
	impl := &benchImpl{}
	serverConn, addr, err := rt.ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer serverConn.Close()
	s := rt.NewServer(rt.ONC{})
	RegisterBenchXDR(s, impl)
	go s.ServeConn(serverConn)

	conn, err := rt.DialUDP(addr)
	if err != nil {
		t.Fatal(err)
	}
	c := NewBenchXDRClient(conn)
	defer c.C.Close()
	ret, err := c.Sum([]int32{2, 3})
	if err != nil || ret != 5 {
		t.Fatalf("Sum over UDP = %d, %v", ret, err)
	}
}

func TestRPCOverPipeGIOP(t *testing.T) {
	// The CORBA path: GIOP headers, CDR-LE payloads, and word-at-a-time
	// operation-name demultiplexing in the generated dispatcher.
	impl := &benchImpl{}
	clientEnd, serverEnd := rt.Pipe()
	s := rt.NewServer(rt.GIOP{Little: true})
	RegisterBenchCDR(s, impl)
	go s.ServeConn(serverEnd)
	defer clientEnd.Close()

	c := NewBenchCDRClient(clientEnd)
	ret, err := c.Sum([]int32{100, 200})
	if err != nil || ret != 300 {
		t.Fatalf("Sum over GIOP = %d, %v", ret, err)
	}
	dirs := randDirs(rand.New(rand.NewSource(13)), 3)
	if err := c.SendDirs(dirs); err != nil {
		t.Fatal(err)
	}
	back, total, err := c.ListDir("x")
	if err != nil || total != 6 || !reflect.DeepEqual(back, dirs) {
		t.Errorf("ListDir over GIOP: total=%d err=%v", total, err)
	}
	_, err = c.Sum(nil)
	var ex *BenchBadSize
	if !errors.As(err, &ex) {
		t.Errorf("exception over GIOP = %v", err)
	}
}

func TestRPCMachAndFluke(t *testing.T) {
	impl := &benchImpl{}
	for _, tc := range []struct {
		name  string
		proto rt.Protocol
		reg   func(*rt.Server, *benchImpl)
		mk    func(rt.Conn) interface {
			Sum(v []int32) (int32, error)
		}
	}{
		{"mach3", rt.Mach{}, func(s *rt.Server, i *benchImpl) { RegisterBenchMach(s, i) },
			func(c rt.Conn) interface {
				Sum(v []int32) (int32, error)
			} {
				return NewBenchMachClient(c)
			}},
		{"fluke", rt.Fluke{}, func(s *rt.Server, i *benchImpl) { RegisterBenchFluke(s, i) },
			func(c rt.Conn) interface {
				Sum(v []int32) (int32, error)
			} {
				return NewBenchFlukeClient(c)
			}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			clientEnd, serverEnd := rt.Pipe()
			s := rt.NewServer(tc.proto)
			tc.reg(s, impl)
			go s.ServeConn(serverEnd)
			defer clientEnd.Close()
			c := tc.mk(clientEnd)
			ret, err := c.Sum([]int32{4, 5})
			if err != nil || ret != 9 {
				t.Fatalf("Sum = %d, %v", ret, err)
			}
		})
	}
}

func TestUnknownOperation(t *testing.T) {
	impl := &benchImpl{}
	c := startPipeServerXDR(t, impl)
	cl := rt.NewClient(c, rt.ONC{})
	_, err := cl.Call(99, "nope", false, func(e *rt.Encoder) {})
	if !errors.Is(err, rt.ErrSystem) {
		t.Errorf("unknown op error = %v", err)
	}
}

func TestMalformedArgumentsGetSystemError(t *testing.T) {
	impl := &benchImpl{}
	c := startPipeServerXDR(t, impl)
	cl := rt.NewClient(c, rt.ONC{})
	// send_dirs (proc 2) with a truncated payload.
	_, err := cl.Call(2, "send_dirs", false, func(e *rt.Encoder) {
		e.Grow(4)
		e.PutU32BE(5) // claims 5 entries, then nothing
	})
	if !errors.Is(err, rt.ErrSystem) {
		t.Errorf("malformed args error = %v", err)
	}
	// The connection survives for the next call.
	bc := &BenchXDRClient{C: cl}
	if _, err := bc.Sum([]int32{1, 2}); err != nil {
		t.Errorf("call after error: %v", err)
	}
}
