package teststubs

import (
	"errors"
	"sync"
	"testing"
	"time"

	"flick/rt"
)

// FuzzFaultedRoundTrip drives a real generated-stub round trip while the
// fuzz input scripts frame damage in flight: bit flips, truncations,
// zeroed bytes, and whole-frame drops, in both directions, applied
// *inside* the CRC32-C integrity layer exactly where a hostile link
// would strike. The contract under any damage script: the caller gets
// either the exact correct answer or an error classified by the retry
// taxonomy — never a bogus decoded value, never a panic — and the
// pooled buffers all come home.
//
//	go test -fuzz=FuzzFaultedRoundTrip -fuzztime=30s ./internal/teststubs

// frameMutator wraps a Conn and damages frames per a byte script. Each
// message in either direction consumes two script bytes choosing one
// mutation; when the script runs dry, frames pass through untouched so
// every fuzz input terminates with clean calls.
type frameMutator struct {
	inner rt.Conn
	mu    sync.Mutex
	data  []byte
}

func (m *frameMutator) step() (a, b byte, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.data) < 2 {
		return 0, 0, false
	}
	a, b = m.data[0], m.data[1]
	m.data = m.data[2:]
	return a, b, true
}

// mangle returns the (possibly damaged) frame and whether to deliver it
// at all. It never mutates msg in place: the caller may own a pooled
// buffer.
func (m *frameMutator) mangle(msg []byte) ([]byte, bool) {
	a, b, ok := m.step()
	if !ok || len(msg) == 0 {
		return msg, true
	}
	switch a % 4 {
	case 0: // drop the frame
		return nil, false
	case 1: // flip one bit
		out := append([]byte(nil), msg...)
		bit := (int(a)<<8 | int(b)) % (len(out) * 8)
		out[bit/8] ^= 1 << (bit % 8)
		return out, true
	case 2: // truncate
		return append([]byte(nil), msg[:int(b)%len(msg)]...), true
	default: // zero one byte
		out := append([]byte(nil), msg...)
		out[int(b)%len(out)] = 0
		return out, true
	}
}

func (m *frameMutator) Send(msg []byte) error {
	out, deliver := m.mangle(msg)
	if !deliver {
		return nil
	}
	return m.inner.Send(out)
}

func (m *frameMutator) Recv() ([]byte, error) {
	for {
		msg, err := m.inner.Recv()
		if err != nil {
			return nil, err
		}
		out, deliver := m.mangle(msg)
		if deliver {
			return out, nil
		}
	}
}

func (m *frameMutator) Close() error { return m.inner.Close() }

func FuzzFaultedRoundTrip(f *testing.F) {
	f.Add([]byte(nil))                                // clean wire
	f.Add([]byte{0, 0})                               // drop the first request
	f.Add([]byte{1, 0x55, 1, 0xaa})                   // bit flips both ways
	f.Add([]byte{2, 3, 2, 40})                        // truncations
	f.Add([]byte{3, 7, 0, 0, 1, 9, 2, 5, 3, 0})       // mixed script
	f.Add([]byte{1, 1, 1, 2, 1, 3, 1, 4, 1, 5, 1, 6}) // sustained flips

	f.Fuzz(func(t *testing.T, data []byte) {
		poolBefore := rt.ReadPoolStats()
		clientPipe, serverPipe := rt.Pipe()
		mut := &frameMutator{inner: clientPipe, data: data}
		clientSide := rt.WrapChecksum(mut)
		serverSide := rt.WrapChecksum(serverPipe)

		srv := rt.NewServer(rt.ONC{})
		srv.MaxMessage = 1 << 16
		RegisterBenchXDR(srv, &benchImpl{})
		done := make(chan struct{})
		go func() { defer close(done); srv.ServeConn(serverSide) }()

		c := NewBenchXDRClient(clientSide)
		c.C.Timeout = 25 * time.Millisecond
		c.C.Retry = &rt.RetryPolicy{
			MaxAttempts: 3,
			BaseBackoff: 100 * time.Microsecond,
			MaxBackoff:  time.Millisecond,
			Seed:        1,
		}

		vals := []int32{3, 1, 4, 1, 5}
		const want = int32(14)
		for i := 0; i < 4; i++ {
			ret, err := c.Sum(vals)
			switch {
			case err == nil && ret != want:
				t.Fatalf("call %d: damaged frame decoded to a bogus value %d (want %d) on script %x",
					i, ret, want, data)
			case err != nil &&
				!errors.Is(err, rt.ErrRetryable) &&
				!errors.Is(err, rt.ErrNotRetryable) &&
				!errors.Is(err, rt.ErrBreakerOpen) &&
				!errors.Is(err, rt.ErrClosed):
				t.Fatalf("call %d: unclassified error %v on script %x", i, err, data)
			}
		}

		c.C.Close()
		<-done
		deadline := time.Now().Add(2 * time.Second)
		for !rt.ReadPoolStats().Sub(poolBefore).Balanced() && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		if d := rt.ReadPoolStats().Sub(poolBefore); !d.Balanced() {
			t.Fatalf("pooled buffers leaked on script %x: %+v", data, d)
		}
	})
}
