package teststubs

import (
	"math/rand"
	"testing"

	"flick/rt"
)

// TestRandomBytesNeverPanic feeds random garbage to every unmarshal
// entry point: decoders must return errors (or succeed on accidentally
// valid input), never panic or over-allocate.
func TestRandomBytesNeverPanic(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	decoders := []struct {
		name string
		f    func(*rt.Decoder) error
	}{
		{"ints", func(d *rt.Decoder) error { _, err := UnmarshalBenchSendIntsXDRRequest(d); return err }},
		{"rects", func(d *rt.Decoder) error { _, err := UnmarshalBenchSendRectsXDRRequest(d); return err }},
		{"dirs", func(d *rt.Decoder) error { _, err := UnmarshalBenchSendDirsXDRRequest(d); return err }},
		{"dirs-naive", func(d *rt.Decoder) error { _, err := UnmarshalBenchSendDirsXDRNaiveRequest(d); return err }},
		{"dirs-cdr", func(d *rt.Decoder) error { _, err := UnmarshalBenchSendDirsCDRRequest(d); return err }},
		{"reply", func(d *rt.Decoder) error { _, _, err := UnmarshalBenchListDirXDRReply(d); return err }},
		{"sum-reply", func(d *rt.Decoder) error { _, err := UnmarshalBenchSumXDRReply(d); return err }},
	}
	for iter := 0; iter < 3000; iter++ {
		n := r.Intn(64)
		buf := make([]byte, n)
		r.Read(buf)
		for _, dec := range decoders {
			func() {
				defer func() {
					if p := recover(); p != nil {
						t.Fatalf("%s panicked on %x: %v", dec.name, buf, p)
					}
				}()
				_ = dec.f(rt.NewDecoder(buf))
			}()
		}
	}
}

// TestMutatedValidMessagesNeverPanic flips bytes inside valid messages:
// decode must stay panic-free and reject structural damage.
func TestMutatedValidMessagesNeverPanic(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	base := randDirs(r, 4)
	var e rt.Encoder
	MarshalBenchSendDirsXDRRequest(&e, base)
	valid := e.Bytes()
	for iter := 0; iter < 2000; iter++ {
		buf := append([]byte(nil), valid...)
		for k := 0; k < 1+r.Intn(4); k++ {
			buf[r.Intn(len(buf))] ^= byte(1 << r.Intn(8))
		}
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("panicked on mutation: %v", p)
				}
			}()
			_, _ = UnmarshalBenchSendDirsXDRRequest(rt.NewDecoder(buf))
		}()
	}
}

// TestServerSurvivesGarbageFrames drives raw garbage through a live
// server connection: the serve loop must keep answering well-formed
// requests afterwards.
func TestServerSurvivesGarbageFrames(t *testing.T) {
	impl := &benchImpl{}
	clientEnd, serverEnd := rt.Pipe()
	s := rt.NewServer(rt.ONC{})
	RegisterBenchXDR(s, impl)
	go s.ServeConn(serverEnd)
	defer clientEnd.Close()

	r := rand.New(rand.NewSource(3))
	for i := 0; i < 50; i++ {
		junk := make([]byte, r.Intn(100))
		r.Read(junk)
		if err := clientEnd.Send(junk); err != nil {
			t.Fatal(err)
		}
	}
	// The server drops undecodable headers without replying; a real
	// call still works on the same connection.
	c := NewBenchXDRClient(clientEnd)
	ret, err := c.Sum([]int32{1, 2, 3})
	if err != nil || ret != 6 {
		t.Fatalf("call after garbage: %d, %v", ret, err)
	}
}
