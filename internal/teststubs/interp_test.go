package teststubs

import (
	"bytes"
	"math/rand"
	"os"
	"reflect"
	"testing"

	"flick/internal/frontend/corbaidl"
	"flick/internal/interp"
	"flick/internal/pgen"
	"flick/internal/pres"
	"flick/internal/presc"
	"flick/internal/wire"
	"flick/rt"
)

// presFor returns the request PRES tree of the named Bench operation.
func presFor(t *testing.T, op string) *pres.Node {
	t.Helper()
	src, err := os.ReadFile("test.idl")
	if err != nil {
		t.Fatal(err)
	}
	f, err := corbaidl.Parse("test.idl", string(src))
	if err != nil {
		t.Fatal(err)
	}
	pf, err := pgen.GenerateGo(f, presc.Client)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range pf.Stubs {
		if s.Op == op {
			return s.Params[0].Request
		}
	}
	t.Fatalf("no stub for op %s", op)
	return nil
}

// TestInterpreterMatchesCompiledStubs is the central cross-check of the
// paper's comparison methodology: the interpretive marshaler (ILU/ORBeline
// model) and the compiled Flick stubs must produce byte-identical
// messages and decode each other's output.
func TestInterpreterMatchesCompiledStubs(t *testing.T) {
	dirsNode := presFor(t, "send_dirs")
	intsNode := presFor(t, "send_ints")

	formats := []struct {
		f     wire.Format
		mDirs func(*rt.Encoder, []BenchDirEntry)
		uDirs func(*rt.Decoder) ([]BenchDirEntry, error)
		mInts func(*rt.Encoder, []int32)
	}{
		{wire.XDR{}, MarshalBenchSendDirsXDRRequest, UnmarshalBenchSendDirsXDRRequest, MarshalBenchSendIntsXDRRequest},
		{wire.CDR{Little: true}, MarshalBenchSendDirsCDRRequest, UnmarshalBenchSendDirsCDRRequest, MarshalBenchSendIntsCDRRequest},
		{wire.Mach3{}, MarshalBenchSendDirsMachRequest, UnmarshalBenchSendDirsMachRequest, MarshalBenchSendIntsMachRequest},
		{wire.Fluke{}, MarshalBenchSendDirsFlukeRequest, UnmarshalBenchSendDirsFlukeRequest, MarshalBenchSendIntsFlukeRequest},
	}
	for _, tc := range formats {
		for _, style := range []interp.Style{interp.ILU, interp.ORBeline} {
			name := tc.f.Name() + "/" + style.String()
			t.Run(name, func(t *testing.T) {
				m := interp.New(tc.f, style)
				dirs := randDirs(rand.New(rand.NewSource(11)), 6)

				var compiled, interpreted rt.Encoder
				tc.mDirs(&compiled, dirs)
				if err := m.Marshal(&interpreted, dirsNode, dirs); err != nil {
					t.Fatalf("interp marshal: %v", err)
				}
				if !bytes.Equal(compiled.Bytes(), interpreted.Bytes()) {
					t.Fatalf("wire bytes differ:\ncompiled    %x\ninterpreted %x",
						compiled.Bytes(), interpreted.Bytes())
				}

				// Interpreter decodes compiled bytes.
				var out []BenchDirEntry
				if err := m.Unmarshal(rt.NewDecoder(compiled.Bytes()), dirsNode, &out); err != nil {
					t.Fatalf("interp unmarshal: %v", err)
				}
				if !reflect.DeepEqual(dirs, out) {
					t.Error("interp decode mismatch")
				}

				// Compiled stub decodes interpreter bytes.
				back, err := tc.uDirs(rt.NewDecoder(interpreted.Bytes()))
				if err != nil || !reflect.DeepEqual(dirs, back) {
					t.Errorf("compiled decode of interp bytes: err=%v", err)
				}

				// Int arrays too.
				ints := []int32{-1, 0, 7, 1 << 30}
				var ce, ie rt.Encoder
				tc.mInts(&ce, ints)
				if err := m.Marshal(&ie, intsNode, ints); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(ce.Bytes(), ie.Bytes()) {
					t.Errorf("int arrays differ: %x vs %x", ce.Bytes(), ie.Bytes())
				}
			})
		}
	}
}

func TestInterpreterErrors(t *testing.T) {
	m := interp.New(wire.XDR{}, interp.ILU)
	node := presFor(t, "send_dirs")
	// Non-pointer target.
	if err := m.Unmarshal(rt.NewDecoder(nil), node, []BenchDirEntry{}); err == nil {
		t.Error("non-pointer target accepted")
	}
	// Truncated input.
	dirs := randDirs(rand.New(rand.NewSource(2)), 2)
	var e rt.Encoder
	if err := m.Marshal(&e, node, dirs); err != nil {
		t.Fatal(err)
	}
	var out []BenchDirEntry
	if err := m.Unmarshal(rt.NewDecoder(e.Bytes()[:9]), node, &out); err == nil {
		t.Error("truncated input accepted")
	}
}
