package teststubs

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"flick/rt"
)

func randDirs(r *rand.Rand, n int) []BenchDirEntry {
	v := make([]BenchDirEntry, n)
	for i := range v {
		name := make([]byte, r.Intn(40))
		for j := range name {
			name[j] = byte('a' + r.Intn(26))
		}
		v[i].Name = string(name)
		for j := range v[i].Info.Fields {
			v[i].Info.Fields[j] = r.Int31() - 1<<30
		}
		r.Read(v[i].Info.Tag[:])
	}
	return v
}

func TestIntsRoundTripXDR(t *testing.T) {
	in := []int32{0, 1, -1, 1 << 30, -1 << 31, 42}
	var e rt.Encoder
	MarshalBenchSendIntsXDRRequest(&e, in)
	if got, want := e.Len(), 4+4*len(in); got != want {
		t.Errorf("encoded %d bytes, want %d", got, want)
	}
	b := e.Bytes()
	if !bytes.Equal(b[:8], []byte{0, 0, 0, 6, 0, 0, 0, 0}) {
		t.Errorf("header bytes = %x", b[:8])
	}
	out, err := UnmarshalBenchSendIntsXDRRequest(rt.NewDecoder(b))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip: %v != %v", out, in)
	}
}

func TestDirsRoundTripXDR(t *testing.T) {
	in := randDirs(rand.New(rand.NewSource(1)), 17)
	var e rt.Encoder
	MarshalBenchSendDirsXDRRequest(&e, in)
	out, err := UnmarshalBenchSendDirsXDRRequest(rt.NewDecoder(e.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Error("dirs round trip mismatch")
	}
}

func TestDirEntryWireSizeMatchesPaper(t *testing.T) {
	// The paper: each directory entry carries a 136-byte stat-like
	// structure (30 4-byte integers + one 16-byte character array) and
	// the test entries total exactly 256 encoded bytes: 4 (count) +
	// 116 (name+pad) + 136.
	entry := BenchDirEntry{Name: string(make([]byte, 116))}
	var e rt.Encoder
	MarshalBenchSendDirsXDRRequest(&e, []BenchDirEntry{entry})
	if got := e.Len() - 4; got != 256 {
		t.Errorf("encoded dir entry = %d bytes, want 256", got)
	}
}

func TestCrossCompilerWireCompatibility(t *testing.T) {
	in := randDirs(rand.New(rand.NewSource(7)), 9)
	var opt, naive, pow rt.Encoder
	MarshalBenchSendDirsXDRRequest(&opt, in)
	MarshalBenchSendDirsXDRNaiveRequest(&naive, in)
	MarshalBenchSendDirsXDRPowRequest(&pow, in)
	if !bytes.Equal(opt.Bytes(), naive.Bytes()) {
		t.Error("flick and rpcgen-style encodings differ")
	}
	if !bytes.Equal(opt.Bytes(), pow.Bytes()) {
		t.Error("flick and powerrpc-style encodings differ")
	}
	out, err := UnmarshalBenchSendDirsXDRNaiveRequest(rt.NewDecoder(opt.Bytes()))
	if err != nil || !reflect.DeepEqual(in, out) {
		t.Errorf("naive decode of flick bytes: err=%v match=%v", err, reflect.DeepEqual(in, out))
	}
	out, err = UnmarshalBenchSendDirsXDRRequest(rt.NewDecoder(naive.Bytes()))
	if err != nil || !reflect.DeepEqual(in, out) {
		t.Errorf("flick decode of naive bytes: err=%v match=%v", err, reflect.DeepEqual(in, out))
	}
}

func TestRectsRoundTripAllFormats(t *testing.T) {
	in := []BenchRect{
		{Min: BenchPoint{X: -5, Y: 10}, Max: BenchPoint{X: 1 << 20, Y: -1}},
		{Min: BenchPoint{X: 0, Y: 0}, Max: BenchPoint{X: 3, Y: 4}},
	}
	type cfg struct {
		name string
		m    func(*rt.Encoder, []BenchRect)
		u    func(*rt.Decoder) ([]BenchRect, error)
	}
	for _, c := range []cfg{
		{"xdr", MarshalBenchSendRectsXDRRequest, UnmarshalBenchSendRectsXDRRequest},
		{"cdr-le", MarshalBenchSendRectsCDRRequest, UnmarshalBenchSendRectsCDRRequest},
		{"mach3", MarshalBenchSendRectsMachRequest, UnmarshalBenchSendRectsMachRequest},
		{"fluke", MarshalBenchSendRectsFlukeRequest, UnmarshalBenchSendRectsFlukeRequest},
	} {
		t.Run(c.name, func(t *testing.T) {
			var e rt.Encoder
			c.m(&e, in)
			out, err := c.u(rt.NewDecoder(e.Bytes()))
			if err != nil || !reflect.DeepEqual(in, out) {
				t.Errorf("err=%v out=%v", err, out)
			}
		})
	}
}

func TestDirsRoundTripAllFormatsQuick(t *testing.T) {
	cfgs := []struct {
		name string
		m    func(*rt.Encoder, []BenchDirEntry)
		u    func(*rt.Decoder) ([]BenchDirEntry, error)
	}{
		{"xdr", MarshalBenchSendDirsXDRRequest, UnmarshalBenchSendDirsXDRRequest},
		{"xdr-naive", MarshalBenchSendDirsXDRNaiveRequest, UnmarshalBenchSendDirsXDRNaiveRequest},
		{"xdr-pow", MarshalBenchSendDirsXDRPowRequest, UnmarshalBenchSendDirsXDRPowRequest},
		{"cdr-le", MarshalBenchSendDirsCDRRequest, UnmarshalBenchSendDirsCDRRequest},
		{"mach3", MarshalBenchSendDirsMachRequest, UnmarshalBenchSendDirsMachRequest},
		{"fluke", MarshalBenchSendDirsFlukeRequest, UnmarshalBenchSendDirsFlukeRequest},
	}
	for _, cfg := range cfgs {
		t.Run(cfg.name, func(t *testing.T) {
			f := func(seed int64, n uint8) bool {
				in := randDirs(rand.New(rand.NewSource(seed)), int(n%16))
				var e rt.Encoder
				cfg.m(&e, in)
				out, err := cfg.u(rt.NewDecoder(e.Bytes()))
				if err != nil {
					t.Logf("decode error: %v", err)
					return false
				}
				if len(in) == 0 && len(out) == 0 {
					return true
				}
				return reflect.DeepEqual(in, out)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestReplyWithOutParamAndResult(t *testing.T) {
	dirs := randDirs(rand.New(rand.NewSource(3)), 4)
	var e rt.Encoder
	MarshalBenchListDirXDRReply(&e, dirs, 99)
	ret, total, err := UnmarshalBenchListDirXDRReply(rt.NewDecoder(e.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if total != 99 || !reflect.DeepEqual(ret, dirs) {
		t.Errorf("total=%d match=%v", total, reflect.DeepEqual(ret, dirs))
	}
}

func TestExceptionReply(t *testing.T) {
	var e rt.Encoder
	MarshalBenchSumXDRErrBadSize(&e, &BenchBadSize{Wanted: 12})
	_, err := UnmarshalBenchSumXDRReply(rt.NewDecoder(e.Bytes()))
	ex, ok := err.(*BenchBadSize)
	if !ok {
		t.Fatalf("err = %v (%T), want *BenchBadSize", err, err)
	}
	if ex.Wanted != 12 {
		t.Errorf("Wanted = %d", ex.Wanted)
	}

	e.Reset()
	MarshalBenchSumXDRReply(&e, 77)
	ret, err := UnmarshalBenchSumXDRReply(rt.NewDecoder(e.Bytes()))
	if err != nil || ret != 77 {
		t.Errorf("ret=%d err=%v", ret, err)
	}

	e.Reset()
	e.Grow(4)
	e.PutU32BE(9)
	if _, err := UnmarshalBenchSumXDRReply(rt.NewDecoder(e.Bytes())); err == nil {
		t.Error("unknown status should fail")
	}
}

func TestTruncatedMessages(t *testing.T) {
	in := randDirs(rand.New(rand.NewSource(5)), 3)
	var e rt.Encoder
	MarshalBenchSendDirsXDRRequest(&e, in)
	full := e.Bytes()
	for _, cut := range []int{0, 1, 3, 4, 7, len(full) / 2, len(full) - 1} {
		if _, err := UnmarshalBenchSendDirsXDRRequest(rt.NewDecoder(full[:cut])); err == nil {
			t.Errorf("truncation at %d bytes not detected", cut)
		}
	}
}

func TestBoundViolations(t *testing.T) {
	long := BenchDirEntry{Name: string(make([]byte, 300))}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("marshal of over-bound string did not panic")
			}
		}()
		var e rt.Encoder
		MarshalBenchSendDirsXDRRequest(&e, []BenchDirEntry{long})
	}()
	var e rt.Encoder
	e.Grow(8 + 300)
	e.PutU32BE(1)
	e.PutU32BE(300)
	e.PutBytes(make([]byte, 300))
	if _, err := UnmarshalBenchSendDirsXDRRequest(rt.NewDecoder(e.Bytes())); err == nil {
		t.Error("over-bound count not rejected")
	}
}

func TestHostileLengthDoesNotOOM(t *testing.T) {
	var e rt.Encoder
	e.Grow(8)
	e.PutU32BE(0xFFFFFF)
	e.PutU32BE(1)
	if _, err := UnmarshalBenchSendIntsXDRRequest(rt.NewDecoder(e.Bytes())); err == nil {
		t.Error("hostile count not rejected")
	}
}

func TestCDRStringNul(t *testing.T) {
	var e rt.Encoder
	MarshalBenchListDirCDRRequest(&e, "ab")
	b := e.Bytes()
	want := []byte{3, 0, 0, 0, 'a', 'b', 0}
	if !bytes.Equal(b, want) {
		t.Fatalf("CDR string = %x, want %x", b, want)
	}
	path, err := UnmarshalBenchListDirCDRRequest(rt.NewDecoder(b))
	if err != nil || path != "ab" {
		t.Errorf("path=%q err=%v", path, err)
	}
}

func TestOnewayHasNoReply(t *testing.T) {
	var e rt.Encoder
	MarshalBenchPingXDRRequest(&e, 5)
	nonce, err := UnmarshalBenchPingXDRRequest(rt.NewDecoder(e.Bytes()))
	if err != nil || nonce != 5 {
		t.Errorf("nonce=%d err=%v", nonce, err)
	}
}

func TestEncoderReuse(t *testing.T) {
	var e rt.Encoder
	MarshalBenchSendIntsXDRRequest(&e, []int32{1, 2, 3})
	first := append([]byte(nil), e.Bytes()...)
	e.Reset()
	MarshalBenchSendIntsXDRRequest(&e, []int32{1, 2, 3})
	if !bytes.Equal(first, e.Bytes()) {
		t.Error("re-encoding after Reset differs")
	}
}
