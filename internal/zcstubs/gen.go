// Package zcstubs holds flick-generated stubs for the bulk-transfer
// store interface (store.idl), compiled with -zerocopy: byte regions
// the MIR alias pass proved alias-safe marshal by reference
// (PutBytesZC → vectored writes on capable transports) and decode as
// arena-borrowed views (AliasNext). The committed output is the
// working proof of the prover→emitter seam; the tests pin the actual
// zero-copy behavior with ZeroCopyStats counters and alloc guards.
// Regenerate with go generate.
package zcstubs

//go:generate go run flick/cmd/flick -idl corba -lang go -format xdr -style flick -package zcstubs -zerocopy -o stubs.go store.idl
