package zcstubs

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"flick/rt"
)

// These tests pin the zero-copy contract end to end on the committed
// -zerocopy stubs: bulk payloads marshal by reference (no marshal-side
// copy, proven by counters and an alloc guard), travel as vectored
// writes on TCP, decode as arena-borrowed views, and every fallback —
// sub-threshold payloads, transports without writev — degrades to the
// copying path with identical wire bytes.

// memStore is the reference Store: Put copies its payload out of the
// request arena (the well-behaved handler shape arenalife teaches), Get
// returns the stored bytes, which marshal by reference into the reply.
type memStore struct {
	mu sync.Mutex
	m  map[string][]byte
}

func newMemStore() *memStore { return &memStore{m: map[string][]byte{}} }

func (s *memStore) Get(name string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m[name], nil
}

func (s *memStore) Put(name string, data []byte) (uint32, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[name] = append([]byte(nil), data...)
	return uint32(len(data)), nil
}

// startStore serves a memStore on loopback TCP and returns its address
// and a shutdown func.
func startStore(t *testing.T) (addr string, stop func()) {
	t.Helper()
	l, err := rt.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := rt.NewServer(rt.ONC{})
	RegisterStore(s, newMemStore())
	go s.Serve(l)
	return l.Addr(), func() { l.Close() }
}

func dialStore(t *testing.T, addr string) *StoreClient {
	t.Helper()
	conn, err := rt.DialTCP(addr)
	if err != nil {
		t.Fatal(err)
	}
	return NewStoreClient(conn)
}

func TestZeroCopyRoundTripTCP(t *testing.T) {
	addr, stop := startStore(t)
	defer stop()
	c := dialStore(t, addr)
	defer c.C.Close()

	payload := make([]byte, 8<<10)
	rand.New(rand.NewSource(1)).Read(payload)

	before := rt.ReadZeroCopyStats()
	n, err := c.Put("k", payload)
	if err != nil || int(n) != len(payload) {
		t.Fatalf("Put = %d, %v", n, err)
	}
	got, err := c.Get("k")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("Get returned %d bytes, mismatch with payload", len(got))
	}
	d := rt.ReadZeroCopyStats().Sub(before)

	// Marshal side: the Put request payload and the Get reply payload
	// both travelled by reference — counters advance, and not one
	// payload byte crossed the copying path.
	if d.AliasSegs < 2 {
		t.Errorf("AliasSegs = %d, want >= 2 (put request + get reply)", d.AliasSegs)
	}
	if want := uint64(2 * len(payload)); d.AliasedBytes < want {
		t.Errorf("AliasedBytes = %d, want >= %d", d.AliasedBytes, want)
	}
	if d.CopiedBytes != 0 {
		t.Errorf("CopiedBytes = %d, want 0 (zero marshal-side copies)", d.CopiedBytes)
	}
	if d.VectoredSends < 2 {
		t.Errorf("VectoredSends = %d, want >= 2 (both directions are TCP)", d.VectoredSends)
	}
	// Decode side: the server borrowed the Put payload from its receive
	// arena, the client borrowed the Get reply from its own; the Get
	// view escaped to us, so its arena was pinned rather than recycled.
	if d.AliasViews < 2 {
		t.Errorf("AliasViews = %d, want >= 2", d.AliasViews)
	}
	if d.ArenaGets == 0 {
		t.Errorf("ArenaGets = 0, want > 0 (TCP receive draws from the arena pool)")
	}
	if d.ArenaPinned == 0 {
		t.Errorf("ArenaPinned = 0, want > 0 (the escaped Get view pins its arena)")
	}
}

// TestZeroCopyMarshalAllocGuard is the alloc-side half of the
// zero-copy proof: marshalling a 64 KiB payload and assembling the
// vectored segment list allocates nothing in steady state — the
// payload is referenced, never moved.
func TestZeroCopyMarshalAllocGuard(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts differ under -race")
	}
	payload := make([]byte, 64<<10)
	var e rt.Encoder
	var sink int
	const runs = 200

	before := rt.ReadZeroCopyStats()
	avg := testing.AllocsPerRun(runs, func() {
		e.Reset()
		MarshalStorePutRequest(&e, "k", payload)
		segs, ok := e.Vectored()
		if !ok {
			t.Fatal("Vectored() = false for a 64 KiB payload")
		}
		sink += len(segs)
	})
	d := rt.ReadZeroCopyStats().Sub(before)

	if avg > 0.5 {
		t.Errorf("marshal+vector of 64 KiB allocates %.1f objects/op, want 0", avg)
	}
	if d.CopiedBytes != 0 {
		t.Errorf("CopiedBytes = %d, want 0", d.CopiedBytes)
	}
	if want := uint64(runs * len(payload)); d.AliasedBytes < want {
		t.Errorf("AliasedBytes = %d, want >= %d", d.AliasedBytes, want)
	}
	_ = sink
}

// Sub-threshold payloads take the copying path: correct answer, no
// alias segments, no vectored sends.
func TestZeroCopyThresholdFallback(t *testing.T) {
	addr, stop := startStore(t)
	defer stop()
	c := dialStore(t, addr)
	defer c.C.Close()

	payload := []byte("tiny payload, well under the threshold")
	before := rt.ReadZeroCopyStats()
	if _, err := c.Put("small", payload); err != nil {
		t.Fatal(err)
	}
	got, err := c.Get("small")
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("Get = %q, %v", got, err)
	}
	d := rt.ReadZeroCopyStats().Sub(before)
	if d.AliasSegs != 0 {
		t.Errorf("AliasSegs = %d, want 0 below the threshold", d.AliasSegs)
	}
	if d.VectoredSends != 0 {
		t.Errorf("VectoredSends = %d, want 0 below the threshold", d.VectoredSends)
	}
	if d.CopiedBytes < uint64(2*len(payload)) {
		t.Errorf("CopiedBytes = %d, want >= %d", d.CopiedBytes, 2*len(payload))
	}
}

// plainConn hides the transport's writev capability: the interface
// embedding forwards only Conn's methods, so sendEncoded must flatten.
type plainConn struct{ rt.Conn }

func TestZeroCopyFlattenFallback(t *testing.T) {
	addr, stop := startStore(t)
	defer stop()
	conn, err := rt.DialTCP(addr)
	if err != nil {
		t.Fatal(err)
	}
	c := NewStoreClient(plainConn{conn})
	defer c.C.Close()

	payload := make([]byte, 8<<10)
	rand.New(rand.NewSource(2)).Read(payload)
	before := rt.ReadZeroCopyStats()
	if _, err := c.Put("flat", payload); err != nil {
		t.Fatal(err)
	}
	got, err := c.Get("flat")
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("Get over flattening transport mismatched: %d bytes, %v", len(got), err)
	}
	d := rt.ReadZeroCopyStats().Sub(before)
	if d.FlattenedSends == 0 {
		t.Error("FlattenedSends = 0, want > 0 (client transport hides writev)")
	}
}

// TestZeroCopyChaosSoak hammers one server from a mixed client fleet —
// vectored TCP, a flattening wrapper, and a delay/duplicate-injecting
// hostile link — with payloads straddling the zero-copy threshold.
// Every reply must match exactly (an aliasing bug shows up as another
// message's bytes) and every pooled buffer must come home.
func TestZeroCopyChaosSoak(t *testing.T) {
	addr, stop := startStore(t)
	defer stop()

	calls := 400
	if testing.Short() {
		calls = 60
	}

	poolBefore := rt.ReadPoolStats()
	var clients []*StoreClient
	for i := 0; i < 4; i++ {
		conn, err := rt.DialTCP(addr)
		if err != nil {
			t.Fatal(err)
		}
		switch i {
		case 2:
			conn = plainConn{conn}
		case 3:
			conn, err = rt.NewFaultConn(conn, rt.FaultPlan{
				Seed:      42,
				Delay:     0.2,
				DelayMax:  2 * time.Millisecond,
				Duplicate: 0.1,
			})
			if err != nil {
				t.Fatal(err)
			}
		}
		clients = append(clients, NewStoreClient(conn))
	}

	var wg sync.WaitGroup
	errs := make(chan error, len(clients))
	for ci, c := range clients {
		wg.Add(1)
		go func(ci int, c *StoreClient) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(ci)))
			for i := 0; i < calls; i++ {
				size := 64 + rng.Intn(64<<10)
				payload := make([]byte, size)
				rng.Read(payload)
				key := fmt.Sprintf("c%d-k%d", ci, i%8)
				if _, err := c.Put(key, payload); err != nil {
					errs <- fmt.Errorf("client %d put: %w", ci, err)
					return
				}
				got, err := c.Get(key)
				if err != nil {
					errs <- fmt.Errorf("client %d get: %w", ci, err)
					return
				}
				if !bytes.Equal(got, payload) {
					errs <- fmt.Errorf("client %d: reply mismatch at call %d (%d bytes): aliasing bug", ci, i, size)
					return
				}
			}
			errs <- nil
		}(ci, c)
	}
	wg.Wait()
	for range clients {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	for _, c := range clients {
		c.C.Close()
	}
	stop()

	// The soak crossed both send paths.
	d := rt.ReadZeroCopyStats()
	if d.VectoredSends == 0 || d.FlattenedSends == 0 {
		t.Errorf("soak exercised VectoredSends=%d FlattenedSends=%d, want both > 0",
			d.VectoredSends, d.FlattenedSends)
	}

	// Every pooled encoder/decoder checkout must be returned once the
	// server drains; poll briefly for the in-flight tail.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if rt.ReadPoolStats().Sub(poolBefore).Balanced() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pool imbalance after soak: %+v", rt.ReadPoolStats().Sub(poolBefore))
		}
		time.Sleep(10 * time.Millisecond)
	}
}
