//go:build race

package zcstubs

// raceEnabled reports whether this test binary runs under the race
// detector, whose instrumentation changes per-call allocation counts.
const raceEnabled = true
