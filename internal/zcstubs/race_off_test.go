//go:build !race

package zcstubs

const raceEnabled = false
