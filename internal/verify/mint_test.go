package verify

import (
	"strings"
	"testing"

	"flick/internal/mint"
)

// wantFinding asserts that fs contains a finding whose Stage matches
// stage and whose rendered text contains every fragment.
func wantFinding(t *testing.T, fs Findings, stage string, fragments ...string) {
	t.Helper()
	for _, f := range fs {
		if f.Stage != stage {
			continue
		}
		s := f.String()
		ok := true
		for _, frag := range fragments {
			if !strings.Contains(s, frag) {
				ok = false
				break
			}
		}
		if ok {
			return
		}
	}
	t.Fatalf("no %s finding containing %q; got:\n%s", stage, fragments, Findings(fs).Error())
}

func TestMINTAcceptsHealthyGraph(t *testing.T) {
	// A realistic message: struct { u32; string<64>; union(bool){void, f64} }.
	typ := &mint.Struct{Name: "msg", Slots: []mint.Slot{
		{Name: "id", Type: mint.U32()},
		{Name: "name", Type: mint.NewString(64)},
		{Name: "opt", Type: &mint.Union{
			Discrim: mint.Bool(),
			Cases: []mint.UnionCase{
				{Value: 0, Type: mint.VoidT()},
				{Value: 1, Type: mint.F64()},
			},
		}},
	}}
	if fs := MINT(typ, "msg", nil); len(fs) != 0 {
		t.Fatalf("healthy graph rejected:\n%s", fs.Error())
	}
}

func TestMINTRecursionThroughUnionArmIsLegal(t *testing.T) {
	// A linked list: node = struct { i32; opt(next) } where opt is a
	// 2-case union — recursion crosses a union arm, so it terminates.
	node := &mint.Struct{Name: "node"}
	opt := &mint.Union{
		Discrim: mint.Bool(),
		Cases: []mint.UnionCase{
			{Value: 0, Type: mint.VoidT()},
			{Value: 1, Type: node},
		},
	}
	node.Slots = []mint.Slot{
		{Name: "val", Type: mint.I32()},
		{Name: "next", Type: opt},
	}
	if fs := MINT(node, "node", nil); len(fs) != 0 {
		t.Fatalf("legal recursion rejected:\n%s", fs.Error())
	}
}

func TestMINTUnresolvedRef(t *testing.T) {
	typ := &mint.Struct{Slots: []mint.Slot{
		{Name: "x", Type: &mint.TypeRef{Name: "dangling"}},
	}}
	fs := MINT(typ, "root", nil)
	wantFinding(t, fs, "MINT", "root.slots[0]", `unresolved type ref "dangling"`)
}

func TestMINTIllegalCycle(t *testing.T) {
	// struct s { s } — a cycle with no union arm in between describes an
	// infinitely large message.
	s := &mint.Struct{Name: "s"}
	s.Slots = []mint.Slot{{Name: "self", Type: s}}
	fs := MINT(s, "root", nil)
	wantFinding(t, fs, "MINT", "illegal type cycle")
}

func TestMINTDuplicateUnionLabels(t *testing.T) {
	u := &mint.Union{
		Discrim: mint.U32(),
		Cases: []mint.UnionCase{
			{Value: 3, Type: mint.I32()},
			{Value: 3, Type: mint.F32()},
		},
	}
	fs := MINT(u, "u", nil)
	wantFinding(t, fs, "MINT", "u.cases[1]", "duplicate union case label 3")
}

func TestMINTLabelOutsideDiscriminatorRange(t *testing.T) {
	u := &mint.Union{
		Discrim: mint.U8(),
		Cases: []mint.UnionCase{
			{Value: 300, Type: mint.I32()},
		},
	}
	fs := MINT(u, "u", nil)
	wantFinding(t, fs, "MINT", "case label 300 outside discriminator range")
}

func TestMINTNonAtomicDiscriminator(t *testing.T) {
	u := &mint.Union{
		Discrim: &mint.Struct{Slots: []mint.Slot{{Name: "x", Type: mint.I32()}}},
		Cases:   []mint.UnionCase{{Value: 0, Type: mint.VoidT()}},
	}
	fs := MINT(u, "u", nil)
	wantFinding(t, fs, "MINT", "u.discrim", "non-atomic union discriminator")
}

func TestMINTConstOutsideRange(t *testing.T) {
	c := &mint.Const{Of: mint.U8(), Value: 900}
	fs := MINT(c, "c", nil)
	wantFinding(t, fs, "MINT", "const value 900 outside underlying range")
}

func TestMINTNegativeArrayLength(t *testing.T) {
	a := &mint.Array{
		Elem:   mint.U8(),
		Length: &mint.Integer{Min: -4, Range: 8},
	}
	fs := MINT(a, "a", nil)
	wantFinding(t, fs, "MINT", "a.len", "negative minimum -4")
}

func TestMINTNilTypes(t *testing.T) {
	fs := MINT(nil, "root", nil)
	wantFinding(t, fs, "MINT", "nil type")

	st := &mint.Struct{Slots: []mint.Slot{{Name: "x", Type: nil}}}
	fs = MINT(st, "root", nil)
	wantFinding(t, fs, "MINT", `struct slot "x" with nil type`)
}

func TestMINTCountsNodes(t *testing.T) {
	var c Counters
	typ := &mint.Struct{Slots: []mint.Slot{
		{Name: "a", Type: mint.U32()},
		{Name: "b", Type: mint.F64()},
	}}
	if fs := MINT(typ, "m", &c); len(fs) != 0 {
		t.Fatalf("unexpected findings:\n%s", fs.Error())
	}
	if c.MintNodes != 3 {
		t.Fatalf("MintNodes = %d, want 3", c.MintNodes)
	}
	if c.Findings != 0 {
		t.Fatalf("Findings = %d, want 0", c.Findings)
	}
}
