package verify

import (
	"fmt"

	"flick/internal/mint"
)

// MINT verifies a message-type graph: every reference resolves, integer
// ranges are representable, unions have atomic discriminators and
// distinct labels that the discriminator can actually carry, constants
// fit their underlying types, and the graph is acyclic except through a
// union arm (MINT's encoding of optional data — a cycle that never
// passes a discriminator describes an infinitely large message).
//
// root names the graph in diagnostics (e.g. "stub Mail_send: request").
func MINT(t mint.Type, root string, c *Counters) Findings {
	v := &mintVerifier{
		c:       c,
		path:    map[mint.Type]bool{},
		entered: map[mint.Type]bool{},
	}
	v.check(t, root)
	if c != nil {
		c.Findings += len(v.out)
	}
	return v.out
}

type mintVerifier struct {
	c   *Counters
	out Findings
	// path holds the nodes in progress within the current union-free
	// region; revisiting one means an illegal cycle. Crossing a union
	// arm starts a fresh region (the discriminator provides the base
	// case, exactly as a pointer does in XDR).
	path map[mint.Type]bool
	// entered holds every node whose traversal began anywhere; it
	// terminates traversal of (legally) recursive graphs.
	entered map[mint.Type]bool
}

func (v *mintVerifier) failf(path, format string, args ...any) {
	v.out = append(v.out, Finding{Stage: "MINT", Path: path, Msg: fmt.Sprintf(format, args...)})
}

func (v *mintVerifier) check(t mint.Type, path string) {
	if t == nil {
		v.failf(path, "nil type")
		return
	}
	if v.path[t] {
		v.failf(path, "illegal type cycle through %s (recursion is legal only through a union arm)", t)
		return
	}
	if v.entered[t] {
		return
	}
	v.entered[t] = true
	v.path[t] = true
	defer delete(v.path, t)
	if v.c != nil {
		v.c.MintNodes++
	}

	switch t := t.(type) {
	case *mint.Integer:
		v.checkInteger(t, path)

	case *mint.Scalar:
		switch t.Kind {
		case mint.Void, mint.Boolean, mint.Char8, mint.Float32, mint.Float64:
		default:
			v.failf(path, "unknown scalar kind %d", int(t.Kind))
		}

	case *mint.Array:
		if t.Length == nil {
			v.failf(path, "array with nil length type")
		} else {
			if t.Length.Min < 0 {
				v.failf(path+".len", "array length with negative minimum %d", t.Length.Min)
			}
			v.checkInteger(t.Length, path+".len")
		}
		if t.Elem == nil {
			v.failf(path, "array with nil element type")
		} else {
			v.check(t.Elem, path+".elem")
		}

	case *mint.Struct:
		for i, s := range t.Slots {
			p := fmt.Sprintf("%s.slots[%d]", path, i)
			if s.Type == nil {
				v.failf(p, "struct slot %q with nil type", s.Name)
				continue
			}
			v.check(s.Type, p)
		}

	case *mint.Union:
		v.checkUnion(t, path)

	case *mint.Const:
		if t.Of == nil {
			v.failf(path, "const with nil underlying type")
			return
		}
		v.check(t.Of, path+".of")
		if i, ok := mint.Deref(t.Of).(*mint.Integer); ok && !i.Contains(t.Value) {
			v.failf(path, "const value %d outside underlying range %s", t.Value, i)
		}

	case *mint.TypeRef:
		if t.Target == nil {
			v.failf(path, "unresolved type ref %q", t.Name)
			return
		}
		v.check(t.Target, path)

	default:
		v.failf(path, "unknown MINT node %T", t)
	}
}

func (v *mintVerifier) checkInteger(t *mint.Integer, path string) {
	if t.Min > 0 && uint64(t.Min)+t.Range < t.Range {
		v.failf(path, "integer range [%d, %d+%d] overflows uint64", t.Min, t.Min, t.Range)
	}
	// The lowering maps every integer onto an 8/16/32/64-bit atom; Bits
	// must return one of those.
	switch bits, _ := t.Bits(); bits {
	case 8, 16, 32, 64:
	default:
		v.failf(path, "integer %s has no power-of-two wire width (got %d bits)", t, bits)
	}
}

func (v *mintVerifier) checkUnion(t *mint.Union, path string) {
	if t.Discrim == nil {
		v.failf(path, "union with nil discriminator")
	} else {
		switch d := mint.Deref(t.Discrim).(type) {
		case *mint.Integer:
			v.checkInteger(d, path+".discrim")
		case *mint.Scalar:
			if d.Kind != mint.Boolean && d.Kind != mint.Char8 {
				v.failf(path+".discrim", "non-discrete discriminator scalar %s", d)
			}
		default:
			v.failf(path+".discrim", "non-atomic union discriminator %s", t.Discrim)
		}
	}
	seen := map[int64]bool{}
	for i, c := range t.Cases {
		p := fmt.Sprintf("%s.cases[%d]", path, i)
		if seen[c.Value] {
			v.failf(p, "duplicate union case label %d", c.Value)
		}
		seen[c.Value] = true
		if d, ok := mint.Deref(t.Discrim).(*mint.Integer); ok && !d.Contains(c.Value) {
			v.failf(p, "case label %d outside discriminator range %s", c.Value, d)
		}
		if c.Type == nil {
			v.failf(p, "union arm with nil type")
			continue
		}
		v.checkArm(c.Type, p)
	}
	if t.Default != nil {
		v.checkArm(t.Default, path+".default")
	}
}

// checkArm visits a union arm in a fresh union-free region: recursion
// through the arm is legal because the discriminator terminates it.
func (v *mintVerifier) checkArm(t mint.Type, path string) {
	saved := v.path
	v.path = map[mint.Type]bool{}
	v.check(t, path)
	v.path = saved
}
