package verify

import (
	"strings"
	"testing"

	"flick/internal/mir"
	"flick/internal/wire"
)

// okBulkProof is the proof the alias pass would record for a dynamic
// byte bulk at a known offset (the canonical zero-copy region).
func okBulkProof(off int) *mir.AliasProof {
	return &mir.AliasProof{
		Class:         mir.AliasSafe,
		Off:           off,
		Align:         1,
		ByteIdentical: true,
		NoMutation:    true,
		Reason:        "byte-identical region",
	}
}

// zcProg builds the canonical proven marshal program: a 4-byte length
// item, then a dynamic byte bulk whose alias region starts at offset 4.
func zcProg() *mir.Program {
	v := &mir.Param{Name: "v"}
	return &mir.Program{Dir: mir.Marshal, Ops: []mir.Op{
		&mir.Ensure{Bytes: 4},
		&mir.LenItem{Wire: 4, Val: v},
		&mir.EnsureDyn{PerElem: 1, Count: v},
		&mir.Bulk{Val: v, Atom: wire.U8, ElemWire: 1, Count: -1, Alias: okBulkProof(4)},
	}}
}

func TestZeroCopyAcceptsHealthyProofs(t *testing.T) {
	var c Counters
	if fs := ZeroCopy(zcProg(), xdr(), "t", Strict, &c); len(fs) != 0 {
		t.Fatalf("healthy proofs rejected:\n%s", fs.Error())
	}
	if c.ZcRegions != 1 || c.ZcAliased != 1 {
		t.Fatalf("counters = %d regions / %d aliased, want 1/1", c.ZcRegions, c.ZcAliased)
	}
}

func TestZeroCopyModeOffSkips(t *testing.T) {
	p := zcProg()
	p.Ops[3].(*mir.Bulk).Alias.NoMutation = false
	if fs := ZeroCopy(p, xdr(), "t", Off, nil); fs != nil {
		t.Fatalf("Off mode produced findings:\n%s", fs.Error())
	}
}

// wantFinding asserts exactly one finding whose message contains msg
// and whose path carries the op position.
func wantOneZc(t *testing.T, fs Findings, path, msg string) {
	t.Helper()
	if len(fs) != 1 {
		t.Fatalf("findings = %d, want 1:\n%s", len(fs), fs.Error())
	}
	if !strings.Contains(fs[0].Path, path) {
		t.Fatalf("finding path %q does not locate %q", fs[0].Path, path)
	}
	if !strings.Contains(fs[0].Msg, msg) {
		t.Fatalf("finding %q does not mention %q", fs[0].Msg, msg)
	}
	if fs[0].Stage != "ZEROCOPY" {
		t.Fatalf("finding stage = %q, want ZEROCOPY", fs[0].Stage)
	}
}

func TestZeroCopyRejectsOverlappingRegion(t *testing.T) {
	// Corrupt the recorded offset so the alias region would begin
	// inside the 4-byte length prefix that precedes it.
	p := zcProg()
	p.Ops[3].(*mir.Bulk).Alias.Off = 2
	fs := ZeroCopy(p, xdr(), "t", On, nil)
	wantOneZc(t, fs, "t.ops[3]", "overlaps the preceding region")
}

func TestZeroCopyRejectsMisalignedOffset(t *testing.T) {
	// Corrupt the proof to demand 8-byte alignment of a region the
	// cursor replay places at offset 4.
	p := zcProg()
	p.Ops[3].(*mir.Bulk).Alias.Align = 8
	fs := ZeroCopy(p, xdr(), "t", On, nil)
	wantOneZc(t, fs, "t.ops[3]", "violates its recorded 8-byte alignment")
}

func TestZeroCopyRejectsMutationAfterMarshal(t *testing.T) {
	// Corrupt the proof to admit an in-place mutation window while
	// still claiming alias safety.
	p := zcProg()
	p.Ops[3].(*mir.Bulk).Alias.NoMutation = false
	fs := ZeroCopy(p, xdr(), "t", On, nil)
	wantOneZc(t, fs, "t.ops[3]", "mutation between marshal and send")
}

func TestZeroCopyRejectsAliasSafeChunk(t *testing.T) {
	// Chunk windows live in the encoder buffer; an alias-safe chunk
	// proof can only be corrupted metadata.
	p := &mir.Program{Dir: mir.Marshal, Ops: []mir.Op{
		&mir.Ensure{Bytes: 8},
		&mir.Chunk{Size: 8, Items: []mir.ChunkItem{
			{Off: 0, Atom: wire.U32, Wire: 4, Val: &mir.Param{Name: "a"}},
			{Off: 4, Atom: wire.U32, Wire: 4, Val: &mir.Param{Name: "b"}},
		}, Alias: &mir.AliasProof{Class: mir.AliasSafe, Off: 0, Align: 1}},
	}}
	fs := ZeroCopy(p, xdr(), "t", On, nil)
	wantOneZc(t, fs, "t.ops[1]", "encoder-owned")
}

func TestZeroCopyRejectsClassDisagreement(t *testing.T) {
	// An alias-safe claim on a bool bulk must lose to re-derivation.
	v := &mir.Param{Name: "v"}
	p := &mir.Program{Dir: mir.Marshal, Ops: []mir.Op{
		&mir.EnsureDyn{PerElem: 1, Count: v},
		&mir.Bulk{Val: v, Atom: wire.Bool, ElemWire: 1, Count: -1, Alias: okBulkProof(0)},
	}}
	fs := ZeroCopy(p, xdr(), "t", On, nil)
	wantOneZc(t, fs, "t.ops[1]", "re-derivation yields copy-required")
}

func TestZeroCopyStrictRequiresProofs(t *testing.T) {
	// Strip the proof: On tolerates the unproven region, Strict does not.
	p := zcProg()
	p.Ops[3].(*mir.Bulk).Alias = nil
	if fs := ZeroCopy(p, xdr(), "t", On, nil); len(fs) != 0 {
		t.Fatalf("On mode rejected a proof-less region:\n%s", fs.Error())
	}
	fs := ZeroCopy(p, xdr(), "t", Strict, nil)
	wantOneZc(t, fs, "t.ops[3]", "unproven region in strict mode")
}
