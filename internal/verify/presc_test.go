package verify

import (
	"testing"

	"flick/internal/cast"
	"flick/internal/mint"
	"flick/internal/pres"
	"flick/internal/presc"
)

// goStubFile builds a minimal healthy Go presentation: one stub with a
// single u32 in-parameter and a string result.
func goStubFile() *presc.File {
	reqMint := mint.U32()
	repMint := mint.NewString(64)
	return &presc.File{
		Name: "t.idl",
		Side: presc.Client,
		Lang: "go",
		Stubs: []*presc.Stub{{
			Kind:    presc.ClientCall,
			Name:    "Echo_Shout",
			Op:      "shout",
			Request: &mint.Struct{Slots: []mint.Slot{{Name: "n", Type: reqMint}}},
			Reply:   &mint.Struct{Slots: []mint.Slot{{Name: "_ret", Type: repMint}}},
			Params: []presc.ParamPres{{
				Name: "n",
				Role: presc.RoleRequest,
				Request: &pres.Node{
					Kind:  pres.DirectKind,
					Mint:  reqMint,
					CType: "uint32",
				},
			}},
			Result: &presc.ParamPres{Name: "_ret", Role: presc.RoleReply, Reply: &pres.Node{
				Kind:  pres.CountedKind,
				Mint:  repMint,
				CType: "string",
				Children: []*pres.Node{{
					Kind:  pres.DirectKind,
					Mint:  repMint.Elem,
					CType: "byte",
				}},
			}},
		}},
	}
}

func TestPRESCAcceptsHealthyFile(t *testing.T) {
	var c Counters
	if fs := PRESC(goStubFile(), &c); len(fs) != 0 {
		t.Fatalf("healthy presentation rejected:\n%s", fs.Error())
	}
	if c.PrescStubs != 1 {
		t.Fatalf("PrescStubs = %d, want 1", c.PrescStubs)
	}
}

func TestPRESCDanglingMintRef(t *testing.T) {
	// A PRES node that presents no MINT type at all: the mapping layer
	// lost the connection between presented data and the message.
	f := goStubFile()
	f.Stubs[0].Params[0].Request.Mint = nil
	fs := PRESC(f, nil)
	wantFinding(t, fs, "PRES-C", "param n", "no MINT type (dangling mapping)")
}

func TestPRESCChildPresentsWrongMint(t *testing.T) {
	// The counted node's element presents a float64 while the array's
	// element type is char: a dangling PRES→MINT ref.
	f := goStubFile()
	f.Stubs[0].Result.Reply.Children[0].Mint = mint.F64()
	fs := PRESC(f, nil)
	wantFinding(t, fs, "PRES-C", "result.elem", "dangling PRES→MINT ref")
}

func TestPRESCMissingTargetType(t *testing.T) {
	f := goStubFile()
	f.Stubs[0].Params[0].Request.CType = nil
	fs := PRESC(f, nil)
	wantFinding(t, fs, "PRES-C", "param n", "no target type")
}

func TestPRESCKindMintMismatch(t *testing.T) {
	// A counted node over a non-array MINT type.
	f := goStubFile()
	f.Stubs[0].Result.Reply.Mint = mint.U32()
	fs := PRESC(f, nil)
	wantFinding(t, fs, "PRES-C", "counted node over non-array MINT")
}

func TestPRESCTerminatedOverNonChar(t *testing.T) {
	f := goStubFile()
	n := f.Stubs[0].Result.Reply
	n.Kind = pres.TerminatedKind
	n.Mint = mint.NewOpaque(64)
	n.Children[0].Mint = mint.U8()
	fs := PRESC(f, nil)
	wantFinding(t, fs, "PRES-C", "terminated node over non-char element")
}

func TestPRESCUnresolvedRef(t *testing.T) {
	f := goStubFile()
	f.Stubs[0].Params[0].Request = &pres.Node{Kind: pres.RefKind, Name: "ghost"}
	fs := PRESC(f, nil)
	wantFinding(t, fs, "PRES-C", `unresolved ref "ghost"`)
}

func TestPRESCOnewayWithReply(t *testing.T) {
	f := goStubFile()
	f.Stubs[0].Oneway = true
	fs := PRESC(f, nil)
	wantFinding(t, fs, "PRES-C", "oneway=true but reply=true")
}

func TestPRESCCountedCAggregateNeedsMembers(t *testing.T) {
	// A C presentation's counted aggregate must name its length and
	// buffer members; this one names neither.
	str := mint.NewString(0)
	f := &presc.File{
		Name: "t.idl",
		Side: presc.Client,
		Lang: "c",
		Stubs: []*presc.Stub{{
			Kind:    presc.ClientCall,
			Name:    "f_op",
			Op:      "op",
			Oneway:  true,
			Request: &mint.Struct{Slots: []mint.Slot{{Name: "s", Type: str}}},
			Params: []presc.ParamPres{{
				Name: "s",
				Role: presc.RoleRequest,
				Request: &pres.Node{
					Kind:  pres.CountedKind,
					Mint:  str,
					CType: &cast.Named{Name: "buf_t"},
					Children: []*pres.Node{{
						Kind:  pres.DirectKind,
						Mint:  str.Elem,
						CType: cast.Char,
					}},
				},
			}},
		}},
	}
	fs := PRESC(f, nil)
	wantFinding(t, fs, "PRES-C", "counted C aggregate without a length member")
	wantFinding(t, fs, "PRES-C", "counted C aggregate without a buffer member")
}

func TestPRESCDanglingCASTDecl(t *testing.T) {
	f := &presc.File{
		Name: "t.idl",
		Side: presc.Client,
		Lang: "c",
		Decls: []cast.Decl{
			&cast.TypedefDecl{Name: "ok_t", Type: cast.Char},
			&cast.TypedefDecl{Name: "bad_t", Type: nil},
			nil,
		},
	}
	fs := PRESC(f, nil)
	wantFinding(t, fs, "PRES-C", "decls[1]", `typedef "bad_t" of nil type (dangling CAST decl)`)
	wantFinding(t, fs, "PRES-C", "decls[2]", "nil CAST declaration")
}

func TestPRESCStructChildCountMismatch(t *testing.T) {
	st := &mint.Struct{Slots: []mint.Slot{
		{Name: "a", Type: mint.U32()},
		{Name: "b", Type: mint.F64()},
	}}
	f := goStubFile()
	f.Stubs[0].Params[0].Request = &pres.Node{
		Kind:       pres.StructKind,
		Mint:       st,
		CType:      "T",
		FieldNames: []string{"A"},
		Children: []*pres.Node{
			{Kind: pres.DirectKind, Mint: st.Slots[0].Type, CType: "uint32"},
		},
	}
	f.Stubs[0].Request = &mint.Struct{Slots: []mint.Slot{{Name: "n", Type: st}}}
	fs := PRESC(f, nil)
	wantFinding(t, fs, "PRES-C", "struct node has 1 children for 2 MINT slots")
}
