package verify

import (
	"fmt"

	"flick/internal/mir"
	"flick/internal/wire"
)

// ZeroCopy cross-checks the alias pass's zero-copy proofs at the stage
// boundary. The alias pass classifies every Bulk and Chunk region as
// alias-safe or copy-required and records why; this verifier
// *independently re-derives* each classification from the op and the
// target format and rejects any proof that disagrees. A corrupted
// proof — an alias-safe claim on a chunk window, a recorded offset
// that overlaps the preceding region, an alignment the replayed cursor
// cannot satisfy, an admitted mutation window — becomes a positioned
// compile error instead of a silently wrong fast path.
//
// Mode semantics: On checks the consistency of every proof present;
// Strict additionally demands that every region carries a proof at all
// (an unproven region in strict mode is a compile error — the emitter
// must never have to guess).
//
// name labels the program in diagnostics (e.g. "Store_put.request").
func ZeroCopy(prog *mir.Program, f wire.Format, name string, mode Mode, c *Counters) Findings {
	if mode == Off {
		return nil
	}
	v := &zcVerifier{f: f, dir: prog.Dir, strict: mode == Strict, c: c}
	v.walk(prog.Ops, name, newCursor(f))
	for i, sub := range prog.Subs {
		subName := fmt.Sprintf("%s.sub[%d:%s]", name, i, sub.Name)
		v.walk(sub.Ops, subName, unknownCursor())
	}
	if c != nil {
		c.Findings += len(v.out)
	}
	return v.out
}

type zcVerifier struct {
	f      wire.Format
	dir    mir.Dir
	strict bool
	c      *Counters
	out    Findings
}

func (v *zcVerifier) failf(path, format string, args ...any) {
	v.out = append(v.out, Finding{Stage: "ZEROCOPY", Path: path, Msg: fmt.Sprintf(format, args...)})
}

// walk replays the placement cursor over the op layout (the same
// replay the MIR verifier performs) and checks each region's proof
// against it.
func (v *zcVerifier) walk(ops []mir.Op, path string, cur cursor) {
	for i, op := range ops {
		p := fmt.Sprintf("%s.ops[%d]", path, i)
		switch op := op.(type) {
		case *mir.Align:
			cur.align(op.N)
		case *mir.Ensure, *mir.EnsureDyn:
		case *mir.Item:
			cur.advance(op.Wire)
		case *mir.ConstItem:
			cur.advance(op.Wire)
		case *mir.LenItem:
			cur.advance(op.Wire)
		case *mir.Chunk:
			v.checkChunkProof(op, p, &cur)
			cur.advance(op.Size)
		case *mir.Bulk:
			v.checkBulkProof(op, p, &cur)
			if op.Count >= 0 {
				n := op.Count * op.ElemWire
				if op.Nul {
					n += op.ElemWire
				}
				cur.advance(n)
			} else {
				cur.loseTrack()
			}
		case *mir.Loop:
			v.walk(op.Body, p+".body", unknownCursor())
			cur.loseTrack()
		case *mir.Opt:
			cur.advance(op.Wire)
			v.walk(op.Body, p+".body", unknownCursor())
			cur.loseTrack()
		case *mir.Switch:
			cur.advance(op.Wire)
			for ci := range op.Cases {
				v.walk(op.Cases[ci].Body, fmt.Sprintf("%s.case[%d]", p, ci), unknownCursor())
			}
			v.walk(op.Default, p+".default", unknownCursor())
			cur.loseTrack()
		case *mir.CallSub:
			cur.loseTrack()
		}
	}
}

// checkPlacement cross-checks a proof's recorded region start against
// the replayed cursor. A recorded offset behind the replayed position
// means the region would overlap what was already produced; ahead
// means it would leave a gap — both are corrupted metadata.
func (v *zcVerifier) checkPlacement(proof *mir.AliasProof, path string, cur *cursor) {
	if cur.known {
		if proof.Off < 0 {
			// The prover recorded less than it could have; harmless.
			return
		}
		if proof.Off < cur.off {
			v.failf(path, "alias region recorded at offset %d overlaps the preceding region ending at %d", proof.Off, cur.off)
			return
		}
		if proof.Off > cur.off {
			v.failf(path, "alias proof records offset %d but cursor replay places the region at %d", proof.Off, cur.off)
			return
		}
	} else if proof.Off >= 0 {
		v.failf(path, "alias proof records static offset %d for a region behind dynamic data", proof.Off)
		return
	}
	if proof.Align > 1 {
		if cur.known && proof.Off >= 0 && proof.Off%proof.Align != 0 {
			v.failf(path, "alias region at offset %d violates its recorded %d-byte alignment", proof.Off, proof.Align)
		}
	}
}

func (v *zcVerifier) checkChunkProof(op *mir.Chunk, path string, cur *cursor) {
	if v.c != nil {
		v.c.ZcRegions++
	}
	if op.Alias == nil {
		if v.strict {
			v.failf(path, "chunk carries no alias proof (unproven region in strict mode)")
		}
		return
	}
	if op.Alias.Class == mir.AliasSafe {
		v.failf(path, "chunk marked alias-safe: chunk windows are encoder-owned and never alias presented storage")
		return
	}
	v.checkPlacement(op.Alias, path, cur)
}

func (v *zcVerifier) checkBulkProof(op *mir.Bulk, path string, cur *cursor) {
	if v.c != nil {
		v.c.ZcRegions++
	}
	if op.Alias == nil {
		if v.strict {
			v.failf(path, "bulk transfer carries no alias proof (unproven region in strict mode)")
		}
		return
	}
	want := v.rederiveBulk(op)
	if op.Alias.Class != want.class {
		v.failf(path, "alias proof claims %v but re-derivation yields %v (%s)", op.Alias.Class, want.class, want.reason)
		return
	}
	if op.Alias.Class != mir.AliasSafe {
		v.checkPlacement(op.Alias, path, cur)
		return
	}
	// An alias-safe proof must carry both obligations it rests on.
	if !op.Alias.ByteIdentical {
		v.failf(path, "alias-safe proof without the byte-identity obligation: wire bytes would differ from presented bytes")
	}
	if !op.Alias.NoMutation {
		v.failf(path, "alias-safe proof admits in-place mutation between marshal and send")
	}
	v.checkPlacement(op.Alias, path, cur)
	if v.c != nil {
		v.c.ZcAliased++
	}
}

// rederiveBulk is the verifier's own derivation of a bulk region's
// classification — deliberately written against the op and format, not
// against the prover's code path, so a prover bug and a verifier bug
// must coincide to let a bad proof through.
type zcDerivation struct {
	class  mir.AliasClass
	reason string
}

func (v *zcVerifier) rederiveBulk(op *mir.Bulk) zcDerivation {
	switch {
	case mir.BulkIsString(op):
		return zcDerivation{mir.CopyRequired, "string presentation"}
	case op.Atom.Kind == wire.BoolAtom:
		return zcDerivation{mir.CopyRequired, "bool repacking"}
	case op.ElemWire != 1:
		return zcDerivation{mir.CopyRequired, fmt.Sprintf("%d-byte elements need conversion", op.ElemWire)}
	case op.Nul:
		return zcDerivation{mir.CopyRequired, "NUL terminator is not presented storage"}
	case v.dir == mir.Unmarshal && op.Count >= 0:
		return zcDerivation{mir.CopyRequired, "fixed-array decode storage is caller-owned"}
	}
	// Byte-wide, non-bool, non-string, unterminated: a flat alias is
	// byte-identical, and no op after the alias writes presented
	// storage (marshal programs only read it; decode views borrow the
	// arena under the pin-on-alias Release contract).
	return zcDerivation{mir.AliasSafe, "byte-identical region"}
}
