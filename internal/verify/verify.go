// Package verify implements Flick-Go's stage-boundary IR verifiers: one
// pass per intermediate representation, run by the driver between
// pipeline stages so a malformed IR node or an optimizer bug is caught
// where it is introduced, with a stage-qualified diagnostic, instead of
// surfacing as corrupt wire bytes at runtime.
//
// Three verifiers cover the pipeline below AOI (which has its own
// validator in package aoi):
//
//   - MINT — well-formed message shapes: resolved refs, sane integer
//     ranges, distinct union labels, and acyclicity except through a
//     union arm (the MINT encoding of optional data, mirroring XDR's
//     recursion-through-pointer rule).
//   - PRESC — every PRES mapping node connects a live MINT node to a
//     live target type: node kinds match the MINT shapes beneath them,
//     child nodes present exactly the components of the parent's MINT
//     type (up to structural equality), counted arrays carry a length,
//     terminated strings map char-like items, and C presentations have
//     no dangling CAST declarations.
//   - MIR — post-optimize invariants: chunk offsets are in-bounds,
//     contiguous, and format-aligned; every region the emitters read or
//     write unchecked is dominated by an ensure-space check; bulk
//     (memcpy) transfers really are byte-identical under the target
//     wire format; and the classify() totals agree with the op layout.
//
// Verifiers report findings rather than stopping at the first problem,
// so one run over a corrupted IR names everything wrong with it.
package verify

import (
	"fmt"
	"strings"
)

// Mode selects how much verification the driver runs. The zero value is
// On so every caller gets stage-boundary checking by default.
type Mode int

const (
	// On runs the linear-time verifier passes between every stage.
	On Mode = iota
	// Off skips verification (`flick -noverify`).
	Off
	// Strict additionally runs the O(n²) overlap checks on chunk
	// layouts (`flick -verify=strict`).
	Strict
)

func (m Mode) String() string {
	switch m {
	case On:
		return "on"
	case Off:
		return "off"
	case Strict:
		return "strict"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// ParseMode maps a -verify flag value onto a Mode.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "", "on", "true", "1":
		return On, nil
	case "off", "false", "0":
		return Off, nil
	case "strict":
		return Strict, nil
	}
	return On, fmt.Errorf("verify: unknown mode %q (want on, off, or strict)", s)
}

// Finding is one verifier diagnostic: the stage that failed, the path to
// the offending node within that stage's IR, and what is wrong with it.
type Finding struct {
	// Stage names the verifier pass: "MINT", "PRES-C", or "MIR".
	Stage string
	// Path locates the node, e.g. "stub Mail_send: request.slots[1].elem".
	Path string
	// Msg describes the violated invariant.
	Msg string
}

func (f Finding) String() string {
	if f.Path == "" {
		return fmt.Sprintf("verify/%s: %s", f.Stage, f.Msg)
	}
	return fmt.Sprintf("verify/%s: %s: %s", f.Stage, f.Path, f.Msg)
}

// Findings aggregates every diagnostic of one verifier run. A nil or
// empty Findings means the IR passed.
type Findings []Finding

// Error renders the findings as one multi-line error message.
func (fs Findings) Error() string {
	if len(fs) == 0 {
		return "verify: ok"
	}
	lines := make([]string, 0, len(fs)+1)
	lines = append(lines, fmt.Sprintf("verify: %d finding(s)", len(fs)))
	for _, f := range fs {
		lines = append(lines, "  "+f.String())
	}
	return strings.Join(lines, "\n")
}

// AsError returns the findings as an error, or nil when there are none
// (a typed-nil-safe conversion for callers that abort on findings).
func (fs Findings) AsError() error {
	if len(fs) == 0 {
		return nil
	}
	return fs
}

// Counters accumulates what the verifier passes covered, surfaced
// through `flick -stats` next to the optimizer counters.
type Counters struct {
	// MintNodes is the number of MINT nodes visited.
	MintNodes int `json:"mint_nodes"`
	// PrescStubs is the number of PRES-C stubs verified.
	PrescStubs int `json:"presc_stubs"`
	// MirPrograms is the number of post-optimize MIR programs verified
	// (including out-of-line subprograms).
	MirPrograms int `json:"mir_programs"`
	// MirChunks is the number of chunk layouts checked.
	MirChunks int `json:"mir_chunks"`
	// ZcRegions is the number of transfer regions (bulks and chunks)
	// whose zero-copy proofs the zerocopy verifier cross-checked;
	// ZcAliased the subset whose alias-safe claim survived independent
	// re-derivation.
	ZcRegions int `json:"zc_regions"`
	ZcAliased int `json:"zc_aliased"`
	// Findings counts diagnostics across all passes (zero on a healthy
	// compile: verification is on by default and findings abort it).
	Findings int `json:"findings"`
}

// Add accumulates o into c.
func (c *Counters) Add(o Counters) {
	c.MintNodes += o.MintNodes
	c.PrescStubs += o.PrescStubs
	c.MirPrograms += o.MirPrograms
	c.MirChunks += o.MirChunks
	c.ZcRegions += o.ZcRegions
	c.ZcAliased += o.ZcAliased
	c.Findings += o.Findings
}

// Report renders a one-line coverage summary.
func (c Counters) Report() string {
	return fmt.Sprintf("verify: %d mint nodes, %d presc stubs, %d mir programs (%d chunk layouts), %d zero-copy regions (%d alias-safe), %d findings",
		c.MintNodes, c.PrescStubs, c.MirPrograms, c.MirChunks, c.ZcRegions, c.ZcAliased, c.Findings)
}
