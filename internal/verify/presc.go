package verify

import (
	"fmt"

	"flick/internal/cast"
	"flick/internal/mint"
	"flick/internal/pres"
	"flick/internal/presc"
)

// PRESC verifies a complete presentation: the MINT message types of
// every stub, the PRES trees connecting parameters to those messages,
// and (for C presentations) the CAST declaration list. The PRES checks
// enforce the mapping-layer contract:
//
//   - every node's kind matches the MINT shape beneath it (a counted
//     node presents a variable array, a terminated node a char array,
//     an opt_ptr a two-case union, ...);
//   - every child presents exactly the corresponding component of the
//     parent's MINT type (structural equality — "connects a live MINT
//     node");
//   - data-carrying nodes have a live target type (CType), counted C
//     aggregates carry length and buffer members, refs resolve;
//   - C declaration lists contain no dangling (nil or unnamed) decls.
func PRESC(f *presc.File, c *Counters) Findings {
	v := &prescVerifier{c: c, lang: f.Lang}
	if f.Side != presc.Client && f.Side != presc.Server {
		v.failf("file", "bad side %d", int(f.Side))
	}
	names := map[string]bool{}
	for _, s := range f.Stubs {
		if c != nil {
			c.PrescStubs++
		}
		if s.Name == "" {
			v.failf(fmt.Sprintf("stub for op %q", s.Op), "empty stub name")
			continue
		}
		stubPath := "stub " + s.Name
		if names[s.Name] && s.Kind != presc.ServerWork {
			v.failf(stubPath, "duplicate stub name")
		}
		names[s.Name] = true
		v.checkStub(s, stubPath)
	}
	v.checkDecls(f)
	if c != nil {
		c.Findings += len(v.out)
	}
	return v.out
}

type prescVerifier struct {
	c    *Counters
	lang string
	out  Findings
}

func (v *prescVerifier) failf(path, format string, args ...any) {
	v.out = append(v.out, Finding{Stage: "PRES-C", Path: path, Msg: fmt.Sprintf(format, args...)})
}

func (v *prescVerifier) checkStub(s *presc.Stub, path string) {
	if s.Request == nil {
		v.failf(path, "nil request type")
	} else {
		v.out = append(v.out, MINT(s.Request, path+": request", v.c)...)
	}
	if s.Oneway != (s.Reply == nil) {
		v.failf(path, "oneway=%v but reply=%v", s.Oneway, s.Reply != nil)
	}
	if s.Reply != nil {
		v.out = append(v.out, MINT(s.Reply, path+": reply", v.c)...)
	}
	for i := range s.Params {
		p := &s.Params[i]
		pp := fmt.Sprintf("%s: param %s", path, p.Name)
		switch p.Role {
		case presc.RoleRequest, presc.RoleBoth:
			if p.Request == nil {
				v.failf(pp, "request role without a request PRES tree")
			} else {
				v.checkNode(p.Request, pp+".request", map[*pres.Node]bool{})
			}
		}
		switch p.Role {
		case presc.RoleReply, presc.RoleBoth:
			if p.Reply == nil {
				v.failf(pp, "reply role without a reply PRES tree")
			} else {
				v.checkNode(p.Reply, pp+".reply", map[*pres.Node]bool{})
			}
		}
	}
	if s.Result != nil && s.Result.Reply != nil {
		v.checkNode(s.Result.Reply, path+": result", map[*pres.Node]bool{})
	}
	if len(s.ExceptionPres) != len(s.ExceptionNames) {
		v.failf(path, "%d exception PRES trees for %d exception names",
			len(s.ExceptionPres), len(s.ExceptionNames))
		return
	}
	for i, ex := range s.ExceptionPres {
		if ex == nil {
			v.failf(fmt.Sprintf("%s: exception %s", path, s.ExceptionNames[i]), "nil PRES tree")
			continue
		}
		v.checkNode(ex, fmt.Sprintf("%s: exception %s", path, s.ExceptionNames[i]), map[*pres.Node]bool{})
	}
}

// needsCType reports whether nodes of kind k present data and therefore
// must carry a live target type.
func needsCType(k pres.Kind) bool {
	switch k {
	case pres.VoidKind, pres.RefKind:
		return false
	}
	return true
}

func (v *prescVerifier) checkNode(n *pres.Node, path string, seen map[*pres.Node]bool) {
	if n == nil {
		v.failf(path, "nil PRES node")
		return
	}
	if seen[n] {
		return
	}
	seen[n] = true

	if n.Mint == nil && n.Kind != pres.VoidKind && n.Kind != pres.RefKind {
		v.failf(path, "%s node with no MINT type (dangling mapping)", n.Kind)
		return
	}
	if needsCType(n.Kind) && n.CType == nil {
		v.failf(path, "%s node with no target type (dangling %s decl)", n.Kind, v.targetName())
	}

	switch n.Kind {
	case pres.VoidKind:
		return

	case pres.RefKind:
		if n.Target == nil {
			v.failf(path, "unresolved ref %q", n.Name)
			return
		}
		v.checkNode(n.Target, path, seen)
		return

	case pres.DirectKind, pres.EnumKind:
		switch mint.Deref(n.Mint).(type) {
		case *mint.Integer, *mint.Scalar, *mint.Const:
		default:
			v.failf(path, "%s node over non-atomic MINT %s", n.Kind, n.Mint)
		}

	case pres.FixedArrayKind:
		arr, ok := mint.Deref(n.Mint).(*mint.Array)
		if !ok || !arr.Fixed() {
			v.failf(path, "fixed_array node over %s (want fixed-length array)", n.Mint)
			return
		}
		v.checkElem(n, arr, path, seen)

	case pres.CountedKind, pres.TerminatedKind:
		arr, ok := mint.Deref(n.Mint).(*mint.Array)
		if !ok {
			v.failf(path, "%s node over non-array MINT %s", n.Kind, n.Mint)
			return
		}
		if arr.Fixed() {
			v.failf(path, "%s node over fixed array %s (no length travels)", n.Kind, n.Mint)
		}
		if n.Kind == pres.TerminatedKind && !isCharElem(arr) {
			v.failf(path, "terminated node over non-char element %s (terminated strings map char-like items)", arr.Elem)
		}
		// Counted C aggregates must name where the length and the data
		// live; Go counted nodes present slices/strings, whose length
		// is intrinsic.
		if n.Kind == pres.CountedKind {
			if _, isGo := n.CType.(string); !isGo && n.CType != nil {
				if n.LengthField == "" {
					v.failf(path, "counted C aggregate without a length member")
				}
				if n.BufferField == "" {
					v.failf(path, "counted C aggregate without a buffer member")
				}
			}
		}
		v.checkElem(n, arr, path, seen)

	case pres.OptPtrKind:
		u, ok := mint.Deref(n.Mint).(*mint.Union)
		if !ok || len(u.Cases) != 2 {
			v.failf(path, "opt_ptr node over %s (want 2-case union)", n.Mint)
			return
		}
		// The element presents the non-void arm.
		var present mint.Type
		for _, c := range u.Cases {
			if !isVoid(c.Type) {
				present = c.Type
			}
		}
		if present == nil {
			v.failf(path, "opt_ptr union has no data-carrying arm")
			return
		}
		if len(n.Children) != 1 {
			v.failf(path, "opt_ptr node with %d children, want 1", len(n.Children))
			return
		}
		v.checkChildMint(n.Children[0], present, path+".elem")
		v.checkNode(n.Children[0], path+".elem", seen)

	case pres.StructKind:
		st, ok := mint.Deref(n.Mint).(*mint.Struct)
		if !ok {
			v.failf(path, "struct node over %s", n.Mint)
			return
		}
		if len(n.Children) != len(st.Slots) {
			v.failf(path, "struct node has %d children for %d MINT slots", len(n.Children), len(st.Slots))
			return
		}
		if len(n.FieldNames) != len(n.Children) {
			v.failf(path, "struct node has %d field names for %d children", len(n.FieldNames), len(n.Children))
		}
		for i, c := range n.Children {
			p := fmt.Sprintf("%s.%s", path, fieldName(n, i))
			v.checkChildMint(c, st.Slots[i].Type, p)
			v.checkNode(c, p, seen)
		}

	case pres.UnionKind:
		u, ok := mint.Deref(n.Mint).(*mint.Union)
		if !ok {
			v.failf(path, "union node over %s", n.Mint)
			return
		}
		want := len(u.Cases)
		if u.Default != nil {
			want++
		}
		if len(n.Children) != want {
			v.failf(path, "union node has %d children for %d arms", len(n.Children), want)
			return
		}
		if n.DiscrimCType == nil {
			v.failf(path, "union node with no presented discriminator type")
		}
		for i, c := range n.Children {
			p := fmt.Sprintf("%s.%s", path, fieldName(n, i))
			if i < len(u.Cases) {
				v.checkChildMint(c, u.Cases[i].Type, p)
			} else {
				v.checkChildMint(c, u.Default, p)
			}
			v.checkNode(c, p, seen)
		}

	default:
		v.failf(path, "unknown PRES kind %d", int(n.Kind))
	}
}

// checkElem validates an array-like node's single child against the
// array's element type.
func (v *prescVerifier) checkElem(n *pres.Node, arr *mint.Array, path string, seen map[*pres.Node]bool) {
	if len(n.Children) != 1 {
		v.failf(path, "%s node with %d children, want 1", n.Kind, len(n.Children))
		return
	}
	v.checkChildMint(n.Children[0], arr.Elem, path+".elem")
	v.checkNode(n.Children[0], path+".elem", seen)
}

// checkChildMint enforces the "live MINT node" rule: a child node must
// present exactly the MINT component its parent hands it. Structural
// equality (not pointer identity) is used because presentation
// generators may synthesize equal-but-fresh atoms (e.g. byte elements
// of an object key).
func (v *prescVerifier) checkChildMint(child *pres.Node, want mint.Type, path string) {
	if child == nil || want == nil {
		return // reported by the caller's shape checks
	}
	got := child.Mint
	if r := resolveRef(child); r != nil {
		got = r.Mint
	}
	if got == nil {
		return // void/ref nodes; checkNode reports genuinely missing Mint
	}
	if !mint.Equal(got, want) {
		v.failf(path, "child presents MINT %s but parent carries %s (dangling PRES→MINT ref)", got, want)
	}
}

// resolveRef follows RefKind chains without panicking on dangling refs
// (those are reported as findings instead).
func resolveRef(n *pres.Node) *pres.Node {
	for hops := 0; n != nil && n.Kind == pres.RefKind && hops < 1000; hops++ {
		n = n.Target
	}
	return n
}

func fieldName(n *pres.Node, i int) string {
	if i < len(n.FieldNames) && n.FieldNames[i] != "" {
		return n.FieldNames[i]
	}
	return fmt.Sprintf("children[%d]", i)
}

func isVoid(t mint.Type) bool {
	s, ok := mint.Deref(t).(*mint.Scalar)
	return ok && s.Kind == mint.Void
}

func isCharElem(arr *mint.Array) bool {
	s, ok := mint.Deref(arr.Elem).(*mint.Scalar)
	return ok && s.Kind == mint.Char8
}

func (v *prescVerifier) targetName() string {
	if v.lang == "c" {
		return "CAST"
	}
	return "Go type"
}

// checkDecls validates a C presentation's CAST declaration list: no nil
// entries and no unnamed (dangling) declarations.
func (v *prescVerifier) checkDecls(f *presc.File) {
	decls, ok := f.Decls.([]cast.Decl)
	if !ok {
		return // Go presentations carry source text
	}
	for i, d := range decls {
		path := fmt.Sprintf("decls[%d]", i)
		switch d := d.(type) {
		case nil:
			v.failf(path, "nil CAST declaration")
		case *cast.TypedefDecl:
			if d.Name == "" {
				v.failf(path, "typedef with empty name")
			}
			if d.Type == nil {
				v.failf(path, "typedef %q of nil type (dangling CAST decl)", d.Name)
			}
		case *cast.FuncDecl:
			if d.Name == "" {
				v.failf(path, "function declaration with empty name")
			}
		case *cast.VarDecl:
			if d.Name == "" {
				v.failf(path, "variable declaration with empty name")
			}
			if d.Type == nil {
				v.failf(path, "variable %q of nil type (dangling CAST decl)", d.Name)
			}
		}
	}
}
