package verify

import (
	"testing"

	"flick/internal/mir"
	"flick/internal/wire"
)

func xdr() wire.Format {
	f, ok := wire.ByName("xdr")
	if !ok {
		panic("no xdr format")
	}
	return f
}

func u64p(v uint64) *uint64 { return &v }

// prog wraps ops in a marshal program pre-classified as the ops imply;
// tests that probe classification build Programs directly.
func prog(dir mir.Dir, class mir.SizeClass, fixed int, ops ...mir.Op) *mir.Program {
	return &mir.Program{Dir: dir, Ops: ops, Class: class, FixedBytes: fixed}
}

func TestMIRAcceptsHealthyProgram(t *testing.T) {
	// Ensure(8); u32 item; u32 item — the canonical grouped run.
	p := prog(mir.Marshal, mir.FixedSize, 8,
		&mir.Ensure{Bytes: 8},
		&mir.Item{Atom: wire.U32, Wire: 4, Val: &mir.Param{Name: "a"}},
		&mir.Item{Atom: wire.U32, Wire: 4, Val: &mir.Param{Name: "b"}},
	)
	var c Counters
	if fs := MIR(p, xdr(), "t", On, &c); len(fs) != 0 {
		t.Fatalf("healthy program rejected:\n%s", fs.Error())
	}
	if c.MirPrograms != 1 {
		t.Fatalf("MirPrograms = %d, want 1", c.MirPrograms)
	}
}

func TestMIRModeOffSkips(t *testing.T) {
	// A blatantly corrupt program passes when verification is off.
	p := prog(mir.Marshal, mir.FixedSize, 4,
		&mir.Item{Atom: wire.U32, Wire: 4, Val: &mir.Param{Name: "a"}},
	)
	// (no Ensure: would fail under On)
	p.FixedBytes = 4
	if fs := MIR(p, xdr(), "t", Off, nil); fs != nil {
		t.Fatalf("Off mode produced findings:\n%s", fs.Error())
	}
}

func TestMIRMissingEnsure(t *testing.T) {
	p := prog(mir.Marshal, mir.FixedSize, 8,
		&mir.Ensure{Bytes: 4},
		&mir.Item{Atom: wire.U32, Wire: 4, Val: &mir.Param{Name: "a"}},
		&mir.Item{Atom: wire.U32, Wire: 4, Val: &mir.Param{Name: "b"}},
	)
	fs := MIR(p, xdr(), "t", On, nil)
	wantFinding(t, fs, "MIR", "t.ops[2]", "not dominated by an ensure-space check")
}

func TestMIRChunkNotCovered(t *testing.T) {
	p := prog(mir.Marshal, mir.FixedSize, 8,
		&mir.Chunk{Size: 8, Items: []mir.ChunkItem{
			{Off: 0, Atom: wire.U32, Wire: 4, Val: &mir.Param{Name: "a"}},
			{Off: 4, Atom: wire.U32, Wire: 4, Val: &mir.Param{Name: "b"}},
		}},
	)
	fs := MIR(p, xdr(), "t", On, nil)
	wantFinding(t, fs, "MIR", "t.ops[0]", "chunk of 8 bytes not dominated by an ensure-space check")
}

func TestMIRChunkOutOfBounds(t *testing.T) {
	p := prog(mir.Marshal, mir.FixedSize, 8,
		&mir.Ensure{Bytes: 8},
		&mir.Chunk{Size: 8, Items: []mir.ChunkItem{
			{Off: 0, Atom: wire.U32, Wire: 4, Val: &mir.Param{Name: "a"}},
			{Off: 8, Atom: wire.U32, Wire: 4, Val: &mir.Param{Name: "b"}},
		}},
	)
	fs := MIR(p, xdr(), "t", On, nil)
	wantFinding(t, fs, "MIR", "items[1]", "chunk item [8,12) outside chunk of 8 bytes")
}

func TestMIRChunkGap(t *testing.T) {
	p := prog(mir.Marshal, mir.FixedSize, 12,
		&mir.Ensure{Bytes: 12},
		&mir.Chunk{Size: 12, Items: []mir.ChunkItem{
			{Off: 0, Atom: wire.U32, Wire: 4, Val: &mir.Param{Name: "a"}},
			{Off: 8, Atom: wire.U32, Wire: 4, Val: &mir.Param{Name: "b"}},
		}},
	)
	fs := MIR(p, xdr(), "t", On, nil)
	wantFinding(t, fs, "MIR", "chunk item at offset 8, expected 4")
}

func TestMIRChunkOverlapStrict(t *testing.T) {
	// Contiguity already rejects overlaps; strict mode names the pair
	// explicitly even when offsets go backwards.
	p := prog(mir.Marshal, mir.FixedSize, 8,
		&mir.Ensure{Bytes: 8},
		&mir.Chunk{Size: 8, Items: []mir.ChunkItem{
			{Off: 0, Atom: wire.U64, Wire: 8, Val: &mir.Param{Name: "a"}},
			{Off: 4, Atom: wire.U32, Wire: 4, Val: &mir.Param{Name: "b"}},
		}},
	)
	fs := MIR(p, xdr(), "t", Strict, nil)
	wantFinding(t, fs, "MIR", "chunk item [4,8) overlaps item 0 [0,8)")
}

func TestMIRChunkMisaligned(t *testing.T) {
	// Under CDR (natural alignment), a u64 at offset 4 is misaligned.
	cdr, _ := wire.ByName("cdr")
	p := prog(mir.Marshal, mir.FixedSize, 12,
		&mir.Ensure{Bytes: 12},
		&mir.Chunk{Size: 12, Items: []mir.ChunkItem{
			{Off: 0, Atom: wire.U32, Wire: 4, Val: &mir.Param{Name: "a"}},
			{Off: 4, Atom: wire.U64, Wire: 8, Val: &mir.Param{Name: "b"}},
		}},
	)
	fs := MIR(p, cdr, "t", On, nil)
	wantFinding(t, fs, "MIR", "offset 4 violates 8-byte alignment")
}

func TestMIRChunkSizeMismatch(t *testing.T) {
	p := prog(mir.Marshal, mir.FixedSize, 12,
		&mir.Ensure{Bytes: 12},
		&mir.Chunk{Size: 12, Items: []mir.ChunkItem{
			{Off: 0, Atom: wire.U32, Wire: 4, Val: &mir.Param{Name: "a"}},
			{Off: 4, Atom: wire.U32, Wire: 4, Val: &mir.Param{Name: "b"}},
		}},
	)
	fs := MIR(p, xdr(), "t", On, nil)
	wantFinding(t, fs, "MIR", "chunk claims 12 bytes but items cover 8")
}

func TestMIRChunkItemValAndConst(t *testing.T) {
	p := prog(mir.Marshal, mir.FixedSize, 8,
		&mir.Ensure{Bytes: 8},
		&mir.Chunk{Size: 8, Items: []mir.ChunkItem{
			{Off: 0, Atom: wire.U32, Wire: 4, Val: &mir.Param{Name: "a"}, Const: u64p(7)},
			{Off: 4, Atom: wire.U32, Wire: 4},
		}},
	)
	fs := MIR(p, xdr(), "t", On, nil)
	wantFinding(t, fs, "MIR", "items[0]", "both a value and a constant")
	wantFinding(t, fs, "MIR", "items[1]", "neither a value nor a constant")
}

func TestMIRBulkNonIdentical(t *testing.T) {
	// A bulk claiming 2-byte elements under XDR (4-byte array elements
	// for u16) is not byte-identical.
	p := prog(mir.Marshal, mir.FixedSize, 8,
		&mir.Ensure{Bytes: 8},
		&mir.Bulk{Val: &mir.Param{Name: "a"}, Atom: wire.U16, ElemWire: 2, Count: 4},
	)
	fs := MIR(p, xdr(), "t", On, nil)
	wantFinding(t, fs, "MIR", "uint atom encoded as 2 bytes, format wants 4")
}

func TestMIRDynamicBulkWithoutEnsureDyn(t *testing.T) {
	p := prog(mir.Marshal, mir.UnboundedSize, 0,
		&mir.Bulk{Val: &mir.Param{Name: "s"}, Atom: wire.Char, ElemWire: 1, Count: -1},
	)
	fs := MIR(p, xdr(), "t", On, nil)
	wantFinding(t, fs, "MIR", "dynamic bulk transfer of s not dominated by an ensure-space check")
}

func TestMIRDynamicBulkWithEnsureDyn(t *testing.T) {
	val := &mir.Param{Name: "s"}
	p := prog(mir.Marshal, mir.UnboundedSize, 0,
		&mir.EnsureDyn{Base: 4, PerElem: 1, Count: val},
		&mir.LenItem{Wire: 4, Val: &mir.Len{Base: val}},
		&mir.Bulk{Val: val, Atom: wire.Char, ElemWire: 1, Count: -1},
	)
	if fs := MIR(p, xdr(), "t", On, nil); len(fs) != 0 {
		t.Fatalf("EnsureDyn-dominated bulk rejected:\n%s", fs.Error())
	}
}

func TestMIRClassifyFixedWithDynamicOps(t *testing.T) {
	val := &mir.Param{Name: "s"}
	p := prog(mir.Marshal, mir.FixedSize, 8,
		&mir.EnsureDyn{Base: 4, PerElem: 1, Count: val},
		&mir.LenItem{Wire: 4, Val: &mir.Len{Base: val}},
		&mir.Bulk{Val: val, Atom: wire.Char, ElemWire: 1, Count: -1},
	)
	fs := MIR(p, xdr(), "t", On, nil)
	wantFinding(t, fs, "MIR", "classified fixed-size but contains dynamic ops")
}

func TestMIRClassifyWrongFixedBytes(t *testing.T) {
	p := prog(mir.Marshal, mir.FixedSize, 12,
		&mir.Ensure{Bytes: 8},
		&mir.Item{Atom: wire.U32, Wire: 4, Val: &mir.Param{Name: "a"}},
		&mir.Item{Atom: wire.U32, Wire: 4, Val: &mir.Param{Name: "b"}},
	)
	fs := MIR(p, xdr(), "t", On, nil)
	wantFinding(t, fs, "MIR", "classified as 12 fixed bytes but ops produce 8")
}

func TestMIRMisalignedItem(t *testing.T) {
	// Under CDR, a u32 at offset 2 violates natural alignment.
	cdr, _ := wire.ByName("cdr")
	p := prog(mir.Marshal, mir.FixedSize, 6,
		&mir.Ensure{Bytes: 6},
		&mir.Item{Atom: wire.U16, Wire: 2, Val: &mir.Param{Name: "a"}},
		&mir.Item{Atom: wire.U32, Wire: 4, Val: &mir.Param{Name: "b"}},
	)
	fs := MIR(p, cdr, "t", On, nil)
	wantFinding(t, fs, "MIR", "t.ops[2]", "uint atom at offset 2 violates 4-byte alignment")
}

func TestMIRAbsorbedLoopBudget(t *testing.T) {
	// A fixed-count loop whose per-iteration checks were hoisted: the
	// enclosing Ensure must cover count × per-iteration bytes.
	body := []mir.Op{&mir.Item{Atom: wire.U32, Wire: 4, Val: &mir.Elem{Var: "v"}}}
	ok := prog(mir.Marshal, mir.FixedSize, 16,
		&mir.Ensure{Bytes: 16},
		&mir.Loop{Over: &mir.Param{Name: "a"}, Var: "v", Count: 4, Body: body},
	)
	if fs := MIR(ok, xdr(), "t", On, nil); len(fs) != 0 {
		t.Fatalf("covered loop rejected:\n%s", fs.Error())
	}
	short := prog(mir.Marshal, mir.FixedSize, 16,
		&mir.Ensure{Bytes: 8},
		&mir.Loop{Over: &mir.Param{Name: "a"}, Var: "v", Count: 4, Body: body},
	)
	fs := MIR(short, xdr(), "t", On, nil)
	wantFinding(t, fs, "MIR", "loop body needs 4 bytes/iteration with no dominating ensure-space check")
}

func TestMIRCountersChunks(t *testing.T) {
	var c Counters
	p := prog(mir.Marshal, mir.FixedSize, 8,
		&mir.Ensure{Bytes: 8},
		&mir.Chunk{Size: 8, Items: []mir.ChunkItem{
			{Off: 0, Atom: wire.U32, Wire: 4, Val: &mir.Param{Name: "a"}},
			{Off: 4, Atom: wire.U32, Wire: 4, Val: &mir.Param{Name: "b"}},
		}},
	)
	if fs := MIR(p, xdr(), "t", On, &c); len(fs) != 0 {
		t.Fatalf("unexpected findings:\n%s", fs.Error())
	}
	if c.MirChunks != 1 {
		t.Fatalf("MirChunks = %d, want 1", c.MirChunks)
	}
}

func TestMIRAbsorbedSwitchBudget(t *testing.T) {
	// An absorbed switch (the zoo.x shape): the enclosing Ensure hoists
	// the widest arm's cost, arms carry no checks of their own, and the
	// ops after the switch keep drawing on the remaining budget.
	sw := func() *mir.Switch {
		return &mir.Switch{
			On: &mir.Param{Name: "d"}, Atom: wire.U32, Wire: 4,
			Cases: []mir.SwitchCase{
				{Values: []int64{1}, Body: []mir.Op{
					&mir.Item{Atom: wire.U64, Wire: 8, Val: &mir.Param{Name: "big"}},
				}},
				{Values: []int64{2}, Body: nil}, // void arm
			},
			HasDefault: true,
			Default: []mir.Op{
				&mir.Item{Atom: wire.U32, Wire: 4, Val: &mir.Param{Name: "other"}},
			},
		}
	}
	// 4 (discriminator) + 8 (widest arm) + 4 (trailing item) = 16.
	ok := prog(mir.Marshal, mir.UnboundedSize, 0,
		&mir.Ensure{Bytes: 16},
		sw(),
		&mir.Item{Atom: wire.U32, Wire: 4, Val: &mir.Param{Name: "tail"}},
	)
	if fs := MIR(ok, xdr(), "t", On, nil); len(fs) != 0 {
		t.Fatalf("covered switch rejected:\n%s", fs.Error())
	}
	// Ensure only covers the discriminator and widest arm: the trailing
	// item is uncovered.
	short := prog(mir.Marshal, mir.UnboundedSize, 0,
		&mir.Ensure{Bytes: 12},
		sw(),
		&mir.Item{Atom: wire.U32, Wire: 4, Val: &mir.Param{Name: "tail"}},
	)
	fs := MIR(short, xdr(), "t", On, nil)
	wantFinding(t, fs, "MIR", "t.ops[2]", "not dominated by an ensure-space check")
}

func TestMIRAbsorbedSwitchUnderfunded(t *testing.T) {
	// The hoisted check is smaller than the widest arm: both the arm's
	// own replay and the shared-budget accounting must flag it.
	p := prog(mir.Marshal, mir.UnboundedSize, 0,
		&mir.Ensure{Bytes: 8},
		&mir.Switch{
			On: &mir.Param{Name: "d"}, Atom: wire.U32, Wire: 4,
			Cases: []mir.SwitchCase{
				{Values: []int64{1}, Body: []mir.Op{
					&mir.Item{Atom: wire.U64, Wire: 8, Val: &mir.Param{Name: "big"}},
				}},
			},
		},
	)
	fs := MIR(p, xdr(), "t", On, nil)
	wantFinding(t, fs, "MIR", "t.ops[1]", "absorbed switch needs 8 bytes")
	wantFinding(t, fs, "MIR", "t.ops[1].cases[0].ops[0]", "not dominated by an ensure-space check")
}
