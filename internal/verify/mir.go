package verify

import (
	"fmt"

	"flick/internal/mint"
	"flick/internal/mir"
	"flick/internal/wire"
)

// MIR verifies a post-optimize marshal program against the invariants
// the emitters rely on:
//
//   - Chunk layouts are well formed: items lie in-bounds, are exactly
//     contiguous (chunkPass packs runs of statically placed atoms), and
//     — while the buffer offset is statically known — land on offsets
//     aligned for their atoms under the target format. Strict mode adds
//     the O(n²) pairwise overlap check on every chunk.
//   - Space-check dominance: every op that transfers bytes unchecked
//     (Item, ConstItem, LenItem, Bulk, Chunk) is covered by an earlier
//     Ensure/EnsureDyn in its region, with exact byte accounting that
//     mirrors the grouping pass (absorbed loop bodies and switch arms
//     draw on the hoisted check's budget).
//   - Bulk (memcpy) transfers are byte-identical under the format: the
//     element is an atom whose per-element wire width matches
//     f.ArrayElemSize, so a flat copy reproduces the element loop.
//   - classify() consistency: a program whose ops are fully static must
//     be classified FixedSize with FixedBytes equal to the bytes the
//     ops actually produce; a program with dynamic ops must not claim
//     FixedSize.
//
// name labels the program in diagnostics (e.g. "Mail_send.request").
func MIR(prog *mir.Program, f wire.Format, name string, mode Mode, c *Counters) Findings {
	if mode == Off {
		return nil
	}
	v := &mirVerifier{f: f, dir: prog.Dir, strict: mode == Strict, c: c}
	if c != nil {
		c.MirPrograms += 1 + len(prog.Subs)
	}
	v.verifyOps(prog.Ops, name, space{}, newCursor(f), false)
	for i, sub := range prog.Subs {
		subName := fmt.Sprintf("%s.sub[%d:%s]", name, i, sub.Name)
		if sub.Pres == nil {
			v.failf(subName, "out-of-line subprogram with no PRES node")
		}
		// A subprogram runs at an unknown buffer position with no
		// inherited space budget.
		v.verifyOps(sub.Ops, subName, space{}, unknownCursor(), false)
	}
	v.checkClassify(prog, f, name)
	if c != nil {
		c.Findings += len(v.out)
	}
	return v.out
}

type mirVerifier struct {
	f      wire.Format
	dir    mir.Dir
	strict bool
	c      *Counters
	out    Findings
}

func (v *mirVerifier) failf(path, format string, args ...any) {
	v.out = append(v.out, Finding{Stage: "MIR", Path: path, Msg: fmt.Sprintf(format, args...)})
}

// --- space accounting -------------------------------------------------------

// space tracks the bytes guaranteed available by dominating
// ensure-space checks: a static budget from Ensure ops plus pending
// dynamic credits from EnsureDyn ops, keyed by the counted value they
// provision.
type space struct {
	budget int
	// dyn marks values provisioned by a preceding EnsureDyn.
	dyn map[string]bool
}

func (s *space) credit(n int) { s.budget += n }

func (s *space) creditDyn(val string) {
	if s.dyn == nil {
		s.dyn = map[string]bool{}
	}
	s.dyn[val] = true
}

// debit consumes n bytes of static budget; ok=false when the budget
// does not cover the transfer (a missing ensure-space check).
func (s *space) debit(n int) bool {
	if s.budget < n {
		return false
	}
	s.budget -= n
	return true
}

// clone copies the budget for branching control flow (switch arms draw
// on the same dominating check independently — only one arm executes).
func (s space) clone() space {
	c := space{budget: s.budget}
	if len(s.dyn) > 0 {
		c.dyn = make(map[string]bool, len(s.dyn))
		for k := range s.dyn {
			c.dyn[k] = true
		}
	}
	return c
}

func (s *space) takeDyn(val string) bool {
	if s.dyn[val] {
		delete(s.dyn, val)
		return true
	}
	return false
}

// --- cursor replay ----------------------------------------------------------

// cursor mirrors the lowerer's placement state: while known, off is the
// exact payload offset; when dynamic data intervenes only an alignment
// guarantee (off ≡ 0 mod guar) remains.
type cursor struct {
	known bool
	off   int
	guar  int
}

func newCursor(f wire.Format) cursor { return cursor{known: true, off: 0, guar: f.MaxAlign()} }
func unknownCursor() cursor          { return cursor{known: false, guar: 1} }

func (c *cursor) advance(n int) {
	if c.known {
		c.off += n
		return
	}
	c.guar = gcd(c.guar, n)
}

func (c *cursor) align(n int) {
	if n <= 1 {
		return
	}
	if c.known {
		c.off += (n - c.off%n) % n
		return
	}
	c.guar = n
}

// loseTrack forgets exact placement after data-dependent regions.
func (c *cursor) loseTrack() {
	c.known = false
	c.guar = 1
}

// checkAligned reports whether the current position provably satisfies
// alignment a; it returns true (skip) when nothing can be proven, so
// the verifier never flags correct code it cannot reason about.
func (c *cursor) misaligned(a int) bool {
	if a <= 1 {
		return false
	}
	if c.known {
		return c.off%a != 0
	}
	return false // unknown position: the lowerer proved more than we replay
}

func gcd(a, b int) int {
	if a < 1 {
		a = 1
	}
	if b < 1 {
		b = 1
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// --- program walk -----------------------------------------------------------

// verifyOps walks one op region, threading the space budget and the
// placement cursor. elem marks a loop body, where atoms transfer at the
// format's (possibly packed) array-element width rather than the
// stand-alone wire width.
func (v *mirVerifier) verifyOps(ops []mir.Op, path string, sp space, cur cursor, elem bool) space {
	for i, op := range ops {
		p := fmt.Sprintf("%s.ops[%d]", path, i)
		switch op := op.(type) {
		case *mir.Ensure:
			if op.Bytes < 0 {
				v.failf(p, "ensure of negative size %d", op.Bytes)
			}
			sp.credit(op.Bytes)

		case *mir.EnsureDyn:
			if op.Count == nil {
				v.failf(p, "dynamic ensure with no counted value")
				continue
			}
			sp.credit(op.Base)
			sp.creditDyn(op.Count.String())

		case *mir.Align:
			if op.N <= 1 {
				v.failf(p, "align to %d is a no-op", op.N)
			}
			if v.dir == mir.Marshal {
				// Grouping budgeted N-1 pad bytes for absorbed aligns;
				// stand-alone aligns self-grow, so only consume what a
				// dominating check provided.
				if sp.budget >= op.N-1 {
					sp.budget -= op.N - 1
				}
			} else {
				// Unmarshal aligns self-check and end any exact run.
				sp = space{}
			}
			cur.align(op.N)

		case *mir.Item:
			v.checkAtomWidth(op.Atom, op.Wire, elem, p)
			v.checkPlacement(&cur, op.Atom, op.Wire, &sp, p)
			if op.Val == nil {
				v.failf(p, "item with no value ref")
			}

		case *mir.ConstItem:
			v.checkAtomWidth(op.Atom, op.Wire, elem, p)
			v.checkPlacement(&cur, op.Atom, op.Wire, &sp, p)

		case *mir.LenItem:
			if op.Wire != v.f.LenSize() {
				v.failf(p, "length prefix is %d bytes, format wants %d", op.Wire, v.f.LenSize())
			}
			v.checkPlacement(&cur, wire.U32, op.Wire, &sp, p)
			if op.Val == nil {
				v.failf(p, "length prefix with no counted value")
			}
			// The payload that follows is data-dependent.
			cur.loseTrack()

		case *mir.Bulk:
			v.checkBulk(op, &sp, &cur, p)

		case *mir.Loop:
			v.checkLoop(op, &sp, &cur, p)

		case *mir.Opt:
			// The presence flag was provisioned by the enclosing run.
			if !sp.debit(op.Wire) {
				v.failf(p, "optional flag (%d bytes) not dominated by an ensure-space check", op.Wire)
			}
			cur.advance(op.Wire)
			// The body provisions itself (grouping flushes at Opt).
			v.verifyOps(op.Body, p+".body", space{}, unknownCursor(), elem)
			cur.loseTrack()
			sp = space{}

		case *mir.Switch:
			v.checkSwitch(op, &sp, &cur, p, elem)

		case *mir.Chunk:
			v.checkChunk(op, &cur, p)
			if !sp.debit(op.Size) {
				v.failf(p, "chunk of %d bytes not dominated by an ensure-space check", op.Size)
			}

		case *mir.CallSub:
			if op.Sub < 0 {
				v.failf(p, "call of negative subprogram index %d", op.Sub)
			}
			cur.loseTrack()
			sp = space{}

		default:
			v.failf(p, "unknown op %T", op)
		}
	}
	return sp
}

func (v *mirVerifier) checkAtomWidth(a wire.Atom, w int, elem bool, path string) {
	want := v.f.WireSize(a)
	if elem {
		// Loop-body atoms transfer at the array-element width (formats
		// may pack char/octet elements tighter than stand-alone atoms);
		// inlined aggregate elements keep stand-alone widths.
		if w == v.f.ArrayElemSize(a) {
			return
		}
	}
	if w != want {
		v.failf(path, "%s atom encoded as %d bytes, format wants %d", a.Kind, w, want)
	}
}

// checkPlacement verifies one atom transfer: alignment at the current
// position and coverage by a dominating ensure-space check.
func (v *mirVerifier) checkPlacement(cur *cursor, a wire.Atom, w int, sp *space, path string) {
	need := v.f.Align(a)
	if cur.misaligned(need) {
		v.failf(path, "%s atom at offset %d violates %d-byte alignment", a.Kind, cur.off, need)
	}
	if !sp.debit(w) {
		v.failf(path, "%d-byte transfer not dominated by an ensure-space check", w)
	}
	cur.advance(w)
}

// staticNeed sums the unchecked bytes a region consumes beyond its own
// Ensure credits; ok=false when the region contains dynamic ops (so no
// static bound exists). It mirrors the grouping pass's staticCost.
func staticNeed(ops []mir.Op) (int, bool) {
	credit, need := 0, 0
	for _, op := range ops {
		switch op := op.(type) {
		case *mir.Ensure:
			credit += op.Bytes
		case *mir.Item:
			need += op.Wire
		case *mir.ConstItem:
			need += op.Wire
		case *mir.LenItem:
			need += op.Wire
		case *mir.Align:
			need += op.N - 1
		case *mir.Chunk:
			need += op.Size
		case *mir.Bulk:
			if op.Count < 0 {
				return 0, false
			}
			need += op.Count * op.ElemWire
		default:
			return 0, false
		}
	}
	n := need - credit
	if n < 0 {
		n = 0
	}
	return n, true
}

// armNeed prices one absorbed switch arm the way the grouping pass did
// when it hoisted the arm into the enclosing ensure: static transfers at
// their wire size, align pads at N-1, dynamic bulks at their declared
// bound. ok=false when the arm contains constructs grouping never
// absorbs (nested control flow, unbounded transfers), in which case the
// switch was flushed and its arms provision themselves.
func armNeed(ops []mir.Op) (int, bool) {
	credit, need := 0, 0
	for _, op := range ops {
		switch op := op.(type) {
		case *mir.Ensure:
			credit += op.Bytes
		case *mir.Item:
			need += op.Wire
		case *mir.ConstItem:
			need += op.Wire
		case *mir.LenItem:
			need += op.Wire
		case *mir.Align:
			need += op.N - 1
		case *mir.Chunk:
			need += op.Size
		case *mir.Bulk:
			if op.Count >= 0 {
				need += op.Count * op.ElemWire
			} else if bound, ok := bulkBound(op); ok {
				need += bound * op.ElemWire
			} else {
				return 0, false
			}
		default:
			return 0, false
		}
	}
	n := need - credit
	if n < 0 {
		n = 0
	}
	return n, true
}

func (v *mirVerifier) checkBulk(op *mir.Bulk, sp *space, cur *cursor, path string) {
	// Byte-identity: bulk transfers flat-copy (or stride-convert) the
	// element payload, which is only meaningful for atomic elements
	// whose array encoding matches the wire width the op claims.
	v.checkAtomWidth(op.Atom, op.ElemWire, true, path)
	if op.Pres != nil {
		e := resolveRef(op.Pres)
		if e != nil && e.Mint != nil {
			if _, _, ok := atomMint(e.Mint); !ok {
				v.failf(path, "bulk copy of non-atomic element %s is not byte-identical", e.Mint)
			}
		}
	}
	if op.Val == nil {
		v.failf(path, "bulk transfer with no value ref")
	}
	// Space: a fixed-count bulk draws on the static budget; a dynamic
	// bulk needs its EnsureDyn credit or a bound-provisioned budget.
	if op.Count >= 0 {
		if !sp.debit(op.Count * op.ElemWire) {
			v.failf(path, "bulk transfer of %d bytes not dominated by an ensure-space check", op.Count*op.ElemWire)
		}
		cur.advance(op.Count * op.ElemWire)
		return
	}
	if sp.takeDyn(op.Val.String()) {
		cur.loseTrack()
		return
	}
	// Grouping may have absorbed the dynamic check by provisioning the
	// array's declared bound up front.
	if bound, ok := bulkBound(op); ok && sp.debit(bound*op.ElemWire) {
		cur.loseTrack()
		return
	}
	v.failf(path, "dynamic bulk transfer of %s not dominated by an ensure-space check", op.Val)
	cur.loseTrack()
}

// bulkBound extracts the declared element bound of a dynamic bulk from
// its presenting array node.
func bulkBound(op *mir.Bulk) (int, bool) {
	over := resolveRef(op.OverPres)
	if over == nil || over.Mint == nil {
		return 0, false
	}
	arr, ok := mint.Deref(over.Mint).(*mint.Array)
	if !ok {
		return 0, false
	}
	if arr.Length.Range == 0 || arr.Length.Range >= uint64(0xFFFFFFFF) {
		return 0, false
	}
	return int(arr.Length.Range), true
}

func (v *mirVerifier) checkLoop(op *mir.Loop, sp *space, cur *cursor, path string) {
	if op.Over == nil {
		v.failf(path, "loop with no value ref")
	}
	need, static := staticNeed(op.Body)
	if static && need > 0 {
		// The body's checks were hoisted into an enclosing grouped
		// ensure: the loop draws count×need from the outer budget.
		total, ok := 0, false
		if op.Count >= 0 {
			total, ok = op.Count*need, true
		} else if bound, bOK := loopBound(op); bOK {
			total, ok = bound*need, true
		}
		if !ok || !sp.debit(total) {
			v.failf(path, "loop body needs %d bytes/iteration with no dominating ensure-space check", need)
		}
	} else {
		// Self-contained body: verify it independently at an unknown
		// position with no inherited budget.
		v.verifyOps(op.Body, path+".body", space{}, unknownCursor(), true)
	}
	if op.Count < 0 {
		cur.loseTrack()
	} else if static {
		cost := 0
		for _, b := range op.Body {
			switch b := b.(type) {
			case *mir.Item:
				cost += b.Wire
			case *mir.ConstItem:
				cost += b.Wire
			case *mir.LenItem:
				cost += b.Wire
			case *mir.Chunk:
				cost += b.Size
			case *mir.Bulk:
				cost += b.Count * b.ElemWire
			case *mir.Align:
				cost = -1
			}
			if cost < 0 {
				break
			}
		}
		if cost >= 0 {
			cur.advance(op.Count * cost)
		} else {
			cur.loseTrack()
		}
	} else {
		cur.loseTrack()
	}
}

func loopBound(op *mir.Loop) (int, bool) {
	over := resolveRef(op.OverPres)
	if over == nil || over.Mint == nil {
		return 0, false
	}
	arr, ok := mint.Deref(over.Mint).(*mint.Array)
	if !ok || arr.Length.Range == 0 || arr.Length.Range >= uint64(0xFFFFFFFF) {
		return 0, false
	}
	return int(arr.Length.Range), true
}

func (v *mirVerifier) checkSwitch(op *mir.Switch, sp *space, cur *cursor, path string, elem bool) {
	if op.On == nil {
		v.failf(path, "switch with no discriminator ref")
	}
	v.checkAtomWidth(op.Atom, op.Wire, false, path)
	if cur.misaligned(v.f.Align(op.Atom)) {
		v.failf(path, "switch discriminator at offset %d violates %d-byte alignment", cur.off, v.f.Align(op.Atom))
	}
	if !sp.debit(op.Wire) {
		v.failf(path, "switch discriminator (%d bytes) not dominated by an ensure-space check", op.Wire)
	}
	cur.advance(op.Wire)

	seen := map[int64]bool{}
	arms := make([][]mir.Op, 0, len(op.Cases)+1)
	for i, c := range op.Cases {
		if len(c.Values) == 0 {
			v.failf(fmt.Sprintf("%s.cases[%d]", path, i), "switch arm with no labels")
		}
		for _, val := range c.Values {
			if seen[val] {
				v.failf(fmt.Sprintf("%s.cases[%d]", path, i), "duplicate switch label %d", val)
			}
			seen[val] = true
		}
		arms = append(arms, c.Body)
	}
	if op.HasDefault {
		arms = append(arms, op.Default)
	}

	// Exactly one arm executes, drawing on the inherited budget: when
	// the grouping pass absorbed the switch it hoisted the widest arm's
	// bound into the enclosing ensure (bounded dynamic bulks priced at
	// their declared bound, exactly as boundOfBulk does). Verify each
	// arm against its own copy of the budget and position, then account
	// the shared budget: debit the absorbed maximum when every arm is
	// boundable, otherwise assume nothing survives the branch.
	maxNeed, absorbable := 0, true
	for _, body := range arms {
		need, ok := armNeed(body)
		if !ok {
			absorbable = false
			break
		}
		if need > maxNeed {
			maxNeed = need
		}
	}
	for i, body := range arms {
		label := fmt.Sprintf("%s.cases[%d]", path, i)
		if op.HasDefault && i == len(arms)-1 {
			label = path + ".default"
		}
		v.verifyOps(body, label, sp.clone(), *cur, elem)
	}
	if absorbable {
		if maxNeed > 0 && !sp.debit(maxNeed) {
			v.failf(path, "absorbed switch needs %d bytes with no dominating ensure-space check", maxNeed)
		}
	} else {
		*sp = space{}
	}
	cur.loseTrack()
}

// checkChunk validates one fixed-layout region: in-bounds, contiguous
// (chunkPass packs runs exactly), aligned while the position is known,
// and — in strict mode — pairwise disjoint.
func (v *mirVerifier) checkChunk(op *mir.Chunk, cur *cursor, path string) {
	if v.c != nil {
		v.c.MirChunks++
	}
	if len(op.Items) < 2 {
		v.failf(path, "chunk with %d items (chunking requires at least 2)", len(op.Items))
	}
	covered := 0
	for i, it := range op.Items {
		p := fmt.Sprintf("%s.items[%d]", path, i)
		if it.Off < 0 || it.Off+it.Wire > op.Size {
			v.failf(p, "chunk item [%d,%d) outside chunk of %d bytes", it.Off, it.Off+it.Wire, op.Size)
			continue
		}
		if it.Off != covered {
			v.failf(p, "chunk item at offset %d, expected %d (items must be contiguous)", it.Off, covered)
		}
		covered = it.Off + it.Wire
		if it.IsLen {
			if it.Wire != v.f.LenSize() {
				v.failf(p, "length prefix is %d bytes, format wants %d", it.Wire, v.f.LenSize())
			}
		} else {
			v.checkAtomWidth(it.Atom, it.Wire, false, p)
		}
		if it.Val == nil && it.Const == nil {
			v.failf(p, "chunk item carries neither a value nor a constant")
		}
		if it.Val != nil && it.Const != nil {
			v.failf(p, "chunk item carries both a value and a constant")
		}
		if cur.known {
			a := v.f.Align(it.Atom)
			if a > 1 && (cur.off+it.Off)%a != 0 {
				v.failf(p, "%s atom at offset %d violates %d-byte alignment", it.Atom.Kind, cur.off+it.Off, a)
			}
		}
	}
	if covered != op.Size {
		v.failf(path, "chunk claims %d bytes but items cover %d", op.Size, covered)
	}
	if v.strict {
		// O(n²) pairwise overlap check: redundant with contiguity when
		// that holds, decisive when it does not.
		for i := 0; i < len(op.Items); i++ {
			for j := i + 1; j < len(op.Items); j++ {
				a, b := op.Items[i], op.Items[j]
				if a.Off < b.Off+b.Wire && b.Off < a.Off+a.Wire {
					v.failf(fmt.Sprintf("%s.items[%d]", path, j),
						"chunk item [%d,%d) overlaps item %d [%d,%d)",
						b.Off, b.Off+b.Wire, i, a.Off, a.Off+a.Wire)
				}
			}
		}
	}
	cur.advance(op.Size)
}

// checkClassify cross-checks the program's storage classification
// against its op layout.
func (v *mirVerifier) checkClassify(prog *mir.Program, f wire.Format, name string) {
	dynamic := hasDynamicOps(prog.Ops)
	if dynamic && prog.Class == mir.FixedSize {
		v.failf(name, "program classified fixed-size but contains dynamic ops")
		return
	}
	if dynamic || hasSubCalls(prog.Ops) {
		return
	}
	// Fully static program: replay the exact byte count.
	cur := newCursor(f)
	if total, ok := staticTotal(prog.Ops, &cur); ok {
		if prog.Class != mir.FixedSize {
			v.failf(name, "fully static program classified %s", prog.Class)
		}
		if prog.FixedBytes != total {
			v.failf(name, "classified as %d fixed bytes but ops produce %d", prog.FixedBytes, total)
		}
	}
}

// staticTotal replays a fully static op list and returns the exact
// number of payload bytes it produces.
func staticTotal(ops []mir.Op, cur *cursor) (int, bool) {
	for _, op := range ops {
		switch op := op.(type) {
		case *mir.Ensure:
			// no bytes
		case *mir.Align:
			cur.align(op.N)
		case *mir.Item:
			cur.advance(op.Wire)
		case *mir.ConstItem:
			cur.advance(op.Wire)
		case *mir.Chunk:
			cur.advance(op.Size)
		case *mir.Bulk:
			if op.Count < 0 {
				return 0, false
			}
			cur.advance(op.Count * op.ElemWire)
		case *mir.Loop:
			if op.Count < 0 {
				return 0, false
			}
			start := cur.off
			if _, ok := staticTotal(op.Body, cur); !ok {
				return 0, false
			}
			per := cur.off - start
			cur.advance((op.Count - 1) * per)
			if op.Count == 0 {
				cur.off = start
			}
		default:
			return 0, false
		}
	}
	return cur.off, true
}

func hasDynamicOps(ops []mir.Op) bool {
	for _, op := range ops {
		switch op := op.(type) {
		case *mir.LenItem, *mir.EnsureDyn, *mir.Opt, *mir.Switch:
			return true
		case *mir.Bulk:
			if op.Count < 0 {
				return true
			}
		case *mir.Loop:
			if op.Count < 0 || hasDynamicOps(op.Body) {
				return true
			}
		case *mir.Chunk:
			for _, it := range op.Items {
				if it.IsLen {
					return true
				}
			}
		}
	}
	return false
}

func hasSubCalls(ops []mir.Op) bool {
	for _, op := range ops {
		switch op := op.(type) {
		case *mir.CallSub:
			return true
		case *mir.Loop:
			if hasSubCalls(op.Body) {
				return true
			}
		case *mir.Opt:
			if hasSubCalls(op.Body) {
				return true
			}
		case *mir.Switch:
			for _, c := range op.Cases {
				if hasSubCalls(c.Body) {
					return true
				}
			}
			if hasSubCalls(op.Default) {
				return true
			}
		}
	}
	return false
}

// atomMint mirrors the lowerer's atomOf: whether a MINT type encodes as
// a single wire atom.
func atomMint(m mint.Type) (wire.Atom, *uint64, bool) {
	switch m := mint.Deref(m).(type) {
	case *mint.Integer:
		bits, signed := m.Bits()
		k := wire.UInt
		if signed {
			k = wire.SInt
		}
		if m.Range == 0 {
			v := uint64(m.Min)
			return wire.Atom{Kind: k, Bits: 32}, &v, true
		}
		return wire.Atom{Kind: k, Bits: bits}, nil, true
	case *mint.Scalar:
		switch m.Kind {
		case mint.Boolean:
			return wire.Bool, nil, true
		case mint.Char8:
			return wire.Char, nil, true
		case mint.Float32:
			return wire.F32, nil, true
		case mint.Float64:
			return wire.F64, nil, true
		}
	case *mint.Const:
		a, _, ok := atomMint(m.Of)
		if !ok {
			return wire.Atom{}, nil, false
		}
		v := uint64(m.Value)
		return a, &v, true
	}
	return wire.Atom{}, nil, false
}
