// Package ablstubs holds flick-generated stubs for the §3 ablation
// benchmarks: the same evaluation interface compiled with one
// optimization disabled at a time. Regenerate with go generate.
package ablstubs

//go:generate go run flick/cmd/flick -idl corba -lang go -format xdr -style flick -rpc=false -package ablstubs -suffix Full -o stubs_full.go ../teststubs/test.idl
//go:generate go run flick/cmd/flick -idl corba -lang go -format xdr -style flick -rpc=false -disable group -package ablstubs -suffix NoGroup -skip-decls -o stubs_nogroup.go ../teststubs/test.idl
//go:generate go run flick/cmd/flick -idl corba -lang go -format xdr -style flick -rpc=false -disable chunk -package ablstubs -suffix NoChunk -skip-decls -o stubs_nochunk.go ../teststubs/test.idl
//go:generate go run flick/cmd/flick -idl corba -lang go -format xdr -style flick -rpc=false -disable memcpy -package ablstubs -suffix NoMemcpy -skip-decls -o stubs_nomemcpy.go ../teststubs/test.idl
//go:generate go run flick/cmd/flick -idl corba -lang go -format xdr -style flick -rpc=false -disable inline -package ablstubs -suffix NoInline -skip-decls -o stubs_noinline.go ../teststubs/test.idl
