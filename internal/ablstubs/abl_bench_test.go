package ablstubs

import (
	"math/rand"
	"testing"

	"flick/rt"
)

func mkDirs(n int) []BenchDirEntry {
	r := rand.New(rand.NewSource(1))
	v := make([]BenchDirEntry, n/256)
	name := make([]byte, 116)
	for i := range v {
		for j := range name {
			name[j] = byte('a' + r.Intn(26))
		}
		v[i].Name = string(name)
	}
	return v
}

func BenchmarkDirsFull(b *testing.B) {
	v := mkDirs(64 << 10)
	var e rt.Encoder
	b.SetBytes(64 << 10)
	for i := 0; i < b.N; i++ {
		e.Reset()
		MarshalBenchSendDirsFullRequest(&e, v)
	}
}

func BenchmarkDirsNoGroup(b *testing.B) {
	v := mkDirs(64 << 10)
	var e rt.Encoder
	b.SetBytes(64 << 10)
	for i := 0; i < b.N; i++ {
		e.Reset()
		MarshalBenchSendDirsNoGroupRequest(&e, v)
	}
}
