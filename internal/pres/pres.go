// Package pres defines Flick's PRES nodes: the mapping layer that
// connects MINT message types with target-language types. A PRES node is
// a type conversion between a MINT type and a presented type; different
// node kinds describe different presentation styles (direct mapping,
// optional pointers, counted arrays, NUL-terminated strings, ...).
//
// PRES itself is target-language independent; the attached target type is
// an opaque handle (a cast.Type for C presentations, a Go type spelling
// for Go presentations).
package pres

import (
	"fmt"

	"flick/internal/mint"
)

// Kind enumerates the presentation styles.
type Kind int

const (
	// DirectKind maps a MINT atomic type directly onto a target scalar:
	// no data transformation.
	DirectKind Kind = iota
	// EnumKind maps a MINT integer onto a target enum type.
	EnumKind
	// FixedArrayKind maps a fixed-length MINT array onto a target array.
	FixedArrayKind
	// CountedKind maps a variable-length MINT array onto a
	// length-carrying aggregate (a CORBA sequence struct or a Go slice).
	CountedKind
	// TerminatedKind maps a variable-length MINT char array onto a
	// NUL-terminated C string (char *) or a Go string.
	TerminatedKind
	// OptPtrKind maps a MINT union{void, T} onto a nullable pointer:
	// when the arm is absent the pointer is NULL (the paper's OPT_PTR).
	OptPtrKind
	// StructKind maps a MINT struct onto a target struct, slot by slot.
	StructKind
	// UnionKind maps a MINT union onto a target tagged union.
	UnionKind
	// RefKind is an indirection for recursive presentations.
	RefKind
	// VoidKind maps MINT void onto nothing.
	VoidKind
)

var kindNames = [...]string{
	DirectKind:     "direct",
	EnumKind:       "enum",
	FixedArrayKind: "fixed_array",
	CountedKind:    "counted",
	TerminatedKind: "terminated",
	OptPtrKind:     "opt_ptr",
	StructKind:     "struct",
	UnionKind:      "union",
	RefKind:        "ref",
	VoidKind:       "void",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// AllocSem describes who owns storage for unmarshaled data and how long
// it lives — the behavioral property that licenses Flick's parameter
// management optimizations (stack allocation, marshal-buffer reuse).
type AllocSem int

const (
	// AllocCaller: the caller provides storage (out parameters).
	AllocCaller AllocSem = iota
	// AllocStub: the stub allocates; the callee must not keep a
	// reference after returning, so the stub may use the runtime stack
	// or reuse the marshal buffer (server-side in parameters).
	AllocStub
	// AllocHeap: the stub allocates on the heap and ownership passes to
	// the receiver (client-side out/return data).
	AllocHeap
)

func (a AllocSem) String() string {
	switch a {
	case AllocCaller:
		return "caller"
	case AllocStub:
		return "stub"
	case AllocHeap:
		return "heap"
	}
	return fmt.Sprintf("AllocSem(%d)", int(a))
}

// Node relates one MINT node to one presented type.
type Node struct {
	Kind Kind
	// Mint is the message type this node presents.
	Mint mint.Type
	// CType is the presented target type: a *cast.Type for C, or a Go
	// type spelling (string) for Go presentations. Opaque to this
	// package.
	CType any
	// Alloc is the allocation contract for unmarshaled data.
	Alloc AllocSem
	// Children presents subcomponents: struct fields in order, the
	// element of an array (single child), union arms in case order
	// (default last when present), or the target of a ref.
	Children []*Node
	// FieldNames names the presented struct fields or union arms,
	// parallel to Children (StructKind/UnionKind only).
	FieldNames []string
	// LengthField names the length member for CountedKind aggregates
	// ("_length" for CORBA sequences, "len" metadata for Go slices).
	LengthField string
	// BufferField names the data member for CountedKind aggregates.
	BufferField string
	// DiscrimCType is the presented type of a union's discriminator
	// (UnionKind only).
	DiscrimCType any
	// Name tags RefKind nodes and named aggregates for diagnostics and
	// emitted helper-function names.
	Name string
	// Target is the referenced node for RefKind.
	Target *Node
}

// Elem returns the single child of an array-like node.
func (n *Node) Elem() *Node {
	if len(n.Children) != 1 {
		panic(fmt.Sprintf("pres: %s node has %d children, want 1", n.Kind, len(n.Children)))
	}
	return n.Children[0]
}

// Resolve follows RefKind indirections.
func (n *Node) Resolve() *Node {
	seen := 0
	for n.Kind == RefKind {
		if n.Target == nil {
			panic(fmt.Sprintf("pres: unresolved ref %q", n.Name))
		}
		n = n.Target
		if seen++; seen > 1000 {
			panic("pres: ref cycle")
		}
	}
	return n
}

// Validate checks structural invariants of a PRES tree against its MINT
// types.
func Validate(n *Node) error {
	return validate(n, map[*Node]bool{})
}

func validate(n *Node, seen map[*Node]bool) error {
	if n == nil {
		return fmt.Errorf("pres: nil node")
	}
	if seen[n] {
		return nil
	}
	seen[n] = true
	if n.Mint == nil && n.Kind != VoidKind && n.Kind != RefKind {
		return fmt.Errorf("pres: %s node with nil mint type", n.Kind)
	}
	switch n.Kind {
	case DirectKind, EnumKind:
		switch mint.Deref(n.Mint).(type) {
		case *mint.Integer, *mint.Scalar, *mint.Const:
		default:
			return fmt.Errorf("pres: %s node over non-atomic mint %s", n.Kind, n.Mint)
		}
	case FixedArrayKind:
		arr, ok := mint.Deref(n.Mint).(*mint.Array)
		if !ok || !arr.Fixed() {
			return fmt.Errorf("pres: fixed_array node over %s", n.Mint)
		}
		return validate(n.Elem(), seen)
	case CountedKind, TerminatedKind:
		arr, ok := mint.Deref(n.Mint).(*mint.Array)
		if !ok {
			return fmt.Errorf("pres: %s node over non-array mint %s", n.Kind, n.Mint)
		}
		if arr.Fixed() {
			return fmt.Errorf("pres: %s node over fixed array %s", n.Kind, n.Mint)
		}
		return validate(n.Elem(), seen)
	case OptPtrKind:
		u, ok := mint.Deref(n.Mint).(*mint.Union)
		if !ok || len(u.Cases) != 2 {
			return fmt.Errorf("pres: opt_ptr node over %s (want 2-case union)", n.Mint)
		}
		return validate(n.Elem(), seen)
	case StructKind:
		st, ok := mint.Deref(n.Mint).(*mint.Struct)
		if !ok {
			return fmt.Errorf("pres: struct node over %s", n.Mint)
		}
		if len(n.Children) != len(st.Slots) {
			return fmt.Errorf("pres: struct node has %d children for %d slots",
				len(n.Children), len(st.Slots))
		}
		if len(n.FieldNames) != len(n.Children) {
			return fmt.Errorf("pres: struct node has %d field names for %d children",
				len(n.FieldNames), len(n.Children))
		}
		for _, c := range n.Children {
			if err := validate(c, seen); err != nil {
				return err
			}
		}
	case UnionKind:
		u, ok := mint.Deref(n.Mint).(*mint.Union)
		if !ok {
			return fmt.Errorf("pres: union node over %s", n.Mint)
		}
		want := len(u.Cases)
		if u.Default != nil {
			want++
		}
		if len(n.Children) != want {
			return fmt.Errorf("pres: union node has %d children for %d arms", len(n.Children), want)
		}
		for _, c := range n.Children {
			if err := validate(c, seen); err != nil {
				return err
			}
		}
	case RefKind:
		if n.Target == nil {
			return fmt.Errorf("pres: unresolved ref %q", n.Name)
		}
		return validate(n.Target, seen)
	case VoidKind:
	default:
		return fmt.Errorf("pres: unknown kind %d", n.Kind)
	}
	return nil
}
