package pres

import (
	"strings"
	"testing"

	"flick/internal/mint"
)

func direct(m mint.Type) *Node {
	return &Node{Kind: DirectKind, Mint: m, CType: "int32"}
}

func TestValidateOK(t *testing.T) {
	counted := &Node{
		Kind: CountedKind, Mint: mint.NewSeq(mint.I32(), 10), CType: "[]int32",
		Children: []*Node{direct(mint.I32())},
	}
	st := &Node{
		Kind: StructKind,
		Mint: &mint.Struct{Slots: []mint.Slot{
			{Name: "a", Type: mint.I32()},
			{Name: "b", Type: mint.NewSeq(mint.I32(), 10)},
		}},
		CType:      "S",
		Children:   []*Node{direct(mint.I32()), counted},
		FieldNames: []string{"A", "B"},
	}
	if err := Validate(st); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateErrors(t *testing.T) {
	tests := []struct {
		name string
		node *Node
		sub  string
	}{
		{"nil node", nil, "nil node"},
		{"nil mint", &Node{Kind: DirectKind}, "nil mint"},
		{"direct over aggregate", &Node{Kind: DirectKind, Mint: &mint.Struct{}}, "non-atomic"},
		{
			"fixed over variable",
			&Node{Kind: FixedArrayKind, Mint: mint.NewSeq(mint.I32(), 5),
				Children: []*Node{direct(mint.I32())}},
			"fixed_array",
		},
		{
			"counted over fixed",
			&Node{Kind: CountedKind, Mint: mint.NewFixed(mint.I32(), 5),
				Children: []*Node{direct(mint.I32())}},
			"fixed array",
		},
		{
			"struct arity",
			&Node{Kind: StructKind, Mint: &mint.Struct{Slots: []mint.Slot{{Name: "a", Type: mint.I32()}}}},
			"children",
		},
		{
			"struct names",
			&Node{Kind: StructKind,
				Mint:     &mint.Struct{Slots: []mint.Slot{{Name: "a", Type: mint.I32()}}},
				Children: []*Node{direct(mint.I32())}},
			"field names",
		},
		{
			"optptr shape",
			&Node{Kind: OptPtrKind, Mint: mint.I32(), Children: []*Node{direct(mint.I32())}},
			"opt_ptr",
		},
		{"unresolved ref", &Node{Kind: RefKind, Name: "x"}, "unresolved"},
		{
			"union arity",
			&Node{Kind: UnionKind, Mint: &mint.Union{
				Discrim: mint.I32(),
				Cases:   []mint.UnionCase{{Value: 1, Type: mint.I32()}},
			}},
			"arms",
		},
	}
	for _, tt := range tests {
		err := Validate(tt.node)
		if err == nil {
			t.Errorf("%s: no error", tt.name)
			continue
		}
		if !strings.Contains(err.Error(), tt.sub) {
			t.Errorf("%s: err = %v, want %q", tt.name, err, tt.sub)
		}
	}
}

func TestResolveAndElem(t *testing.T) {
	target := direct(mint.I32())
	ref := &Node{Kind: RefKind, Name: "r", Target: target}
	ref2 := &Node{Kind: RefKind, Name: "r2", Target: ref}
	if ref2.Resolve() != target {
		t.Error("Resolve chain")
	}
	arr := &Node{Kind: FixedArrayKind, Mint: mint.NewFixed(mint.I32(), 3), Children: []*Node{target}}
	if arr.Elem() != target {
		t.Error("Elem")
	}
	defer func() {
		if recover() == nil {
			t.Error("Elem on 0-child node should panic")
		}
	}()
	(&Node{Kind: CountedKind}).Elem()
}

func TestValidateRecursive(t *testing.T) {
	// A self-referential graph must validate (cycles cut by the seen set).
	inner := &mint.TypeRef{Name: "n"}
	m := &mint.Struct{Slots: []mint.Slot{{Name: "next", Type: &mint.Union{
		Discrim: mint.Bool(),
		Cases:   []mint.UnionCase{{Value: 0, Type: mint.VoidT()}, {Value: 1, Type: inner}},
	}}}}
	inner.Target = m
	node := &Node{Kind: StructKind, Mint: m, CType: "N", FieldNames: []string{"Next"}}
	opt := &Node{Kind: OptPtrKind, Mint: m.Slots[0].Type, CType: "*N", Children: []*Node{node}}
	node.Children = []*Node{opt}
	if err := Validate(node); err != nil {
		t.Errorf("recursive pres: %v", err)
	}
}

func TestKindAndAllocStrings(t *testing.T) {
	for k, want := range map[Kind]string{
		DirectKind: "direct", EnumKind: "enum", FixedArrayKind: "fixed_array",
		CountedKind: "counted", TerminatedKind: "terminated", OptPtrKind: "opt_ptr",
		StructKind: "struct", UnionKind: "union", RefKind: "ref", VoidKind: "void",
	} {
		if k.String() != want {
			t.Errorf("Kind(%d) = %q", int(k), k.String())
		}
	}
	if AllocCaller.String() != "caller" || AllocStub.String() != "stub" || AllocHeap.String() != "heap" {
		t.Error("AllocSem names")
	}
}
