// Package interp is the interpretive marshaler: it walks PRES trees at
// runtime with reflection, the way ILU's stubs walk their AST and the way
// ORBeline's runtime marshals through its layered presentation code.
//
// The paper uses these systems as baselines: interpretation pays a
// per-datum dispatch cost that compiled stubs do not, and the interpreter
// can perform none of Flick's static optimizations (grouped checks,
// chunking, memcpy, inlining). The wire bytes produced are identical to
// the compiled stubs' — only the cost differs.
package interp

import (
	"fmt"
	"reflect"
	"sync"

	"flick/internal/mint"
	"flick/internal/pres"
	"flick/internal/wire"
	"flick/rt"
)

// Style selects which historical system's runtime structure is modeled.
type Style int

const (
	// ILU: pure interpretation, one dynamic dispatch per datum.
	ILU Style = iota
	// ORBeline: interpretation plus runtime layers — per-operation
	// locking (multi-thread synchronization) and an extra copy through
	// a presentation buffer.
	ORBeline
)

func (s Style) String() string {
	if s == ILU {
		return "ilu"
	}
	return "orbeline"
}

// Marshaler interprets PRES trees over a wire format.
type Marshaler struct {
	Format wire.Format
	Style  Style

	mu      sync.Mutex
	scratch rt.Encoder
}

// New returns an interpreter for the format and style.
func New(f wire.Format, s Style) *Marshaler {
	return &Marshaler{Format: f, Style: s}
}

// Marshal encodes v (a Go value matching the presentation) into e.
func (m *Marshaler) Marshal(e *rt.Encoder, n *pres.Node, v any) error {
	if m.Style == ORBeline {
		// Runtime layering: synchronize, marshal into the presentation
		// buffer, then copy into the transport buffer.
		m.mu.Lock()
		defer m.mu.Unlock()
		m.scratch.Reset()
		if err := m.value(&m.scratch, n, reflect.ValueOf(v)); err != nil {
			return err
		}
		b := m.scratch.Bytes()
		e.Grow(len(b))
		e.PutBytes(b)
		return nil
	}
	return m.value(e, n, reflect.ValueOf(v))
}

// Unmarshal decodes into *v.
func (m *Marshaler) Unmarshal(d *rt.Decoder, n *pres.Node, v any) error {
	if m.Style == ORBeline {
		m.mu.Lock()
		defer m.mu.Unlock()
	}
	rv := reflect.ValueOf(v)
	if rv.Kind() != reflect.Pointer || rv.IsNil() {
		return fmt.Errorf("interp: Unmarshal target must be a non-nil pointer, got %T", v)
	}
	if err := m.read(d, n, rv.Elem()); err != nil {
		return err
	}
	return d.Err()
}

func (m *Marshaler) big() bool { return m.Format.Order() == wire.BigEndian }

// putAtom writes one checked scalar.
func (m *Marshaler) putAtom(e *rt.Encoder, a wire.Atom, w int, v reflect.Value) {
	e.Align(m.Format.Align(a))
	var u uint64
	switch a.Kind {
	case wire.BoolAtom:
		if v.Bool() {
			u = 1
		}
	case wire.Float:
		bits := v.Float()
		if a.Bits == 32 {
			u = uint64(f32bits(float32(bits)))
		} else {
			u = f64bits(bits)
		}
	case wire.SInt:
		u = uint64(v.Int())
	default:
		switch v.Kind() {
		case reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64, reflect.Int:
			u = uint64(v.Int())
		default:
			u = v.Uint()
		}
	}
	m.putRaw(e, w, u)
}

func (m *Marshaler) putRaw(e *rt.Encoder, w int, u uint64) {
	switch w {
	case 1:
		e.PutU8C(byte(u))
	case 2:
		if m.big() {
			e.PutU16BEC(uint16(u))
		} else {
			e.PutU16LEC(uint16(u))
		}
	case 4:
		if m.big() {
			e.PutU32BEC(uint32(u))
		} else {
			e.PutU32LEC(uint32(u))
		}
	default:
		if m.big() {
			e.PutU64BEC(u)
		} else {
			e.PutU64LEC(u)
		}
	}
}

func (m *Marshaler) getRaw(d *rt.Decoder, w int) uint64 {
	switch w {
	case 1:
		return uint64(d.U8C())
	case 2:
		if m.big() {
			return uint64(d.U16BEC())
		}
		return uint64(d.U16LEC())
	case 4:
		if m.big() {
			return uint64(d.U32BEC())
		}
		return uint64(d.U32LEC())
	default:
		if m.big() {
			return d.U64BEC()
		}
		return d.U64LEC()
	}
}

// atomOf mirrors the back-end lowering's atom extraction.
func atomOf(mt mint.Type) (wire.Atom, *uint64, bool) {
	switch mt := mint.Deref(mt).(type) {
	case *mint.Integer:
		bits, signed := mt.Bits()
		k := wire.UInt
		if signed {
			k = wire.SInt
		}
		if mt.Range == 0 {
			v := uint64(mt.Min)
			return wire.Atom{Kind: k, Bits: 32}, &v, true
		}
		return wire.Atom{Kind: k, Bits: bits}, nil, true
	case *mint.Scalar:
		switch mt.Kind {
		case mint.Boolean:
			return wire.Bool, nil, true
		case mint.Char8:
			return wire.Char, nil, true
		case mint.Float32:
			return wire.F32, nil, true
		case mint.Float64:
			return wire.F64, nil, true
		}
	case *mint.Const:
		a, _, ok := atomOf(mt.Of)
		if !ok {
			return wire.Atom{}, nil, false
		}
		v := uint64(mt.Value)
		return a, &v, true
	}
	return wire.Atom{}, nil, false
}

// value marshals one presented value.
func (m *Marshaler) value(e *rt.Encoder, n *pres.Node, v reflect.Value) error {
	n = n.Resolve()
	switch n.Kind {
	case pres.VoidKind:
		return nil
	case pres.DirectKind, pres.EnumKind:
		a, cv, ok := atomOf(n.Mint)
		if !ok {
			return fmt.Errorf("interp: non-atomic mint %s", n.Mint)
		}
		w := m.Format.WireSize(a)
		if cv != nil {
			e.Align(m.Format.Align(a))
			m.putRaw(e, w, *cv)
			return nil
		}
		m.putAtom(e, a, w, v)
		return nil
	case pres.CountedKind, pres.TerminatedKind:
		return m.putArray(e, n, v, -1)
	case pres.FixedArrayKind:
		arr := mint.Deref(n.Mint).(*mint.Array)
		return m.putArray(e, n, v, int(arr.FixedLen()))
	case pres.StructKind:
		for i, c := range n.Children {
			f := v.FieldByName(n.FieldNames[i])
			if !f.IsValid() {
				return fmt.Errorf("interp: %s: missing field %s", v.Type(), n.FieldNames[i])
			}
			if err := m.value(e, c, f); err != nil {
				return err
			}
		}
		return nil
	case pres.UnionKind:
		return m.putUnion(e, n, v)
	case pres.OptPtrKind:
		a := wire.Bool
		w := m.Format.WireSize(a)
		e.Align(m.Format.Align(a))
		if v.IsNil() {
			m.putRaw(e, w, 0)
			return nil
		}
		m.putRaw(e, w, 1)
		return m.value(e, n.Elem(), v.Elem())
	default:
		return fmt.Errorf("interp: unhandled pres kind %s", n.Kind)
	}
}

func (m *Marshaler) putArray(e *rt.Encoder, n *pres.Node, v reflect.Value, fixed int) error {
	arr, ok := mint.Deref(n.Mint).(*mint.Array)
	if !ok {
		return fmt.Errorf("interp: array node over %s", n.Mint)
	}
	count := fixed
	if fixed < 0 {
		count = v.Len()
		nul := m.Format.StringNul() && isChar(arr)
		e.Align(m.Format.Align(wire.U32))
		rt.CheckBound(count, boundOf(arr))
		l := uint32(count)
		if nul {
			l++
		}
		m.putRaw(e, 4, uint64(l))
	}
	elem := n.Elem().Resolve()
	ea, _, isAtom := atomOf(elem.Mint)
	if isAtom {
		ew := m.Format.ArrayElemSize(ea)
		if ew == m.Format.WireSize(ea) {
			e.Align(m.Format.Align(ea))
		}
		// Interpretation: one dispatch per element, no bulk copy.
		for i := 0; i < count; i++ {
			var u uint64
			el := v.Index(i)
			switch ea.Kind {
			case wire.BoolAtom:
				if el.Bool() {
					u = 1
				}
			case wire.Float:
				if ea.Bits == 32 {
					u = uint64(f32bits(float32(el.Float())))
				} else {
					u = f64bits(el.Float())
				}
			case wire.SInt:
				u = uint64(el.Int())
			default:
				switch el.Kind() {
				case reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64, reflect.Int:
					u = uint64(el.Int())
				default:
					u = el.Uint()
				}
			}
			m.putRaw(e, ew, u)
		}
		if ew == 1 {
			if pad := m.Format.ArrayPad(); pad > 1 {
				e.Align(pad)
			}
		}
	} else {
		for i := 0; i < count; i++ {
			if err := m.value(e, elem, v.Index(i)); err != nil {
				return err
			}
		}
	}
	if fixed < 0 && m.Format.StringNul() && isChar(arr) {
		e.PutU8C(0)
	}
	return nil
}

func (m *Marshaler) putUnion(e *rt.Encoder, n *pres.Node, v reflect.Value) error {
	u := mint.Deref(n.Mint).(*mint.Union)
	da, _, ok := atomOf(u.Discrim)
	if !ok {
		return fmt.Errorf("interp: bad union discriminator %s", u.Discrim)
	}
	w := m.Format.WireSize(da)
	dv := v.FieldByName("D")
	if !dv.IsValid() {
		return fmt.Errorf("interp: %s: union without D field", v.Type())
	}
	m.putAtom(e, da, w, dv)
	tag := tagValue(dv)
	for i, c := range u.Cases {
		if c.Value == tag {
			return m.putArm(e, n, i, v)
		}
	}
	if u.Default != nil {
		return m.putArm(e, n, len(u.Cases), v)
	}
	return fmt.Errorf("interp: unknown union discriminator %d", tag)
}

func (m *Marshaler) putArm(e *rt.Encoder, n *pres.Node, idx int, v reflect.Value) error {
	if idx >= len(n.Children) {
		return nil
	}
	child := n.Children[idx]
	name := ""
	if idx < len(n.FieldNames) {
		name = n.FieldNames[idx]
	}
	if name == "" {
		return nil // void arm
	}
	f := v.FieldByName(name)
	if !f.IsValid() {
		return fmt.Errorf("interp: %s: missing union arm %s", v.Type(), name)
	}
	return m.value(e, child, f)
}

func tagValue(v reflect.Value) int64 {
	switch v.Kind() {
	case reflect.Bool:
		if v.Bool() {
			return 1
		}
		return 0
	case reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64, reflect.Int:
		return v.Int()
	default:
		return int64(v.Uint())
	}
}

func isChar(arr *mint.Array) bool {
	s, ok := mint.Deref(arr.Elem).(*mint.Scalar)
	return ok && s.Kind == mint.Char8
}

func boundOf(arr *mint.Array) uint32 {
	if arr.Length.Range >= uint64(0xFFFFFFFF) {
		return 0
	}
	return uint32(arr.Length.Range)
}
