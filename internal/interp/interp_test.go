package interp

import (
	"bytes"
	"sync"
	"testing"

	"flick/internal/mint"
	"flick/internal/pres"
	"flick/internal/wire"
	"flick/rt"
)

func TestStyleString(t *testing.T) {
	if ILU.String() != "ilu" || ORBeline.String() != "orbeline" {
		t.Error("style names")
	}
}

// unionNoDefault builds a PRES union with no default arm.
func unionNoDefault() *pres.Node {
	m := &mint.Union{
		Discrim: mint.I32(),
		Cases: []mint.UnionCase{
			{Value: 1, Type: mint.I32()},
			{Value: 2, Type: mint.VoidT()},
		},
	}
	return &pres.Node{
		Kind: pres.UnionKind, Mint: m, CType: "U", DiscrimCType: "int32",
		Children: []*pres.Node{
			{Kind: pres.DirectKind, Mint: m.Cases[0].Type, CType: "int32"},
			{Kind: pres.VoidKind, Mint: m.Cases[1].Type},
		},
		FieldNames: []string{"A", ""},
	}
}

type U struct {
	D int32
	A int32
}

func TestUnionWithoutDefault(t *testing.T) {
	n := unionNoDefault()
	m := New(wire.XDR{}, ILU)
	var e rt.Encoder
	if err := m.Marshal(&e, n, U{D: 1, A: 7}); err != nil {
		t.Fatal(err)
	}
	var out U
	if err := m.Unmarshal(rt.NewDecoder(e.Bytes()), n, &out); err != nil {
		t.Fatal(err)
	}
	if out != (U{D: 1, A: 7}) {
		t.Errorf("out = %+v", out)
	}

	// Marshaling an unknown discriminator fails.
	e.Reset()
	if err := m.Marshal(&e, n, U{D: 9}); err == nil {
		t.Error("unknown discriminator marshaled")
	}

	// Decoding an unknown discriminator fails cleanly.
	e.Reset()
	e.Grow(4)
	e.PutU32BE(9)
	if err := m.Unmarshal(rt.NewDecoder(e.Bytes()), n, &out); err == nil {
		t.Error("unknown discriminator decoded")
	}

	// A void arm carries nothing.
	e.Reset()
	if err := m.Marshal(&e, n, U{D: 2}); err != nil {
		t.Fatal(err)
	}
	if e.Len() != 4 {
		t.Errorf("void arm bytes = %d", e.Len())
	}
}

func TestMismatchedValueShape(t *testing.T) {
	n := &pres.Node{
		Kind:       pres.StructKind,
		Mint:       &mint.Struct{Slots: []mint.Slot{{Name: "x", Type: mint.I32()}}},
		CType:      "S",
		Children:   []*pres.Node{{Kind: pres.DirectKind, Mint: mint.I32(), CType: "int32"}},
		FieldNames: []string{"Missing"},
	}
	m := New(wire.XDR{}, ILU)
	var e rt.Encoder
	if err := m.Marshal(&e, n, struct{ X int32 }{1}); err == nil {
		t.Error("missing field not reported")
	}
}

func TestORBelineConcurrentSafety(t *testing.T) {
	// The ORBeline model serializes through its runtime lock; concurrent
	// marshals must not corrupt the shared presentation buffer.
	n := &pres.Node{Kind: pres.DirectKind, Mint: mint.I32(), CType: "int32"}
	m := New(wire.XDR{}, ORBeline)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				var e rt.Encoder
				if err := m.Marshal(&e, n, int32(g)); err != nil {
					t.Error(err)
					return
				}
				var want rt.Encoder
				want.Grow(4)
				want.PutU32BE(uint32(g))
				if !bytes.Equal(e.Bytes(), want.Bytes()) {
					t.Errorf("corrupted marshal: %x", e.Bytes())
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
