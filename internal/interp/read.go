package interp

import (
	"fmt"
	"math"
	"reflect"

	"flick/internal/mint"
	"flick/internal/pres"
	"flick/internal/wire"
	"flick/rt"
)

func f32bits(f float32) uint32 { return math.Float32bits(f) }
func f64bits(f float64) uint64 { return math.Float64bits(f) }
func f32from(u uint32) float32 { return math.Float32frombits(u) }
func f64from(u uint64) float64 { return math.Float64frombits(u) }

// read decodes one presented value into v (an addressable Value).
func (m *Marshaler) read(d *rt.Decoder, n *pres.Node, v reflect.Value) error {
	n = n.Resolve()
	switch n.Kind {
	case pres.VoidKind:
		return nil
	case pres.DirectKind, pres.EnumKind:
		a, cv, ok := atomOf(n.Mint)
		if !ok {
			return fmt.Errorf("interp: non-atomic mint %s", n.Mint)
		}
		w := m.Format.WireSize(a)
		d.Align(m.Format.Align(a))
		u := m.getRaw(d, w)
		if cv != nil {
			if !d.CheckConst(u, *cv) {
				return d.Err()
			}
			return nil
		}
		setAtom(v, a, u)
		return nil
	case pres.CountedKind, pres.TerminatedKind:
		return m.readArray(d, n, v, -1)
	case pres.FixedArrayKind:
		arr := mint.Deref(n.Mint).(*mint.Array)
		return m.readArray(d, n, v, int(arr.FixedLen()))
	case pres.StructKind:
		for i, c := range n.Children {
			f := v.FieldByName(n.FieldNames[i])
			if !f.IsValid() {
				return fmt.Errorf("interp: %s: missing field %s", v.Type(), n.FieldNames[i])
			}
			if err := m.read(d, c, f); err != nil {
				return err
			}
		}
		return nil
	case pres.UnionKind:
		return m.readUnion(d, n, v)
	case pres.OptPtrKind:
		a := wire.Bool
		d.Align(m.Format.Align(a))
		u := m.getRaw(d, m.Format.WireSize(a))
		if d.Err() != nil {
			return d.Err()
		}
		if u == 0 {
			v.SetZero()
			return nil
		}
		nv := reflect.New(v.Type().Elem())
		if err := m.read(d, n.Elem(), nv.Elem()); err != nil {
			return err
		}
		v.Set(nv)
		return nil
	default:
		return fmt.Errorf("interp: unhandled pres kind %s", n.Kind)
	}
}

func setAtom(v reflect.Value, a wire.Atom, u uint64) {
	switch a.Kind {
	case wire.BoolAtom:
		v.SetBool(u != 0)
	case wire.Float:
		if a.Bits == 32 {
			v.SetFloat(float64(f32from(uint32(u))))
		} else {
			v.SetFloat(f64from(u))
		}
	case wire.SInt:
		v.SetInt(signExtend(u, a.Bits))
	default:
		switch v.Kind() {
		case reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64, reflect.Int:
			v.SetInt(signExtend(u, a.Bits))
		default:
			v.SetUint(u & mask(a.Bits))
		}
	}
}

func signExtend(u uint64, bits uint) int64 {
	shift := 64 - bits
	return int64(u<<shift) >> shift
}

func mask(bits uint) uint64 {
	if bits >= 64 {
		return ^uint64(0)
	}
	return 1<<bits - 1
}

func (m *Marshaler) readArray(d *rt.Decoder, n *pres.Node, v reflect.Value, fixed int) error {
	arr, ok := mint.Deref(n.Mint).(*mint.Array)
	if !ok {
		return fmt.Errorf("interp: array node over %s", n.Mint)
	}
	nul := m.Format.StringNul() && isChar(arr)
	count := fixed
	if fixed < 0 {
		d.Align(m.Format.Align(wire.U32))
		if !d.Ensure(4) {
			return d.Err()
		}
		var raw uint32
		if m.big() {
			raw = d.U32BE()
		} else {
			raw = d.U32LE()
		}
		c, okLen := d.CheckLen(raw, boundOf(arr), nul)
		if !okLen {
			return d.Err()
		}
		count = c
	}
	elem := n.Elem().Resolve()
	ea, _, isAtom := atomOf(elem.Mint)

	// Strings decode through a byte scratch.
	if v.Kind() == reflect.String {
		if !d.Ensure(count) {
			return d.Err()
		}
		b := make([]byte, count)
		for i := range b {
			b[i] = d.U8()
		}
		v.SetString(string(b))
		if isAtom && m.Format.ArrayElemSize(ea) == 1 {
			if pad := m.Format.ArrayPad(); pad > 1 {
				d.Align(pad)
			}
		}
		if nul {
			if !d.Ensure(1) {
				return d.Err()
			}
			if !d.CheckConst(uint64(d.U8()), 0) {
				return d.Err()
			}
		}
		return nil
	}

	if fixed < 0 {
		if v.Kind() != reflect.Slice {
			return fmt.Errorf("interp: counted value decodes into %s", v.Kind())
		}
		v.Set(reflect.MakeSlice(v.Type(), count, count))
	}
	if isAtom {
		ew := m.Format.ArrayElemSize(ea)
		if ew == m.Format.WireSize(ea) {
			d.Align(m.Format.Align(ea))
		}
		for i := 0; i < count; i++ {
			u := m.getRaw(d, ew)
			if d.Err() != nil {
				return d.Err()
			}
			setAtom(v.Index(i), wire.Atom{Kind: ea.Kind, Bits: uint(ew) * 8}, u)
		}
		if ew == 1 {
			if pad := m.Format.ArrayPad(); pad > 1 {
				d.Align(pad)
			}
		}
	} else {
		for i := 0; i < count; i++ {
			if err := m.read(d, elem, v.Index(i)); err != nil {
				return err
			}
		}
	}
	if fixed < 0 && nul {
		if !d.Ensure(1) {
			return d.Err()
		}
		if !d.CheckConst(uint64(d.U8()), 0) {
			return d.Err()
		}
	}
	return nil
}

func (m *Marshaler) readUnion(d *rt.Decoder, n *pres.Node, v reflect.Value) error {
	u := mint.Deref(n.Mint).(*mint.Union)
	da, _, ok := atomOf(u.Discrim)
	if !ok {
		return fmt.Errorf("interp: bad union discriminator %s", u.Discrim)
	}
	dv := v.FieldByName("D")
	if !dv.IsValid() {
		return fmt.Errorf("interp: %s: union without D field", v.Type())
	}
	d.Align(m.Format.Align(da))
	raw := m.getRaw(d, m.Format.WireSize(da))
	if d.Err() != nil {
		return d.Err()
	}
	setAtom(dv, da, raw)
	tag := tagValue(dv)
	for i, c := range u.Cases {
		if c.Value == tag {
			return m.readArm(d, n, i, v)
		}
	}
	if u.Default != nil {
		return m.readArm(d, n, len(u.Cases), v)
	}
	return d.Fail(rt.ErrBadUnion)
}

func (m *Marshaler) readArm(d *rt.Decoder, n *pres.Node, idx int, v reflect.Value) error {
	if idx >= len(n.Children) {
		return nil
	}
	name := ""
	if idx < len(n.FieldNames) {
		name = n.FieldNames[idx]
	}
	if name == "" {
		return nil
	}
	f := v.FieldByName(name)
	if !f.IsValid() {
		return fmt.Errorf("interp: %s: missing union arm %s", v.Type(), name)
	}
	return m.read(d, n.Children[idx], f)
}
