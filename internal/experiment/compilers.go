package experiment

import (
	"fmt"
	"sync"
	"time"

	"flick/internal/frontend/corbaidl"
	"flick/internal/interp"
	"flick/internal/pgen"
	"flick/internal/pres"
	"flick/internal/presc"
	ts "flick/internal/teststubs"
	"flick/internal/wire"
	"flick/rt"
)

// Compiler describes one stub compiler configuration of Table 3 and
// provides its executable marshal/unmarshal paths for the three test
// methods.
type Compiler struct {
	Name     string
	Origin   string
	IDL      string
	Encoding string
	Wire     string

	MarshalInts    func(*rt.Encoder, []int32)
	UnmarshalInts  func(*rt.Decoder) ([]int32, error)
	MarshalRects   func(*rt.Encoder, []ts.BenchRect)
	UnmarshalRects func(*rt.Decoder) ([]ts.BenchRect, error)
	MarshalDirs    func(*rt.Encoder, []ts.BenchDirEntry)
	UnmarshalDirs  func(*rt.Decoder) ([]ts.BenchDirEntry, error)
}

var (
	presOnce  sync.Once
	presNodes map[string]*pres.Node
	presErr   error
)

// benchPres returns the request PRES tree of a Bench operation for the
// interpretive marshalers.
func benchPres(op string) *pres.Node {
	presOnce.Do(func() {
		presNodes = map[string]*pres.Node{}
		f, err := corbaidl.Parse("test.idl", ts.BenchIDL)
		if err != nil {
			presErr = err
			return
		}
		pf, err := pgen.GenerateGo(f, presc.Client)
		if err != nil {
			presErr = err
			return
		}
		for _, s := range pf.Stubs {
			if len(s.Params) > 0 && s.Params[0].Request != nil {
				presNodes[s.Op] = s.Params[0].Request
			}
		}
	})
	if presErr != nil {
		panic(fmt.Sprintf("experiment: %v", presErr))
	}
	return presNodes[op]
}

func interpCompiler(name, origin, idl string, f wire.Format, style interp.Style) Compiler {
	m := interp.New(f, style)
	ints := benchPres("send_ints")
	rects := benchPres("send_rects")
	dirs := benchPres("send_dirs")
	return Compiler{
		Name: name, Origin: origin, IDL: idl,
		Encoding: f.Name(), Wire: "TCP",
		MarshalInts: func(e *rt.Encoder, v []int32) {
			if err := m.Marshal(e, ints, v); err != nil {
				panic(err)
			}
		},
		UnmarshalInts: func(d *rt.Decoder) ([]int32, error) {
			var out []int32
			err := m.Unmarshal(d, ints, &out)
			return out, err
		},
		MarshalRects: func(e *rt.Encoder, v []ts.BenchRect) {
			if err := m.Marshal(e, rects, v); err != nil {
				panic(err)
			}
		},
		UnmarshalRects: func(d *rt.Decoder) ([]ts.BenchRect, error) {
			var out []ts.BenchRect
			err := m.Unmarshal(d, rects, &out)
			return out, err
		},
		MarshalDirs: func(e *rt.Encoder, v []ts.BenchDirEntry) {
			if err := m.Marshal(e, dirs, v); err != nil {
				panic(err)
			}
		},
		UnmarshalDirs: func(d *rt.Decoder) ([]ts.BenchDirEntry, error) {
			var out []ts.BenchDirEntry
			err := m.Unmarshal(d, dirs, &out)
			return out, err
		},
	}
}

// Compilers returns the evaluation matrix of Table 3: the same compiler
// stacks the paper measured, reproduced by structure.
func Compilers() []Compiler {
	return []Compiler{
		{
			Name: "rpcgen", Origin: "Sun", IDL: "ONC", Encoding: "XDR", Wire: "ONC/TCP",
			MarshalInts:    ts.MarshalBenchSendIntsXDRNaiveRequest,
			UnmarshalInts:  ts.UnmarshalBenchSendIntsXDRNaiveRequest,
			MarshalRects:   ts.MarshalBenchSendRectsXDRNaiveRequest,
			UnmarshalRects: ts.UnmarshalBenchSendRectsXDRNaiveRequest,
			MarshalDirs:    ts.MarshalBenchSendDirsXDRNaiveRequest,
			UnmarshalDirs:  ts.UnmarshalBenchSendDirsXDRNaiveRequest,
		},
		{
			Name: "PowerRPC", Origin: "Netbula", IDL: "CORBA-like", Encoding: "XDR", Wire: "ONC/TCP",
			MarshalInts:    ts.MarshalBenchSendIntsXDRPowRequest,
			UnmarshalInts:  ts.UnmarshalBenchSendIntsXDRPowRequest,
			MarshalRects:   ts.MarshalBenchSendRectsXDRPowRequest,
			UnmarshalRects: ts.UnmarshalBenchSendRectsXDRPowRequest,
			MarshalDirs:    ts.MarshalBenchSendDirsXDRPowRequest,
			UnmarshalDirs:  ts.UnmarshalBenchSendDirsXDRPowRequest,
		},
		{
			Name: "Flick/ONC", Origin: "Utah", IDL: "ONC", Encoding: "XDR", Wire: "ONC/TCP",
			MarshalInts:    ts.MarshalBenchSendIntsXDRRequest,
			UnmarshalInts:  ts.UnmarshalBenchSendIntsXDRRequest,
			MarshalRects:   ts.MarshalBenchSendRectsXDRRequest,
			UnmarshalRects: ts.UnmarshalBenchSendRectsXDRRequest,
			MarshalDirs:    ts.MarshalBenchSendDirsXDRRequest,
			UnmarshalDirs:  ts.UnmarshalBenchSendDirsXDRRequest,
		},
		interpCompiler("ORBeline", "Visigenic", "CORBA", wire.CDR{Little: true}, interp.ORBeline),
		interpCompiler("ILU", "Xerox PARC", "CORBA", wire.CDR{Little: true}, interp.ILU),
		{
			Name: "Flick/CORBA", Origin: "Utah", IDL: "CORBA", Encoding: "IIOP", Wire: "TCP",
			MarshalInts:    ts.MarshalBenchSendIntsCDRRequest,
			UnmarshalInts:  ts.UnmarshalBenchSendIntsCDRRequest,
			MarshalRects:   ts.MarshalBenchSendRectsCDRRequest,
			UnmarshalRects: ts.UnmarshalBenchSendRectsCDRRequest,
			MarshalDirs:    ts.MarshalBenchSendDirsCDRRequest,
			UnmarshalDirs:  ts.UnmarshalBenchSendDirsCDRRequest,
		},
	}
}

// MeasureMarshal times one marshal of the given closure: the minimum of
// several amortized rounds (minimum-of-N suppresses scheduler noise).
func MeasureMarshal(f func(*rt.Encoder)) time.Duration {
	var e rt.Encoder
	// Warm up and size the buffer.
	f(&e)
	iters := calibrate(func() { e.Reset(); f(&e) })
	best := time.Duration(1 << 62)
	for round := 0; round < 3; round++ {
		start := time.Now()
		for i := 0; i < iters; i++ {
			e.Reset()
			f(&e)
		}
		if per := time.Since(start) / time.Duration(iters); per < best {
			best = per
		}
	}
	return best
}

// MeasureUnmarshal times one decode of payload (minimum of three rounds).
func MeasureUnmarshal(payload []byte, f func(*rt.Decoder) error) (time.Duration, error) {
	d := rt.NewDecoder(payload)
	if err := f(d); err != nil {
		return 0, err
	}
	iters := calibrate(func() { d.Reset(payload); _ = f(d) })
	best := time.Duration(1 << 62)
	for round := 0; round < 3; round++ {
		start := time.Now()
		for i := 0; i < iters; i++ {
			d.Reset(payload)
			if err := f(d); err != nil {
				return 0, err
			}
		}
		if per := time.Since(start) / time.Duration(iters); per < best {
			best = per
		}
	}
	return best, nil
}

// calibrate finds an iteration count filling roughly two milliseconds.
func calibrate(f func()) int {
	iters := 1
	for {
		start := time.Now()
		for i := 0; i < iters; i++ {
			f()
		}
		if time.Since(start) > 2*time.Millisecond || iters >= 1<<20 {
			return iters
		}
		iters *= 4
	}
}
