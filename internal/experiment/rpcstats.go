package experiment

import (
	"fmt"
	"sort"

	ts "flick/internal/teststubs"
	"flick/rt"
)

// This file regenerates the observability numbers: the runtime metrics a
// live loopback RPC workload produces (RPCStats) and the buffer-space
// checks each stub style actually executes per message (CheckCounts) —
// the §3.1 grouped buffer management claim measured at run time rather
// than at compile time.

// rpcStatsImpl is a tiny Bench implementation for the loopback workload.
type rpcStatsImpl struct{ dirs []ts.BenchDirEntry }

func (i *rpcStatsImpl) SendInts(v []int32) error            { return nil }
func (i *rpcStatsImpl) SendRects(v []ts.BenchRect) error    { return nil }
func (i *rpcStatsImpl) SendDirs(v []ts.BenchDirEntry) error { i.dirs = v; return nil }
func (i *rpcStatsImpl) Ping(nonce int32) error              { return nil }
func (i *rpcStatsImpl) Sum(v []int32) (int32, error) {
	if len(v) == 0 {
		return 0, &ts.BenchBadSize{Wanted: 1}
	}
	var s int32
	for _, x := range v {
		s += x
	}
	return s, nil
}
func (i *rpcStatsImpl) ListDir(path string) ([]ts.BenchDirEntry, int32, error) {
	return i.dirs, int32(len(i.dirs)), nil
}

// RPCStats runs a mixed loopback workload over rt.Pipe with metrics
// attached on both ends and reports the per-operation server counters
// plus the global runtime counters. Every number is produced by the
// rt.Metrics registry — the same data a production server would export.
func RPCStats() *Report {
	sm := rt.NewMetrics()
	cm := rt.NewMetrics()

	clientEnd, serverEnd := rt.Pipe()
	srv := rt.NewServer(rt.ONC{})
	srv.Metrics = sm
	impl := &rpcStatsImpl{}
	ts.RegisterBenchXDR(srv, impl)
	done := make(chan struct{})
	go func() { defer close(done); srv.ServeConn(serverEnd) }()

	c := ts.NewBenchXDRClient(clientEnd)
	c.C.Metrics = cm

	ints := IntArray(4 << 10)
	dirs := DirArray(4 << 10)
	for i := 0; i < 64; i++ {
		c.SendInts(ints)
		c.SendDirs(dirs)
		if _, err := c.Sum(ints); err != nil {
			panic(err)
		}
		c.Sum(nil) // typed exception: counts as a client-visible error reply
		c.ListDir("/tmp")
		c.Ping(int32(i))
	}
	clientEnd.Close()
	<-done

	rep := &Report{
		Title: "Runtime metrics: loopback RPC workload (64 rounds, 4KB payloads)",
		Cols:  []string{"op (server)", "calls", "errors", "req B", "rep B", "p50 µs", "p99 µs"},
		Notes: []string{
			"per-op counters from rt.Metrics attached to the server; oneway ops have rep B = 0",
			"client side: " + globalLine(cm.Snapshot()),
			"server side: " + globalLine(sm.Snapshot()),
		},
	}
	snap := sm.Snapshot()
	sort.Slice(snap.Ops, func(i, j int) bool { return snap.Ops[i].Op < snap.Ops[j].Op })
	for _, op := range snap.Ops {
		rep.AddRow(op.Op,
			fmt.Sprintf("%d", op.Calls),
			fmt.Sprintf("%d", op.Errors),
			fmt.Sprintf("%d", op.ReqBytes),
			fmt.Sprintf("%d", op.RepBytes),
			fmt.Sprintf("%.1f", float64(op.P50Ns)/1e3),
			fmt.Sprintf("%.1f", float64(op.P99Ns)/1e3),
		)
	}
	return rep
}

func globalLine(s rt.Snapshot) string {
	return fmt.Sprintf("conns=%d oneways=%d dispatch_errors=%d bad_headers=%d bad_xids=%d enc_grow_checks=%d enc_grow_allocs=%d dec_ensure_checks=%d",
		s.Conns, s.Oneways, s.DispatchErrors, s.BadHeaders, s.BadXIDs,
		s.EncGrowChecks, s.EncGrowAllocs, s.DecEnsureChecks)
}

// CheckCounts measures the buffer-space checks each stub style executes
// to marshal and unmarshal one message: the paper's grouped buffer
// management (§3.1) observed through the Encoder/Decoder counters
// instead of inferred from generated code. Flick's grouped stubs
// execute a handful of checks per message; the rpcgen- and
// PowerRPC-style baselines execute one per atom.
func CheckCounts() *Report {
	type style struct {
		name      string
		marshal   func(*rt.Encoder, []ts.BenchDirEntry)
		unmarshal func(*rt.Decoder) ([]ts.BenchDirEntry, error)
	}
	styles := []style{
		{"flick", ts.MarshalBenchSendDirsXDRRequest, ts.UnmarshalBenchSendDirsXDRRequest},
		{"rpcgen", ts.MarshalBenchSendDirsXDRNaiveRequest, ts.UnmarshalBenchSendDirsXDRNaiveRequest},
		{"powerrpc", ts.MarshalBenchSendDirsXDRPowRequest, ts.UnmarshalBenchSendDirsXDRPowRequest},
	}
	sizes := []int{256, 4 << 10, 64 << 10}
	rep := &Report{
		Title: "Space checks executed per message (directory entries)",
		Cols:  []string{"size", "style", "enc checks", "enc allocs", "dec checks"},
		Notes: []string{
			"enc checks: Encoder.Grow calls; enc allocs: Grow calls that reallocated",
			"dec checks: Decoder.Ensure calls while unmarshaling the same message",
			"paper §3.1: grouping emits one check per fixed-size segment, not per atom",
		},
	}
	for _, size := range sizes {
		v := DirArray(size)
		for _, st := range styles {
			var e rt.Encoder
			e.EnableStats(true)
			st.marshal(&e, v)
			es := e.TakeStats()
			var d rt.Decoder
			d.EnableStats(true)
			d.Reset(e.Bytes())
			if _, err := st.unmarshal(&d); err != nil {
				panic(err)
			}
			ds := d.TakeStats()
			rep.AddRow(sizeLabel(size), st.name,
				fmt.Sprintf("%d", es.GrowChecks),
				fmt.Sprintf("%d", es.GrowAllocs),
				fmt.Sprintf("%d", ds.EnsureChecks))
		}
	}
	return rep
}
