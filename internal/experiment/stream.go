package experiment

import (
	"errors"
	"fmt"
	"io"
	"strconv"
	"time"

	"flick/internal/netsim"
	ss "flick/internal/streamstubs"
	"flick/rt"
)

// This file regenerates the streaming experiment: server-push fetch
// throughput as a function of chunk size and credit window over a
// simulated link. The window is the streaming analogue of pipeline
// depth — window 1 serializes every chunk behind a grant round trip,
// while a deeper window overlaps propagation the same way pipelined
// calls do — and chunk size trades per-chunk envelope overhead against
// line occupancy, the classic throughput knob of any transfer protocol.

// Stream sweeps chunk size x credit window for fetch streams over the
// 100Mbps Ethernet model and reports delivered goodput per cell.
func Stream() *Report {
	return streamReport(netsim.Ethernet100, []int{1, 2, 4, 8, 16}, []int{256, 1 << 10, 4 << 10}, 128<<10)
}

func streamReport(link netsim.Link, windows, chunkSizes []int, totalBytes int) *Report {
	rep := &Report{
		Title: fmt.Sprintf("Server-push stream goodput vs chunk size and credit window (%s)", link),
		Cols:  []string{"chunk", "window", "chunks/s", "goodput Mbps", "speedup"},
		Notes: []string{
			fmt.Sprintf("one generated Blob fetch stream delivering %s per cell; server Workers=4", sizeLabel(totalBytes)),
			"window 1 = every chunk waits for a grant round trip; window W keeps W chunks in flight",
			"the consumer auto-regrants at half window, so grants overlap delivery at W >= 2",
			"chunks/s plateaus once the window hides the round trip: past that, per-chunk cost",
			"(envelope + grant + scheduler wakeup) dominates, so goodput scales with chunk size",
			"(absolute rates are bounded by the host's timer granularity; the shape is the result)",
		},
	}
	for _, chunk := range chunkSizes {
		var base float64
		for _, w := range windows {
			cps, mbps := streamCell(link, chunk, w, totalBytes)
			if w == windows[0] {
				base = cps
			}
			rep.AddRow(
				sizeLabel(chunk),
				fmt.Sprintf("%d", w),
				fmt.Sprintf("%.0f", cps),
				fmt.Sprintf("%.1f", mbps),
				fmt.Sprintf("%.1fx", cps/base),
			)
		}
	}
	return rep
}

// streamCell measures one (chunk size, window) cell: a single fetch
// stream of totalBytes, consumed as fast as the credit flow allows.
func streamCell(link netsim.Link, chunkSize, window, totalBytes int) (cps, mbps float64) {
	clientEnd, serverEnd := SimPipe(link)
	srv := rt.NewServer(rt.ONC{})
	srv.Workers = 4
	ss.RegisterBlob(srv, chaosBlobImpl{chunkSize: chunkSize})
	done := make(chan struct{})
	go func() { defer close(done); srv.ServeConn(serverEnd) }()

	c := ss.NewBlobClient(clientEnd)
	start := time.Now()
	st, err := c.FetchStream(strconv.Itoa(totalBytes), window)
	if err != nil {
		panic(err)
	}
	var chunks, bytes int
	for {
		ch, rerr := st.Recv()
		if rerr != nil {
			if !errors.Is(rerr, io.EOF) {
				panic(rerr)
			}
			break
		}
		chunks++
		bytes += len(ch.Data)
	}
	elapsed := time.Since(start)
	if bytes != totalBytes {
		panic(fmt.Sprintf("stream cell delivered %d of %d bytes", bytes, totalBytes))
	}
	clientEnd.Close()
	<-done
	serverEnd.Close()
	return float64(chunks) / elapsed.Seconds(), float64(bytes) * 8 / 1e6 / elapsed.Seconds()
}
