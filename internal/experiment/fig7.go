package experiment

import (
	"encoding/binary"
	"fmt"

	"flick/internal/netsim"
	ts "flick/internal/teststubs"
	"flick/rt"
)

// MIGStub is a hand-specialized MIG-style stub for sending integer
// arrays over Mach IPC — the only way MIG can express the workload (the
// paper: "we did not generate stubs to transmit arrays of structures
// because MIG cannot express arrays of non-atomic types").
//
// MIG's structure, reproduced:
//   - a fixed preformatted header template (very low fixed cost: MIG
//     stubs fill a static msg_header and type descriptors),
//   - one 12-byte long-form type descriptor per parameter,
//   - element-at-a-time typed stores (MIG's generated assignments),
//   - a fresh receive-side allocation and a typed copy-out pass (Mach's
//     receive semantics hand the data in the message buffer; MIG copies
//     it to the caller's storage).
type MIGStub struct {
	buf []byte
}

var migHeader = [24]byte{
	0x13, 0x15, 0, 0, // msgh_bits
	0, 0, 0, 0, // msgh_size (patched)
	0x01, 0x24, 0, 0, // remote port
	0, 0, 0, 0, // reply port
	0, 0, 0, 0, // msgh_id
	0, 0, 0, 9, // body descriptor
}

// MarshalInts builds the complete typed message.
func (m *MIGStub) MarshalInts(v []int32) []byte {
	need := 24 + 12 + 4*len(v)
	if cap(m.buf) < need {
		m.buf = make([]byte, need)
	}
	b := m.buf[:need]
	copy(b, migHeader[:])
	binary.LittleEndian.PutUint32(b[4:], uint32(need))
	// Long-form type descriptor: MACH_MSG_TYPE_INTEGER_32, 32 bits,
	// count.
	binary.LittleEndian.PutUint32(b[24:], 2<<24|32<<16)
	binary.LittleEndian.PutUint32(b[28:], uint32(len(v)))
	binary.LittleEndian.PutUint32(b[32:], 0)
	// Element-at-a-time typed stores, as MIG's generated code performs.
	off := 36
	for i, x := range v {
		binary.LittleEndian.PutUint32(b[off+4*i:], uint32(x))
	}
	return b
}

// UnmarshalInts consumes a typed message: validate the descriptor, then
// copy the data out of the message buffer into fresh caller storage
// (MIG's receive-side behaviour; no buffer reuse).
func (m *MIGStub) UnmarshalInts(msg []byte) ([]int32, error) {
	if len(msg) < 36 {
		return nil, rt.ErrTruncated
	}
	desc := binary.LittleEndian.Uint32(msg[24:])
	if desc>>24 != 2 {
		return nil, rt.ErrBadConst
	}
	n := int(binary.LittleEndian.Uint32(msg[28:]))
	if len(msg) < 36+4*n {
		return nil, rt.ErrTruncated
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(msg[36+4*i:]))
	}
	return out, nil
}

// flickMachMessage builds the complete Flick-over-Mach request message
// (protocol header + optimized payload).
func flickMachMessage(e *rt.Encoder, v []int32) {
	h := rt.ReqHeader{XID: 1, Proc: 0}
	rt.Mach{}.WriteRequest(e, &h)
	ts.MarshalBenchSendIntsMachRequest(e, v)
}

// Fig7 regenerates the MIG-versus-Flick comparison: end-to-end modeled
// throughput of integer arrays over same-host Mach IPC.
func Fig7() *Report {
	rep := &Report{
		Title: "Figure 7: end-to-end throughput (Mbps) for MIG and Flick stubs, Mach3 IPC, integer arrays",
		Cols:  []string{"size", "MIG", "Flick/Mach", "Flick/MIG"},
		Notes: []string{
			"paper: MIG ~2x faster for small messages; crossover near 8K; Flick +17% at 64K",
			"MIG stubs: minimal fixed cost but per-element typed processing and fresh receive-side storage;",
			"Flick stubs: protocol-layer overhead but bulk copies and buffer reuse",
		},
	}
	scale := cpuScale()
	link := netsim.MachIPC.Scaled(scale)
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("Mach IPC model scaled x%.0f to hold the paper's CPU:IPC ratio on this host", scale))
	mig := &MIGStub{}
	for size := 64; size <= 64<<10; size *= 2 {
		v := IntArray(size)

		migMarshal := MeasureMarshal(func(e *rt.Encoder) {
			// MIG writes into its own fixed buffer; the encoder is
			// unused (kept for the harness signature).
			mig.MarshalInts(v)
		})
		msg := mig.MarshalInts(v)
		migMsg := append([]byte(nil), msg...)
		migUnmarshal, err := MeasureUnmarshal(migMsg, func(d *rt.Decoder) error {
			_, err := mig.UnmarshalInts(migMsg)
			return err
		})
		if err != nil {
			rep.AddRow(sizeLabel(size), "err", "", "")
			continue
		}

		flickMarshal := MeasureMarshal(func(e *rt.Encoder) { flickMachMessage(e, v) })
		var enc rt.Encoder
		flickMachMessage(&enc, v)
		flickMsg := append([]byte(nil), enc.Bytes()...)
		flickUnmarshal, err := MeasureUnmarshal(flickMsg, func(d *rt.Decoder) error {
			if _, err := (rt.Mach{}).ReadRequest(d); err != nil {
				return err
			}
			_, err := ts.UnmarshalBenchSendIntsMachRequest(d)
			return err
		})
		if err != nil {
			rep.AddRow(sizeLabel(size), "err", "", "")
			continue
		}

		migTrip := netsim.RoundTrip{
			Link: link, RequestBytes: len(migMsg), ReplyBytes: 32,
			ClientMarshal: migMarshal, ServerUnmarshal: migUnmarshal,
		}
		flickTrip := netsim.RoundTrip{
			Link: link, RequestBytes: len(flickMsg), ReplyBytes: 32,
			ClientMarshal: flickMarshal, ServerUnmarshal: flickUnmarshal,
		}
		migT := migTrip.ThroughputMbps(size)
		flickT := flickTrip.ThroughputMbps(size)
		rep.AddRow(sizeLabel(size),
			fmt.Sprintf("%.1f", migT),
			fmt.Sprintf("%.1f", flickT),
			fmt.Sprintf("%.2fx", flickT/migT))
	}
	return rep
}
