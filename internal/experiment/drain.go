package experiment

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	ts "flick/internal/teststubs"
	"flick/rt"
)

// This file is the rolling-restart soak: a fleet of K servers behind a
// K-session ClientPool, with a restarter goroutine draining and
// replacing one server at a time while caller goroutines hammer the
// pool. The invariant the harness exists to prove: a drain is
// loss-free. Every call accepted by a draining server is answered;
// every call shed after GOAWAY is shed with a failover-safe status and
// lands on another server; nothing returns a wrong answer or an
// unclassified error; no pooled buffer leaks.

// DrainConfig parameterizes one rolling-restart soak.
type DrainConfig struct {
	// Calls is the total number of Sum round trips (default 8000),
	// split across Callers goroutines (default 8).
	Calls   int
	Callers int
	// Seed makes the run reproducible (fault plans, retry jitter,
	// payloads, restart cadence).
	Seed int64
	// Plan is the per-connection fault plan (zero for a clean-link run,
	// which must be 100% loss-free).
	Plan rt.FaultPlan
	// Servers is the fleet size, and the pool size (default 4); session
	// i always dials the current incarnation of server i.
	Servers int
	// Restarts is how many rolling restarts the restarter performs
	// while traffic flows (default 2 passes over the fleet).
	Restarts int
	// DrainTimeout bounds each server's Drain (default 250ms).
	DrainTimeout time.Duration
	// RestartEvery spaces restarts out so traffic flows between them
	// (default 3ms).
	RestartEvery time.Duration
}

// DrainResult aggregates one soak's outcome.
type DrainResult struct {
	Calls      uint64
	Succeeded  uint64
	Mismatches uint64 // wrong answers: must be zero, always
	// Classified failure classes; FailedOther (unclassified) must be 0.
	FailedRetryable    uint64
	FailedNotRetryable uint64
	FailedBreaker      uint64
	FailedOther        uint64

	// Drain accounting.
	Restarts    uint64 // drains performed
	CleanDrains uint64 // drains where every in-flight call settled in time
	// Client-side lifecycle counters.
	GoAways, Reconnects, SessionFailovers uint64
	// Server-side shed counters (summed over all incarnations).
	DrainRejects, ExpiredRejects, CanceledCalls uint64

	PoolDelta rt.PoolStats
	Wall      time.Duration
}

// RunDrain executes one rolling-restart soak and waits for quiescence
// before returning.
func RunDrain(cfg DrainConfig) (*DrainResult, error) {
	if cfg.Calls <= 0 {
		cfg.Calls = 8000
	}
	if cfg.Callers <= 0 {
		cfg.Callers = 8
	}
	if cfg.Servers <= 0 {
		cfg.Servers = 4
	}
	if cfg.Restarts <= 0 {
		cfg.Restarts = 2 * cfg.Servers
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 250 * time.Millisecond
	}
	if cfg.RestartEvery <= 0 {
		cfg.RestartEvery = 3 * time.Millisecond
	}

	serverMetrics := rt.NewMetrics()
	clientMetrics := rt.NewMetrics()

	var mu sync.Mutex
	var serveWG sync.WaitGroup
	connSeed := cfg.Seed
	// servers[i] is server i's current incarnation; a restart swaps in
	// a fresh Server before draining the old one, so session i's redial
	// lands on the replacement.
	servers := make([]*rt.Server, cfg.Servers)
	faulty := cfg.Plan != (rt.FaultPlan{})

	newServer := func() *rt.Server {
		srv := rt.NewServer(rt.ONC{})
		srv.Workers = 4
		srv.DupWindow = 4096
		srv.MaxMessage = 1 << 20
		srv.Metrics = serverMetrics
		ts.RegisterBenchXDR(srv, pipelineImpl{})
		return srv
	}
	for i := range servers {
		servers[i] = newServer()
	}

	// dial builds one link from session i to server i's current
	// incarnation, optionally hostile (FaultConn under CRC framing,
	// exactly as the chaos soak wires it).
	dial := func(i int) (rt.Conn, error) {
		mu.Lock()
		connSeed++
		seed := connSeed
		srv := servers[i]
		mu.Unlock()
		clientPipe, serverPipe := rt.Pipe()
		clientSide := clientPipe
		serverSide := serverPipe
		if faulty {
			plan := cfg.Plan
			plan.Seed = seed
			fc, err := rt.NewFaultConn(clientPipe, plan)
			if err != nil {
				return nil, err
			}
			clientSide = rt.WrapChecksum(fc)
			serverSide = rt.WrapChecksum(serverPipe)
		}
		serveWG.Add(1)
		go func() { defer serveWG.Done(); srv.ServeConn(serverSide) }()
		return clientSide, nil
	}

	poolBefore := rt.ReadPoolStats()
	retry := &rt.RetryPolicy{
		MaxAttempts: 8,
		BaseBackoff: 200 * time.Microsecond,
		MaxBackoff:  5 * time.Millisecond,
		Seed:        cfg.Seed + 7,
	}
	pool, err := rt.NewClientPool(rt.PoolConfig{
		Size:             cfg.Servers,
		Dial:             dial,
		Proto:            rt.ONC{},
		Timeout:          150 * time.Millisecond,
		Retry:            retry,
		BreakerThreshold: 64,
		BreakerCooldown:  2 * time.Millisecond,
		Redial:           true,
		Metrics:          clientMetrics,
	})
	if err != nil {
		return nil, err
	}

	res := &DrainResult{}
	per := cfg.Calls / cfg.Callers
	if per < 1 {
		per = 1
	}
	var wg sync.WaitGroup
	var resMu sync.Mutex
	done := make(chan struct{})
	start := time.Now()

	// The restarter: one rolling pass at a time, draining server
	// (r mod K) and swapping in a fresh incarnation first so redials
	// land on the replacement. This is the rolling-restart procedure an
	// operator would script; the soak proves it loses nothing.
	var restartWG sync.WaitGroup
	restartWG.Add(1)
	go func() {
		defer restartWG.Done()
		for r := 0; r < cfg.Restarts; r++ {
			select {
			case <-done:
				return
			case <-time.After(cfg.RestartEvery):
			}
			i := r % cfg.Servers
			mu.Lock()
			old := servers[i]
			servers[i] = newServer()
			mu.Unlock()
			clean := old.Drain(cfg.DrainTimeout)
			resMu.Lock()
			res.Restarts++
			if clean {
				res.CleanDrains++
			}
			resMu.Unlock()
		}
	}()

	for g := 0; g < cfg.Callers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(g)*1000003))
			v := make([]int32, 16)
			var local DrainResult
			for i := 0; i < per; i++ {
				n := 1 + rng.Intn(len(v))
				var want int32
				for j := 0; j < n; j++ {
					v[j] = int32(rng.Intn(1 << 20))
					want += v[j]
				}
				local.Calls++
				d, err := pool.CallIdem(3, "sum", false, true, func(e *rt.Encoder) {
					ts.MarshalBenchSumXDRRequest(e, v[:n])
				})
				var ret int32
				if err == nil {
					ret, err = ts.UnmarshalBenchSumXDRReply(d)
					d.Release()
				}
				switch {
				case err == nil && ret == want:
					local.Succeeded++
				case err == nil:
					local.Mismatches++
				case errors.Is(err, rt.ErrBreakerOpen):
					local.FailedBreaker++
				case errors.Is(err, rt.ErrRetryable):
					local.FailedRetryable++
				case errors.Is(err, rt.ErrNotRetryable):
					local.FailedNotRetryable++
				default:
					local.FailedOther++
				}
			}
			resMu.Lock()
			res.Calls += local.Calls
			res.Succeeded += local.Succeeded
			res.Mismatches += local.Mismatches
			res.FailedBreaker += local.FailedBreaker
			res.FailedRetryable += local.FailedRetryable
			res.FailedNotRetryable += local.FailedNotRetryable
			res.FailedOther += local.FailedOther
			resMu.Unlock()
		}(g)
	}
	wg.Wait()
	close(done)
	restartWG.Wait()
	res.Wall = time.Since(start)

	// Teardown: close the pool (server conns see EOF and ServeConn
	// returns), then wait for quiescence and pooled-buffer balance.
	pool.Close()
	serveWG.Wait()
	deadline := time.Now().Add(3 * time.Second)
	for {
		res.PoolDelta = rt.ReadPoolStats().Sub(poolBefore)
		if res.PoolDelta.Balanced() || time.Now().After(deadline) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}

	res.GoAways = clientMetrics.GoAways.Load()
	res.Reconnects = clientMetrics.Reconnects.Load()
	res.SessionFailovers = clientMetrics.SessionFailovers.Load()
	res.DrainRejects = serverMetrics.DrainRejects.Load()
	res.ExpiredRejects = serverMetrics.ExpiredRejects.Load()
	res.CanceledCalls = serverMetrics.CanceledCalls.Load()
	return res, nil
}

// Drain reports the rolling-restart soak at increasing fault rates:
// the clean-link row must be perfectly loss-free (ok == calls), and
// every row must show zero wrong answers, zero unclassified errors,
// and no pool leak.
func Drain() *Report {
	return drainReport(8000, []float64{0, 0.05})
}

// DrainShort is the CI-sized run: clean link only, fewer calls.
func DrainShort() *Report {
	return drainReport(2000, []float64{0})
}

func drainReport(calls int, rates []float64) *Report {
	rep := &Report{
		Title: "Rolling restart: lameduck drain under load",
		Cols: []string{"fault rate", "calls", "ok", "failed", "wrong", "restarts",
			"clean drains", "goaways", "drain sheds", "redials", "failovers", "pool leak"},
		Notes: []string{
			"K=4 servers behind a K-session pool; a restarter drains one server at a time (GOAWAY, settle, close) and swaps in a replacement",
			"drained sessions report unhealthy and the pool migrates; sheds after GOAWAY are ReplyOverloaded (failover-safe, nothing executed)",
			"clean-link row must be 100% ok; 'wrong' and pool leaks must be 0 at every rate",
		},
	}
	for _, rate := range rates {
		var plan rt.FaultPlan
		if rate > 0 {
			plan = DefaultChaosPlan(rate)
		}
		res, err := RunDrain(DrainConfig{Calls: calls, Callers: 8, Seed: 1, Plan: plan})
		if err != nil {
			rep.AddRow(fmt.Sprintf("%.0f%%", rate*100), "error: "+err.Error())
			continue
		}
		failed := res.FailedRetryable + res.FailedNotRetryable + res.FailedBreaker + res.FailedOther
		leak := "none"
		if !res.PoolDelta.Balanced() {
			leak = fmt.Sprintf("%+v", res.PoolDelta)
		}
		rep.AddRow(
			fmt.Sprintf("%.0f%%", rate*100),
			fmt.Sprintf("%d", res.Calls),
			fmt.Sprintf("%d", res.Succeeded),
			fmt.Sprintf("%d", failed),
			fmt.Sprintf("%d", res.Mismatches),
			fmt.Sprintf("%d", res.Restarts),
			fmt.Sprintf("%d", res.CleanDrains),
			fmt.Sprintf("%d", res.GoAways),
			fmt.Sprintf("%d", res.DrainRejects),
			fmt.Sprintf("%d", res.Reconnects),
			fmt.Sprintf("%d", res.SessionFailovers),
			leak,
		)
	}
	return rep
}
