package experiment

import (
	"fmt"
	"sync"

	"flick/internal/netsim"
	ts "flick/internal/teststubs"
	"flick/rt"
)

// cpuScale holds the factor by which this host outruns the paper's
// 50MHz SPARCstation 20 at the baseline marshaling task: the measured
// rpcgen-style int-array marshal throughput divided by the ~13MB/s the
// paper's Figure 3 shows for rpcgen on large integer arrays. Links are
// scaled by the same factor so the modeled CPU:network ratio matches the
// paper's testbed.
var (
	cpuScaleOnce sync.Once
	cpuScaleVal  float64
)

func cpuScale() float64 {
	cpuScaleOnce.Do(func() {
		// The paper's Figure 3 shows rpcgen marshaling large integer
		// arrays at roughly 3-4 MB/s on the 50MHz SPARC test hosts
		// (Flick reaches 5-17x that).
		const paperRpcgenMBps = 3.5
		v := IntArray(256 << 10)
		t := MeasureMarshal(func(e *rt.Encoder) { ts.MarshalBenchSendIntsXDRNaiveRequest(e, v) })
		measured := float64(256<<10) / t.Seconds() / 1e6
		cpuScaleVal = measured / paperRpcgenMBps
		if cpuScaleVal < 1 {
			cpuScaleVal = 1
		}
	})
	return cpuScaleVal
}

// EndToEnd regenerates one of Figures 4-6: modeled end-to-end throughput
// of the ONC-transport compilers (rpcgen, PowerRPC, Flick/ONC) invoking
// the int-array method across a link. Marshal and unmarshal costs are
// measured on this host with the real generated stubs; the link
// contributes its effective (OS-limited) bandwidth and per-message cost,
// scaled so the CPU:network speed ratio matches the paper's testbed.
func EndToEnd(raw netsim.Link) *Report {
	scale := cpuScale()
	link := raw.Scaled(scale)
	rep := &Report{
		Title: fmt.Sprintf("End-to-end throughput across %s (scaled x%.0f), integer arrays", raw.Name, scale),
		Cols:  []string{"size", "rpcgen", "PowerRPC", "Flick/ONC", "Flick/rpcgen"},
		Notes: []string{
			"modeled link: " + link.String(),
			fmt.Sprintf("link scaled x%.0f to hold the paper's CPU:network ratio on this host", scale),
			"reported in scaled-link Mbps; divide by the scale factor for 1997-equivalent Mbps",
			"paper: on 10Mbps Ethernet all compilers reach ~6-7.5Mbps (the wire dominates);",
			"on 100Mbps/640Mbps links Flick gains 2-3.7x (marshaling dominates)",
		},
	}
	compilers := Compilers()
	var onc []*Compiler
	for i := range compilers {
		switch compilers[i].Name {
		case "rpcgen", "PowerRPC", "Flick/ONC":
			onc = append(onc, &compilers[i])
		}
	}
	const oncHeader = 44 // record mark + ONC call header
	for _, size := range Fig3IntSizes() {
		row := []string{sizeLabel(size)}
		for _, c := range onc {
			m := marshalCost(c, Ints, size)
			u, err := unmarshalCost(c, Ints, size)
			if err != nil {
				row = append(row, "err")
				continue
			}
			trip := netsim.RoundTrip{
				Link:            link,
				RequestBytes:    size + 4 + oncHeader,
				ReplyBytes:      28,
				ClientMarshal:   m,
				ServerUnmarshal: u,
				ReplyCost:       0,
				Stream:          true, // ONC record marking streams over TCP
			}
			row = append(row, fmt.Sprintf("%.1f", trip.ThroughputMbps(size)))
		}
		// Ratio column: Flick/ONC over rpcgen.
		var vals [2]float64
		fmt.Sscanf(row[1], "%f", &vals[0])
		fmt.Sscanf(row[3], "%f", &vals[1])
		if vals[0] > 0 {
			row = append(row, fmt.Sprintf("%.2fx", vals[1]/vals[0]))
		} else {
			row = append(row, "-")
		}
		rep.AddRow(row...)
	}
	return rep
}

// Fig4 models 10Mbps Ethernet, Fig5 100Mbps Ethernet, Fig6 640Mbps
// Myrinet.
func Fig4() *Report { return EndToEnd(netsim.Ethernet10) }
func Fig5() *Report { return EndToEnd(netsim.Ethernet100) }
func Fig6() *Report { return EndToEnd(netsim.Myrinet) }

// Ablation regenerates the §3 optimization measurements: each row is one
// optimization switched off, with the slowdown relative to the fully
// optimized stubs on the workload the paper quotes.
func Ablation() *Report {
	rep := &Report{
		Title: "Section 3 ablations: marshal time with one optimization disabled",
		Cols:  []string{"optimization", "workload", "full (µs)", "disabled (µs)", "slowdown"},
		Notes: []string{
			"paper: buffer management ≤12% (large complex messages), memcpy 60-70% (strings),",
			"chunking ~14%, inlining ≤60% (complex data), stack allocation ~14% (small unmarshal)",
		},
	}
	type cfg struct {
		name     string
		workload Workload
		size     int
		full     func(*rt.Encoder)
		off      func(*rt.Encoder)
	}
	dirsL := DirArray(64 << 10)
	dirsS := DirArray(1 << 10)
	rects := RectArray(64 << 10)
	cfgs := []cfg{
		{
			"grouped buffer management", Dirs, 64 << 10,
			func(e *rt.Encoder) { marshalDirsAbl(e, dirsL, "full") },
			func(e *rt.Encoder) { marshalDirsAbl(e, dirsL, "nogroup") },
		},
		{
			"chunking", Rects, 64 << 10,
			func(e *rt.Encoder) { marshalRectsAbl(e, rects, "full") },
			func(e *rt.Encoder) { marshalRectsAbl(e, rects, "nochunk") },
		},
		{
			"memcpy (strings/arrays)", Dirs, 64 << 10,
			func(e *rt.Encoder) { marshalDirsAbl(e, dirsL, "full") },
			func(e *rt.Encoder) { marshalDirsAbl(e, dirsL, "nomemcpy") },
		},
		{
			"inline marshal code", Dirs, 1 << 10,
			func(e *rt.Encoder) { marshalDirsAbl(e, dirsS, "full") },
			func(e *rt.Encoder) { marshalDirsAbl(e, dirsS, "noinline") },
		},
	}
	for _, c := range cfgs {
		// Interleave the two variants and keep each one's minimum so a
		// frequency ramp or scheduler blip cannot bias the comparison.
		full := MeasureMarshal(c.full)
		off := MeasureMarshal(c.off)
		if f2 := MeasureMarshal(c.full); f2 < full {
			full = f2
		}
		if o2 := MeasureMarshal(c.off); o2 < off {
			off = o2
		}
		slow := float64(off-full) / float64(full) * 100
		rep.AddRow(c.name, string(c.workload),
			fmt.Sprintf("%.2f", float64(full.Nanoseconds())/1e3),
			fmt.Sprintf("%.2f", float64(off.Nanoseconds())/1e3),
			fmt.Sprintf("%+.0f%%", slow))
	}
	return rep
}
