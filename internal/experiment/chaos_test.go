package experiment

import (
	"runtime"
	"testing"
	"time"
)

// TestChaosSoak is the acceptance gate for the fault-tolerance layer:
// thousands of calls through a link injecting a combined ~5% fault rate
// (drops, duplicates, reordering, corruption, truncation, resets) must
// produce zero wrong answers, zero unclassified errors, zero pooled-
// buffer leaks, and zero leaked goroutines. Run it with -race.
func TestChaosSoak(t *testing.T) {
	calls := 10000
	if testing.Short() {
		calls = 1500
	}
	goroutinesBefore := runtime.NumGoroutine()

	res, err := RunChaos(ChaosConfig{
		Calls:     calls,
		Callers:   8,
		Seed:      1,
		Plan:      DefaultChaosPlan(0.05),
		PingEvery: 16,
	})
	if err != nil {
		t.Fatal(err)
	}

	t.Logf("chaos: %d calls, %d ok, %d/%d/%d/%d failed (retryable/notretryable/breaker/other), "+
		"%d faults, %d crc drops, %d retries, %d redials, %d dupes, %d stale, %v wall",
		res.Calls, res.Succeeded, res.FailedRetryable, res.FailedNotRetryable,
		res.FailedBreaker, res.FailedOther, res.FaultsInjected, res.ChecksumRejects,
		res.Retries, res.Reconnects, res.DroppedDupes, res.StaleReplies, res.Wall)

	// Hard invariants: never a wrong answer, never an unclassified error.
	if res.Mismatches != 0 {
		t.Errorf("payload corruption reached the caller: %d wrong answers", res.Mismatches)
	}
	if res.FailedOther != 0 {
		t.Errorf("%d failures carried no retry classification", res.FailedOther)
	}
	if res.Calls != uint64((calls/8)*8) {
		t.Errorf("calls = %d, want %d (a caller hung or double-counted)", res.Calls, (calls/8)*8)
	}
	// The soak must actually exercise the machinery: faults injected,
	// damage rejected by the CRC layer, retries recovering lost calls,
	// and most calls surviving.
	if res.FaultsInjected == 0 {
		t.Error("no faults injected: the soak tested a clean wire")
	}
	if res.ChecksumRejects == 0 {
		t.Error("no frames rejected: corruption/truncation never hit the integrity layer")
	}
	if res.Retries == 0 {
		t.Error("no retries: the policy never engaged")
	}
	if res.Reconnects == 0 {
		t.Error("no redials: injected resets never exercised reconnection")
	}
	if res.Succeeded*10 < res.Calls*9 {
		t.Errorf("only %d/%d calls succeeded: retry stack too weak for a 5%% fault rate",
			res.Succeeded, res.Calls)
	}
	// Leak invariants: pools balanced, goroutines bounded.
	if !res.PoolDelta.Balanced() {
		t.Errorf("pooled buffers leaked under chaos: %+v", res.PoolDelta)
	}
	deadline := time.Now().Add(3 * time.Second)
	for runtime.NumGoroutine() > goroutinesBefore+2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > goroutinesBefore+2 {
		t.Errorf("goroutines grew %d -> %d after quiescence", goroutinesBefore, now)
	}
}

// TestChaosPooled runs the soak through the scale-out fabric: a
// ClientPool of sessions with adaptive batching, every session its own
// hostile link. The PR 4 invariants must hold unchanged — zero wrong
// answers, zero unclassified errors, zero pool leaks, bounded
// goroutines — and the pooled machinery must actually engage: batches
// form, and dead sessions fail calls over to live ones.
func TestChaosPooled(t *testing.T) {
	calls := 8000
	if testing.Short() {
		calls = 1500
	}
	goroutinesBefore := runtime.NumGoroutine()

	res, err := RunChaos(ChaosConfig{
		Calls:     calls,
		Callers:   8,
		Seed:      11,
		Plan:      DefaultChaosPlan(0.05),
		PingEvery: 16,
		PoolSize:  4,
		Batch:     true,
	})
	if err != nil {
		t.Fatal(err)
	}

	t.Logf("pooled chaos: %d calls, %d ok, %d/%d/%d/%d failed, %d faults, %d crc drops, "+
		"%d retries, %d redials, %d failovers, %d batched, %v wall",
		res.Calls, res.Succeeded, res.FailedRetryable, res.FailedNotRetryable,
		res.FailedBreaker, res.FailedOther, res.FaultsInjected, res.ChecksumRejects,
		res.Retries, res.Reconnects, res.SessionFailovers, res.BatchedCalls, res.Wall)

	if res.Mismatches != 0 {
		t.Errorf("payload corruption reached the caller: %d wrong answers", res.Mismatches)
	}
	if res.FailedOther != 0 {
		t.Errorf("%d failures carried no retry classification", res.FailedOther)
	}
	if res.FaultsInjected == 0 {
		t.Error("no faults injected: the soak tested a clean wire")
	}
	if res.ChecksumRejects == 0 {
		t.Error("no frames rejected: damage never hit the integrity layer")
	}
	if res.Reconnects == 0 {
		t.Error("no redials: injected resets never exercised per-session reconnection")
	}
	if res.BatchedCalls == 0 {
		t.Error("no calls travelled batched: the coalescing writer never engaged")
	}
	if res.Succeeded*10 < res.Calls*9 {
		t.Errorf("only %d/%d calls succeeded through the pooled fabric",
			res.Succeeded, res.Calls)
	}
	if !res.PoolDelta.Balanced() {
		t.Errorf("pooled buffers leaked under pooled chaos: %+v", res.PoolDelta)
	}
	deadline := time.Now().Add(3 * time.Second)
	for runtime.NumGoroutine() > goroutinesBefore+2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > goroutinesBefore+2 {
		t.Errorf("goroutines grew %d -> %d after quiescence", goroutinesBefore, now)
	}
}

// TestChaosCleanWire pins the degenerate case: at a 0%% fault rate the
// soak is just a load test — every call must succeed with no retries,
// no redials, and balanced pools.
func TestChaosCleanWire(t *testing.T) {
	res, err := RunChaos(ChaosConfig{Calls: 400, Callers: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Succeeded != res.Calls {
		t.Errorf("clean wire: %d/%d succeeded", res.Succeeded, res.Calls)
	}
	if res.Mismatches != 0 || res.Retries != 0 || res.Reconnects != 0 {
		t.Errorf("clean wire saw mismatches=%d retries=%d redials=%d",
			res.Mismatches, res.Retries, res.Reconnects)
	}
	if !res.PoolDelta.Balanced() {
		t.Errorf("clean wire leaked pooled buffers: %+v", res.PoolDelta)
	}
}

// TestChaosReproducible: the same seed must produce the same fault
// counts — the property that makes a chaos failure debuggable.
func TestChaosReproducible(t *testing.T) {
	if testing.Short() {
		t.Skip("reproducibility sweep skipped in -short")
	}
	cfg := ChaosConfig{Calls: 800, Callers: 1, Seed: 3, Plan: DefaultChaosPlan(0.04)}
	a, err := RunChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// With a single caller the message sequence is deterministic, so the
	// injected fault totals must match run for run.
	if a.FaultsInjected != b.FaultsInjected || a.ChecksumRejects != b.ChecksumRejects {
		t.Errorf("same seed, different chaos: faults %d vs %d, crc %d vs %d",
			a.FaultsInjected, b.FaultsInjected, a.ChecksumRejects, b.ChecksumRejects)
	}
}
