// Package experiment regenerates every table and figure of the paper's
// evaluation (Section 4): marshal throughput (Figure 3), end-to-end
// throughput over 10/100Mbps Ethernet and 640Mbps Myrinet (Figures 4-6),
// MIG versus Flick over Mach IPC (Figure 7), generated-code sizes
// (Table 2), the tested-compiler matrix (Table 3), and the §3 ablation
// measurements. Table 1 (code reuse) is produced by cmd/flick-loc.
package experiment

import (
	"math/rand"

	ts "flick/internal/teststubs"
)

// The paper's three test methods carry:
//   - arrays of integers            (64B .. 4MB encoded)
//   - arrays of rectangle structs   (four longs each; 64B .. 4MB)
//   - arrays of directory entries   (256B encoded each; 256B .. 512KB)

// IntArray builds an int workload of exactly n encoded payload bytes
// (XDR/CDR: 4 bytes per element).
func IntArray(n int) []int32 {
	v := make([]int32, n/4)
	r := rand.New(rand.NewSource(42))
	for i := range v {
		v[i] = r.Int31() - 1<<30
	}
	return v
}

// RectArray builds a rect workload of n encoded payload bytes (16 bytes
// per rect: two points of two longs).
func RectArray(n int) []ts.BenchRect {
	v := make([]ts.BenchRect, n/16)
	r := rand.New(rand.NewSource(43))
	for i := range v {
		v[i] = ts.BenchRect{
			Min: ts.BenchPoint{X: r.Int31(), Y: r.Int31()},
			Max: ts.BenchPoint{X: r.Int31(), Y: r.Int31()},
		}
	}
	return v
}

// DirArray builds a directory-entry workload of n encoded payload bytes.
// As in the paper, every entry encodes to exactly 256 bytes: 4 (name
// count) + 116 (name+pad) + 136 (stat structure).
func DirArray(n int) []ts.BenchDirEntry {
	const nameLen = 116 // name + XDR pad = 116 (116 % 4 == 0)
	v := make([]ts.BenchDirEntry, n/256)
	r := rand.New(rand.NewSource(44))
	name := make([]byte, nameLen)
	for i := range v {
		for j := range name {
			name[j] = byte('a' + r.Intn(26))
		}
		v[i].Name = string(name)
		for j := range v[i].Info.Fields {
			v[i].Info.Fields[j] = r.Int31()
		}
		r.Read(v[i].Info.Tag[:])
	}
	return v
}

// Fig3IntSizes are the encoded payload sizes swept for int and rect
// arrays (64B to 4MB, doubling), matching the paper's x-axis.
func Fig3IntSizes() []int {
	var out []int
	for n := 64; n <= 4<<20; n *= 4 {
		out = append(out, n)
	}
	return out
}

// Fig3DirSizes are the directory-entry sweep sizes (256B to 512KB).
func Fig3DirSizes() []int {
	var out []int
	for n := 256; n <= 512<<10; n *= 4 {
		out = append(out, n)
	}
	return out
}
