package experiment

import (
	"testing"
)

// TestTraceSoak is the acceptance gate for the tracing layer: the
// pooled chaos soak at a combined ~5% fault rate with 100% sampling
// must yield, for every traced invocation, exactly one well-formed span
// tree — a single client-side root, every other span's parent present
// in its trace — with zero orphans, and the whole ring must export as
// valid Chrome trace_event JSON. Run it with -race (make trace-short).
func TestTraceSoak(t *testing.T) {
	calls := 6000
	if testing.Short() {
		calls = 1200
	}
	res, st, tracer, err := RunTraceSoak(calls, 0.05, 1)
	if err != nil {
		t.Fatal(err)
	}

	t.Logf("trace soak: %d calls, %d ok, %d spans in %d traces (%d call trees, %d served), "+
		"%d dropped, %d retries, %d failovers, %v wall",
		res.Calls, res.Succeeded, st.Spans, st.Traces, st.CallTrees, st.ServedTrees,
		tracer.Dropped(), res.Retries, res.SessionFailovers, res.Wall)

	// The chaos invariants still hold with tracing layered on.
	if res.Mismatches != 0 {
		t.Errorf("%d wrong answers under tracing", res.Mismatches)
	}
	if res.FailedOther != 0 {
		t.Errorf("%d unclassified failures under tracing", res.FailedOther)
	}

	// The verification is only meaningful if the ring held everything.
	if d := tracer.Dropped(); d != 0 {
		t.Fatalf("ring dropped %d spans — size the ring to the run", d)
	}
	// Every invocation recorded exactly one tree: a root per call (the
	// soak samples at 100%), no trace with two roots, no span whose
	// parent is missing from its trace.
	if uint64(st.CallTrees) != res.Calls {
		t.Errorf("%d call trees for %d calls — a call recorded no root, or two", st.CallTrees, res.Calls)
	}
	if st.MultiRoot != 0 {
		t.Errorf("%d traces have more than one root", st.MultiRoot)
	}
	if st.Orphans != 0 {
		t.Errorf("%d orphan spans (parent missing from their trace)", st.Orphans)
	}
	// The soak must prove propagation, not just local recording: most
	// calls complete under 5% faults, and every completed call's tree
	// contains the server-side dispatch span linked via the wire
	// annotation.
	if uint64(st.ServedTrees) < res.Succeeded {
		t.Errorf("%d served trees < %d successes: a completed call's dispatch span is missing or unlinked",
			st.ServedTrees, res.Succeeded)
	}
	if err := validChromeExport(tracer); err != nil {
		t.Error(err)
	}
}
