package experiment

import (
	"fmt"
	"time"

	ts "flick/internal/teststubs"
	"flick/rt"
)

// Workload names the three test methods of the paper.
type Workload string

const (
	Ints  Workload = "integer arrays"
	Rects Workload = "rectangle structure arrays"
	Dirs  Workload = "directory entry arrays"
)

// marshalCost measures one compiler's marshal time for one workload at
// one encoded payload size.
func marshalCost(c *Compiler, w Workload, size int) time.Duration {
	switch w {
	case Ints:
		v := IntArray(size)
		return MeasureMarshal(func(e *rt.Encoder) { c.MarshalInts(e, v) })
	case Rects:
		v := RectArray(size)
		return MeasureMarshal(func(e *rt.Encoder) { c.MarshalRects(e, v) })
	default:
		v := DirArray(size)
		return MeasureMarshal(func(e *rt.Encoder) { c.MarshalDirs(e, v) })
	}
}

// unmarshalCost measures the decode time (payload produced by the same
// compiler).
func unmarshalCost(c *Compiler, w Workload, size int) (time.Duration, error) {
	var e rt.Encoder
	switch w {
	case Ints:
		v := IntArray(size)
		c.MarshalInts(&e, v)
		return MeasureUnmarshal(e.Bytes(), func(d *rt.Decoder) error {
			_, err := c.UnmarshalInts(d)
			return err
		})
	case Rects:
		v := RectArray(size)
		c.MarshalRects(&e, v)
		return MeasureUnmarshal(e.Bytes(), func(d *rt.Decoder) error {
			_, err := c.UnmarshalRects(d)
			return err
		})
	default:
		v := DirArray(size)
		c.MarshalDirs(&e, v)
		return MeasureUnmarshal(e.Bytes(), func(d *rt.Decoder) error {
			_, err := c.UnmarshalDirs(d)
			return err
		})
	}
}

// Fig3 regenerates the marshal-throughput figure for one workload:
// throughput (MB/s) of each compiler's marshal code across message
// sizes, independent of any transport.
func Fig3(w Workload) *Report {
	compilers := Compilers()
	sizes := Fig3IntSizes()
	if w == Dirs {
		sizes = Fig3DirSizes()
	}
	rep := &Report{
		Title: fmt.Sprintf("Figure 3: marshal throughput (MB/s), %s", w),
		Cols:  []string{"size"},
		Notes: []string{
			"paper: Flick marshals 2-5x faster than other compilers for small messages, 5-17x for large",
			"ORBeline/ILU are interpretive marshalers (reflection), as in the original systems",
		},
	}
	for _, c := range compilers {
		rep.Cols = append(rep.Cols, c.Name)
	}
	for _, size := range sizes {
		row := []string{sizeLabel(size)}
		for i := range compilers {
			t := marshalCost(&compilers[i], w, size)
			row = append(row, mbps(size, t.Seconds()))
		}
		rep.AddRow(row...)
	}
	return rep
}

// Table2 regenerates the object-code-size comparison: the paper measured
// compiled stub bytes for the directory interface; we report generated
// source bytes for the equivalent stubs (inlining can shrink stubs: the
// Flick output stays comparable to the naive output despite doing far
// more per call-site).
func Table2() *Report {
	rep := &Report{
		Title: "Table 2: generated stub code sizes (bytes of stub source, directory interface)",
		Cols:  []string{"compiler", "stub bytes", "runtime library"},
		Notes: []string{
			"paper reports compiled object bytes on SPARC; source bytes preserve the ordering argument",
			"interpretive systems (ILU, ORBeline) have tiny per-interface stubs but carry the interpreter as runtime",
		},
	}
	for _, cfg := range []struct {
		name    string
		style   string
		runtime string
	}{
		{"rpcgen", "rpcgen", "rt (checked put/get path)"},
		{"PowerRPC", "powerrpc", "rt + dispatch vtable"},
		{"Flick/ONC", "flick", "rt (unchecked fast path)"},
		{"ILU", "", "interp (reflective walker)"},
		{"ORBeline", "", "interp + runtime layers"},
	} {
		if cfg.style == "" {
			rep.AddRow(cfg.name, "~0 (interpreted)", cfg.runtime)
			continue
		}
		n, err := generatedStubBytes(cfg.style)
		if err != nil {
			rep.AddRow(cfg.name, "error: "+err.Error(), cfg.runtime)
			continue
		}
		rep.AddRow(cfg.name, fmt.Sprintf("%d", n), cfg.runtime)
	}
	return rep
}

// Table3 prints the tested-compiler matrix.
func Table3() *Report {
	rep := &Report{
		Title: "Table 3: tested IDL compilers and their attributes",
		Cols:  []string{"compiler", "origin (modeled)", "IDL", "encoding", "transport"},
	}
	for _, c := range Compilers() {
		rep.AddRow(c.Name, c.Origin, c.IDL, c.Encoding, c.Wire)
	}
	rep.AddRow("Flick/Mach", "Utah", "ONC", "Mach3", "Mach3 IPC")
	rep.AddRow("MIG", "CMU", "MIG", "Mach3", "Mach3 IPC")
	return rep
}

var _ = ts.BenchIDL
