package experiment

import (
	"fmt"
	"sync"
	"time"

	"flick/internal/netsim"
	ts "flick/internal/teststubs"
	"flick/rt"
)

// This file regenerates the pipelining experiment: end-to-end RPC
// throughput as a function of the number of calls a single multiplexed
// client keeps in flight. Depth 1 is the serialized round-trip model
// every figure in the paper assumes; depth > 1 exercises the concurrent
// call engine (XID-multiplexed client, worker-pool server) over a
// simulated link whose propagation delay can be overlapped but whose
// line occupancy cannot.

// simEnd wraps one end of an rt.Pipe with a netsim.Link cost model.
// Send charges the transmission time under a per-direction line mutex
// (concurrent senders serialize on the wire, exactly like a real NIC)
// and then delivers the message after the link's fixed per-message
// latency has elapsed; deliveries stay in order but their latencies
// overlap, which is what pipelined calls exploit.
type simEnd struct {
	rt.Conn // Recv and Close pass through to the pipe end
	link    netsim.Link
	mu      sync.Mutex // the line: one frame at a time
	q       chan simMsg
	done    chan struct{}
	once    sync.Once
}

type simMsg struct {
	msg []byte
	due time.Time
}

func newSimEnd(inner rt.Conn, link netsim.Link) *simEnd {
	s := &simEnd{Conn: inner, link: link, q: make(chan simMsg, 1024), done: make(chan struct{})}
	go s.forward()
	return s
}

// SimPipe returns two connected endpoints whose exchanges cost what the
// modeled link charges: TxTime line occupancy per message plus
// PerMessage propagation, with propagation overlapping across messages.
func SimPipe(link netsim.Link) (rt.Conn, rt.Conn) {
	a, b := rt.Pipe()
	return newSimEnd(a, link), newSimEnd(b, link)
}

func (s *simEnd) Send(msg []byte) error {
	select {
	case <-s.done:
		return rt.ErrClosed
	default:
	}
	out := make([]byte, len(msg))
	copy(out, msg) // the caller may reuse its buffer after Send
	s.mu.Lock()
	time.Sleep(s.link.PerFrame + s.link.TxTime(len(msg))) // occupy the line
	due := time.Now().Add(s.link.PerMessage)
	select {
	case s.q <- simMsg{out, due}: // in order, under the line mutex
		s.mu.Unlock()
		return nil
	case <-s.done:
		s.mu.Unlock()
		return rt.ErrClosed
	}
}

// forward delivers queued messages once their propagation delay elapses.
func (s *simEnd) forward() {
	for {
		select {
		case m := <-s.q:
			if d := time.Until(m.due); d > 0 {
				time.Sleep(d)
			}
			if s.Conn.Send(m.msg) != nil {
				return
			}
		case <-s.done:
			return
		}
	}
}

func (s *simEnd) Close() error {
	s.once.Do(func() { close(s.done) })
	return s.Conn.Close()
}

// pipelineImpl answers Sum requests; the reply is a single int32, so the
// request payload dominates the wire.
type pipelineImpl struct{}

func (pipelineImpl) SendInts(v []int32) error            { return nil }
func (pipelineImpl) SendRects(v []ts.BenchRect) error    { return nil }
func (pipelineImpl) SendDirs(v []ts.BenchDirEntry) error { return nil }
func (pipelineImpl) Ping(nonce int32) error              { return nil }
func (pipelineImpl) Sum(v []int32) (int32, error) {
	var s int32
	for _, x := range v {
		s += x
	}
	return s, nil
}
func (pipelineImpl) ListDir(path string) ([]ts.BenchDirEntry, int32, error) {
	return nil, 0, nil
}

// Pipeline sweeps in-flight depth x payload size over the 100Mbps
// Ethernet model and reports throughput per cell.
func Pipeline() *Report {
	return pipelineReport(netsim.Ethernet100, []int{1, 2, 4, 8, 16}, []int{64, 4 << 10}, 96)
}

func pipelineReport(link netsim.Link, depths, payloads []int, calls int) *Report {
	rep := &Report{
		Title: fmt.Sprintf("Pipelined RPC throughput vs in-flight depth (%s)", link),
		Cols:  []string{"payload", "depth", "calls/s", "goodput Mbps", "speedup"},
		Notes: []string{
			"one XID-multiplexed client, Sum() round trips; server Workers=16",
			"depth 1 = serialized round trips (the pre-pipelining engine); depth D keeps D calls in flight",
			"propagation delay overlaps across in-flight calls; line occupancy (TxTime) cannot, so",
			"small payloads keep scaling with depth while 4K payloads plateau once the request line",
			"serializes (absolute numbers are inflated by the host's sleep granularity; the shape is the result)",
		},
	}
	for _, payload := range payloads {
		ints := IntArray(payload)
		var base float64
		for _, depth := range depths {
			cps := pipelineCell(link, ints, depth, calls)
			if depth == depths[0] {
				base = cps
			}
			rep.AddRow(
				sizeLabel(payload),
				fmt.Sprintf("%d", depth),
				fmt.Sprintf("%.0f", cps),
				fmt.Sprintf("%.1f", cps*float64(payload)*8/1e6),
				fmt.Sprintf("%.1fx", cps/base),
			)
		}
	}
	return rep
}

// pipelineCell measures one (depth, payload) cell: depth goroutines
// share one multiplexed client and issue `calls` Sum round trips total.
func pipelineCell(link netsim.Link, ints []int32, depth, calls int) float64 {
	clientEnd, serverEnd := SimPipe(link)
	srv := rt.NewServer(rt.ONC{})
	srv.Workers = 16
	done := make(chan struct{})
	ts.RegisterBenchXDR(srv, pipelineImpl{})
	go func() { defer close(done); srv.ServeConn(serverEnd) }()

	c := ts.NewBenchXDRClient(clientEnd)
	per := calls / depth
	if per < 1 {
		per = 1
	}
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < depth; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := c.Sum(ints); err != nil {
					panic(err)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	clientEnd.Close()
	<-done
	serverEnd.Close()
	return float64(per*depth) / elapsed.Seconds()
}
