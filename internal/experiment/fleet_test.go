package experiment

import (
	"strconv"
	"testing"
)

// TestFleetShort is the acceptance gate for the scale-out fabric: a
// reduced sweep (CI-sized, run under -race) in which every call must
// succeed — overload is shed and retried, never failed — and the
// fabric must beat the single-session baseline on small calls once
// clients pile up, with real multi-message batches on the wire.
func TestFleetShort(t *testing.T) {
	cfg := FleetConfig{Clients: []int{100, 800}, TotalCalls: 800}
	if testing.Short() {
		cfg = FleetConfig{Clients: []int{200}, TotalCalls: 300}
	}
	cfg.defaults()

	for _, n := range cfg.Clients {
		base := fleetCell(cfg, n, false)
		fab := fleetCell(cfg, n, true)
		t.Logf("clients=%d: baseline %.0f calls/s, fabric %.0f calls/s (%.1fx), batch x%.1f, %d rejects, %d errors",
			n, base.callsPerSec, fab.callsPerSec, fab.callsPerSec/base.callsPerSec,
			fab.batchFactor, fab.rejects, base.errors+fab.errors)

		if base.errors != 0 || fab.errors != 0 {
			t.Errorf("clients=%d: %d baseline / %d fabric calls failed; graceful degradation requires 0",
				n, base.errors, fab.errors)
		}
		// The tentpole claim: on ≤64B calls at high client counts the
		// batching fabric beats the unbatched single-session engine.
		if fab.callsPerSec <= base.callsPerSec {
			t.Errorf("clients=%d: fabric %.0f calls/s did not beat baseline %.0f",
				n, fab.callsPerSec, base.callsPerSec)
		}
		if fab.batchFactor <= 1 {
			t.Errorf("clients=%d: no multi-message batches formed (factor %s)",
				n, strconv.FormatFloat(fab.batchFactor, 'f', 1, 64))
		}
	}
}
