package experiment

import (
	"runtime"
	"testing"
	"time"
)

// TestStreamChaosSoak is the acceptance gate for the streaming surface
// under fire: fetch transfers through a link injecting a combined ~5%
// fault rate — including mid-stream kills (resets) and corruption —
// must each either deliver the complete blob byte-identical or end in a
// classified error, with zero pooled-buffer leaks and zero goroutine
// growth. Run it with -race.
func TestStreamChaosSoak(t *testing.T) {
	transfers := 200
	if testing.Short() {
		transfers = 64
	}
	goroutinesBefore := runtime.NumGoroutine()

	res, err := RunStreamChaos(StreamChaosConfig{
		Transfers:   transfers,
		Consumers:   8,
		Seed:        1,
		Plan:        DefaultChaosPlan(0.05),
		CancelEvery: 7,
	})
	if err != nil {
		t.Fatal(err)
	}

	t.Logf("stream chaos: %d transfers, %d complete, %d canceled, %d seq-damaged, "+
		"%d/%d/%d failed (broken/timeout/system), %d chunks, %d faults, %d crc drops, "+
		"%d redials, sync %d/%d failed, async %d/%d failed, %v wall",
		res.Transfers, res.Completed, res.Canceled, res.SeqDamage,
		res.FailedBroken, res.FailedTimeout, res.FailedSystem, res.ChunksDelivered,
		res.FaultsInjected, res.ChecksumRejects, res.Reconnects,
		res.SyncFailed, res.SyncCalls, res.AsyncFailed, res.AsyncCalls, res.Wall)

	// Hard invariants: never wrong bytes, never an unclassified terminal.
	if res.Mismatches != 0 {
		t.Errorf("corruption reached a consumer: %d wrong transfers/answers", res.Mismatches)
	}
	if res.FailedOther != 0 {
		t.Errorf("%d stream terminals carried no classification", res.FailedOther)
	}
	if res.CallsUnclassified != 0 {
		t.Errorf("%d interleaved call failures carried no retry classification", res.CallsUnclassified)
	}
	if res.Transfers != uint64((transfers/8)*8) {
		t.Errorf("transfers = %d, want %d (a consumer hung or double-counted)",
			res.Transfers, (transfers/8)*8)
	}
	// The soak must actually exercise the machinery: faults injected,
	// damage rejected or sequence-detected, cancels confirmed, and some
	// transfers surviving intact.
	if res.FaultsInjected == 0 {
		t.Error("no faults injected: the soak tested a clean wire")
	}
	if res.ChecksumRejects == 0 {
		t.Error("no frames rejected: corruption/truncation never hit the integrity layer")
	}
	if res.Completed == 0 {
		t.Error("no transfer completed: the stream path is dead under chaos")
	}
	if res.Canceled == 0 {
		t.Error("no deliberate cancel confirmed ErrStreamCanceled")
	}
	if failed := res.SeqDamage + res.FailedBroken + res.FailedTimeout + res.FailedSystem; failed == 0 {
		t.Error("no transfer failed at a 5% fault rate: the chaos never touched a stream")
	}
	// Leak invariants: pools balanced, goroutines bounded.
	if !res.PoolDelta.Balanced() {
		t.Errorf("pooled buffers leaked under stream chaos: %+v", res.PoolDelta)
	}
	deadline := time.Now().Add(3 * time.Second)
	for runtime.NumGoroutine() > goroutinesBefore+2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > goroutinesBefore+2 {
		t.Errorf("goroutines grew %d -> %d after quiescence", goroutinesBefore, now)
	}
}

// TestStreamChaosCleanWire pins the degenerate case: at a 0% fault rate
// every non-canceled transfer completes byte-identical, with no
// failures, no redials, and balanced pools.
func TestStreamChaosCleanWire(t *testing.T) {
	goroutinesBefore := runtime.NumGoroutine()
	res, err := RunStreamChaos(StreamChaosConfig{
		Transfers: 64, Consumers: 4, Seed: 2, CancelEvery: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed+res.Canceled != res.Transfers {
		t.Errorf("clean wire: %d complete + %d canceled of %d transfers",
			res.Completed, res.Canceled, res.Transfers)
	}
	if res.Mismatches != 0 || res.FailedOther != 0 || res.SeqDamage != 0 ||
		res.FailedBroken != 0 || res.FailedTimeout != 0 || res.FailedSystem != 0 {
		t.Errorf("clean wire saw failures: %+v", res)
	}
	if res.SyncFailed != 0 || res.AsyncFailed != 0 {
		t.Errorf("clean wire failed calls: sync %d, async %d", res.SyncFailed, res.AsyncFailed)
	}
	if !res.PoolDelta.Balanced() {
		t.Errorf("clean wire leaked pooled buffers: %+v", res.PoolDelta)
	}
	deadline := time.Now().Add(3 * time.Second)
	for runtime.NumGoroutine() > goroutinesBefore+2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > goroutinesBefore+2 {
		t.Errorf("goroutines grew %d -> %d after quiescence", goroutinesBefore, now)
	}
}
