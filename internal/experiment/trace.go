package experiment

import (
	"bytes"
	"encoding/json"
	"fmt"

	"flick/rt"
)

// Tracing experiments: what does distributed tracing cost, and do the
// spans it records actually reassemble into complete call trees?
//
// The overhead sweep drives the chaos harness's loopback stub workload
// over a clean link at increasing sampling rates — no tracer at all
// (the nil-test fast path), a tracer that samples nothing (the
// declined-sample fast path), head-based 1% sampling (the production
// setting), and 100% (every call pays full span recording on both
// ends). The soak turns the faults on WITH 100% sampling and verifies
// tree completeness; TestTraceSoak pins it in CI (make trace-short).

// Debug, when set (flick-bench -debug-addr), is the live debug surface
// experiments publish their runtime pieces into: RunChaos republishes
// its client metrics, pool, and tracer on every run, so an operator can
// watch a long soak's /delta rates and recent spans while it runs.
var Debug *rt.Debug

// TreeStats summarizes a span-tree verification pass over one ring.
type TreeStats struct {
	// Spans and Traces count what the ring held.
	Spans, Traces int
	// CallTrees counts traces rooted in a client call or pool call —
	// one per traced invocation.
	CallTrees int
	// ServedTrees counts call trees that contain at least one
	// server-side dispatch span (under faults, a dropped request
	// legitimately leaves a tree with attempts but no dispatch).
	ServedTrees int
	// MultiRoot and Orphans are the malformations: traces with more
	// than one parentless span, and spans whose parent is missing from
	// their trace. Both must be zero when the ring held every span.
	MultiRoot, Orphans int
}

// VerifySpanTrees checks that every trace in spans forms one
// well-formed tree: exactly one root, every other span's parent
// present. The ring must not have wrapped (Dropped() == 0) for the
// zero-orphan invariant to be meaningful.
func VerifySpanTrees(spans []*rt.Span) TreeStats {
	st := TreeStats{Spans: len(spans)}
	for _, group := range rt.SpansByTrace(spans) {
		st.Traces++
		byID := make(map[uint64]*rt.Span, len(group))
		roots := 0
		for _, sp := range group {
			byID[sp.ID] = sp
		}
		served := false
		for _, sp := range group {
			if sp.Parent == 0 {
				roots++
				continue
			}
			if _, ok := byID[sp.Parent]; !ok {
				st.Orphans++
			}
			if sp.Kind == rt.SpanServerDispatch {
				served = true
			}
		}
		if roots > 1 {
			st.MultiRoot++
		}
		if roots == 1 {
			switch group[0].Kind {
			case rt.SpanClientCall, rt.SpanPoolCall:
				st.CallTrees++
				if served {
					st.ServedTrees++
				}
			}
		}
	}
	return st
}

// RunTraceSoak is the traced chaos soak: pooled sessions over faulty
// links at the given combined fault rate, 100% sampling, a ring sized
// to hold every span of the run. It returns the chaos result, the tree
// verification, and the tracer (for export checks).
func RunTraceSoak(calls int, faultRate float64, seed int64) (*ChaosResult, TreeStats, *rt.Tracer, error) {
	tracer := &rt.Tracer{SampleRate: 1, RingSize: 1 << 17, Seed: uint64(seed)}
	res, err := RunChaos(ChaosConfig{
		Calls: calls, Callers: 8, Seed: seed,
		Plan:     DefaultChaosPlan(faultRate),
		PoolSize: 4, Tracer: tracer,
	})
	if err != nil {
		return nil, TreeStats{}, nil, err
	}
	return res, VerifySpanTrees(tracer.Spans()), tracer, nil
}

// Trace is the -exp trace report: per-call cost of the tracing layer at
// increasing sampling rates over a clean loopback link, then one faulty
// soak row proving the spans recorded under chaos still assemble into
// complete trees.
func Trace() *Report {
	return traceReport(8000)
}

func traceReport(calls int) *Report {
	rep := &Report{
		Title: "Tracing overhead and tree completeness",
		Cols: []string{"config", "calls", "ok", "wall ms", "us/call",
			"spans", "call trees", "served", "orphans"},
		Notes: []string{
			"loopback Sum() through the chaos harness, clean link; tracing layered on in stages",
			"'off' has no Tracer attached (nil-test fast path); '0%' attaches one that samples nothing",
			"the 5%-faults row runs at 100% sampling: orphans must be 0 — every span's parent is in its trace",
		},
	}
	type stage struct {
		name   string
		rate   float64
		attach bool
		faults float64
	}
	stages := []stage{
		{"off", 0, false, 0},
		{"0%", 0, true, 0},
		{"1%", 0.01, true, 0},
		{"100%", 1, true, 0},
		{"100% + 5% faults", 1, true, 0.05},
	}
	for _, sg := range stages {
		var tracer *rt.Tracer
		if sg.attach {
			tracer = &rt.Tracer{SampleRate: sg.rate, RingSize: 1 << 17, Seed: 1}
		}
		res, err := RunChaos(ChaosConfig{
			Calls: calls, Callers: 8, Seed: 1,
			Plan:     DefaultChaosPlan(sg.faults),
			PoolSize: 4, Tracer: tracer,
		})
		if err != nil {
			rep.AddRow(sg.name, "error: "+err.Error())
			continue
		}
		var st TreeStats
		if tracer != nil {
			st = VerifySpanTrees(tracer.Spans())
		}
		perCall := float64(res.Wall.Microseconds()) / float64(res.Calls)
		rep.AddRow(
			sg.name,
			fmt.Sprintf("%d", res.Calls),
			fmt.Sprintf("%d", res.Succeeded),
			fmt.Sprintf("%.1f", float64(res.Wall.Milliseconds())),
			fmt.Sprintf("%.2f", perCall),
			fmt.Sprintf("%d", st.Spans),
			fmt.Sprintf("%d", st.CallTrees),
			fmt.Sprintf("%d", st.ServedTrees),
			fmt.Sprintf("%d", st.Orphans),
		)
	}
	return rep
}

// validChromeExport renders the ring as Chrome trace_event JSON and
// checks it parses; the soak test uses it so a malformed export fails
// in CI rather than in the browser.
func validChromeExport(tr *rt.Tracer) error {
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		return err
	}
	if !json.Valid(buf.Bytes()) {
		return fmt.Errorf("chrome trace export is not valid JSON (%d bytes)", buf.Len())
	}
	return nil
}
