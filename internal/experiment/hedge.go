package experiment

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	ts "flick/internal/teststubs"
	"flick/rt"
)

// This file is the hedged-request experiment: a pool over a server
// whose handler latency is bimodal — almost always fast, occasionally
// stuck behind a ~10ms stall (a GC pause, a slow disk, a deep queue).
// Hedging launches a second attempt on a different session once the
// first has outlived the operation's observed p95, and the first
// well-formed reply wins. The claim under test is the classic
// tail-at-scale one: a small, bounded amount of duplicate work buys a
// large p99 reduction, and the duplicate work is bounded by the hedge
// rate the delay percentile implies.

// HedgeConfig parameterizes one bimodal-latency run.
type HedgeConfig struct {
	// Calls is the number of Sum round trips (default 4000), split
	// across Callers goroutines (default 4).
	Calls   int
	Callers int
	Seed    int64
	// Sessions is the pool size (default 4).
	Sessions int
	// SlowProb is the per-request probability of a slow handler
	// (default 0.05); SlowDelay is the stall (default 10ms).
	SlowProb  float64
	SlowDelay time.Duration
	// Hedge enables hedging with this policy; nil runs the baseline.
	Hedge *rt.HedgePolicy
}

// HedgeResult is one run's latency distribution plus hedge accounting.
type HedgeResult struct {
	Calls                  uint64
	Mismatches             uint64
	Errors                 uint64
	P50, P95, P99          time.Duration
	HedgedCalls, HedgeWins uint64
	CancelsSent            uint64
	Wall                   time.Duration
}

// hedgeImpl wraps the pipeline implementation with a bimodal Sum: a
// seeded per-request draw decides whether this execution stalls.
// Because the draw is per execution, a hedged duplicate on another
// session draws independently — which is exactly the situation where
// hedging pays.
type hedgeImpl struct {
	pipelineImpl
	mu    sync.Mutex
	rng   *rand.Rand
	prob  float64
	delay time.Duration
}

func (h *hedgeImpl) Sum(v []int32) (int32, error) {
	h.mu.Lock()
	slow := h.rng.Float64() < h.prob
	h.mu.Unlock()
	if slow {
		time.Sleep(h.delay)
	}
	return h.pipelineImpl.Sum(v)
}

// RunHedge executes one bimodal-latency run.
func RunHedge(cfg HedgeConfig) (*HedgeResult, error) {
	if cfg.Calls <= 0 {
		cfg.Calls = 4000
	}
	if cfg.Callers <= 0 {
		cfg.Callers = 4
	}
	if cfg.Sessions <= 0 {
		cfg.Sessions = 4
	}
	if cfg.SlowProb <= 0 {
		cfg.SlowProb = 0.05
	}
	if cfg.SlowDelay <= 0 {
		cfg.SlowDelay = 10 * time.Millisecond
	}

	clientMetrics := rt.NewMetrics()
	impl := &hedgeImpl{
		rng:   rand.New(rand.NewSource(cfg.Seed + 31)),
		prob:  cfg.SlowProb,
		delay: cfg.SlowDelay,
	}
	srv := rt.NewServer(rt.ONC{})
	srv.Workers = 8
	ts.RegisterBenchXDR(srv, impl)

	var serveWG sync.WaitGroup
	pool, err := rt.NewClientPool(rt.PoolConfig{
		Size: cfg.Sessions,
		Dial: func(int) (rt.Conn, error) {
			clientSide, serverSide := rt.Pipe()
			serveWG.Add(1)
			go func() { defer serveWG.Done(); srv.ServeConn(serverSide) }()
			return clientSide, nil
		},
		Proto:   rt.ONC{},
		Timeout: time.Second,
		Hedge:   cfg.Hedge,
		Metrics: clientMetrics,
	})
	if err != nil {
		return nil, err
	}

	res := &HedgeResult{}
	per := cfg.Calls / cfg.Callers
	if per < 1 {
		per = 1
	}
	lats := make([][]time.Duration, cfg.Callers)
	var wg sync.WaitGroup
	var resMu sync.Mutex
	start := time.Now()
	for g := 0; g < cfg.Callers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(g)*1000003))
			v := make([]int32, 16)
			local := make([]time.Duration, 0, per)
			var mismatches, errs uint64
			for i := 0; i < per; i++ {
				n := 1 + rng.Intn(len(v))
				var want int32
				for j := 0; j < n; j++ {
					v[j] = int32(rng.Intn(1 << 20))
					want += v[j]
				}
				t0 := time.Now()
				d, err := pool.CallIdem(3, "sum", false, true, func(e *rt.Encoder) {
					ts.MarshalBenchSumXDRRequest(e, v[:n])
				})
				var ret int32
				if err == nil {
					ret, err = ts.UnmarshalBenchSumXDRReply(d)
					d.Release()
				}
				local = append(local, time.Since(t0))
				switch {
				case err != nil:
					errs++
				case ret != want:
					mismatches++
				}
			}
			lats[g] = local
			resMu.Lock()
			res.Mismatches += mismatches
			res.Errors += errs
			resMu.Unlock()
		}(g)
	}
	wg.Wait()
	res.Wall = time.Since(start)
	pool.Close()
	serveWG.Wait()

	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	res.Calls = uint64(len(all))
	pick := func(q float64) time.Duration {
		if len(all) == 0 {
			return 0
		}
		i := int(q * float64(len(all)-1))
		return all[i]
	}
	res.P50, res.P95, res.P99 = pick(0.50), pick(0.95), pick(0.99)
	res.HedgedCalls = clientMetrics.HedgedCalls.Load()
	res.HedgeWins = clientMetrics.HedgeWins.Load()
	res.CancelsSent = clientMetrics.CancelsSent.Load()
	return res, nil
}

// Hedge reports the bimodal-latency workload with hedging off and on:
// the hedged row must cut p99 (the 10ms mode all but vanishes from the
// tail) while the hedge rate stays near the slow-mode probability —
// that is the "bounded duplicate work" half of the claim.
func Hedge() *Report {
	rep := &Report{
		Title: "Hedged requests: bimodal server latency, pool of 4 sessions",
		Cols: []string{"mode", "calls", "p50", "p95", "p99", "hedged",
			"hedge rate", "wins", "cancels", "wrong", "errors"},
		Notes: []string{
			"handler stalls 10ms with probability 5% per execution (independent per attempt); pool hedges idempotent calls after max(op p95, 1ms)",
			"the winner's reply is kept, the loser is canceled via the cancel frame (released server-side, decoder collected)",
			"'hedged' counts second attempts launched (duplicate work, bounded by the hedge rate); 'wrong' must be 0",
		},
	}
	for _, mode := range []struct {
		name  string
		hedge *rt.HedgePolicy
	}{
		{"off", nil},
		{"on", &rt.HedgePolicy{Percentile: 0.95, MinDelay: time.Millisecond}},
	} {
		res, err := RunHedge(HedgeConfig{Calls: 4000, Callers: 4, Seed: 1, Hedge: mode.hedge})
		if err != nil {
			rep.AddRow(mode.name, "error: "+err.Error())
			continue
		}
		rate := "0%"
		if res.Calls > 0 {
			rate = fmt.Sprintf("%.1f%%", 100*float64(res.HedgedCalls)/float64(res.Calls))
		}
		rep.AddRow(
			mode.name,
			fmt.Sprintf("%d", res.Calls),
			res.P50.Round(time.Microsecond).String(),
			res.P95.Round(time.Microsecond).String(),
			res.P99.Round(time.Microsecond).String(),
			fmt.Sprintf("%d", res.HedgedCalls),
			rate,
			fmt.Sprintf("%d", res.HedgeWins),
			fmt.Sprintf("%d", res.CancelsSent),
			fmt.Sprintf("%d", res.Mismatches),
			fmt.Sprintf("%d", res.Errors),
		)
	}
	return rep
}
