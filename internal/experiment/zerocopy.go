package experiment

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"flick/internal/zcstubs"
	"flick/rt"
)

// This file measures what the zero-copy prover licenses: bulk round
// trips over -zerocopy stubs on real loopback TCP, with the payload
// marshalled by reference and written with writev, against the same
// stubs forced through the flattening fallback (a transport that hides
// its writev capability, so every send reassembles the message into
// one contiguous buffer — the copy the prover exists to delete).

// zcStore is the sweep's server: Put copies payloads out of the
// receive arena, Get returns the stored bytes by reference.
type zcStore struct {
	mu sync.Mutex
	m  map[string][]byte
}

func (s *zcStore) Get(name string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m[name], nil
}

func (s *zcStore) Put(name string, data []byte) (uint32, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[name] = append([]byte(nil), data...)
	return uint32(len(data)), nil
}

// zcFlatten hides the underlying transport's writev capability:
// interface embedding forwards only Conn's methods, so sendEncoded
// must flatten every aliased message.
type zcFlatten struct{ rt.Conn }

// ZeroCopy sweeps bulk Put round trips across payload sizes on
// loopback TCP, vectored vs flattened, and reports throughput plus the
// per-call byte counters that prove which path ran.
func ZeroCopy() *Report {
	rep := &Report{
		Title: "Zero-copy bulk transfer: writev vs flatten on loopback TCP (-zerocopy stubs)",
		Cols:  []string{"payload", "path", "calls/s", "MB/s", "aliased B/call", "copied B/call", "speedup"},
		Notes: []string{
			"one Store.Put round trip per call; the payload marshals through PutBytesZC",
			"vectored: the TCP transport writes [header | sealed prefix | payload] with writev",
			"flattened: a wrapper hides writev, so every send reassembles one contiguous buffer",
			"aliased/copied B/call are rt.ZeroCopyStats deltas: the proof of which path ran",
			"payloads below the 512 B threshold copy by design (segment bookkeeping would cost",
			"more than the copy); the sweep starts above it",
			"(loopback TCP round trips are syscall-bound; the spread grows with payload size)",
		},
	}
	for _, size := range []int{1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20} {
		rounds := 4 << 20 / size
		if rounds < 32 {
			rounds = 32
		}
		var base float64
		for _, vectored := range []bool{true, false} {
			cps, mbps, aliased, copied := zeroCopyCell(size, rounds, vectored)
			if vectored {
				base = cps
			}
			path := "flattened"
			if vectored {
				path = "vectored"
			}
			rep.AddRow(
				sizeLabel(size),
				path,
				fmt.Sprintf("%.0f", cps),
				fmt.Sprintf("%.1f", mbps),
				fmt.Sprintf("%d", aliased),
				fmt.Sprintf("%d", copied),
				fmt.Sprintf("%.2fx", cps/base),
			)
		}
	}
	return rep
}

func zeroCopyCell(size, rounds int, vectored bool) (cps, mbps float64, aliasedPerCall, copiedPerCall uint64) {
	l, err := rt.ListenTCP("127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	defer l.Close()
	srv := rt.NewServer(rt.ONC{})
	zcstubs.RegisterStore(srv, &zcStore{m: map[string][]byte{}})
	go srv.Serve(l)

	conn, err := rt.DialTCP(l.Addr())
	if err != nil {
		panic(err)
	}
	if !vectored {
		conn = zcFlatten{conn}
	}
	c := zcstubs.NewStoreClient(conn)
	defer c.C.Close()

	payload := make([]byte, size)
	rand.New(rand.NewSource(int64(size))).Read(payload)

	// Warm the pools and the connection out of the timed region.
	if _, err := c.Put("warm", payload); err != nil {
		panic(err)
	}

	before := rt.ReadZeroCopyStats()
	start := time.Now()
	for i := 0; i < rounds; i++ {
		if _, err := c.Put("k", payload); err != nil {
			panic(err)
		}
	}
	elapsed := time.Since(start)
	d := rt.ReadZeroCopyStats().Sub(before)

	cps = float64(rounds) / elapsed.Seconds()
	mbps = float64(rounds*size) / 1e6 / elapsed.Seconds()
	aliasedPerCall = d.AliasedBytes / uint64(rounds)
	copiedPerCall = d.CopiedBytes / uint64(rounds)
	return cps, mbps, aliasedPerCall, copiedPerCall
}
