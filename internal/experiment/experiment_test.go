package experiment

import (
	"strconv"
	"strings"
	"testing"

	"flick/internal/netsim"
	"flick/rt"
)

func TestWorkloadSizes(t *testing.T) {
	// Encoded payload sizes must match the requested sizes exactly (the
	// paper's x-axes are encoded message sizes).
	compilers := Compilers()
	var flickONC *Compiler
	for i := range compilers {
		if compilers[i].Name == "Flick/ONC" {
			flickONC = &compilers[i]
		}
	}
	if flickONC == nil {
		t.Fatal("no Flick/ONC compiler")
	}
	var e rt.Encoder
	for _, n := range []int{64, 1024, 64 << 10} {
		e.Reset()
		flickONC.MarshalInts(&e, IntArray(n))
		if got := e.Len() - 4; got != n {
			t.Errorf("int payload = %d, want %d", got, n)
		}
		e.Reset()
		flickONC.MarshalRects(&e, RectArray(n))
		if got := e.Len() - 4; got != n {
			t.Errorf("rect payload = %d, want %d", got, n)
		}
	}
	for _, n := range []int{256, 1024, 64 << 10} {
		e.Reset()
		flickONC.MarshalDirs(&e, DirArray(n))
		if got := e.Len() - 4; got != n {
			t.Errorf("dir payload = %d, want %d (each entry must encode to 256B)", got, n)
		}
	}
}

func TestCompilerMatrixConsistency(t *testing.T) {
	// All compilers sharing an encoding must produce identical bytes.
	in := IntArray(1024)
	byEncoding := map[string][][]byte{}
	for _, c := range Compilers() {
		var e rt.Encoder
		c.MarshalInts(&e, in)
		key := c.Encoding
		if key == "IIOP" {
			key = "cdr-le"
		}
		byEncoding[key] = append(byEncoding[key], append([]byte(nil), e.Bytes()...))
	}
	for enc, all := range byEncoding {
		for i := 1; i < len(all); i++ {
			if string(all[i]) != string(all[0]) {
				t.Errorf("%s: compiler %d produced different bytes", enc, i)
			}
		}
	}
}

func TestMIGStubRoundTrip(t *testing.T) {
	mig := &MIGStub{}
	in := IntArray(1 << 10)
	msg := mig.MarshalInts(in)
	out, err := mig.UnmarshalInts(msg)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("lengths differ")
	}
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("slot %d", i)
		}
	}
	// Truncation detection.
	if _, err := mig.UnmarshalInts(msg[:len(msg)-2]); err == nil {
		t.Error("truncated MIG message accepted")
	}
	if _, err := mig.UnmarshalInts(msg[:10]); err == nil {
		t.Error("headerless MIG message accepted")
	}
}

func TestReportRendering(t *testing.T) {
	r := &Report{Title: "T", Cols: []string{"a", "bb"}, Notes: []string{"n"}}
	r.AddRow("x", "1")
	s := r.String()
	for _, frag := range []string{"T\n=", "a", "bb", "x", "note: n"} {
		if !strings.Contains(s, frag) {
			t.Errorf("report missing %q:\n%s", frag, s)
		}
	}
	if sizeLabel(64) != "64B" || sizeLabel(2048) != "2K" || sizeLabel(4<<20) != "4M" {
		t.Error("size labels")
	}
}

func TestPipelineReportShape(t *testing.T) {
	// A reduced sweep (fast link, few calls) so the test stays quick;
	// the full flick-bench run uses the Ethernet100 model. Depth
	// scaling itself is asserted by rt's pipeline tests — here we only
	// require that every (payload, depth) cell is measured and sane.
	link := netsim.Ethernet100.Scaled(8)
	rep := pipelineReport(link, []int{1, 4}, []int{64}, 16)
	if len(rep.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		if len(row) != len(rep.Cols) {
			t.Fatalf("row %v has %d cells, want %d", row, len(row), len(rep.Cols))
		}
		cps, err := strconv.ParseFloat(row[2], 64)
		if err != nil || cps <= 0 {
			t.Errorf("row %v: bad calls/s %q", row, row[2])
		}
	}
}

func TestTable2AndTable3(t *testing.T) {
	t2 := Table2().String()
	for _, frag := range []string{"rpcgen", "Flick/ONC", "interpreted"} {
		if !strings.Contains(t2, frag) {
			t.Errorf("table2 missing %q", frag)
		}
	}
	t3 := Table3().String()
	for _, frag := range []string{"PowerRPC", "MIG", "Mach3 IPC", "IIOP"} {
		if !strings.Contains(t3, frag) {
			t.Errorf("table3 missing %q", frag)
		}
	}
}
