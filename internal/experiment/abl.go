package experiment

import (
	"fmt"

	abl "flick/internal/ablstubs"
	ts "flick/internal/teststubs"
	"flick/rt"
)

// The ablation stub variants live in internal/ablstubs (same interface,
// one optimization disabled per build). The ablstubs package declares
// its own presented types, so workloads convert at the boundary (the
// conversion is outside the measured region).

func ablDirs(v []ts.BenchDirEntry) []abl.BenchDirEntry {
	out := make([]abl.BenchDirEntry, len(v))
	for i := range v {
		out[i].Name = v[i].Name
		out[i].Info.Fields = v[i].Info.Fields
		out[i].Info.Tag = v[i].Info.Tag
	}
	return out
}

func ablRects(v []ts.BenchRect) []abl.BenchRect {
	out := make([]abl.BenchRect, len(v))
	for i := range v {
		out[i] = abl.BenchRect{
			Min: abl.BenchPoint{X: v[i].Min.X, Y: v[i].Min.Y},
			Max: abl.BenchPoint{X: v[i].Max.X, Y: v[i].Max.Y},
		}
	}
	return out
}

var ablDirCache = map[string]func(*rt.Encoder, []abl.BenchDirEntry){
	"full":     abl.MarshalBenchSendDirsFullRequest,
	"nogroup":  abl.MarshalBenchSendDirsNoGroupRequest,
	"nochunk":  abl.MarshalBenchSendDirsNoChunkRequest,
	"nomemcpy": abl.MarshalBenchSendDirsNoMemcpyRequest,
	"noinline": abl.MarshalBenchSendDirsNoInlineRequest,
}

var ablRectCache = map[string]func(*rt.Encoder, []abl.BenchRect){
	"full":     abl.MarshalBenchSendRectsFullRequest,
	"nogroup":  abl.MarshalBenchSendRectsNoGroupRequest,
	"nochunk":  abl.MarshalBenchSendRectsNoChunkRequest,
	"nomemcpy": abl.MarshalBenchSendRectsNoMemcpyRequest,
	"noinline": abl.MarshalBenchSendRectsNoInlineRequest,
}

// conversion caches so the measured closures see stable inputs.
var ablDirsMemo = map[*ts.BenchDirEntry][]abl.BenchDirEntry{}

func marshalDirsAbl(e *rt.Encoder, v []ts.BenchDirEntry, variant string) {
	f, ok := ablDirCache[variant]
	if !ok {
		panic(fmt.Sprintf("experiment: unknown ablation variant %q", variant))
	}
	var key *ts.BenchDirEntry
	if len(v) > 0 {
		key = &v[0]
	}
	conv, seen := ablDirsMemo[key]
	if !seen || len(conv) != len(v) {
		conv = ablDirs(v)
		ablDirsMemo[key] = conv
	}
	f(e, conv)
}

var ablRectsMemo = map[*ts.BenchRect][]abl.BenchRect{}

func marshalRectsAbl(e *rt.Encoder, v []ts.BenchRect, variant string) {
	f, ok := ablRectCache[variant]
	if !ok {
		panic(fmt.Sprintf("experiment: unknown ablation variant %q", variant))
	}
	var key *ts.BenchRect
	if len(v) > 0 {
		key = &v[0]
	}
	conv, seen := ablRectsMemo[key]
	if !seen || len(conv) != len(v) {
		conv = ablRects(v)
		ablRectsMemo[key] = conv
	}
	f(e, conv)
}
