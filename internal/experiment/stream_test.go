package experiment

import (
	"strconv"
	"testing"
	"time"

	"flick/internal/netsim"
	ts "flick/internal/teststubs"
	"flick/rt"
)

func TestStreamReportShape(t *testing.T) {
	// A reduced sweep (fast link, small transfer) so the test stays
	// quick; the full flick-bench run uses the Ethernet100 model.
	// Window scaling itself is asserted by rt's stream tests — here we
	// only require that every (chunk, window) cell is measured, sane,
	// and delivered in full (streamCell panics on a short transfer).
	link := netsim.Ethernet100.Scaled(8)
	rep := streamReport(link, []int{1, 4}, []int{1 << 10}, 8<<10)
	if len(rep.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		if len(row) != len(rep.Cols) {
			t.Fatalf("row %v has %d cells, want %d", row, len(row), len(rep.Cols))
		}
		cps, err := strconv.ParseFloat(row[2], 64)
		if err != nil || cps <= 0 {
			t.Errorf("row %v: bad chunks/s %q", row, row[2])
		}
	}
}

// TestAsyncPipelineDepth16 is the async surface's acceptance bar: a
// single goroutine keeping 16 promises in flight over a simulated link
// must match the 16-goroutine sync pipeline — that is, clearly beat
// serialized depth-1 round trips — because both ride the same XID
// multiplexer. The bar is a conservative 2x (the propagation-dominated
// ideal is ~16x) so scheduler noise and -race overhead can't flake it.
func TestAsyncPipelineDepth16(t *testing.T) {
	link := netsim.Ethernet100.Scaled(4)
	ints := IntArray(64)
	const calls = 64

	sync := asyncPipelineCell(t, link, ints, 1, calls)
	async := asyncPipelineCell(t, link, ints, 16, calls)
	t.Logf("sync depth-1: %.0f calls/s, async depth-16: %.0f calls/s (%.1fx)",
		sync, async, async/sync)
	if async < 2*sync {
		t.Fatalf("async depth-16 = %.0f calls/s, sync depth-1 = %.0f calls/s; want >= 2x", async, sync)
	}
}

// asyncPipelineCell issues `calls` Sum invocations from one goroutine,
// keeping up to `depth` promises outstanding, and returns calls/s.
func asyncPipelineCell(t *testing.T, link netsim.Link, ints []int32, depth, calls int) float64 {
	t.Helper()
	clientEnd, serverEnd := SimPipe(link)
	srv := rt.NewServer(rt.ONC{})
	srv.Workers = 16
	ts.RegisterBenchXDR(srv, pipelineImpl{})
	done := make(chan struct{})
	go func() { defer close(done); srv.ServeConn(serverEnd) }()

	c := ts.NewBenchXDRClient(clientEnd)
	var want int32
	for _, x := range ints {
		want += x
	}
	window := make([]*ts.BenchSumXDRPromise, 0, depth)
	settle := func(pr *ts.BenchSumXDRPromise) {
		ret, err := pr.Wait()
		if err != nil {
			t.Errorf("SumAsync: %v", err)
		} else if ret != want {
			t.Errorf("SumAsync = %d, want %d", ret, want)
		}
	}
	start := time.Now()
	for i := 0; i < calls; i++ {
		if len(window) == depth {
			settle(window[0])
			window = window[1:]
		}
		window = append(window, c.SumAsync(ints))
	}
	for _, pr := range window {
		settle(pr)
	}
	elapsed := time.Since(start)
	clientEnd.Close()
	<-done
	serverEnd.Close()
	return float64(calls) / elapsed.Seconds()
}
