package experiment

import (
	"runtime"
	"testing"
	"time"

	"flick/rt"
)

// TestChaosDrainLossFree is the loss-free half of the lameduck
// acceptance gate: a clean link, a fleet of 4 servers drained and
// replaced one at a time while 8 callers hammer the pool. With no
// faults injected, EVERY call must succeed — a drained server that
// acknowledged GOAWAY answers everything it accepted, and everything
// it sheds afterwards is failover-safe and lands elsewhere. Run it
// with -race.
func TestChaosDrainLossFree(t *testing.T) {
	calls := 6000
	if testing.Short() {
		calls = 1500
	}
	goroutinesBefore := runtime.NumGoroutine()

	res, err := RunDrain(DrainConfig{Calls: calls, Callers: 8, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("drain: %d calls, %d ok, %d restarts (%d clean), %d goaways, %d drain sheds, %d redials, %d failovers, %v wall",
		res.Calls, res.Succeeded, res.Restarts, res.CleanDrains,
		res.GoAways, res.DrainRejects, res.Reconnects, res.SessionFailovers, res.Wall)

	// The loss-free invariant: nothing failed, nothing was wrong.
	if res.Succeeded != res.Calls {
		t.Errorf("lost calls on a clean link: %d/%d succeeded (%d/%d/%d/%d failed retryable/notretryable/breaker/other)",
			res.Succeeded, res.Calls,
			res.FailedRetryable, res.FailedNotRetryable, res.FailedBreaker, res.FailedOther)
	}
	if res.Mismatches != 0 {
		t.Errorf("%d wrong answers", res.Mismatches)
	}
	// The soak must actually exercise the drain machinery.
	if res.Restarts == 0 {
		t.Error("no restarts performed: the soak never drained a server")
	}
	if res.CleanDrains != res.Restarts {
		t.Errorf("%d/%d drains missed the settle deadline on a clean link", res.Restarts-res.CleanDrains, res.Restarts)
	}
	if res.GoAways == 0 {
		t.Error("no GOAWAY frames observed by clients")
	}
	if res.Reconnects == 0 {
		t.Error("no redials: drained sessions never reconnected to replacements")
	}
	if !res.PoolDelta.Balanced() {
		t.Errorf("pooled buffers leaked across drains: %+v", res.PoolDelta)
	}
	deadline := time.Now().Add(3 * time.Second)
	for runtime.NumGoroutine() > goroutinesBefore+2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > goroutinesBefore+2 {
		t.Errorf("goroutines grew %d -> %d after quiescence", goroutinesBefore, now)
	}
}

// TestChaosDrain layers rolling restarts on top of the 5% chaos soak:
// drains, GOAWAYs, redials, retries, and injected faults all at once.
// Classified failures are acceptable under chaos; wrong answers,
// unclassified errors, pool leaks, and goroutine growth are not. Run
// it with -race.
func TestChaosDrain(t *testing.T) {
	calls := 6000
	if testing.Short() {
		calls = 1500
	}
	goroutinesBefore := runtime.NumGoroutine()

	res, err := RunDrain(DrainConfig{
		Calls: calls, Callers: 8, Seed: 7,
		Plan: DefaultChaosPlan(0.05),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("chaos drain: %d calls, %d ok, %d/%d/%d/%d failed (retryable/notretryable/breaker/other), "+
		"%d restarts (%d clean), %d goaways, %d drain sheds, %d redials, %d failovers, %v wall",
		res.Calls, res.Succeeded,
		res.FailedRetryable, res.FailedNotRetryable, res.FailedBreaker, res.FailedOther,
		res.Restarts, res.CleanDrains, res.GoAways, res.DrainRejects,
		res.Reconnects, res.SessionFailovers, res.Wall)

	if res.Mismatches != 0 {
		t.Errorf("payload corruption reached the caller: %d wrong answers", res.Mismatches)
	}
	if res.FailedOther != 0 {
		t.Errorf("%d failures carried no retry classification", res.FailedOther)
	}
	if res.Restarts == 0 {
		t.Error("no restarts performed")
	}
	if res.Reconnects == 0 {
		t.Error("no redials under chaos + drain")
	}
	if res.Succeeded*10 < res.Calls*9 {
		t.Errorf("only %d/%d calls succeeded: drain + 5%% faults overwhelmed the stack",
			res.Succeeded, res.Calls)
	}
	if !res.PoolDelta.Balanced() {
		t.Errorf("pooled buffers leaked: %+v", res.PoolDelta)
	}
	deadline := time.Now().Add(3 * time.Second)
	for runtime.NumGoroutine() > goroutinesBefore+2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > goroutinesBefore+2 {
		t.Errorf("goroutines grew %d -> %d after quiescence", goroutinesBefore, now)
	}
}

// TestHedgeTail pins the hedging claim end to end: on a bimodal server
// (5% of executions stall 10ms) a hedging pool must cut p99 well below
// the stall, with duplicate work bounded near the slow-mode rate, and
// never a wrong answer. Run it with -race.
func TestHedgeTail(t *testing.T) {
	calls := 3000
	if testing.Short() {
		calls = 800
	}
	base, err := RunHedge(HedgeConfig{Calls: calls, Callers: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	hedged, err := RunHedge(HedgeConfig{
		Calls: calls, Callers: 4, Seed: 3,
		Hedge: &rt.HedgePolicy{Percentile: 0.95, MinDelay: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("baseline p50=%v p95=%v p99=%v; hedged p50=%v p95=%v p99=%v (%d hedges, %d wins, %d cancels)",
		base.P50, base.P95, base.P99, hedged.P50, hedged.P95, hedged.P99,
		hedged.HedgedCalls, hedged.HedgeWins, hedged.CancelsSent)

	if base.Mismatches != 0 || hedged.Mismatches != 0 {
		t.Errorf("wrong answers: baseline %d, hedged %d", base.Mismatches, hedged.Mismatches)
	}
	if base.Errors != 0 || hedged.Errors != 0 {
		t.Errorf("errors on a clean link: baseline %d, hedged %d", base.Errors, hedged.Errors)
	}
	// The baseline's p99 sits in the stall mode; hedging must pull it
	// out (comfortably below half the 10ms stall).
	if base.P99 < 5*time.Millisecond {
		t.Skipf("baseline p99 %v never reached the stall mode; host too noisy to assert", base.P99)
	}
	if hedged.P99 >= base.P99/2 {
		t.Errorf("hedging did not cut the tail: baseline p99 %v, hedged p99 %v", base.P99, hedged.P99)
	}
	if hedged.HedgedCalls == 0 {
		t.Error("no hedges launched")
	}
	// Duplicate work must stay bounded: the hedge rate tracks the slow
	// mode (5%) plus scheduling noise, nowhere near "hedge everything".
	if rate := float64(hedged.HedgedCalls) / float64(hedged.Calls); rate > 0.25 {
		t.Errorf("hedge rate %.1f%% is unbounded duplicate work", 100*rate)
	}
	if hedged.HedgeWins == 0 {
		t.Error("no hedge wins: the second attempt never beat a stalled primary")
	}
}
