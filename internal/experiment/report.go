package experiment

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Report is one regenerated table or figure, printable as aligned text.
type Report struct {
	Title string
	Notes []string
	Cols  []string
	Rows  [][]string
}

// AddRow appends one formatted row.
func (r *Report) AddRow(cells ...string) {
	r.Rows = append(r.Rows, cells)
}

// String renders the report.
func (r *Report) String() string {
	var b strings.Builder
	b.WriteString(r.Title + "\n")
	b.WriteString(strings.Repeat("=", len(r.Title)) + "\n")
	widths := make([]int, len(r.Cols))
	for i, c := range r.Cols {
		widths[i] = len(c)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(c)
			}
			if i == 0 {
				b.WriteString(c + strings.Repeat(" ", pad))
			} else {
				b.WriteString(strings.Repeat(" ", pad) + c)
			}
		}
		b.WriteString("\n")
	}
	line(r.Cols)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total) + "\n")
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		b.WriteString("note: " + n + "\n")
	}
	return b.String()
}

// JSON renders the report as a machine-readable document (the BENCH_*
// files committed alongside EXPERIMENTS.md are this form).
func (r *Report) JSON() string {
	doc := struct {
		Title string     `json:"title"`
		Notes []string   `json:"notes,omitempty"`
		Cols  []string   `json:"cols"`
		Rows  [][]string `json:"rows"`
	}{r.Title, r.Notes, r.Cols, r.Rows}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return fmt.Sprintf(`{"error":%q}`, err.Error())
	}
	return string(b)
}

func sizeLabel(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%dM", n>>20)
	case n >= 1<<10:
		return fmt.Sprintf("%dK", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}

func mbps(bytes int, secs float64) string {
	if secs <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f", float64(bytes)/secs/1e6)
}
