package experiment

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"flick/internal/netsim"
	ts "flick/internal/teststubs"
	"flick/rt"
)

// This file is the scale-out serving experiment: sustained small-call
// throughput as the number of simulated concurrent clients sweeps from
// hundreds to a hundred thousand. Two configurations face the same
// server logic over the same simulated links:
//
//   - baseline: the PR 2 engine — one XID-multiplexed client on one
//     unbatched connection, a worker-pool server, no admission control.
//     Every call pays the link's serialized per-frame cost alone.
//   - fabric: the scale-out stack — a ClientPool of sessions (each its
//     own line), adaptive batching on both ends amortizing the
//     per-frame cost across coalesced calls, and server-side admission
//     control shedding overload with a retryable reject instead of
//     unbounded queueing.
//
// The reproduction target is the *shape*: baseline throughput is capped
// by one line's frame rate no matter how many clients pile on, while
// the fabric's calls/s keeps climbing (more sessions, fatter batches)
// and degrades gracefully — zero failed calls — at the far end of the
// sweep.

// fleetLink models a modern fabric hop: the paper's 100Mbps Ethernet
// scaled 100x (today's CPU:network ratio, as in the other figures)
// plus a serialized per-frame cost representing the syscall/driver work
// a frame costs its sender — the term adaptive batching amortizes.
func fleetLink() netsim.Link {
	l := netsim.Ethernet100.Scaled(100)
	l.Name = "scaled Ethernet (x100) + 40us/frame"
	l.PerFrame = 40 * time.Microsecond
	return l
}

// FleetConfig parameterizes one sweep.
type FleetConfig struct {
	// Clients are the simulated concurrent client counts to sweep.
	Clients []int
	// TotalCalls is the per-cell call target; each client issues
	// max(1, TotalCalls/N) calls, so cells with N > TotalCalls issue N.
	TotalCalls int
	// Sessions is the fabric's pool width (default 8).
	Sessions int
	// Workers is the per-connection server worker count (default 8).
	Workers int
	// MaxLoad is the fabric server's admission bound (default 1024).
	MaxLoad int
	// Ints is the Sum payload element count (default 16 = 64B payload).
	Ints int
}

func (c *FleetConfig) defaults() {
	if len(c.Clients) == 0 {
		c.Clients = []int{1000, 4000, 16000, 50000, 100000}
	}
	if c.TotalCalls <= 0 {
		c.TotalCalls = 16000
	}
	if c.Sessions <= 0 {
		c.Sessions = 8
	}
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.MaxLoad <= 0 {
		c.MaxLoad = 1024
	}
	if c.Ints <= 0 {
		c.Ints = 16
	}
}

// fleetCellResult is one (N, configuration) measurement.
type fleetCellResult struct {
	callsPerSec float64
	errors      uint64
	batchFactor float64 // batched calls per multi-message frame
	rejects     uint64
	failovers   uint64
}

// Fleet runs the full sweep (the committed BENCH_fleet.json curve).
func Fleet() *Report { return fleetReport(FleetConfig{}) }

// FleetShort runs a reduced sweep sized for CI under -race.
func FleetShort() *Report {
	return fleetReport(FleetConfig{
		Clients:    []int{200, 1000, 4000},
		TotalCalls: 1500,
	})
}

func fleetReport(cfg FleetConfig) *Report {
	cfg.defaults()
	rep := &Report{
		Title: fmt.Sprintf("Scale-out fabric: %d-int Sum() calls vs simulated client count (%s)",
			cfg.Ints, fleetLink()),
		Cols: []string{"clients", "calls", "baseline calls/s", "fabric calls/s", "speedup",
			"batch x", "rejects", "failovers", "errors"},
		Notes: []string{
			fmt.Sprintf("baseline: one multiplexed client, one unbatched conn, no admission (the PR 2 engine); server Workers=%d", cfg.Sessions*cfg.Workers),
			fmt.Sprintf("fabric: ClientPool of %d sessions, adaptive batching both ends, admission MaxLoad=%d, retry-on-overload", cfg.Sessions, cfg.MaxLoad),
			"each client is a goroutine in a closed loop; the link charges a serialized 40us per frame, so",
			"baseline calls/s is capped near one line's frame rate while batching amortizes the frame cost",
			"'batch x' = calls per multi-message frame on the client side; 'errors' must be 0 (overload is",
			"shed with a retryable reject and absorbed by backoff, not failure — graceful degradation)",
			"(the host's sleep granularity inflates the absolute per-frame cost; the shape is the result)",
		},
	}
	for _, n := range cfg.Clients {
		base := fleetCell(cfg, n, false)
		fab := fleetCell(cfg, n, true)
		calls := n * maxInt(1, cfg.TotalCalls/n)
		speedup := "-"
		if base.callsPerSec > 0 {
			speedup = fmt.Sprintf("%.1fx", fab.callsPerSec/base.callsPerSec)
		}
		batch := "-"
		if fab.batchFactor > 0 {
			batch = fmt.Sprintf("%.1f", fab.batchFactor)
		}
		rep.AddRow(
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", calls),
			fmt.Sprintf("%.0f", base.callsPerSec),
			fmt.Sprintf("%.0f", fab.callsPerSec),
			speedup,
			batch,
			fmt.Sprintf("%d", fab.rejects),
			fmt.Sprintf("%d", fab.failovers),
			fmt.Sprintf("%d", base.errors+fab.errors),
		)
	}
	return rep
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// fleetSum issues one Sum call through the pool, exactly as a generated
// stub would (CallIdem + release).
func fleetSum(p *rt.ClientPool, v []int32) (int32, error) {
	d, err := p.CallIdem(3, "sum", false, true, func(e *rt.Encoder) {
		ts.MarshalBenchSumXDRRequest(e, v)
	})
	if err != nil {
		return 0, err
	}
	ret, err := ts.UnmarshalBenchSumXDRReply(d)
	d.Release()
	return ret, err
}

// fleetCell measures one cell: n closed-loop clients against either the
// baseline single-session engine or the full fabric.
func fleetCell(cfg FleetConfig, n int, fabric bool) fleetCellResult {
	link := fleetLink()
	srvMetrics := rt.NewMetrics()
	cliMetrics := rt.NewMetrics()

	srv := rt.NewServer(rt.ONC{})
	srv.Workers = cfg.Workers
	srv.Metrics = srvMetrics
	ts.RegisterBenchXDR(srv, pipelineImpl{})

	var serveWG sync.WaitGroup
	var serverEnds []rt.Conn
	serve := func(end rt.Conn) {
		serverEnds = append(serverEnds, end)
		serveWG.Add(1)
		go func() { defer serveWG.Done(); srv.ServeConn(end) }()
	}

	// call is the per-client invocation; close tears the client side down.
	var call func(v []int32) (int32, error)
	var closeClient func()

	if fabric {
		srv.Admission = &rt.Admission{MaxLoad: cfg.MaxLoad}
		batch := rt.BatchConfig{MaxMessages: 64, MaxBytes: 32 << 10, Queue: 1024}
		pool, err := rt.NewClientPool(rt.PoolConfig{
			Size: cfg.Sessions,
			Dial: func(int) (rt.Conn, error) {
				clientEnd, serverEnd := SimPipe(link)
				sb := batch
				sb.Metrics = srvMetrics
				serve(rt.NewBatchConn(serverEnd, sb)) // replies batch too
				return clientEnd, nil
			},
			Proto: rt.ONC{}, Prog: 0, Vers: 0,
			Retry: &rt.RetryPolicy{
				// Overload is absorbed here: rejected calls back off
				// (full jitter) and re-attempt until admitted.
				MaxAttempts: 1 << 20,
				BaseBackoff: 200 * time.Microsecond,
				MaxBackoff:  50 * time.Millisecond,
				Budget:      2 * time.Minute,
				Seed:        1,
			},
			Batch:   &batch,
			Metrics: cliMetrics,
		})
		if err != nil {
			panic(err)
		}
		call = func(v []int32) (int32, error) { return fleetSum(pool, v) }
		closeClient = func() { pool.Close() }
	} else {
		clientEnd, serverEnd := SimPipe(link)
		// Same total worker budget as the fabric: the comparison isolates
		// the transport fabric, not server parallelism.
		srv.Workers = cfg.Sessions * cfg.Workers
		serve(serverEnd)
		c := ts.NewBenchXDRClient(clientEnd)
		c.C.Metrics = cliMetrics
		call = func(v []int32) (int32, error) { return c.Sum(v) }
		closeClient = func() { c.C.Close() }
	}

	ints := IntArray(cfg.Ints * 4)
	var want int32
	for _, x := range ints {
		want += x
	}
	per := maxInt(1, cfg.TotalCalls/n)

	var wg sync.WaitGroup
	var errCount, wrongCount atomic.Uint64
	start := time.Now()
	for g := 0; g < n; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				ret, err := call(ints)
				if err != nil {
					errCount.Add(1)
				} else if ret != want {
					wrongCount.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	closeClient()
	for _, end := range serverEnds {
		end.Close()
	}
	serveWG.Wait()

	res := fleetCellResult{
		callsPerSec: float64(n*per) / elapsed.Seconds(),
		errors:      errCount.Load() + wrongCount.Load(),
		rejects:     srvMetrics.AdmissionRejects.Load(),
		failovers:   cliMetrics.SessionFailovers.Load(),
	}
	if f := cliMetrics.BatchFrames.Load(); f > 0 {
		res.batchFactor = float64(cliMetrics.BatchedCalls.Load()) / float64(f)
	}
	return res
}
