package experiment

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	ts "flick/internal/teststubs"
	"flick/rt"
)

// This file is the chaos soak harness: generated stubs driven over a
// deliberately hostile link (rt.FaultConn under a CRC32-C integrity
// layer) with the full client fault-tolerance stack engaged — retry
// policy, redial, circuit breaker — against a hardened server (panic
// recovery, duplicate suppression, message bounds). The invariant the
// harness exists to prove: under drops, duplicates, reordering,
// corruption, truncation, and mid-stream resets, a call either returns
// the right answer or a classified error — never a wrong answer — and
// the runtime leaks neither pooled buffers nor goroutines.

// ChaosConfig parameterizes one soak run.
type ChaosConfig struct {
	// Calls is the total number of Sum round trips issued (default
	// 10000), split across Callers goroutines (default 8).
	Calls   int
	Callers int
	// Seed makes the whole run reproducible: it seeds every fault plan
	// (per connection), the retry jitter, and the payload generators.
	Seed int64
	// Plan is the per-connection fault plan; its Seed field is
	// overridden per dial so redialed connections draw fresh fault
	// sequences that are still deterministic in aggregate.
	Plan rt.FaultPlan
	// Workers is the server-side worker pool size (default 4).
	Workers int
	// PingEvery, when positive, issues a oneway Ping before every Nth
	// Sum to mix fire-and-forget traffic into the soak.
	PingEvery int
	// PoolSize, when positive, drives the soak through an rt.ClientPool
	// of that many sessions — each its own hostile link with its own
	// breaker and redial — instead of a single client. The pooled soak
	// additionally proves session failover under chaos.
	PoolSize int
	// Batch, when true (pooled mode only), wraps every session's link
	// in a coalescing BatchConn, putting the batch envelope itself
	// under fire: a corrupted batch frame must degrade into the loss of
	// its calls, never into a wrong answer.
	Batch bool
	// Tracer, when non-nil, is attached to every client session AND
	// every server the soak dials up, so client and server spans land
	// in one ring and reassemble into complete trees. Size the ring for
	// the run (a traced chaos call records 3+ spans) before passing it.
	Tracer *rt.Tracer
}

// ChaosResult aggregates one soak run's outcome.
type ChaosResult struct {
	Calls      uint64
	Succeeded  uint64
	Mismatches uint64 // wrong answers: must be zero, always
	// Failure classes (errors are acceptable under chaos; wrong answers
	// and unclassified errors are not).
	FailedRetryable    uint64
	FailedNotRetryable uint64
	FailedBreaker      uint64
	FailedOther        uint64

	// Client-side resilience counters.
	Retries, Reconnects       uint64
	BreakerOpen, StaleReplies uint64
	// Pooled-mode counters: calls re-dispatched to another session, and
	// calls that travelled inside multi-message batch frames.
	SessionFailovers, BatchedCalls uint64
	// Server-side hardening counters.
	DroppedDupes, PanicsRecovered, Oversized uint64
	// Link-level damage.
	FaultsInjected  uint64
	ChecksumRejects uint64

	// PoolDelta is the pool checkout imbalance after quiescence: any
	// non-balanced delta is a leaked buffer.
	PoolDelta rt.PoolStats
	Wall      time.Duration
}

// RunChaos executes one soak and waits for full quiescence (servers
// drained, pools balanced or timed out) before returning.
func RunChaos(cfg ChaosConfig) (*ChaosResult, error) {
	if cfg.Calls <= 0 {
		cfg.Calls = 10000
	}
	if cfg.Callers <= 0 {
		cfg.Callers = 8
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}

	serverMetrics := rt.NewMetrics()
	clientMetrics := rt.NewMetrics()

	var mu sync.Mutex
	var faults []*rt.FaultConn
	var checks []*rt.ChecksumConn
	var serveWG sync.WaitGroup
	connSeed := cfg.Seed

	// dial builds one hostile link: the client speaks through a CRC
	// layer wrapping a FaultConn (so injected corruption and truncation
	// are detected and degrade into loss), the server answers behind its
	// own CRC layer with the hardening features on. Used for the first
	// connection and by the client's Redial after every reset.
	dial := func() (rt.Conn, error) {
		mu.Lock()
		connSeed++
		seed := connSeed
		mu.Unlock()
		clientPipe, serverPipe := rt.Pipe()
		plan := cfg.Plan
		plan.Seed = seed
		fc, err := rt.NewFaultConn(clientPipe, plan)
		if err != nil {
			return nil, err
		}
		clientSide := rt.WrapChecksum(fc)
		serverSide := rt.WrapChecksum(serverPipe)

		srv := rt.NewServer(rt.ONC{})
		srv.Workers = cfg.Workers
		srv.DupWindow = 4096
		srv.MaxMessage = 1 << 20
		srv.Metrics = serverMetrics
		srv.Tracer = cfg.Tracer
		ts.RegisterBenchXDR(srv, pipelineImpl{})
		serveWG.Add(1)
		go func() { defer serveWG.Done(); srv.ServeConn(serverSide) }()

		mu.Lock()
		faults = append(faults, fc)
		checks = append(checks, clientSide, serverSide)
		mu.Unlock()
		return clientSide, nil
	}

	poolBefore := rt.ReadPoolStats()
	retry := &rt.RetryPolicy{
		MaxAttempts: 8,
		BaseBackoff: 200 * time.Microsecond,
		MaxBackoff:  5 * time.Millisecond,
		Seed:        cfg.Seed + 7,
	}

	// The soak drives either a single resilient client (the PR 4
	// configuration) or, in pooled mode, the scale-out fabric's
	// ClientPool — same hostile links, same retry policy, per-session
	// breakers, failover across sessions.
	var sumCall func(v []int32) (int32, error)
	var pingCall func(nonce int32)
	var closeClient func()
	var debugPool *rt.ClientPool
	if cfg.PoolSize > 0 {
		var batch *rt.BatchConfig
		if cfg.Batch {
			batch = &rt.BatchConfig{MaxMessages: 16}
		}
		pool, err := rt.NewClientPool(rt.PoolConfig{
			Size:             cfg.PoolSize,
			Dial:             func(int) (rt.Conn, error) { return dial() },
			Proto:            rt.ONC{},
			Timeout:          150 * time.Millisecond,
			Retry:            retry,
			BreakerThreshold: 64,
			BreakerCooldown:  2 * time.Millisecond,
			Redial:           true,
			Batch:            batch,
			Metrics:          clientMetrics,
			Tracer:           cfg.Tracer,
		})
		if err != nil {
			return nil, err
		}
		sumCall = func(v []int32) (int32, error) {
			d, err := pool.CallIdem(3, "sum", false, true, func(e *rt.Encoder) {
				ts.MarshalBenchSumXDRRequest(e, v)
			})
			if err != nil {
				return 0, err
			}
			ret, err := ts.UnmarshalBenchSumXDRReply(d)
			d.Release()
			return ret, err
		}
		pingCall = func(nonce int32) {
			pool.CallIdem(5, "ping", true, false, func(e *rt.Encoder) {
				ts.MarshalBenchPingXDRRequest(e, nonce)
			})
		}
		closeClient = func() { pool.Close() }
		debugPool = pool
	} else {
		first, err := dial()
		if err != nil {
			return nil, err
		}
		client := ts.NewBenchXDRClient(first)
		client.C.Metrics = clientMetrics
		client.C.Tracer = cfg.Tracer
		client.C.Timeout = 150 * time.Millisecond
		client.C.Retry = retry
		client.C.Redial = dial
		client.C.Breaker = &rt.Breaker{Threshold: 64, Cooldown: 2 * time.Millisecond}
		sumCall = client.Sum
		pingCall = func(nonce int32) { client.Ping(nonce) }
		closeClient = func() { client.C.Close() }
	}

	if Debug != nil {
		Debug.Publish(rt.DebugConfig{Metrics: clientMetrics, Tracer: cfg.Tracer, Pool: debugPool})
	}

	res := &ChaosResult{}
	per := cfg.Calls / cfg.Callers
	if per < 1 {
		per = 1
	}
	var wg sync.WaitGroup
	var resMu sync.Mutex
	start := time.Now()
	for g := 0; g < cfg.Callers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(g)*1000003))
			v := make([]int32, 16)
			var local ChaosResult
			for i := 0; i < per; i++ {
				if cfg.PingEvery > 0 && i%cfg.PingEvery == 0 {
					pingCall(int32(i)) // oneway: errors acceptable, ignored
				}
				n := 1 + rng.Intn(len(v))
				var want int32
				for j := 0; j < n; j++ {
					v[j] = int32(rng.Intn(1 << 20))
					want += v[j]
				}
				local.Calls++
				ret, err := sumCall(v[:n])
				switch {
				case err == nil && ret == want:
					local.Succeeded++
				case err == nil:
					local.Mismatches++
				case errors.Is(err, rt.ErrBreakerOpen):
					local.FailedBreaker++
				case errors.Is(err, rt.ErrRetryable):
					local.FailedRetryable++
				case errors.Is(err, rt.ErrNotRetryable):
					local.FailedNotRetryable++
				default:
					local.FailedOther++
				}
			}
			resMu.Lock()
			res.Calls += local.Calls
			res.Succeeded += local.Succeeded
			res.Mismatches += local.Mismatches
			res.FailedBreaker += local.FailedBreaker
			res.FailedRetryable += local.FailedRetryable
			res.FailedNotRetryable += local.FailedNotRetryable
			res.FailedOther += local.FailedOther
			resMu.Unlock()
		}(g)
	}
	wg.Wait()
	res.Wall = time.Since(start)

	// Teardown: close the live connection, wait for every server (old
	// ones died at redial time) to drain, then give the reply readers a
	// moment to finish returning pooled decoders.
	closeClient()
	serveWG.Wait()
	deadline := time.Now().Add(3 * time.Second)
	for {
		res.PoolDelta = rt.ReadPoolStats().Sub(poolBefore)
		if res.PoolDelta.Balanced() || time.Now().After(deadline) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}

	res.Retries = clientMetrics.Retries.Load()
	res.Reconnects = clientMetrics.Reconnects.Load()
	res.BreakerOpen = clientMetrics.BreakerOpen.Load()
	res.StaleReplies = clientMetrics.StaleReplies.Load()
	res.SessionFailovers = clientMetrics.SessionFailovers.Load()
	res.BatchedCalls = clientMetrics.BatchedCalls.Load()
	res.DroppedDupes = serverMetrics.DroppedDupes.Load()
	res.PanicsRecovered = serverMetrics.PanicsRecovered.Load()
	res.Oversized = serverMetrics.Oversized.Load()
	mu.Lock()
	for _, f := range faults {
		res.FaultsInjected += f.Stats.Drops.Load() + f.Stats.Dups.Load() +
			f.Stats.Reorders.Load() + f.Stats.Corrupts.Load() +
			f.Stats.Truncates.Load() + f.Stats.Resets.Load() + f.Stats.Delays.Load()
	}
	for _, cs := range checks {
		res.ChecksumRejects += cs.Rejected.Load()
	}
	mu.Unlock()
	return res, nil
}

// DefaultChaosPlan spreads a combined fault rate evenly across the six
// damaging fault kinds (plus a small delay share), matching the soak
// target of "N% combined faults".
func DefaultChaosPlan(combined float64) rt.FaultPlan {
	share := combined / 6
	return rt.FaultPlan{
		Drop:      share,
		Duplicate: share,
		Reorder:   share,
		Corrupt:   share,
		Truncate:  share,
		Reset:     share,
		Delay:     combined / 10,
		DelayMax:  500 * time.Microsecond,
	}
}

// Chaos sweeps the combined fault rate and reports, per row, what the
// fault-tolerance stack absorbed: faults injected, frames rejected by
// the integrity layer, retries, reconnects, duplicate suppressions —
// and the two hard invariants, wrong answers and pool leaks, which must
// both read zero at every rate.
func Chaos() *Report {
	return chaosReport(4000, []float64{0, 0.02, 0.05, 0.10})
}

func chaosReport(calls int, rates []float64) *Report {
	rep := &Report{
		Title: "Chaos soak: generated stubs over a faulty link",
		Cols: []string{"fault rate", "calls", "ok", "failed", "faults", "crc drops",
			"retries", "redials", "dupes", "stale", "wrong", "pool leak"},
		Notes: []string{
			"Sum() round trips through FaultConn (drop/dup/reorder/corrupt/truncate/reset) under CRC32-C framing",
			"client: 8 retries, full-jitter backoff, redial-on-poison, breaker; server: dup cache, panic guard, bounds",
			"'failed' are classified errors (acceptable under chaos); 'wrong' answers and pool leaks must be 0",
		},
	}
	for _, rate := range rates {
		res, err := RunChaos(ChaosConfig{
			Calls: calls, Callers: 8, Seed: 1, Plan: DefaultChaosPlan(rate), PingEvery: 16,
		})
		if err != nil {
			rep.AddRow(fmt.Sprintf("%.0f%%", rate*100), "error: "+err.Error())
			continue
		}
		failed := res.FailedRetryable + res.FailedNotRetryable + res.FailedBreaker + res.FailedOther
		leak := "none"
		if !res.PoolDelta.Balanced() {
			leak = fmt.Sprintf("%+v", res.PoolDelta)
		}
		rep.AddRow(
			fmt.Sprintf("%.0f%%", rate*100),
			fmt.Sprintf("%d", res.Calls),
			fmt.Sprintf("%d", res.Succeeded),
			fmt.Sprintf("%d", failed),
			fmt.Sprintf("%d", res.FaultsInjected),
			fmt.Sprintf("%d", res.ChecksumRejects),
			fmt.Sprintf("%d", res.Retries),
			fmt.Sprintf("%d", res.Reconnects),
			fmt.Sprintf("%d", res.DroppedDupes),
			fmt.Sprintf("%d", res.StaleReplies),
			fmt.Sprintf("%d", res.Mismatches),
			leak,
		)
	}
	return rep
}
