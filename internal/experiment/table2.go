package experiment

import (
	"flick"
	ts "flick/internal/teststubs"
)

// generatedStubBytes compiles the evaluation interface with the given
// code style and returns the generated stub source size (type
// declarations excluded, mirroring the paper's object-code comparison of
// stubs alone).
func generatedStubBytes(style string) (int, error) {
	src, err := flick.Compile("test.idl", ts.BenchIDL, flick.Options{
		IDL:       "corba",
		Lang:      "go",
		Format:    "xdr",
		Style:     style,
		Package:   "sizes",
		SkipDecls: true,
		EmitRPC:   false,
	})
	if err != nil {
		return 0, err
	}
	return len(src), nil
}
