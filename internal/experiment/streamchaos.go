package experiment

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"strconv"
	"sync"
	"time"

	ss "flick/internal/streamstubs"
	"flick/rt"
)

// This file is the streaming variant of the chaos soak: generated
// stream stubs (the Blob fetch surface) driven over the same hostile
// link as the call soak — FaultConn under CRC32-C framing — with sync
// and promise traffic interleaved on the same sessions. The invariant
// mirrors the call soak's, restated for transfers: a fetch either
// delivers the complete blob byte-for-byte, or ends in a classified
// error — never silently short, never corrupt — and the runtime leaks
// neither pooled buffers nor goroutines, even when the link is cut or
// scrambled mid-stream.

// StreamChaosConfig parameterizes one streaming soak.
type StreamChaosConfig struct {
	// Transfers is the total number of fetch transfers (default 200),
	// split across Consumers goroutines (default 8), each consumer on
	// its own hostile link.
	Transfers int
	Consumers int
	// Seed drives every fault plan, blob size, and window choice.
	Seed int64
	// Plan is the per-connection fault plan (Seed overridden per dial).
	Plan rt.FaultPlan
	// Workers is the per-connection server worker pool (default 4).
	Workers int
	// ChunkSize is the server's transfer chunk size in bytes (default 64);
	// MaxChunks bounds the per-transfer blob length (default 16 chunks).
	ChunkSize int
	MaxChunks int
	// CancelEvery, when positive, cancels every Nth transfer midway —
	// the consumer-initiated kill (the link-initiated kills come from
	// the fault plan's resets).
	CancelEvery int
}

// StreamChaosResult aggregates one streaming soak's outcome.
type StreamChaosResult struct {
	Transfers uint64
	// Completed transfers delivered every chunk dense, in order, and
	// byte-identical to the blob.
	Completed uint64
	// Mismatches are transfers that ended in a clean EOF with dense
	// sequence numbers but wrong bytes: must be zero, always.
	Mismatches uint64
	// Canceled counts deliberate mid-transfer cancels that terminated
	// with ErrStreamCanceled as contracted.
	Canceled uint64
	// SeqDamage counts transfers the consumer abandoned on a sequence
	// gap, duplicate, or reorder — link damage detected by the
	// application-level sequence numbers (acceptable under chaos).
	SeqDamage uint64
	// Classified failure classes (acceptable under chaos).
	FailedBroken, FailedTimeout, FailedSystem uint64
	// FailedOther are terminals carrying no classification: must be
	// zero, always.
	FailedOther uint64

	ChunksDelivered uint64
	// Interleaved call traffic on the same sessions.
	SyncCalls, SyncFailed, AsyncCalls, AsyncFailed uint64
	// CallsUnclassified are sync/async failures without a retry
	// classification: must be zero.
	CallsUnclassified uint64

	// Link-level damage and recovery.
	FaultsInjected, ChecksumRejects, Reconnects uint64

	PoolDelta rt.PoolStats
	Wall      time.Duration
}

// chaosBlob builds the deterministic blob both sides derive from the
// blob's name (the decimal byte length): the client can verify a
// completed transfer without shipping the expectation out of band.
func chaosBlob(size int) []byte {
	out := make([]byte, size)
	for i := range out {
		out[i] = byte(i*131 + size*17 + i>>6)
	}
	return out
}

// chaosBlobImpl serves chaosBlob(name) as ChunkSize'd sequence-numbered
// chunks through the generated sending half.
type chaosBlobImpl struct {
	chunkSize int
}

func (b chaosBlobImpl) Size(name string) (uint32, error) {
	n, err := strconv.Atoi(name)
	if err != nil {
		return 0, err
	}
	return uint32(n), nil
}

func (b chaosBlobImpl) Put(name string, data []byte) error { return nil }

func (b chaosBlobImpl) Fetch(name string, st *ss.BlobFetchServerStream) error {
	n, err := strconv.Atoi(name)
	if err != nil {
		return err
	}
	data := chaosBlob(n)
	for seq := uint32(0); len(data) > 0; seq++ {
		c := b.chunkSize
		if c > len(data) {
			c = len(data)
		}
		if err := st.Send(&ss.BlobChunk{Seq: seq, Data: data[:c]}); err != nil {
			return err
		}
		data = data[c:]
	}
	return nil
}

func (b chaosBlobImpl) Touch(nonce int32) error { return nil }

// classifiedStream reports whether a stream terminal carries one of the
// runtime's error classes.
func classifiedStream(err error) bool {
	for _, class := range []error{
		rt.ErrStreamBroken, rt.ErrStreamCanceled, rt.ErrTimeout, rt.ErrSystem,
		rt.ErrOverloaded, rt.ErrClosed, rt.ErrBreakerOpen,
		rt.ErrRetryable, rt.ErrNotRetryable,
	} {
		if errors.Is(err, class) {
			return true
		}
	}
	return false
}

// classifiedCall reports whether a call failure carries a retry
// classification (the sync soak's acceptance bar).
func classifiedCall(err error) bool {
	return errors.Is(err, rt.ErrRetryable) || errors.Is(err, rt.ErrNotRetryable) ||
		errors.Is(err, rt.ErrBreakerOpen)
}

// RunStreamChaos executes one streaming soak and waits for quiescence.
func RunStreamChaos(cfg StreamChaosConfig) (*StreamChaosResult, error) {
	if cfg.Transfers <= 0 {
		cfg.Transfers = 200
	}
	if cfg.Consumers <= 0 {
		cfg.Consumers = 8
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.ChunkSize <= 0 {
		cfg.ChunkSize = 64
	}
	if cfg.MaxChunks <= 0 {
		cfg.MaxChunks = 16
	}

	clientMetrics := rt.NewMetrics()
	var mu sync.Mutex
	var faults []*rt.FaultConn
	var checks []*rt.ChecksumConn
	var serveWG sync.WaitGroup
	connSeed := cfg.Seed

	dial := func() (rt.Conn, error) {
		mu.Lock()
		connSeed++
		seed := connSeed
		mu.Unlock()
		clientPipe, serverPipe := rt.Pipe()
		plan := cfg.Plan
		plan.Seed = seed
		fc, err := rt.NewFaultConn(clientPipe, plan)
		if err != nil {
			return nil, err
		}
		clientSide := rt.WrapChecksum(fc)
		serverSide := rt.WrapChecksum(serverPipe)

		srv := rt.NewServer(rt.ONC{})
		srv.Workers = cfg.Workers
		srv.MaxMessage = 1 << 20
		ss.RegisterBlob(srv, chaosBlobImpl{chunkSize: cfg.ChunkSize})
		serveWG.Add(1)
		go func() { defer serveWG.Done(); srv.ServeConn(serverSide) }()

		mu.Lock()
		faults = append(faults, fc)
		checks = append(checks, clientSide, serverSide)
		mu.Unlock()
		return clientSide, nil
	}

	poolBefore := rt.ReadPoolStats()
	res := &StreamChaosResult{}
	per := cfg.Transfers / cfg.Consumers
	if per < 1 {
		per = 1
	}
	var wg sync.WaitGroup
	var resMu sync.Mutex
	start := time.Now()
	clients := make([]*ss.BlobClient, cfg.Consumers)
	for g := 0; g < cfg.Consumers; g++ {
		first, err := dial()
		if err != nil {
			return nil, err
		}
		c := ss.NewBlobClient(first)
		c.C.Metrics = clientMetrics
		c.C.Timeout = 250 * time.Millisecond
		c.C.Redial = dial
		clients[g] = c
	}
	for g := 0; g < cfg.Consumers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(g)*999983))
			c := clients[g]
			var local StreamChaosResult
			windows := []int{2, 4, 8}
			for i := 0; i < per; i++ {
				size := (1+rng.Intn(cfg.MaxChunks))*cfg.ChunkSize - rng.Intn(cfg.ChunkSize)
				name := strconv.Itoa(size)
				want := chaosBlob(size)
				chunks := (size + cfg.ChunkSize - 1) / cfg.ChunkSize

				// Interleaved call traffic: a sync Size and a promise
				// resolved after the transfer, all on the same session
				// the stream runs over.
				local.SyncCalls++
				if n, err := c.Size(name); err != nil {
					local.SyncFailed++
					if !classifiedCall(err) {
						local.CallsUnclassified++
					}
				} else if int(n) != size {
					local.Mismatches++
				}
				local.AsyncCalls++
				promise := c.SizeAsync(name)

				cancelAt := -1
				if cfg.CancelEvery > 0 && i%cfg.CancelEvery == cfg.CancelEvery-1 {
					cancelAt = chunks / 2
				}

				local.Transfers++
				st, err := c.FetchStream(name, windows[rng.Intn(len(windows))])
				if err != nil {
					countStreamTerminal(&local, err, false)
					settlePromise(&local, promise, size)
					continue
				}
				var got bytes.Buffer
				var next uint32
				damaged := false
				canceled := false
				var terminal error
				for {
					if cancelAt >= 0 && int(next) == cancelAt && !canceled {
						st.Cancel()
						canceled = true
					}
					ch, rerr := st.Recv()
					if rerr != nil {
						terminal = rerr
						break
					}
					local.ChunksDelivered++
					if ch.Seq != next {
						// Gap, duplicate, or reorder: the sequence
						// numbers catch what the CRC layer cannot (a
						// frame that vanished whole). Abandon.
						damaged = true
						st.Cancel()
						terminal = errSeqDamage
						break
					}
					next++
					got.Write(ch.Data)
				}
				switch {
				case damaged:
					local.SeqDamage++
					// Consume down to the sticky terminal (Cancel may
					// have raced a server-sent terminal, leaving
					// already-buffered chunks ahead of it).
					for {
						if _, rerr := st.Recv(); rerr != nil {
							break
						}
					}
				case canceled:
					// Deliberate kill. Usually the terminal is
					// ErrStreamCanceled; if the server finished first
					// the race resolves to a clean EOF whose
					// undelivered tail Cancel discarded — either way
					// the teardown is contracted, not damage.
					if errors.Is(terminal, rt.ErrStreamCanceled) || errors.Is(terminal, io.EOF) {
						local.Canceled++
					} else {
						countStreamTerminal(&local, terminal, canceled)
					}
				case errors.Is(terminal, io.EOF):
					if got.Len() == size && bytes.Equal(got.Bytes(), want) {
						local.Completed++
					} else {
						local.Mismatches++
					}
				default:
					countStreamTerminal(&local, terminal, canceled)
				}
				settlePromise(&local, promise, size)
			}
			resMu.Lock()
			res.add(&local)
			resMu.Unlock()
		}(g)
	}
	wg.Wait()
	res.Wall = time.Since(start)

	for _, c := range clients {
		c.C.Close()
	}
	serveWG.Wait()
	deadline := time.Now().Add(3 * time.Second)
	for {
		res.PoolDelta = rt.ReadPoolStats().Sub(poolBefore)
		if res.PoolDelta.Balanced() || time.Now().After(deadline) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}

	res.Reconnects = clientMetrics.Reconnects.Load()
	mu.Lock()
	for _, f := range faults {
		res.FaultsInjected += f.Stats.Drops.Load() + f.Stats.Dups.Load() +
			f.Stats.Reorders.Load() + f.Stats.Corrupts.Load() +
			f.Stats.Truncates.Load() + f.Stats.Resets.Load() + f.Stats.Delays.Load()
	}
	for _, cs := range checks {
		res.ChecksumRejects += cs.Rejected.Load()
	}
	mu.Unlock()
	return res, nil
}

// errSeqDamage is the soak's internal marker for sequence-detected
// damage; it never escapes RunStreamChaos.
var errSeqDamage = errors.New("streamchaos: sequence damage")

// countStreamTerminal buckets a non-EOF terminal.
func countStreamTerminal(local *StreamChaosResult, err error, canceled bool) {
	switch {
	case errors.Is(err, rt.ErrTimeout):
		local.FailedTimeout++
	case errors.Is(err, rt.ErrStreamBroken) || errors.Is(err, rt.ErrClosed),
		canceled && errors.Is(err, rt.ErrStreamCanceled):
		local.FailedBroken++
	case errors.Is(err, rt.ErrSystem):
		local.FailedSystem++
	case classifiedStream(err):
		local.FailedBroken++
	default:
		local.FailedOther++
	}
}

// settlePromise resolves the interleaved SizeAsync promise and checks
// its classification and answer.
func settlePromise(local *StreamChaosResult, p *ss.BlobSizePromise, size int) {
	n, err := p.Wait()
	if err != nil {
		local.AsyncFailed++
		if !classifiedCall(err) {
			local.CallsUnclassified++
		}
		return
	}
	if int(n) != size {
		local.Mismatches++
	}
}

func (r *StreamChaosResult) add(l *StreamChaosResult) {
	r.Transfers += l.Transfers
	r.Completed += l.Completed
	r.Mismatches += l.Mismatches
	r.Canceled += l.Canceled
	r.SeqDamage += l.SeqDamage
	r.FailedBroken += l.FailedBroken
	r.FailedTimeout += l.FailedTimeout
	r.FailedSystem += l.FailedSystem
	r.FailedOther += l.FailedOther
	r.ChunksDelivered += l.ChunksDelivered
	r.SyncCalls += l.SyncCalls
	r.SyncFailed += l.SyncFailed
	r.AsyncCalls += l.AsyncCalls
	r.AsyncFailed += l.AsyncFailed
	r.CallsUnclassified += l.CallsUnclassified
}

// StreamChaos sweeps the combined fault rate over streaming transfers
// and reports what survived: complete deliveries, consumer cancels,
// sequence-detected damage, and the classified failure classes — plus
// the hard invariants (wrong bytes, unclassified terminals, pool leaks)
// which must read zero at every rate.
func StreamChaos() *Report {
	rep := &Report{
		Title: "Stream chaos soak: generated fetch streams over a faulty link",
		Cols: []string{"fault rate", "transfers", "complete", "canceled", "seq dmg",
			"broken", "timeout", "chunks", "faults", "crc drops", "wrong", "unclassified", "pool leak"},
		Notes: []string{
			"Blob fetch streams (credit-windowed server push) through FaultConn under CRC32-C framing",
			"sync Size + SizeAsync promise interleaved on the same sessions; consumer cancels every 7th transfer",
			"a transfer either delivers the full blob byte-identical or ends in a classified error",
			"'wrong' (bytes/answers), 'unclassified' terminals, and pool leaks must be 0 at every rate",
		},
	}
	for _, rate := range []float64{0, 0.02, 0.05, 0.10} {
		res, err := RunStreamChaos(StreamChaosConfig{
			Transfers: 160, Consumers: 8, Seed: 1,
			Plan: DefaultChaosPlan(rate), CancelEvery: 7,
		})
		if err != nil {
			rep.AddRow(fmt.Sprintf("%.0f%%", rate*100), "error: "+err.Error())
			continue
		}
		leak := "none"
		if !res.PoolDelta.Balanced() {
			leak = fmt.Sprintf("%+v", res.PoolDelta)
		}
		rep.AddRow(
			fmt.Sprintf("%.0f%%", rate*100),
			fmt.Sprintf("%d", res.Transfers),
			fmt.Sprintf("%d", res.Completed),
			fmt.Sprintf("%d", res.Canceled),
			fmt.Sprintf("%d", res.SeqDamage),
			fmt.Sprintf("%d", res.FailedBroken),
			fmt.Sprintf("%d", res.FailedTimeout),
			fmt.Sprintf("%d", res.ChunksDelivered),
			fmt.Sprintf("%d", res.FaultsInjected),
			fmt.Sprintf("%d", res.ChecksumRejects),
			fmt.Sprintf("%d", res.Mismatches),
			fmt.Sprintf("%d", res.FailedOther+res.CallsUnclassified),
			leak,
		)
	}
	return rep
}
