package cast

import (
	"fmt"
	"strconv"
	"strings"
)

// Print renders a File as C source text.
func Print(f *File) string {
	p := &printer{}
	for i, d := range f.Decls {
		if i > 0 {
			if _, ok := d.(*Include); !ok {
				p.nl()
			} else if _, prev := f.Decls[i-1].(*Include); !prev {
				p.nl()
			}
		}
		p.decl(d)
	}
	return p.b.String()
}

// PrintStmts renders a statement list at the given indent, for tests and
// snippet generation.
func PrintStmts(stmts []Stmt, indent int) string {
	p := &printer{indent: indent}
	for _, s := range stmts {
		p.stmt(s)
	}
	return p.b.String()
}

// ExprString renders a single expression.
func ExprString(e Expr) string {
	p := &printer{}
	p.expr(e, precLowest)
	return p.b.String()
}

// TypeString renders a type as it would appear in a cast or sizeof.
func TypeString(t Type) string {
	p := &printer{}
	return p.typeDecl(t, "")
}

type printer struct {
	b      strings.Builder
	indent int
}

func (p *printer) nl()                          { p.b.WriteByte('\n') }
func (p *printer) ws(s string)                  { p.b.WriteString(s) }
func (p *printer) line(s string)                { p.tabs(); p.b.WriteString(s); p.nl() }
func (p *printer) tabs()                        { p.b.WriteString(strings.Repeat("\t", p.indent)) }
func (p *printer) f(format string, args ...any) { fmt.Fprintf(&p.b, format, args...) }

func (p *printer) decl(d Decl) {
	switch d := d.(type) {
	case *Include:
		if d.System {
			p.line("#include <" + d.Path + ">")
		} else {
			p.line("#include \"" + d.Path + "\"")
		}
	case *Define:
		p.line("#define " + d.Name + " " + d.Text)
	case *CommentDecl:
		for _, ln := range strings.Split(d.Text, "\n") {
			p.line("/* " + ln + " */")
		}
	case *TypedefDecl:
		p.tabs()
		p.ws("typedef " + p.typeDecl(d.Type, d.Name) + ";")
		p.nl()
	case *VarDecl:
		p.tabs()
		if d.Static {
			p.ws("static ")
		}
		p.ws(p.typeDecl(d.Type, d.Name))
		if d.Init != nil {
			p.ws(" = ")
			p.expr(d.Init, precLowest)
		}
		p.ws(";")
		p.nl()
	case *StructDecl:
		p.tabs()
		p.ws(p.structBody("struct", d.Def.Tag, d.Def.Fields))
		p.ws(";")
		p.nl()
	case *EnumDecl:
		p.tabs()
		p.ws(p.enumBody(d.Def))
		p.ws(";")
		p.nl()
	case *FuncDecl:
		p.tabs()
		if d.Static {
			p.ws("static ")
		}
		p.ws(p.typeDecl(d.Ret, ""))
		p.nl()
		p.tabs()
		p.ws(d.Name + "(" + p.params(d.Params) + ")")
		if d.Body == nil {
			p.ws(";")
			p.nl()
			return
		}
		p.nl()
		p.line("{")
		p.indent++
		for _, s := range d.Body.Stmts {
			p.stmt(s)
		}
		p.indent--
		p.line("}")
	default:
		panic(fmt.Sprintf("cast: unknown decl %T", d))
	}
}

func (p *printer) params(params []Param) string {
	if len(params) == 0 {
		return "void"
	}
	parts := make([]string, len(params))
	for i, pa := range params {
		parts[i] = p.typeDecl(pa.Type, pa.Name)
	}
	return strings.Join(parts, ", ")
}

// typeDecl renders a C declarator: type applied to name (which may be
// empty for abstract declarators). It handles the inside-out C declarator
// syntax for pointers, arrays, and function pointers.
func (p *printer) typeDecl(t Type, name string) string {
	base, decl := p.declarator(t, name)
	if decl == "" {
		return base
	}
	return base + " " + decl
}

func (p *printer) declarator(t Type, inner string) (base, decl string) {
	switch t := t.(type) {
	case *Prim:
		return t.Name, inner
	case *Named:
		return t.Name, inner
	case *StructRef:
		return "struct " + t.Tag, inner
	case *UnionRef:
		return "union " + t.Tag, inner
	case *EnumRef:
		return "enum " + t.Tag, inner
	case *StructType:
		return p.structBody("struct", t.Tag, t.Fields), inner
	case *UnionType:
		return p.structBody("union", t.Tag, t.Fields), inner
	case *EnumType:
		return p.enumBody(t), inner
	case *Ptr:
		return p.declarator(t.To, "*"+inner)
	case *Arr:
		if strings.HasPrefix(inner, "*") {
			inner = "(" + inner + ")"
		}
		if t.Len < 0 {
			return p.declarator(t.Elem, inner+"[]")
		}
		return p.declarator(t.Elem, inner+"["+strconv.FormatInt(t.Len, 10)+"]")
	case *FuncType:
		if strings.HasPrefix(inner, "*") {
			inner = "(" + inner + ")"
		}
		return p.declarator(t.Ret, inner+"("+p.params(t.Params)+")")
	default:
		panic(fmt.Sprintf("cast: unknown type %T", t))
	}
}

func (p *printer) structBody(kw, tag string, fields []Field) string {
	var b strings.Builder
	b.WriteString(kw)
	if tag != "" {
		b.WriteString(" " + tag)
	}
	b.WriteString(" {\n")
	sub := &printer{indent: p.indent + 1}
	for _, f := range fields {
		sub.tabs()
		sub.ws(sub.typeDecl(f.Type, f.Name) + ";")
		sub.nl()
	}
	b.WriteString(sub.b.String())
	b.WriteString(strings.Repeat("\t", p.indent) + "}")
	return b.String()
}

func (p *printer) enumBody(t *EnumType) string {
	var b strings.Builder
	b.WriteString("enum")
	if t.Tag != "" {
		b.WriteString(" " + t.Tag)
	}
	b.WriteString(" {\n")
	tabs := strings.Repeat("\t", p.indent+1)
	for i, m := range t.Members {
		b.WriteString(tabs + m.Name)
		if m.Explicit {
			b.WriteString(" = " + strconv.FormatInt(m.Value, 10))
		}
		if i < len(t.Members)-1 {
			b.WriteString(",")
		}
		b.WriteString("\n")
	}
	b.WriteString(strings.Repeat("\t", p.indent) + "}")
	return b.String()
}

func (p *printer) stmt(s Stmt) {
	switch s := s.(type) {
	case *ExprStmt:
		p.tabs()
		p.expr(s.E, precLowest)
		p.ws(";")
		p.nl()
	case *DeclStmt:
		p.tabs()
		p.ws(p.typeDecl(s.Type, s.Name))
		if s.Init != nil {
			p.ws(" = ")
			p.expr(s.Init, precAssign)
		}
		p.ws(";")
		p.nl()
	case *If:
		p.tabs()
		p.ws("if (")
		p.expr(s.Cond, precLowest)
		p.ws(") {")
		p.nl()
		p.indent++
		for _, st := range s.Then.Stmts {
			p.stmt(st)
		}
		p.indent--
		p.tabs()
		p.ws("}")
		if s.Else != nil {
			switch e := s.Else.(type) {
			case *Block:
				p.ws(" else {")
				p.nl()
				p.indent++
				for _, st := range e.Stmts {
					p.stmt(st)
				}
				p.indent--
				p.tabs()
				p.ws("}")
			case *If:
				p.ws(" else ")
				// Recurse without tabs: splice the "if" inline.
				saved := p.indent
				p.indent = 0
				p.stmt(e)
				p.indent = saved
				return
			default:
				panic(fmt.Sprintf("cast: bad else %T", s.Else))
			}
		}
		p.nl()
	case *For:
		p.tabs()
		p.ws("for (")
		switch init := s.Init.(type) {
		case nil:
		case *ExprStmt:
			p.expr(init.E, precLowest)
		case *DeclStmt:
			p.ws(p.typeDecl(init.Type, init.Name))
			if init.Init != nil {
				p.ws(" = ")
				p.expr(init.Init, precAssign)
			}
		default:
			panic(fmt.Sprintf("cast: bad for init %T", s.Init))
		}
		p.ws("; ")
		if s.Cond != nil {
			p.expr(s.Cond, precLowest)
		}
		p.ws("; ")
		if s.Post != nil {
			p.expr(s.Post, precLowest)
		}
		p.ws(") {")
		p.nl()
		p.indent++
		for _, st := range s.Body.Stmts {
			p.stmt(st)
		}
		p.indent--
		p.line("}")
	case *While:
		p.tabs()
		p.ws("while (")
		p.expr(s.Cond, precLowest)
		p.ws(") {")
		p.nl()
		p.indent++
		for _, st := range s.Body.Stmts {
			p.stmt(st)
		}
		p.indent--
		p.line("}")
	case *Switch:
		p.tabs()
		p.ws("switch (")
		p.expr(s.On, precLowest)
		p.ws(") {")
		p.nl()
		for _, c := range s.Cases {
			if c.Default {
				p.line("default:")
			} else {
				for _, v := range c.Values {
					p.tabs()
					p.ws("case ")
					p.expr(v, precLowest)
					p.ws(":")
					p.nl()
				}
			}
			p.indent++
			for _, st := range c.Body {
				p.stmt(st)
			}
			p.indent--
		}
		p.line("}")
	case *Return:
		p.tabs()
		if s.E == nil {
			p.ws("return;")
		} else {
			p.ws("return ")
			p.expr(s.E, precLowest)
			p.ws(";")
		}
		p.nl()
	case *Break:
		p.line("break;")
	case *Goto:
		p.line("goto " + s.Label + ";")
	case *Label:
		saved := p.indent
		p.indent = 0
		p.line(s.Name + ":")
		p.indent = saved
	case *Block:
		p.line("{")
		p.indent++
		for _, st := range s.Stmts {
			p.stmt(st)
		}
		p.indent--
		p.line("}")
	case *Comment:
		p.line("/* " + s.Text + " */")
	default:
		panic(fmt.Sprintf("cast: unknown stmt %T", s))
	}
}

// Operator precedence levels (subset sufficient for generated code).
const (
	precLowest  = 0
	precAssign  = 1
	precTernary = 2
	precOr      = 3
	precAnd     = 4
	precBitOr   = 5
	precBitXor  = 6
	precBitAnd  = 7
	precEq      = 8
	precRel     = 9
	precShift   = 10
	precAdd     = 11
	precMul     = 12
	precUnary   = 13
	precPostfix = 14
)

func binPrec(op string) int {
	switch op {
	case "||":
		return precOr
	case "&&":
		return precAnd
	case "|":
		return precBitOr
	case "^":
		return precBitXor
	case "&":
		return precBitAnd
	case "==", "!=":
		return precEq
	case "<", ">", "<=", ">=":
		return precRel
	case "<<", ">>":
		return precShift
	case "+", "-":
		return precAdd
	case "*", "/", "%":
		return precMul
	}
	panic("cast: unknown binary op " + op)
}

func (p *printer) expr(e Expr, outer int) {
	switch e := e.(type) {
	case *Ident:
		p.ws(e.Name)
	case *IntLit:
		p.ws(strconv.FormatInt(e.Value, 10) + e.Suffix)
	case *UIntLit:
		p.f("0x%x", e.Value)
	case *StrLit:
		p.ws(strconv.Quote(e.Value))
	case *CharLit:
		p.ws("'" + escapeChar(e.Value) + "'")
	case *Unary:
		p.paren(outer > precUnary, func() {
			p.ws(e.Op)
			p.expr(e.Operand, precUnary)
		})
	case *Postfix:
		p.paren(outer > precPostfix, func() {
			p.expr(e.Operand, precPostfix)
			p.ws(e.Op)
		})
	case *Binary:
		prec := binPrec(e.Op)
		p.paren(outer > prec, func() {
			p.expr(e.L, prec)
			p.ws(" " + e.Op + " ")
			p.expr(e.R, prec+1)
		})
	case *Assign:
		p.paren(outer > precAssign, func() {
			p.expr(e.L, precUnary)
			p.ws(" " + e.Op + " ")
			p.expr(e.R, precAssign)
		})
	case *Call:
		p.expr(e.Fn, precPostfix)
		p.ws("(")
		for i, a := range e.Args {
			if i > 0 {
				p.ws(", ")
			}
			p.expr(a, precAssign)
		}
		p.ws(")")
	case *Index:
		p.expr(e.Base, precPostfix)
		p.ws("[")
		p.expr(e.Index, precLowest)
		p.ws("]")
	case *Member:
		p.expr(e.Base, precPostfix)
		if e.Arrow {
			p.ws("->")
		} else {
			p.ws(".")
		}
		p.ws(e.Name)
	case *CastExpr:
		p.paren(outer > precUnary, func() {
			p.ws("(" + p.typeDecl(e.To, "") + ") ")
			p.expr(e.Operand, precUnary)
		})
	case *Ternary:
		p.paren(outer > precTernary, func() {
			p.expr(e.Cond, precOr)
			p.ws(" ? ")
			p.expr(e.Then, precTernary)
			p.ws(" : ")
			p.expr(e.Else, precTernary)
		})
	case *SizeofType:
		p.ws("sizeof(" + p.typeDecl(e.Of, "") + ")")
	case *Raw:
		p.ws(e.Text)
	default:
		panic(fmt.Sprintf("cast: unknown expr %T", e))
	}
}

func (p *printer) paren(need bool, body func()) {
	if need {
		p.ws("(")
	}
	body()
	if need {
		p.ws(")")
	}
}

func escapeChar(c byte) string {
	switch c {
	case '\'':
		return "\\'"
	case '\\':
		return "\\\\"
	case '\n':
		return "\\n"
	case '\t':
		return "\\t"
	case 0:
		return "\\0"
	}
	if c < 32 || c > 126 {
		return fmt.Sprintf("\\x%02x", c)
	}
	return string(c)
}
