// Package cast implements Flick's C Abstract Syntax Tree: a
// straightforward, syntax-derived representation of C declarations,
// statements, and expressions, together with a pretty-printer.
//
// Keeping an explicit representation of the generated target-language
// code (instead of emitting strings as rpcgen and ILU do) is what lets
// presentation generators and back ends make fine-grain specializations
// and lets the optimizer associate target-language data with on-the-wire
// data.
package cast

// Type is a C type expression.
type Type interface{ castType() }

// Prim is a primitive or otherwise textually-named C type
// ("int", "unsigned long", "CORBA_long", ...).
type Prim struct{ Name string }

// Named refers to a typedef name.
type Named struct{ Name string }

// Ptr is a pointer type.
type Ptr struct{ To Type }

// Arr is an array type; Len < 0 means an incomplete array ("[]").
type Arr struct {
	Elem Type
	Len  int64
}

// StructRef and UnionRef and EnumRef reference tagged types.
type StructRef struct{ Tag string }
type UnionRef struct{ Tag string }
type EnumRef struct{ Tag string }

// StructType is an inline struct definition (possibly tagged).
type StructType struct {
	Tag    string
	Fields []Field
}

// UnionType is an inline (C, not discriminated) union definition.
type UnionType struct {
	Tag    string
	Fields []Field
}

// EnumType is an inline enum definition.
type EnumType struct {
	Tag     string
	Members []EnumMember
}

// EnumMember is one enumerator; Explicit controls printing "= Value".
type EnumMember struct {
	Name     string
	Value    int64
	Explicit bool
}

// Field is one struct or union member.
type Field struct {
	Name string
	Type Type
}

// FuncType is a function type (for pointers-to-function and prototypes).
type FuncType struct {
	Ret    Type
	Params []Param
}

// Param is one function parameter.
type Param struct {
	Name string
	Type Type
}

func (*Prim) castType()       {}
func (*Named) castType()      {}
func (*Ptr) castType()        {}
func (*Arr) castType()        {}
func (*StructRef) castType()  {}
func (*UnionRef) castType()   {}
func (*EnumRef) castType()    {}
func (*StructType) castType() {}
func (*UnionType) castType()  {}
func (*EnumType) castType()   {}
func (*FuncType) castType()   {}

// Common primitive types.
var (
	Void   = &Prim{Name: "void"}
	Int    = &Prim{Name: "int"}
	Char   = &Prim{Name: "char"}
	UInt8  = &Prim{Name: "uint8_t"}
	Int8   = &Prim{Name: "int8_t"}
	UInt16 = &Prim{Name: "uint16_t"}
	Int16  = &Prim{Name: "int16_t"}
	UInt32 = &Prim{Name: "uint32_t"}
	Int32  = &Prim{Name: "int32_t"}
	UInt64 = &Prim{Name: "uint64_t"}
	Int64  = &Prim{Name: "int64_t"}
	Float  = &Prim{Name: "float"}
	Double = &Prim{Name: "double"}
	SizeT  = &Prim{Name: "size_t"}
)

// PtrTo returns a pointer to t.
func PtrTo(t Type) *Ptr { return &Ptr{To: t} }

// Expr is a C expression.
type Expr interface{ castExpr() }

// Ident is an identifier.
type Ident struct{ Name string }

// IntLit is an integer literal. Suffix, if set, is appended ("u", "l").
type IntLit struct {
	Value  int64
	Suffix string
}

// UIntLit is an unsigned/hex literal printed in hex.
type UIntLit struct{ Value uint64 }

// StrLit is a C string literal (printed quoted and escaped).
type StrLit struct{ Value string }

// CharLit is a character literal.
type CharLit struct{ Value byte }

// Unary is a prefix unary expression: Op Operand.
type Unary struct {
	Op      string
	Operand Expr
}

// Postfix is a postfix unary expression: Operand Op ("++", "--").
type Postfix struct {
	Operand Expr
	Op      string
}

// Binary is Op applied to L and R.
type Binary struct {
	Op   string
	L, R Expr
}

// Assign is "L Op R" where Op is "=", "+=", etc.
type Assign struct {
	Op   string
	L, R Expr
}

// Call is a function call.
type Call struct {
	Fn   Expr
	Args []Expr
}

// Index is array subscripting.
type Index struct {
	Base  Expr
	Index Expr
}

// Member selects a field: Base.Name, or Base->Name when Arrow.
type Member struct {
	Base  Expr
	Name  string
	Arrow bool
}

// CastExpr converts Operand to To.
type CastExpr struct {
	To      Type
	Operand Expr
}

// Ternary is Cond ? Then : Else.
type Ternary struct {
	Cond, Then, Else Expr
}

// SizeofType is sizeof(Type).
type SizeofType struct{ Of Type }

// Raw is an escape hatch for preformatted expression text.
type Raw struct{ Text string }

func (*Ident) castExpr()      {}
func (*IntLit) castExpr()     {}
func (*UIntLit) castExpr()    {}
func (*StrLit) castExpr()     {}
func (*CharLit) castExpr()    {}
func (*Unary) castExpr()      {}
func (*Postfix) castExpr()    {}
func (*Binary) castExpr()     {}
func (*Assign) castExpr()     {}
func (*Call) castExpr()       {}
func (*Index) castExpr()      {}
func (*Member) castExpr()     {}
func (*CastExpr) castExpr()   {}
func (*Ternary) castExpr()    {}
func (*SizeofType) castExpr() {}
func (*Raw) castExpr()        {}

// Stmt is a C statement.
type Stmt interface{ castStmt() }

// ExprStmt evaluates an expression for effect.
type ExprStmt struct{ E Expr }

// DeclStmt declares a local variable, optionally initialized.
type DeclStmt struct {
	Name string
	Type Type
	Init Expr // may be nil
}

// If is an if/else statement; Else may be nil.
type If struct {
	Cond Expr
	Then *Block
	Else Stmt // *Block or *If, or nil
}

// For is a C for loop; any of Init/Cond/Post may be nil.
type For struct {
	Init Stmt // ExprStmt or DeclStmt
	Cond Expr
	Post Expr
	Body *Block
}

// While is a while loop.
type While struct {
	Cond Expr
	Body *Block
}

// Switch is a switch statement.
type Switch struct {
	On    Expr
	Cases []SwitchCase
}

// SwitchCase is one case (or default) arm. A case falls through unless
// its body ends with Break or Return.
type SwitchCase struct {
	Values  []Expr // nil for default
	Default bool
	Body    []Stmt
}

// Return returns E (possibly nil for void).
type Return struct{ E Expr }

// Break is a break statement.
type Break struct{}

// Goto jumps to a label.
type Goto struct{ Label string }

// Label declares a label.
type Label struct{ Name string }

// Block is a braced statement list.
type Block struct{ Stmts []Stmt }

// Comment is a standalone comment line inside a body.
type Comment struct{ Text string }

func (*ExprStmt) castStmt() {}
func (*DeclStmt) castStmt() {}
func (*If) castStmt()       {}
func (*For) castStmt()      {}
func (*While) castStmt()    {}
func (*Switch) castStmt()   {}
func (*Return) castStmt()   {}
func (*Break) castStmt()    {}
func (*Goto) castStmt()     {}
func (*Label) castStmt()    {}
func (*Block) castStmt()    {}
func (*Comment) castStmt()  {}

// Decl is a top-level declaration.
type Decl interface{ castDecl() }

// Include is a #include line; System selects <...> over "...".
type Include struct {
	Path   string
	System bool
}

// Define is a simple #define.
type Define struct {
	Name string
	Text string
}

// TypedefDecl names a type.
type TypedefDecl struct {
	Name string
	Type Type
}

// VarDecl is a global variable declaration.
type VarDecl struct {
	Name   string
	Type   Type
	Init   Expr // may be nil
	Static bool
}

// FuncDecl is a function definition (Body != nil) or prototype.
type FuncDecl struct {
	Name   string
	Ret    Type
	Params []Param
	Body   *Block
	Static bool
}

// StructDecl declares a tagged struct at file scope.
type StructDecl struct{ Def *StructType }

// EnumDecl declares a tagged enum at file scope.
type EnumDecl struct{ Def *EnumType }

// CommentDecl is a file-scope comment.
type CommentDecl struct{ Text string }

func (*Include) castDecl()     {}
func (*Define) castDecl()      {}
func (*TypedefDecl) castDecl() {}
func (*VarDecl) castDecl()     {}
func (*FuncDecl) castDecl()    {}
func (*StructDecl) castDecl()  {}
func (*EnumDecl) castDecl()    {}
func (*CommentDecl) castDecl() {}

// File is a whole C source or header file.
type File struct {
	Name  string
	Decls []Decl
}
