package aoi

import (
	"strings"
	"testing"
)

func i32() Type    { return &Primitive{Kind: Long} }
func void() Type   { return &Primitive{Kind: Void} }
func str() Type    { return &String{} }
func boolT() Type  { return &Primitive{Kind: Boolean} }
func octetT() Type { return &Primitive{Kind: Octet} }

func validFile() *File {
	point := &Struct{Name: "point", Fields: []Field{
		{Name: "x", Type: i32()},
		{Name: "y", Type: i32()},
	}}
	return &File{
		Source: "test.idl",
		IDL:    "corba",
		Types:  []*TypeDef{{Name: "point", Type: point}},
		Interfaces: []*Interface{{
			Name: "Mail",
			ID:   "IDL:Mail:1.0",
			Ops: []*Operation{
				{
					Name:   "send",
					Code:   0,
					Params: []Param{{Name: "msg", Dir: In, Type: str()}},
					Result: void(),
				},
				{
					Name:   "locate",
					Code:   1,
					Params: []Param{{Name: "where", Dir: Out, Type: &NamedRef{Name: "point", Def: point}}},
					Result: boolT(),
				},
			},
		}},
	}
}

func TestValidateOK(t *testing.T) {
	if err := Validate(validFile()); err != nil {
		t.Fatalf("Validate(valid) = %v", err)
	}
}

func TestValidateErrors(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*File)
		wantSub string
	}{
		{
			"duplicate type",
			func(f *File) { f.Types = append(f.Types, &TypeDef{Name: "point", Type: i32()}) },
			"duplicate type name",
		},
		{
			"duplicate op",
			func(f *File) {
				op := *f.Interfaces[0].Ops[0]
				op.Code = 99
				f.Interfaces[0].Ops = append(f.Interfaces[0].Ops, &op)
			},
			"duplicate operation",
		},
		{
			"duplicate op code",
			func(f *File) {
				op := *f.Interfaces[0].Ops[0]
				op.Name = "other"
				f.Interfaces[0].Ops = append(f.Interfaces[0].Ops, &op)
			},
			"share code",
		},
		{
			"void parameter",
			func(f *File) { f.Interfaces[0].Ops[0].Params[0].Type = void() },
			"is void",
		},
		{
			"oneway with result",
			func(f *File) {
				f.Interfaces[0].Ops[1].Oneway = true
				f.Interfaces[0].Ops[1].Params = nil
			},
			"oneway operation has a result",
		},
		{
			"oneway with out param",
			func(f *File) {
				f.Interfaces[0].Ops[1].Oneway = true
				f.Interfaces[0].Ops[1].Result = void()
			},
			"oneway operation has out parameter",
		},
		{
			"undeclared raise",
			func(f *File) { f.Interfaces[0].Ops[0].Raises = []string{"NoSuch"} },
			"undeclared exception",
		},
		{
			"unresolved ref",
			func(f *File) {
				f.Interfaces[0].Ops[0].Params[0].Type = &NamedRef{Name: "mystery"}
			},
			"unresolved type reference",
		},
		{
			"nil result",
			func(f *File) { f.Interfaces[0].Ops[0].Result = nil },
			"nil result",
		},
		{
			"zero length array",
			func(f *File) {
				f.Interfaces[0].Ops[0].Params[0].Type = &Array{Elem: i32(), Length: 0}
			},
			"zero-length array",
		},
		{
			"bad union discriminator",
			func(f *File) {
				f.Interfaces[0].Ops[0].Params[0].Type = &Union{
					Name:    "u",
					Discrim: str(),
					Cases:   []UnionCase{{Labels: []int64{1}, Field: Field{Name: "a", Type: i32()}}},
				}
			},
			"invalid discriminator",
		},
		{
			"duplicate union label",
			func(f *File) {
				f.Interfaces[0].Ops[0].Params[0].Type = &Union{
					Name:    "u",
					Discrim: i32(),
					Cases: []UnionCase{
						{Labels: []int64{1}, Field: Field{Name: "a", Type: i32()}},
						{Labels: []int64{1}, Field: Field{Name: "b", Type: str()}},
					},
				}
			},
			"duplicate case label",
		},
		{
			"two defaults",
			func(f *File) {
				f.Interfaces[0].Ops[0].Params[0].Type = &Union{
					Name:    "u",
					Discrim: i32(),
					Cases: []UnionCase{
						{IsDefault: true, Field: Field{Name: "a", Type: i32()}},
						{IsDefault: true, Field: Field{Name: "b", Type: str()}},
					},
				}
			},
			"multiple default arms",
		},
		{
			"duplicate struct field",
			func(f *File) {
				f.Interfaces[0].Ops[0].Params[0].Type = &Struct{Name: "s", Fields: []Field{
					{Name: "a", Type: i32()}, {Name: "a", Type: i32()},
				}}
			},
			"duplicate field",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			f := validFile()
			tt.mutate(f)
			err := Validate(f)
			if err == nil {
				t.Fatalf("Validate() = nil, want error containing %q", tt.wantSub)
			}
			if !strings.Contains(err.Error(), tt.wantSub) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tt.wantSub)
			}
		})
	}
}

func TestValidateRecursionThroughOptional(t *testing.T) {
	// struct node { long v; node *next; } — legal (XDR linked list).
	node := &Struct{Name: "node"}
	node.Fields = []Field{
		{Name: "v", Type: i32()},
		{Name: "next", Type: &Optional{Elem: node}},
	}
	f := &File{Types: []*TypeDef{{Name: "node", Type: node}}}
	if err := Validate(f); err != nil {
		t.Fatalf("recursive list should validate, got %v", err)
	}

	// Mutually recursive through a pointer: also legal.
	a := &Struct{Name: "a"}
	b := &Struct{Name: "b", Fields: []Field{{Name: "back", Type: &Optional{Elem: a}}}}
	a.Fields = []Field{{Name: "fwd", Type: b}}
	f = &File{Types: []*TypeDef{{Name: "a", Type: a}, {Name: "b", Type: b}}}
	if err := Validate(f); err != nil {
		t.Fatalf("mutually recursive via pointer should validate, got %v", err)
	}

	// Direct cycle with no pointer: illegal.
	bad := &Struct{Name: "bad"}
	bad.Fields = []Field{{Name: "self", Type: bad}}
	f = &File{Types: []*TypeDef{{Name: "bad", Type: bad}}}
	if err := Validate(f); err == nil {
		t.Fatal("direct struct cycle should not validate")
	}
}

func TestResolve(t *testing.T) {
	base := i32()
	ref1 := &NamedRef{Name: "a", Def: base}
	ref2 := &NamedRef{Name: "b", Def: ref1}
	if got := Resolve(ref2); got != base {
		t.Errorf("Resolve(chain) = %v, want %v", got, base)
	}
	if got := Resolve(base); got != base {
		t.Errorf("Resolve(base) = %v, want %v", got, base)
	}
}

func TestIsVoid(t *testing.T) {
	if !IsVoid(void()) {
		t.Error("IsVoid(void) = false")
	}
	if !IsVoid(&NamedRef{Name: "v", Def: void()}) {
		t.Error("IsVoid(ref to void) = false")
	}
	if IsVoid(i32()) {
		t.Error("IsVoid(long) = true")
	}
}

func TestStringRendering(t *testing.T) {
	tests := []struct {
		t    Type
		want string
	}{
		{i32(), "long"},
		{&Primitive{Kind: ULongLong}, "unsigned long long"},
		{&String{}, "string"},
		{&String{Bound: 80}, "string<80>"},
		{&Sequence{Elem: i32()}, "sequence<long>"},
		{&Sequence{Elem: i32(), Bound: 10}, "sequence<long,10>"},
		{&Array{Elem: octetT(), Length: 16}, "octet[16]"},
		{&Struct{Name: "p"}, "struct p"},
		{&Struct{Fields: []Field{{Name: "x", Type: i32()}}}, "struct {long x}"},
		{&Union{Name: "u"}, "union u"},
		{&Enum{Name: "e"}, "enum e"},
		{&Enum{Members: []string{"A", "B"}}, "enum {A, B}"},
		{&NamedRef{Name: "t", Def: i32()}, "t"},
		{&Optional{Elem: i32()}, "long*"},
		{&InterfaceRef{Name: "Mail"}, "interface Mail"},
	}
	for _, tt := range tests {
		if got := tt.t.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestLookups(t *testing.T) {
	f := validFile()
	if f.LookupType("point") == nil {
		t.Error("LookupType(point) = nil")
	}
	if f.LookupType("nope") != nil {
		t.Error("LookupType(nope) != nil")
	}
	it := f.LookupInterface("Mail")
	if it == nil {
		t.Fatal("LookupInterface(Mail) = nil")
	}
	if f.LookupInterface("nope") != nil {
		t.Error("LookupInterface(nope) != nil")
	}
	if it.LookupOp("send") == nil {
		t.Error("LookupOp(send) = nil")
	}
	if it.LookupOp("nope") != nil {
		t.Error("LookupOp(nope) != nil")
	}
}

func TestQualifiedName(t *testing.T) {
	it := &Interface{Name: "Mail"}
	if got := it.QualifiedName(); got != "Mail" {
		t.Errorf("QualifiedName() = %q", got)
	}
	it.Module = "Post::Office"
	if got := it.QualifiedName(); got != "Post::Office::Mail" {
		t.Errorf("QualifiedName() = %q", got)
	}
}

func TestUnionHasDefault(t *testing.T) {
	u := &Union{Cases: []UnionCase{{Labels: []int64{1}, Field: Field{Name: "a", Type: i32()}}}}
	if u.HasDefault() {
		t.Error("HasDefault() = true without default")
	}
	u.Cases = append(u.Cases, UnionCase{IsDefault: true, Field: Field{Name: "d", Type: i32()}})
	if !u.HasDefault() {
		t.Error("HasDefault() = false with default")
	}
}

func TestDirectionString(t *testing.T) {
	if In.String() != "in" || Out.String() != "out" || InOut.String() != "inout" {
		t.Error("Direction.String() wrong")
	}
	if !strings.Contains(Direction(9).String(), "9") {
		t.Error("unknown direction should include value")
	}
}
