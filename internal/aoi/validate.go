package aoi

import (
	"fmt"
)

// Validate checks structural invariants of an AOI file: resolved named
// references, unique names within each scope, union arms covering distinct
// labels, and acyclic value types (cycles are legal only through Optional,
// mirroring XDR's recursion-through-pointer rule).
//
// Diagnostics are positioned: when the front end recorded a declaration
// Pos, the error begins with "file:line:col"; otherwise it falls back to
// the file's Source name. Either way invalid IDL fails at parse time
// with an error naming the offending declaration, not deep in pgen.
func Validate(f *File) error {
	v := &validator{
		path:    map[Type]bool{},
		entered: map[Type]bool{},
		src:     f.Source,
	}
	names := map[string]bool{}
	for _, td := range f.Types {
		v.pos = td.Pos
		if names[td.Name] {
			return v.errf("duplicate type name %q", td.Name)
		}
		names[td.Name] = true
		if err := v.checkType(td.Type, td.Name); err != nil {
			return err
		}
	}
	cnames := map[string]bool{}
	for _, cd := range f.Consts {
		v.pos = Pos{}
		if cnames[cd.Name] {
			return v.errf("duplicate const name %q", cd.Name)
		}
		cnames[cd.Name] = true
	}
	inames := map[string]bool{}
	for _, it := range f.Interfaces {
		v.pos = it.Pos
		q := it.QualifiedName()
		if inames[q] {
			return v.errf("duplicate interface %q", q)
		}
		inames[q] = true
		if err := v.checkInterface(it); err != nil {
			return err
		}
	}
	return nil
}

type validator struct {
	// path holds the nodes in progress within the current pointer-free
	// region; revisiting one means an illegal cycle. Crossing an
	// Optional edge starts a fresh region (recursion through a pointer
	// is legal, as in XDR).
	path map[Type]bool
	// entered holds every node whose traversal has begun anywhere; it
	// terminates traversal of recursive graphs.
	entered map[Type]bool
	// src is the file's Source name, the fallback diagnostic prefix.
	src string
	// pos is the position of the declaration under scrutiny (zero when
	// the front end recorded none).
	pos Pos
}

// errf builds a positioned diagnostic: "file:line:col: aoi: msg" when
// the current declaration carries a position, "source: aoi: msg" when
// only the file name is known, bare "aoi: msg" otherwise.
func (v *validator) errf(format string, args ...any) error {
	msg := fmt.Sprintf(format, args...)
	switch {
	case v.pos.IsValid():
		return fmt.Errorf("%s: aoi: %s", v.pos, msg)
	case v.src != "":
		return fmt.Errorf("%s: aoi: %s", v.src, msg)
	default:
		return fmt.Errorf("aoi: %s", msg)
	}
}

func (v *validator) checkInterface(it *Interface) error {
	ifacePos := v.pos
	ops := map[string]bool{}
	codes := map[uint32]string{}
	for _, op := range it.Ops {
		if op.Pos.IsValid() {
			v.pos = op.Pos
		} else {
			v.pos = ifacePos
		}
		if ops[op.Name] {
			return v.errf("interface %s: duplicate operation %q", it.Name, op.Name)
		}
		ops[op.Name] = true
		if prev, dup := codes[op.Code]; dup {
			return v.errf("interface %s: operations %q and %q share code %d",
				it.Name, prev, op.Name, op.Code)
		}
		codes[op.Code] = op.Name
		if op.Result == nil {
			return v.errf("interface %s: operation %q has nil result", it.Name, op.Name)
		}
		if err := v.checkType(op.Result, it.Name+"."+op.Name); err != nil {
			return err
		}
		pnames := map[string]bool{}
		for _, p := range op.Params {
			if pnames[p.Name] {
				return v.errf("%s.%s: duplicate parameter %q", it.Name, op.Name, p.Name)
			}
			pnames[p.Name] = true
			if p.Type == nil {
				return v.errf("%s.%s: parameter %q has nil type", it.Name, op.Name, p.Name)
			}
			if err := v.checkType(p.Type, it.Name+"."+op.Name); err != nil {
				return err
			}
			if IsVoid(p.Type) {
				return v.errf("%s.%s: parameter %q is void", it.Name, op.Name, p.Name)
			}
		}
		if op.Oneway {
			if !IsVoid(op.Result) {
				return v.errf("%s.%s: oneway operation has a result", it.Name, op.Name)
			}
			for _, p := range op.Params {
				if p.Dir != In {
					return v.errf("%s.%s: oneway operation has %s parameter %q",
						it.Name, op.Name, p.Dir, p.Name)
				}
			}
			if len(op.Raises) > 0 {
				return v.errf("%s.%s: oneway operation raises exceptions", it.Name, op.Name)
			}
		}
		if op.Stream {
			if op.Oneway {
				return v.errf("%s.%s: stream operation cannot be oneway", it.Name, op.Name)
			}
			if IsVoid(op.Result) {
				return v.errf("%s.%s: stream operation has void result (the result is the chunk type)",
					it.Name, op.Name)
			}
			for _, p := range op.Params {
				if p.Dir != In {
					return v.errf("%s.%s: stream operation has %s parameter %q (chunks flow through the result)",
						it.Name, op.Name, p.Dir, p.Name)
				}
			}
			if len(op.Raises) > 0 {
				return v.errf("%s.%s: stream operation raises exceptions (stream errors travel as error frames)",
					it.Name, op.Name)
			}
		}
		for _, ex := range op.Raises {
			if !hasExcept(it, ex) {
				return v.errf("%s.%s: raises undeclared exception %q", it.Name, op.Name, ex)
			}
		}
	}
	v.pos = ifacePos
	for _, at := range it.Attrs {
		if err := v.checkType(at.Type, it.Name+"."+at.Name); err != nil {
			return err
		}
	}
	for _, ex := range it.Excepts {
		for _, fld := range ex.Fields {
			if err := v.checkType(fld.Type, it.Name+"."+ex.Name); err != nil {
				return err
			}
		}
	}
	return nil
}

func hasExcept(it *Interface, name string) bool {
	for _, ex := range it.Excepts {
		if ex.Name == name {
			return true
		}
	}
	return false
}

func (v *validator) checkType(t Type, ctx string) error {
	if t == nil {
		return v.errf("%s: nil type", ctx)
	}
	if v.path[t] {
		return v.errf("%s: illegal type cycle through %s (recursion is legal only through optional/pointer types)", ctx, t)
	}
	if v.entered[t] {
		return nil
	}
	v.entered[t] = true
	v.path[t] = true
	defer delete(v.path, t)
	switch t := t.(type) {
	case *Primitive, *String, *Enum, *InterfaceRef:
		// leaves
	case *Sequence:
		if t.Elem == nil {
			return v.errf("%s: sequence with nil element", ctx)
		}
		return v.checkType(t.Elem, ctx)
	case *Array:
		if t.Length == 0 {
			return v.errf("%s: zero-length array", ctx)
		}
		return v.checkType(t.Elem, ctx)
	case *Struct:
		names := map[string]bool{}
		for _, f := range t.Fields {
			if names[f.Name] {
				return v.errf("%s: struct %s: duplicate field %q", ctx, t, f.Name)
			}
			names[f.Name] = true
			if err := v.checkType(f.Type, ctx); err != nil {
				return err
			}
		}
	case *Union:
		if t.Discrim == nil {
			return v.errf("%s: union %s: nil discriminator", ctx, t)
		}
		switch d := Resolve(t.Discrim).(type) {
		case *Primitive:
			switch d.Kind {
			case Boolean, Char, Short, UShort, Long, ULong:
			default:
				return v.errf("%s: union %s: invalid discriminator type %s", ctx, t, d)
			}
		case *Enum:
		default:
			return v.errf("%s: union %s: invalid discriminator type %s", ctx, t, t.Discrim)
		}
		labels := map[int64]bool{}
		defaults := 0
		for _, c := range t.Cases {
			if c.IsDefault {
				defaults++
				if len(c.Labels) != 0 {
					return v.errf("%s: union %s: default arm with labels", ctx, t)
				}
			} else if len(c.Labels) == 0 {
				return v.errf("%s: union %s: arm with no labels", ctx, t)
			}
			for _, l := range c.Labels {
				if labels[l] {
					return v.errf("%s: union %s: duplicate case label %d", ctx, t, l)
				}
				labels[l] = true
			}
			if c.Field.Type == nil {
				return v.errf("%s: union %s: arm %q has nil type", ctx, t, c.Field.Name)
			}
			if err := v.checkType(c.Field.Type, ctx); err != nil {
				return err
			}
		}
		if defaults > 1 {
			return v.errf("%s: union %s: multiple default arms", ctx, t)
		}
	case *NamedRef:
		if t.Def == nil {
			return v.errf("%s: unresolved type reference %q", ctx, t.Name)
		}
		return v.checkType(t.Def, ctx)
	case *Optional:
		if t.Elem == nil {
			return v.errf("%s: optional with nil element", ctx)
		}
		// Recursion through a pointer is legal: visit the element in a
		// fresh pointer-free region.
		saved := v.path
		v.path = map[Type]bool{}
		err := v.checkType(t.Elem, ctx)
		v.path = saved
		return err
	default:
		return v.errf("%s: unknown type node %T", ctx, t)
	}
	return nil
}
