// Package aoi defines Flick's Abstract Object Interface: the high-level
// "network contract" produced by IDL front ends. AOI describes interfaces,
// operations, attributes, and exceptions independently of any target
// language, message encoding, or transport.
//
// AOI deliberately represents constructs at the level an IDL speaks of
// them: object methods, attributes, and exceptions are distinct notions
// even though every back end eventually implements them as messages.
package aoi

import (
	"fmt"
	"strings"
)

// Direction classifies an operation parameter as input, output, or both.
type Direction int

const (
	In Direction = iota
	Out
	InOut
)

func (d Direction) String() string {
	switch d {
	case In:
		return "in"
	case Out:
		return "out"
	case InOut:
		return "inout"
	}
	return fmt.Sprintf("Direction(%d)", int(d))
}

// Pos locates a declaration in its IDL source (1-based line and column;
// the zero Pos means the front end recorded no position). Validate uses
// declaration positions to point diagnostics at the offending line of
// IDL rather than at the AOI graph.
type Pos struct {
	File string
	Line int
	Col  int
}

// IsValid reports whether p carries a real source position.
func (p Pos) IsValid() bool { return p.Line > 0 }

func (p Pos) String() string {
	if !p.IsValid() {
		return p.File
	}
	return fmt.Sprintf("%s:%d:%d", p.File, p.Line, p.Col)
}

// File is the AOI produced from one IDL source file.
type File struct {
	// Source names the IDL file (or "<input>" when unknown).
	Source string
	// IDL names the source language: "corba", "oncrpc", or "mig".
	IDL string
	// Types holds named type definitions (typedefs, structs, unions,
	// enums) in declaration order.
	Types []*TypeDef
	// Consts holds named constants in declaration order.
	Consts []*ConstDef
	// Interfaces holds interface (or program/version) declarations.
	Interfaces []*Interface
}

// LookupType returns the named type definition, or nil.
func (f *File) LookupType(name string) *TypeDef {
	for _, td := range f.Types {
		if td.Name == name {
			return td
		}
	}
	return nil
}

// LookupInterface returns the named interface, or nil.
func (f *File) LookupInterface(name string) *Interface {
	for _, it := range f.Interfaces {
		if it.Name == name {
			return it
		}
	}
	return nil
}

// TypeDef is a named type definition.
type TypeDef struct {
	Name string
	Type Type
	// Pos is the declaration site (zero when unrecorded).
	Pos Pos
}

// ConstDef is a named constant. Exactly one of Int and Str is meaningful,
// selected by the dynamic type of Type.
type ConstDef struct {
	Name string
	Type Type
	Int  int64
	Str  string
}

// Interface is one interface (CORBA) or one program/version pair (ONC).
type Interface struct {
	// Name is the unqualified interface name.
	Name string
	// Module is the enclosing module scope ("" at global scope). Nested
	// modules are joined with "::".
	Module string
	// ID is the wire identity: a CORBA repository ID, or "prog,vers" for
	// ONC RPC.
	ID string
	// Program and Version carry the ONC RPC numbers (zero for CORBA).
	Program uint32
	Version uint32
	// Parents names inherited interfaces.
	Parents []string
	// Ops, Attrs, and Excepts are the interface members.
	Ops     []*Operation
	Attrs   []*Attribute
	Excepts []*Exception
	// Pos is the declaration site (zero when unrecorded).
	Pos Pos
}

// QualifiedName returns Module::Name, or Name when Module is empty.
func (i *Interface) QualifiedName() string {
	if i.Module == "" {
		return i.Name
	}
	return i.Module + "::" + i.Name
}

// LookupOp returns the named operation, or nil.
func (i *Interface) LookupOp(name string) *Operation {
	for _, op := range i.Ops {
		if op.Name == name {
			return op
		}
	}
	return nil
}

// Operation is one invocable operation of an interface.
type Operation struct {
	Name string
	// Code is the operation discriminator used on the wire: the ONC
	// procedure number, or a dense index assigned by the front end for
	// IDLs (like CORBA) that discriminate by name.
	Code uint32
	// Oneway marks operations with no reply message.
	Oneway bool
	// Idempotent marks operations that are safe to execute more than
	// once (the //flick:idempotent annotation; CORBA attribute getters
	// are idempotent implicitly). The RPC runtime re-sends only
	// idempotent operations after ambiguous failures.
	Idempotent bool
	// Stream marks server-push streaming operations (the //flick:stream
	// annotation): the request travels once, then the server pushes a
	// sequence of Result-typed chunks under a credit window instead of a
	// single reply. Stream operations take only in parameters, return a
	// non-void result (the chunk type), and raise no exceptions.
	Stream bool
	Params     []Param
	// Result is the return type; Void for none.
	Result Type
	// Raises names user exceptions the operation may raise.
	Raises []string
	// Pos is the declaration site (zero when unrecorded).
	Pos Pos
}

// Param is one operation parameter.
type Param struct {
	Name string
	Dir  Direction
	Type Type
}

// Attribute is a CORBA attribute; front ends for IDLs without attributes
// never produce them. Presentation generators expand each attribute into
// implicit get (and, unless ReadOnly, set) operations.
type Attribute struct {
	Name     string
	Type     Type
	ReadOnly bool
}

// Exception is a named user exception with zero or more member fields.
type Exception struct {
	Name   string
	ID     string
	Fields []Field
}

// Type is the interface satisfied by every AOI type node.
type Type interface {
	aoiType()
	// String renders an IDL-ish spelling, used in diagnostics.
	String() string
}

// PrimKind enumerates the IDL primitive types.
type PrimKind int

const (
	Void PrimKind = iota
	Boolean
	Octet
	Char
	Short
	UShort
	Long
	ULong
	LongLong
	ULongLong
	Float
	Double
)

var primNames = [...]string{
	Void: "void", Boolean: "boolean", Octet: "octet", Char: "char",
	Short: "short", UShort: "unsigned short", Long: "long",
	ULong: "unsigned long", LongLong: "long long",
	ULongLong: "unsigned long long", Float: "float", Double: "double",
}

func (k PrimKind) String() string {
	if int(k) < len(primNames) {
		return primNames[k]
	}
	return fmt.Sprintf("PrimKind(%d)", int(k))
}

// Primitive is a primitive IDL type.
type Primitive struct{ Kind PrimKind }

// String is a (possibly bounded) string type; Bound==0 means unbounded.
type String struct{ Bound uint32 }

// Sequence is a variable-length sequence; Bound==0 means unbounded.
type Sequence struct {
	Elem  Type
	Bound uint32
}

// Array is a fixed-length array.
type Array struct {
	Elem   Type
	Length uint32
}

// Field is one member of a struct, exception, or union arm.
type Field struct {
	Name string
	Type Type
}

// Struct is a structure type. Name may be empty for anonymous structs.
type Struct struct {
	Name   string
	Fields []Field
}

// UnionCase is one arm of a discriminated union.
type UnionCase struct {
	// Labels holds the discriminator values selecting this arm; empty
	// with IsDefault set for the default arm.
	Labels    []int64
	IsDefault bool
	Field     Field
}

// Union is a discriminated union.
type Union struct {
	Name    string
	Discrim Type
	Cases   []UnionCase
}

// HasDefault reports whether the union declares a default arm.
func (u *Union) HasDefault() bool {
	for _, c := range u.Cases {
		if c.IsDefault {
			return true
		}
	}
	return false
}

// Enum is an enumeration; member i has value Values[i] (ONC RPC allows
// explicit values; CORBA enums are dense from zero).
type Enum struct {
	Name    string
	Members []string
	Values  []int64
}

// NamedRef is a reference to a named type definition. Def is resolved by
// the front end and is never nil in a validated File.
type NamedRef struct {
	Name string
	Def  Type
}

// Optional is ONC RPC "optional data" (a `*` pointer): either absent or
// one value. CORBA has no equivalent construct.
type Optional struct{ Elem Type }

// InterfaceRef is an object reference type (CORBA interface used as a
// type).
type InterfaceRef struct{ Name string }

func (*Primitive) aoiType()    {}
func (*String) aoiType()       {}
func (*Sequence) aoiType()     {}
func (*Array) aoiType()        {}
func (*Struct) aoiType()       {}
func (*Union) aoiType()        {}
func (*Enum) aoiType()         {}
func (*NamedRef) aoiType()     {}
func (*Optional) aoiType()     {}
func (*InterfaceRef) aoiType() {}

func (t *Primitive) String() string { return t.Kind.String() }

func (t *String) String() string {
	if t.Bound == 0 {
		return "string"
	}
	return fmt.Sprintf("string<%d>", t.Bound)
}

func (t *Sequence) String() string {
	if t.Bound == 0 {
		return fmt.Sprintf("sequence<%s>", t.Elem)
	}
	return fmt.Sprintf("sequence<%s,%d>", t.Elem, t.Bound)
}

func (t *Array) String() string { return fmt.Sprintf("%s[%d]", t.Elem, t.Length) }

func (t *Struct) String() string {
	if t.Name != "" {
		return "struct " + t.Name
	}
	var b strings.Builder
	b.WriteString("struct {")
	for i, f := range t.Fields {
		if i > 0 {
			b.WriteString("; ")
		}
		fmt.Fprintf(&b, "%s %s", f.Type, f.Name)
	}
	b.WriteString("}")
	return b.String()
}

func (t *Union) String() string {
	if t.Name != "" {
		return "union " + t.Name
	}
	return "union"
}

func (t *Enum) String() string {
	if t.Name != "" {
		return "enum " + t.Name
	}
	return "enum {" + strings.Join(t.Members, ", ") + "}"
}

func (t *NamedRef) String() string     { return t.Name }
func (t *Optional) String() string     { return t.Elem.String() + "*" }
func (t *InterfaceRef) String() string { return "interface " + t.Name }

// Resolve follows NamedRef chains to the underlying definition.
func Resolve(t Type) Type {
	for {
		ref, ok := t.(*NamedRef)
		if !ok {
			return t
		}
		t = ref.Def
	}
}

// IsVoid reports whether t is the void primitive.
func IsVoid(t Type) bool {
	p, ok := Resolve(t).(*Primitive)
	return ok && p.Kind == Void
}
