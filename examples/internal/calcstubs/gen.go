// Package calcstubs holds flick-generated stubs for the cross-IDL
// example: the same calculator compiled from the ONC RPC language
// (calc.x) and usable over ONC/XDR. Regenerate with go generate.
package calcstubs

//go:generate go run flick/cmd/flick -idl oncrpc -lang go -format xdr -style flick -package calcstubs -o calc_flick.go ../../idl/calc.x
