// Package dirstubs holds flick-generated stubs for the Directory example
// (GIOP message format over little-endian CDR). Regenerate with go
// generate.
package dirstubs

//go:generate go run flick/cmd/flick -idl corba -lang go -format cdr-le -style flick -package dirstubs -o dir_flick.go ../../idl/dir.idl
