// Package mailstubs holds flick-generated stubs for the Mail example
// (ONC RPC message format over XDR). Regenerate with go generate.
package mailstubs

//go:generate go run flick/cmd/flick -idl corba -lang go -format xdr -style flick -package mailstubs -o mail_flick.go ../../idl/mail.idl
