// Dirserver: the directory-listing workload the paper's evaluation is
// built around, as a working CORBA-style application — generated Flick
// stubs, GIOP message format, little-endian CDR encoding, TCP transport,
// real filesystem data.
//
//	go run ./examples/dirserver [path]
//
// The server lists real directories; the client prints the entries the
// way ls would, after they crossed the wire as GIOP messages with
// word-at-a-time operation demultiplexing on the server side.
package main

import (
	"errors"
	"fmt"
	"log"
	"os"

	stubs "flick/examples/internal/dirstubs"
	"flick/rt"
)

// dirService implements the generated DirectoryServer interface over the
// local filesystem.
type dirService struct{}

func (dirService) List(path string) ([]stubs.DirectoryDirEntry, int32, error) {
	entries, err := os.ReadDir(path)
	if err != nil {
		return nil, 0, &stubs.DirectoryNotFound{Path: path}
	}
	var out []stubs.DirectoryDirEntry
	for _, e := range entries {
		name := e.Name()
		if len(name) > 255 {
			name = name[:255]
		}
		de := stubs.DirectoryDirEntry{Name: name}
		if info, err := e.Info(); err == nil {
			de.Info = stubs.DirectoryStatInfo{
				Size:  info.Size(),
				Mode:  int32(info.Mode()),
				Mtime: info.ModTime().Unix(),
				IsDir: info.IsDir(),
			}
		}
		out = append(out, de)
	}
	return out, int32(len(out)), nil
}

func main() {
	path := "."
	if len(os.Args) > 1 {
		path = os.Args[1]
	}

	l, err := rt.ListenTCP("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer l.Close()
	srv := rt.NewServer(rt.GIOP{Little: true})
	stubs.RegisterDirectory(srv, dirService{})
	go srv.Serve(l)
	fmt.Println("directory server (GIOP/CDR) on", l.Addr())

	conn, err := rt.DialTCP(l.Addr())
	if err != nil {
		log.Fatal(err)
	}
	c := stubs.NewDirectoryClient(conn)
	defer c.C.Close()

	entries, total, err := c.List(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("listing of %q (%d entries):\n", path, total)
	for _, e := range entries {
		kind := "file"
		if e.Info.IsDir {
			kind = "dir "
		}
		fmt.Printf("  %s %10d  %s\n", kind, e.Info.Size, e.Name)
	}

	// A missing path raises the declared exception, typed.
	_, _, err = c.List("/no/such/path")
	var nf *stubs.DirectoryNotFound
	if errors.As(err, &nf) {
		fmt.Printf("List(/no/such/path) raised Directory::NotFound for %q\n", nf.Path)
	} else {
		log.Fatalf("expected Directory::NotFound, got %v", err)
	}
}
