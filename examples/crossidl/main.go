// Crossidl: the paper's flexibility claim, demonstrated — the same
// service defined in two different IDLs compiles through the same
// intermediate representations and the same optimizing back end, and the
// stubs interoperate over one wire.
//
//	go run ./examples/crossidl
//
// Part 1 compiles a calculator written in the ONC RPC language (calc.x,
// pre-generated into examples/internal/calcstubs) and serves it over
// ONC/XDR/TCP.
//
// Part 2 compiles the equivalent CORBA IDL at runtime and shows that the
// two front ends meet in matching network contracts: same operations,
// same message shapes, different programmer's contracts.
package main

import (
	"fmt"
	"log"

	"flick"
	stubs "flick/examples/internal/calcstubs"
	"flick/rt"
)

type calc struct{}

func (calc) Add(p stubs.Pair) (int32, error) { return p.A + p.B, nil }
func (calc) Mul(p stubs.Pair) (int32, error) { return p.A * p.B, nil }

const corbaEquivalent = `
interface Calc {
	struct pair { long a; long b; };
	long add(in pair p);
	long mul(in pair p);
};
`

func main() {
	// Part 1: serve the rpcgen-language version, for real.
	l, err := rt.ListenTCP("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer l.Close()
	srv := rt.NewServer(rt.ONC{})
	stubs.RegisterCALC(srv, calc{})
	go srv.Serve(l)

	conn, err := rt.DialTCP(l.Addr())
	if err != nil {
		log.Fatal(err)
	}
	c := stubs.NewCALCClient(conn)
	defer c.C.Close()

	sum, err := c.Add(stubs.Pair{A: 20, B: 22})
	if err != nil {
		log.Fatal(err)
	}
	prod, err := c.Mul(stubs.Pair{A: 6, B: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ONC-defined calculator over XDR/TCP: add(20,22)=%d mul(6,7)=%d\n\n", sum, prod)

	// Part 2: the CORBA spelling of the same contract.
	oncAOI, err := flick.Parse("calc.x", `
		struct pair { int a; int b; };
		program CALC {
			version CALC_V1 {
				int add(pair) = 1;
				int mul(pair) = 2;
			} = 1;
		} = 0x20000042;
	`, "oncrpc")
	if err != nil {
		log.Fatal(err)
	}
	corbaAOI, err := flick.Parse("calc.idl", corbaEquivalent, "corba")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("The two IDLs produce equivalent network contracts (AOI):")
	for _, af := range []struct {
		label string
		ops   int
		id    string
	}{
		{"ONC RPC calc.x  ", len(oncAOI.Interfaces[0].Ops), oncAOI.Interfaces[0].ID},
		{"CORBA  calc.idl ", len(corbaAOI.Interfaces[0].Ops), corbaAOI.Interfaces[0].ID},
	} {
		fmt.Printf("  %s -> %d operations, wire id %q\n", af.label, af.ops, af.id)
	}

	// Both compile through the same back end; the marshal code for the
	// pair argument is byte-for-byte the same shape.
	for _, in := range []struct{ name, idl, src string }{
		{"calc.x", "oncrpc", `
			struct pair { int a; int b; };
			program CALC { version V { int add(pair) = 1; } = 1; } = 2;
		`},
		{"calc.idl", "corba", `interface Calc { struct pair { long a; long b; }; long add(in pair p); };`},
	} {
		out, err := flick.Compile(in.name, in.src, flick.Options{
			IDL: in.idl, Format: "xdr", Package: "calc", SkipDecls: true, EmitRPC: false,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s compiled by the shared optimizing back end: %d bytes of stubs\n", in.name, len(out))
	}
	fmt.Println("\n(The presentations differ — rpcgen names vs CORBA names — but MINT,")
	fmt.Println(" the optimizer, and the XDR encoding are one code path: Flick's kit design.)")
}
