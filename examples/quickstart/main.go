// Quickstart: compile an IDL through Flick's three phases and look at
// what each one produces.
//
//	go run ./examples/quickstart
//
// The program feeds the paper's introductory Mail interface to the
// compiler twice — once written in CORBA IDL and once in the ONC RPC
// language — and shows that both front ends meet in the same
// intermediate representation and reach the same optimizing back end.
package main

import (
	"fmt"
	"strings"

	"flick"
)

const corbaMail = `
interface Mail {
	void send(in string msg);
};
`

const oncMail = `
program Mail {
	version MailVers {
		void send(string) = 1;
	} = 1;
} = 0x20000001;
`

func main() {
	fmt.Println("== Front end: two IDLs, one network contract ==")
	for _, in := range []struct{ name, idl, src string }{
		{"mail.idl (CORBA IDL)", "corba", corbaMail},
		{"mail.x (ONC RPC)", "oncrpc", oncMail},
	} {
		af, err := flick.Parse(in.name, in.src, in.idl)
		if err != nil {
			panic(err)
		}
		it := af.Interfaces[0]
		fmt.Printf("  %-22s -> AOI interface %q, %d operation(s), wire id %q\n",
			in.name, it.Name, len(it.Ops), it.ID)
	}

	fmt.Println()
	fmt.Println("== Presentation + back end: optimized Go stubs over XDR ==")
	code, err := flick.Compile("mail.idl", corbaMail, flick.Options{
		IDL:    "corba",
		Lang:   "go",
		Format: "xdr",
		Style:  "flick",
	})
	if err != nil {
		panic(err)
	}
	show(code, "func MarshalMailSendRequest")

	fmt.Println()
	fmt.Println("== Same interface, rpcgen-style baseline (per-datum calls) ==")
	naive, err := flick.Compile("mail.idl", corbaMail, flick.Options{
		IDL:       "corba",
		Lang:      "go",
		Format:    "xdr",
		Style:     "rpcgen",
		SkipDecls: true,
	})
	if err != nil {
		panic(err)
	}
	show(naive, "func MarshalMailSendRequest")

	fmt.Println()
	fmt.Printf("generated sizes: optimized %d bytes, naive %d bytes\n", len(code), len(naive))
	fmt.Println("(run `go run ./cmd/flick -h` for every front end, format, and style)")
}

// show prints one generated function from the compiler output.
func show(code, fn string) {
	idx := strings.Index(code, fn)
	if idx < 0 {
		fmt.Println("  (function not found)")
		return
	}
	end := strings.Index(code[idx:], "\n}")
	if end < 0 {
		end = len(code) - idx
	}
	for _, line := range strings.Split(code[idx:idx+end+2], "\n") {
		fmt.Println("  " + line)
	}
}
