// Mailservice: the paper's introductory Mail interface as a working RPC
// application — generated Flick stubs, ONC RPC message format, XDR
// encoding, TCP transport.
//
//	go run ./examples/mailservice
//
// The program starts a server on a loopback port, connects a client, and
// exercises every operation, including a typed exception crossing the
// wire and a oneway call.
package main

import (
	"errors"
	"fmt"
	"log"
	"sync"

	stubs "flick/examples/internal/mailstubs"
	"flick/rt"
)

// mailbox implements the generated MailServer interface.
type mailbox struct {
	mu   sync.Mutex
	msgs []string
}

func (m *mailbox) Send(msg string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.msgs = append(m.msgs, msg)
	return nil
}

func (m *mailbox) Unread() (int32, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return int32(len(m.msgs)), nil
}

func (m *mailbox) Fetch(idx int32) (string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if idx < 0 || int(idx) >= len(m.msgs) {
		return "", &stubs.MailRejected{Reason: fmt.Sprintf("no message %d", idx)}
	}
	return m.msgs[idx], nil
}

func (m *mailbox) Flush() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.msgs = nil
	return nil
}

func main() {
	// Server.
	l, err := rt.ListenTCP("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer l.Close()
	srv := rt.NewServer(rt.ONC{})
	stubs.RegisterMail(srv, &mailbox{})
	go srv.Serve(l)
	fmt.Println("mail server listening on", l.Addr())

	// Client.
	conn, err := rt.DialTCP(l.Addr())
	if err != nil {
		log.Fatal(err)
	}
	c := stubs.NewMailClient(conn)
	defer c.C.Close()

	for _, msg := range []string{"hello", "flick is an IDL compiler", "bye"} {
		if err := c.Send(msg); err != nil {
			log.Fatal(err)
		}
	}
	n, err := c.Unread()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("unread:", n)

	for i := int32(0); i < n; i++ {
		msg, err := c.Fetch(i)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("fetch(%d) = %q\n", i, msg)
	}

	// A typed exception crosses the wire.
	_, err = c.Fetch(99)
	var rej *stubs.MailRejected
	if errors.As(err, &rej) {
		fmt.Printf("fetch(99) raised Mail::Rejected: %s\n", rej.Reason)
	} else {
		log.Fatalf("expected Mail::Rejected, got %v", err)
	}

	// Oneway: returns without waiting for a reply.
	if err := c.Flush(); err != nil {
		log.Fatal(err)
	}
	n, err = c.Unread()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("unread after flush:", n)
}
