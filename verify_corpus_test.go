package flick_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"flick"
	"flick/internal/backend/gostub"
	"flick/internal/verify"
)

// corpusIDLs returns every IDL source shipped with the repository: the
// examples plus the exhaustive type-coverage interface used by the
// round-trip tests.
func corpusIDLs(t *testing.T) []string {
	t.Helper()
	var files []string
	// typestubs matters: its type zoo (unions inside sequences, recursion
	// through optionals) regression-tests the verifier's budget model for
	// grouped ensure checks absorbed across switch arms.
	for _, dir := range []string{"examples/idl", "internal/teststubs", "internal/typestubs"} {
		ents, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range ents {
			if strings.HasSuffix(e.Name(), ".idl") || strings.HasSuffix(e.Name(), ".x") ||
				strings.HasSuffix(e.Name(), ".defs") {
				files = append(files, filepath.Join(dir, e.Name()))
			}
		}
	}
	if len(files) < 4 {
		t.Fatalf("corpus too small: %v", files)
	}
	return files
}

// TestVerifyCorpusZeroFindings compiles every shipped IDL under every
// wire format and code style with strict verification: the MINT, PRES-C,
// and MIR verifiers must pass every stage of every pipeline with zero
// findings. This is the "verifiers are on by default and the compiler's
// own output satisfies its own invariants" guarantee.
func TestVerifyCorpusZeroFindings(t *testing.T) {
	// The repo ships no .defs file; cover the MIG pipeline inline.
	type source struct{ file, src string }
	sources := []source{{"bench.defs", `
		subsystem bench 2400;
		routine send_ints(port : mach_port_t; v : array[] of int32_t);
	`}}
	for _, file := range corpusIDLs(t) {
		src, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		sources = append(sources, source{file, string(src)})
	}
	for _, in := range sources {
		file, src := in.file, in.src
		langs := []string{"go", "c"}
		if strings.HasSuffix(file, ".defs") {
			langs = []string{"go"}
		}
		for _, lang := range langs {
			for _, format := range []string{"xdr", "cdr", "cdr-le", "mach3", "fluke"} {
				for _, style := range []string{"flick", "rpcgen", "powerrpc"} {
					stats := &gostub.Stats{}
					_, err := flick.Compile(file, src, flick.Options{
						Lang: lang, Format: format, Style: style,
						Package: "p", EmitRPC: lang == "go",
						Verify: verify.Strict,
						Stats:  stats,
					})
					if err != nil {
						t.Errorf("%s/%s/%s/%s: %v", file, lang, format, style, err)
						continue
					}
					if stats.Verify.Findings != 0 {
						t.Errorf("%s/%s/%s/%s: %d verifier findings", file, lang, format, style,
							stats.Verify.Findings)
					}
					if stats.Verify.MirPrograms == 0 || stats.Verify.PrescStubs == 0 {
						t.Errorf("%s/%s/%s/%s: verifier ran over nothing (%s)",
							file, lang, format, style, stats.Verify.Report())
					}
				}
			}
		}
	}
}

// TestVerifyOffSkipsChecks confirms -noverify plumbing: counters stay
// zero when verification is off.
func TestVerifyOffSkipsChecks(t *testing.T) {
	stats := &gostub.Stats{}
	_, err := flick.Compile("m.idl", mailCorba, flick.Options{
		Package: "p", Verify: verify.Off, Stats: stats,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Verify.MirPrograms != 0 || stats.Verify.PrescStubs != 0 {
		t.Fatalf("verification ran despite Off: %s", stats.Verify.Report())
	}
}
