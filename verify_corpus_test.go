package flick_test

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"flick"
	"flick/internal/backend/gostub"
	"flick/internal/lint"
	"flick/internal/verify"
)

// corpusIDLs returns every IDL source shipped with the repository: the
// examples plus the exhaustive type-coverage interface used by the
// round-trip tests.
func corpusIDLs(t *testing.T) []string {
	t.Helper()
	var files []string
	// typestubs matters: its type zoo (unions inside sequences, recursion
	// through optionals) regression-tests the verifier's budget model for
	// grouped ensure checks absorbed across switch arms.
	for _, dir := range []string{"examples/idl", "internal/teststubs", "internal/typestubs",
		"internal/streamstubs", "internal/zcstubs"} {
		ents, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range ents {
			if strings.HasSuffix(e.Name(), ".idl") || strings.HasSuffix(e.Name(), ".x") ||
				strings.HasSuffix(e.Name(), ".defs") {
				files = append(files, filepath.Join(dir, e.Name()))
			}
		}
	}
	if len(files) < 4 {
		t.Fatalf("corpus too small: %v", files)
	}
	return files
}

// TestVerifyCorpusZeroFindings compiles every shipped IDL under every
// wire format and code style with strict verification: the MINT, PRES-C,
// and MIR verifiers must pass every stage of every pipeline with zero
// findings. This is the "verifiers are on by default and the compiler's
// own output satisfies its own invariants" guarantee.
func TestVerifyCorpusZeroFindings(t *testing.T) {
	// The repo ships no .defs file; cover the MIG pipeline inline.
	type source struct{ file, src string }
	sources := []source{{"bench.defs", `
		subsystem bench 2400;
		routine send_ints(port : mach_port_t; v : array[] of int32_t);
	`}}
	for _, file := range corpusIDLs(t) {
		src, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		sources = append(sources, source{file, string(src)})
	}
	for _, in := range sources {
		file, src := in.file, in.src
		langs := []string{"go", "c"}
		if strings.HasSuffix(file, ".defs") {
			langs = []string{"go"}
		}
		for _, lang := range langs {
			for _, format := range []string{"xdr", "cdr", "cdr-le", "mach3", "fluke"} {
				for _, style := range []string{"flick", "rpcgen", "powerrpc"} {
					stats := &gostub.Stats{}
					_, err := flick.Compile(file, src, flick.Options{
						Lang: lang, Format: format, Style: style,
						Package: "p", EmitRPC: lang == "go",
						Verify: verify.Strict,
						Stats:  stats,
					})
					if err != nil {
						t.Errorf("%s/%s/%s/%s: %v", file, lang, format, style, err)
						continue
					}
					if stats.Verify.Findings != 0 {
						t.Errorf("%s/%s/%s/%s: %d verifier findings", file, lang, format, style,
							stats.Verify.Findings)
					}
					if stats.Verify.MirPrograms == 0 || stats.Verify.PrescStubs == 0 {
						t.Errorf("%s/%s/%s/%s: verifier ran over nothing (%s)",
							file, lang, format, style, stats.Verify.Report())
					}
				}
			}
		}
	}
}

// TestVerifyCorpusZeroCopy re-runs the corpus through the -zerocopy
// pipeline: every alias proof the MIR pass attaches must survive the
// zerocopy verifier's independent re-derivation under strict mode, for
// every wire format, and the corpus must actually exercise the prover
// (at least one region proven alias-safe somewhere).
func TestVerifyCorpusZeroCopy(t *testing.T) {
	totalRegions, totalAliased := 0, 0
	for _, file := range corpusIDLs(t) {
		src, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		for _, format := range []string{"xdr", "cdr", "cdr-le", "mach3", "fluke"} {
			stats := &gostub.Stats{}
			_, err := flick.Compile(file, string(src), flick.Options{
				Lang: "go", Format: format, Style: "flick",
				Package: "p", EmitRPC: true,
				ZeroCopy: true,
				Verify:   verify.Strict,
				Stats:    stats,
			})
			if err != nil {
				t.Errorf("%s/%s: %v", file, format, err)
				continue
			}
			if stats.Verify.Findings != 0 {
				t.Errorf("%s/%s: %d verifier findings under -zerocopy", file, format,
					stats.Verify.Findings)
			}
			totalRegions += stats.Verify.ZcRegions
			totalAliased += stats.Verify.ZcAliased
		}
	}
	if totalRegions == 0 || totalAliased == 0 {
		t.Fatalf("zerocopy verifier ran over nothing: regions=%d aliased=%d",
			totalRegions, totalAliased)
	}
}

// TestLintCorpusZeroFindings is the strict lint gate over generated
// code: every corpus IDL compiled with -zerocopy (plain, and with the
// full sync/async/stream surface set) must come out clean under the
// entire analyzer suite — in particular arenalife, since -zerocopy is
// what introduces arena-borrowed views into generated stubs.
func TestLintCorpusZeroFindings(t *testing.T) {
	exports, err := lint.ExportsFor("flick/rt")
	if err != nil {
		t.Fatalf("resolving flick/rt export data: %v", err)
	}
	dir := t.TempDir()
	n := 0
	for _, file := range corpusIDLs(t) {
		src, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		for _, surfaces := range []string{"", "sync,async,stream"} {
			if strings.HasSuffix(file, ".defs") && surfaces != "" {
				continue
			}
			code, err := flick.Compile(file, string(src), flick.Options{
				Lang: "go", Format: "xdr", Style: "flick",
				Package: "p", EmitRPC: true,
				Surfaces: surfaces,
				ZeroCopy: true,
			})
			if err != nil {
				t.Errorf("%s (surfaces %q): %v", file, surfaces, err)
				continue
			}
			out := filepath.Join(dir, fmt.Sprintf("gen%d.go", n))
			n++
			if err := os.WriteFile(out, []byte(code), 0o644); err != nil {
				t.Fatal(err)
			}
			pkg, err := lint.TypecheckFiles("gen", []string{out}, exports)
			if err != nil {
				t.Errorf("%s (surfaces %q): typecheck: %v", file, surfaces, err)
				continue
			}
			diags, err := lint.Analyze(pkg, lint.All())
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range diags {
				t.Errorf("%s (surfaces %q): lint finding in generated code: %s", file, surfaces, d)
			}
		}
	}
	if n == 0 {
		t.Fatal("lint gate ran over nothing")
	}
}

// TestVerifyOffSkipsChecks confirms -noverify plumbing: counters stay
// zero when verification is off.
func TestVerifyOffSkipsChecks(t *testing.T) {
	stats := &gostub.Stats{}
	_, err := flick.Compile("m.idl", mailCorba, flick.Options{
		Package: "p", Verify: verify.Off, Stats: stats,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Verify.MirPrograms != 0 || stats.Verify.PrescStubs != 0 {
		t.Fatalf("verification ran despite Off: %s", stats.Verify.Report())
	}
}
