package rt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Conn exchanges whole framed messages.
//
// Concurrency contract (the pipelined call engine depends on it): Send
// is safe for concurrent writers — every implementation serializes
// whole messages, so frames from concurrent calls and out-of-order
// replies never interleave on the wire. Recv is single-reader: exactly
// one goroutine (the client's reply reader, or a server connection's
// decode loop) may call it.
type Conn interface {
	// Send transmits one message. The buffer may be reused by the
	// caller after Send returns. Safe for concurrent use.
	Send(msg []byte) error
	// Recv returns the next whole message. Single goroutine only.
	Recv() ([]byte, error)
	Close() error
}

// Listener accepts connections.
type Listener interface {
	Accept() (Conn, error)
	Close() error
	Addr() string
}

// ErrClosed reports use of a closed transport.
var ErrClosed = errors.New("rt: transport closed")

// --- TCP with record marking --------------------------------------------------

// defaultMaxMessage bounds received messages when no tighter limit is
// configured (Server.MaxMessage / SetMaxMessage).
const defaultMaxMessage = 64 << 20

// tcpConn frames messages with the ONC record-marking convention: a u32
// header whose low 31 bits give the fragment length, high bit set on the
// last fragment. We always send whole messages as single fragments.
type tcpConn struct {
	c    net.Conn
	rbuf []byte
	wmu  sync.Mutex
	// whdr/wvec are SendVectored's scratch (guarded by wmu): a
	// persistent record-mark header and iovec list so the writev path
	// allocates nothing per send.
	whdr [4]byte
	wvec [][]byte
	// maxMsg bounds received messages. The length field of a record
	// mark is attacker-controlled, so Recv validates it against this
	// bound — cumulatively across fragments — *before* allocating the
	// body buffer: a hostile frame claiming a huge body costs the
	// attacker a connection, not the server a huge allocation.
	maxMsg int
}

// DialTCP connects to an RPC server over TCP.
func DialTCP(addr string) (Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &tcpConn{c: c}, nil
}

func (t *tcpConn) Send(msg []byte) error {
	t.wmu.Lock()
	defer t.wmu.Unlock()
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(msg))|0x80000000)
	if _, err := t.c.Write(hdr[:]); err != nil {
		return err
	}
	_, err := t.c.Write(msg)
	return err
}

// SetMaxMessage bounds received messages (headers validated before any
// body allocation). Applied by Server.MaxMessage; set before the first
// Recv.
func (t *tcpConn) SetMaxMessage(n int) { t.maxMsg = n }

// SetReadDeadline bounds the next Recv (Server.IdleTimeout).
func (t *tcpConn) SetReadDeadline(dl time.Time) error { return t.c.SetReadDeadline(dl) }

func (t *tcpConn) Recv() ([]byte, error) {
	max := t.maxMsg
	if max <= 0 {
		max = defaultMaxMessage
	}
	var msg []byte
	for {
		var hdr [4]byte
		if _, err := io.ReadFull(t.c, hdr[:]); err != nil {
			return nil, err
		}
		mark := binary.BigEndian.Uint32(hdr[:])
		n := int(mark & 0x7FFFFFFF)
		// Validate the claimed length — including the running total
		// across fragments, which was previously unbounded — before
		// allocating or reading a single body byte.
		if n > max || len(msg)+n > max {
			return nil, fmt.Errorf("rt: oversized record fragment (%d bytes, %d max)", len(msg)+n, max)
		}
		// The whole message is this conn's to give away, so the first
		// (usually only) fragment draws from the receive arena — the
		// decoder recycles it when no alias views escape.
		if msg == nil {
			frag := getArenaBuf(n)
			if _, err := io.ReadFull(t.c, frag); err != nil {
				putArenaBuf(frag)
				return nil, err
			}
			msg = frag
		} else {
			frag := make([]byte, n)
			if _, err := io.ReadFull(t.c, frag); err != nil {
				return nil, err
			}
			msg = append(msg, frag...)
		}
		if mark&0x80000000 != 0 {
			return msg, nil
		}
	}
}

func (t *tcpConn) Close() error { return t.c.Close() }

// arenaOwned marks conns whose Recv buffers are whole-owned by the
// receiver, making them safe to recycle through the arena pool.
// Wrappers (checksum, fault, batch) deliberately do not implement it:
// BatchConn in particular hands out sub-slices of a shared frame, and
// recycling one message's backing array would corrupt its siblings.
func (t *tcpConn) arenaOwned() {}

type tcpListener struct{ l net.Listener }

// ListenTCP starts a TCP listener; addr ":0" picks a free port.
func ListenTCP(addr string) (Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &tcpListener{l: l}, nil
}

func (t *tcpListener) Accept() (Conn, error) {
	c, err := t.l.Accept()
	if err != nil {
		return nil, err
	}
	return &tcpConn{c: c}, nil
}

func (t *tcpListener) Close() error { return t.l.Close() }
func (t *tcpListener) Addr() string { return t.l.Addr().String() }

// --- UDP ------------------------------------------------------------------------

// udpConn sends each message as one datagram (classic ONC/UDP).
// Send is concurrency-safe: net.UDPConn serializes datagram writes, and
// peer is only written before the first concurrent use (see Recv).
type udpConn struct {
	c *net.UDPConn
	// connected marks a dialed (pre-connected) socket, which must use
	// Write rather than WriteToUDP.
	connected bool
	// peer records the first datagram's source on server-side
	// (unconnected) conns; replies go back to it.
	peer *net.UDPAddr
	rbuf []byte
}

// DialUDP connects a datagram client.
func DialUDP(addr string) (Conn, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	c, err := net.DialUDP("udp", nil, ua)
	if err != nil {
		return nil, err
	}
	return &udpConn{c: c, connected: true, rbuf: make([]byte, 64<<10)}, nil
}

func (u *udpConn) Send(msg []byte) error {
	if len(msg) > 64<<10 {
		return fmt.Errorf("rt: message too large for UDP (%d bytes)", len(msg))
	}
	if u.peer != nil {
		_, err := u.c.WriteToUDP(msg, u.peer)
		return err
	}
	_, err := u.c.Write(msg)
	return err
}

func (u *udpConn) Recv() ([]byte, error) {
	n, peer, err := u.c.ReadFromUDP(u.rbuf)
	if err != nil {
		return nil, err
	}
	if !u.connected && u.peer == nil && peer != nil {
		u.peer = peer
	}
	out := getArenaBuf(n)
	copy(out, u.rbuf[:n])
	return out, nil
}

// arenaOwned: each datagram is copied out of rbuf into a fresh buffer
// the receiver whole-owns.
func (u *udpConn) arenaOwned() {}

// SetReadDeadline bounds the next Recv (Server.IdleTimeout).
func (u *udpConn) SetReadDeadline(dl time.Time) error { return u.c.SetReadDeadline(dl) }

func (u *udpConn) Close() error { return u.c.Close() }

// ListenUDP returns a server-side UDP "connection" that answers each
// datagram's source (single-conn model: suitable for one dispatch loop).
func ListenUDP(addr string) (Conn, string, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, "", err
	}
	c, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, "", err
	}
	return &udpConn{c: c, rbuf: make([]byte, 64<<10)}, c.LocalAddr().String(), nil
}

// --- In-process ports (Mach / Fluke) ---------------------------------------------

// pipeConn is an in-process message port pair modeling Mach ports and
// Fluke IPC: no network stack, messages pass by reference between
// goroutines.
type pipeConn struct {
	send chan<- []byte
	recv <-chan []byte
	// closing is shared by both ends: closing either (or both) ends
	// tears the pair down exactly once.
	closing *pipeClose
}

type pipeClose struct {
	once sync.Once
	done chan struct{}
}

// Pipe returns two connected in-process ports.
func Pipe() (Conn, Conn) {
	a2b := make(chan []byte, 16)
	b2a := make(chan []byte, 16)
	cl := &pipeClose{done: make(chan struct{})}
	a := &pipeConn{send: a2b, recv: b2a, closing: cl}
	b := &pipeConn{send: b2a, recv: a2b, closing: cl}
	return a, b
}

func (p *pipeConn) Send(msg []byte) error {
	// Fail deterministically once closed (the buffered channel could
	// otherwise still win the race below).
	select {
	case <-p.closing.done:
		return ErrClosed
	default:
	}
	// Messages pass by value (the caller reuses its buffer). The copy
	// is the receiver's property, so it draws from the arena pool.
	out := getArenaBuf(len(msg))
	copy(out, msg)
	select {
	case p.send <- out:
		return nil
	case <-p.closing.done:
		return ErrClosed
	}
}

func (p *pipeConn) Recv() ([]byte, error) {
	select {
	case m := <-p.recv:
		return m, nil
	case <-p.closing.done:
		return nil, ErrClosed
	}
}

func (p *pipeConn) Close() error {
	p.closing.once.Do(func() { close(p.closing.done) })
	return nil
}

// arenaOwned: Send copies into a fresh buffer that becomes the
// receiver's property once it crosses the channel.
func (p *pipeConn) arenaOwned() {}
