package rt

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// Regression tests pinning the InFlight and QueueDepth gauge
// invariants: whatever a call's fate — success, timeout, send failure,
// poisoned session, breaker shed, admission reject, handler panic —
// both gauges return to zero once the system quiesces. A stuck gauge
// means an error path skipped its decrement (or a reject path
// incremented without handing off).
//
// The tests assert through Snapshot.Sub: a base snapshot before the
// workload, the delta after quiescence. That checks the per-interval
// contract the debug surface relies on (a gauge delta of zero over a
// quiesced interval) instead of absolute counter values, and so also
// regression-tests the diffing helper itself.

func waitGaugeZero(t *testing.T, name string, m *Metrics, base Snapshot, gauge func(Snapshot) int64) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if v := gauge(m.Snapshot().Sub(base)); v == 0 {
			return
		} else if time.Now().After(deadline) {
			t.Fatalf("%s gauge delta stuck at %d over a quiesced interval, want 0", name, v)
		}
		time.Sleep(time.Millisecond)
	}
}

func inFlight(s Snapshot) int64   { return s.InFlight }
func queueDepth(s Snapshot) int64 { return s.QueueDepth }

func TestInFlightZeroAfterSuccessAndDispatchError(t *testing.T) {
	conn, _, _ := startObservedServer(t)
	c := newEchoClient(conn)
	m := NewMetrics()
	c.Metrics = m
	base := m.Snapshot()

	doubleCall(t, c, 5)
	// Dispatch error (proc 2 always fails): server replies ErrSystem.
	if _, err := c.Call(2, "fail", false, func(e *Encoder) {}); !errors.Is(err, ErrSystem) {
		t.Fatalf("fail call = %v, want ErrSystem", err)
	}
	// Oneway never increments InFlight (nothing is in flight to match).
	if _, err := c.Call(3, "note", true, func(e *Encoder) {}); err != nil {
		t.Fatal(err)
	}
	waitGaugeZero(t, "InFlight", m, base, inFlight)
}

func TestInFlightZeroAfterTimeout(t *testing.T) {
	clientEnd, serverEnd := Pipe()
	c := newEchoClient(clientEnd)
	m := NewMetrics()
	c.Metrics = m
	base := m.Snapshot()
	c.Timeout = 10 * time.Millisecond
	defer clientEnd.Close()

	// The peer swallows the request: the call must time out.
	go func() { serverEnd.Recv() }()
	if _, err := c.Call(1, "double", false, func(e *Encoder) { e.PutU32BEC(1) }); !errors.Is(err, ErrTimeout) {
		t.Fatalf("swallowed call = %v, want ErrTimeout", err)
	}
	waitGaugeZero(t, "InFlight", m, base, inFlight)
}

func TestInFlightZeroAfterSendFailure(t *testing.T) {
	clientEnd, serverEnd := Pipe()
	c := newEchoClient(clientEnd)
	m := NewMetrics()
	c.Metrics = m
	base := m.Snapshot()

	serverEnd.Close()
	clientEnd.Close()
	if _, err := c.Call(1, "double", false, func(e *Encoder) { e.PutU32BEC(1) }); err == nil {
		t.Fatal("send on a closed conn succeeded")
	}
	waitGaugeZero(t, "InFlight", m, base, inFlight)
}

func TestInFlightZeroAfterPoisonDrain(t *testing.T) {
	clientEnd, serverEnd := Pipe()
	c := newEchoClient(clientEnd)
	m := NewMetrics()
	c.Metrics = m
	base := m.Snapshot()

	// Park several calls, then kill the peer: the reply reader drains
	// every pending call with the terminal error.
	const n = 4
	swallowed := make(chan struct{}, n)
	go func() {
		for {
			if _, err := serverEnd.Recv(); err != nil {
				return
			}
			swallowed <- struct{}{}
		}
	}()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.Call(1, "double", false, func(e *Encoder) { e.PutU32BEC(1) })
		}()
	}
	for i := 0; i < n; i++ {
		<-swallowed
	}
	serverEnd.Close()
	wg.Wait()
	waitGaugeZero(t, "InFlight", m, base, inFlight)
	clientEnd.Close()
}

func TestInFlightZeroAfterBreakerReject(t *testing.T) {
	clientEnd, serverEnd := Pipe()
	serverEnd.Close()
	clientEnd.Close()
	c := newEchoClient(clientEnd)
	m := NewMetrics()
	c.Metrics = m
	base := m.Snapshot()
	c.Breaker = &Breaker{Threshold: 1, Cooldown: time.Minute}
	c.Retry = &RetryPolicy{MaxAttempts: 1}

	c.Call(1, "double", false, func(e *Encoder) { e.PutU32BEC(1) }) // opens the breaker
	if _, err := c.Call(1, "double", false, func(e *Encoder) { e.PutU32BEC(1) }); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("shed call = %v, want ErrBreakerOpen", err)
	}
	if m.BreakerRejects.Load() == 0 {
		t.Error("BreakerRejects not counted")
	}
	waitGaugeZero(t, "InFlight", m, base, inFlight)
}

func TestQueueDepthZeroAfterPanicsAndErrors(t *testing.T) {
	clientEnd, serverEnd := Pipe()
	s := NewServer(ONC{})
	s.Workers = 2
	s.Metrics = NewMetrics()
	base := s.Metrics.Snapshot()
	s.Register(7, 1, func(h *ReqHeader, d *Decoder, e *Encoder) error {
		switch h.Proc {
		case 1:
			h.OpName = "boom"
			panic("handler exploded")
		case 2:
			h.OpName = "fail"
			return errors.New("work failed")
		}
		return ErrNoSuchOp
	})
	done := make(chan struct{})
	go func() { defer close(done); s.ServeConn(serverEnd) }()
	t.Cleanup(func() { clientEnd.Close(); <-done })

	c := newEchoClient(clientEnd)
	for proc := uint32(1); proc <= 3; proc++ {
		if _, err := c.Call(proc, "x", false, func(e *Encoder) {}); !errors.Is(err, ErrSystem) {
			t.Fatalf("proc %d = %v, want ErrSystem", proc, err)
		}
	}
	if s.Metrics.PanicsRecovered.Load() == 0 {
		t.Error("panic not recovered")
	}
	waitGaugeZero(t, "QueueDepth", s.Metrics, base, queueDepth)
}

func TestQueueDepthZeroAfterAdmissionReject(t *testing.T) {
	adm := &Admission{MaxLoad: 1}
	block := make(chan struct{})
	conn, sm := startAdmissionServer(t, adm, block)
	base := sm.Snapshot()
	c := newEchoClient(conn)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		d, err := c.Call(1, "double", false, func(e *Encoder) { e.PutU32BEC(1) })
		if err == nil {
			d.Release()
		}
	}()
	for deadline := time.Now().Add(2 * time.Second); adm.Load() < 1; {
		if time.Now().After(deadline) {
			t.Fatal("handler never occupied the gate")
		}
		time.Sleep(time.Millisecond)
	}
	// The reject path must not touch QueueDepth: the request never
	// reaches the queue.
	if _, err := c.Call(1, "double", false, func(e *Encoder) { e.PutU32BEC(2) }); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("overloaded call = %v", err)
	}
	close(block)
	wg.Wait()
	waitGaugeZero(t, "QueueDepth", sm, base, queueDepth)
	if adm.Load() != 0 {
		t.Errorf("admission load = %d after quiescence, want 0", adm.Load())
	}
}

func TestQueueDepthZeroAfterConnTeardownMidQueue(t *testing.T) {
	// Queue a burst against a single slow worker, then rip the
	// connection down: queued jobs drain through the worker (reply sends
	// fail) and the gauge must come back to zero.
	clientEnd, serverEnd := Pipe()
	s := NewServer(ONC{})
	s.Workers = 1
	s.Metrics = NewMetrics()
	base := s.Metrics.Snapshot()
	release := make(chan struct{})
	var once sync.Once
	s.Register(7, 1, func(h *ReqHeader, d *Decoder, e *Encoder) error {
		h.OpName = "slow"
		once.Do(func() { <-release })
		if !d.Ensure(4) {
			return d.Err()
		}
		e.PutU32BEC(d.U32BE())
		return nil
	})
	done := make(chan struct{})
	go func() { defer close(done); s.ServeConn(serverEnd) }()

	c := newEchoClient(clientEnd)
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c.Call(1, "slow", false, func(e *Encoder) { e.PutU32BEC(uint32(i)) })
		}(i)
	}
	// Let the burst queue up behind the blocked worker, then tear down.
	time.Sleep(20 * time.Millisecond)
	close(release)
	clientEnd.Close()
	wg.Wait()
	<-done
	waitGaugeZero(t, "QueueDepth", s.Metrics, base, queueDepth)
}
