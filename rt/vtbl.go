package rt

// Vtbl routes every datum through a function pointer: the extra
// indirection layer that models PowerRPC's runtime structure (rpcgen
// compatibility plus its own dispatch layer). Each entry performs the
// checked (per-datum-tested) operation.
var Vtbl = struct {
	P8    func(*Encoder, byte)
	P16BE func(*Encoder, uint16)
	P16LE func(*Encoder, uint16)
	P32BE func(*Encoder, uint32)
	P32LE func(*Encoder, uint32)
	P64BE func(*Encoder, uint64)
	P64LE func(*Encoder, uint64)
	G8    func(*Decoder) byte
	G16BE func(*Decoder) uint16
	G16LE func(*Decoder) uint16
	G32BE func(*Decoder) uint32
	G32LE func(*Decoder) uint32
	G64BE func(*Decoder) uint64
	G64LE func(*Decoder) uint64
}{
	P8:    func(e *Encoder, v byte) { NPutU8(e, v) },
	P16BE: func(e *Encoder, v uint16) { NPutU16BE(e, v) },
	P16LE: func(e *Encoder, v uint16) { NPutU16LE(e, v) },
	P32BE: func(e *Encoder, v uint32) { NPutU32BE(e, v) },
	P32LE: func(e *Encoder, v uint32) { NPutU32LE(e, v) },
	P64BE: func(e *Encoder, v uint64) { NPutU64BE(e, v) },
	P64LE: func(e *Encoder, v uint64) { NPutU64LE(e, v) },
	G8:    func(d *Decoder) byte { return NGetU8(d) },
	G16BE: func(d *Decoder) uint16 { return NGetU16BE(d) },
	G16LE: func(d *Decoder) uint16 { return NGetU16LE(d) },
	G32BE: func(d *Decoder) uint32 { return NGetU32BE(d) },
	G32LE: func(d *Decoder) uint32 { return NGetU32LE(d) },
	G64BE: func(d *Decoder) uint64 { return NGetU64BE(d) },
	G64LE: func(d *Decoder) uint64 { return NGetU64LE(d) },
}
