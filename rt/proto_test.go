package rt

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func protoRoundTrip(t *testing.T, p Protocol) {
	t.Helper()
	h := ReqHeader{
		XID: 42, Prog: 0x20000001, Vers: 1, Proc: 7,
		OpName: "send_ints", ObjectKey: []byte("objkey"),
	}
	var e Encoder
	p.WriteRequest(&e, &h)
	reqLen := e.Len()
	// The payload must begin max-aligned for every protocol we ship
	// (our back ends assume 4 at least; GIOP needs 8).
	if reqLen%4 != 0 {
		t.Errorf("%s: request payload offset %d not 4-aligned", p.Name(), reqLen)
	}
	d := NewDecoder(e.Bytes())
	got, err := p.ReadRequest(d)
	if err != nil {
		t.Fatalf("%s: ReadRequest: %v", p.Name(), err)
	}
	if got.XID != h.XID {
		t.Errorf("%s: xid = %d", p.Name(), got.XID)
	}
	if d.Pos() != reqLen {
		t.Errorf("%s: header read %d bytes, wrote %d", p.Name(), d.Pos(), reqLen)
	}

	var re Encoder
	rh := RepHeader{XID: 42, Status: ReplyOK}
	p.WriteReply(&re, &rh)
	rd := NewDecoder(re.Bytes())
	rgot, err := p.ReadReply(rd)
	if err != nil {
		t.Fatalf("%s: ReadReply: %v", p.Name(), err)
	}
	if rgot.XID != 42 || rgot.Status != ReplyOK {
		t.Errorf("%s: reply header = %+v", p.Name(), rgot)
	}

	// System-error replies survive the trip.
	re.Reset()
	p.WriteReply(&re, &RepHeader{XID: 1, Status: ReplySystemError})
	rgot, err = p.ReadReply(NewDecoder(re.Bytes()))
	if err != nil || rgot.Status != ReplySystemError {
		t.Errorf("%s: system error reply = %+v, %v", p.Name(), rgot, err)
	}
}

func TestProtocolRoundTrips(t *testing.T) {
	for _, p := range []Protocol{ONC{}, GIOP{}, GIOP{Little: true}, Mach{}, Fluke{}} {
		t.Run(p.Name(), func(t *testing.T) { protoRoundTrip(t, p) })
	}
}

func TestONCHeaderSpecifics(t *testing.T) {
	h := ReqHeader{XID: 9, Prog: 100, Vers: 2, Proc: 3}
	var e Encoder
	(ONC{}).WriteRequest(&e, &h)
	b := e.Bytes()
	if len(b) != 40 {
		t.Fatalf("ONC call header = %d bytes, want 40", len(b))
	}
	// xid, CALL, rpcvers=2, prog, vers, proc.
	want := []byte{
		0, 0, 0, 9, 0, 0, 0, 0, 0, 0, 0, 2,
		0, 0, 0, 100, 0, 0, 0, 2, 0, 0, 0, 3,
	}
	if !bytes.Equal(b[:24], want) {
		t.Errorf("header = %x", b[:24])
	}
	got, err := (ONC{}).ReadRequest(NewDecoder(b))
	if err != nil || got.Prog != 100 || got.Vers != 2 || got.Proc != 3 {
		t.Errorf("read = %+v, %v", got, err)
	}
}

func TestGIOPHeaderSpecifics(t *testing.T) {
	h := ReqHeader{XID: 5, OpName: "list", ObjectKey: []byte("k")}
	var e Encoder
	g := GIOP{Little: true}
	g.WriteRequest(&e, &h)
	b := e.Bytes()
	if string(b[:4]) != "GIOP" {
		t.Fatalf("magic = %q", b[:4])
	}
	if b[6] != 1 {
		t.Errorf("byte order flag = %d, want 1 (little)", b[6])
	}
	if len(b)%8 != 0 {
		t.Errorf("GIOP payload offset %d not 8-aligned", len(b))
	}
	got, err := g.ReadRequest(NewDecoder(b))
	if err != nil || got.OpName != "list" || string(got.ObjectKey) != "k" {
		t.Errorf("read = %+v, %v", got, err)
	}
	// Endianness mismatch is detected.
	if _, err := (GIOP{}).ReadRequest(NewDecoder(b)); err == nil {
		t.Error("BE reader accepted LE message")
	}
	// Bad magic is detected.
	bad := append([]byte("JUNK"), b[4:]...)
	if _, err := g.ReadRequest(NewDecoder(bad)); !errors.Is(err, ErrBadMagic) {
		t.Errorf("bad magic err = %v", err)
	}
}

func TestGIOPOpNameQuick(t *testing.T) {
	g := GIOP{Little: true}
	f := func(op string, key []byte) bool {
		if len(op) > 1000 || bytes.ContainsRune([]byte(op), 0) {
			return true
		}
		h := ReqHeader{XID: 1, OpName: op, ObjectKey: key}
		var e Encoder
		g.WriteRequest(&e, &h)
		got, err := g.ReadRequest(NewDecoder(e.Bytes()))
		return err == nil && got.OpName == op && bytes.Equal(got.ObjectKey, key)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTruncatedHeaders(t *testing.T) {
	for _, p := range []Protocol{ONC{}, GIOP{Little: true}, Mach{}, Fluke{}} {
		h := ReqHeader{XID: 1, OpName: "x", ObjectKey: []byte("k")}
		var e Encoder
		p.WriteRequest(&e, &h)
		full := e.Bytes()
		for cut := 0; cut < len(full); cut += 3 {
			if _, err := p.ReadRequest(NewDecoder(full[:cut])); err == nil {
				t.Errorf("%s: truncation at %d accepted", p.Name(), cut)
			}
		}
	}
}

func TestProtocolByName(t *testing.T) {
	for name, want := range map[string]string{
		"xdr": "onc", "onc": "onc",
		"cdr": "giop", "cdr-le": "giop", "giop": "giop",
		"mach3": "mach3", "fluke": "fluke",
	} {
		p, ok := ProtocolByName(name)
		if !ok || p.Name() != want {
			t.Errorf("ProtocolByName(%q) = %v,%v", name, p, ok)
		}
	}
	if _, ok := ProtocolByName("nope"); ok {
		t.Error("unknown protocol resolved")
	}
}
