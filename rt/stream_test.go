package rt

import (
	"errors"
	"io"
	"sync/atomic"
	"testing"
	"time"
)

// Tests for the credit-windowed server-push stream surface: delivery
// order, zero-window blocking, cancellation, error and teardown
// classification, and pool hygiene.

// streamFixture serves a hand-written stream dispatcher shaped exactly
// like a generated arm: proc 5 ("count") streams `n` sequence-numbered
// u32 chunks, pacing against the consumer's credit. sent counts
// successfully transmitted chunks; senderErr reports the handler's Send
// loop outcome when it ends.
type streamFixture struct {
	conn      Conn
	sent      atomic.Uint64
	senderErr chan error
}

func startStreamServer(t *testing.T) *streamFixture {
	t.Helper()
	f := &streamFixture{senderErr: make(chan error, 16)}
	clientEnd, serverEnd := Pipe()
	s := NewServer(ONC{})
	s.Workers = 4
	s.Register(7, 1, func(h *ReqHeader, d *Decoder, e *Encoder) error {
		if h.Proc != 5 {
			return echoDispatch(h, d, e)
		}
		h.OpName = "count"
		if !d.Ensure(8) {
			return d.Err()
		}
		n := d.U32BE()
		failAfter := d.U32BE() // stream a work error after this many chunks (0 = never)
		h.OneWay = true
		sn := NewStreamSender(h)
		var workErr error
		for i := uint32(0); i < n; i++ {
			if failAfter > 0 && i == failAfter {
				workErr = errors.New("mid-stream work failure")
				break
			}
			if err := sn.Send(func(e *Encoder) { e.PutU32BEC(i) }); err != nil {
				f.senderErr <- err
				sn.Finish(err)
				return nil
			}
			f.sent.Add(1)
		}
		f.senderErr <- workErr
		sn.Finish(workErr)
		return nil
	})
	done := make(chan struct{})
	go func() { defer close(done); s.ServeConn(serverEnd) }()
	t.Cleanup(func() { clientEnd.Close(); <-done })
	f.conn = clientEnd
	return f
}

// countStream opens a proc-5 stream for n chunks with the given window.
func countStream(t *testing.T, c *Client, n, failAfter uint32, window int) *ClientStream {
	t.Helper()
	st, err := c.CallStream(5, "count", window, func(e *Encoder) {
		e.PutU32BEC(n)
		e.PutU32BEC(failAfter)
	})
	if err != nil {
		t.Fatalf("CallStream: %v", err)
	}
	return st
}

// recvAll consumes chunks until the terminal status, verifying the
// sequence numbers arrive dense and in order, and returns the terminal.
func recvAll(t *testing.T, st *ClientStream) (got uint32, terminal error) {
	t.Helper()
	for {
		d, err := st.Recv()
		if err != nil {
			return got, err
		}
		if !d.Ensure(4) {
			t.Fatalf("chunk %d: %v", got, d.Err())
		}
		if seq := d.U32BE(); seq != got {
			t.Fatalf("chunk out of order: got seq %d, want %d", seq, got)
		}
		d.Release()
		got++
	}
}

func TestStreamDeliversInOrder(t *testing.T) {
	before := ReadPoolStats()
	f := startStreamServer(t)
	c := newEchoClient(f.conn)

	const n = 200
	st := countStream(t, c, n, 0, 8)
	got, terminal := recvAll(t, st)
	if !errors.Is(terminal, io.EOF) {
		t.Fatalf("terminal = %v, want io.EOF", terminal)
	}
	if got != n {
		t.Fatalf("received %d chunks, want %d", got, n)
	}
	if err := <-f.senderErr; err != nil {
		t.Fatalf("sender ended with %v", err)
	}
	waitPoolBalance(t, before)
}

// TestStreamCoexistsWithCalls interleaves a long stream with pipelined
// sync and async calls on the same session: the XID multiplexer must
// route chunks and replies independently.
func TestStreamCoexistsWithCalls(t *testing.T) {
	f := startStreamServer(t)
	c := newEchoClient(f.conn)

	const n = 64
	st := countStream(t, c, n, 0, 4)
	var got uint32
	for {
		doubleCall(t, c, got+1)
		p := c.CallAsync(1, "double", true, func(e *Encoder) { e.PutU32BEC(9) })
		d, err := st.Recv()
		if err != nil {
			if !errors.Is(err, io.EOF) {
				t.Fatalf("terminal = %v, want io.EOF", err)
			}
			pd, perr := p.Wait()
			if perr != nil {
				t.Fatal(perr)
			}
			pd.Release()
			break
		}
		if !d.Ensure(4) {
			t.Fatal(d.Err())
		}
		if seq := d.U32BE(); seq != got {
			t.Fatalf("chunk %d arrived as %d (cross-matched with a call?)", got, seq)
		}
		d.Release()
		got++
		pd, perr := p.Wait()
		if perr != nil {
			t.Fatal(perr)
		}
		pd.Release()
	}
	if got != n {
		t.Fatalf("received %d chunks, want %d", got, n)
	}
}

// TestStreamZeroWindowBlocksSender pins the backpressure contract: with
// a window of zero the server's first Send must not transmit until the
// consumer grants credit — one Grant(1) admits exactly one chunk.
func TestStreamZeroWindowBlocksSender(t *testing.T) {
	f := startStreamServer(t)
	c := newEchoClient(f.conn)

	st := countStream(t, c, 3, 0, 0)
	time.Sleep(50 * time.Millisecond)
	if n := f.sent.Load(); n != 0 {
		t.Fatalf("sender transmitted %d chunks with zero credit", n)
	}
	for i := uint32(0); i < 3; i++ {
		if err := st.Grant(1); err != nil {
			t.Fatalf("Grant: %v", err)
		}
		d, err := st.Recv()
		if err != nil {
			t.Fatalf("Recv %d: %v", i, err)
		}
		if !d.Ensure(4) {
			t.Fatal(d.Err())
		}
		if seq := d.U32BE(); seq != i {
			t.Fatalf("seq = %d, want %d", seq, i)
		}
		d.Release()
		// One credit, one chunk: the sender must be blocked again.
		time.Sleep(10 * time.Millisecond)
		if n := f.sent.Load(); n != uint64(i+1) {
			t.Fatalf("after %d grants the sender transmitted %d chunks", i+1, n)
		}
	}
	if _, err := st.Recv(); !errors.Is(err, io.EOF) {
		t.Fatalf("terminal = %v, want io.EOF", err)
	}
}

// TestStreamCancelUnblocksSender cancels mid-transfer: the handler's
// blocked Send returns ErrStreamCanceled, the consumer's Recv reports
// the cancel, and nothing leaks.
func TestStreamCancelUnblocksSender(t *testing.T) {
	before := ReadPoolStats()
	f := startStreamServer(t)
	c := newEchoClient(f.conn)

	st := countStream(t, c, 1000, 0, 2)
	// Take a couple of chunks, then walk away.
	for i := 0; i < 2; i++ {
		d, err := st.Recv()
		if err != nil {
			t.Fatalf("Recv %d: %v", i, err)
		}
		d.Release()
	}
	st.Cancel()
	if err := <-f.senderErr; !errors.Is(err, ErrStreamCanceled) {
		t.Fatalf("sender ended with %v, want ErrStreamCanceled", err)
	}
	if _, err := st.Recv(); !errors.Is(err, ErrStreamCanceled) {
		t.Fatalf("Recv after Cancel = %v, want ErrStreamCanceled", err)
	}
	st.Cancel() // idempotent
	waitPoolBalance(t, before)
}

// TestStreamWorkErrorClassifiesLikeSync streams a handler failure: the
// consumer sees the delivered prefix, then a terminal matching
// ErrSystem — the same classification a failing single-shot dispatch
// produces.
func TestStreamWorkErrorClassifiesLikeSync(t *testing.T) {
	f := startStreamServer(t)
	c := newEchoClient(f.conn)

	st := countStream(t, c, 10, 4, 4)
	got, terminal := recvAll(t, st)
	if got != 4 {
		t.Fatalf("received %d chunks before the error, want 4", got)
	}
	if !errors.Is(terminal, ErrSystem) {
		t.Fatalf("terminal = %v, want ErrSystem", terminal)
	}
	if err := <-f.senderErr; err == nil {
		t.Fatal("sender should have reported the work error")
	}
	// Sticky terminal.
	if _, err := st.Recv(); !errors.Is(err, ErrSystem) {
		t.Fatalf("second Recv = %v, want ErrSystem", err)
	}
}

// TestStreamTeardownMidTransfer severs the connection under a live
// stream: the consumer must get a terminal matching ErrStreamBroken
// (and ErrRetryable — re-issue from the start), never a hang or a
// silently short transfer, and the pools must balance afterwards.
func TestStreamTeardownMidTransfer(t *testing.T) {
	before := ReadPoolStats()
	clientEnd, serverEnd := Pipe()
	s := NewServer(ONC{})
	s.Workers = 2
	release := make(chan struct{})
	s.Register(7, 1, func(h *ReqHeader, d *Decoder, e *Encoder) error {
		h.OpName, h.OneWay = "count", true
		sn := NewStreamSender(h)
		for i := uint32(0); ; i++ {
			if i == 8 {
				close(release) // signal the test to cut the link
			}
			if err := sn.Send(func(e *Encoder) { e.PutU32BEC(i) }); err != nil {
				sn.Finish(err)
				return nil
			}
		}
	})
	done := make(chan struct{})
	go func() { defer close(done); s.ServeConn(serverEnd) }()
	t.Cleanup(func() { clientEnd.Close(); <-done })

	c := newEchoClient(clientEnd)
	st, err := c.CallStream(5, "count", 4, func(e *Encoder) {})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		<-release
		serverEnd.Close()
	}()
	var terminal error
	for {
		d, rerr := st.Recv()
		if rerr != nil {
			terminal = rerr
			break
		}
		d.Release()
	}
	if !errors.Is(terminal, ErrStreamBroken) {
		t.Fatalf("terminal = %v, want ErrStreamBroken", terminal)
	}
	if !errors.Is(terminal, ErrRetryable) {
		t.Fatalf("terminal = %v, want ErrRetryable (re-issue from the start)", terminal)
	}
	waitPoolBalance(t, before)
}

// dropNthChunkConn swallows the nth outgoing stream chunk frame,
// simulating loss in transit below the runtime (a lossy link whose
// integrity layer discarded a damaged frame).
type dropNthChunkConn struct {
	Conn
	n, seen int
}

func (c *dropNthChunkConn) Send(msg []byte) error {
	if kind, _, _, _, ok := SplitStream(msg); ok && kind == streamChunk {
		c.seen++
		if c.seen == c.n {
			return nil
		}
	}
	return c.Conn.Send(msg)
}

// TestStreamShortDeliveryClassified pins the end-frame chunk count: a
// chunk lost in transit — even one adjacent to the end of the stream —
// must turn the clean end into ErrStreamBroken (retryable), never a
// silently short EOF.
func TestStreamShortDeliveryClassified(t *testing.T) {
	before := ReadPoolStats()
	clientEnd, serverEnd := Pipe()
	s := NewServer(ONC{})
	s.Workers = 2
	s.Register(7, 1, func(h *ReqHeader, d *Decoder, e *Encoder) error {
		h.OpName, h.OneWay = "count", true
		sn := NewStreamSender(h)
		var workErr error
		for i := uint32(0); i < 6; i++ {
			if err := sn.Send(func(e *Encoder) { e.PutU32BEC(i) }); err != nil {
				workErr = err
				break
			}
		}
		sn.Finish(workErr)
		return nil
	})
	lossy := &dropNthChunkConn{Conn: serverEnd, n: 4}
	done := make(chan struct{})
	go func() { defer close(done); s.ServeConn(lossy) }()
	t.Cleanup(func() { clientEnd.Close(); <-done })

	c := newEchoClient(clientEnd)
	st, err := c.CallStream(5, "count", 8, func(e *Encoder) {})
	if err != nil {
		t.Fatal(err)
	}
	var got int
	var terminal error
	for {
		d, rerr := st.Recv()
		if rerr != nil {
			terminal = rerr
			break
		}
		d.Release()
		got++
	}
	if got != 5 {
		t.Fatalf("delivered %d chunks, want 5 (one dropped)", got)
	}
	if !errors.Is(terminal, ErrStreamBroken) {
		t.Fatalf("terminal = %v, want ErrStreamBroken (short delivery)", terminal)
	}
	if !errors.Is(terminal, ErrRetryable) {
		t.Fatalf("terminal = %v, want ErrRetryable", terminal)
	}
	waitPoolBalance(t, before)
}

// TestStreamOvergrantRejected pins the window-buffer bound: credit
// beyond the receive buffer is refused without sending, so the
// delivery invariant (chunks never overflow the channel) holds.
func TestStreamOvergrantRejected(t *testing.T) {
	f := startStreamServer(t)
	c := newEchoClient(f.conn)
	st := countStream(t, c, 1, 0, 0)
	if err := st.Grant(1 << 20); err == nil {
		t.Fatal("huge Grant should be refused")
	}
	st.Cancel()
	<-f.senderErr
}
