package rt

import (
	"bytes"
	"encoding/binary"
	"errors"
	"sync"
	"testing"
	"time"
)

// Tests for the batch envelope (proto.go) and the coalescing writer
// (batch.go): structural validation, adaptive coalescing, linger and
// lazy-oneway behavior, unpacking order, and teardown.

// --- envelope ---------------------------------------------------------------

func TestBatchEnvelopeRoundTrip(t *testing.T) {
	msgs := [][]byte{
		[]byte("alpha"),
		{},
		[]byte("a much longer message body with some padding in it"),
		{0xFB, 0x1C, 0xBA, 0x7C}, // magic bytes as payload must survive
	}
	frame := appendBatchStart(nil, len(msgs))
	for _, m := range msgs {
		frame = appendBatch(frame, m)
	}
	parts, ok := SplitBatch(frame)
	if !ok {
		t.Fatal("SplitBatch rejected a well-formed frame")
	}
	if len(parts) != len(msgs) {
		t.Fatalf("got %d parts, want %d", len(parts), len(msgs))
	}
	for i := range msgs {
		if !bytes.Equal(parts[i], msgs[i]) {
			t.Errorf("part %d = %q, want %q", i, parts[i], msgs[i])
		}
	}
}

func TestSplitBatchRejectsMalformed(t *testing.T) {
	good := appendBatch(appendBatch(appendBatchStart(nil, 2), []byte("ab")), []byte("cd"))

	cases := map[string][]byte{
		"empty":        {},
		"short header": good[:6],
		"wrong magic":  append([]byte{0, 0, 0, 1}, good[4:]...),
		"zero count": binary.BigEndian.AppendUint32(
			binary.BigEndian.AppendUint32(nil, batchMagic), 0),
		"count over cap": binary.BigEndian.AppendUint32(
			binary.BigEndian.AppendUint32(nil, batchMagic), MaxBatchMessages+1),
		"truncated body": good[:len(good)-1],
		"trailing junk":  append(append([]byte{}, good...), 0xFF),
		"length overrun": func() []byte {
			b := append([]byte{}, good...)
			binary.BigEndian.PutUint32(b[8:], 1<<30) // first part claims 1GB
			return b
		}(),
	}
	for name, frame := range cases {
		if _, ok := SplitBatch(frame); ok {
			t.Errorf("%s: SplitBatch accepted a malformed frame", name)
		}
	}
	// A fresh single RPC message must never parse as a batch: the magic
	// plus the strict tiling rule protect against XID collisions.
	var e Encoder
	(ONC{}).WriteRequest(&e, &ReqHeader{XID: 1, Prog: 7, Vers: 1, Proc: 1})
	if _, ok := SplitBatch(e.Bytes()); ok {
		t.Error("an ONC request frame parsed as a batch")
	}
}

// --- coalescing writer ------------------------------------------------------

// gateConn blocks Send until released, so tests can pile messages up
// behind a transmit in progress.
type gateConn struct {
	inner Conn
	gate  chan struct{} // receive = permission for one Send
	sends chan []byte   // copy of every frame that went out
}

func newGateConn(inner Conn) *gateConn {
	return &gateConn{inner: inner, gate: make(chan struct{}, 64), sends: make(chan []byte, 64)}
}

func (g *gateConn) Send(msg []byte) error {
	<-g.gate
	cp := append([]byte(nil), msg...)
	g.sends <- cp
	return g.inner.Send(msg)
}
func (g *gateConn) Recv() ([]byte, error) { return g.inner.Recv() }
func (g *gateConn) Close() error          { return g.inner.Close() }

// TestBatchConnSingleShipsUnwrapped: at low load a lone message goes
// out as-is — no envelope, no latency.
func TestBatchConnSingleShipsUnwrapped(t *testing.T) {
	a, b := Pipe()
	bc := NewBatchConn(a, BatchConfig{})
	defer bc.Close()

	if err := bc.Send([]byte("solo")); err != nil {
		t.Fatal(err)
	}
	got, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "solo" {
		t.Fatalf("peer received %q, want the raw unwrapped message", got)
	}
}

// TestBatchConnCoalescesUnderLoad: messages that queue while a transmit
// is in progress travel together in the next frame, and the peer's
// BatchConn unpacks them in order.
func TestBatchConnCoalescesUnderLoad(t *testing.T) {
	a, b := Pipe()
	g := newGateConn(a)
	m := NewMetrics()
	bc := NewBatchConn(g, BatchConfig{Metrics: m})
	defer bc.Close()
	peer := NewBatchConn(b, BatchConfig{})
	defer peer.Close()

	// The first message reaches the writer, which parks in the gated
	// Send; the rest accumulate in the queue behind that transmit.
	const n = 5
	if err := bc.Send([]byte{'a'}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond) // writer now parked in Send
	for i := 1; i < n; i++ {
		if err := bc.Send([]byte{byte('a' + i)}); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(10 * time.Millisecond) // all four queued behind the transmit
	g.gate <- struct{}{}              // release frame 1 (single, unwrapped)
	g.gate <- struct{}{}              // release frame 2 (the coalesced rest)

	var got []byte
	for len(got) < n {
		msg, err := peer.Recv()
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, msg...)
	}
	if string(got) != "abcde" {
		t.Fatalf("messages arrived as %q, want in-order %q", got, "abcde")
	}

	frame2 := <-g.sends // frame 1
	frame2 = <-g.sends  // frame 2
	if parts, ok := SplitBatch(frame2); !ok || len(parts) != n-1 {
		t.Fatalf("second frame should be a %d-message batch (ok=%v, parts=%d)", n-1, ok, len(parts))
	}
	s := m.Snapshot()
	if s.BatchFrames != 1 || s.BatchedCalls != n-1 {
		t.Errorf("BatchFrames=%d BatchedCalls=%d, want 1 and %d", s.BatchFrames, s.BatchedCalls, n-1)
	}
	if s.BatchFlushIdle == 0 {
		t.Errorf("expected idle flushes, got %+v", s)
	}
}

// TestBatchConnSizeCap: the writer cuts a frame at MaxMessages even
// with more queued.
func TestBatchConnSizeCap(t *testing.T) {
	a, b := Pipe()
	g := newGateConn(a)
	m := NewMetrics()
	bc := NewBatchConn(g, BatchConfig{MaxMessages: 3, Metrics: m})
	defer bc.Close()
	defer b.Close()

	if err := bc.Send([]byte{0}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond) // writer parked in Send with frame [0]
	for i := 1; i < 7; i++ {
		if err := bc.Send([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(10 * time.Millisecond) // six messages queued behind the transmit
	for i := 0; i < 3; i++ {
		g.gate <- struct{}{}
	}
	// Frames: [0], [1 2 3], [4 5 6] — the batches cut by the cap.
	<-g.sends
	for i := 0; i < 2; i++ {
		f := <-g.sends
		if parts, ok := SplitBatch(f); !ok || len(parts) != 3 {
			t.Fatalf("frame %d: want a 3-message batch, got ok=%v len=%d", i+2, ok, len(parts))
		}
	}
	if s := m.Snapshot(); s.BatchFlushSize == 0 {
		t.Errorf("size-capped flushes not recorded: %+v", s)
	}
}

// TestBatchConnLazyLinger: with MaxDelay set, lazy (oneway) messages
// alone never trigger a flush — they wait for the deadline or for an
// eager message to ride with.
func TestBatchConnLazyLinger(t *testing.T) {
	a, b := Pipe()
	m := NewMetrics()
	bc := NewBatchConn(a, BatchConfig{MaxDelay: time.Second, Metrics: m})
	defer bc.Close()
	defer b.Close()

	if err := bc.SendLazy([]byte("lazy")); err != nil {
		t.Fatal(err)
	}
	recvd := make(chan []byte, 1)
	go func() {
		msg, err := b.Recv()
		if err == nil {
			recvd <- msg
		}
	}()
	select {
	case <-recvd:
		t.Fatal("lazy message flushed immediately despite the linger")
	case <-time.After(30 * time.Millisecond):
	}
	// An eager message ends the linger; both travel together.
	if err := bc.Send([]byte("eager")); err != nil {
		t.Fatal(err)
	}
	select {
	case frame := <-recvd:
		parts, ok := SplitBatch(frame)
		if !ok || len(parts) != 2 {
			t.Fatalf("want a 2-message batch, got ok=%v len=%d", ok, len(parts))
		}
		if string(parts[0]) != "lazy" || string(parts[1]) != "eager" {
			t.Fatalf("batch order wrong: %q, %q", parts[0], parts[1])
		}
	case <-time.After(2 * time.Second):
		t.Fatal("eager message did not cut the linger short")
	}
}

// TestBatchConnDeadlineFlush: a lingering lazy message flushes at
// MaxDelay even with no eager company.
func TestBatchConnDeadlineFlush(t *testing.T) {
	a, b := Pipe()
	m := NewMetrics()
	bc := NewBatchConn(a, BatchConfig{MaxDelay: 20 * time.Millisecond, Metrics: m})
	defer bc.Close()
	defer b.Close()

	if err := bc.SendLazy([]byte("lazy")); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if msg, err := b.Recv(); err != nil || string(msg) != "lazy" {
			t.Errorf("Recv = %q, %v", msg, err)
		}
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("deadline flush never happened")
	}
	if s := m.Snapshot(); s.BatchFlushDeadline == 0 {
		t.Errorf("deadline flush not recorded: %+v", s)
	}
}

// TestBatchConnClose: Send after Close fails with ErrClosed; Close is
// idempotent.
func TestBatchConnClose(t *testing.T) {
	a, b := Pipe()
	bc := NewBatchConn(a, BatchConfig{})
	defer b.Close()
	if err := bc.Close(); err != nil {
		t.Fatal(err)
	}
	if err := bc.Close(); err != nil && !errors.Is(err, ErrClosed) {
		t.Errorf("second Close = %v", err)
	}
	if err := bc.Send([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Errorf("Send after Close = %v, want ErrClosed", err)
	}
}

// TestBatchClientAgainstPlainServer: a client whose conn batches faces
// a stock Server — ServeConn's frame reader must split the envelopes
// natively. Concurrency forces real multi-message frames.
func TestBatchClientAgainstPlainServer(t *testing.T) {
	clientEnd, serverEnd := Pipe()
	s := NewServer(ONC{})
	s.Workers = 4
	s.Metrics = NewMetrics()
	s.Register(7, 1, echoDispatch)
	done := make(chan struct{})
	go func() { defer close(done); s.ServeConn(serverEnd) }()

	bc := NewBatchConn(clientEnd, BatchConfig{})
	c := newEchoClient(bc)
	defer func() { c.Close(); <-done }()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				doubleCall(t, c, uint32(g*1000+i))
			}
		}(g)
	}
	wg.Wait()
	// With 8 concurrent callers sharing one coalescing writer, at least
	// some frames should have carried more than one call.
	if s.Metrics.BatchedCalls.Load() == 0 {
		t.Log("no batches formed (scheduling-dependent); correctness still verified")
	}
}

// TestBatchConnsBothEnds runs client and server over facing BatchConns:
// replies batch too, and BatchConn.Recv unpacks them.
func TestBatchConnsBothEnds(t *testing.T) {
	clientEnd, serverEnd := Pipe()
	s := NewServer(ONC{})
	s.Workers = 4
	s.Register(7, 1, echoDispatch)
	done := make(chan struct{})
	sbc := NewBatchConn(serverEnd, BatchConfig{})
	go func() { defer close(done); s.ServeConn(sbc) }()

	bc := NewBatchConn(clientEnd, BatchConfig{})
	c := newEchoClient(bc)
	defer func() { c.Close(); <-done }()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				doubleCall(t, c, uint32(g*1000+i))
			}
		}(g)
	}
	wg.Wait()
}

// TestBatchConnSendErrorLatches: once the inner conn fails, later Sends
// report the failure instead of queueing into the void.
func TestBatchConnSendErrorLatches(t *testing.T) {
	a, b := Pipe()
	bc := NewBatchConn(a, BatchConfig{})
	b.Close()
	a.Close() // inner send now fails

	deadline := time.Now().Add(2 * time.Second)
	for {
		err := bc.Send([]byte("x"))
		if err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("Send kept succeeding after the conn died")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestBatchOverheadAccounting pins the envelope arithmetic used by the
// fleet experiment's costing.
func TestBatchOverheadAccounting(t *testing.T) {
	for _, n := range []int{1, 2, 64} {
		frame := appendBatchStart(nil, n)
		body := 0
		for i := 0; i < n; i++ {
			msg := bytes.Repeat([]byte{1}, i+1)
			body += len(msg)
			frame = appendBatch(frame, msg)
		}
		if got, want := len(frame)-body, batchOverhead(n); got != want {
			t.Errorf("n=%d: overhead = %d, want %d", n, got, want)
		}
	}
}
