package rt

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// Tests for the client fault-tolerance policy: backoff bounds, breaker
// state transitions, idempotency-gated retries, redial, and error
// classification. Run with -race.

func TestRetryBackoffWithinBounds(t *testing.T) {
	p := &RetryPolicy{BaseBackoff: time.Millisecond, MaxBackoff: 8 * time.Millisecond, Seed: 1}
	for k := 0; k < 8; k++ {
		ceil := time.Millisecond << k
		if ceil > 8*time.Millisecond {
			ceil = 8 * time.Millisecond
		}
		for i := 0; i < 50; i++ {
			if d := p.backoff(k); d < 0 || d > ceil {
				t.Fatalf("backoff(%d) = %v, want in [0, %v]", k, d, ceil)
			}
		}
	}
}

func TestRetryBackoffSeededDeterminism(t *testing.T) {
	seq := func() []time.Duration {
		p := &RetryPolicy{BaseBackoff: time.Millisecond, Seed: 99}
		var out []time.Duration
		for k := 0; k < 6; k++ {
			out = append(out, p.backoff(k))
		}
		return out
	}
	a, b := seq(), seq()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed produced different jitter: %v vs %v", a, b)
		}
	}
}

func TestRetryDefaults(t *testing.T) {
	var nilPolicy *RetryPolicy
	if got := nilPolicy.attempts(); got != 3 {
		t.Errorf("nil policy attempts = %d, want 3", got)
	}
	if got := (&RetryPolicy{}).attempts(); got != 3 {
		t.Errorf("zero policy attempts = %d, want 3", got)
	}
	if got := (&RetryPolicy{MaxAttempts: 1}).attempts(); got != 1 {
		t.Errorf("MaxAttempts=1 attempts = %d, want 1", got)
	}
}

// TestBreakerLifecycle walks the full state machine: closed → open at
// the threshold, open → half-open after the cooldown, half-open →
// closed on a successful probe, and half-open → open on a failed one.
func TestBreakerLifecycle(t *testing.T) {
	b := &Breaker{Threshold: 3, Cooldown: 25 * time.Millisecond}
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("initial state = %v", got)
	}
	if !b.allow() {
		t.Fatal("closed breaker rejected a call")
	}
	// Two failures: still under threshold.
	b.failure()
	if opened := b.failure(); opened {
		t.Fatal("breaker opened below threshold")
	}
	if !b.allow() {
		t.Fatal("breaker rejected a call below threshold")
	}
	// Third consecutive failure trips it.
	if opened := b.failure(); !opened {
		t.Fatal("breaker did not open at threshold")
	}
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state after threshold = %v, want open", got)
	}
	if b.allow() {
		t.Fatal("open breaker admitted a call inside the cooldown")
	}
	// After the cooldown one probe is admitted, and only one.
	time.Sleep(30 * time.Millisecond)
	if !b.allow() {
		t.Fatal("breaker did not half-open after cooldown")
	}
	if got := b.State(); got != BreakerHalfOpen {
		t.Fatalf("state after probe admit = %v, want half-open", got)
	}
	if b.allow() {
		t.Fatal("half-open breaker admitted a second probe")
	}
	// Probe success recloses and resets the failure count.
	b.success()
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state after probe success = %v, want closed", got)
	}
	b.failure()
	b.failure()
	if got := b.State(); got != BreakerClosed {
		t.Fatal("failure count was not reset by success")
	}
	// Reopen path: trip it again, probe, fail the probe.
	if opened := b.failure(); !opened {
		t.Fatal("breaker did not reopen at threshold")
	}
	time.Sleep(30 * time.Millisecond)
	if !b.allow() {
		t.Fatal("no probe after second cooldown")
	}
	if opened := b.failure(); !opened {
		t.Fatal("failed probe did not reopen the breaker")
	}
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", got)
	}
}

func TestBreakerStateString(t *testing.T) {
	for s, want := range map[BreakerState]string{
		BreakerClosed: "closed", BreakerOpen: "open", BreakerHalfOpen: "half-open",
	} {
		if got := s.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", s, got, want)
		}
	}
}

// --- client integration ------------------------------------------------------

// faultySend wraps a Conn and fails (or swallows) the first N Sends.
type faultySend struct {
	Conn
	failures atomic.Int32
	// swallow, when set, makes a "failed" Send return nil without
	// delivering: the lost-datagram shape (detected only by timeout)
	// rather than the reported-error shape.
	swallow bool
}

func (f *faultySend) Send(msg []byte) error {
	if f.failures.Add(-1) >= 0 {
		if f.swallow {
			return nil
		}
		return errors.New("transient transport failure")
	}
	return f.Conn.Send(msg)
}

// TestIdempotentRetrySucceeds: an idempotent call whose first attempt
// fails is re-sent under the policy and succeeds, with the retry
// counted.
func TestIdempotentRetrySucceeds(t *testing.T) {
	flaky := &faultySend{Conn: startEchoServer(t, 1)}
	flaky.failures.Store(1)
	c := newEchoClient(flaky)
	c.Metrics = NewMetrics()
	c.Retry = &RetryPolicy{MaxAttempts: 3, BaseBackoff: 100 * time.Microsecond, Seed: 1}

	d, err := c.CallIdem(1, "double", false, true, func(e *Encoder) { e.PutU32BEC(21) })
	if err != nil {
		t.Fatalf("idempotent call over flaky conn: %v", err)
	}
	d.Ensure(4)
	if got := d.U32BE(); got != 42 {
		t.Errorf("double(21) = %d", got)
	}
	d.Release()
	if got := c.Metrics.Retries.Load(); got != 1 {
		t.Errorf("Retries = %d, want 1", got)
	}
}

// TestLostRequestRetriedByTimeout: a request the transport silently
// swallows (no error, no delivery) is recovered by the per-attempt
// deadline and the retry policy.
func TestLostRequestRetriedByTimeout(t *testing.T) {
	flaky := &faultySend{Conn: startEchoServer(t, 1), swallow: true}
	flaky.failures.Store(1)
	c := newEchoClient(flaky)
	c.Metrics = NewMetrics()
	c.Timeout = 50 * time.Millisecond
	c.Retry = &RetryPolicy{MaxAttempts: 3, BaseBackoff: 100 * time.Microsecond, Seed: 1}

	d, err := c.CallIdem(1, "double", false, true, func(e *Encoder) { e.PutU32BEC(5) })
	if err != nil {
		t.Fatalf("call over swallowing conn: %v", err)
	}
	d.Ensure(4)
	if got := d.U32BE(); got != 10 {
		t.Errorf("double(5) = %d", got)
	}
	d.Release()
	if got := c.Metrics.Retries.Load(); got == 0 {
		t.Error("lost request was not retried")
	}
}

// TestNonIdempotentFailsFast: once the request may have reached the
// server, a non-idempotent operation is never re-sent — the call fails
// with ErrNotRetryable wrapping the transport cause, after exactly one
// attempt.
func TestNonIdempotentFailsFast(t *testing.T) {
	flaky := &faultySend{Conn: startEchoServer(t, 1)}
	flaky.failures.Store(1)
	c := newEchoClient(flaky)
	c.Retry = &RetryPolicy{MaxAttempts: 5, BaseBackoff: 100 * time.Microsecond, Seed: 1}

	_, err := c.CallIdem(1, "double", false, false, func(e *Encoder) { e.PutU32BEC(1) })
	if !errors.Is(err, ErrNotRetryable) {
		t.Fatalf("non-idempotent failure = %v, want ErrNotRetryable", err)
	}
	if errors.Is(err, ErrRetryable) {
		t.Error("error classified both retryable and not")
	}
	// Exactly one attempt was consumed: the next call finds a healthy
	// conn (failures exhausted) and succeeds without retrying.
	doubleCall(t, c, 3)
}

// TestRetryExhaustionClassification: when every attempt times out the
// final error carries both the class (ErrRetryable) and the last cause
// (ErrTimeout), so callers can test either.
func TestRetryExhaustionClassification(t *testing.T) {
	clientEnd, serverEnd := Pipe()
	go func() { // peer swallows everything
		for {
			if _, err := serverEnd.Recv(); err != nil {
				return
			}
		}
	}()
	t.Cleanup(func() { clientEnd.Close() })
	c := newEchoClient(clientEnd)
	c.Metrics = NewMetrics()
	c.Timeout = 20 * time.Millisecond
	c.Retry = &RetryPolicy{MaxAttempts: 2, BaseBackoff: 100 * time.Microsecond, Seed: 1}

	_, err := c.CallIdem(1, "double", false, true, func(e *Encoder) { e.PutU32BEC(1) })
	if !errors.Is(err, ErrRetryable) {
		t.Errorf("exhausted retries = %v, want ErrRetryable class", err)
	}
	if !errors.Is(err, ErrTimeout) {
		t.Errorf("exhausted retries = %v, want ErrTimeout cause", err)
	}
	if got := c.Metrics.Retries.Load(); got != 1 {
		t.Errorf("Retries = %d, want 1 (MaxAttempts 2)", got)
	}
}

// TestRetryBudgetBoundsTheCall: a wall-clock budget stops the retry
// loop even with attempts remaining.
func TestRetryBudgetBoundsTheCall(t *testing.T) {
	clientEnd, serverEnd := Pipe()
	go func() {
		for {
			if _, err := serverEnd.Recv(); err != nil {
				return
			}
		}
	}()
	t.Cleanup(func() { clientEnd.Close() })
	c := newEchoClient(clientEnd)
	c.Timeout = 20 * time.Millisecond
	c.Retry = &RetryPolicy{MaxAttempts: 100, BaseBackoff: 5 * time.Millisecond, Budget: 60 * time.Millisecond, Seed: 1}

	begin := time.Now()
	_, err := c.CallIdem(1, "double", false, true, func(e *Encoder) { e.PutU32BEC(1) })
	elapsed := time.Since(begin)
	if !errors.Is(err, ErrRetryable) {
		t.Errorf("budget-bounded call = %v, want ErrRetryable", err)
	}
	if elapsed > time.Second {
		t.Errorf("100-attempt policy ran %v past its 60ms budget", elapsed)
	}
}

// TestServerFaultIsTerminal: an ErrSystem reply means the transport
// works and the server executed (and faulted) — no retry, breaker
// healthy.
func TestServerFaultIsTerminal(t *testing.T) {
	sends := &countingConn{Conn: startEchoServer(t, 1)}
	c := newEchoClient(sends)
	c.Retry = &RetryPolicy{MaxAttempts: 5, BaseBackoff: 100 * time.Microsecond, Seed: 1}
	c.Breaker = &Breaker{Threshold: 1}

	_, err := c.CallIdem(2, "fail", false, true, func(e *Encoder) {})
	if !errors.Is(err, ErrSystem) {
		t.Fatalf("server fault = %v, want ErrSystem", err)
	}
	if errors.Is(err, ErrRetryable) || errors.Is(err, ErrNotRetryable) {
		t.Errorf("server fault gained a retry classification: %v", err)
	}
	if got := sends.sends.Load(); got != 1 {
		t.Errorf("server fault was retried: %d sends", got)
	}
	if got := c.Breaker.State(); got != BreakerClosed {
		t.Errorf("breaker %v after server fault, want closed (transport healthy)", got)
	}
}

type countingConn struct {
	Conn
	sends atomic.Uint64
}

func (c *countingConn) Send(msg []byte) error {
	c.sends.Add(1)
	return c.Conn.Send(msg)
}

// TestRedialReconnects: killing the connection poisons the session;
// with Redial configured the next call transparently dials a
// replacement and succeeds.
func TestRedialReconnects(t *testing.T) {
	newServerConn := func() Conn {
		clientEnd, serverEnd := Pipe()
		s := NewServer(ONC{})
		s.Register(7, 1, echoDispatch)
		go s.ServeConn(serverEnd)
		return clientEnd
	}
	first := newServerConn()
	c := newEchoClient(first)
	c.Metrics = NewMetrics()
	c.Retry = &RetryPolicy{MaxAttempts: 5, BaseBackoff: time.Millisecond, Seed: 1}
	c.Redial = func() (Conn, error) { return newServerConn(), nil }
	t.Cleanup(func() { c.Close() })

	doubleCall(t, c, 4)              // healthy on the first connection
	first.Close()                    // the link dies under us
	time.Sleep(5 * time.Millisecond) // let the reply reader poison the session
	doubleCall(t, c, 9)              // transparently redialed
	if got := c.Metrics.Reconnects.Load(); got != 1 {
		t.Errorf("Reconnects = %d, want 1", got)
	}
}

// TestRedialRespectsClose: Close wins over a concurrent redial — a
// closed client must not resurrect.
func TestRedialRespectsClose(t *testing.T) {
	conn := startEchoServer(t, 1)
	c := newEchoClient(conn)
	c.Retry = &RetryPolicy{MaxAttempts: 3, BaseBackoff: 100 * time.Microsecond, Seed: 1}
	c.Redial = func() (Conn, error) { a, _ := Pipe(); return a, nil }
	c.Close()
	if _, err := c.CallIdem(1, "double", false, true, func(e *Encoder) { e.PutU32BEC(1) }); !errors.Is(err, ErrClosed) {
		t.Errorf("call on closed redialing client = %v, want ErrClosed", err)
	}
}

// TestBreakerShedsAndRecovers drives the breaker through a full outage:
// consecutive transport failures open it, calls shed with
// ErrBreakerOpen without touching the wire, and after the cooldown a
// successful probe recloses it.
func TestBreakerShedsAndRecovers(t *testing.T) {
	healthy := startEchoServer(t, 1)
	var down atomic.Bool
	gate := &gatedConn{Conn: healthy, down: &down}
	c := newEchoClient(gate)
	c.Metrics = NewMetrics()
	c.Breaker = &Breaker{Threshold: 2, Cooldown: 30 * time.Millisecond}

	down.Store(true)
	for i := 0; i < 2; i++ {
		if _, err := c.CallIdem(1, "double", false, true, func(e *Encoder) { e.PutU32BEC(1) }); err == nil {
			t.Fatal("call over dead transport succeeded")
		}
	}
	if got := c.Breaker.State(); got != BreakerOpen {
		t.Fatalf("breaker %v after threshold failures, want open", got)
	}
	if got := c.Metrics.BreakerOpen.Load(); got != 1 {
		t.Errorf("BreakerOpen = %d, want 1", got)
	}
	before := gate.sends.Load()
	if _, err := c.CallIdem(1, "double", false, true, func(e *Encoder) { e.PutU32BEC(1) }); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("shed call = %v, want ErrBreakerOpen", err)
	}
	if gate.sends.Load() != before {
		t.Error("shed call still touched the transport")
	}
	if got := c.Metrics.BreakerRejects.Load(); got != 1 {
		t.Errorf("BreakerRejects = %d, want 1", got)
	}
	// Outage ends; the cooldown elapses; the probe recloses the breaker.
	down.Store(false)
	time.Sleep(35 * time.Millisecond)
	doubleCall(t, c, 8)
	if got := c.Breaker.State(); got != BreakerClosed {
		t.Errorf("breaker %v after successful probe, want closed", got)
	}
}

// gatedConn fails Sends while down is set, counting every attempt that
// reaches it.
type gatedConn struct {
	Conn
	down  *atomic.Bool
	sends atomic.Uint64
}

func (g *gatedConn) Send(msg []byte) error {
	g.sends.Add(1)
	if g.down.Load() {
		return errors.New("simulated outage")
	}
	return g.Conn.Send(msg)
}
