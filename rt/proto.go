package rt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"
)

// ReqHeader carries the protocol-independent request metadata.
type ReqHeader struct {
	XID  uint32
	Prog uint32
	Vers uint32
	// Proc is the operation code (ONC procedure number; synthesized
	// index for protocols that demultiplex by name).
	Proc uint32
	// OpName is the operation name (GIOP demultiplexes requests on it).
	OpName string
	// ObjectKey addresses the target object (GIOP).
	ObjectKey []byte
	// OneWay suppresses the reply.
	OneWay bool
	// Trace is the propagated trace annotation (valid when Traced; see
	// SplitTrace). Handlers continue the trace via (*ReqHeader).Context.
	Trace TraceContext
	// Traced reports whether the request carried a trace annotation.
	Traced bool
	// Deadline is the absolute local deadline derived from a wire
	// deadline annotation (valid when HasDeadline; see SplitDeadline).
	// The server sheds the request without dispatching once it passes,
	// and (*ReqHeader).Context returns a context that expires with it.
	Deadline time.Time
	// HasDeadline reports whether the request carried a deadline
	// annotation.
	HasDeadline bool

	// streams is the serving connection's stream registry, set by the
	// decode loop so NewStreamSender (stream.go) can bind a streaming
	// handler to the consumer's credit ledger. Nil outside ServeConn.
	streams *connStreams
	// calls is the serving connection's in-flight call registry, set by
	// the decode loop so (*ReqHeader).Context can expose client-sent
	// cancel frames as context cancellation. Nil outside ServeConn.
	calls *connCalls
}

// Reply status values (protocol-independent).
const (
	ReplyOK uint32 = iota
	// ReplySystemError reports a dispatch failure (unknown operation,
	// malformed arguments); no payload follows.
	ReplySystemError
	// ReplyOverloaded reports a request shed by server-side admission
	// control *before* dispatch: the operation did not execute, so the
	// client classifies the failure as retryable even for
	// non-idempotent calls (see ErrOverloaded). No payload follows.
	ReplyOverloaded
	// ReplyExpired reports a request whose propagated deadline (see
	// SplitDeadline) had already passed when the server was about to
	// dispatch it: the operation did not execute, and retrying is
	// pointless — the budget is gone end to end — so the client
	// classifies it as terminal (see ErrExpired). No payload follows.
	ReplyExpired
)

// RepHeader carries reply metadata.
type RepHeader struct {
	XID    uint32
	Status uint32
}

// Protocol lays out message headers around mir-generated payloads. The
// payload always begins at an offset aligned to the protocol's encoding
// MaxAlign; Write* and Read* pad accordingly.
type Protocol interface {
	Name() string
	// DemuxByName reports whether servers dispatch on OpName (GIOP)
	// rather than Proc.
	DemuxByName() bool
	WriteRequest(e *Encoder, h *ReqHeader)
	ReadRequest(d *Decoder) (ReqHeader, error)
	WriteReply(e *Encoder, h *RepHeader)
	ReadReply(d *Decoder) (RepHeader, error)
}

// ErrSystem reports a peer-side dispatch failure.
var ErrSystem = errors.New("rt: system error from peer")

// ErrBadMagic reports a malformed message header.
var ErrBadMagic = errors.New("rt: bad protocol header")

// --- ONC RPC (RFC 5531 structure, AUTH_NONE) -------------------------------

// ONC is the ONC RPC message format over XDR.
type ONC struct{}

const (
	oncCall    = 0
	oncReply   = 1
	oncRPCVers = 2
)

func (ONC) Name() string      { return "onc" }
func (ONC) DemuxByName() bool { return false }

// WriteRequest emits the 40-byte ONC call header: xid, CALL, rpcvers,
// prog, vers, proc, null credentials, null verifier.
func (ONC) WriteRequest(e *Encoder, h *ReqHeader) {
	e.Grow(40)
	e.PutU32BE(h.XID)
	e.PutU32BE(oncCall)
	e.PutU32BE(oncRPCVers)
	e.PutU32BE(h.Prog)
	e.PutU32BE(h.Vers)
	e.PutU32BE(h.Proc)
	e.PutU32BE(0) // cred flavor AUTH_NONE
	e.PutU32BE(0) // cred length
	e.PutU32BE(0) // verf flavor
	e.PutU32BE(0) // verf length
}

func (ONC) ReadRequest(d *Decoder) (ReqHeader, error) {
	if !d.Ensure(40) {
		return ReqHeader{}, d.Err()
	}
	var h ReqHeader
	h.XID = d.U32BE()
	if mt := d.U32BE(); mt != oncCall {
		return h, d.Fail(fmt.Errorf("%w: ONC message type %d", ErrBadMagic, mt))
	}
	if rv := d.U32BE(); rv != oncRPCVers {
		return h, d.Fail(fmt.Errorf("%w: ONC rpc version %d", ErrBadMagic, rv))
	}
	h.Prog = d.U32BE()
	h.Vers = d.U32BE()
	h.Proc = d.U32BE()
	credFlavor := d.U32BE()
	credLen := d.U32BE()
	_ = credFlavor
	if credLen > 0 {
		if !d.Ensure(int(credLen)) {
			return h, d.Err()
		}
		d.Next(int(credLen))
	}
	if !d.Ensure(8) {
		return h, d.Err()
	}
	d.U32BE() // verf flavor
	verfLen := d.U32BE()
	if verfLen > 0 {
		if !d.Ensure(int(verfLen)) {
			return h, d.Err()
		}
		d.Next(int(verfLen))
	}
	return h, nil
}

// WriteReply emits the 24-byte accepted-reply header; Status maps to the
// ONC accept_stat (SUCCESS / SYSTEM_ERR, plus accept_stat 6 for
// admission-control rejection — a documented deviation, self-consistent
// on both ends).
func (ONC) WriteReply(e *Encoder, h *RepHeader) {
	e.Grow(24)
	e.PutU32BE(h.XID)
	e.PutU32BE(oncReply)
	e.PutU32BE(0) // MSG_ACCEPTED
	e.PutU32BE(0) // verf flavor
	e.PutU32BE(0) // verf length
	switch h.Status {
	case ReplyOK:
		e.PutU32BE(0) // SUCCESS
	case ReplyOverloaded:
		e.PutU32BE(6) // overloaded (deviation: RFC 5531 stops at 5)
	case ReplyExpired:
		e.PutU32BE(7) // deadline expired (deviation, like 6)
	default:
		e.PutU32BE(5) // SYSTEM_ERR
	}
}

func (ONC) ReadReply(d *Decoder) (RepHeader, error) {
	if !d.Ensure(24) {
		return RepHeader{}, d.Err()
	}
	var h RepHeader
	h.XID = d.U32BE()
	if mt := d.U32BE(); mt != oncReply {
		return h, d.Fail(fmt.Errorf("%w: ONC reply type %d", ErrBadMagic, mt))
	}
	if rs := d.U32BE(); rs != 0 {
		return h, d.Fail(fmt.Errorf("%w: ONC reply denied (%d)", ErrSystem, rs))
	}
	d.U32BE() // verf flavor
	d.U32BE() // verf len (assumed 0)
	switch as := d.U32BE(); as {
	case 0:
	case 6:
		h.Status = ReplyOverloaded
	case 7:
		h.Status = ReplyExpired
	default:
		h.Status = ReplySystemError
	}
	return h, nil
}

// --- GIOP / IIOP ------------------------------------------------------------

// GIOP is the CORBA Internet Inter-ORB Protocol message format (GIOP 1.0
// structure). The sender's byte order is flagged in the header. Payloads
// begin 8-aligned (we pad the header region; real GIOP aligns relative to
// the header start — documented deviation, self-consistent on both ends).
type GIOP struct {
	Little bool
}

const (
	giopRequest = 0
	giopReply   = 1
)

func (g GIOP) Name() string      { return "giop" }
func (g GIOP) DemuxByName() bool { return true }

func (g GIOP) putU32(e *Encoder, v uint32) {
	if g.Little {
		e.PutU32LE(v)
	} else {
		e.PutU32BE(v)
	}
}

func (g GIOP) getU32(d *Decoder) uint32 {
	if g.Little {
		return d.U32LE()
	}
	return d.U32BE()
}

func (g GIOP) writeHeader(e *Encoder, msgType byte) {
	e.Grow(12)
	e.PutBytes([]byte{'G', 'I', 'O', 'P', 1, 0})
	if g.Little {
		e.PutU8(1)
	} else {
		e.PutU8(0)
	}
	e.PutU8(msgType)
	// Message size is filled by the transport framing; GIOP carries it
	// too for stream transports. We write the placeholder.
	g.putU32(e, 0)
}

func (g GIOP) readHeader(d *Decoder, wantType byte) error {
	if !d.Ensure(12) {
		return d.Err()
	}
	magic := d.Next(4)
	if string(magic) != "GIOP" {
		return d.Fail(fmt.Errorf("%w: GIOP magic %q", ErrBadMagic, magic))
	}
	d.Next(2) // version
	flag := d.U8()
	if (flag == 1) != g.Little {
		return d.Fail(fmt.Errorf("%w: GIOP byte order flag %d (peer endianness mismatch)", ErrBadMagic, flag))
	}
	if mt := d.U8(); mt != wantType {
		return d.Fail(fmt.Errorf("%w: GIOP message type %d, want %d", ErrBadMagic, mt, wantType))
	}
	g.getU32(d) // message size (framing already delimits)
	return nil
}

// WriteRequest emits the GIOP Request header: service context (empty),
// request id, response-expected, object key, operation name, principal
// (empty), then pads to the 8-byte payload boundary.
func (g GIOP) WriteRequest(e *Encoder, h *ReqHeader) {
	g.writeHeader(e, giopRequest)
	e.GrowDyn(32, 1, len(h.ObjectKey)+len(h.OpName))
	g.putU32(e, 0) // service context count
	g.putU32(e, h.XID)
	if h.OneWay {
		e.PutU8(0)
	} else {
		e.PutU8(1)
	}
	e.Align(4)
	g.putU32(e, uint32(len(h.ObjectKey)))
	e.PutBytes(h.ObjectKey)
	e.Align(4)
	g.putU32(e, uint32(len(h.OpName))+1)
	e.PutString(h.OpName)
	e.PutU8(0)
	e.Align(4)
	g.putU32(e, 0) // principal length
	e.Align(8)
}

func (g GIOP) ReadRequest(d *Decoder) (ReqHeader, error) {
	var h ReqHeader
	if err := g.readHeader(d, giopRequest); err != nil {
		return h, err
	}
	if !d.Ensure(9) {
		return h, d.Err()
	}
	if n := g.getU32(d); n != 0 {
		return h, d.Fail(fmt.Errorf("%w: unexpected service contexts", ErrBadMagic))
	}
	h.XID = g.getU32(d)
	h.OneWay = d.U8() == 0
	d.Align(4)
	if !d.Ensure(4) {
		return h, d.Err()
	}
	keyLen, ok := d.Len(orderOf(g.Little), 0, false)
	if !ok {
		return h, d.Err()
	}
	if !d.Ensure(keyLen) {
		return h, d.Err()
	}
	h.ObjectKey = append([]byte(nil), d.Next(keyLen)...)
	d.Align(4)
	if !d.Ensure(4) {
		return h, d.Err()
	}
	opLen, ok := d.Len(orderOf(g.Little), 0, true)
	if !ok {
		return h, d.Err()
	}
	if !d.Ensure(opLen + 1) {
		return h, d.Err()
	}
	h.OpName = string(d.Next(opLen))
	d.U8() // NUL
	d.Align(4)
	if !d.Ensure(4) {
		return h, d.Err()
	}
	g.getU32(d) // principal length (assumed 0)
	d.Align(8)
	return h, d.Err()
}

// WriteReply emits the GIOP Reply header: service context, request id,
// reply status, padded to the payload boundary.
func (g GIOP) WriteReply(e *Encoder, h *RepHeader) {
	g.writeHeader(e, giopReply)
	e.Grow(16)
	g.putU32(e, 0) // service context count
	g.putU32(e, h.XID)
	switch h.Status {
	case ReplyOK:
		g.putU32(e, 0) // NO_EXCEPTION
	case ReplyOverloaded:
		g.putU32(e, 4) // overloaded (deviation: GIOP 1.0 stops at 3)
	case ReplyExpired:
		g.putU32(e, 5) // deadline expired (deviation, like 4)
	default:
		g.putU32(e, 2) // SYSTEM_EXCEPTION
	}
	e.Align(8)
}

func (g GIOP) ReadReply(d *Decoder) (RepHeader, error) {
	var h RepHeader
	if err := g.readHeader(d, giopReply); err != nil {
		return h, err
	}
	if !d.Ensure(12) {
		return h, d.Err()
	}
	g.getU32(d) // service contexts
	h.XID = g.getU32(d)
	switch st := g.getU32(d); st {
	case 0:
	case 4:
		h.Status = ReplyOverloaded
	case 5:
		h.Status = ReplyExpired
	default:
		h.Status = ReplySystemError
	}
	d.Align(8)
	return h, d.Err()
}

func orderOf(little bool) ByteOrder {
	if little {
		return LE
	}
	return BE
}

// --- Mach 3 typed messages ---------------------------------------------------

// Mach is the Mach 3 message format: a fixed header (bits, size, ports,
// id) followed by a type descriptor and the inline body.
type Mach struct{}

func (Mach) Name() string      { return "mach3" }
func (Mach) DemuxByName() bool { return false }

// WriteRequest emits the 24-byte Mach header: msgh_bits, msgh_size
// (patched by framing), remote port, local port, msgh_id (the operation),
// and one inline type descriptor for the body.
func (Mach) WriteRequest(e *Encoder, h *ReqHeader) {
	e.Grow(24)
	e.PutU32LE(0x00001513) // msgh_bits: complex=0, remote+local rights
	e.PutU32LE(0)          // msgh_size (framing delimits)
	e.PutU32LE(0x100 + h.Prog)
	e.PutU32LE(h.XID) // reply port names the waiting rendezvous
	e.PutU32LE(h.Proc)
	// Inline descriptor: type=BYTE(9)<<24 | size 8 bits<<16 | count
	// patched at read side from framing; we store 0.
	e.PutU32LE(9 << 24)
}

func (Mach) ReadRequest(d *Decoder) (ReqHeader, error) {
	if !d.Ensure(24) {
		return ReqHeader{}, d.Err()
	}
	var h ReqHeader
	d.U32LE() // bits
	d.U32LE() // size
	prog := d.U32LE()
	h.XID = d.U32LE() // reply port
	h.Proc = d.U32LE()
	h.Prog = prog - 0x100
	if desc := d.U32LE(); desc>>24 != 9 {
		return h, d.Fail(fmt.Errorf("%w: Mach type descriptor %#x", ErrBadMagic, desc))
	}
	return h, nil
}

// WriteReply mirrors WriteRequest with the reply id convention
// (msgh_id + 100, as MIG does).
func (Mach) WriteReply(e *Encoder, h *RepHeader) {
	e.Grow(24)
	e.PutU32LE(0x00001200)
	e.PutU32LE(0)
	e.PutU32LE(h.XID) // destination port: the caller's rendezvous
	e.PutU32LE(0)
	e.PutU32LE(100) // msgh_id: reply convention
	switch h.Status {
	case ReplyOK:
		e.PutU32LE(9 << 24)
	case ReplyOverloaded:
		e.PutU32LE(0xFE << 24) // overloaded descriptor (deviation)
	case ReplyExpired:
		e.PutU32LE(0xFD << 24) // expired descriptor (deviation)
	default:
		e.PutU32LE(0xFF << 24)
	}
}

func (Mach) ReadReply(d *Decoder) (RepHeader, error) {
	if !d.Ensure(24) {
		return RepHeader{}, d.Err()
	}
	var h RepHeader
	d.U32LE()
	d.U32LE()
	h.XID = d.U32LE()
	d.U32LE()
	d.U32LE() // msgh_id
	switch desc := d.U32LE(); desc >> 24 {
	case 9:
	case 0xFE:
		h.Status = ReplyOverloaded
	case 0xFD:
		h.Status = ReplyExpired
	default:
		h.Status = ReplySystemError
	}
	return h, nil
}

// --- Fluke kernel IPC ---------------------------------------------------------

// Fluke is the minimal Fluke IPC format: two header words (operation and
// flags). The first payload words travel "in registers": the transport's
// in-process implementation passes them without buffer copies.
type Fluke struct{}

func (Fluke) Name() string      { return "fluke" }
func (Fluke) DemuxByName() bool { return false }

func (Fluke) WriteRequest(e *Encoder, h *ReqHeader) {
	e.Grow(12)
	e.PutU32LE(h.Proc)
	flags := uint32(0)
	if h.OneWay {
		flags = 1
	}
	e.PutU32LE(flags)
	e.PutU32LE(h.XID)
}

func (Fluke) ReadRequest(d *Decoder) (ReqHeader, error) {
	if !d.Ensure(12) {
		return ReqHeader{}, d.Err()
	}
	var h ReqHeader
	h.Proc = d.U32LE()
	h.OneWay = d.U32LE()&1 != 0
	h.XID = d.U32LE()
	return h, nil
}

func (Fluke) WriteReply(e *Encoder, h *RepHeader) {
	e.Grow(8)
	e.PutU32LE(h.XID)
	e.PutU32LE(h.Status)
}

func (Fluke) ReadReply(d *Decoder) (RepHeader, error) {
	if !d.Ensure(8) {
		return RepHeader{}, d.Err()
	}
	var h RepHeader
	h.XID = d.U32LE()
	h.Status = d.U32LE()
	return h, nil
}

// --- Batch frames -------------------------------------------------------------
//
// A batch frame packs several protocol messages into one transport
// frame, amortizing the per-frame costs — record mark, write syscall,
// CRC, NIC doorbell — across calls the same way the compiler's §3
// grouping amortizes ensure-space checks across chunks. The envelope is
// protocol-independent (each packed message still carries its own ONC/
// GIOP/Mach/Fluke header) and fully self-describing:
//
//	u32 magic (batchMagic, big-endian)
//	u32 count (1..MaxBatchMessages)
//	count × { u32 length, length bytes }
//
// Detection is structural: the magic must match AND the lengths must
// tile the frame exactly, so an ordinary message whose leading word
// happens to collide is still parsed as an ordinary message. BatchConn
// packs and unpacks envelopes transparently; Server.ServeConn also
// unpacks natively, so a batching client works against a plain server.

// batchMagic marks a batch envelope. It is deliberately far outside the
// XID range a fresh client reaches (clients count up from 1) and
// collides with no protocol's leading bytes ("GIOP", Mach msgh_bits,
// small Fluke procedure numbers).
const batchMagic uint32 = 0xFB1C_BA7C

// MaxBatchMessages bounds the number of messages one envelope may
// carry; a claimed count beyond it fails structural validation.
const MaxBatchMessages = 4096

// batchOverhead is the envelope cost of packing n messages.
func batchOverhead(n int) int { return 8 + 4*n }

// appendBatch appends one length-prefixed message to a frame under
// construction. The frame must have been started with appendBatchStart.
func appendBatch(frame, msg []byte) []byte {
	var l [4]byte
	binary.BigEndian.PutUint32(l[:], uint32(len(msg)))
	frame = append(frame, l[:]...)
	return append(frame, msg...)
}

// appendBatchStart begins an envelope for count messages.
func appendBatchStart(frame []byte, count int) []byte {
	var h [8]byte
	binary.BigEndian.PutUint32(h[:4], batchMagic)
	binary.BigEndian.PutUint32(h[4:], uint32(count))
	return append(frame, h[:]...)
}

// SplitBatch validates and splits a batch envelope. It returns
// (parts, true) when msg is a well-formed envelope — parts alias msg —
// and (nil, false) otherwise, including for ordinary messages and for
// malformed envelopes (which the caller should treat as ordinary
// messages and let the protocol header parse reject).
func SplitBatch(msg []byte) ([][]byte, bool) {
	if len(msg) < batchOverhead(1) || binary.BigEndian.Uint32(msg) != batchMagic {
		return nil, false
	}
	n := int(binary.BigEndian.Uint32(msg[4:]))
	if n < 1 || n > MaxBatchMessages {
		return nil, false
	}
	parts := make([][]byte, 0, n)
	off := 8
	for i := 0; i < n; i++ {
		if off+4 > len(msg) {
			return nil, false
		}
		l := int(binary.BigEndian.Uint32(msg[off:]))
		off += 4
		if l > len(msg)-off {
			return nil, false
		}
		parts = append(parts, msg[off:off+l:off+l])
		off += l
	}
	if off != len(msg) {
		// Trailing bytes no length accounts for: not an envelope.
		return nil, false
	}
	return parts, true
}

// --- Trace annotation ---------------------------------------------------------
//
// A trace annotation is an optional, backwards-compatible prefix on a
// request message carrying the distributed tracing context (span.go).
// Like the batch envelope above it is protocol-independent — the
// annotated message still carries its own ONC/GIOP/Mach/Fluke header —
// and fully self-describing:
//
//	u32 magic (traceMagic, big-endian)
//	u32 flags (bit 0 = sampled; all other bits must be zero)
//	16 bytes  trace ID
//	u64 span ID (big-endian; the client attempt span)
//
// Detection is structural: the magic must match, the reserved flag
// bits must be zero, and a protocol message must follow, so an
// ordinary message whose leading word happens to collide still parses
// as an ordinary message. Untraced calls carry no annotation at all —
// an old client against a new server, or a new client with tracing
// off, produces byte-identical frames to the seed. The 32-byte prefix
// is a multiple of every protocol's MaxAlign, so payload alignment
// inside the annotated message is preserved. Requests only: the client
// already holds the span context when the reply arrives, so replies
// stay unannotated. Inside a batch envelope each packed message keeps
// its own annotation, which is how trace context survives
// batching/unbatching for free.

// traceMagic marks a trace annotation. Like batchMagic it sits far
// outside the XID range a fresh client reaches and collides with no
// protocol's leading bytes.
const traceMagic uint32 = 0xFB1C_7AC3

// traceWireSize is the size of the annotation prefix.
const traceWireSize = 32

const traceFlagSampled uint32 = 1

// writeTraceContext prefixes the encoder's message with a trace
// annotation. Must be called before the protocol header is written.
func writeTraceContext(e *Encoder, tc TraceContext) {
	e.Grow(traceWireSize)
	e.PutU32BE(traceMagic)
	var flags uint32
	if tc.Sampled {
		flags |= traceFlagSampled
	}
	e.PutU32BE(flags)
	e.PutBytes(tc.TraceID[:])
	e.PutU64BE(tc.SpanID)
}

// SplitTrace validates and strips a trace annotation. It returns
// (context, message, true) when msg begins with a well-formed
// annotation — the returned message aliases msg — and
// (TraceContext{}, msg, false) otherwise, including for ordinary
// messages (which the caller simply parses as before).
func SplitTrace(msg []byte) (TraceContext, []byte, bool) {
	// A real annotated request has a protocol message after the prefix;
	// a bare or truncated prefix is not an annotation.
	if len(msg) <= traceWireSize || binary.BigEndian.Uint32(msg) != traceMagic {
		return TraceContext{}, msg, false
	}
	flags := binary.BigEndian.Uint32(msg[4:])
	if flags&^traceFlagSampled != 0 {
		return TraceContext{}, msg, false
	}
	var tc TraceContext
	copy(tc.TraceID[:], msg[8:24])
	tc.SpanID = binary.BigEndian.Uint64(msg[24:32])
	tc.Sampled = flags&traceFlagSampled != 0
	return tc, msg[traceWireSize:], true
}

// --- Deadline annotation ------------------------------------------------------
//
// A deadline annotation is an optional, backwards-compatible prefix on
// a request message carrying the call's remaining time budget, so the
// server inherits the end-to-end deadline instead of working on calls
// nobody is waiting for. It follows the trace annotation's idiom
// exactly — protocol-independent, structurally detected, stripped
// before protocol parsing — and is self-describing:
//
//	u32 magic (deadlineMagic, big-endian)
//	u32 flags (all bits must be zero)
//	u64 budget in nanoseconds (big-endian; remaining at send time)
//
// The budget is relative, not an absolute timestamp, so the contract
// survives unsynchronized clocks: the server converts it to a local
// absolute deadline on receipt (transit time is charged to the caller's
// budget implicitly, which errs on the generous side). Deadline-less
// calls carry no annotation at all — their frames stay byte-identical
// to the seed — and the 16-byte prefix is a multiple of every
// protocol's MaxAlign, so payload alignment is preserved. When both
// annotations are present the deadline prefix comes first (outermost);
// inside a batch envelope each packed message keeps its own.

// deadlineMagic marks a deadline annotation. Like batchMagic it sits
// far outside the XID range a fresh client reaches and collides with no
// protocol's leading bytes.
const deadlineMagic uint32 = 0xFB1C_DEAD

// deadlineWireSize is the size of the annotation prefix.
const deadlineWireSize = 16

// writeDeadline prefixes the encoder's message with a deadline
// annotation carrying the remaining budget. Must be called before the
// trace annotation and protocol header are written.
func writeDeadline(e *Encoder, budget time.Duration) {
	if budget < 0 {
		budget = 0
	}
	e.Grow(deadlineWireSize)
	e.PutU32BE(deadlineMagic)
	e.PutU32BE(0)
	e.PutU64BE(uint64(budget))
}

// SplitDeadline validates and strips a deadline annotation. It returns
// (budget, message, true) when msg begins with a well-formed annotation
// — the returned message aliases msg — and (0, msg, false) otherwise,
// including for ordinary messages (which the caller parses as before).
func SplitDeadline(msg []byte) (time.Duration, []byte, bool) {
	// A real annotated request has a protocol message after the prefix;
	// a bare or truncated prefix is not an annotation.
	if len(msg) <= deadlineWireSize || binary.BigEndian.Uint32(msg) != deadlineMagic {
		return 0, msg, false
	}
	if binary.BigEndian.Uint32(msg[4:]) != 0 {
		return 0, msg, false
	}
	budget := binary.BigEndian.Uint64(msg[8:16])
	if budget > uint64(1<<62) {
		return 0, msg, false
	}
	return time.Duration(budget), msg[deadlineWireSize:], true
}

// ProtocolByName returns a protocol by its wire-format name.
func ProtocolByName(name string) (Protocol, bool) {
	switch name {
	case "onc", "xdr":
		return ONC{}, true
	case "giop", "cdr", "cdr-be":
		return GIOP{}, true
	case "giop-le", "cdr-le":
		return GIOP{Little: true}, true
	case "mach3":
		return Mach{}, true
	case "fluke":
		return Fluke{}, true
	}
	return nil, false
}

// Word4 returns up to four bytes of s starting at off, packed big-endian
// and zero-padded: the machine-word unit of Flick's server-side
// discriminator hashing (GIOP operation names are matched a word at a
// time through nested switches).
func Word4(s string, off int) uint32 {
	var w uint32
	for i := 0; i < 4 && off+i < len(s); i++ {
		w |= uint32(s[off+i]) << (24 - 8*i)
	}
	return w
}
