// Server-side admission control: bounded, weighted, fast-reject.
//
// Overload must degrade to queuing plus shedding, never collapse. The
// per-connection job queue already provides bounded queuing (the decode
// loop stops reading when it fills), but backpressure alone lets one
// hot connection stall its whole pipeline while the server drowns in
// decoded-but-unserved work. Admission adds a server-global bound on
// *weighted* outstanding work, checked on the decode path before a
// request is queued: a request that would exceed the bound is answered
// immediately with ReplyOverloaded — no dispatch, no worker, no queue
// slot — which the client surfaces as ErrOverloaded and classifies as
// retryable even for non-idempotent operations, because the server
// provably did not execute it.
package rt

import (
	"errors"
	"sync/atomic"
)

// ErrOverloaded reports a call shed by server-side admission control
// before dispatch. It is always safe to retry — the operation did not
// execute — so with a RetryPolicy attached the client re-attempts it
// under backoff regardless of idempotency, and an exhausted call's
// error matches both ErrOverloaded and ErrRetryable via errors.Is.
var ErrOverloaded = errors.New("rt: server overloaded (admission control rejected the call)")

// Admission bounds a server's weighted outstanding work. Attach one to
// Server.Admission before serving; one Admission may be shared by
// several servers to bound a whole process. The zero Weights map means
// every operation costs 1, so MaxLoad is simply the maximum number of
// requests queued or executing at once.
type Admission struct {
	// MaxLoad is the weighted capacity; requests that would push the
	// load past it are rejected. Must be positive.
	MaxLoad int
	// Weights maps operation labels (OpName, or "proc-N" for protocols
	// that demultiplex numerically — the same labels Metrics uses) to
	// their admission cost. Operations absent from the map cost
	// DefaultWeight. Set before serving; not synchronized.
	Weights map[string]int
	// DefaultWeight is the cost of unlisted operations (default 1).
	DefaultWeight int

	// load is the live weighted sum of admitted requests, from
	// admission on the decode path to dispatch completion. It mirrors
	// what the QueueDepth gauge plus the executing set would report,
	// kept here so admission works with a nil Metrics.
	load atomic.Int64
	// peak is the high-water mark load has reached (CAS-maintained on
	// the admit path), so the debug surface can report how close to
	// MaxLoad the server has actually been.
	peak atomic.Int64
}

// Load reports the current weighted admitted work.
func (a *Admission) Load() int64 { return a.load.Load() }

// Watermark reports the highest weighted load ever admitted — the
// high-water mark against MaxLoad, for the debug surface.
func (a *Admission) Watermark() int64 { return a.peak.Load() }

// weight returns the admission cost of one request.
func (a *Admission) weight(h *ReqHeader) int64 {
	w := a.DefaultWeight
	if len(a.Weights) > 0 {
		if ww, ok := a.Weights[opLabel(h)]; ok {
			w = ww
		}
	}
	if w <= 0 {
		w = 1
	}
	return int64(w)
}

// tryAcquire admits w units of work if capacity remains. Lock-free:
// optimistically add, undo on overshoot.
func (a *Admission) tryAcquire(w int64) bool {
	n := a.load.Add(w)
	if n > int64(a.MaxLoad) {
		a.load.Add(-w)
		return false
	}
	for {
		p := a.peak.Load()
		if n <= p || a.peak.CompareAndSwap(p, n) {
			return true
		}
	}
}

// release returns w units of capacity when a request finishes (reply
// sent, oneway dispatched, or the drain discarded it).
func (a *Admission) release(w int64) {
	a.load.Add(-w)
}
