package rt

import (
	"encoding/binary"
	"math"
)

// Bulk transfer helpers: the runtime half of Flick's memcpy optimization.
// For byte-width elements the generated code uses copy directly; for
// wider elements these tight loops avoid the per-element function calls
// and cursor updates of the naive path.

// PutSlice16BE writes each element big-endian into b (len(b) ≥ 2*len(s)).
func PutSlice16BE[T ~int16 | ~uint16](b []byte, s []T) {
	for i, v := range s {
		binary.BigEndian.PutUint16(b[2*i:], uint16(v))
	}
}

// PutSlice16LE writes each element little-endian.
func PutSlice16LE[T ~int16 | ~uint16](b []byte, s []T) {
	for i, v := range s {
		binary.LittleEndian.PutUint16(b[2*i:], uint16(v))
	}
}

// PutSlice32BE writes each element big-endian (len(b) ≥ 4*len(s)).
func PutSlice32BE[T ~int32 | ~uint32](b []byte, s []T) {
	for i, v := range s {
		binary.BigEndian.PutUint32(b[4*i:], uint32(v))
	}
}

// PutSlice32LE writes each element little-endian.
func PutSlice32LE[T ~int32 | ~uint32](b []byte, s []T) {
	for i, v := range s {
		binary.LittleEndian.PutUint32(b[4*i:], uint32(v))
	}
}

// PutSlice64BE writes each element big-endian (len(b) ≥ 8*len(s)).
func PutSlice64BE[T ~int64 | ~uint64](b []byte, s []T) {
	for i, v := range s {
		binary.BigEndian.PutUint64(b[8*i:], uint64(v))
	}
}

// PutSlice64LE writes each element little-endian.
func PutSlice64LE[T ~int64 | ~uint64](b []byte, s []T) {
	for i, v := range s {
		binary.LittleEndian.PutUint64(b[8*i:], uint64(v))
	}
}

// PutSliceF32BE / LE write float32 elements.
func PutSliceF32BE(b []byte, s []float32) {
	for i, v := range s {
		binary.BigEndian.PutUint32(b[4*i:], math.Float32bits(v))
	}
}

func PutSliceF32LE(b []byte, s []float32) {
	for i, v := range s {
		binary.LittleEndian.PutUint32(b[4*i:], math.Float32bits(v))
	}
}

// PutSliceF64BE / LE write float64 elements.
func PutSliceF64BE(b []byte, s []float64) {
	for i, v := range s {
		binary.BigEndian.PutUint64(b[8*i:], math.Float64bits(v))
	}
}

func PutSliceF64LE(b []byte, s []float64) {
	for i, v := range s {
		binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(v))
	}
}

// PutSlice8 writes 1-byte integer elements.
func PutSlice8[T ~int8 | ~uint8](b []byte, s []T) {
	for i, v := range s {
		b[i] = byte(v)
	}
}

// PutSliceBool writes booleans at the given wire width (4 for XDR, 1 for
// CDR).
func PutSliceBool(b []byte, s []bool, wireWidth int, order ByteOrder) {
	for i, v := range s {
		switch wireWidth {
		case 1:
			b[i] = B2U8(v)
		default:
			if order == BE {
				binary.BigEndian.PutUint32(b[4*i:], B2U32(v))
			} else {
				binary.LittleEndian.PutUint32(b[4*i:], B2U32(v))
			}
		}
	}
}

// GetSlice16BE fills dst from big-endian wire bytes (len(b) ≥ 2*len(dst)).
func GetSlice16BE[T ~int16 | ~uint16](dst []T, b []byte) {
	for i := range dst {
		dst[i] = T(binary.BigEndian.Uint16(b[2*i:]))
	}
}

func GetSlice16LE[T ~int16 | ~uint16](dst []T, b []byte) {
	for i := range dst {
		dst[i] = T(binary.LittleEndian.Uint16(b[2*i:]))
	}
}

func GetSlice32BE[T ~int32 | ~uint32](dst []T, b []byte) {
	for i := range dst {
		dst[i] = T(binary.BigEndian.Uint32(b[4*i:]))
	}
}

func GetSlice32LE[T ~int32 | ~uint32](dst []T, b []byte) {
	for i := range dst {
		dst[i] = T(binary.LittleEndian.Uint32(b[4*i:]))
	}
}

func GetSlice64BE[T ~int64 | ~uint64](dst []T, b []byte) {
	for i := range dst {
		dst[i] = T(binary.BigEndian.Uint64(b[8*i:]))
	}
}

func GetSlice64LE[T ~int64 | ~uint64](dst []T, b []byte) {
	for i := range dst {
		dst[i] = T(binary.LittleEndian.Uint64(b[8*i:]))
	}
}

func GetSliceF32BE(dst []float32, b []byte) {
	for i := range dst {
		dst[i] = math.Float32frombits(binary.BigEndian.Uint32(b[4*i:]))
	}
}

func GetSliceF32LE(dst []float32, b []byte) {
	for i := range dst {
		dst[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[4*i:]))
	}
}

func GetSliceF64BE(dst []float64, b []byte) {
	for i := range dst {
		dst[i] = math.Float64frombits(binary.BigEndian.Uint64(b[8*i:]))
	}
}

func GetSliceF64LE(dst []float64, b []byte) {
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
}

func GetSlice8[T ~int8 | ~uint8](dst []T, b []byte) {
	for i := range dst {
		dst[i] = T(b[i])
	}
}

func GetSliceBool(dst []bool, b []byte, wireWidth int, order ByteOrder) {
	for i := range dst {
		switch wireWidth {
		case 1:
			dst[i] = b[i] != 0
		default:
			if order == BE {
				dst[i] = binary.BigEndian.Uint32(b[4*i:]) != 0
			} else {
				dst[i] = binary.LittleEndian.Uint32(b[4*i:]) != 0
			}
		}
	}
}
