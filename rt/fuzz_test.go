package rt

import "testing"

// Native fuzz harnesses for the Decoder's header and payload parsing.
// Run with e.g.
//
//	go test -fuzz=FuzzProtocolHeaders -fuzztime=30s ./rt
//
// The seed corpus is built from golden wire fixtures — valid frames
// written by each protocol's own encoder — so coverage starts beyond
// the magic checks instead of having to mutate its way to them.

// fuzzProtocols covers every wire protocol, GIOP in both byte orders.
func fuzzProtocols() []Protocol {
	return []Protocol{ONC{}, GIOP{}, GIOP{Little: true}, Mach{}, Fluke{}}
}

// goldenWire builds one valid request frame and one valid reply frame
// per protocol, each with a small payload behind the header.
func goldenWire() [][]byte {
	req := ReqHeader{XID: 7, Prog: 0x20000042, Vers: 1, Proc: 3,
		OpName: "send_ints", ObjectKey: []byte("bench")}
	rep := RepHeader{XID: 7, Status: ReplyOK}
	var frames [][]byte
	for _, p := range fuzzProtocols() {
		var e Encoder
		p.WriteRequest(&e, &req)
		e.PutU32BEC(0xdeadbeef)
		frames = append(frames, append([]byte(nil), e.Bytes()...))
		e.Reset()
		p.WriteReply(&e, &rep)
		e.PutU32BEC(0xdeadbeef)
		frames = append(frames, append([]byte(nil), e.Bytes()...))
	}
	return frames
}

// FuzzProtocolHeaders throws arbitrary bytes at every protocol's
// request and reply header parsers. The parsers' contract: never panic
// (every unchecked Next must be dominated by an Ensure — the runtime
// mirror of the MIR verifier's dominance invariant), never move the
// cursor past the buffer, and never report success on a poisoned
// decoder.
func FuzzProtocolHeaders(f *testing.F) {
	for _, frame := range goldenWire() {
		f.Add(frame)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, p := range fuzzProtocols() {
			d := NewDecoder(data)
			if _, err := p.ReadRequest(d); err == nil {
				if d.Err() != nil {
					t.Errorf("%s: ReadRequest succeeded on a poisoned decoder: %v", p.Name(), d.Err())
				}
				if d.Pos() > len(data) {
					t.Errorf("%s: ReadRequest cursor %d past end %d", p.Name(), d.Pos(), len(data))
				}
			}
			d = NewDecoder(data)
			if _, err := p.ReadReply(d); err == nil {
				if d.Err() != nil {
					t.Errorf("%s: ReadReply succeeded on a poisoned decoder: %v", p.Name(), d.Err())
				}
				if d.Pos() > len(data) {
					t.Errorf("%s: ReadReply cursor %d past end %d", p.Name(), d.Pos(), len(data))
				}
			}
		}
	})
}

// FuzzDecoderPayload uses the fuzz input twice: as an op stream driving
// a random walk over the Decoder primitives that generated unmarshal
// code performs (Ensure/Next, alignment, checked reads, counted
// lengths), and as the payload being decoded. Whatever the walk, the
// decoder must not panic, the cursor must stay inside the buffer, and
// the guarantees behind unchecked reads must hold: Ensure(n) == true
// means n bytes really remain, and a Len/CheckLen success means the
// counted region fits without a further check (the hostile-count
// guard).
func FuzzDecoderPayload(f *testing.F) {
	for _, frame := range goldenWire() {
		f.Add(frame)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		const maxOps = 64
		d := NewDecoder(data)
		for i := 0; i < len(data) && i < maxOps; i++ {
			op := data[i]
			switch op % 10 {
			case 0:
				n := int(op)
				if d.Ensure(n) {
					if d.Remaining() < n {
						t.Fatalf("Ensure(%d) passed with %d bytes remaining", n, d.Remaining())
					}
					d.Next(n)
				}
			case 1:
				d.Align(4)
				if d.Err() == nil && d.Pos()%4 != 0 {
					t.Fatalf("Align(4) left cursor at %d", d.Pos())
				}
			case 2:
				d.Align(8)
			case 3:
				d.U8C()
			case 4:
				d.U16BEC()
			case 5:
				d.U32LEC()
			case 6:
				d.U64BEC()
			case 7:
				// Bounded count, big-endian (XDR style).
				if d.Ensure(4) {
					if n, ok := d.Len(BE, uint32(op), false); ok {
						if d.Remaining() < n {
							t.Fatalf("Len accepted count %d with %d bytes remaining", n, d.Remaining())
						}
						d.Next(n)
					}
				}
			case 8:
				// NUL-counted string, little-endian (CDR style). A
				// CheckLen success guarantees the body fits, so the
				// Next needs no further Ensure.
				if d.Ensure(4) {
					if n, ok := d.Len(LE, 0, true); ok {
						d.Next(n)
					}
				}
			case 9:
				if d.EnsureDyn(4, 8, int(op)) {
					d.Next(4 + 8*int(op))
				}
			}
			if d.Pos() > len(data) {
				t.Fatalf("op %d (%d): cursor %d past end %d", i, op, d.Pos(), len(data))
			}
		}
	})
}
