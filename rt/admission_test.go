package rt

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// Tests for server-side admission control: the weighted load gate, the
// ReplyOverloaded wire encoding across all four protocols, and the
// end-to-end overload → ErrOverloaded → retry path.

func TestAdmissionWeights(t *testing.T) {
	a := &Admission{
		MaxLoad:       10,
		Weights:       map[string]int{"heavy": 5},
		DefaultWeight: 2,
	}
	hHeavy := &ReqHeader{OpName: "heavy"}
	hOther := &ReqHeader{OpName: "light"}
	if w := a.weight(hHeavy); w != 5 {
		t.Errorf("weight(heavy) = %d, want 5", w)
	}
	if w := a.weight(hOther); w != 2 {
		t.Errorf("weight(light) = %d, want the default 2", w)
	}

	// 5 + 2 + 2 = 9 fits; one more default-weight call would hit 11.
	for _, w := range []int64{5, 2, 2} {
		if !a.tryAcquire(w) {
			t.Fatalf("tryAcquire(%d) rejected below MaxLoad", w)
		}
	}
	if a.tryAcquire(2) {
		t.Error("tryAcquire(2) admitted past MaxLoad")
	}
	if got := a.Load(); got != 9 {
		t.Errorf("Load = %d, want 9 (failed acquire must undo itself)", got)
	}
	a.release(5)
	if !a.tryAcquire(2) {
		t.Error("tryAcquire(2) rejected after release freed capacity")
	}
	a.release(2)
	a.release(2)
	a.release(2)
	if got := a.Load(); got != 0 {
		t.Errorf("Load = %d after symmetric releases, want 0", got)
	}
}

func TestReplyOverloadedRoundTrip(t *testing.T) {
	for _, p := range []Protocol{ONC{}, GIOP{}, GIOP{Little: true}, Mach{}, Fluke{}} {
		var e Encoder
		p.WriteReply(&e, &RepHeader{XID: 99, Status: ReplyOverloaded})
		h, err := p.ReadReply(NewDecoder(e.Bytes()))
		if err != nil {
			t.Errorf("%s: ReadReply: %v", p.Name(), err)
			continue
		}
		if h.XID != 99 || h.Status != ReplyOverloaded {
			t.Errorf("%s: got XID=%d Status=%d, want 99/ReplyOverloaded", p.Name(), h.XID, h.Status)
		}
	}
}

// startAdmissionServer serves a blockable echo behind an Admission gate.
func startAdmissionServer(t *testing.T, adm *Admission, block chan struct{}) (Conn, *Metrics) {
	t.Helper()
	clientEnd, serverEnd := Pipe()
	s := NewServer(ONC{})
	s.Workers = 4
	s.Metrics = NewMetrics()
	s.Admission = adm
	s.Register(7, 1, func(h *ReqHeader, d *Decoder, e *Encoder) error {
		h.OpName = "double"
		if block != nil {
			<-block
		}
		if !d.Ensure(4) {
			return d.Err()
		}
		e.PutU32BEC(2 * d.U32BE())
		return nil
	})
	done := make(chan struct{})
	go func() { defer close(done); s.ServeConn(serverEnd) }()
	t.Cleanup(func() { clientEnd.Close(); <-done })
	return clientEnd, s.Metrics
}

// TestAdmissionFastReject: with capacity exhausted by parked calls, the
// next call is shed from the decode loop with ErrOverloaded — and the
// client's breaker stays healthy, because the server answered.
func TestAdmissionFastReject(t *testing.T) {
	adm := &Admission{MaxLoad: 2}
	block := make(chan struct{})
	conn, sm := startAdmissionServer(t, adm, block)

	c := newEchoClient(conn)
	c.Breaker = &Breaker{Threshold: 1} // any transport failure would open it

	// Park two calls inside the handlers to pin the load at MaxLoad.
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			d, err := c.Call(1, "double", false, func(e *Encoder) { e.PutU32BEC(21) })
			if err != nil {
				t.Errorf("parked call failed: %v", err)
				return
			}
			d.Release()
		}()
	}
	// Wait until both calls occupy the gate.
	for deadline := time.Now().Add(2 * time.Second); adm.Load() < 2; {
		if time.Now().After(deadline) {
			t.Fatal("handlers never occupied the admission gate")
		}
		time.Sleep(time.Millisecond)
	}

	_, err := c.Call(1, "double", false, func(e *Encoder) { e.PutU32BEC(1) })
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("overloaded call returned %v, want ErrOverloaded", err)
	}
	if got := c.Breaker.State(); got != BreakerClosed {
		t.Errorf("breaker %v after overload reply, want closed (transport is healthy)", got)
	}
	if sm.AdmissionRejects.Load() == 0 {
		t.Error("AdmissionRejects not counted")
	}

	close(block) // drain the parked calls
	wg.Wait()

	// Capacity released at dispatch completion: the next call is admitted.
	for deadline := time.Now().Add(2 * time.Second); ; {
		d, err := c.Call(1, "double", false, func(e *Encoder) { e.PutU32BEC(3) })
		if err == nil {
			if d.Ensure(4) && d.U32BE() != 6 {
				t.Error("wrong answer after recovery")
			}
			d.Release()
			break
		}
		if !errors.Is(err, ErrOverloaded) || time.Now().After(deadline) {
			t.Fatalf("post-recovery call: %v", err)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestAdmissionRetryRecovers: a Retry policy turns transient overload
// into backoff-and-succeed, even for non-idempotent calls (the server
// provably did not execute a shed request).
func TestAdmissionRetryRecovers(t *testing.T) {
	adm := &Admission{MaxLoad: 1}
	block := make(chan struct{})
	conn, _ := startAdmissionServer(t, adm, block)

	c := newEchoClient(conn)
	c.Retry = &RetryPolicy{MaxAttempts: 50, BaseBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond, Seed: 1}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		d, err := c.Call(1, "double", false, func(e *Encoder) { e.PutU32BEC(2) })
		if err != nil {
			t.Errorf("parked call: %v", err)
			return
		}
		d.Release()
	}()
	for deadline := time.Now().Add(2 * time.Second); adm.Load() < 1; {
		if time.Now().After(deadline) {
			t.Fatal("handler never occupied the gate")
		}
		time.Sleep(time.Millisecond)
	}
	// Unblock the parked call shortly; the non-idempotent retry loop
	// must ride out the overload window and then succeed.
	time.AfterFunc(20*time.Millisecond, func() { close(block) })
	d, err := c.Call(1, "double", false, func(e *Encoder) { e.PutU32BEC(5) })
	if err != nil {
		t.Fatalf("call through transient overload: %v", err)
	}
	if d.Ensure(4) && d.U32BE() != 10 {
		t.Error("wrong answer")
	}
	d.Release()
	wg.Wait()
}

// TestAdmissionOnewayShedSilently: a shed oneway request gets no
// overload reply (nothing is waiting), only the metric.
func TestAdmissionOnewayShedSilently(t *testing.T) {
	adm := &Admission{MaxLoad: 1}
	block := make(chan struct{})
	conn, sm := startAdmissionServer(t, adm, block)
	defer close(block)

	c := newEchoClient(conn)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		d, err := c.Call(1, "double", false, func(e *Encoder) { e.PutU32BEC(2) })
		if err == nil {
			d.Release()
		}
	}()
	for deadline := time.Now().Add(2 * time.Second); adm.Load() < 1; {
		if time.Now().After(deadline) {
			t.Fatal("handler never occupied the gate")
		}
		time.Sleep(time.Millisecond)
	}
	before := sm.AdmissionRejects.Load()
	if _, err := c.Call(3, "note", true, func(e *Encoder) {}); err != nil {
		t.Fatalf("oneway send: %v", err)
	}
	for deadline := time.Now().Add(2 * time.Second); sm.AdmissionRejects.Load() == before; {
		if time.Now().After(deadline) {
			t.Fatal("oneway shed not counted")
		}
		time.Sleep(time.Millisecond)
	}
	wg.Wait()
}
