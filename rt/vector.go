// The zero-copy send path: encoder alias segments and vectored
// transmission.
//
// Generated -zerocopy stubs call PutBytesZC for every region the MIR
// alias pass proved alias-safe (and only those — the emitter refuses
// unproven regions, and the zerocopy verifier re-checks every proof at
// compile time). Instead of copying the payload into the marshal
// buffer, the encoder seals the buffered prefix as a segment and
// appends a segment referencing the caller's bytes in place. The send
// path then hands the whole segment list to the transport:
//
//   - TCP implements VectoredSender and writes header + segments with
//     one writev (net.Buffers), so proven payloads cross the socket
//     without ever being copied into runtime memory.
//   - Everything else (UDP datagrams, in-process pipes, wrapped conns
//     such as checksum/fault/batch) falls back to flattening: Bytes
//     assembles the contiguous message and the ordinary Send runs.
//     Correctness never depends on the transport; only the copy count
//     does.
//
// The lifetime obligation the prover discharged — no mutation between
// marshal and send — is honored structurally: the vectored write
// completes before Send returns, and Conn's documented contract
// ("the buffer may be reused by the caller after Send returns")
// extends unchanged to aliased user memory.
package rt

import (
	"encoding/binary"
	"net"
	"sync/atomic"
)

// ZeroCopyThreshold is the segment size below which PutBytesZC copies
// instead of aliasing: tiny segments cost more in iovec bookkeeping
// than the copy they avoid. Set once at startup if tuning is needed.
var ZeroCopyThreshold = 512

// zcCounters tracks the zero-copy fast path process-wide, the dynamic
// counterpart of the compiler's alias-pass counters: tests prove "zero
// marshal-side copies" by asserting CopiedBytes stays flat while
// AliasedBytes and VectoredSends advance.
var zcCounters struct {
	aliasSegs      atomic.Uint64
	aliasedBytes   atomic.Uint64
	copiedBytes    atomic.Uint64
	vectoredSends  atomic.Uint64
	flattenedSends atomic.Uint64
	aliasViews     atomic.Uint64
	arenaGets      atomic.Uint64
	arenaPuts      atomic.Uint64
	arenaPinned    atomic.Uint64
}

// ZeroCopyStats is a point-in-time copy of the zero-copy counters.
type ZeroCopyStats struct {
	// AliasSegs counts payload segments sent by reference;
	// AliasedBytes their total size. CopiedBytes counts bytes that
	// went through PutBytesZC but were copied anyway (below the
	// threshold): on a ≥ threshold workload it must not move.
	AliasSegs    uint64
	AliasedBytes uint64
	CopiedBytes  uint64
	// VectoredSends counts messages written with writev;
	// FlattenedSends messages that carried alias segments but had to
	// be assembled for a non-vectored transport.
	VectoredSends  uint64
	FlattenedSends uint64
	// AliasViews counts decode-side views handed out by AliasNext.
	AliasViews uint64
	// ArenaGets/ArenaPuts track the receive-arena pool; ArenaPinned
	// counts arenas whose recycle was forfeited because alias views
	// were outstanding at Release (ownership transferred to the
	// views; the garbage collector reclaims the arena when they die).
	ArenaGets   uint64
	ArenaPuts   uint64
	ArenaPinned uint64
}

// Sub returns the counter deltas since an earlier snapshot.
func (s ZeroCopyStats) Sub(earlier ZeroCopyStats) ZeroCopyStats {
	return ZeroCopyStats{
		AliasSegs:      s.AliasSegs - earlier.AliasSegs,
		AliasedBytes:   s.AliasedBytes - earlier.AliasedBytes,
		CopiedBytes:    s.CopiedBytes - earlier.CopiedBytes,
		VectoredSends:  s.VectoredSends - earlier.VectoredSends,
		FlattenedSends: s.FlattenedSends - earlier.FlattenedSends,
		AliasViews:     s.AliasViews - earlier.AliasViews,
		ArenaGets:      s.ArenaGets - earlier.ArenaGets,
		ArenaPuts:      s.ArenaPuts - earlier.ArenaPuts,
		ArenaPinned:    s.ArenaPinned - earlier.ArenaPinned,
	}
}

// ReadZeroCopyStats snapshots the process-wide zero-copy counters.
func ReadZeroCopyStats() ZeroCopyStats {
	return ZeroCopyStats{
		AliasSegs:      zcCounters.aliasSegs.Load(),
		AliasedBytes:   zcCounters.aliasedBytes.Load(),
		CopiedBytes:    zcCounters.copiedBytes.Load(),
		VectoredSends:  zcCounters.vectoredSends.Load(),
		FlattenedSends: zcCounters.flattenedSends.Load(),
		AliasViews:     zcCounters.aliasViews.Load(),
		ArenaGets:      zcCounters.arenaGets.Load(),
		ArenaPuts:      zcCounters.arenaPuts.Load(),
		ArenaPinned:    zcCounters.arenaPinned.Load(),
	}
}

// PutBytesZC appends s by reference when it clears the threshold, by
// copy otherwise. Only generated stubs with a prover-signed alias-safe
// region call this; the contract is the Conn send contract: the caller
// must not mutate s until the enclosing Send returns (which the
// synchronous stub shape guarantees — marshal and send share a call
// frame).
func (e *Encoder) PutBytesZC(s []byte) {
	if len(s) < ZeroCopyThreshold {
		zcCounters.copiedBytes.Add(uint64(len(s)))
		e.PutBytes(s)
		return
	}
	e.sealSeg()
	e.segs = append(e.segs, s[:len(s):len(s)])
	e.aliasBytes += len(s)
	e.nAlias++
	zcCounters.aliasSegs.Add(1)
	zcCounters.aliasedBytes.Add(uint64(len(s)))
}

// sealSeg captures the not-yet-captured buffered prefix as a segment.
// Sealed windows stay valid across later growth: appends write at or
// beyond the seal point, and a reallocation copies the prefix into the
// new array while the window keeps referencing the old one — whose
// bytes never change again.
func (e *Encoder) sealSeg() {
	if len(e.buf) > e.sealed {
		e.segs = append(e.segs, e.buf[e.sealed:len(e.buf):len(e.buf)])
	}
	e.sealed = len(e.buf)
}

// clearSegs drops the segment list and nils the entries so neither the
// pool nor a retained Encoder pins caller memory.
func (e *Encoder) clearSegs() {
	for i := range e.segs {
		e.segs[i] = nil
	}
	e.segs = e.segs[:0]
	e.sealed = 0
	e.aliasBytes = 0
	e.nAlias = 0
}

// Vectored returns the message as an ordered segment list when alias
// segments are outstanding, or ok=false when the contiguous buffer is
// the whole message (the common copy path). The returned segments are
// valid until the encoder's next Reset.
func (e *Encoder) Vectored() ([][]byte, bool) {
	if e.nAlias == 0 {
		return nil, false
	}
	e.sealSeg()
	return e.segs, true
}

// VectoredSender is implemented by transports that can transmit a
// message assembled from multiple segments without flattening them
// first (writev). Like Send, SendVectored must complete the write
// before returning and must serialize whole messages across concurrent
// senders.
type VectoredSender interface {
	SendVectored(segs [][]byte) error
}

// SendVectored transmits a multi-segment message over c: directly when
// the transport can scatter/gather, otherwise by flattening into one
// buffer (the fallback every wrapped or datagram transport takes).
func SendVectored(c Conn, segs [][]byte) error {
	if vs, ok := c.(VectoredSender); ok {
		zcCounters.vectoredSends.Add(1)
		return vs.SendVectored(segs)
	}
	zcCounters.flattenedSends.Add(1)
	n := 0
	for _, s := range segs {
		n += len(s)
	}
	flat := make([]byte, 0, n)
	for _, s := range segs {
		flat = append(flat, s...)
	}
	return c.Send(flat)
}

// sendEncoded transmits an encoder's message over c, taking the
// vectored path when alias segments are outstanding and the transport
// supports it. This is the single seam every runtime send of a
// stub-built message goes through.
func sendEncoded(c Conn, e *Encoder) error {
	segs, ok := e.Vectored()
	if !ok {
		return c.Send(e.Bytes())
	}
	if vs, vok := c.(VectoredSender); vok {
		zcCounters.vectoredSends.Add(1)
		return vs.SendVectored(segs)
	}
	zcCounters.flattenedSends.Add(1)
	return c.Send(e.Bytes())
}

// SendVectored writes the record mark and every segment with one
// writev. Holding wmu for the whole scatter write preserves the
// whole-message serialization the record-marking framing depends on.
func (t *tcpConn) SendVectored(segs [][]byte) error {
	t.wmu.Lock()
	defer t.wmu.Unlock()
	total := 0
	for _, s := range segs {
		total += len(s)
	}
	binary.BigEndian.PutUint32(t.whdr[:], uint32(total)|0x80000000)
	t.wvec = t.wvec[:0]
	t.wvec = append(t.wvec, t.whdr[:])
	t.wvec = append(t.wvec, segs...)
	bufs := net.Buffers(t.wvec)
	_, err := bufs.WriteTo(t.c)
	// WriteTo consumes bufs in place; re-nil the scratch so the conn
	// does not pin the caller's payload until the next send.
	for i := range t.wvec {
		t.wvec[i] = nil
	}
	t.wvec = t.wvec[:0]
	return err
}
