package rt

import (
	"bytes"
	"errors"
	"io"
	"sync"
	"testing"
	"time"
)

// Tests for the fault-injection and frame-integrity layers: every fault
// kind behaves as advertised, the same seed yields the same fault
// sequence, and a ChecksumConn converts wire damage into loss.

// scriptConn is a deterministic in-memory Conn for fault tests: Send
// records frames (cloned, honouring the caller-may-reuse contract) and
// Recv serves a pre-loaded queue, then io.EOF.
type scriptConn struct {
	mu     sync.Mutex
	sent   [][]byte
	queue  [][]byte
	closed bool
}

func (s *scriptConn) Send(msg []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.sent = append(s.sent, append([]byte(nil), msg...))
	return nil
}

func (s *scriptConn) Recv() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.queue) == 0 {
		if s.closed {
			return nil, ErrClosed
		}
		return nil, io.EOF
	}
	msg := s.queue[0]
	s.queue = s.queue[1:]
	return msg, nil
}

func (s *scriptConn) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	return nil
}

func (s *scriptConn) sentFrames() [][]byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([][]byte(nil), s.sent...)
}

func mustFault(t *testing.T, inner Conn, plan FaultPlan) *FaultConn {
	t.Helper()
	f, err := NewFaultConn(inner, plan)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestFaultPlanRejectsOverfullRates(t *testing.T) {
	_, err := NewFaultConn(&scriptConn{}, FaultPlan{Drop: 0.7, Corrupt: 0.5})
	if err == nil {
		t.Fatal("fault rates summing past 1 were accepted")
	}
}

// TestFaultConnSeededDeterminism is the reproducibility contract: the
// same seed and the same message sequence yield byte-identical delivered
// frames and identical fault counts.
func TestFaultConnSeededDeterminism(t *testing.T) {
	plan := FaultPlan{
		Seed: 42, Drop: 0.1, Duplicate: 0.1, Reorder: 0.1,
		Corrupt: 0.1, Truncate: 0.1, Delay: 0.05,
		DelayMax: time.Nanosecond, // Int63n(1) == 0: no real sleeping
	}
	run := func() ([][]byte, []uint64) {
		inner := &scriptConn{}
		f := mustFault(t, inner, plan)
		msg := make([]byte, 32)
		for i := 0; i < 200; i++ {
			for j := range msg {
				msg[j] = byte(i + j)
			}
			if err := f.Send(msg); err != nil {
				t.Fatalf("send %d: %v", i, err)
			}
		}
		st := &f.Stats
		return inner.sentFrames(), []uint64{
			st.Messages.Load(), st.Drops.Load(), st.Dups.Load(), st.Reorders.Load(),
			st.Corrupts.Load(), st.Truncates.Load(), st.Delays.Load(),
		}
	}
	frames1, stats1 := run()
	frames2, stats2 := run()
	if len(frames1) != len(frames2) {
		t.Fatalf("same seed delivered %d vs %d frames", len(frames1), len(frames2))
	}
	for i := range frames1 {
		if !bytes.Equal(frames1[i], frames2[i]) {
			t.Fatalf("same seed diverged at frame %d", i)
		}
	}
	for i := range stats1 {
		if stats1[i] != stats2[i] {
			t.Fatalf("same seed produced different fault counts: %v vs %v", stats1, stats2)
		}
	}
	if stats1[1] == 0 || stats1[2] == 0 || stats1[4] == 0 {
		t.Errorf("200 messages at 10%% rates injected no faults: %v", stats1)
	}
}

func TestFaultConnDrop(t *testing.T) {
	inner := &scriptConn{queue: [][]byte{{1}, {2}}}
	f := mustFault(t, inner, FaultPlan{Drop: 1})
	if err := f.Send([]byte{9}); err != nil {
		t.Fatal(err)
	}
	if n := len(inner.sentFrames()); n != 0 {
		t.Errorf("dropped send still delivered %d frames", n)
	}
	// Every queued inbound message drops too; the link then reports EOF.
	if _, err := f.Recv(); !errors.Is(err, io.EOF) {
		t.Errorf("Recv over all-drop link = %v, want io.EOF", err)
	}
	if got := f.Stats.Drops.Load(); got != 3 {
		t.Errorf("Drops = %d, want 3", got)
	}
}

func TestFaultConnDuplicate(t *testing.T) {
	inner := &scriptConn{queue: [][]byte{{1, 2, 3}}}
	f := mustFault(t, inner, FaultPlan{Duplicate: 1})
	if err := f.Send([]byte{7, 8}); err != nil {
		t.Fatal(err)
	}
	sent := inner.sentFrames()
	if len(sent) != 2 || !bytes.Equal(sent[0], sent[1]) || !bytes.Equal(sent[0], []byte{7, 8}) {
		t.Errorf("duplicated send delivered %v", sent)
	}
	// Recv side: the same message arrives twice.
	a, err := f.Recv()
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, []byte{1, 2, 3}) || !bytes.Equal(a, b) {
		t.Errorf("duplicated recv = %v, %v", a, b)
	}
}

func TestFaultConnReorderSend(t *testing.T) {
	inner := &scriptConn{}
	f := mustFault(t, inner, FaultPlan{Reorder: 1})
	f.Send([]byte{1})
	if n := len(inner.sentFrames()); n != 0 {
		t.Fatalf("held message delivered early (%d frames)", n)
	}
	f.Send([]byte{2})
	sent := inner.sentFrames()
	if len(sent) != 2 || !bytes.Equal(sent[0], []byte{2}) || !bytes.Equal(sent[1], []byte{1}) {
		t.Errorf("reordered sends = %v, want [[2] [1]]", sent)
	}
}

func TestFaultConnReorderRecv(t *testing.T) {
	inner := &scriptConn{queue: [][]byte{{1}, {2}, {3}}}
	f := mustFault(t, inner, FaultPlan{Reorder: 1})
	var got []byte
	for {
		msg, err := f.Recv()
		if err != nil {
			break
		}
		got = append(got, msg...)
	}
	// Every message must still arrive exactly once, in some order.
	if len(got) != 3 {
		t.Fatalf("reordering lost messages: got %v", got)
	}
	seen := map[byte]bool{}
	for _, b := range got {
		seen[b] = true
	}
	if !seen[1] || !seen[2] || !seen[3] {
		t.Errorf("reordering lost or invented messages: %v", got)
	}
	if bytes.Equal(got, []byte{1, 2, 3}) {
		t.Errorf("all-reorder link delivered in order: %v", got)
	}
}

func TestFaultConnCorrupt(t *testing.T) {
	inner := &scriptConn{}
	f := mustFault(t, inner, FaultPlan{Corrupt: 1, Seed: 7})
	orig := []byte{0xAA, 0xBB, 0xCC, 0xDD}
	msg := append([]byte(nil), orig...)
	if err := f.Send(msg); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(msg, orig) {
		t.Error("corruption mutated the caller's buffer (must damage a copy)")
	}
	sent := inner.sentFrames()
	if len(sent) != 1 || len(sent[0]) != len(orig) {
		t.Fatalf("corrupt send delivered %v", sent)
	}
	diff := 0
	for i := range orig {
		for b := sent[0][i] ^ orig[i]; b != 0; b &= b - 1 {
			diff++
		}
	}
	if diff != 1 {
		t.Errorf("corruption flipped %d bits, want exactly 1", diff)
	}
}

func TestFaultConnTruncate(t *testing.T) {
	inner := &scriptConn{}
	f := mustFault(t, inner, FaultPlan{Truncate: 1, Seed: 3})
	orig := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	if err := f.Send(orig); err != nil {
		t.Fatal(err)
	}
	sent := inner.sentFrames()
	if len(sent) != 1 {
		t.Fatalf("truncate send delivered %d frames", len(sent))
	}
	if len(sent[0]) >= len(orig) || !bytes.Equal(sent[0], orig[:len(sent[0])]) {
		t.Errorf("truncated frame %v is not a strict prefix of %v", sent[0], orig)
	}
}

func TestFaultConnReset(t *testing.T) {
	inner := &scriptConn{}
	f := mustFault(t, inner, FaultPlan{Reset: 1})
	if err := f.Send([]byte{1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("reset send = %v, want ErrClosed", err)
	}
	inner.mu.Lock()
	closed := inner.closed
	inner.mu.Unlock()
	if !closed {
		t.Error("reset did not close the underlying connection")
	}
	// The connection stays dead.
	if err := f.Send([]byte{2}); !errors.Is(err, ErrClosed) {
		t.Errorf("send after reset = %v, want ErrClosed", err)
	}
	if got := f.Stats.Resets.Load(); got != 1 {
		t.Errorf("Resets = %d, want 1", got)
	}
}

func TestFaultConnDelayPassesThrough(t *testing.T) {
	inner := &scriptConn{queue: [][]byte{{5}}}
	f := mustFault(t, inner, FaultPlan{Delay: 1, DelayMax: time.Nanosecond})
	if err := f.Send([]byte{4}); err != nil {
		t.Fatal(err)
	}
	if sent := inner.sentFrames(); len(sent) != 1 || !bytes.Equal(sent[0], []byte{4}) {
		t.Errorf("delayed send delivered %v", sent)
	}
	msg, err := f.Recv()
	if err != nil || !bytes.Equal(msg, []byte{5}) {
		t.Errorf("delayed recv = %v, %v", msg, err)
	}
	if got := f.Stats.Delays.Load(); got != 2 {
		t.Errorf("Delays = %d, want 2", got)
	}
}

// --- ChecksumConn ------------------------------------------------------------

func TestChecksumRoundTrip(t *testing.T) {
	a, b := Pipe()
	ca, cb := WrapChecksum(a), WrapChecksum(b)
	defer ca.Close()
	want := []byte("flick checksum round trip")
	if err := ca.Send(want); err != nil {
		t.Fatal(err)
	}
	got, err := cb.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("round trip = %q, want %q", got, want)
	}
	if cb.Rejected.Load() != 0 {
		t.Errorf("clean link rejected %d frames", cb.Rejected.Load())
	}
}

// TestChecksumRejectsDamage feeds a damaged frame and a runt frame past
// the verifier: both must be dropped (and counted), and the next clean
// frame delivered.
func TestChecksumRejectsDamage(t *testing.T) {
	inner := &scriptConn{}
	cs := WrapChecksum(inner)
	if err := cs.Send([]byte("payload")); err != nil {
		t.Fatal(err)
	}
	frame := inner.sentFrames()[0]
	damaged := append([]byte(nil), frame...)
	damaged[2] ^= 0x10
	inner.mu.Lock()
	inner.queue = [][]byte{damaged, {1, 2}, frame} // corrupt, runt, clean
	inner.mu.Unlock()
	got, err := cs.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("payload")) {
		t.Errorf("Recv = %q, want the clean frame", got)
	}
	if got := cs.Rejected.Load(); got != 2 {
		t.Errorf("Rejected = %d, want 2", got)
	}
}

// TestChecksumConvertsCorruptionToLoss stacks the verifier outside a
// corrupting FaultConn: every frame either arrives intact or not at
// all — a damaged frame never surfaces as a plausible payload.
func TestChecksumConvertsCorruptionToLoss(t *testing.T) {
	a, b := Pipe()
	fc := mustFault(t, a, FaultPlan{Corrupt: 0.5, Seed: 11})
	sender := WrapChecksum(fc)
	receiver := WrapChecksum(b)
	defer sender.Close()

	const n = 12
	for i := 0; i < n; i++ {
		msg := bytes.Repeat([]byte{byte(i + 1)}, 16)
		if err := sender.Send(msg); err != nil {
			t.Fatal(err)
		}
	}
	corrupted := int(fc.Stats.Corrupts.Load())
	if corrupted == 0 || corrupted == n {
		t.Fatalf("corruption rate degenerate: %d/%d", corrupted, n)
	}
	for i := 0; i < n-corrupted; i++ {
		msg, err := receiver.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if len(msg) != 16 || !bytes.Equal(msg, bytes.Repeat([]byte{msg[0]}, 16)) {
			t.Fatalf("damaged frame surfaced as payload: %v", msg)
		}
	}
	if got := int(receiver.Rejected.Load()); got != corrupted {
		t.Errorf("Rejected = %d, want %d (every corrupt frame dropped)", got, corrupted)
	}
}
