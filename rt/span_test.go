package rt

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// --- annotation wire layout ---------------------------------------------------

// TestTraceAnnotationRoundTrip writes an annotated request in every
// wire format and checks that SplitTrace recovers the context exactly
// and that the remainder still parses as the original request.
func TestTraceAnnotationRoundTrip(t *testing.T) {
	protos := []Protocol{ONC{}, GIOP{}, GIOP{Little: true}, Mach{}, Fluke{}}
	tc := TraceContext{SpanID: 0xDEADBEEFCAFE, Sampled: true}
	for i := range tc.TraceID {
		tc.TraceID[i] = byte(i + 1)
	}
	for _, p := range protos {
		h := ReqHeader{XID: 42, Prog: 7, Vers: 1, Proc: 3, OpName: "sum", ObjectKey: []byte("flick")}
		var e Encoder
		writeTraceContext(&e, tc)
		p.WriteRequest(&e, &h)
		e.PutU32BEC(99) // payload

		got, rest, ok := SplitTrace(e.Bytes())
		if !ok {
			t.Fatalf("%s: annotated request not recognized", p.Name())
		}
		if got != tc {
			t.Fatalf("%s: context = %+v, want %+v", p.Name(), got, tc)
		}
		var d Decoder
		d.Reset(rest)
		rh, err := p.ReadRequest(&d)
		if err != nil {
			t.Fatalf("%s: stripped request did not parse: %v", p.Name(), err)
		}
		if rh.XID != 42 {
			t.Fatalf("%s: xid = %d, want 42", p.Name(), rh.XID)
		}
	}
}

// TestSplitTraceRejectsMalformed pins the structural validation: plain
// messages, truncated prefixes, bare prefixes with no message behind
// them, and reserved flag bits must all fall through to ordinary
// parsing.
func TestSplitTraceRejectsMalformed(t *testing.T) {
	var e Encoder
	ONC{}.WriteRequest(&e, &ReqHeader{XID: 1, Prog: 7, Vers: 1, Proc: 1})
	plain := e.Bytes()
	if _, rest, ok := SplitTrace(plain); ok || len(rest) != len(plain) {
		t.Fatal("plain request misdetected as annotated")
	}

	annotated := func(mutate func([]byte)) []byte {
		var e Encoder
		writeTraceContext(&e, TraceContext{SpanID: 7, Sampled: true})
		ONC{}.WriteRequest(&e, &ReqHeader{XID: 1, Prog: 7, Vers: 1, Proc: 1})
		buf := append([]byte(nil), e.Bytes()...)
		if mutate != nil {
			mutate(buf)
		}
		return buf
	}
	if _, _, ok := SplitTrace(annotated(nil)); !ok {
		t.Fatal("well-formed annotation rejected")
	}
	if _, _, ok := SplitTrace(annotated(nil)[:traceWireSize]); ok {
		t.Fatal("bare prefix with no message accepted")
	}
	if _, _, ok := SplitTrace(annotated(nil)[:12]); ok {
		t.Fatal("truncated prefix accepted")
	}
	if _, _, ok := SplitTrace(annotated(func(b []byte) { b[5] = 0x80 })); ok {
		t.Fatal("reserved flag bits accepted")
	}
	if _, _, ok := SplitTrace(annotated(func(b []byte) { b[0] = 0 })); ok {
		t.Fatal("wrong magic accepted")
	}
}

// --- tracer: sampling, ring, IDs ----------------------------------------------

func TestTracerSampling(t *testing.T) {
	never := &Tracer{SampleRate: 0, Seed: 1}
	if _, ok := never.sampleRoot(); ok {
		t.Fatal("rate 0 sampled")
	}
	always := &Tracer{SampleRate: 1, Seed: 1}
	for i := 0; i < 100; i++ {
		tc, ok := always.sampleRoot()
		if !ok {
			t.Fatal("rate 1 declined")
		}
		if !tc.Sampled || tc.TraceID.IsZero() || tc.SpanID == 0 {
			t.Fatalf("bad sampled context: %+v", tc)
		}
	}
	// Head-based probabilistic: a 10% rate over many roots lands near
	// 10% (splitmix64 output is uniform; bounds are generous).
	some := &Tracer{SampleRate: 0.10, Seed: 42}
	hits := 0
	for i := 0; i < 10000; i++ {
		if _, ok := some.sampleRoot(); ok {
			hits++
		}
	}
	if hits < 700 || hits > 1300 {
		t.Fatalf("10%% sampling hit %d/10000 roots", hits)
	}
	// Determinism: the same seed yields the same decisions.
	a, b := &Tracer{SampleRate: 0.5, Seed: 9}, &Tracer{SampleRate: 0.5, Seed: 9}
	for i := 0; i < 100; i++ {
		ta, oka := a.sampleRoot()
		tb, okb := b.sampleRoot()
		if oka != okb || ta != tb {
			t.Fatal("same seed diverged")
		}
	}
}

func TestTracerRingWrap(t *testing.T) {
	tr := &Tracer{RingSize: 8, Seed: 1}
	for i := 0; i < 20; i++ {
		tr.record(&Span{ID: uint64(i + 1), Kind: SpanClientCall})
	}
	if got := tr.Recorded(); got != 20 {
		t.Fatalf("Recorded = %d, want 20", got)
	}
	if got := tr.Dropped(); got != 12 {
		t.Fatalf("Dropped = %d, want 12", got)
	}
	spans := tr.Spans()
	if len(spans) != 8 {
		t.Fatalf("len(Spans) = %d, want 8", len(spans))
	}
	for i, sp := range spans {
		if want := uint64(13 + i); sp.ID != want {
			t.Fatalf("span %d has ID %d, want %d (oldest-first)", i, sp.ID, want)
		}
	}
}

func TestTracerIDsNonzeroAndDistinct(t *testing.T) {
	tr := &Tracer{Seed: 3}
	seen := make(map[uint64]bool)
	for i := 0; i < 10000; i++ {
		id := tr.nextID()
		if id == 0 {
			t.Fatal("zero span ID")
		}
		if seen[id] {
			t.Fatalf("duplicate span ID %x", id)
		}
		seen[id] = true
	}
}

// --- Chrome trace export ------------------------------------------------------

// chromeDoc mirrors the trace_event JSON object format for validation.
type chromeDoc struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Cat  string         `json:"cat"`
		Ph   string         `json:"ph"`
		Ts   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		Pid  int            `json:"pid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

func TestWriteChromeTrace(t *testing.T) {
	tr := &Tracer{Seed: 5, SampleRate: 1}
	tc, _ := tr.sampleRoot()
	start := time.Now()
	tr.record(&Span{
		Trace: tc.TraceID, ID: tc.SpanID, Kind: SpanClientCall, Op: "sum",
		Start: start, Dur: 5 * time.Millisecond, Sampled: true,
		Events: []SpanEvent{{Offset: time.Millisecond, Cause: "retry", Detail: "attempt 2"}},
	})
	tr.record(&Span{
		Trace: tc.TraceID, ID: tr.nextID(), Parent: tc.SpanID, Kind: SpanServerDispatch,
		Op: "sum", Start: start.Add(time.Millisecond), Dur: time.Millisecond, Sampled: true,
	})

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	var iEvents int
	pidByCat := make(map[string]int)
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			pidByCat[ev.Cat] = ev.Pid
			if ev.Ts <= 0 || ev.Name == "" || ev.Args["trace"] == "" {
				t.Fatalf("malformed X event: %+v", ev)
			}
		case "i":
			iEvents++
			if ev.Name != "retry" {
				t.Fatalf("instant event name = %q, want retry", ev.Name)
			}
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	if len(pidByCat) != 2 || iEvents != 1 {
		t.Fatalf("events = %v X + %d i, want call+dispatch X + 1 i", pidByCat, iEvents)
	}
	// Client and server spans land on different process lanes.
	if pidByCat["call"] == pidByCat["dispatch"] {
		t.Fatalf("client and server spans share pid %d", pidByCat["call"])
	}
}

// --- always-sample-on-error ---------------------------------------------------

func TestErrorSpansRecordedWhenUnsampled(t *testing.T) {
	clientEnd, serverEnd := Pipe()
	serverEnd.Close()
	clientEnd.Close()
	c := newEchoClient(clientEnd)
	tr := &Tracer{SampleRate: 0, Seed: 1}
	c.Tracer = tr

	if _, err := c.Call(1, "double", false, func(e *Encoder) { e.PutU32BEC(1) }); err == nil {
		t.Fatal("call on closed conn succeeded")
	}
	spans := tr.Spans()
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1 error span", len(spans))
	}
	sp := spans[0]
	if sp.Kind != SpanClientCall || sp.Err == "" || sp.Sampled {
		t.Fatalf("error span = %+v, want unsampled client-call with Err", sp)
	}
	if sp.Trace.IsZero() {
		t.Fatal("error span has zero trace ID")
	}
}

// TestTracingDisabledAllocs pins the tracing fast paths: a loopback
// call with no Tracer attached, and one with a Tracer whose sampler
// declines, must both stay at the seed's 4 allocs/op — attaching a
// tracer at 0% sampling is free.
func TestTracingDisabledAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation changes allocation counts; the non-race run enforces the budget")
	}
	conn, _, _ := startObservedServer(t)
	c := NewClient(conn, ONC{})
	c.Prog, c.Vers = 7, 1
	marshal := func(e *Encoder) { e.PutU32BEC(4) }
	call := func() {
		if _, err := c.Call(1, "double", false, marshal); err != nil {
			t.Fatal(err)
		}
	}
	if avg := testing.AllocsPerRun(300, call); avg > 4 {
		t.Errorf("Call allocates %.1f/op with no tracer (budget 4)", avg)
	}
	c.Tracer = &Tracer{SampleRate: 0, Seed: 1}
	if avg := testing.AllocsPerRun(300, call); avg > 4 {
		t.Errorf("Call allocates %.1f/op with an unsampled tracer (budget 4)", avg)
	}
}

// --- debug surface ------------------------------------------------------------

func TestDebugDumpAndHandler(t *testing.T) {
	conn, sm, _ := startObservedServer(t)
	c := newEchoClient(conn)
	c.Metrics = sm // share one registry client+server
	tr := &Tracer{SampleRate: 1, Seed: 7}
	c.Tracer = tr
	for i := 0; i < 5; i++ {
		doubleCall(t, c, uint32(i))
	}

	dbg := NewDebug(DebugConfig{Metrics: sm, Tracer: tr})
	dump := dbg.Dump()
	for _, want := range []string{"== metrics ==", "op double", "== spans ", "call double", "trace="} {
		if !strings.Contains(dump, want) {
			t.Fatalf("dump missing %q:\n%s", want, dump)
		}
	}

	get := func(path string) (int, string, string) {
		rw := httptest.NewRecorder()
		dbg.ServeHTTP(rw, httptest.NewRequest("GET", path, nil))
		return rw.Code, rw.Header().Get("Content-Type"), rw.Body.String()
	}
	if code, ctype, body := get("/debug/"); code != 200 || !strings.Contains(body, "== metrics ==") || !strings.HasPrefix(ctype, "text/plain") {
		t.Fatalf("/debug/: code=%d ctype=%q", code, ctype)
	}
	if code, _, body := get("/debug/metrics"); code != 200 || !strings.Contains(body, "flick_conns") {
		t.Fatalf("/debug/metrics: code=%d body=%q", code, body[:min(len(body), 80)])
	}
	if code, ctype, body := get("/debug/metrics.json"); code != 200 || !strings.HasPrefix(ctype, "application/json") || !json.Valid([]byte(body)) {
		t.Fatalf("/debug/metrics.json: code=%d ctype=%q", code, ctype)
	}
	if code, ctype, body := get("/debug/trace"); code != 200 || !strings.HasPrefix(ctype, "application/json") || !json.Valid([]byte(body)) {
		t.Fatalf("/debug/trace: code=%d ctype=%q", code, ctype)
	}

	// /delta: the second scrape reports only the interval. One call in
	// the interval counts twice in the shared registry (client issue +
	// server dispatch).
	get("/debug/delta")
	doubleCall(t, c, 9)
	_, _, body := get("/debug/delta")
	if !strings.Contains(body, `flick_op_calls{op="double"} 2`) {
		t.Fatalf("/delta did not report the per-interval count:\n%s", body)
	}
}

func TestSnapshotSubDeltas(t *testing.T) {
	m := NewMetrics()
	op := m.Op("x")
	op.Calls.Add(3)
	op.Latency.Observe(time.Millisecond)
	m.Retries.Add(2)
	base := m.Snapshot()

	op.Calls.Add(5)
	op.Latency.Observe(time.Second)
	op.Latency.Observe(time.Second)
	m.Retries.Add(1)
	m.InFlight.Add(4)

	d := m.Snapshot().Sub(base)
	if d.Retries != 1 {
		t.Fatalf("Retries delta = %d, want 1", d.Retries)
	}
	if d.InFlight != 4 {
		t.Fatalf("InFlight delta = %d, want 4", d.InFlight)
	}
	if len(d.Ops) != 1 || d.Ops[0].Calls != 5 {
		t.Fatalf("op delta = %+v, want Calls 5", d.Ops)
	}
	if d.Ops[0].Latency.Count != 2 {
		t.Fatalf("latency delta count = %d, want 2", d.Ops[0].Latency.Count)
	}
	// The interval's p50 reflects only the two 1s observations, not the
	// 1ms one from before the base snapshot.
	if p50 := time.Duration(d.Ops[0].P50Ns); p50 < 500*time.Millisecond {
		t.Fatalf("interval p50 = %v, polluted by pre-interval samples", p50)
	}
	// Ops that appear inside the interval carry their full counts.
	m.Op("fresh").Calls.Add(7)
	d2 := m.Snapshot().Sub(base)
	for _, op := range d2.Ops {
		if op.Op == "fresh" && op.Calls != 7 {
			t.Fatalf("fresh op delta = %d, want 7", op.Calls)
		}
	}
}
