package rt

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math/rand"
	"net"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// Tests for the hardened server: oversized-frame rejection (before any
// allocation), idle reaping, panic recovery, duplicate-XID suppression,
// and the client teardown races. Run with -race.

// --- oversized frames (regression: allocation-before-validation) -----------

// TestTCPRecvRejectsHugeClaimedFrame is the regression test for the
// oversized-allocation bug: a crafted record mark claiming a huge body
// must be rejected *before* the body buffer is allocated or read. The
// writer sends only the 4-byte mark — if the receiver validated after
// allocating-and-reading it would block forever waiting for a body that
// never comes; returning an error proves pre-validation.
func TestTCPRecvRejectsHugeClaimedFrame(t *testing.T) {
	cli, srv := net.Pipe()
	defer cli.Close()
	defer srv.Close()
	tc := &tcpConn{c: srv}
	tc.SetMaxMessage(1 << 16)

	go func() {
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], uint32(1<<30)|0x80000000)
		cli.Write(hdr[:])
		// No body follows: a post-allocation check would hang here.
	}()

	errc := make(chan error, 1)
	go func() {
		_, err := tc.Recv()
		errc <- err
	}()
	select {
	case err := <-errc:
		if err == nil || !strings.Contains(err.Error(), "oversized") {
			t.Fatalf("Recv = %v, want oversized-frame error", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv blocked on a hostile length claim (validated after allocation?)")
	}
}

// TestTCPRecvRejectsUnboundedFragmentTotal covers the second shape of
// the same bug: each fragment individually under the bound, but the
// cumulative total unbounded. The receiver must reject when the running
// total crosses the limit.
func TestTCPRecvRejectsUnboundedFragmentTotal(t *testing.T) {
	cli, srv := net.Pipe()
	defer cli.Close()
	defer srv.Close()
	tc := &tcpConn{c: srv}
	tc.SetMaxMessage(4096)

	stop := make(chan struct{})
	go func() {
		frag := make([]byte, 4+1024) // mark + 1KiB body, final bit clear
		binary.BigEndian.PutUint32(frag[:4], 1024)
		for {
			if _, err := cli.Write(frag); err != nil {
				return
			}
			select {
			case <-stop:
				return
			default:
			}
		}
	}()

	errc := make(chan error, 1)
	go func() {
		_, err := tc.Recv()
		errc <- err
	}()
	select {
	case err := <-errc:
		close(stop)
		if err == nil || !strings.Contains(err.Error(), "oversized") {
			t.Fatalf("Recv = %v, want oversized-frame error", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv accumulated non-final fragments without bound")
	}
}

// TestServeConnDropsOversizedAfterReceipt covers transports without
// length pre-validation (datagrams, in-process pipes): the server drops
// the oversized frame after receipt, counts it, and keeps serving.
func TestServeConnDropsOversizedAfterReceipt(t *testing.T) {
	clientEnd, serverEnd := Pipe()
	s := NewServer(ONC{})
	s.MaxMessage = 256
	s.Metrics = NewMetrics()
	s.Register(7, 1, echoDispatch)
	done := make(chan struct{})
	go func() { defer close(done); s.ServeConn(serverEnd) }()
	t.Cleanup(func() { clientEnd.Close(); <-done })

	if err := clientEnd.Send(make([]byte, 1024)); err != nil { // hostile frame
		t.Fatal(err)
	}
	c := newEchoClient(clientEnd)
	doubleCall(t, c, 6) // the connection survives
	if got := s.Metrics.Oversized.Load(); got != 1 {
		t.Errorf("Oversized = %d, want 1", got)
	}
}

// --- idle reaping ------------------------------------------------------------

// TestServerIdleReap: a connection silent past IdleTimeout is reaped
// cleanly — ServeConn returns nil, and the reap is counted.
func TestServerIdleReap(t *testing.T) {
	l, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	s := NewServer(ONC{})
	s.IdleTimeout = 40 * time.Millisecond
	s.Metrics = NewMetrics()
	s.Register(7, 1, echoDispatch)

	errc := make(chan error, 1)
	go func() {
		conn, err := l.Accept()
		if err != nil {
			errc <- err
			return
		}
		errc <- s.ServeConn(conn)
	}()
	conn, err := DialTCP(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })

	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("idle reap surfaced an error: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("silent connection was never reaped")
	}
	if got := s.Metrics.IdleReaped.Load(); got != 1 {
		t.Errorf("IdleReaped = %d, want 1", got)
	}
}

// --- panic recovery ----------------------------------------------------------

// TestServerPanicRecovery: a panicking handler yields an RPC system
// error for that caller — and nothing worse. The worker, the
// connection, and later requests all survive.
func TestServerPanicRecovery(t *testing.T) {
	clientEnd, serverEnd := Pipe()
	s := NewServer(ONC{})
	s.Metrics = NewMetrics()
	s.Register(7, 1, func(h *ReqHeader, d *Decoder, e *Encoder) error {
		if h.Proc == 9 {
			panic("poisoned request")
		}
		return echoDispatch(h, d, e)
	})
	done := make(chan struct{})
	go func() { defer close(done); s.ServeConn(serverEnd) }()
	t.Cleanup(func() { clientEnd.Close(); <-done })

	c := newEchoClient(clientEnd)
	if _, err := c.Call(9, "boom", false, func(e *Encoder) {}); !errors.Is(err, ErrSystem) {
		t.Fatalf("panicking handler returned %v to the caller, want ErrSystem", err)
	}
	if got := s.Metrics.PanicsRecovered.Load(); got != 1 {
		t.Errorf("PanicsRecovered = %d, want 1", got)
	}
	// The same worker keeps serving.
	doubleCall(t, c, 11)
	if got := s.Metrics.DispatchErrors.Load(); got != 1 {
		t.Errorf("DispatchErrors = %d, want 1 (the recovered panic)", got)
	}
}

// --- duplicate suppression ---------------------------------------------------

// oncRequest builds a raw ONC request frame (bypassing the Client so
// the test controls the XID and can retransmit).
func oncRequest(xid, proc uint32, payload uint32) []byte {
	var e Encoder
	ONC{}.WriteRequest(&e, &ReqHeader{XID: xid, Prog: 7, Vers: 1, Proc: proc})
	e.PutU32BEC(payload)
	return append([]byte(nil), e.Bytes()...)
}

// recvWithin reads one frame or fails after the deadline.
func recvWithin(t *testing.T, conn Conn, d time.Duration) []byte {
	t.Helper()
	type res struct {
		msg []byte
		err error
	}
	ch := make(chan res, 1)
	go func() {
		msg, err := conn.Recv()
		ch <- res{msg, err}
	}()
	select {
	case r := <-ch:
		if r.err != nil {
			t.Fatalf("recv: %v", r.err)
		}
		return r.msg
	case <-time.After(d):
		t.Fatal("no reply within deadline")
		return nil
	}
}

// TestServerDupSuppressionCachedReply: a retransmitted XID whose
// original already answered is re-answered from the reply cache —
// byte-identical, without re-dispatching.
func TestServerDupSuppressionCachedReply(t *testing.T) {
	clientEnd, serverEnd := Pipe()
	s := NewServer(ONC{})
	s.DupWindow = 16
	s.Metrics = NewMetrics()
	calls := 0
	s.Register(7, 1, func(h *ReqHeader, d *Decoder, e *Encoder) error {
		calls++
		return echoDispatch(h, d, e)
	})
	done := make(chan struct{})
	go func() { defer close(done); s.ServeConn(serverEnd) }()
	t.Cleanup(func() { clientEnd.Close(); <-done })

	req := oncRequest(42, 1, 21)
	if err := clientEnd.Send(req); err != nil {
		t.Fatal(err)
	}
	reply1 := recvWithin(t, clientEnd, 2*time.Second)
	time.Sleep(10 * time.Millisecond) // let the worker cache the sent reply

	if err := clientEnd.Send(req); err != nil { // retransmit, same XID
		t.Fatal(err)
	}
	reply2 := recvWithin(t, clientEnd, 2*time.Second)
	if !bytes.Equal(reply1, reply2) {
		t.Error("cached reply differs from the original")
	}
	if got := s.Metrics.DroppedDupes.Load(); got != 1 {
		t.Errorf("DroppedDupes = %d, want 1", got)
	}
	if calls != 1 {
		t.Errorf("duplicate was re-dispatched: %d handler calls", calls)
	}
	// A fresh XID still dispatches normally.
	if err := clientEnd.Send(oncRequest(43, 1, 5)); err != nil {
		t.Fatal(err)
	}
	recvWithin(t, clientEnd, 2*time.Second)
	if calls != 2 {
		t.Errorf("fresh XID after a dup saw %d handler calls, want 2", calls)
	}
}

// TestServerDupSuppressionInProgress: a duplicate arriving while the
// original is still dispatching is dropped outright (its reply is
// already on the way); exactly one reply reaches the wire.
func TestServerDupSuppressionInProgress(t *testing.T) {
	clientEnd, serverEnd := Pipe()
	gate := make(chan struct{})
	entered := make(chan struct{}, 4)
	s := NewServer(ONC{})
	s.DupWindow = 16
	s.Workers = 2
	s.Metrics = NewMetrics()
	s.Register(7, 1, func(h *ReqHeader, d *Decoder, e *Encoder) error {
		entered <- struct{}{}
		<-gate
		e.PutU32BEC(77)
		return nil
	})
	done := make(chan struct{})
	go func() { defer close(done); s.ServeConn(serverEnd) }()
	t.Cleanup(func() { clientEnd.Close(); <-done })

	req := oncRequest(7, 1, 0)
	if err := clientEnd.Send(req); err != nil {
		t.Fatal(err)
	}
	<-entered // the original is mid-dispatch
	if err := clientEnd.Send(req); err != nil {
		t.Fatal(err)
	}
	// Wait until the decode loop has judged the duplicate.
	deadline := time.Now().Add(2 * time.Second)
	for s.Metrics.DroppedDupes.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := s.Metrics.DroppedDupes.Load(); got != 1 {
		t.Fatalf("DroppedDupes = %d, want 1", got)
	}
	close(gate)
	recvWithin(t, clientEnd, 2*time.Second) // exactly one reply...
	extra := make(chan struct{}, 1)
	go func() {
		if _, err := clientEnd.Recv(); err == nil {
			extra <- struct{}{}
		}
	}()
	select {
	case <-extra:
		t.Error("in-progress duplicate produced a second reply")
	case <-time.After(50 * time.Millisecond):
	}
}

// --- teardown races (satellite: Client.fail vs concurrent Close) ------------

// TestFailCloseRaceStress hammers the completion invariant: concurrent
// calls, a client Close, and a server-side connection kill all race.
// Every call must return exactly once (no hang, no double-complete —
// the race detector guards the latter), and the pools must balance once
// the dust settles.
func TestFailCloseRaceStress(t *testing.T) {
	rounds := 40
	if testing.Short() {
		rounds = 8
	}
	before := ReadPoolStats()
	rng := rand.New(rand.NewSource(1))
	for round := 0; round < rounds; round++ {
		clientEnd, serverEnd := Pipe()
		s := NewServer(ONC{})
		s.Workers = 2
		s.Register(7, 1, echoDispatch)
		served := make(chan struct{})
		go func() { defer close(served); s.ServeConn(serverEnd) }()

		c := newEchoClient(clientEnd)
		const callers, perCaller = 6, 4
		var wg sync.WaitGroup
		wg.Add(callers)
		for g := 0; g < callers; g++ {
			go func(g int) {
				defer wg.Done()
				for i := 0; i < perCaller; i++ {
					d, err := c.Call(1, "double", false, func(e *Encoder) { e.PutU32BEC(uint32(g + 1)) })
					if err != nil {
						continue // ErrClosed et al. are expected mid-teardown
					}
					if d.Ensure(4) {
						if got := d.U32BE(); got != uint32(2*(g+1)) {
							t.Errorf("double(%d) = %d under teardown race", g+1, got)
						}
					}
					d.Release()
				}
			}(g)
		}
		// Two competing killers, staggered pseudo-randomly.
		killDelay := time.Duration(rng.Intn(500)) * time.Microsecond
		var killers sync.WaitGroup
		killers.Add(2)
		go func() { defer killers.Done(); time.Sleep(killDelay); c.Close() }()
		go func() { defer killers.Done(); time.Sleep(killDelay); serverEnd.Close() }()
		wg.Wait() // every call returned exactly once
		killers.Wait()
		c.Close()
		<-served
	}
	// Quiescence: readers and workers drain, then the pools balance.
	waitPoolBalance(t, before)
}

// waitPoolBalance polls until every pool checkout since the snapshot
// has been returned, failing with the deltas if they never balance.
func waitPoolBalance(t *testing.T, before PoolStats) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		delta := ReadPoolStats().Sub(before)
		if delta.Balanced() {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("pool leak after quiescence: %+v", delta)
		}
		runtime.Gosched()
		time.Sleep(5 * time.Millisecond)
	}
}
