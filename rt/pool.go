// Buffer-ownership pools for the concurrent call pipeline.
//
// The paper's §3.1 buffer-reuse optimization originally relied on the
// runtime serializing calls: a Client owned exactly one Encoder and one
// Decoder, and generated stubs borrowed them between invocations. A
// multiplexed client cannot share one buffer across concurrent calls,
// so the contract becomes ownership-passing instead of borrowing:
//
//   - Call takes an Encoder from the pool, marshals into it, and
//     returns it to the pool the moment the transport accepts the
//     message (Conn.Send does not retain the buffer).
//   - Each reply is bound to a pooled Decoder that Call hands to its
//     caller. The caller — in practice the generated client stub —
//     releases it back to the pool with Decoder.Release after
//     unmarshaling. A caller that never releases merely forfeits the
//     reuse (the decoder is garbage collected); it cannot corrupt
//     another call's data.
//
// This keeps the amortized-zero-allocation property of the serialized
// runtime while allowing any number of calls in flight.
package rt

import (
	"sync"
	"sync/atomic"
)

// poolCounters tracks every pool checkout and return. The chaos harness
// (and any leak-sensitive test) asserts Get/Put balance after
// quiescence: an imbalance means some error path dropped a pooled
// buffer on the floor — exactly the contract the flick-lint
// releasecheck analyzer proves statically, here re-proven dynamically
// under injected faults.
var poolCounters struct {
	encGets, encPuts   atomic.Uint64
	decGets, decPuts   atomic.Uint64
	callGets, callPuts atomic.Uint64
}

// PoolStats is a point-in-time copy of the pool checkout counters.
// Gets minus Puts is the number of buffers currently checked out; at
// quiescence (no calls in flight, all stubs done) any difference is a
// leak.
type PoolStats struct {
	EncoderGets, EncoderPuts uint64
	DecoderGets, DecoderPuts uint64
	CallGets, CallPuts       uint64
}

// Balanced reports whether every checkout has been returned.
func (s PoolStats) Balanced() bool {
	return s.EncoderGets == s.EncoderPuts &&
		s.DecoderGets == s.DecoderPuts &&
		s.CallGets == s.CallPuts
}

// Sub returns the counter deltas since an earlier snapshot.
func (s PoolStats) Sub(earlier PoolStats) PoolStats {
	return PoolStats{
		EncoderGets: s.EncoderGets - earlier.EncoderGets,
		EncoderPuts: s.EncoderPuts - earlier.EncoderPuts,
		DecoderGets: s.DecoderGets - earlier.DecoderGets,
		DecoderPuts: s.DecoderPuts - earlier.DecoderPuts,
		CallGets:    s.CallGets - earlier.CallGets,
		CallPuts:    s.CallPuts - earlier.CallPuts,
	}
}

// ReadPoolStats snapshots the process-wide pool checkout counters.
func ReadPoolStats() PoolStats {
	return PoolStats{
		EncoderGets: poolCounters.encGets.Load(),
		EncoderPuts: poolCounters.encPuts.Load(),
		DecoderGets: poolCounters.decGets.Load(),
		DecoderPuts: poolCounters.decPuts.Load(),
		CallGets:    poolCounters.callGets.Load(),
		CallPuts:    poolCounters.callPuts.Load(),
	}
}

var encoderPool = sync.Pool{New: func() any { return new(Encoder) }}

// getEncoder takes a reset encoder from the pool.
func getEncoder() *Encoder {
	poolCounters.encGets.Add(1)
	e := encoderPool.Get().(*Encoder)
	e.Reset()
	return e
}

// putEncoder returns an encoder to the pool. Counting is switched off
// so pooled encoders always re-enter service on the disabled fast path,
// and alias segments are cleared so the pool never pins caller memory.
func putEncoder(e *Encoder) {
	poolCounters.encPuts.Add(1)
	if e.stats {
		e.EnableStats(false)
	}
	if e.nAlias != 0 || len(e.segs) != 0 {
		e.clearSegs()
	}
	encoderPool.Put(e)
}

var decoderPool = sync.Pool{New: func() any { return new(Decoder) }}

// getDecoder takes a pooled decoder and marks it runtime-owned so
// Release returns it here.
func getDecoder() *Decoder {
	poolCounters.decGets.Add(1)
	d := decoderPool.Get().(*Decoder)
	d.pooled = true
	return d
}

// putDecoder clears a decoder and returns it to the pool. The pooled
// flag is dropped first so a double Release cannot insert the same
// decoder twice.
func putDecoder(d *Decoder) {
	if !d.pooled {
		return
	}
	poolCounters.decPuts.Add(1)
	d.pooled = false
	d.sink = nil
	if d.stats {
		d.EnableStats(false)
	}
	// Settle the arena borrow: recycle the receive buffer unless alias
	// views were handed out, in which case it is pinned — the views own
	// it now and the garbage collector reclaims it when they die.
	if d.arena != nil {
		if d.aliased {
			zcCounters.arenaPinned.Add(1)
		} else {
			putArenaBuf(d.arena)
		}
	}
	d.Reset(nil)
	decoderPool.Put(d)
}

// Release returns a runtime-owned decoder to the pool. Generated client
// stubs call it after unmarshaling a reply; server workers call it after
// dispatch. Releasing drains the decoder's space-check counters into the
// metrics registry the call was observed by (so unmarshal-side Ensure
// counts are not lost), then recycles the buffer bookkeeping.
//
// Release on a decoder the runtime does not own (e.g. one built with
// NewDecoder) is a no-op, as is a second Release of the same decoder.
// After Release the decoder must not be used again.
func (d *Decoder) Release() {
	if !d.pooled {
		return
	}
	if d.sink != nil {
		d.sink.addDec(d.TakeStats())
	}
	putDecoder(d)
}

// call is one in-flight invocation's rendezvous between the issuing
// goroutine and the client's reply reader. The done channel (capacity
// 1) is allocated once and reused across the pool's lifetime.
type call struct {
	done chan struct{}
	dec  *Decoder
	err  error
}

var callPool = sync.Pool{New: func() any { return &call{done: make(chan struct{}, 1)} }}

func getCall() *call {
	poolCounters.callGets.Add(1)
	return callPool.Get().(*call)
}

func putCall(ca *call) {
	poolCounters.callPuts.Add(1)
	ca.dec = nil
	ca.err = nil
	callPool.Put(ca)
}
