// Package rt is Flick-Go's stub runtime: marshal buffers, encoders and
// decoders, bulk-copy helpers, message framing, transports, and the
// client/server plumbing that generated stubs link against.
//
// The encoder/decoder split mirrors the paper's optimization story:
// generated optimized stubs call Ensure once per message segment and then
// use unchecked writes (often through chunk windows obtained with Next);
// naive rpcgen-style stubs call the *C (checked) variants that test buffer
// space on every datum.
package rt

import "encoding/binary"

// Encoder builds one message payload. The zero value is ready to use;
// Reset reuses the allocation across calls (Flick stubs reuse marshal
// buffers between invocations).
type Encoder struct {
	buf []byte
	// lim is Grow's fast-path capacity limit: cap(buf) normally, -1
	// while counting is enabled. Grow tests `lim - len(buf) < n`, so
	// with lim == cap(buf) it is exactly the capacity check, and with
	// lim == -1 it always fails and routes through growSlow, where
	// the counters live. The gate costs nothing when disabled: the
	// fast path is the same single compare either way, and keeping
	// Grow this small is what lets the checked puts inline into the
	// naive per-datum wrappers (one extra test there is a blown
	// inlining budget and a function call per datum, ~20% on the
	// byte-loop workloads). lim is conservative: if an append grows
	// the buffer behind Grow's back, lim merely under-reports
	// capacity and the next Grow takes the slow path once, which
	// refreshes it.
	lim int
	// Observability counters (see EncStats). Plain integers: an
	// Encoder is single-writer by contract.
	stats    bool
	nGrow    uint64
	nRealloc uint64
	// Zero-copy segment collection (see vector.go). segs interleaves
	// sealed windows of buf with aliased user slices in wire order;
	// sealed is the buf prefix already captured into segs; aliasBytes
	// counts the aliased (non-buf) bytes so Len and Align keep
	// reporting the true wire cursor; nAlias counts alias segments.
	// All zero when no PutBytesZC ran — the copy path never looks at
	// them.
	segs       [][]byte
	sealed     int
	aliasBytes int
	nAlias     int
}

// relim recomputes the fast-path limit after anything that changes
// cap(e.buf) or the counting mode.
func (e *Encoder) relim() {
	if e.stats {
		e.lim = -1 // lim-len < n for every n >= 0: always take growSlow
	} else {
		e.lim = cap(e.buf)
	}
}

// EnableStats turns space-check counting on or off (off by default).
// The runtime enables it when a Metrics registry is attached; with
// counting off, Grow does not touch the counters.
func (e *Encoder) EnableStats(on bool) {
	e.stats = on
	e.relim()
}

// EncStats reports an encoder's space-check counters: GrowChecks is
// the number of Grow calls (the paper's marshal-side ensure-space
// checks — optimized stubs emit one per message segment, naive stubs
// one per datum), GrowAllocs the subset that had to reallocate the
// buffer.
type EncStats struct {
	GrowChecks uint64 `json:"grow_checks"`
	GrowAllocs uint64 `json:"grow_allocs"`
}

// Stats returns the counters accumulated since construction or the
// last TakeStats. Reset does not clear them (they span an encoder's
// whole reuse lifetime).
func (e *Encoder) Stats() EncStats {
	return EncStats{GrowChecks: e.nGrow, GrowAllocs: e.nRealloc}
}

// TakeStats returns the accumulated counters and zeroes them (the
// runtime drains per-call deltas into a Metrics registry this way).
func (e *Encoder) TakeStats() EncStats {
	s := e.Stats()
	e.nGrow, e.nRealloc = 0, 0
	return s
}

// Reset empties the encoder, keeping capacity. Alias segments are
// dropped (and their user references cleared, so a pooled encoder
// never pins caller memory across calls).
func (e *Encoder) Reset() {
	e.buf = e.buf[:0]
	if e.nAlias != 0 || len(e.segs) != 0 {
		e.clearSegs()
	}
	e.sealed = 0
}

// Bytes returns the encoded payload. While alias segments are
// outstanding the contiguous buffer alone is not the message, so Bytes
// assembles a flattened copy — correct everywhere (trace hooks, batch
// envelopes, transports without vectored send) at the cost of the copy
// the fast path exists to avoid. Senders prefer Vectored.
func (e *Encoder) Bytes() []byte {
	if e.nAlias == 0 {
		return e.buf
	}
	out := make([]byte, 0, e.Len())
	for _, s := range e.segs {
		out = append(out, s...)
	}
	out = append(out, e.buf[e.sealed:]...)
	return out
}

// Len returns the current payload length, counting alias segments.
func (e *Encoder) Len() int { return len(e.buf) + e.aliasBytes }

// Grow ensures capacity for n more bytes (the single check emitted per
// fixed-size segment by optimized stubs).
func (e *Encoder) Grow(n int) {
	if e.lim-len(e.buf) < n {
		e.growSlow(n)
	}
}

// growSlow is Grow's out-of-line path: a genuine reallocation, a
// stale-lim refresh, or — while counting is enabled — every Grow
// call, so the counters never touch the inlined fast path. Kept out
// of line (and out of Grow's inlining budget) so the checked puts
// still inline into the naive per-datum wrappers.
//
//go:noinline
func (e *Encoder) growSlow(n int) {
	if e.stats {
		e.nGrow++
	}
	if cap(e.buf)-len(e.buf) < n {
		if e.stats {
			e.nRealloc++
		}
		nb := make([]byte, len(e.buf), grown(cap(e.buf), len(e.buf)+n))
		copy(nb, e.buf)
		e.buf = nb
	}
	e.relim()
}

// GrowDyn ensures capacity for base + per*count more bytes.
func (e *Encoder) GrowDyn(base, per, count int) { e.Grow(base + per*count) }

func grown(cur, need int) int {
	if cur < 64 {
		cur = 64
	}
	for cur < need {
		cur *= 2
	}
	return cur
}

// Next appends an n-byte window and returns it: the chunk pointer.
// The caller must have ensured capacity.
func (e *Encoder) Next(n int) []byte {
	l := len(e.buf)
	e.buf = e.buf[:l+n]
	return e.buf[l : l+n]
}

// Align pads the payload with zeros to an n-byte boundary. The wire
// cursor counts alias segments (XDR opaque padding after an aliased
// region must land after the aliased bytes, not after the buffered
// prefix).
func (e *Encoder) Align(n int) {
	pad := (n - (len(e.buf)+e.aliasBytes)%n) % n
	if pad == 0 {
		return
	}
	e.Grow(pad)
	w := e.Next(pad)
	for i := range w {
		w[i] = 0
	}
}

// Unchecked writes (capacity ensured by a preceding Grow).

func (e *Encoder) PutU8(v byte) { e.buf = append(e.buf, v) }

func (e *Encoder) PutU16BE(v uint16) { binary.BigEndian.PutUint16(e.Next(2), v) }
func (e *Encoder) PutU16LE(v uint16) { binary.LittleEndian.PutUint16(e.Next(2), v) }
func (e *Encoder) PutU32BE(v uint32) { binary.BigEndian.PutUint32(e.Next(4), v) }
func (e *Encoder) PutU32LE(v uint32) { binary.LittleEndian.PutUint32(e.Next(4), v) }
func (e *Encoder) PutU64BE(v uint64) { binary.BigEndian.PutUint64(e.Next(8), v) }
func (e *Encoder) PutU64LE(v uint64) { binary.LittleEndian.PutUint64(e.Next(8), v) }

// PutBytes appends raw bytes (capacity ensured).
func (e *Encoder) PutBytes(s []byte) { e.buf = append(e.buf, s...) }

// PutString appends raw string bytes (capacity ensured).
func (e *Encoder) PutString(s string) { e.buf = append(e.buf, s...) }

// Checked writes: the rpcgen-style slow path, one capacity test per datum.

// PutU8C writes one checked byte. The guard is Grow(1) with the
// comparison algebraically simplified (lim-len < 1 ⇔ lim ≤ len) so the
// method stays within the inlining budget: interpretive marshalers and
// naive stubs call it once per byte, and whether it inlines is worth
// ~10% on the byte-loop workloads.
func (e *Encoder) PutU8C(v byte) {
	if e.lim <= len(e.buf) {
		e.growSlow(1)
	}
	e.PutU8(v)
}

func (e *Encoder) PutU16BEC(v uint16) { e.Grow(2); e.PutU16BE(v) }
func (e *Encoder) PutU16LEC(v uint16) { e.Grow(2); e.PutU16LE(v) }
func (e *Encoder) PutU32BEC(v uint32) { e.Grow(4); e.PutU32BE(v) }
func (e *Encoder) PutU32LEC(v uint32) { e.Grow(4); e.PutU32LE(v) }
func (e *Encoder) PutU64BEC(v uint64) { e.Grow(8); e.PutU64BE(v) }
func (e *Encoder) PutU64LEC(v uint64) { e.Grow(8); e.PutU64LE(v) }

// B2U32 converts a bool to its 4-byte wire representation (XDR booleans).
func B2U32(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// B2U8 converts a bool to its 1-byte wire representation (CDR booleans).
func B2U8(b bool) byte {
	if b {
		return 1
	}
	return 0
}
