//go:build !race

package rt

const raceEnabled = false
