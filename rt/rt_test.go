package rt

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestEncoderGrowAndWrite(t *testing.T) {
	var e Encoder
	e.Grow(4)
	e.PutU32BE(0xDEADBEEF)
	e.Grow(2)
	e.PutU16LE(0x0102)
	e.Grow(1)
	e.PutU8(7)
	want := []byte{0xDE, 0xAD, 0xBE, 0xEF, 0x02, 0x01, 7}
	if !bytes.Equal(e.Bytes(), want) {
		t.Errorf("bytes = %x, want %x", e.Bytes(), want)
	}
	if e.Len() != 7 {
		t.Errorf("len = %d", e.Len())
	}
	e.Reset()
	if e.Len() != 0 {
		t.Error("reset did not empty")
	}
}

func TestEncoderAlign(t *testing.T) {
	var e Encoder
	e.Grow(16)
	e.PutU8(1)
	e.Align(4)
	if e.Len() != 4 {
		t.Errorf("len after align = %d", e.Len())
	}
	e.Align(4) // already aligned: no-op
	if e.Len() != 4 {
		t.Errorf("len after second align = %d", e.Len())
	}
	if !bytes.Equal(e.Bytes(), []byte{1, 0, 0, 0}) {
		t.Errorf("padding bytes = %x", e.Bytes())
	}
}

func TestEncoderGrowthPreservesData(t *testing.T) {
	var e Encoder
	for i := 0; i < 1000; i++ {
		e.Grow(4)
		e.PutU32BE(uint32(i))
	}
	for i := 0; i < 1000; i++ {
		d := NewDecoder(e.Bytes()[4*i:])
		if !d.Ensure(4) {
			t.Fatal("short")
		}
		if got := d.U32BE(); got != uint32(i) {
			t.Fatalf("slot %d = %d", i, got)
		}
	}
}

func TestDecoderBasics(t *testing.T) {
	var e Encoder
	e.Grow(32)
	e.PutU8(9)
	e.PutU16BE(0x1234)
	e.PutU32LE(0x89ABCDEF)
	e.PutU64BE(0x1122334455667788)
	d := NewDecoder(e.Bytes())
	if !d.Ensure(15) {
		t.Fatal(d.Err())
	}
	if d.U8() != 9 || d.U16BE() != 0x1234 || d.U32LE() != 0x89ABCDEF || d.U64BE() != 0x1122334455667788 {
		t.Error("round trip mismatch")
	}
	if d.Remaining() != 0 {
		t.Errorf("remaining = %d", d.Remaining())
	}
}

func TestDecoderStickyError(t *testing.T) {
	d := NewDecoder([]byte{1, 2})
	if d.Ensure(4) {
		t.Fatal("ensure should fail")
	}
	if !errors.Is(d.Err(), ErrTruncated) {
		t.Errorf("err = %v", d.Err())
	}
	// Error sticks even if a later check would pass.
	if d.Ensure(1) {
		t.Log("Ensure(1) may pass structurally, but Err must persist")
	}
	if d.Err() == nil {
		t.Error("sticky error lost")
	}
}

func TestDecoderCheckedReads(t *testing.T) {
	d := NewDecoder([]byte{0xAA})
	if got := d.U8C(); got != 0xAA {
		t.Errorf("U8C = %x", got)
	}
	if got := d.U32BEC(); got != 0 || d.Err() == nil {
		t.Errorf("U32BEC on empty = %x, err=%v", got, d.Err())
	}
}

func TestDecoderLen(t *testing.T) {
	var e Encoder
	e.Grow(8)
	e.PutU32BE(3)
	e.PutBytes([]byte{1, 2, 3})
	d := NewDecoder(e.Bytes())
	d.Ensure(4)
	n, ok := d.Len(BE, 10, false)
	if !ok || n != 3 {
		t.Errorf("Len = %d,%v", n, ok)
	}

	// Over bound.
	d = NewDecoder(e.Bytes())
	d.Ensure(4)
	if _, ok := d.Len(BE, 2, false); ok {
		t.Error("bound 2 should reject 3")
	}

	// Count exceeding remaining payload.
	var e2 Encoder
	e2.Grow(4)
	e2.PutU32BE(1 << 30)
	d = NewDecoder(e2.Bytes())
	d.Ensure(4)
	if _, ok := d.Len(BE, 0, false); ok {
		t.Error("hostile count accepted")
	}

	// NUL-counted (CDR): length includes the terminator.
	var e3 Encoder
	e3.Grow(8)
	e3.PutU32LE(3)
	e3.PutBytes([]byte{'h', 'i', 0})
	d = NewDecoder(e3.Bytes())
	d.Ensure(4)
	n, ok = d.Len(LE, 0, true)
	if !ok || n != 2 {
		t.Errorf("nul Len = %d,%v", n, ok)
	}
	// Zero-length NUL-counted strings are malformed.
	var e4 Encoder
	e4.Grow(4)
	e4.PutU32LE(0)
	d = NewDecoder(e4.Bytes())
	d.Ensure(4)
	if _, ok := d.Len(LE, 0, true); ok {
		t.Error("zero NUL-counted length accepted")
	}
}

func TestCheckBound(t *testing.T) {
	CheckBound(5, 10)
	CheckBound(5, 0) // unbounded
	defer func() {
		if recover() == nil {
			t.Error("CheckBound(11,10) should panic")
		}
	}()
	CheckBound(11, 10)
}

func TestBulkRoundTrip(t *testing.T) {
	s32 := []int32{-1, 0, 1 << 30, -1 << 31}
	b := make([]byte, 4*len(s32))
	PutSlice32BE(b, s32)
	out := make([]int32, len(s32))
	GetSlice32BE(out, b)
	for i := range s32 {
		if s32[i] != out[i] {
			t.Errorf("BE slot %d: %d != %d", i, out[i], s32[i])
		}
	}
	PutSlice32LE(b, s32)
	GetSlice32LE(out, b)
	for i := range s32 {
		if s32[i] != out[i] {
			t.Errorf("LE slot %d: %d != %d", i, out[i], s32[i])
		}
	}

	s16 := []uint16{0, 0xFFFF, 0x1234}
	b16 := make([]byte, 2*len(s16))
	PutSlice16BE(b16, s16)
	o16 := make([]uint16, len(s16))
	GetSlice16BE(o16, b16)
	if o16[1] != 0xFFFF || o16[2] != 0x1234 {
		t.Error("u16 round trip")
	}

	s64 := []uint64{0, ^uint64(0), 42}
	b64 := make([]byte, 8*len(s64))
	PutSlice64LE(b64, s64)
	o64 := make([]uint64, len(s64))
	GetSlice64LE(o64, b64)
	if o64[1] != ^uint64(0) {
		t.Error("u64 round trip")
	}

	f32 := []float32{0, 1.5, float32(math.Inf(1)), -2.25}
	bf := make([]byte, 4*len(f32))
	PutSliceF32BE(bf, f32)
	of := make([]float32, len(f32))
	GetSliceF32BE(of, bf)
	for i := range f32 {
		if f32[i] != of[i] {
			t.Errorf("f32 slot %d", i)
		}
	}

	f64 := []float64{math.Pi, -0.0, math.MaxFloat64}
	bd := make([]byte, 8*len(f64))
	PutSliceF64LE(bd, f64)
	od := make([]float64, len(f64))
	GetSliceF64LE(od, bd)
	for i := range f64 {
		if f64[i] != od[i] {
			t.Errorf("f64 slot %d", i)
		}
	}

	bools := []bool{true, false, true}
	bb := make([]byte, 4*len(bools))
	PutSliceBool(bb, bools, 4, BE)
	ob := make([]bool, len(bools))
	GetSliceBool(ob, bb, 4, BE)
	for i := range bools {
		if bools[i] != ob[i] {
			t.Errorf("bool4 slot %d", i)
		}
	}
	bb1 := make([]byte, len(bools))
	PutSliceBool(bb1, bools, 1, LE)
	GetSliceBool(ob, bb1, 1, LE)
	for i := range bools {
		if bools[i] != ob[i] {
			t.Errorf("bool1 slot %d", i)
		}
	}

	i8 := []int8{-1, 0, 127, -128}
	b8 := make([]byte, len(i8))
	PutSlice8(b8, i8)
	o8 := make([]int8, len(i8))
	GetSlice8(o8, b8)
	for i := range i8 {
		if i8[i] != o8[i] {
			t.Errorf("i8 slot %d", i)
		}
	}
}

func TestBulkQuick(t *testing.T) {
	f := func(s []int32) bool {
		b := make([]byte, 4*len(s))
		PutSlice32BE(b, s)
		out := make([]int32, len(s))
		GetSlice32BE(out, b)
		for i := range s {
			if s[i] != out[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWord4(t *testing.T) {
	tests := []struct {
		s    string
		off  int
		want uint32
	}{
		{"send", 0, 0x73656e64},
		{"send_ints", 4, 0x5f696e74},
		{"send_ints", 8, 0x73000000},
		{"ab", 0, 0x61620000},
		{"", 0, 0},
		{"abcd", 4, 0},
	}
	for _, tt := range tests {
		if got := Word4(tt.s, tt.off); got != tt.want {
			t.Errorf("Word4(%q,%d) = %08x, want %08x", tt.s, tt.off, got, tt.want)
		}
	}
}

func TestB2Conversions(t *testing.T) {
	if B2U32(true) != 1 || B2U32(false) != 0 || B2U8(true) != 1 || B2U8(false) != 0 {
		t.Error("bool conversions wrong")
	}
}
