// Client-side fault tolerance policy: retries, backoff, and the
// circuit breaker.
//
// The division of labour: FaultConn/real networks produce failures,
// client.go classifies each failed attempt as retryable or terminal
// (idempotency-aware: a non-idempotent call that may have executed is
// never re-sent), and this file decides *whether and when* the next
// attempt happens — bounded attempts, exponential backoff with full
// jitter, a per-call wall-clock budget, and a breaker that sheds load
// after consecutive transport failures instead of hammering a dead
// peer.
package rt

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// ErrRetryable classifies a call that failed without a definitive
// answer but is safe to retry (the request was never sent, or the
// operation is marked idempotent). Returned — wrapped around the
// underlying cause — when the retry budget is exhausted; test with
// errors.Is.
var ErrRetryable = errors.New("rt: retryable failure")

// ErrNotRetryable classifies a call that failed after the request may
// have reached the server and the operation is not idempotent:
// retrying could execute it twice, so the client fails fast instead.
// Test with errors.Is; the underlying transport cause is wrapped.
var ErrNotRetryable = errors.New("rt: not retryable (request may have executed)")

// ErrBreakerOpen reports a call shed by an open circuit breaker: the
// client has seen too many consecutive transport failures and is
// refusing calls until the cooldown elapses.
var ErrBreakerOpen = errors.New("rt: circuit breaker open")

// classifiedError wraps an attempt's underlying error with its retry
// class so callers can test both errors.Is(err, ErrRetryable/
// ErrNotRetryable) and errors.Is(err, ErrTimeout/ErrClosed/...).
type classifiedError struct {
	class error // ErrRetryable or ErrNotRetryable
	cause error
}

func (e *classifiedError) Error() string {
	return fmt.Sprintf("%v: %v", e.class, e.cause)
}

func (e *classifiedError) Unwrap() []error { return []error{e.class, e.cause} }

// retryable wraps err as exhausted-but-retryable.
func retryable(err error) error { return &classifiedError{class: ErrRetryable, cause: err} }

// notRetryable wraps err as terminal for idempotency reasons.
func notRetryable(err error) error { return &classifiedError{class: ErrNotRetryable, cause: err} }

// RetryPolicy bounds and paces a client's re-attempts. The zero value
// of each field selects a sane default; attach with Client.Retry.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries including the first
	// (default 3). 1 disables retries while keeping classification.
	MaxAttempts int
	// BaseBackoff seeds the exponential schedule (default 1ms): the
	// pre-jitter ceiling for attempt k (0-based re-attempt index) is
	// BaseBackoff << k.
	BaseBackoff time.Duration
	// MaxBackoff caps the schedule (default 250ms).
	MaxBackoff time.Duration
	// Budget, when positive, bounds the whole call — attempts plus
	// backoff sleeps — by one wall-clock deadline. When the budget is
	// spent, the last attempt's error is returned rather than starting
	// another round.
	Budget time.Duration
	// Seed makes the jitter sequence reproducible in tests; 0 derives
	// a seed from the clock.
	Seed int64

	once sync.Once
	mu   sync.Mutex
	rng  *rand.Rand
}

func (p *RetryPolicy) attempts() int {
	if p == nil || p.MaxAttempts <= 0 {
		return 3
	}
	return p.MaxAttempts
}

// backoff returns the full-jitter sleep before re-attempt k (0-based):
// uniform in [0, min(MaxBackoff, BaseBackoff<<k)]. Full jitter
// decorrelates retry storms from concurrent callers that failed
// together — exactly the chaos-harness scenario.
func (p *RetryPolicy) backoff(k int) time.Duration {
	base := p.BaseBackoff
	if base <= 0 {
		base = time.Millisecond
	}
	max := p.MaxBackoff
	if max <= 0 {
		max = 250 * time.Millisecond
	}
	ceil := base
	for i := 0; i < k && ceil < max; i++ {
		ceil <<= 1
	}
	if ceil > max {
		ceil = max
	}
	p.once.Do(func() {
		seed := p.Seed
		if seed == 0 {
			seed = time.Now().UnixNano()
		}
		p.rng = rand.New(rand.NewSource(seed))
	})
	p.mu.Lock()
	d := time.Duration(p.rng.Int63n(int64(ceil) + 1))
	p.mu.Unlock()
	return d
}

// BreakerState is a circuit breaker's position.
type BreakerState int32

const (
	// BreakerClosed passes calls through (the healthy state).
	BreakerClosed BreakerState = iota
	// BreakerOpen sheds every call until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen admits a single probe call; its outcome decides
	// between reclosing and reopening.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return fmt.Sprintf("BreakerState(%d)", int32(s))
}

// Breaker is a consecutive-failure circuit breaker. Closed, it passes
// calls and counts consecutive transport failures; at Threshold it
// opens and sheds calls for Cooldown; then it half-opens and admits one
// probe — success recloses it, failure reopens it. A server-level
// error (the peer answered) counts as success: the breaker tracks
// transport health, not application health. The zero value is ready to
// use; attach with Client.Breaker.
type Breaker struct {
	// Threshold is the consecutive-failure count that opens the
	// breaker (default 5).
	Threshold int
	// Cooldown is how long the breaker stays open before probing
	// (default 100ms).
	Cooldown time.Duration

	mu       sync.Mutex
	state    BreakerState
	failures int
	openedAt time.Time
}

func (b *Breaker) threshold() int {
	if b.Threshold <= 0 {
		return 5
	}
	return b.Threshold
}

func (b *Breaker) cooldown() time.Duration {
	if b.Cooldown <= 0 {
		return 100 * time.Millisecond
	}
	return b.Cooldown
}

// State reports the breaker's current position.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Ready reports whether the breaker would let a call proceed: true
// when closed, half-open, or open with the cooldown elapsed (a probe
// would be admitted). Unlike allow it has no side effects, so pool
// dispatch can consult it without consuming the half-open probe slot.
func (b *Breaker) Ready() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state != BreakerOpen || time.Since(b.openedAt) >= b.cooldown()
}

// allow reports whether a call may proceed, transitioning open →
// half-open when the cooldown has elapsed (the caller becomes the
// probe).
func (b *Breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if time.Since(b.openedAt) >= b.cooldown() {
			b.state = BreakerHalfOpen
			return true
		}
		return false
	default: // BreakerHalfOpen: one probe at a time.
		return false
	}
}

// success records a completed call (including server-level errors: the
// transport worked). It recloses a half-open breaker and resets the
// consecutive-failure count.
func (b *Breaker) success() {
	b.mu.Lock()
	b.failures = 0
	b.state = BreakerClosed
	b.mu.Unlock()
}

// failure records a transport-level failure and reports whether this
// one opened the breaker (for the BreakerOpen metric).
func (b *Breaker) failure() (opened bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerHalfOpen {
		// The probe failed: straight back to open.
		b.state = BreakerOpen
		b.openedAt = time.Now()
		return true
	}
	b.failures++
	if b.state == BreakerClosed && b.failures >= b.threshold() {
		b.state = BreakerOpen
		b.openedAt = time.Now()
		return true
	}
	return false
}
