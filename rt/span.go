// Distributed tracing: wire-propagated trace context and the span
// recorder.
//
// PR 1's trace hooks see one process at a time; after the scale-out
// fabric a single logical call crosses a pool shard, a batch frame,
// admission control, retries, and failover, and no single-process view
// can say where the time went. This file adds the missing causal
// substrate: a 128-bit trace ID plus span ID carried on the wire (see
// the trace annotation in proto.go), a Tracer that records completed
// spans into a fixed-size lock-free ring with head-based probabilistic
// sampling (errors are always recorded), and a Chrome trace_event JSON
// exporter so a chaos soak or fleet sweep drops a load-able timeline.
//
// Span taxonomy (the tree one traced call produces):
//
//	pool     ClientPool.Call, when the pool owns the root (failover
//	         events hang here)
//	└ call   one Client.Call invocation: the retry loop. Retries,
//	         redials, breaker trips, and admission rejects are
//	         cause-labeled events on this span.
//	  └ attempt   one callOnce: a fresh XID on one session. The span
//	              ID of the attempt is what travels in the wire
//	              annotation, so the server's span parents correctly.
//	    └ dispatch   the server-side decode+dispatch+reply span,
//	                 linked purely by the propagated context.
//
// Sampling is head-based: the decision is made once at the root and
// carried in the annotation's sampled flag; downstream spans inherit
// it. A call that completes with an error is recorded even when
// unsampled (with a fresh, unpropagated trace ID) so failures never
// vanish from the ring. The disabled and unsampled paths are
// allocation-free — pinned by TestTracingDisabledAllocs.
package rt

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID is a 128-bit trace identifier shared by every span of one
// logical call, across processes.
type TraceID [16]byte

// IsZero reports whether the ID is unset.
func (id TraceID) IsZero() bool { return id == TraceID{} }

// String renders the ID as 32 hex digits.
func (id TraceID) String() string { return hex.EncodeToString(id[:]) }

// TraceContext is the propagated annotation: which trace a message
// belongs to, which span caused it, and whether the head sampled it.
// It is carried on the wire by the trace annotation (proto.go) and
// in-process by context.Context (ContextWithTrace).
type TraceContext struct {
	TraceID TraceID
	SpanID  uint64
	Sampled bool
}

type traceCtxKey struct{}

// ContextWithTrace returns a context carrying tc, for handlers that
// make downstream calls: pass the returned context to CallIdemCtx and
// the downstream call's spans join the same trace. A nil ctx is
// treated as context.Background (Call and CallIdem pass nil).
func ContextWithTrace(ctx context.Context, tc TraceContext) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithValue(ctx, traceCtxKey{}, tc)
}

// TraceFromContext extracts a propagated trace context, if any.
func TraceFromContext(ctx context.Context) (TraceContext, bool) {
	if ctx == nil {
		return TraceContext{}, false
	}
	tc, ok := ctx.Value(traceCtxKey{}).(TraceContext)
	return tc, ok
}

// Context returns a context for the request being dispatched: it
// carries the propagated trace annotation (if any), expires at the
// propagated deadline (if the request carried one), and — inside a
// serving connection — is canceled when the client abandons the call
// with a cancel frame or a drain deadline kills the connection's
// remaining work. Handlers pass it to downstream CallIdemCtx calls so
// traces and deadlines propagate hop by hop, and watch ctx.Done() in
// long-running work. The runtime releases the context's resources when
// the dispatch finishes; call it at most once per request and do not
// retain it past the dispatch.
func (h *ReqHeader) Context() context.Context {
	ctx := context.Background()
	if h.Traced {
		ctx = ContextWithTrace(ctx, h.Trace)
	}
	var cancel context.CancelFunc
	if h.HasDeadline {
		ctx, cancel = context.WithDeadline(ctx, h.Deadline)
	} else if h.calls != nil {
		ctx, cancel = context.WithCancel(ctx)
	}
	if cancel != nil && h.calls != nil && !h.calls.register(h.XID, cancel) {
		// A cancel frame beat the handler here (or the drain deadline
		// passed): hand out an already-canceled context.
		cancel()
	}
	return ctx
}

// SpanKind classifies a Span in the taxonomy above.
type SpanKind uint8

const (
	// SpanClientCall is one whole client invocation (the retry loop).
	SpanClientCall SpanKind = iota
	// SpanPoolCall is a ClientPool invocation: the root above the
	// per-session call spans; failover events hang here.
	SpanPoolCall
	// SpanAttempt is one call attempt (one XID on one session); its ID
	// is the one propagated in the wire annotation.
	SpanAttempt
	// SpanServerDispatch is the server-side decode+dispatch+reply unit,
	// parented by the propagated attempt span.
	SpanServerDispatch
	// SpanBatchFlush is one multi-message batch frame cut by the
	// coalescing writer, with its flush reason as an event.
	SpanBatchFlush
)

func (k SpanKind) String() string {
	switch k {
	case SpanClientCall:
		return "call"
	case SpanPoolCall:
		return "pool"
	case SpanAttempt:
		return "attempt"
	case SpanServerDispatch:
		return "dispatch"
	case SpanBatchFlush:
		return "batch-flush"
	}
	return fmt.Sprintf("SpanKind(%d)", uint8(k))
}

// SpanEvent is a cause-labeled point inside a span: a retry, a redial,
// a session failover, an admission reject, a duplicate-reply resend, a
// batch flush reason.
type SpanEvent struct {
	// Offset is the event time relative to the span's start.
	Offset time.Duration `json:"offset_ns"`
	// Cause labels why the event happened ("retry", "redial",
	// "failover", "admission-reject", "breaker-open", "breaker-reject",
	// "dup-cached-resend", "dup-inflight-drop", "flush-size",
	// "flush-idle", "flush-deadline", "flush-close").
	Cause string `json:"cause"`
	// Detail is free-form elaboration (the error, the backoff, the
	// session indices).
	Detail string `json:"detail,omitempty"`
}

// Span is one completed traced unit of work. Spans are immutable once
// recorded; readers get them by pointer from the ring and must not
// mutate them.
type Span struct {
	Trace  TraceID  `json:"trace"`
	ID     uint64   `json:"span"`
	Parent uint64   `json:"parent,omitempty"` // 0 = root
	Kind   SpanKind `json:"kind"`
	Op     string   `json:"op"`
	XID    uint32   `json:"xid,omitempty"`
	// Sess is the pool session/shard index the span ran on (0 for
	// direct clients; dispatch spans report the server's view: 0).
	Sess  int           `json:"sess"`
	Start time.Time     `json:"start"`
	Dur   time.Duration `json:"dur_ns"`
	// Sampled is false only for always-on error spans recorded on the
	// unsampled path (their trace ID was never propagated).
	Sampled bool        `json:"sampled"`
	Err     string      `json:"err,omitempty"`
	Events  []SpanEvent `json:"events,omitempty"`
}

// DefaultSpanRing is the ring capacity when Tracer.RingSize is unset.
const DefaultSpanRing = 4096

// Tracer makes the sampling decision at the head of each call and
// records completed spans into a fixed-size lock-free ring (newest
// overwrite oldest; Dropped counts overwrites). Attach one to a
// Client, Server, ClientPool, or BatchConfig; one Tracer may be shared
// by every component of a process so a whole call tree lands in one
// ring. All methods are safe for concurrent use. A nil *Tracer
// disables tracing entirely; an attached Tracer with SampleRate 0
// records only error spans.
type Tracer struct {
	// SampleRate is the head-based probability (0..1) that a root call
	// is sampled. 0 records only error spans; 1 samples everything.
	SampleRate float64
	// RingSize is the completed-span ring capacity (default
	// DefaultSpanRing). Set before the first use.
	RingSize int
	// Seed makes span/trace IDs (and therefore the sampling decisions)
	// reproducible in tests; 0 derives a seed from the clock.
	Seed uint64

	once      sync.Once
	threshold uint64 // sample iff id-low <= threshold
	ring      []atomic.Pointer[Span]
	head      atomic.Uint64
	ctr       atomic.Uint64
	seed      uint64
}

func (t *Tracer) init() {
	t.once.Do(func() {
		n := t.RingSize
		if n <= 0 {
			n = DefaultSpanRing
		}
		t.ring = make([]atomic.Pointer[Span], n)
		switch {
		case t.SampleRate >= 1:
			t.threshold = math.MaxUint64
		case t.SampleRate <= 0:
			t.threshold = 0
		default:
			t.threshold = uint64(t.SampleRate * float64(math.MaxUint64))
		}
		t.seed = t.Seed
		if t.seed == 0 {
			t.seed = uint64(time.Now().UnixNano()) | 1
		}
	})
}

// splitmix64 is the SplitMix64 output function: a cheap, well-mixed
// bijection that turns the tracer's atomic counter into IDs without
// locks or allocation.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// nextID returns a fresh nonzero span ID. Allocation-free.
func (t *Tracer) nextID() uint64 {
	t.init()
	id := splitmix64(t.seed + t.ctr.Add(1))
	if id == 0 {
		id = 1
	}
	return id
}

// sampleRoot makes the head sampling decision for a new root call. It
// returns (context, true) with a fresh trace and root span ID when
// sampled, and ({}, false) — without allocating — otherwise.
func (t *Tracer) sampleRoot() (TraceContext, bool) {
	t.init()
	if t.threshold == 0 {
		return TraceContext{}, false
	}
	hi, lo := t.nextID(), t.nextID()
	if lo > t.threshold {
		return TraceContext{}, false
	}
	var tc TraceContext
	putU64(tc.TraceID[:8], hi)
	putU64(tc.TraceID[8:], lo)
	tc.SpanID = t.nextID()
	tc.Sampled = true
	return tc, true
}

// localTrace returns a fresh, unsampled trace context for spans that
// are recorded locally without wire propagation: always-on error spans
// and batch flush spans (whose frames carry many traces at once).
func (t *Tracer) localTrace() TraceContext {
	var tc TraceContext
	putU64(tc.TraceID[:8], t.nextID())
	putU64(tc.TraceID[8:], t.nextID())
	tc.SpanID = t.nextID()
	return tc
}

func putU64(b []byte, v uint64) {
	_ = b[7]
	b[0], b[1], b[2], b[3] = byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32)
	b[4], b[5], b[6], b[7] = byte(v>>24), byte(v>>16), byte(v>>8), byte(v)
}

// record stores one completed span. Lock-free: a slot index from the
// monotone head counter, then an atomic pointer store; the oldest span
// in a full ring is overwritten.
func (t *Tracer) record(sp *Span) {
	t.init()
	i := t.head.Add(1) - 1
	t.ring[i%uint64(len(t.ring))].Store(sp)
}

// Recorded returns the number of spans recorded since creation
// (including any that have since been overwritten).
func (t *Tracer) Recorded() uint64 {
	t.init()
	return t.head.Load()
}

// Dropped returns how many recorded spans have been overwritten by
// newer ones (0 while the ring has never wrapped).
func (t *Tracer) Dropped() uint64 {
	t.init()
	h := t.head.Load()
	if n := uint64(len(t.ring)); h > n {
		return h - n
	}
	return 0
}

// Spans returns a copy of the ring's current contents, oldest first.
// Under concurrent recording the snapshot is approximate (a slot may
// be overwritten mid-walk), which is the usual monitoring contract.
func (t *Tracer) Spans() []*Span {
	t.init()
	h := t.head.Load()
	n := uint64(len(t.ring))
	start := uint64(0)
	if h > n {
		start = h - n
	}
	out := make([]*Span, 0, h-start)
	for i := start; i < h; i++ {
		if sp := t.ring[i%n].Load(); sp != nil {
			out = append(out, sp)
		}
	}
	return out
}

// --- Chrome trace_event export ----------------------------------------------

// chromeEvent is one entry of the Chrome trace_event JSON array
// (about://tracing, Perfetto, speedscope all load it). Spans become
// "X" complete events; span events become "i" instants.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  uint32         `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromePid maps span kinds onto process lanes: client-side spans on
// pid 1, server-side on pid 2, transport-level (batch) on pid 3.
func chromePid(k SpanKind) int {
	switch k {
	case SpanServerDispatch:
		return 2
	case SpanBatchFlush:
		return 3
	}
	return 1
}

// chromeTid groups a trace's spans onto one timeline row per process
// lane. Client spans of one call nest strictly (pool ⊃ call ⊃
// attempt), so sharing a row keeps Chrome's stack discipline.
func chromeTid(sp *Span) uint32 {
	if sp.Trace.IsZero() {
		return 0
	}
	return uint32(sp.Trace[12])<<24 | uint32(sp.Trace[13])<<16 |
		uint32(sp.Trace[14])<<8 | uint32(sp.Trace[15])
}

// WriteChromeTrace writes the ring's spans as a Chrome trace_event
// JSON document ({"traceEvents": [...]}).
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	spans := t.Spans()
	events := make([]chromeEvent, 0, len(spans))
	for _, sp := range spans {
		ts := float64(sp.Start.UnixNano()) / 1e3
		args := map[string]any{
			"trace":   sp.Trace.String(),
			"span":    fmt.Sprintf("%016x", sp.ID),
			"sampled": sp.Sampled,
			"sess":    sp.Sess,
		}
		if sp.Parent != 0 {
			args["parent"] = fmt.Sprintf("%016x", sp.Parent)
		}
		if sp.XID != 0 {
			args["xid"] = sp.XID
		}
		if sp.Err != "" {
			args["err"] = sp.Err
		}
		name := sp.Op
		if name == "" {
			name = sp.Kind.String()
		}
		pid, tid := chromePid(sp.Kind), chromeTid(sp)
		events = append(events, chromeEvent{
			Name: name, Cat: sp.Kind.String(), Ph: "X",
			Ts: ts, Dur: float64(sp.Dur) / 1e3, Pid: pid, Tid: tid, Args: args,
		})
		for _, ev := range sp.Events {
			events = append(events, chromeEvent{
				Name: ev.Cause, Cat: "event", Ph: "i", S: "t",
				Ts: ts + float64(ev.Offset)/1e3, Pid: pid, Tid: tid,
				Args: map[string]any{"trace": sp.Trace.String(), "detail": ev.Detail},
			})
		}
	}
	doc := struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{events}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// --- the client-side span builder -------------------------------------------

// callTrace carries one sampled call's tracing state through the
// invoke/callOnce machinery. It lives on the calling goroutine only
// (no locking); a nil *callTrace means the call is unsampled and every
// method is a no-op, keeping the fast path branch-only.
type callTrace struct {
	tr     *Tracer
	tc     TraceContext // this call's span: attempts parent under tc.SpanID
	parent uint64       // parent span (pool root or propagated context); 0 = root
	kind   SpanKind
	op     string
	shard  int
	begin  time.Time
	events []SpanEvent
	// lastXID is a backchannel from callAttempt to the attempt-span
	// recorder: the XID the attempt actually used.
	lastXID uint32
}

// event appends a cause-labeled event. Safe on a nil receiver.
func (ct *callTrace) event(cause, detail string) {
	if ct == nil {
		return
	}
	ct.events = append(ct.events, SpanEvent{
		Offset: time.Since(ct.begin), Cause: cause, Detail: detail,
	})
}

// finish records the call span.
func (ct *callTrace) finish(err error) {
	if ct == nil {
		return
	}
	sp := &Span{
		Trace: ct.tc.TraceID, ID: ct.tc.SpanID, Parent: ct.parent,
		Kind: ct.kind, Op: ct.op, Sess: ct.shard,
		Start: ct.begin, Dur: time.Since(ct.begin),
		Sampled: true, Events: ct.events,
	}
	if err != nil {
		sp.Err = err.Error()
	}
	ct.tr.record(sp)
}

// startCallTrace begins tracing for one call when the tracer samples
// it (or a sampled parent context mandates it); it returns nil —
// without allocating — otherwise.
func startCallTrace(tr *Tracer, ctx context.Context, kind SpanKind, op string, shard int) *callTrace {
	var parentSpan uint64
	var tc TraceContext
	if parent, ok := TraceFromContext(ctx); ok && parent.Sampled {
		// A sampled upstream span (server handler or pool root): join
		// its trace regardless of the local sampling rate.
		tc = TraceContext{TraceID: parent.TraceID, SpanID: tr.nextID(), Sampled: true}
		parentSpan = parent.SpanID
	} else {
		var sampled bool
		tc, sampled = tr.sampleRoot()
		if !sampled {
			return nil
		}
	}
	return &callTrace{
		tr: tr, tc: tc, parent: parentSpan, kind: kind, op: op,
		shard: shard, begin: time.Now(),
	}
}

// recordErrorSpan implements always-sample-on-error for unsampled
// calls: the failure is recorded as a lone root span with a fresh,
// never-propagated trace ID.
func recordErrorSpan(tr *Tracer, kind SpanKind, op string, shard int, begin time.Time, err error) {
	tc := tr.localTrace()
	tr.record(&Span{
		Trace: tc.TraceID, ID: tc.SpanID, Kind: kind, Op: op, Sess: shard,
		Start: begin, Dur: time.Since(begin), Err: err.Error(),
	})
}
