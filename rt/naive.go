package rt

// The rpcgen-style per-datum entry points. Real rpcgen stubs route every
// atomic datum through xdr_int / xdr_u_short / ... which in turn call
// through the XDR ops vector (x_putlong etc.) — a genuine function call
// per datum. go:noinline preserves that structure so the baseline's cost
// profile matches the system it models; the Flick-style stubs use the
// inlinable unchecked writes instead.
//
// Each body composes Grow/Ensure with the unchecked operation directly
// (rather than calling the *C composites) so the whole per-datum path
// inlines into this single call frame: the *C composites sit just past
// the compiler's inlining budget, and a second call per datum costs
// ~20% on the byte-loop workloads.

//go:noinline
func NPutU8(e *Encoder, v byte) { e.Grow(1); e.PutU8(v) }

//go:noinline
func NPutU16BE(e *Encoder, v uint16) { e.Grow(2); e.PutU16BE(v) }

//go:noinline
func NPutU16LE(e *Encoder, v uint16) { e.Grow(2); e.PutU16LE(v) }

//go:noinline
func NPutU32BE(e *Encoder, v uint32) { e.Grow(4); e.PutU32BE(v) }

//go:noinline
func NPutU32LE(e *Encoder, v uint32) { e.Grow(4); e.PutU32LE(v) }

//go:noinline
func NPutU64BE(e *Encoder, v uint64) { e.Grow(8); e.PutU64BE(v) }

//go:noinline
func NPutU64LE(e *Encoder, v uint64) { e.Grow(8); e.PutU64LE(v) }

//go:noinline
func NGetU8(d *Decoder) byte { return d.U8C() }

//go:noinline
func NGetU16BE(d *Decoder) uint16 { return d.U16BEC() }

//go:noinline
func NGetU16LE(d *Decoder) uint16 { return d.U16LEC() }

//go:noinline
func NGetU32BE(d *Decoder) uint32 { return d.U32BEC() }

//go:noinline
func NGetU32LE(d *Decoder) uint32 { return d.U32LEC() }

//go:noinline
func NGetU64BE(d *Decoder) uint64 { return d.U64BEC() }

//go:noinline
func NGetU64LE(d *Decoder) uint64 { return d.U64LEC() }
