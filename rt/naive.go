package rt

// The rpcgen-style per-datum entry points. Real rpcgen stubs route every
// atomic datum through xdr_int / xdr_u_short / ... which in turn call
// through the XDR ops vector (x_putlong etc.) — a genuine function call
// per datum. go:noinline preserves that structure so the baseline's cost
// profile matches the system it models; the Flick-style stubs use the
// inlinable unchecked writes instead.

//go:noinline
func NPutU8(e *Encoder, v byte) { e.PutU8C(v) }

//go:noinline
func NPutU16BE(e *Encoder, v uint16) { e.PutU16BEC(v) }

//go:noinline
func NPutU16LE(e *Encoder, v uint16) { e.PutU16LEC(v) }

//go:noinline
func NPutU32BE(e *Encoder, v uint32) { e.PutU32BEC(v) }

//go:noinline
func NPutU32LE(e *Encoder, v uint32) { e.PutU32LEC(v) }

//go:noinline
func NPutU64BE(e *Encoder, v uint64) { e.PutU64BEC(v) }

//go:noinline
func NPutU64LE(e *Encoder, v uint64) { e.PutU64LEC(v) }

//go:noinline
func NGetU8(d *Decoder) byte { return d.U8C() }

//go:noinline
func NGetU16BE(d *Decoder) uint16 { return d.U16BEC() }

//go:noinline
func NGetU16LE(d *Decoder) uint16 { return d.U16LEC() }

//go:noinline
func NGetU32BE(d *Decoder) uint32 { return d.U32BEC() }

//go:noinline
func NGetU32LE(d *Decoder) uint32 { return d.U32LEC() }

//go:noinline
func NGetU64BE(d *Decoder) uint64 { return d.U64BEC() }

//go:noinline
func NGetU64LE(d *Decoder) uint64 { return d.U64LEC() }
